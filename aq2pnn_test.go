package aq2pnn

import (
	"bytes"
	"testing"
)

func TestPublicPipelineEndToEnd(t *testing.T) {
	// Dataset → train → quantize → secure inference, all through the
	// public API.
	ds, err := SyntheticDataset("mnist", 320, 7)
	if err != nil {
		t.Fatal(err)
	}
	standin, floatAcc, err := TrainStandin("lenet5", ds, 240, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if floatAcc < 0.4 {
		t.Fatalf("float accuracy %.2f", floatAcc)
	}
	q, err := Quantize(standin, QuantOptions{Calib: ds.X[:60], CarrierBits: 20})
	if err != nil {
		t.Fatal(err)
	}
	_, te := ds.Split(240)
	res, err := SecureInfer(q.Model, q.QuantizeInput(te.X[0]), InferenceConfig{ComputeConfig: ComputeConfig{CarrierBits: 20, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logits) != 10 || res.Class < 0 || res.Class > 9 {
		t.Fatalf("result %+v", res)
	}
	if res.Online.TotalBytes() == 0 || len(res.PerOp) == 0 {
		t.Error("missing measurements")
	}
	if res.CarrierBits != 20 {
		t.Errorf("carrier = %d", res.CarrierBits)
	}
}

func TestBuildAndEstimate(t *testing.T) {
	m, err := BuildModel("resnet18-imagenet", ZooConfig{Skeleton: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateModel(ZCU104(), m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if est.ThroughputFPS <= 0 || est.CommMiB() <= 0 || est.EfficiencyFPSPerW <= 0 {
		t.Errorf("estimate %+v", est)
	}
	// Default carrier = InBits + 4.
	est2, err := EstimateModel(ZCU104(), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Carrier.Bits != 12 {
		t.Errorf("default carrier = %d, want 12", est2.Carrier.Bits)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table3", true, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	if err := RunExperiment("nope", true, 1, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentNames()) != 15 {
		t.Errorf("experiment list = %v", ExperimentNames())
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := SyntheticDataset("nope", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	ds, _ := SyntheticDataset("mnist", 10, 1)
	if _, _, err := TrainStandin("lenet5", ds, 10, 1, 1); err == nil {
		t.Error("trainN consuming all data accepted")
	}
	if _, err := BuildModel("nope", ZooConfig{}); err == nil {
		t.Error("unknown model accepted")
	}
}
