// Accelerator trace: compile a model into the INST Q instruction stream
// (the queue the paper's Sec. 4.1.1 describes TVM-style compilers
// producing) and inspect how LOAD / EXCH / GEMM / ALU / A2B / SCM
// instructions realize each building block, together with the cycle and
// traffic totals the cost model derives from them. The second half runs
// the same model through a real traced secure inference, so the modelled
// per-layer traffic can be read next to the measured span trace.
package main

import (
	"fmt"
	"log"

	"aq2pnn"
)

func main() {
	m, err := aq2pnn.BuildModel("lenet5", aq2pnn.ZooConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, bits := range []uint{32, 16} {
		prog, err := aq2pnn.CompileProgram(m, bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("---- carrier %d bits ----\n", bits)
		fmt.Print(prog.Dump(28))
		est, err := aq2pnn.EstimateModel(aq2pnn.ZCU104(), m, bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("totals: %d cycles (%v compute) + %.3f MiB over %d rounds (%v comm) → %.2f fps\n\n",
			est.Cycles, est.ComputeTime, est.CommMiB(), est.Comm.Rounds, est.CommTime, est.ThroughputFPS)
	}
	fmt.Println("halving the carrier width halves every EXCH payload — the root of the paper's communication savings")

	// Measured counterpart: trace one real 16-bit secure inference and
	// print the per-layer wall time and traffic attribution (every byte of
	// the session lands in exactly one layer or reveal span).
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64(i%23) - 11
	}
	tr := aq2pnn.NewTracer()
	res, err := aq2pnn.SecureInfer(m, x, aq2pnn.InferenceConfig{ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 3, Trace: tr}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n---- measured spans, carrier 16 bits ----\n")
	fmt.Print(aq2pnn.TraceTable(tr))
	fmt.Printf("session online total: %.3f MiB over %d rounds\n", res.Online.MiB(), res.Online.Rounds)
}
