// Accelerator trace: compile a model into the INST Q instruction stream
// (the queue the paper's Sec. 4.1.1 describes TVM-style compilers
// producing) and inspect how LOAD / EXCH / GEMM / ALU / A2B / SCM
// instructions realize each building block, together with the cycle and
// traffic totals the cost model derives from them.
package main

import (
	"fmt"
	"log"

	"aq2pnn"
)

func main() {
	m, err := aq2pnn.BuildModel("lenet5", aq2pnn.ZooConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, bits := range []uint{32, 16} {
		prog, err := aq2pnn.CompileProgram(m, bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("---- carrier %d bits ----\n", bits)
		fmt.Print(prog.Dump(28))
		est, err := aq2pnn.EstimateModel(aq2pnn.ZCU104(), m, bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("totals: %d cycles (%v compute) + %.3f MiB over %d rounds (%v comm) → %.2f fps\n\n",
			est.Cycles, est.ComputeTime, est.CommMiB(), est.Comm.Rounds, est.CommTime, est.ThroughputFPS)
	}
	fmt.Println("halving the carrier width halves every EXCH payload — the root of the paper's communication savings")
}
