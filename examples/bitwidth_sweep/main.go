// Bit-width sweep: the adaptive-quantization trade-off of Figs. 10/11 and
// Tables 7/8 in miniature. A VGG stand-in is trained once, then quantized
// for carriers from 32 down to 12 bits; for each width the program reports
// the adaptive per-layer bit plan, the accuracy under the (stochastically
// exact) 2PC arithmetic, and the modelled communication and throughput of
// the full-size VGG16 graph at that width — showing the plateau, the
// 16-bit sweet spot and the narrow-ring cliff.
package main

import (
	"fmt"
	"log"

	"aq2pnn"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/quant"
	"aq2pnn/internal/ring"
)

func main() {
	ds, err := aq2pnn.SyntheticDataset("cifar10", 600, 21)
	if err != nil {
		log.Fatal(err)
	}
	trainData, testData := ds.Split(450)
	fmt.Println("training the VGG stand-in …")
	standin, floatAcc, err := aq2pnn.TrainStandin("vgg16", ds, 450, 6, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float accuracy: %.1f%%\n\n", floatAcc*100)

	full, err := aq2pnn.BuildModel("vgg16-cifar", aq2pnn.ZooConfig{Skeleton: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-14s %-12s %-12s %-12s\n", "bits", "act/wt plan", "accuracy", "comm (MiB)", "tput (fps)")
	for _, bits := range []uint{32, 24, 16, 14, 12} {
		q, err := aq2pnn.Quantize(standin, aq2pnn.QuantOptions{Calib: trainData.X[:80], CarrierBits: bits})
		if err != nil {
			log.Fatal(err)
		}
		acc, err := quant.EvalAccuracy(q, testData.X, testData.Y, nn.StochasticRing, ring.New(bits), 5)
		if err != nil {
			log.Fatal(err)
		}
		est, err := aq2pnn.EstimateModel(aq2pnn.ZCU104(), full, bits)
		if err != nil {
			log.Fatal(err)
		}
		first := q.Report.Layers[0]
		fmt.Printf("%-6d %2d/%-11d %-12s %-12.1f %-12.3f\n",
			bits, first.InBits, first.WBits, fmt.Sprintf("%.1f%%", acc*100),
			est.CommMiB(), est.ThroughputFPS)
	}
	fmt.Println("\nnarrower carriers force the adaptive plan below useful widths — the paper's 12-bit cliff")
	_ = prg.NewSeeded // keep the import graph explicit for readers
}
