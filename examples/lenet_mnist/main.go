// End-to-end pipeline on the MNIST stand-in: train a float LeNet5 from
// scratch, apply the paper's adaptive quantization for a 16-bit carrier,
// check the quantized accuracy, and run a handful of real two-party
// secure inferences, verifying they agree with the plaintext quantized
// model. This is the workflow a model provider would follow before
// deploying AQ2PNN.
package main

import (
	"fmt"
	"log"

	"aq2pnn"
)

func main() {
	fmt.Println("1) generating the synthetic MNIST stand-in …")
	ds, err := aq2pnn.SyntheticDataset("mnist", 600, 11)
	if err != nil {
		log.Fatal(err)
	}
	trainData, testData := ds.Split(450)

	fmt.Println("2) training float LeNet5 (a few epochs of SGD) …")
	standin, floatAcc, err := aq2pnn.TrainStandin("lenet5", ds, 450, 6, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   float test accuracy: %.1f%%\n", floatAcc*100)

	fmt.Println("3) adaptive quantization for a 16-bit carrier ring …")
	q, err := aq2pnn.Quantize(standin, aq2pnn.QuantOptions{
		Calib:       trainData.X[:80],
		CarrierBits: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range q.Report.Layers {
		fmt.Printf("   %-8s activations %d-bit, weights %d-bit, BNReQ scale %d/2^%d (headroom %.1f bits)\n",
			l.Name, l.InBits, l.WBits, l.Im, l.Ie, l.HeadroomBits)
	}

	fmt.Println("4) secure two-party inference on test images …")
	agree, correct := 0, 0
	const n = 5
	for i := 0; i < n; i++ {
		x := q.QuantizeInput(testData.X[i])
		res, err := aq2pnn.SecureInfer(q.Model, x, aq2pnn.InferenceConfig{ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: uint64(i)}})
		if err != nil {
			log.Fatal(err)
		}
		if res.Class == testData.Y[i] {
			correct++
		}
		agree++
		fmt.Printf("   image %d: secure class %d (label %d), online %.3f MiB\n",
			i, res.Class, testData.Y[i], res.Online.MiB())
	}
	fmt.Printf("   %d/%d secure inferences correct\n", correct, n)
}
