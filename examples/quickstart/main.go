// Quickstart: the smallest possible AQ2PNN program. Build a quantized
// LeNet5, run one two-party secure inference in-process, and print the
// revealed logits with the measured communication — the whole protocol
// (AS-GEMM convolutions, 2PC-BNReQ, ABReLU, 2PC pooling) runs for real,
// with both parties' shares exchanged over an instrumented channel.
//
// Pass -trace out.json to also record a per-layer span trace and write
// it as Chrome trace-event JSON (see docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"aq2pnn"
)

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the inference")
	flag.Parse()

	// A zoo model with synthetic 8-bit weights (real deployments quantize
	// a trained model; see examples/lenet_mnist for that pipeline).
	model, err := aq2pnn.BuildModel("lenet5", aq2pnn.ZooConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The user's (quantized) input image.
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64(i%23) - 11
	}

	// One secure inference on a 16-bit carrier ring — the paper's
	// headline configuration.
	cfg := aq2pnn.InferenceConfig{ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 1}}
	if *tracePath != "" {
		cfg.Trace = aq2pnn.NewTracer()
	}
	res, err := aq2pnn.SecureInfer(model, x, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := aq2pnn.WriteChromeTrace(f, cfg.Trace); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d spans written to %s\n", len(cfg.Trace.Spans()), *tracePath)
		fmt.Print(aq2pnn.TraceTable(cfg.Trace))
	}

	fmt.Printf("predicted class: %d\n", res.Class)
	fmt.Printf("logits:          %v\n", res.Logits)
	fmt.Printf("online traffic:  %.3f MiB over %d protocol rounds\n",
		res.Online.MiB(), res.Online.Rounds)

	// What would this cost on the paper's two-ZCU104 deployment?
	est, err := aq2pnn.EstimateModel(aq2pnn.ZCU104(), model, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZCU104 estimate: %.2f fps at %.1f W per board (%.4f fps/W)\n",
		est.ThroughputFPS, est.PowerWatts, est.EfficiencyFPSPerW)
}
