// Two real processes over localhost TCP, emulating the paper's two-board
// deployment: this program re-executes itself as the model provider and
// the user, who then run one dealer-free secure inference — κ base OTs
// through the Fig. 4 OT-flow on the production 512-bit group, IKNP OT
// extension for every correlation after that, and Gilboa Beaver triples,
// all on the wire. Run ./cmd/party for full models and role control.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	"aq2pnn"
)

const addr = "127.0.0.1:7542"

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "provider":
			runProvider()
			return
		case "user":
			runUser()
			return
		}
	}
	orchestrate()
}

func model() *aq2pnn.Model {
	// The "micro" building block keeps the demo to a few seconds; a full
	// LeNet5 takes ~30 s (the Gilboa triple offline phase dominates).
	m, err := aq2pnn.BuildModel("micro", aq2pnn.ZooConfig{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func cfg() aq2pnn.InferenceConfig {
	return aq2pnn.InferenceConfig{CarrierBits: 16, Seed: 9}
}

func runProvider() {
	fmt.Println("[provider] listening on", addr)
	if err := aq2pnn.ServeModelTCP(addr, model(), cfg(), false); err != nil {
		log.Fatal("[provider] ", err)
	}
	fmt.Println("[provider] inference served")
}

func runUser() {
	x := make([]int64, 8*8)
	for i := range x {
		x[i] = int64(i%23) - 11
	}
	fmt.Println("[user] dialing", addr)
	start := time.Now()
	res, err := aq2pnn.SecureInferTCP(addr, model(), x, cfg(), false, 30*time.Second)
	if err != nil {
		log.Fatal("[user] ", err)
	}
	fmt.Printf("[user] class %d in %v; online %.3f MiB over %d rounds\n",
		res.Class, time.Since(start), res.Online.MiB(), res.Online.Rounds)
}

func orchestrate() {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	provider := exec.Command(self, "provider")
	provider.Stdout, provider.Stderr = os.Stdout, os.Stderr
	if err := provider.Start(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the listener come up
	user := exec.Command(self, "user")
	user.Stdout, user.Stderr = os.Stdout, os.Stderr
	if err := user.Run(); err != nil {
		provider.Process.Kill()
		log.Fatal(err)
	}
	if err := provider.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-process secure inference complete")
}
