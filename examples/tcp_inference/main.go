// Two real processes over localhost TCP, emulating the paper's two-board
// deployment: this program re-executes itself as the model provider and
// two concurrent users, who each open one persistent session and stream
// several dealer-free secure inferences over it — κ base OTs through the
// Fig. 4 OT-flow on the production 512-bit group, IKNP OT extension for
// every correlation after that, and Gilboa Beaver triples, all on the
// wire. The session pays setup (weight shares, triple preparation) once;
// each further inference costs only its online traffic. The provider
// serves both sessions concurrently and exits once they complete. Run
// ./cmd/party for full models and role control.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	"aq2pnn"
)

const addr = "127.0.0.1:7542"

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "provider":
			runProvider()
			return
		case "user":
			runUser(os.Args[2])
			return
		}
	}
	orchestrate()
}

func model() *aq2pnn.Model {
	// The "micro" building block keeps the demo to a few seconds; a full
	// LeNet5 takes ~30 s (the Gilboa triple offline phase dominates).
	m, err := aq2pnn.BuildModel("micro", aq2pnn.ZooConfig{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func cfg() aq2pnn.InferenceConfig {
	return aq2pnn.InferenceConfig{
		ComputeConfig: aq2pnn.ComputeConfig{
			CarrierBits: 16,
			Seed:        9,
		},
		NetConfig: aq2pnn.NetConfig{
			// Fault tolerance (docs/robustness.md): a transiently failed
			// one-shot session is re-dialed and replayed from scratch; an
			// open Session instead re-attaches to the provider's cached
			// state through its resumption token. Handshake mismatches
			// (wrong model/bits/seed) fail fast instead of retrying.
			Retries:    2,
			RetryBase:  200 * time.Millisecond,
			DrainGrace: 10 * time.Second,
		},
	}
}

func runProvider() {
	fmt.Println("[provider] listening on", addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := cfg()
	c.ServeSessions = 2
	if err := aq2pnn.ServeModelTCP(ctx, addr, model(), c); err != nil {
		log.Fatal("[provider] ", err)
	}
	fmt.Println("[provider] both sessions served")
}

func runUser(tag string) {
	const inferences = 3
	input := func(round int) []int64 {
		x := make([]int64, 8*8)
		for i := range x {
			x[i] = int64((i+round)%23) - 11
		}
		return x
	}
	fmt.Printf("[user %s] dialing %s\n", tag, addr)
	start := time.Now()
	c := cfg()
	c.DialTimeout = 30 * time.Second
	ctx := context.Background()
	s, err := aq2pnn.Dial(addr, c).OpenSession(ctx, model())
	if err != nil {
		log.Fatalf("[user %s] %v", tag, err)
	}
	defer s.Close()
	fmt.Printf("[user %s] session open in %v (setup %.3f MiB, paid once)\n",
		tag, time.Since(start), s.SetupStats().MiB())
	for i := 0; i < inferences; i++ {
		t0 := time.Now()
		res, err := s.Infer(ctx, input(i))
		if err != nil {
			log.Fatalf("[user %s] inference %d: %v", tag, i, err)
		}
		fmt.Printf("[user %s] inference %d: class %d in %v; online %.3f MiB over %d rounds\n",
			tag, i, res.Class, time.Since(t0), res.Online.MiB(), res.Online.Rounds)
	}
	fmt.Printf("[user %s] %d inferences in %v over one session\n", tag, inferences, time.Since(start))
}

func orchestrate() {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	provider := exec.Command(self, "provider")
	provider.Stdout, provider.Stderr = os.Stdout, os.Stderr
	if err := provider.Start(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the listener come up
	users := make([]*exec.Cmd, 2)
	for i := range users {
		u := exec.Command(self, "user", fmt.Sprint(i))
		u.Stdout, u.Stderr = os.Stdout, os.Stderr
		if err := u.Start(); err != nil {
			provider.Process.Kill()
			log.Fatal(err)
		}
		users[i] = u
	}
	for _, u := range users {
		if err := u.Wait(); err != nil {
			provider.Process.Kill()
			log.Fatal(err)
		}
	}
	if err := provider.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("two concurrent sessions complete")
}
