package aq2pnn

// Helpers for the protocol micro-benchmarks in bench_test.go: a reusable
// two-party session exercising single secure operators.

import (
	"testing"

	"aq2pnn/internal/ot"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/secure"
	"aq2pnn/internal/share"
	"aq2pnn/internal/transport"
)

type secureRunner struct {
	sess *secure.Session
	r    ring.Ring
	g    *prg.PRG
}

func newSecureRunner() *secureRunner {
	return &secureRunner{sess: secure.NewLocalSession(1), r: ring.New(16), g: prg.NewSeeded(2)}
}

func (sr *secureRunner) gemm() error {
	m, k, n := 16, 64, 16 // one AS-GEMM array tile column sweep
	in := sr.g.Elems(m*k, sr.r)
	w := sr.g.Elems(k*n, sr.r)
	in0, in1 := share.SplitVec(sr.g, sr.r, in)
	w0, w1 := share.SplitVec(sr.g, sr.r, w)
	return sr.sess.Run(
		func(c *secure.Context) error { _, err := c.MatMul(sr.r, in0, w0, m, k, n); return err },
		func(c *secure.Context) error { _, err := c.MatMul(sr.r, in1, w1, m, k, n); return err })
}

func (sr *secureRunner) relu() error {
	vals := make([]int64, 512)
	for i := range vals {
		vals[i] = sr.g.Int64n(10000)
	}
	x0, x1 := share.SplitVec(sr.g, sr.r, sr.r.FromInts(vals))
	return sr.sess.Run(
		func(c *secure.Context) error { _, err := c.ABReLU(sr.r, x0); return err },
		func(c *secure.Context) error { _, err := c.ABReLU(sr.r, x1); return err })
}

func benchSecureOp(b *testing.B, op func(*secureRunner) error) {
	b.Helper()
	sr := newSecureRunner()
	defer sr.sess.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(sr); err != nil {
			b.Fatal(err)
		}
	}
}

func runOTFlowOnce() error {
	a, bConn := transport.Pipe()
	defer a.Close()
	defer bConn.Close()
	msgs := make([][][]byte, 32)
	choices := make([]int, 32)
	for k := range msgs {
		msgs[k] = [][]byte{{1}, {2}, {3}, {4}}
		choices[k] = k % 4
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- ot.FlowSend(a, ot.TestGroup(), prg.NewSeeded(1), 4, msgs)
	}()
	if _, err := ot.FlowRecv(bConn, prg.NewSeeded(2), 4, choices, 1); err != nil {
		return err
	}
	return <-errCh
}
