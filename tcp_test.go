package aq2pnn_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aq2pnn"
)

func microModel(t *testing.T) *aq2pnn.Model {
	t.Helper()
	m, err := aq2pnn.BuildModel("micro", aq2pnn.ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServeModelTCPConcurrentClients exercises the concurrent-session
// server: four users dial the same provider simultaneously and each runs
// a complete dealer-free secure inference. Run under -race this also
// validates the transport counters and the shared worker pool.
func TestServeModelTCPConcurrentClients(t *testing.T) {
	const addr = "127.0.0.1:17549"
	const clients = 4
	cfg := aq2pnn.InferenceConfig{
		ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 9},
		NetConfig: aq2pnn.NetConfig{
			DemoGroup:     true,
			DialTimeout:   20 * time.Second,
			ServeSessions: clients,
		},
	}
	m := microModel(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	serveErr := make(chan error, 1)
	go func() { serveErr <- aq2pnn.ServeModelTCP(ctx, addr, m, cfg) }()

	x := make([]int64, 8*8)
	for i := range x {
		x[i] = int64(i%23) - 11
	}
	var wg sync.WaitGroup
	results := make([]*aq2pnn.InferenceResult, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = aq2pnn.SecureInferTCP(ctx, addr, m, x, cfg)
		}(c)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if results[c].Class != results[0].Class {
			t.Errorf("client %d class %d, want %d", c, results[c].Class, results[0].Class)
		}
		if results[c].Online.TotalBytes() == 0 {
			t.Errorf("client %d measured no online traffic", c)
		}
	}
}

// TestClientSessionTCP exercises the first-class session API end to end:
// a multi-model provider, a persistent session streaming inferences with
// byte-identical online cost, a one-shot client sharing the same serving
// loop, and a hot model removal failing fresh handshakes with the typed
// mismatch while the open session keeps working.
func TestClientSessionTCP(t *testing.T) {
	const addr = "127.0.0.1:17551"
	cfg := aq2pnn.InferenceConfig{
		ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 9},
		NetConfig:     aq2pnn.NetConfig{DemoGroup: true, DialTimeout: 20 * time.Second},
	}
	mA := microModel(t)
	mB, err := aq2pnn.BuildModel("micro", aq2pnn.ZooConfig{Seed: 9, Pool: aq2pnn.PoolAvg})
	if err != nil {
		t.Fatal(err)
	}
	reg := aq2pnn.NewModelRegistry()
	if err := reg.Add(mA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(mB); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	serveCtx, stopServe := context.WithCancel(ctx)
	serveErr := make(chan error, 1)
	go func() { serveErr <- aq2pnn.ServeModelsTCP(serveCtx, addr, reg, cfg) }()

	x := make([]int64, 8*8)
	for i := range x {
		x[i] = int64(i%23) - 11
	}
	c := aq2pnn.Dial(addr, cfg)
	s, err := c.OpenSession(ctx, mA)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if s.SetupStats().TotalBytes() == 0 {
		t.Error("session open measured no setup traffic")
	}
	var online []aq2pnn.CommStats
	for i := 0; i < 3; i++ {
		res, err := s.Infer(ctx, x)
		if err != nil {
			t.Fatalf("inference %d: %v", i, err)
		}
		if res.Setup.TotalBytes() != 0 {
			t.Errorf("inference %d reported setup traffic; sessions pay setup once at open", i)
		}
		online = append(online, res.Online)
	}
	for i := 1; i < len(online); i++ {
		if online[i] != online[0] {
			t.Errorf("inference %d online %+v, want byte-identical to inference 0 %+v", i, online[i], online[0])
		}
	}
	// One-shot wrapper against the other registered model, same loop.
	if _, err := aq2pnn.SecureInferTCP(ctx, addr, mB, x, cfg); err != nil {
		t.Fatalf("one-shot inference for second model: %v", err)
	}
	// Hot-remove model B: fresh handshakes fail typed, the session lives.
	reg.Remove(mB)
	if _, err := c.OpenSession(ctx, mB); err == nil {
		t.Error("OpenSession succeeded for a removed model")
	} else {
		var he *aq2pnn.HandshakeError
		if !errors.As(err, &he) {
			t.Errorf("removed model returned %v, want a HandshakeError", err)
		}
	}
	if _, err := s.Infer(ctx, x); err != nil {
		t.Errorf("session inference after removing the other model: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	stopServe()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestServeModelTCPCancel verifies that cancelling the server context
// unblocks a provider with no pending clients.
func TestServeModelTCPCancel(t *testing.T) {
	const addr = "127.0.0.1:17550"
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- aq2pnn.ServeModelTCP(ctx, addr, microModel(t), aq2pnn.InferenceConfig{ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 9}})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled server returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not return after cancellation")
	}
}

// ExampleSecureInferBatch demonstrates pipelined batched inference: one
// weight-preparation phase, images spread over worker lanes, results
// independent of the Workers setting.
func ExampleSecureInferBatch() {
	model, err := aq2pnn.BuildModel("micro", aq2pnn.ZooConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	xs := make([][]int64, 3)
	for i := range xs {
		x := make([]int64, 8*8)
		for j := range x {
			x[j] = int64((j + i) % 7)
		}
		xs[i] = x
	}
	serial, err := aq2pnn.SecureInferBatch(model, xs, aq2pnn.InferenceConfig{ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 2, Workers: 1}})
	if err != nil {
		panic(err)
	}
	parallel, err := aq2pnn.SecureInferBatch(model, xs, aq2pnn.InferenceConfig{ComputeConfig: aq2pnn.ComputeConfig{CarrierBits: 16, Seed: 2, Workers: 4}})
	if err != nil {
		panic(err)
	}
	same := len(serial.Logits) == len(parallel.Logits)
	for i := range serial.Logits {
		for j := range serial.Logits[i] {
			same = same && serial.Logits[i][j] == parallel.Logits[i][j]
		}
	}
	fmt.Println("images:", len(parallel.Logits))
	fmt.Println("bit-identical across workers:", same)
	fmt.Println("identical traffic:", serial.Online == parallel.Online)
	// Output:
	// images: 3
	// bit-identical across workers: true
	// identical traffic: true
}
