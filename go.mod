module aq2pnn

go 1.22
