// Package aq2pnn is a from-scratch Go implementation of AQ2PNN
// ("Enabling Two-party Privacy-Preserving Deep Neural Network Inference
// with Adaptive Quantization", MICRO 2023): two-party secure DNN inference
// over additive secret shares on adaptive power-of-two rings, with the
// paper's garbled-circuit-free ABReLU activation and an FPGA accelerator
// cost model that reproduces the evaluation tables.
//
// The facade exposes four workflows:
//
//   - Model building: the zoo of shape-accurate architectures the paper
//     evaluates (LeNet5 … ResNet50) and the train→quantize pipeline that
//     produces runnable quantized models with adaptive per-layer
//     bit-widths.
//   - Secure inference: SecureInfer runs a complete two-party protocol
//     (in-process parties over an instrumented channel) and reports the
//     logits together with measured per-operator communication.
//   - Cost estimation: Estimate prices a model on the two-ZCU104
//     deployment (throughput, communication, power, energy efficiency).
//   - Experiments: RunExperiment regenerates any table or figure of the
//     paper's evaluation section.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package aq2pnn

import (
	"context"
	"fmt"
	"io"

	"aq2pnn/internal/dataset"
	"aq2pnn/internal/engine"
	"aq2pnn/internal/experiments"
	"aq2pnn/internal/fpga"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/quant"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/train"
	"aq2pnn/internal/transport"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the supported public names.
type (
	// Model is a quantized DNN graph executable in both the plaintext and
	// ciphertext domains.
	Model = nn.Model
	// ZooConfig parameterizes the model zoo builders.
	ZooConfig = nn.ZooConfig
	// Quantized couples a quantized model with its input scale and the
	// adaptive-quantization report.
	Quantized = quant.Quantized
	// QuantOptions configures the adaptive quantizer.
	QuantOptions = quant.Options
	// Dataset is a labelled synthetic image set.
	Dataset = dataset.Dataset
	// Standin is a trainable reduced model for accuracy experiments.
	Standin = train.Standin
	// Accelerator is the FPGA platform configuration.
	Accelerator = fpga.Config
	// Estimate is a modelled deployment cost (throughput/comm/power).
	Estimate = fpga.Estimate
	// CommStats are measured transport counters.
	CommStats = transport.Stats
	// Tracer records hierarchical spans with per-span communication deltas.
	Tracer = telemetry.Tracer
	// SpanRecord is one finished span of a Tracer.
	SpanRecord = telemetry.SpanRecord
	// MetricsRegistry holds process-wide counters and histograms.
	MetricsRegistry = telemetry.Registry
	// HandshakeError is a session-parameter disagreement detected by the
	// versioned handshake (protocol version, model fingerprint, carrier
	// width, protocol flags). It is permanent: fix the configuration.
	HandshakeError = engine.HandshakeError
	// PayloadError is a setup payload that disagrees with the public model
	// shapes (truncated weight share, stray node id). Also permanent.
	PayloadError = engine.PayloadError
)

// ErrSessionAborted wraps session errors caused by the server tearing a
// session down (shutdown past the drain grace, or a SessionTimeout
// expiry) rather than by the protocol failing on its own.
var ErrSessionAborted = engine.ErrSessionAborted

// IsTransient reports whether err looks like a transient networking
// failure worth retrying (connection refused/reset, peer closed, an
// injected test fault) as opposed to a permanent one (handshake or
// payload mismatch, context cancellation). SecureInferTCP applies the
// same classification internally when cfg.Retries > 0.
func IsTransient(err error) bool { return transport.IsTransient(err) }

// NewTracer returns a tracer ready to be passed as InferenceConfig.Trace.
// Every secure-inference entrypoint accepts one; a nil tracer keeps all
// instrumentation at zero cost.
func NewTracer() *Tracer { return telemetry.New() }

// WriteChromeTrace exports a finished trace as Chrome trace-event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, t *Tracer) error { return telemetry.WriteChromeTrace(w, t) }

// TraceTable renders a finished trace as an aligned per-layer text table
// (wall time, bytes sent/received and rounds per span).
func TraceTable(t *Tracer) string { return telemetry.LayerTable(t).String() }

// Metrics returns the process-wide registry served by the /metrics
// endpoint. Counter and histogram updates are recorded only after
// EnableMetrics (one atomic-load branch when disabled).
func Metrics() *MetricsRegistry { return telemetry.Default() }

// EnableMetrics turns on process-wide counter/histogram recording.
// ServeModelTCP calls it automatically when cfg.MetricsAddr is set.
func EnableMetrics() { telemetry.Enable() }

// Pooling selection for zoo builders and stand-ins.
const (
	PoolMax = nn.PoolMax
	PoolAvg = nn.PoolAvg
)

// BuildModel returns a zoo architecture by name: "lenet5", "alexnet",
// "alexnet-mnist", "vgg16-cifar", "vgg16-imagenet", "resnet18-cifar",
// "resnet18-imagenet" or "resnet50-imagenet". Set cfg.Skeleton for
// cost-model-only graphs (mandatory at ImageNet scale).
func BuildModel(name string, cfg ZooConfig) (*Model, error) {
	return nn.ByName(name, cfg)
}

// ZCU104 returns the paper's evaluation platform (two boards, 200 MHz,
// 1 Gbps LAN).
func ZCU104() Accelerator { return fpga.ZCU104() }

// InferenceResult reports a secure inference.
type InferenceResult struct {
	// Logits are the revealed outputs (party i's view).
	Logits []int64
	// Class is the argmax of the logits.
	Class int
	// Setup and Online are party i's measured traffic for the two phases.
	Setup, Online CommStats
	// PerOp profiles every operator's measured communication.
	PerOp []engine.OpProfile
	// CarrierBits is the ring the inference ran on.
	CarrierBits uint
}

// SecureInfer runs a full two-party secure inference of the quantized
// model on the integer input: the model and input are secret-shared, both
// parties execute the AQ2PNN protocol over an instrumented in-process
// channel, and the logits are revealed to the user party.
func SecureInfer(m *Model, x []int64, cfg InferenceConfig) (*InferenceResult, error) {
	res, err := engine.RunLocal(m, x, networkConfig(cfg))
	if err != nil {
		return nil, err
	}
	class := res.Class
	if !cfg.RevealClassOnly {
		class = nn.Argmax(res.Logits)
	}
	return &InferenceResult{
		Logits:      res.Logits,
		Class:       class,
		Setup:       res.Setup,
		Online:      res.Online,
		PerOp:       res.PerOp,
		CarrierBits: res.Carrier.Bits,
	}, nil
}

// EstimateModel prices one secure inference of m at carrierBits on acc,
// using the analytic communication model (validated against measured
// protocol traffic) and the accelerator cycle model.
func EstimateModel(acc Accelerator, m *Model, carrierBits uint) (Estimate, error) {
	if carrierBits == 0 {
		carrierBits = m.InBits + engine.Margin
	}
	return acc.EstimateModel(m, ring.New(carrierBits), false)
}

// TrainStandin trains a reduced stand-in ("lenet5", "alexnet", "vgg16",
// "resnet18", "resnet50") on a synthetic dataset and returns it with its
// float test accuracy.
func TrainStandin(arch string, ds *Dataset, trainN, epochs int, seed uint64) (*Standin, float64, error) {
	if trainN >= ds.Len() {
		return nil, 0, fmt.Errorf("aq2pnn: trainN %d must leave test samples of %d", trainN, ds.Len())
	}
	tr, te := ds.Split(trainN)
	rng := prg.NewSeeded(seed)
	s, err := train.StandinByName(arch, rng, train.Max, ds.C, ds.H, ds.Classes)
	if err != nil {
		return nil, 0, err
	}
	if err := s.Net.Fit(tr.X, tr.Y, rng, train.Config{Epochs: epochs, LR: 0.01}); err != nil {
		return nil, 0, err
	}
	return s, s.Net.Accuracy(te.X, te.Y), nil
}

// Quantize applies the adaptive quantization of Sec. 5 to a trained
// stand-in, shaping per-layer bit-widths and dyadic BNReQ scales to the
// target carrier.
func Quantize(s *Standin, opts QuantOptions) (*Quantized, error) {
	return quant.Quantize(s, opts)
}

// SyntheticDataset builds one of the stand-in corpora: "mnist", "cifar10"
// or "imagenet".
func SyntheticDataset(name string, n int, seed uint64) (*Dataset, error) {
	switch name {
	case "mnist":
		return dataset.MNISTLike(n, seed)
	case "cifar10":
		return dataset.CIFARLike(n, seed)
	case "imagenet":
		return dataset.ImageNetLike(n, seed)
	default:
		return nil, fmt.Errorf("aq2pnn: unknown dataset %q", name)
	}
}

// ExperimentNames lists the table/figure generators accepted by
// RunExperiment.
func ExperimentNames() []string {
	return append([]string(nil), experiments.Names...)
}

// RunExperiment regenerates one of the paper's tables or figures, writing
// the rendered tables to w. quick shrinks the training workloads for fast
// runs.
func RunExperiment(name string, quick bool, seed uint64, w io.Writer) error {
	return experiments.NewSuite(experiments.Config{Quick: quick, Seed: seed}).Run(name, w)
}

// NewExperimentSuite returns a suite that caches trained stand-ins across
// multiple RunExperiment-style calls (use Suite.Run).
func NewExperimentSuite(quick bool, seed uint64) *experiments.Suite {
	return experiments.NewSuite(experiments.Config{Quick: quick, Seed: seed})
}

// Program is a compiled INST Q instruction stream for the accelerator.
type Program = fpga.Program

// CompileProgram lowers a model into the accelerator's INST Q instruction
// stream at the given carrier width (Sec. 4.1.1).
func CompileProgram(m *Model, carrierBits uint) (*Program, error) {
	if carrierBits == 0 {
		carrierBits = m.InBits + engine.Margin
	}
	return fpga.Compile(fpga.ZCU104(), m, ring.New(carrierBits), false)
}

// ServeModelTCP runs the model-provider side of a two-process deployment:
// it listens on addr and serves every connecting user a complete secure
// inference, with simultaneous clients handled concurrently. With
// cfg.ServeSessions > 0 it returns once that many sessions complete;
// otherwise it serves until ctx is cancelled (returning nil). Set
// cfg.DemoGroup for the small fast OT group in demonstrations (NOT
// cryptographically strong).
func ServeModelTCP(ctx context.Context, addr string, m *Model, cfg InferenceConfig) error {
	return serveTCP(ctx, addr, cfg, func(ctx context.Context, l *transport.Listener) error {
		return engine.ServeTCP(ctx, l, m, networkConfig(cfg), int(cfg.ServeSessions), nil)
	})
}

// serveTCP is the shared listener scaffolding of ServeModelTCP and
// ServeModelsTCP: bind the address, stand up the optional metrics
// endpoint, hand the listener to the serving loop.
func serveTCP(ctx context.Context, addr string, cfg InferenceConfig, serve func(context.Context, *transport.Listener) error) error {
	l, err := transport.NewListener(addr)
	if err != nil {
		return err
	}
	defer l.Close()
	if cfg.MetricsAddr != "" {
		telemetry.Enable()
		_, stop, err := telemetry.StartMetricsServer(cfg.MetricsAddr, telemetry.Default())
		if err != nil {
			return fmt.Errorf("aq2pnn: metrics endpoint: %w", err)
		}
		defer stop()
	}
	return serve(ctx, l)
}

// SecureInferTCP runs one secure inference against a provider at addr: a
// thin wrapper that opens a Session, infers once and closes. Programs
// making more than one inference should hold the Session open themselves
// (Dial → OpenSession → Infer…) — the per-inference setup cost this
// wrapper pays is exactly what the session API amortises away. The
// dial/agreement/retry semantics are Dial's; with cfg.Retries > 0 a
// transient mid-protocol failure re-establishes and replays the
// inference. Use IsTransient to classify a final error.
func SecureInferTCP(ctx context.Context, addr string, m *Model, x []int64, cfg InferenceConfig) (*InferenceResult, error) {
	s, err := Dial(addr, cfg).OpenSession(ctx, m)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, err := s.Infer(ctx, x)
	if err != nil {
		return nil, err
	}
	res.Setup = s.SetupStats()
	return res, nil
}

// SaveModel writes a quantized model artifact (graph, weights, BNReQ
// scales and the quantizer's input scale) to a file.
func SaveModel(path string, m *Model, inScale float64) error {
	return nn.Save(path, m, inScale)
}

// LoadModel reads a model artifact written by SaveModel.
func LoadModel(path string) (*Model, float64, error) {
	return nn.Load(path)
}

// BatchResult reports a batched secure inference (one setup, many images).
type BatchResult = engine.BatchResult

// SecureInferBatch runs secure inference over a batch of quantized inputs
// with a single weight-preparation phase, the deployment pattern behind
// the paper's 1,000-iteration throughput averages. Images are pipelined
// over cfg.Workers lanes with bit-identical results at every setting.
func SecureInferBatch(m *Model, xs [][]int64, cfg InferenceConfig) (*BatchResult, error) {
	return engine.RunLocalBatch(m, xs, networkConfig(cfg))
}
