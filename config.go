package aq2pnn

import (
	"time"

	"aq2pnn/internal/engine"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/telemetry"
)

// ComputeConfig holds the per-inference protocol knobs: everything that
// shapes one inference's transcript and results, independent of how (or
// whether) the two parties are networked.
type ComputeConfig struct {
	// CarrierBits is the ring width ℓc (0 = model bits + 4, the paper's
	// adaptive rule).
	CarrierBits uint
	// Seed makes the protocol randomness reproducible.
	Seed uint64
	// LocalTrunc selects the paper's zero-communication local truncation
	// for requantization (the ablation of EXPERIMENTS.md) instead of the
	// default faithful truncation.
	LocalTrunc bool
	// ABReLUBits contracts the sign computation of every ReLU onto a
	// narrower ring ("output bits sent to the ABReLU operator"); 0 keeps
	// the carrier width.
	ABReLUBits uint
	// RevealClassOnly replaces the logit reveal with a secure argmax: the
	// user learns only the predicted class.
	RevealClassOnly bool
	// Workers caps local compute parallelism (GEMM rows, SCM token
	// matrices, batch pipelining); 0 uses all CPUs. Results are
	// bit-identical at every setting.
	Workers uint
	// Trace, when non-nil, records a span per protocol phase, layer and
	// secure operator, each carrying its exact share of the measured
	// traffic. Export with WriteChromeTrace or TraceTable. A nil tracer
	// costs one branch per instrumentation point and never changes results.
	Trace *Tracer
	// FillWorkers caps the preprocessing filler's local compute parallelism
	// independently of Workers, so background fill does not steal the
	// online path's CPUs; 0 uses all CPUs. Ignored unless BankDepth
	// enables the preprocessing plane.
	FillWorkers uint
}

// NetConfig holds the session-level knobs of the networked entrypoints:
// dial/retry behaviour, serving limits and budgets, operational endpoints.
// Local runs (SecureInfer, SecureInferBatch) ignore it.
type NetConfig struct {
	// DemoGroup selects the small fast OT group on the TCP entrypoints
	// (NOT cryptographically strong; demos and tests only).
	DemoGroup bool
	// DialTimeout bounds the connection retry window of Dial and
	// SecureInferTCP; 0 means 10 seconds.
	DialTimeout time.Duration
	// Retries is how many additional attempts the client makes after a
	// transient failure (connection reset, provider crash mid-protocol).
	// One-shot inference replays the deterministic transcript from
	// scratch; an open Session instead re-attaches to the provider's
	// cached state through its resumption token and recomputes only the
	// interrupted inference. Permanent errors (handshake or payload
	// mismatches) are never retried. 0 = a single attempt.
	Retries uint
	// RetryBase is the first retry's backoff delay (default 100ms),
	// doubling per attempt with deterministic seed-derived jitter.
	RetryBase time.Duration
	// SessionTimeout bounds one connection end to end on both sides: each
	// one-shot attempt, each Session.Infer attempt, and each ServeModelTCP
	// connection (for a persistent session that is the whole connection
	// lifetime — prefer IdleTimeout for per-frame patience); 0 disables it.
	SessionTimeout time.Duration
	// DrainGrace is how long ServeModelTCP lets in-flight sessions finish
	// after its context is cancelled before force-closing them; 0 tears
	// sessions down immediately on cancellation.
	DrainGrace time.Duration
	// ServeSessions makes ServeModelTCP return after that many sessions
	// complete; 0 serves until its context is cancelled.
	ServeSessions uint
	// MaxConcurrentSessions caps ServeModelTCP's in-flight sessions.
	// Connections past the cap are shed immediately with a busy-reject
	// the client classifies as transient (its retry/backoff loop
	// re-attempts once a slot may have freed); 0 = unlimited.
	MaxConcurrentSessions int
	// IdleTimeout is ServeModelTCP's per-frame patience: a peer that
	// stalls mid-frame longer than this (a slow-loris) has its session cut
	// with a transient error; 0 disables the defence. For persistent
	// sessions it also bounds how long an attached-but-silent client may
	// hold its connection (the parked state stays resumable).
	IdleTimeout time.Duration
	// MemBudget caps the bytes one ServeModelTCP session may make the
	// provider buffer, counting every received frame payload plus the
	// announced setup-payload total against it — size it at roughly twice
	// the model's setup volume. A peer declaring past the budget is
	// rejected before allocation; 0 = unlimited.
	MemBudget uint64
	// HandshakeTimeout bounds the wait for the peer's hello on both TCP
	// entrypoints; 0 applies the 30s default, negative disables it.
	HandshakeTimeout time.Duration
	// SessionCache caps how many detached persistent sessions the provider
	// keeps resumable (weight-prepared state parked after a client's
	// transport fault). 0 keeps the default (64); negative disables
	// resumption caching entirely.
	SessionCache int
	// MetricsAddr, when non-empty, makes ServeModelTCP serve /metrics
	// (Prometheus text) and /debug/pprof on that address for its lifetime.
	// An address without a host (":9090") binds loopback only: the
	// endpoint exposes operational detail, so reaching it from another
	// machine requires an explicit interface address.
	MetricsAddr string
	// BankDepth enables the asynchronous preprocessing plane on persistent
	// sessions (Dial/OpenSession): background fillers pre-generate up to
	// BankDepth inference kits over a dedicated fill stream multiplexed
	// onto the session connection, so warm steady-state inferences run no
	// triple generation online. 0 disables the plane. Warm and cold
	// inferences reveal byte-identical logits.
	BankDepth int
	// FillWatermark is how many inferences ahead of consumption the
	// preprocessing filler runs; 0 (or anything outside [1, BankDepth])
	// runs the full bank depth ahead.
	FillWatermark uint
}

// InferenceConfig controls every secure-inference entrypoint: local
// (SecureInfer), batched (SecureInferBatch) and networked (ServeModelTCP,
// Dial/OpenSession, SecureInferTCP). It composes the per-inference
// ComputeConfig with the session-level NetConfig; both sections' fields
// stay promoted (cfg.CarrierBits, cfg.Retries, …), so existing field
// access keeps working. The zero value is a working configuration.
type InferenceConfig struct {
	ComputeConfig
	NetConfig
}

// networkConfig is the single exhaustive translation from the facade
// configuration to engine.Options. Every ComputeConfig and NetConfig
// field is either mapped here or consumed by the facade itself
// (DialTimeout, ServeSessions, MetricsAddr, DemoGroup→Group); the mirror
// structs below force a compile error at this site whenever a field is
// added to either side, and TestNetworkConfigExhaustive asserts the
// value-level mapping.
func networkConfig(cfg InferenceConfig) engine.Options {
	nc := engine.Options{
		// ComputeConfig → engine.Options.
		CarrierBits:     cfg.CarrierBits,
		Seed:            cfg.Seed,
		LocalTrunc:      cfg.LocalTrunc,
		ABReLUBits:      cfg.ABReLUBits,
		RevealClassOnly: cfg.RevealClassOnly,
		Workers:         cfg.Workers,
		Trace:           cfg.Trace,
		FillWorkers:     cfg.FillWorkers,
		// NetConfig → engine.Options.
		Retries:               cfg.Retries,
		RetryBase:             cfg.RetryBase,
		SessionTimeout:        cfg.SessionTimeout,
		DrainGrace:            cfg.DrainGrace,
		MaxConcurrentSessions: cfg.MaxConcurrentSessions,
		IdleTimeout:           cfg.IdleTimeout,
		MemBudget:             cfg.MemBudget,
		HandshakeTimeout:      cfg.HandshakeTimeout,
		SessionCache:          cfg.SessionCache,
		BankDepth:             cfg.BankDepth,
		FillWatermark:         cfg.FillWatermark,
	}
	if cfg.DemoGroup {
		nc.Group = ot.TestGroup()
	}
	return nc
}

// The mirror types re-declare the exact field sets of ComputeConfig,
// NetConfig and engine.Options. A struct conversion compiles only while
// the field names, types and order match, so adding (or renaming) a field
// on either side of the translation breaks this file until networkConfig
// is revisited — the compile-time field-count guard.
type computeConfigMirror struct {
	CarrierBits     uint
	Seed            uint64
	LocalTrunc      bool
	ABReLUBits      uint
	RevealClassOnly bool
	Workers         uint
	Trace           *telemetry.Tracer
	FillWorkers     uint
}

type netConfigMirror struct {
	DemoGroup             bool
	DialTimeout           time.Duration
	Retries               uint
	RetryBase             time.Duration
	SessionTimeout        time.Duration
	DrainGrace            time.Duration
	ServeSessions         uint
	MaxConcurrentSessions int
	IdleTimeout           time.Duration
	MemBudget             uint64
	HandshakeTimeout      time.Duration
	SessionCache          int
	MetricsAddr           string
	BankDepth             int
	FillWatermark         uint
}

type engineOptionsMirror struct {
	CarrierBits           uint
	Seed                  uint64
	LocalTrunc            bool
	ABReLUBits            uint
	RevealClassOnly       bool
	Workers               uint
	Group                 ot.Group
	NoExtension           bool
	Trace                 *telemetry.Tracer
	Retries               uint
	RetryBase             time.Duration
	SessionTimeout        time.Duration
	DrainGrace            time.Duration
	MaxConcurrentSessions int
	IdleTimeout           time.Duration
	MemBudget             uint64
	HandshakeTimeout      time.Duration
	SessionCache          int
	BankDepth             int
	FillWorkers           uint
	FillWatermark         uint
}

var (
	_ = computeConfigMirror(ComputeConfig{})
	_ = netConfigMirror(NetConfig{})
	_ = engineOptionsMirror(engine.Options{})
)
