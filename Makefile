GO ?= go

# The vettool binary is cached here; `go build` is a no-op when the lint
# sources are unchanged, so repeat `make lint` runs pay only for go vet.
LINTBIN ?= bin/aq2pnnlint

.PHONY: build test race vet lint lintbin bench bench-matmul bench-batch bench-session bench-preproc bench-online bench-gateway benchgate chaos chaos-fleet fuzz ci

# Per-target budget for `make fuzz`; CI uses 30s per target on PRs.
FUZZTIME ?= 60s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the protocol tests ~10x; give the slowest
# package (internal/engine) headroom beyond the default 10m.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

lintbin:
	$(GO) build -o $(LINTBIN) ./cmd/aq2pnnlint

# Project invariants (ring reduction, PRG-only randomness, transport error
# discipline, ...) via the aq2pnnlint analyzer suite. See DESIGN.md,
# "Static invariants".
lint: lintbin
	$(GO) vet -vettool=$(LINTBIN) ./...

# Serial-vs-parallel GEMM kernel on the 32-bit ring (512x512x512).
bench-matmul:
	$(GO) test ./internal/tensor/ -run XXX -bench 'BenchmarkMatMulMod512' -benchmem

# Batched secure inference throughput at different Workers settings.
bench-batch:
	$(GO) test . -run XXX -bench 'BenchmarkSecureInferBatch' -benchtime 2x

# Persistent-session steady state over localhost TCP (docs/sessions.md):
# fails if any setup bytes are paid after open or the per-inference wire
# cost is not byte-identical, then re-verifies the span attribution and
# session structure on the emitted trace.
bench-session:
	$(GO) run ./cmd/sessionbench -model micro -n 8 -trace session-trace.json
	$(GO) run ./cmd/tracecheck session-trace.json

# Warm-vs-cold comparison of the asynchronous preprocessing plane
# (docs/preprocessing.md): fails unless the warm online p50 is strictly
# below the cold one, then re-verifies on the warm trace that no triple
# generation ran under a steady-state infer root. Refreshes BENCH_9.json,
# then holds it against the committed BENCH_8.json baseline.
bench-preproc:
	$(GO) run ./cmd/sessionbench -model micro -n 8 -bench-out BENCH_9.json -trace preproc-trace.json
	$(GO) run ./cmd/tracecheck preproc-trace.json
	$(GO) run ./cmd/benchgate BENCH_8.json BENCH_9.json

# Allocation gate for the online hot path (docs/performance.md): the
# serial 512-cubed modular GEMM through the Into kernels must report
# 0 allocs/op, or the steady-state inference loop has started allocating.
bench-online:
	$(GO) test ./internal/tensor/ -run '^$$' -bench '^BenchmarkMatMulMod512$$' -benchmem | tee /dev/stderr | \
		grep -Eq 'BenchmarkMatMulMod512\S*\s.*\s0 allocs/op' || \
		{ echo "bench-online: BenchmarkMatMulMod512 is allocating (want 0 allocs/op)"; exit 1; }

# Gateway fleet under load (docs/robustness.md): loadgen self-hosts
# three providers behind the gateway, streams concurrent mixed-model
# sessions with a mid-run backend kill, refreshes BENCH_10.json, and
# holds it against the committed BENCH_9.json baseline (structural gate:
# zero failed sessions, reroutes present, sane percentiles).
bench-gateway:
	$(GO) run ./cmd/loadgen -sessions 120 -inferences 3 -concurrency 12 -chaos -out BENCH_10.json
	$(GO) run ./cmd/benchgate BENCH_9.json BENCH_10.json

# Bench-regression gate over the committed baseline pairs: fails when a
# report regresses more than 10% against its predecessor (or, across the
# session->fleet schema boundary, fails the structural health gate).
benchgate:
	$(GO) run ./cmd/benchgate BENCH_8.json BENCH_9.json
	$(GO) run ./cmd/benchgate BENCH_9.json BENCH_10.json

bench: bench-matmul bench-batch bench-session bench-preproc bench-online bench-gateway

# Deterministic chaos harness (docs/robustness.md): the sampled fault
# sweep under the race detector, then the exhaustive micro sweep and the
# sampled networked-LeNet5 sweep without it. Mirrors the CI chaos job.
chaos:
	$(GO) test -race -timeout 20m -count=1 -run 'TestFaultSweep|TestServeTCP|TestRunUserWithRetry|TestChaosConn' ./internal/engine/ ./internal/transport/
	AQ2PNN_CHAOS=1 AQ2PNN_CHAOS_LENET=1 $(GO) test -timeout 30m -count=1 -run 'TestFaultSweep' ./internal/engine/

# Fleet-level chaos (docs/robustness.md): the gateway's three-backend
# sweep — kill/stall/corrupt one backend at every sampled mid-inference
# operation index; every session must fail over and finish with
# bit-identical logits. The sampled sweep runs under the race detector;
# AQ2PNN_CHAOS_FLEET=1 then widens it to a stride across the whole
# inference window.
chaos-fleet:
	$(GO) test -race -timeout 20m -count=1 ./internal/gateway/
	AQ2PNN_CHAOS_FLEET=1 $(GO) test -timeout 30m -count=1 -run 'TestFleetChaos' ./internal/gateway/

# Protocol fuzzing suite (docs/robustness.md, "Hostile peers"): every
# wire decoder that consumes peer-controlled bytes, from its committed
# seed corpus in testdata/fuzz/.
fuzz:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz '^FuzzRecvFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine/ -run '^$$' -fuzz '^FuzzRecvSetup$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine/ -run '^$$' -fuzz '^FuzzHandshakeHello$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine/ -run '^$$' -fuzz '^FuzzShareCodec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ot/ -run '^$$' -fuzz '^FuzzOTFlowHeader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/scm/ -run '^$$' -fuzz '^FuzzSCMMessage$$' -fuzztime $(FUZZTIME)

ci: vet lint build race benchgate
