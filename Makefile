GO ?= go

.PHONY: build test race vet bench bench-matmul bench-batch ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the protocol tests ~10x; give the slowest
# package (internal/engine) headroom beyond the default 10m.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# Serial-vs-parallel GEMM kernel on the 32-bit ring (512x512x512).
bench-matmul:
	$(GO) test ./internal/tensor/ -run XXX -bench 'BenchmarkMatMulMod512' -benchmem

# Batched secure inference throughput at different Workers settings.
bench-batch:
	$(GO) test . -run XXX -bench 'BenchmarkSecureInferBatch' -benchtime 2x

bench: bench-matmul bench-batch

ci: vet build race
