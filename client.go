package aq2pnn

import (
	"context"
	"time"

	"aq2pnn/internal/engine"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/transport"
)

// SessionToken identifies a provider-side persistent session for
// re-attachment after a transport fault. It is an opaque capability in the
// semi-honest model: uniqueness matters, secrecy does not.
type SessionToken = engine.SessionToken

// Client is the user-side entry to persistent secure-inference sessions
// against one provider address. It holds configuration, not a connection
// — sessions dial (and re-dial after faults) on their own — so a single
// Client may open any number of concurrent sessions.
//
//	c := aq2pnn.Dial("provider:9000", cfg)
//	s, err := c.OpenSession(ctx, model)
//	defer s.Close()
//	res, err := s.Infer(ctx, x) // online traffic only, setup paid at open
type Client struct {
	c   *engine.Client
	cfg InferenceConfig
}

// Dial returns a client for the provider at addr. No connection is made
// yet: each OpenSession dials lazily, retrying the dial for
// cfg.DialTimeout (10 s when zero) so the two processes may start in
// either order. Both sides must agree on the model architecture, carrier
// width and seed — a disagreement fails the session handshake with the
// same typed HandshakeError on both processes.
func Dial(addr string, cfg InferenceConfig) *Client {
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	dial := func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, addr, timeout)
	}
	return &Client{c: engine.NewClient(dial, networkConfig(cfg)), cfg: cfg}
}

// OpenSession establishes a persistent session for the model: handshake,
// weight-share exchange and triple-family preparation happen once, here;
// every subsequent Session.Infer costs only that inference's online
// traffic. Transient failures are retried per cfg.Retries.
func (c *Client) OpenSession(ctx context.Context, m *Model) (*Session, error) {
	s, err := c.c.OpenSession(ctx, m)
	if err != nil {
		return nil, err
	}
	return &Session{s: s, cfg: c.cfg}, nil
}

// Session is one persistent inference session. Setup is paid at open; any
// number of Infer calls stream over the prepared state. A transport fault
// mid-stream re-dials and re-attaches through the session's resumption
// token: the provider restores its parked state and the interrupted
// inference is replayed bit-identically, with no setup traffic. A Session
// is not safe for concurrent use; open one per goroutine.
type Session struct {
	s   *engine.Session
	cfg InferenceConfig
}

// Infer runs one secure inference over the session. The result's Online
// stats are this inference's exact wire cost; its Setup stats are zero —
// the session's setup traffic is reported once by SetupStats.
func (s *Session) Infer(ctx context.Context, x []int64) (*InferenceResult, error) {
	res, err := s.s.Infer(ctx, x)
	if err != nil {
		return nil, err
	}
	return s.result(res), nil
}

// InferBatch streams a batch of inputs over the session, one inference
// each, stopping at the first failure (the completed prefix is returned
// alongside the error).
func (s *Session) InferBatch(ctx context.Context, xs [][]int64) ([]*InferenceResult, error) {
	rs, err := s.s.InferBatch(ctx, xs)
	out := make([]*InferenceResult, len(rs))
	for i, r := range rs {
		out[i] = s.result(r)
	}
	return out, err
}

func (s *Session) result(res *engine.Result) *InferenceResult {
	class := res.Class
	if !s.cfg.RevealClassOnly {
		class = nn.Argmax(res.Logits)
	}
	return &InferenceResult{
		Logits:      res.Logits,
		Class:       class,
		Online:      res.Online,
		PerOp:       res.PerOp,
		CarrierBits: res.Carrier.Bits,
	}
}

// SetupStats reports the session's cumulative setup traffic: the open
// (handshake, weight shares, triple preparation) plus any re-attach
// exchanges after faults. Steady-state inferences add nothing here.
func (s *Session) SetupStats() CommStats { return s.s.SetupStats() }

// Token returns the session's resumption token.
func (s *Session) Token() SessionToken { return s.s.Token() }

// Close ends the session and releases the provider's state. A cleanly
// closed session is not resumable. Closing twice is a no-op.
func (s *Session) Close() error { return s.s.Close() }

// ModelRegistry is the provider-side model set behind ServeModelsTCP:
// models keyed by architecture fingerprint, hot-addable and -removable
// while serving. Repeated sessions of one model reuse its cached weight
// split instead of re-splitting and re-encoding the weights.
type ModelRegistry struct {
	reg *engine.Registry
}

// NewModelRegistry returns an empty registry.
func NewModelRegistry() *ModelRegistry {
	return &ModelRegistry{reg: engine.NewRegistry()}
}

// Add registers (or replaces) a model. The model must carry real weights;
// replacing a model invalidates its cached weight split.
func (r *ModelRegistry) Add(m *Model) error { return r.reg.Add(m) }

// Remove unregisters a model and drops its cached split and parked
// sessions. In-flight sessions finish undisturbed; new clients asking for
// it fail their handshake with the typed model-fingerprint mismatch.
func (r *ModelRegistry) Remove(m *Model) { r.reg.Remove(m) }

// Len reports how many models are registered.
func (r *ModelRegistry) Len() int { return r.reg.Len() }

// ServeModelsTCP is the multi-model provider loop: it listens on addr and
// dispatches every connecting client against the registry by the model
// fingerprint in its hello. Clients using the Session API get the
// persistent flow — setup once, then a stream of inferences, with faulted
// sessions parked for token re-attachment; one-shot clients are served as
// by ServeModelTCP. Shutdown, draining, admission control and the
// hostile-peer defences match ServeModelTCP.
func ServeModelsTCP(ctx context.Context, addr string, reg *ModelRegistry, cfg InferenceConfig) error {
	return serveTCP(ctx, addr, cfg, func(ctx context.Context, l *transport.Listener) error {
		return engine.ServeRegistryTCP(ctx, l, reg.reg, networkConfig(cfg), int(cfg.ServeSessions), nil)
	})
}
