// Package triple provides Beaver multiplication triples, the pre-computed
// constants (AS-CST buffer) that power ciphertext-ciphertext GEMM:
// matrices [[A]], [[B]], [[Z]] with Z = rec(A) ⊗ rec(B) (Sec. 4.1.2).
//
// Two offline generators are provided. The trusted Dealer mirrors the
// paper's treatment of triples as pre-deployed constants (the paper points
// at HE [60] or OT [28] for their generation and leaves it offline). The
// Gilboa generator actually runs the OT-based protocol over the session
// connection, so the full pipeline can be exercised without any trusted
// party.
package triple

import (
	"fmt"
	"sync"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/tensor"
)

// countConsumed records one consumed matrix triple in the default
// telemetry registry: the triple itself and its scalar-multiplication
// volume M·K·N (the unit the paper's offline-cost accounting uses). One
// branch when collection is disabled.
func countConsumed(m, k, n int) {
	if !telemetry.Enabled() {
		return
	}
	telemetry.Count("aq2pnn_triples_consumed_total", 1)
	//lint:allow ringmask metric arithmetic on matrix dimensions, not on ring shares
	telemetry.Count("aq2pnn_triple_muls_total", uint64(m)*uint64(k)*uint64(n))
}

// Mat is one party's share of a matrix multiplication triple for the
// product (M×K) ⊗ (K×N).
type Mat struct {
	R       ring.Ring
	M, K, N int
	A       []uint64 // share of the random input mask  (M×K)
	B       []uint64 // share of the random weight mask (K×N)
	Z       []uint64 // share of Z = rec(A) ⊗ rec(B)    (M×N)
}

// Key identifies a triple shape for buffering.
func (t *Mat) Key() string { return matKey(t.R, t.M, t.K, t.N) }

func matKey(r ring.Ring, m, k, n int) string {
	return fmt.Sprintf("%d:%dx%dx%d", r.Bits, m, k, n)
}

// DealMat samples a fresh matrix triple and splits it between the parties.
func DealMat(g *prg.PRG, r ring.Ring, m, k, n int) (p0, p1 *Mat) {
	a := g.Elems(m*k, r)
	b := g.Elems(k*n, r)
	z := tensor.MatMulMod(a, b, m, k, n, r.Mask)
	p0 = &Mat{R: r, M: m, K: k, N: n}
	p1 = &Mat{R: r, M: m, K: k, N: n}
	split := func(x []uint64) (s0, s1 []uint64) {
		s0 = make([]uint64, len(x))
		s1 = make([]uint64, len(x))
		g.FillElems(s0, r)
		r.SubVec(s1, x, s0)
		return
	}
	p0.A, p1.A = split(a)
	p0.B, p1.B = split(b)
	p0.Z, p1.Z = split(z)
	return p0, p1
}

// Source supplies one party's triples in protocol order. Both parties must
// request identical shapes in identical order, which holds because they
// execute the same layer schedule.
type Source interface {
	MatTriple(r ring.Ring, m, k, n int) (*Mat, error)
}

// Dealer is the in-process trusted offline phase shared by the two
// parties' DealerSource views. It is safe for concurrent use.
type Dealer struct {
	mu       sync.Mutex
	g        *prg.PRG
	queue    map[string][2][]*Mat // per shape, per party, FIFO of undelivered views
	families map[string]*dealerFamilyState
}

// NewDealer returns a dealer drawing randomness from g.
func NewDealer(g *prg.PRG) *Dealer {
	return &Dealer{g: g, queue: map[string][2][]*Mat{}}
}

// take returns the next triple view for the party, dealing a new triple
// when that party's queue is empty. The peer's undelivered queue is
// bounded by MaxPending (see family.go): the parties request identical
// shapes in identical order, so a deeper backlog is a schedule bug.
func (d *Dealer) take(party int, r ring.Ring, m, k, n int) (*Mat, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := matKey(r, m, k, n)
	q := d.queue[key]
	if len(q[party]) == 0 {
		if len(q[1-party]) >= MaxPending {
			return nil, fmt.Errorf("triple: dealer queue for party %d holds %d undelivered %s triples (max %d)",
				1-party, len(q[1-party]), key, MaxPending)
		}
		p0, p1 := DealMat(d.g, r, m, k, n)
		q[0] = append(q[0], p0)
		q[1] = append(q[1], p1)
	}
	out := q[party][0]
	q[party] = q[party][1:]
	if len(q[0]) == 0 && len(q[1]) == 0 {
		delete(d.queue, key)
	} else {
		d.queue[key] = q
	}
	return out, nil
}

// SourceFor returns the party's view of the dealer.
func (d *Dealer) SourceFor(party int) Source { return &dealerSource{d: d, party: party} }

type dealerSource struct {
	d     *Dealer
	party int
}

func (s *dealerSource) MatTriple(r ring.Ring, m, k, n int) (*Mat, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, fmt.Errorf("triple: non-positive dims %dx%dx%d", m, k, n)
	}
	countConsumed(m, k, n)
	return s.d.take(s.party, r, m, k, n)
}
