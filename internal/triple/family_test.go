package triple

import (
	"sync"
	"testing"

	"aq2pnn/internal/ot"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
	"aq2pnn/internal/transport"
)

func checkFamilyTriple(t *testing.T, r ring.Ring, m int, f0, f1 Family) {
	t.Helper()
	var t0, t1 *Mat
	var e0, e1 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); t0, e0 = f0.Next(m) }()
	go func() { defer wg.Done(); t1, e1 = f1.Next(m) }()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatal(e0, e1)
	}
	checkTriple(t, r, t0, t1)
	// B must be the family's fixed mask.
	for i := range t0.B {
		if t0.B[i] != f0.BShare()[i] || t1.B[i] != f1.BShare()[i] {
			t.Fatal("triple B diverges from the family mask")
		}
	}
}

func TestDealerFamilyFixedBFreshA(t *testing.T) {
	d := NewDealer(prg.NewSeeded(20))
	r := ring.New(16)
	f0, err := d.Family(0, "layer1", r, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := d.Family(1, "layer1", r, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkFamilyTriple(t, r, 2, f0, f1)
	checkFamilyTriple(t, r, 2, f0, f1) // fresh A, same B
	checkFamilyTriple(t, r, 5, f0, f1) // different row count

	// Consecutive A masks must differ (fresh randomness per inference).
	a1, _ := f0.Next(2)
	b1, _ := f1.Next(2)
	a2, _ := f0.Next(2)
	b2, _ := f1.Next(2)
	r.AddVec(a1.A, a1.A, b1.A)
	r.AddVec(a2.A, a2.A, b2.A)
	same := true
	for i := range a1.A {
		if a1.A[i] != a2.A[i] {
			same = false
		}
	}
	if same {
		t.Error("family reused the input mask A across inferences")
	}
}

func TestDealerFamilyDistinctLayers(t *testing.T) {
	d := NewDealer(prg.NewSeeded(21))
	r := ring.New(12)
	fa0, _ := d.Family(0, "convA", r, 2, 2)
	fb0, _ := d.Family(0, "convB", r, 2, 2)
	same := true
	for i := range fa0.BShare() {
		if fa0.BShare()[i] != fb0.BShare()[i] {
			same = false
		}
	}
	if same {
		t.Error("different layers share a weight mask")
	}
	if _, err := d.Family(0, "bad", r, 0, 1); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := fa0.Next(0); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestGilboaFamily(t *testing.T) {
	r := ring.New(10)
	dealer := ot.NewDealer(prg.NewSeeded(22))
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	e0 := ot.NewEndpoint(0, a, prg.NewSeeded(23))
	e0.Dealer = dealer
	e1 := ot.NewEndpoint(1, b, prg.NewSeeded(24))
	e1.Dealer = dealer
	f0 := NewGilboaFamily(e0, prg.NewSeeded(25), 0, r, 3, 2)
	f1 := NewGilboaFamily(e1, prg.NewSeeded(26), 1, r, 3, 2)
	checkFamilyTriple(t, r, 2, f0, f1)
	checkFamilyTriple(t, r, 2, f0, f1)
	if _, err := f0.Next(0); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestFamilyTripleUsableForBeaver(t *testing.T) {
	// The family triple must actually support a Beaver multiplication:
	// OUT = −p·E⊗F + IN_p⊗F + E⊗W_p + Z_p reconstructs to IN⊗W when the
	// weight equals rec(B)+F.
	d := NewDealer(prg.NewSeeded(27))
	r := ring.New(16)
	g := prg.NewSeeded(28)
	k, n, m := 3, 2, 2
	f0, _ := d.Family(0, "l", r, k, n)
	f1, _ := d.Family(1, "l", r, k, n)
	t0, _ := f0.Next(m)
	t1, _ := f1.Next(m)

	in := g.Elems(m*k, r)
	w := g.Elems(k*n, r)
	in0 := g.Elems(m*k, r)
	in1 := make([]uint64, m*k)
	r.SubVec(in1, in, in0)
	w0 := g.Elems(k*n, r)
	w1 := make([]uint64, k*n)
	r.SubVec(w1, w, w0)

	e := make([]uint64, m*k)
	r.SubVec(e, in0, t0.A)
	tmp := make([]uint64, m*k)
	r.SubVec(tmp, in1, t1.A)
	r.AddVec(e, e, tmp)
	f := make([]uint64, k*n)
	r.SubVec(f, w0, t0.B)
	tmpF := make([]uint64, k*n)
	r.SubVec(tmpF, w1, t1.B)
	r.AddVec(f, f, tmpF)

	outP := func(p int, inS, wS []uint64, tr *Mat) []uint64 {
		out := tensor.MatMulMod(e, wS, m, k, n, r.Mask)
		if p == 1 {
			ef := tensor.MatMulMod(e, f, m, k, n, r.Mask)
			r.SubVec(out, out, ef)
		}
		inf := tensor.MatMulMod(inS, f, m, k, n, r.Mask)
		r.AddVec(out, out, inf)
		r.AddVec(out, out, tr.Z)
		return out
	}
	o0 := outP(0, in0, w0, t0)
	o1 := outP(1, in1, w1, t1)
	got := make([]uint64, m*n)
	r.AddVec(got, o0, o1)
	want := tensor.MatMulMod(in, w, m, k, n, r.Mask)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Beaver output [%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
