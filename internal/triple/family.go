package triple

import (
	"fmt"

	"aq2pnn/internal/ot"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/tensor"
)

// A triple *family* serves one linear layer with static weights: the
// weight-side mask B is fixed, so the opened F = rec(W) − rec(B) can be
// "pre-deployed in the memory of each party" (Sec. 4.1.2) and only the
// input-side mask E is exchanged per inference. Each call to Next yields a
// fresh input mask A and the matching Z = rec(A) ⊗ rec(B).

// Family is one party's handle to a layer's triple family.
type Family interface {
	// BShare returns this party's share of the fixed weight mask (K×N).
	BShare() []uint64
	// Next returns a fresh triple for an M-row multiplication against the
	// fixed B.
	Next(m int) (*Mat, error)
}

// MaxPending bounds every undelivered-triple queue in this package (the
// dealer's per-shape and per-family queues) and anchors the preprocessing
// plane's bank depth: no component may hold more than MaxPending triples
// per (shape, party) ahead of consumption. The two parties' consumption
// runs in lockstep, so a queue past this bound means a protocol-order bug
// (or a hostile schedule), not a legitimate working set.
const MaxPending = 256

type dealerFamilyState struct {
	b       []uint64
	bShares [2][]uint64
	queues  map[int][2][]*Mat // per m, per party
}

// Family returns the party's view of the layer family identified by id,
// creating it (with a fixed random B) on first use.
func (d *Dealer) Family(party int, id string, r ring.Ring, k, n int) (Family, error) {
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("triple: non-positive family dims %dx%d", k, n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.families == nil {
		d.families = map[string]*dealerFamilyState{}
	}
	key := fmt.Sprintf("%s|%s|%dx%d", id, r, k, n)
	st := d.families[key]
	if st == nil {
		b := d.g.Elems(k*n, r)
		s0 := d.g.Elems(k*n, r)
		s1 := make([]uint64, k*n)
		r.SubVec(s1, b, s0)
		st = &dealerFamilyState{b: b, bShares: [2][]uint64{s0, s1}, queues: map[int][2][]*Mat{}}
		d.families[key] = st
	}
	return &dealerFamily{d: d, st: st, party: party, r: r, k: k, n: n}, nil
}

type dealerFamily struct {
	d     *Dealer
	st    *dealerFamilyState
	party int
	r     ring.Ring
	k, n  int
}

func (f *dealerFamily) BShare() []uint64 { return f.st.bShares[f.party] }

func (f *dealerFamily) Next(m int) (*Mat, error) {
	if m <= 0 {
		return nil, fmt.Errorf("triple: non-positive row count %d", m)
	}
	countConsumed(m, f.k, f.n)
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	q := f.st.queues[m]
	if len(q[f.party]) == 0 {
		// Generating for ourselves also queues the peer's view. A peer
		// that never consumes would grow its queue without bound, so the
		// generation that would push it past MaxPending fails instead: the
		// parties' layer schedules are identical, so a backlog this deep is
		// a protocol-order bug, not demand.
		if len(q[1-f.party]) >= MaxPending {
			return nil, fmt.Errorf("triple: family queue for party %d holds %d undelivered %d-row triples (max %d)",
				1-f.party, len(q[1-f.party]), m, MaxPending)
		}
		a := f.d.g.Elems(m*f.k, f.r)
		z := tensor.MatMulMod(a, f.st.b, m, f.k, f.n, f.r.Mask)
		split := func(x []uint64) (s0, s1 []uint64) {
			s0 = f.d.g.Elems(len(x), f.r)
			s1 = make([]uint64, len(x))
			f.r.SubVec(s1, x, s0)
			return
		}
		a0, a1 := split(a)
		z0, z1 := split(z)
		mk := func(as, zs, bs []uint64) *Mat {
			return &Mat{R: f.r, M: m, K: f.k, N: f.n, A: as, B: bs, Z: zs}
		}
		q[0] = append(q[0], mk(a0, z0, f.st.bShares[0]))
		q[1] = append(q[1], mk(a1, z1, f.st.bShares[1]))
	}
	out := q[f.party][0]
	q[f.party] = q[f.party][1:]
	if len(q[0]) == 0 && len(q[1]) == 0 {
		// Both views delivered: drop the per-m entry so long-lived dealers
		// (batch executors cycling through many shapes) do not accumulate
		// empty queue headers.
		delete(f.st.queues, m)
	} else {
		f.st.queues[m] = q
	}
	return out, nil
}

// GilboaFamily generates family triples through the OT-based protocol: B
// shares are drawn locally once; every Next runs the two Gilboa cross
// products for a fresh A. Both parties must call Next in lockstep.
type GilboaFamily struct {
	EP     *ot.Endpoint
	Rng    *prg.PRG
	Party  int
	R      ring.Ring
	K, N   int
	bShare []uint64
	// Pool, when non-nil, parallelises the local A_p⊗B_p term of each
	// generation (bit-identical at any worker count). The preprocessing
	// fillers set it from the fill-workers knob; the inline online path
	// leaves it nil.
	Pool *parallel.Pool
}

// NewGilboaFamily initialises the party's fixed weight-mask share.
func NewGilboaFamily(ep *ot.Endpoint, rng *prg.PRG, party int, r ring.Ring, k, n int) *GilboaFamily {
	return &GilboaFamily{EP: ep, Rng: rng, Party: party, R: r, K: k, N: n, bShare: rng.Elems(k*n, r)}
}

// NewGilboaFamilyFixed builds a family around an already-fixed weight-mask
// share instead of drawing a fresh one: a persistent session binds the
// opened F of its setup phase to fresh per-inference OT endpoints, which is
// only sound against the exact B the F was opened for.
func NewGilboaFamilyFixed(ep *ot.Endpoint, rng *prg.PRG, party int, r ring.Ring, k, n int, bShare []uint64) *GilboaFamily {
	return &GilboaFamily{EP: ep, Rng: rng, Party: party, R: r, K: k, N: n, bShare: bShare}
}

// BShare implements Family.
func (f *GilboaFamily) BShare() []uint64 { return f.bShare }

// Next implements Family: an inline (consumption-counted) generation.
func (f *GilboaFamily) Next(m int) (*Mat, error) {
	if m <= 0 {
		return nil, fmt.Errorf("triple: non-positive row count %d", m)
	}
	countConsumed(m, f.K, f.N)
	return f.Generate(m)
}

// Generate runs the interactive protocol for one fresh m-row triple
// without recording consumption: the preprocessing plane generates ahead
// of demand, and the triple counts as consumed only when a bank-backed
// family later hands it to the online path. The delivered shares are
// bit-identical to what an inline Next over the same Rng stream would
// produce — the OT plaintexts are the sender's inputs at the receiver's
// choice bits, independent of the endpoint's internal randomness — which
// is the warm==cold determinism argument of the preprocessing plane.
func (f *GilboaFamily) Generate(m int) (*Mat, error) {
	if m <= 0 {
		return nil, fmt.Errorf("triple: non-positive row count %d", m)
	}
	sp := f.EP.Trace.Enter("triple.gilboa", telemetry.WithAttrs(
		telemetry.Int("m", int64(m)), telemetry.Int("k", int64(f.K)),
		telemetry.Int("n", int64(f.N)), telemetry.Int("bits", int64(f.R.Bits))))
	defer f.EP.Trace.Exit(sp)
	t := &Mat{R: f.R, M: m, K: f.K, N: f.N}
	t.A = f.Rng.Elems(m*f.K, f.R)
	t.B = f.bShare
	var err error
	t.Z, err = gilboaZ(f.EP, f.Rng, f.Pool, f.R, f.Party, m, f.K, f.N, t.A, t.B)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// MatFamily adapts one precomputed triple into a single-use Family: the
// bank-backed warm path of a persistent session installs one per linear
// node per inference. BShare returns the triple's fixed weight-mask share
// (the same share the session's F openings were computed against), and
// Next delivers the triple exactly once, validating the requested row
// count against the precomputed shape.
type MatFamily struct {
	b   []uint64
	mat *Mat
}

// NewMatFamily wraps a precomputed family triple.
func NewMatFamily(m *Mat) *MatFamily { return &MatFamily{b: m.B, mat: m} }

// BShare implements Family.
func (f *MatFamily) BShare() []uint64 { return f.b }

// Next implements Family: it hands out the precomputed triple once.
func (f *MatFamily) Next(m int) (*Mat, error) {
	if f.mat == nil {
		return nil, fmt.Errorf("triple: precomputed family already consumed")
	}
	if m != f.mat.M {
		return nil, fmt.Errorf("triple: precomputed family has %d rows, want %d", f.mat.M, m)
	}
	countConsumed(m, f.mat.K, f.mat.N)
	t := f.mat
	f.mat = nil
	return t, nil
}
