package triple

import (
	"fmt"

	"aq2pnn/internal/ot"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
	"aq2pnn/internal/transport"
)

// Gilboa's OT-based secure multiplication, the "[28]"-style triple
// generator: for a cross product a·b with a held by the receiver and b by
// the sender, the parties run one 1-of-2 OT per bit of a. For bit t the
// sender offers (r_t, r_t + 2^t·b); the receiver picks with bit a_t and
// accumulates, ending with Σ = a·b + r, while the sender keeps −r. Vector
// messages amortize one bit's OT over a whole row of B.

// gilboaVecSend is the sender side of shares of a·b for `rows` scalars a
// (held by the peer) times this party's vectors bs[i] (each of width w).
// It returns this party's additive shares (−r per element).
func gilboaVecSend(ep *ot.Endpoint, rng *prg.PRG, r ring.Ring, bs [][]uint64) ([][]uint64, error) {
	bits := int(r.Bits)
	out := make([][]uint64, len(bs))
	msgs := make([][][]byte, 0, len(bs)*bits)
	for i, b := range bs {
		acc := make([]uint64, len(b))
		for t := 0; t < bits; t++ {
			rt := rng.Elems(len(b), r)
			m0 := transport.PackElems(r, rt)
			m1v := make([]uint64, len(b))
			for j := range b {
				m1v[j] = r.Add(rt[j], r.Mul(b[j], 1<<uint(t)))
			}
			m1 := transport.PackElems(r, m1v)
			msgs = append(msgs, [][]byte{m0, m1})
			for j := range rt {
				acc[j] = r.Sub(acc[j], rt[j])
			}
		}
		out[i] = acc
	}
	if err := ep.Send1ofN(2, msgs); err != nil {
		return nil, err
	}
	return out, nil
}

// gilboaVecRecv is the receiver side: as[i] is this party's scalar, w the
// width of the peer's vectors. It returns this party's additive shares
// (Σ received values per element).
func gilboaVecRecv(ep *ot.Endpoint, r ring.Ring, as []uint64, w int) ([][]uint64, error) {
	bits := int(r.Bits)
	choices := make([]int, 0, len(as)*bits)
	for _, a := range as {
		for t := 0; t < bits; t++ {
			choices = append(choices, int((a>>uint(t))&1))
		}
	}
	got, err := ep.Recv1ofN(2, choices, len(transport.PackElems(r, make([]uint64, w))))
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, len(as))
	idx := 0
	for i := range as {
		acc := make([]uint64, w)
		for t := 0; t < bits; t++ {
			vals, err := transport.UnpackElems(r, got[idx])
			if err != nil {
				return nil, err
			}
			if len(vals) != w {
				return nil, fmt.Errorf("triple: gilboa row width %d, want %d", len(vals), w)
			}
			for j := range vals {
				acc[j] = r.Add(acc[j], vals[j])
			}
			idx++
		}
		out[i] = acc
	}
	return out, nil
}

// GenMatGilboa generates one party's share of a matrix triple by running
// the OT-based protocol with the peer. Both parties call it with their own
// endpoint; party 0 plays the OT receiver for the A₀⊗B₁ cross term first.
// Cost: M·K·ℓ 1-of-2 OTs per cross term with N-element messages — heavy,
// as offline phases are, which is exactly why the accelerator buffers
// triples in the AS-CST buffer.
func GenMatGilboa(ep *ot.Endpoint, rng *prg.PRG, r ring.Ring, party, m, k, n int) (*Mat, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, fmt.Errorf("triple: non-positive dims %dx%dx%d", m, k, n)
	}
	t := &Mat{R: r, M: m, K: k, N: n}
	t.A = rng.Elems(m*k, r)
	t.B = rng.Elems(k*n, r)
	var err error
	t.Z, err = gilboaZ(ep, rng, nil, r, party, m, k, n, t.A, t.B)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// gilboaZ computes this party's share of rec(A) ⊗ rec(B) given its shares
// of A (M×K) and B (K×N): the local term A_p⊗B_p plus two OT-based cross
// products. Party 0 plays the OT receiver first. A non-nil pool
// parallelises the local term (bit-identical at any worker count); the
// interactive cross products are sequential wire protocol either way.
func gilboaZ(ep *ot.Endpoint, rng *prg.PRG, pool *parallel.Pool, r ring.Ring, party, m, k, n int, aShare, bShare []uint64) ([]uint64, error) {
	z := tensor.MatMulModPar(pool, aShare, bShare, m, k, n, r.Mask)
	// rec(A)⊗rec(B) = A0B0 + A0B1 + A1B0 + A1B1: cross terms via OT.
	addCross := func(rows [][]uint64) {
		// rows are indexed by (i·K + kk); each row is the contribution of
		// a_ik times B's row kk, added into Z row i.
		for idx, row := range rows {
			zi := idx / k
			for j := 0; j < n; j++ {
				z[zi*n+j] = r.Add(z[zi*n+j], row[j])
			}
		}
	}
	bRows := make([][]uint64, m*k)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			bRows[i*k+kk] = bShare[kk*n : (kk+1)*n]
		}
	}
	if party == 0 {
		rows, err := gilboaVecRecv(ep, r, aShare, n)
		if err != nil {
			return nil, err
		}
		addCross(rows)
		sent, err := gilboaVecSend(ep, rng, r, bRows)
		if err != nil {
			return nil, err
		}
		addCross(sent)
	} else {
		sent, err := gilboaVecSend(ep, rng, r, bRows)
		if err != nil {
			return nil, err
		}
		addCross(sent)
		rows, err := gilboaVecRecv(ep, r, aShare, n)
		if err != nil {
			return nil, err
		}
		addCross(rows)
	}
	return z, nil
}

// OTSource generates triples on demand through the Gilboa protocol.
type OTSource struct {
	EP    *ot.Endpoint
	Rng   *prg.PRG
	Party int
}

// MatTriple implements Source.
func (s *OTSource) MatTriple(r ring.Ring, m, k, n int) (*Mat, error) {
	countConsumed(m, k, n)
	return GenMatGilboa(s.EP, s.Rng, r, s.Party, m, k, n)
}
