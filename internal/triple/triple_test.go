package triple

import (
	"sync"
	"testing"

	"aq2pnn/internal/ot"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
	"aq2pnn/internal/transport"
)

func checkTriple(t *testing.T, r ring.Ring, p0, p1 *Mat) {
	t.Helper()
	if p0.M != p1.M || p0.K != p1.K || p0.N != p1.N {
		t.Fatal("shape mismatch between party views")
	}
	m, k, n := p0.M, p0.K, p0.N
	a := make([]uint64, m*k)
	b := make([]uint64, k*n)
	z := make([]uint64, m*n)
	r.AddVec(a, p0.A, p1.A)
	r.AddVec(b, p0.B, p1.B)
	r.AddVec(z, p0.Z, p1.Z)
	want := tensor.MatMulMod(a, b, m, k, n, r.Mask)
	for i := range z {
		if z[i] != want[i] {
			t.Fatalf("Z[%d] = %d, want %d (rec(A)⊗rec(B))", i, z[i], want[i])
		}
	}
}

func TestDealMatCorrectness(t *testing.T) {
	g := prg.NewSeeded(1)
	for _, bits := range []uint{8, 16, 32} {
		r := ring.New(bits)
		p0, p1 := DealMat(g, r, 3, 5, 4)
		checkTriple(t, r, p0, p1)
	}
}

func TestDealMatSharesLookRandom(t *testing.T) {
	g := prg.NewSeeded(2)
	r := ring.New(16)
	p0, _ := DealMat(g, r, 8, 8, 8)
	distinct := map[uint64]bool{}
	for _, v := range p0.A {
		distinct[v] = true
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct share values in 64 draws", len(distinct))
	}
}

func TestDealerSourceViewsMatch(t *testing.T) {
	d := NewDealer(prg.NewSeeded(3))
	s0, s1 := d.SourceFor(0), d.SourceFor(1)
	r := ring.New(20)
	var t0, t1 *Mat
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); t0, _ = s0.MatTriple(r, 2, 3, 4) }()
	go func() { defer wg.Done(); t1, _ = s1.MatTriple(r, 2, 3, 4) }()
	wg.Wait()
	checkTriple(t, r, t0, t1)

	// Sequences of mixed shapes stay in correspondence.
	shapes := [][3]int{{1, 1, 1}, {4, 2, 3}, {1, 1, 1}, {2, 2, 2}}
	for _, sh := range shapes {
		var a, b *Mat
		wg.Add(2)
		go func() { defer wg.Done(); a, _ = s0.MatTriple(r, sh[0], sh[1], sh[2]) }()
		go func() { defer wg.Done(); b, _ = s1.MatTriple(r, sh[0], sh[1], sh[2]) }()
		wg.Wait()
		checkTriple(t, r, a, b)
	}
}

func TestDealerSourceRejectsBadDims(t *testing.T) {
	d := NewDealer(prg.NewSeeded(4))
	if _, err := d.SourceFor(0).MatTriple(ring.New(8), 0, 1, 1); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestGilboaTriple(t *testing.T) {
	r := ring.New(12)
	dealer := ot.NewDealer(prg.NewSeeded(5))
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	e0 := ot.NewEndpoint(0, a, prg.NewSeeded(6))
	e0.Dealer = dealer
	e1 := ot.NewEndpoint(1, b, prg.NewSeeded(7))
	e1.Dealer = dealer
	var t0, t1 *Mat
	var err0, err1 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); t0, err0 = GenMatGilboa(e0, prg.NewSeeded(8), r, 0, 2, 3, 2) }()
	go func() { defer wg.Done(); t1, err1 = GenMatGilboa(e1, prg.NewSeeded(9), r, 1, 2, 3, 2) }()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	checkTriple(t, r, t0, t1)
}

func TestGilboaOTSource(t *testing.T) {
	r := ring.New(8)
	dealer := ot.NewDealer(prg.NewSeeded(10))
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	e0 := ot.NewEndpoint(0, a, prg.NewSeeded(11))
	e0.Dealer = dealer
	e1 := ot.NewEndpoint(1, b, prg.NewSeeded(12))
	e1.Dealer = dealer
	s0 := &OTSource{EP: e0, Rng: prg.NewSeeded(13), Party: 0}
	s1 := &OTSource{EP: e1, Rng: prg.NewSeeded(14), Party: 1}
	var t0, t1 *Mat
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); t0, _ = s0.MatTriple(r, 1, 4, 1) }()
	go func() { defer wg.Done(); t1, _ = s1.MatTriple(r, 1, 4, 1) }()
	wg.Wait()
	checkTriple(t, r, t0, t1)
}

func BenchmarkDealMat(b *testing.B) {
	g := prg.NewSeeded(1)
	r := ring.New(16)
	for i := 0; i < b.N; i++ {
		DealMat(g, r, 16, 64, 16)
	}
}
