package triple

import (
	"fmt"
	"sync"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
)

// FixedB is a dealt layer family with its weight-side mask pinned: the same
// trusted-dealer trust model as Dealer, but detached from any single
// session. The batch executor deals one FixedB per linear layer, opens F
// against it once during weight preparation, and then spins up an
// independent Pool per image so concurrent inferences never contend on — or
// perturb — each other's triple streams.
type FixedB struct {
	R    ring.Ring
	K, N int
	// b is the reconstructed fixed weight mask (dealer-side secret).
	b      []uint64
	shares [2][]uint64
}

// DealFixedB samples a fixed weight mask for a K×N layer and splits it.
func DealFixedB(g *prg.PRG, r ring.Ring, k, n int) (*FixedB, error) {
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("triple: non-positive FixedB dims %dx%d", k, n)
	}
	b := g.Elems(k*n, r)
	s0 := g.Elems(k*n, r)
	s1 := make([]uint64, k*n)
	r.SubVec(s1, b, s0)
	return &FixedB{R: r, K: k, N: n, b: b, shares: [2][]uint64{s0, s1}}, nil
}

// BShare returns the party's share of the fixed mask, for opening F during
// weight preparation.
func (fb *FixedB) BShare(party int) []uint64 { return fb.shares[party] }

// Pool creates an independent triple pool over this fixed B, drawing all
// its randomness from g. Distinct pools with distinct generators produce
// independent triple streams, which is what keeps per-image transcripts
// identical regardless of how the batch schedules images across workers.
func (fb *FixedB) Pool(g *prg.PRG) *FixedBPool {
	return &FixedBPool{fb: fb, g: g, queues: map[int][2][]*Mat{}}
}

// FixedBPool deals matched A/Z pairs on demand against the pool's fixed B.
// Safe for concurrent use by the two party views.
type FixedBPool struct {
	mu     sync.Mutex
	fb     *FixedB
	g      *prg.PRG
	queues map[int][2][]*Mat // per m, per party
}

// View returns the party's Family handle onto the pool.
func (p *FixedBPool) View(party int) Family { return &fixedBView{p: p, party: party} }

type fixedBView struct {
	p     *FixedBPool
	party int
}

func (v *fixedBView) BShare() []uint64 { return v.p.fb.shares[v.party] }

func (v *fixedBView) Next(m int) (*Mat, error) {
	if m <= 0 {
		return nil, fmt.Errorf("triple: non-positive row count %d", m)
	}
	p := v.p
	fb := p.fb
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.queues[m]
	if len(q[v.party]) == 0 {
		a := p.g.Elems(m*fb.K, fb.R)
		z := tensor.MatMulMod(a, fb.b, m, fb.K, fb.N, fb.R.Mask)
		split := func(x []uint64) (s0, s1 []uint64) {
			s0 = p.g.Elems(len(x), fb.R)
			s1 = make([]uint64, len(x))
			fb.R.SubVec(s1, x, s0)
			return
		}
		a0, a1 := split(a)
		z0, z1 := split(z)
		mk := func(as, zs, bs []uint64) *Mat {
			return &Mat{R: fb.R, M: m, K: fb.K, N: fb.N, A: as, B: bs, Z: zs}
		}
		q[0] = append(q[0], mk(a0, z0, fb.shares[0]))
		q[1] = append(q[1], mk(a1, z1, fb.shares[1]))
	}
	out := q[v.party][0]
	q[v.party] = q[v.party][1:]
	p.queues[m] = q
	return out, nil
}
