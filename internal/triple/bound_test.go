package triple

import (
	"fmt"
	"strings"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

// TestDealerQueueBounded: a party consuming while its peer never does
// grows the peer's undelivered queue only to MaxPending; the generation
// that would exceed it fails instead of growing without bound.
func TestDealerQueueBounded(t *testing.T) {
	d := NewDealer(prg.NewSeeded(7))
	r := ring.New(16)
	s0 := d.SourceFor(0)
	for i := 0; i < MaxPending; i++ {
		if _, err := s0.MatTriple(r, 1, 2, 3); err != nil {
			t.Fatalf("triple %d: %v", i, err)
		}
	}
	if _, err := s0.MatTriple(r, 1, 2, 3); err == nil {
		t.Fatal("dealer generated past the MaxPending backlog bound")
	} else if !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("overflow error %v does not name the backlog", err)
	}
	// The bound is per shape and per party: the starved peer draining its
	// queue re-enables generation, and other shapes are unaffected.
	s1 := d.SourceFor(1)
	if _, err := s1.MatTriple(r, 1, 2, 3); err != nil {
		t.Fatalf("peer drain: %v", err)
	}
	if _, err := s0.MatTriple(r, 1, 2, 3); err != nil {
		t.Fatalf("generation after drain: %v", err)
	}
	if _, err := s0.MatTriple(r, 2, 2, 3); err != nil {
		t.Fatalf("other shape under a full backlog: %v", err)
	}
}

// TestDealerQueueTrimmed: fully-delivered shapes drop their queue entry,
// so long-lived dealers cycling through many shapes do not accumulate
// empty headers.
func TestDealerQueueTrimmed(t *testing.T) {
	d := NewDealer(prg.NewSeeded(8))
	r := ring.New(16)
	s0, s1 := d.SourceFor(0), d.SourceFor(1)
	for m := 1; m <= 50; m++ {
		if _, err := s0.MatTriple(r, m, 2, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.MatTriple(r, m, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	d.mu.Lock()
	entries := len(d.queue)
	d.mu.Unlock()
	if entries != 0 {
		t.Errorf("dealer holds %d queue entries after lockstep delivery, want 0", entries)
	}
}

// TestDealerFamilyQueueBounded: the same backlog bound holds on the
// per-family queues, and the family's per-m entries are trimmed once both
// views are delivered.
func TestDealerFamilyQueueBounded(t *testing.T) {
	d := NewDealer(prg.NewSeeded(9))
	r := ring.New(16)
	f0, err := d.Family(0, "conv1", r, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := d.Family(1, "conv1", r, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxPending; i++ {
		if _, err := f0.Next(4); err != nil {
			t.Fatalf("family triple %d: %v", i, err)
		}
	}
	if _, err := f0.Next(4); err == nil {
		t.Fatal("family generated past the MaxPending backlog bound")
	}
	if _, err := f1.Next(4); err != nil {
		t.Fatalf("peer drain: %v", err)
	}
	if _, err := f0.Next(4); err != nil {
		t.Fatalf("generation after drain: %v", err)
	}
	// Drain both sides completely: the per-m entry must be trimmed.
	for i := 0; i < MaxPending; i++ {
		if _, err := f1.Next(4); err != nil {
			t.Fatalf("final drain %d: %v", i, err)
		}
	}
	d.mu.Lock()
	per := len(d.families[fmt.Sprintf("conv1|%s|2x3", r)].queues)
	d.mu.Unlock()
	if per != 0 {
		t.Errorf("family holds %d per-m queue entries after full delivery, want 0", per)
	}
}

// TestMatFamilySingleUse: the bank-backed warm path's adapter hands out
// its precomputed triple exactly once and validates the requested shape.
func TestMatFamilySingleUse(t *testing.T) {
	g := prg.NewSeeded(10)
	r := ring.New(16)
	p0, _ := DealMat(g, r, 4, 2, 3)
	f := NewMatFamily(p0)
	for i, b := range f.BShare() {
		if b != p0.B[i] {
			t.Fatal("BShare diverges from the precomputed triple's B")
		}
	}
	if _, err := f.Next(5); err == nil {
		t.Error("Next with a mismatched row count succeeded")
	}
	got, err := f.Next(4)
	if err != nil || got != p0 {
		t.Fatalf("Next = (%v, %v), want the precomputed triple", got, err)
	}
	if _, err := f.Next(4); err == nil {
		t.Error("second Next on a single-use family succeeded")
	}
	if f.BShare() == nil {
		t.Error("BShare unavailable after consumption")
	}
}
