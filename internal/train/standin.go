package train

import (
	"fmt"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/tensor"
)

// Stand-in architectures for the accuracy experiments: width-reduced,
// sequential versions of the paper's models, small enough to train from
// scratch on one core in seconds. The reductions (documented per builder)
// preserve what the accuracy experiments measure — depth class, pooling
// structure and the conv/BNReQ/ReLU building-block pattern — while the
// full-size graphs in the nn zoo drive the cost experiments.

// PoolChoice selects pooling for the Sec. 6.5 max-vs-avg study.
type PoolChoice int

const (
	// Max uses max pooling.
	Max PoolChoice = iota
	// Avg uses average pooling.
	Avg
)

// Standin couples a trainable network with the metadata the quantizer
// needs to emit an equivalent nn.Model.
type Standin struct {
	Name          string
	Net           *Net
	InC, InH, InW int
	Classes       int
}

func convGeom(c, h, w, outC, k, stride, pad int) tensor.ConvGeom {
	return tensor.ConvGeom{InC: c, InH: h, InW: w, OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
}

func poolLayer(choice PoolChoice, g tensor.ConvGeom) Layer {
	if choice == Max {
		return &MaxPoolLayer{Geom: g}
	}
	return &AvgPoolLayer{Geom: g}
}

// NewLeNet5 is the full LeNet5 (it is already small): 28×28 grayscale.
func NewLeNet5(rng *prg.PRG, pool PoolChoice, classes int) *Standin {
	g1 := convGeom(1, 28, 28, 6, 5, 1, 2)
	p1 := tensor.ConvGeom{InC: 6, InH: 28, InW: 28, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	g2 := convGeom(6, 14, 14, 16, 5, 1, 0)
	p2 := tensor.ConvGeom{InC: 16, InH: 10, InW: 10, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	net := &Net{Layers: []Layer{
		NewConv(g1, rng), &ReLULayer{}, poolLayer(pool, p1),
		NewConv(g2, rng), &ReLULayer{}, poolLayer(pool, p2),
		NewFC(16*5*5, 120, rng), &ReLULayer{},
		NewFC(120, 84, rng), &ReLULayer{},
		NewFC(84, classes, rng),
	}}
	return &Standin{Name: "lenet5", Net: net, InC: 1, InH: 28, InW: 28, Classes: classes}
}

// NewAlexNetStandin is a width-reduced AlexNet (channels ÷8, single FC
// head) on 28×28 or 32×32 inputs.
func NewAlexNetStandin(rng *prg.PRG, pool PoolChoice, inC, side, classes int) *Standin {
	g1 := convGeom(inC, side, side, 8, 5, 1, 2)
	p1 := tensor.ConvGeom{InC: 8, InH: side, InW: side, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	s2 := side / 2
	g2 := convGeom(8, s2, s2, 24, 5, 1, 2)
	p2 := tensor.ConvGeom{InC: 24, InH: s2, InW: s2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	s3 := s2 / 2
	g3 := convGeom(24, s3, s3, 32, 3, 1, 1)
	g4 := convGeom(32, s3, s3, 32, 3, 1, 1)
	p3 := tensor.ConvGeom{InC: 32, InH: s3, InW: s3, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	s4 := s3 / 2
	net := &Net{Layers: []Layer{
		NewConv(g1, rng), &ReLULayer{}, poolLayer(pool, p1),
		NewConv(g2, rng), &ReLULayer{}, poolLayer(pool, p2),
		NewConv(g3, rng), &ReLULayer{},
		NewConv(g4, rng), &ReLULayer{}, poolLayer(pool, p3),
		NewFC(32*s4*s4, 64, rng), &ReLULayer{},
		NewFC(64, classes, rng),
	}}
	return &Standin{Name: "alexnet", Net: net, InC: inC, InH: side, InW: side, Classes: classes}
}

// NewVGGStandin is a depth-preserving, width-reduced VGG: three
// conv-conv-pool stages (the 32×32 VGG16's pooling cadence) at 1/8 width.
func NewVGGStandin(rng *prg.PRG, pool PoolChoice, inC, side, classes int) *Standin {
	layers := []Layer{}
	c, s := inC, side
	for stage, ch := range []int{8, 16, 32} {
		layers = append(layers,
			NewConv(convGeom(c, s, s, ch, 3, 1, 1), rng), &ReLULayer{},
			NewConv(convGeom(ch, s, s, ch, 3, 1, 1), rng), &ReLULayer{},
			poolLayer(pool, tensor.ConvGeom{InC: ch, InH: s, InW: s, KH: 2, KW: 2, StrideH: 2, StrideW: 2}),
		)
		c, s = ch, s/2
		_ = stage
	}
	layers = append(layers, NewFC(c*s*s, classes, rng))
	return &Standin{Name: "vgg16", Net: net(layers), InC: inC, InH: side, InW: side, Classes: classes}
}

// NewResNetStandin approximates the ResNet18 profile without residual
// connections (the trainable substrate is sequential): a stem plus three
// stride-2 stages and a global average pool.
func NewResNetStandin(rng *prg.PRG, pool PoolChoice, inC, side, classes int) *Standin {
	layers := []Layer{
		NewConv(convGeom(inC, side, side, 8, 3, 1, 1), rng), &ReLULayer{},
	}
	if pool == Max {
		layers = append(layers, &MaxPoolLayer{Geom: tensor.ConvGeom{InC: 8, InH: side, InW: side, KH: 2, KW: 2, StrideH: 2, StrideW: 2}})
	} else {
		layers = append(layers, &AvgPoolLayer{Geom: tensor.ConvGeom{InC: 8, InH: side, InW: side, KH: 2, KW: 2, StrideH: 2, StrideW: 2}})
	}
	c, s := 8, side/2
	for _, ch := range []int{16, 32} {
		layers = append(layers,
			NewConv(convGeom(c, s, s, ch, 3, 2, 1), rng), &ReLULayer{},
			NewConv(convGeom(ch, (s+1)/2, (s+1)/2, ch, 3, 1, 1), rng), &ReLULayer{},
		)
		c, s = ch, (s+1)/2
	}
	// A 2×2 pool + flatten head replaces the full-size model's global
	// average pool: the synthetic classes carry positional structure that
	// a GAP over an 8-channel stand-in would erase entirely.
	layers = append(layers,
		&AvgPoolLayer{Geom: tensor.ConvGeom{InC: c, InH: s, InW: s, KH: 2, KW: 2, StrideH: 2, StrideW: 2}},
		NewFC(c*(s/2)*(s/2), classes, rng),
	)
	return &Standin{Name: "resnet18", Net: net(layers), InC: inC, InH: side, InW: side, Classes: classes}
}

func net(layers []Layer) *Net { return &Net{Layers: layers} }

// StandinByName builds a stand-in by experiment name.
func StandinByName(name string, rng *prg.PRG, pool PoolChoice, inC, side, classes int) (*Standin, error) {
	switch name {
	case "lenet5":
		return NewLeNet5(rng, pool, classes), nil
	case "alexnet":
		return NewAlexNetStandin(rng, pool, inC, side, classes), nil
	case "vgg16":
		return NewVGGStandin(rng, pool, inC, side, classes), nil
	case "resnet18", "resnet50":
		// The ResNet50 accuracy stand-in shares the ResNet18 profile; the
		// cost experiments use the true bottleneck graph from the zoo.
		return NewResNetStandin(rng, pool, inC, side, classes), nil
	default:
		return nil, fmt.Errorf("train: unknown stand-in %q", name)
	}
}
