// Package train is the from-scratch float training substrate: enough
// backprop (conv, fully connected, ReLU, max/average pooling, softmax
// cross-entropy, SGD with momentum) to train the reduced stand-in models
// whose quantized versions drive the paper's accuracy experiments
// (Table 2, Table 6, Figs. 10/11, Tables 7/8).
package train

import (
	"fmt"
	"math"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/tensor"
)

// Layer is one differentiable stage of a sequential network.
type Layer interface {
	// Forward computes the output; train enables gradient caching.
	Forward(x []float64, train bool) []float64
	// Backward consumes dL/dout and returns dL/din, accumulating
	// parameter gradients.
	Backward(grad []float64) []float64
	// Step applies an SGD-with-momentum update and clears gradients.
	Step(lr, momentum float64)
}

// ConvLayer is a 2D convolution with bias.
type ConvLayer struct {
	Geom tensor.ConvGeom
	W    []float64 // (OutC, PatchLen)
	B    []float64
	dW   []float64
	dB   []float64
	vW   []float64
	vB   []float64
	x    []float64 // cached input
	cols []float64 // cached im2col
}

// NewConv initialises a conv layer with He-scaled weights.
func NewConv(g tensor.ConvGeom, rng *prg.PRG) *ConvLayer {
	n := g.OutC * g.PatchLen()
	l := &ConvLayer{
		Geom: g,
		W:    make([]float64, n),
		B:    make([]float64, g.OutC),
		dW:   make([]float64, n),
		dB:   make([]float64, g.OutC),
		vW:   make([]float64, n),
		vB:   make([]float64, g.OutC),
	}
	std := math.Sqrt(2.0 / float64(g.PatchLen()))
	for i := range l.W {
		l.W[i] = rng.NormFloat64() * std
	}
	return l
}

// Forward implements Layer. Output layout is (OutC, OutH, OutW).
func (l *ConvLayer) Forward(x []float64, train bool) []float64 {
	g := l.Geom
	cols := tensor.Im2ColFloat(x, g) // (P, PL)
	p := g.Patches()
	pl := g.PatchLen()
	// out(P, OutC) = cols × Wᵀ, then transpose to (OutC, P).
	wt := tensor.TransposeFloat(l.W, g.OutC, pl) // (PL, OutC)
	o := tensor.MatMulFloat(cols, wt, p, pl, g.OutC)
	out := make([]float64, g.OutC*p)
	for pt := 0; pt < p; pt++ {
		for oc := 0; oc < g.OutC; oc++ {
			out[oc*p+pt] = o[pt*g.OutC+oc] + l.B[oc]
		}
	}
	if train {
		l.x = x
		l.cols = cols
	}
	return out
}

// Backward implements Layer.
func (l *ConvLayer) Backward(grad []float64) []float64 {
	g := l.Geom
	p := g.Patches()
	pl := g.PatchLen()
	// grad arrives as (OutC, P); transpose to (P, OutC).
	gt := make([]float64, len(grad))
	for oc := 0; oc < g.OutC; oc++ {
		for pt := 0; pt < p; pt++ {
			gt[pt*g.OutC+oc] = grad[oc*p+pt]
			l.dB[oc] += grad[oc*p+pt]
		}
	}
	// dW(OutC, PL) = gradᵀ(OutC, P) × cols(P, PL).
	dw := tensor.MatMulFloat(tensor.TransposeFloat(gt, p, g.OutC), l.cols, g.OutC, p, pl)
	for i := range dw {
		l.dW[i] += dw[i]
	}
	// dcols(P, PL) = gt(P, OutC) × W(OutC, PL).
	dcols := tensor.MatMulFloat(gt, l.W, p, g.OutC, pl)
	return tensor.Col2ImFloat(dcols, g)
}

// Step implements Layer.
func (l *ConvLayer) Step(lr, momentum float64) {
	sgd(l.W, l.dW, l.vW, lr, momentum)
	sgd(l.B, l.dB, l.vB, lr, momentum)
}

// FCLayer is a fully connected layer with bias.
type FCLayer struct {
	In, Out int
	W       []float64 // (Out, In)
	B       []float64
	dW, dB  []float64
	vW, vB  []float64
	x       []float64
}

// NewFC initialises a fully connected layer.
func NewFC(in, out int, rng *prg.PRG) *FCLayer {
	l := &FCLayer{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		dW: make([]float64, in*out), dB: make([]float64, out),
		vW: make([]float64, in*out), vB: make([]float64, out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range l.W {
		l.W[i] = rng.NormFloat64() * std
	}
	return l
}

// Forward implements Layer.
func (l *FCLayer) Forward(x []float64, train bool) []float64 {
	out := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		w := l.W[o*l.In : (o+1)*l.In]
		s := l.B[o]
		for i := range x {
			s += w[i] * x[i]
		}
		out[o] = s
	}
	if train {
		l.x = x
	}
	return out
}

// Backward implements Layer.
func (l *FCLayer) Backward(grad []float64) []float64 {
	din := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		g := grad[o]
		l.dB[o] += g
		w := l.W[o*l.In : (o+1)*l.In]
		dw := l.dW[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			dw[i] += g * l.x[i]
			din[i] += g * w[i]
		}
	}
	return din
}

// Step implements Layer.
func (l *FCLayer) Step(lr, momentum float64) {
	sgd(l.W, l.dW, l.vW, lr, momentum)
	sgd(l.B, l.dB, l.vB, lr, momentum)
}

// ReLULayer applies max(0, x).
type ReLULayer struct{ mask []bool }

// Forward implements Layer.
func (l *ReLULayer) Forward(x []float64, train bool) []float64 {
	out := make([]float64, len(x))
	if train {
		l.mask = make([]bool, len(x))
	}
	for i, v := range x {
		if v > 0 {
			out[i] = v
			if train {
				l.mask[i] = true
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLULayer) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		if l.mask[i] {
			out[i] = g
		}
	}
	return out
}

// Step implements Layer.
func (l *ReLULayer) Step(lr, momentum float64) {}

// MaxPoolLayer is channel-wise max pooling.
type MaxPoolLayer struct {
	Geom tensor.ConvGeom
	arg  []int
	inN  int
}

// Forward implements Layer.
func (l *MaxPoolLayer) Forward(x []float64, train bool) []float64 {
	g := l.Geom
	out := make([]float64, g.InC*g.OutH()*g.OutW())
	if train {
		l.arg = make([]int, len(out))
		l.inN = len(x)
	}
	tensor.PoolWindows(g, func(oi int, win []int) {
		best := win[0]
		for _, ii := range win[1:] {
			if x[ii] > x[best] {
				best = ii
			}
		}
		out[oi] = x[best]
		if train {
			l.arg[oi] = best
		}
	})
	return out
}

// Backward implements Layer.
func (l *MaxPoolLayer) Backward(grad []float64) []float64 {
	din := make([]float64, l.inN)
	for oi, g := range grad {
		din[l.arg[oi]] += g
	}
	return din
}

// Step implements Layer.
func (l *MaxPoolLayer) Step(lr, momentum float64) {}

// AvgPoolLayer is channel-wise average pooling.
type AvgPoolLayer struct {
	Geom tensor.ConvGeom
	inN  int
}

// Forward implements Layer.
func (l *AvgPoolLayer) Forward(x []float64, train bool) []float64 {
	g := l.Geom
	out := make([]float64, g.InC*g.OutH()*g.OutW())
	l.inN = len(x)
	tensor.PoolWindows(g, func(oi int, win []int) {
		var s float64
		for _, ii := range win {
			s += x[ii]
		}
		out[oi] = s / float64(len(win))
	})
	return out
}

// Backward implements Layer.
func (l *AvgPoolLayer) Backward(grad []float64) []float64 {
	din := make([]float64, l.inN)
	tensor.PoolWindows(l.Geom, func(oi int, win []int) {
		g := grad[oi] / float64(len(win))
		for _, ii := range win {
			din[ii] += g
		}
	})
	return din
}

// Step implements Layer.
func (l *AvgPoolLayer) Step(lr, momentum float64) {}

func sgd(w, dw, v []float64, lr, momentum float64) {
	for i := range w {
		v[i] = momentum*v[i] - lr*dw[i]
		w[i] += v[i]
		dw[i] = 0
	}
}

// Net is a sequential network.
type Net struct {
	Layers []Layer
}

// Forward runs the network.
func (n *Net) Forward(x []float64, train bool) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// LossAndGrad computes softmax cross-entropy and its input gradient.
func LossAndGrad(logits []float64, label int) (float64, []float64) {
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	exps := make([]float64, len(logits))
	for i, v := range logits {
		exps[i] = math.Exp(v - maxv)
		sum += exps[i]
	}
	grad := make([]float64, len(logits))
	for i := range logits {
		p := exps[i] / sum
		grad[i] = p
	}
	grad[label] -= 1
	return -math.Log(exps[label]/sum + 1e-12), grad
}

// Config holds the training hyperparameters.
type Config struct {
	Epochs   int
	LR       float64
	Momentum float64
	// LRDecay multiplies the learning rate after each epoch (default 1).
	LRDecay float64
	// Quiet suppresses the per-epoch log callback.
	Log func(epoch int, loss float64, acc float64)
}

// Fit trains the network on (xs, ys) with plain SGD (batch size 1 — the
// stand-ins are tiny and single-core determinism is worth more than
// vectorized batching here).
func (n *Net) Fit(xs [][]float64, ys []int, rng *prg.PRG, cfg Config) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("train: %d inputs for %d labels", len(xs), len(ys))
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	decay := cfg.LRDecay
	if decay == 0 {
		decay = 1
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(xs))
		var lossSum float64
		correct := 0
		for _, idx := range perm {
			logits := n.Forward(xs[idx], true)
			loss, grad := LossAndGrad(logits, ys[idx])
			lossSum += loss
			if argmaxF(logits) == ys[idx] {
				correct++
			}
			for li := len(n.Layers) - 1; li >= 0; li-- {
				grad = n.Layers[li].Backward(grad)
			}
			for _, l := range n.Layers {
				l.Step(lr, cfg.Momentum)
			}
		}
		if cfg.Log != nil {
			cfg.Log(epoch, lossSum/float64(len(xs)), float64(correct)/float64(len(xs)))
		}
		lr *= decay
	}
	return nil
}

// Accuracy scores the network on a labelled set.
func (n *Net) Accuracy(xs [][]float64, ys []int) float64 {
	correct := 0
	for i := range xs {
		if argmaxF(n.Forward(xs[i], false)) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func argmaxF(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
