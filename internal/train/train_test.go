package train

import (
	"math"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/tensor"
)

// numericalGrad checks one parameter's analytic gradient by central
// differences through the given loss closure.
func numericalGrad(param *float64, loss func() float64) float64 {
	const eps = 1e-5
	orig := *param
	*param = orig + eps
	lp := loss()
	*param = orig - eps
	lm := loss()
	*param = orig
	return (lp - lm) / (2 * eps)
}

func TestConvGradientCheck(t *testing.T) {
	rng := prg.NewSeeded(1)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 3, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	conv := NewConv(g, rng)
	x := make([]float64, 2*5*5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	label := 1
	net := &Net{Layers: []Layer{conv, &ReLULayer{}, NewFC(3*g.OutH()*g.OutW(), 4, rng)}}
	loss := func() float64 {
		l, _ := LossAndGrad(net.Forward(x, false), label)
		return l
	}
	// Analytic gradients.
	logits := net.Forward(x, true)
	_, grad := LossAndGrad(logits, label)
	for li := len(net.Layers) - 1; li >= 0; li-- {
		grad = net.Layers[li].Backward(grad)
	}
	for _, idx := range []int{0, 7, len(conv.W) - 1} {
		want := numericalGrad(&conv.W[idx], loss)
		if math.Abs(conv.dW[idx]-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("conv dW[%d] = %g, numerical %g", idx, conv.dW[idx], want)
		}
	}
	want := numericalGrad(&conv.B[1], loss)
	if math.Abs(conv.dB[1]-want) > 1e-4*(1+math.Abs(want)) {
		t.Errorf("conv dB[1] = %g, numerical %g", conv.dB[1], want)
	}
	// Input gradient too.
	for _, idx := range []int{0, 13} {
		wantIn := numericalGrad(&x[idx], loss)
		if math.Abs(grad[idx]-wantIn) > 1e-4*(1+math.Abs(wantIn)) {
			t.Errorf("dX[%d] = %g, numerical %g", idx, grad[idx], wantIn)
		}
	}
}

func TestFCGradientCheck(t *testing.T) {
	rng := prg.NewSeeded(2)
	fc := NewFC(6, 3, rng)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		l, _ := LossAndGrad(fc.Forward(x, false), 2)
		return l
	}
	logits := fc.Forward(x, true)
	_, grad := LossAndGrad(logits, 2)
	fc.Backward(grad)
	for _, idx := range []int{0, 9, 17} {
		want := numericalGrad(&fc.W[idx], loss)
		if math.Abs(fc.dW[idx]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("fc dW[%d] = %g, numerical %g", idx, fc.dW[idx], want)
		}
	}
}

func TestPoolGradients(t *testing.T) {
	rng := prg.NewSeeded(3)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	mp := &MaxPoolLayer{Geom: g}
	out := mp.Forward(x, true)
	grad := make([]float64, len(out))
	for i := range grad {
		grad[i] = 1
	}
	din := mp.Backward(grad)
	var nz int
	for _, v := range din {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Errorf("max-pool routed gradient to %d inputs, want 4", nz)
	}
	ap := &AvgPoolLayer{Geom: g}
	ap.Forward(x, true)
	din = ap.Backward(grad)
	for _, v := range din {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("avg-pool gradient %g, want 0.25", v)
		}
	}
}

func TestLossAndGrad(t *testing.T) {
	loss, grad := LossAndGrad([]float64{2, 1, 0.1}, 0)
	if loss < 0 || loss > 2 {
		t.Errorf("loss = %g", loss)
	}
	var sum float64
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("softmax gradient sums to %g", sum)
	}
	if grad[0] >= 0 {
		t.Error("true-class gradient must be negative")
	}
}

func TestFitLearnsXorLikeTask(t *testing.T) {
	// A tiny two-blob classification in 8 dims: training must beat chance
	// decisively.
	rng := prg.NewSeeded(4)
	n := 120
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, 8)
		cls := i % 2
		for j := range x {
			x[j] = rng.NormFloat64()*0.3 + float64(cls)*0.8*float64(j%2*2-1)
		}
		xs[i] = x
		ys[i] = cls
	}
	net := &Net{Layers: []Layer{NewFC(8, 12, rng), &ReLULayer{}, NewFC(12, 2, rng)}}
	var lastLoss float64
	err := net.Fit(xs, ys, rng, Config{Epochs: 20, LR: 0.05, Momentum: 0.9,
		Log: func(e int, loss, acc float64) { lastLoss = loss }})
	if err != nil {
		t.Fatal(err)
	}
	if lastLoss > 0.3 {
		t.Errorf("final loss %g, training did not converge", lastLoss)
	}
	if acc := net.Accuracy(xs, ys); acc < 0.9 {
		t.Errorf("train accuracy %.2f", acc)
	}
}

func TestFitValidation(t *testing.T) {
	net := &Net{Layers: []Layer{NewFC(2, 2, prg.NewSeeded(1))}}
	if err := net.Fit(nil, nil, prg.NewSeeded(1), Config{Epochs: 1}); err == nil {
		t.Error("empty set accepted")
	}
	if err := net.Fit([][]float64{{1, 2}}, []int{0, 1}, prg.NewSeeded(1), Config{Epochs: 1}); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestStandinBuilders(t *testing.T) {
	rng := prg.NewSeeded(5)
	for _, name := range []string{"lenet5", "alexnet", "vgg16", "resnet18", "resnet50"} {
		inC, side := 3, 32
		if name == "lenet5" {
			inC, side = 1, 28
		}
		s, err := StandinByName(name, rng, Max, inC, side, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := make([]float64, inC*side*side)
		out := s.Net.Forward(x, false)
		if len(out) != 10 {
			t.Errorf("%s output %d", name, len(out))
		}
	}
	if _, err := StandinByName("nope", rng, Max, 1, 28, 10); err == nil {
		t.Error("unknown stand-in accepted")
	}
	// Avg-pool variants build too.
	if _, err := StandinByName("vgg16", rng, Avg, 3, 32, 10); err != nil {
		t.Error(err)
	}
}
