package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoIsLintClean builds the vettool and runs the full suite over this
// module, asserting zero findings: the repository must satisfy its own
// static invariants (modulo the documented //lint:allow escapes).
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and vets the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	bin := filepath.Join(t.TempDir(), "aq2pnnlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/aq2pnnlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	var stdout, stderr bytes.Buffer
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	vet.Stdout = &stdout
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Errorf("aq2pnnlint found violations (or failed): %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
}
