package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestPRGOnly(t *testing.T) {
	linttest.Run(t, "testdata", "prgonly", lint.PRGOnly)
}
