package lint_test

import (
	"regexp"
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata", "detrand", lint.DetRand)
}

// TestDetRandCrossPackageNeedsFacts proves the badCross finding depends
// on the SeedParamFact exported by package detranddep.
func TestDetRandCrossPackageNeedsFacts(t *testing.T) {
	with := linttest.Diagnostics(t, "testdata", "detrand", lint.DetRand, true)
	without := linttest.Diagnostics(t, "testdata", "detrand", lint.DetRand, false)

	cross := regexp.MustCompile(`detranddep\.MakeRNG`)
	if countMatching(with, cross) == 0 {
		t.Errorf("with facts: no finding for the cross-package seed obligation detranddep.MakeRNG")
	}
	if n := countMatching(without, cross); n != 0 {
		t.Errorf("without facts: cross-package finding should vanish, got %d", n)
	}
}
