package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// DetRand enforces the session-resumption contract on transcript
// randomness: every PRG that contributes to a session transcript must be
// seeded through the salted (Seed, token, seq) splitmix64 derivation
// (mix64), never from a raw config seed, a bare constant, or ad-hoc
// arithmetic on either. Raw seeds were the PR 6 resumption bug class —
// two code paths XOR-ing the same Seed with different constants silently
// fork the transcript, and a resumed session replays different masks than
// the original sent.
//
// The analyzer classifies the argument of every prg.NewSeeded call (and,
// via facts, every argument that a callee forwards to prg.NewSeeded):
//
//   - derived: the expression contains a mix64/splitmix64 call, a call to
//     a function whose fact says it returns a derived seed, or a PRG draw.
//   - deferred: the expression is built from bare uint64 parameters of the
//     enclosing function — the caller owns the obligation, recorded as a
//     SeedParamFact and checked at every call site (cross-package via the
//     vetx fact stream).
//   - raw: anything else — struct fields (cfg.Seed), globals, constants,
//     unknown calls. Reported.
//
// prg.NewRandom is reported unconditionally in scoped packages: it is
// nondeterministic and cannot participate in a resumable transcript.
// Test files are exempt — fixture seeds are not transcripts.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "requires session-transcript randomness to derive from the salted " +
		"(Seed, token, seq) splitmix64 path: prg.NewSeeded arguments must " +
		"pass through mix64 (or a function that does), never raw seeds, " +
		"constants or global state",
	Run:       runDetRand,
	FactTypes: []analysis.Fact{(*DerivedSeedFact)(nil), (*SeedParamFact)(nil)},
}

// DerivedSeedFact marks functions whose results are properly derived
// seeds: Results bit i is set when result i is produced by the mix64 path.
type DerivedSeedFact struct {
	Results uint32
}

// AFact marks DerivedSeedFact as a serializable analysis fact.
func (*DerivedSeedFact) AFact() {}

// SeedParamFact marks functions that use a parameter as a PRG seed
// (directly or by forwarding to another seed parameter): Params bit i
// (receiver-first indexing) obliges every call site to pass a derived
// seed there.
type SeedParamFact struct {
	Params uint32
}

// AFact marks SeedParamFact as a serializable analysis fact.
func (*SeedParamFact) AFact() {}

// seedVerdict classifies one expression in seed position.
type seedVerdict struct {
	derived bool
	params  uint32 // bare-parameter bits the expression depends on
	raw     bool
}

func (v seedVerdict) merge(o seedVerdict) seedVerdict {
	return seedVerdict{
		derived: v.derived || o.derived,
		params:  v.params | o.params,
		raw:     v.raw || o.raw,
	}
}

func runDetRand(pass *analysis.Pass) error {
	// Two rounds so same-package helper facts (derived-seed returns, seed
	// params) exist before call sites are judged; the final round reports.
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, fd := range fns {
			if summarizeSeeds(pass, fd, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range fns {
		summarizeSeeds(pass, fd, true)
	}
	return nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// seedState is the per-function classification state.
type seedState struct {
	pass   *analysis.Pass
	params map[types.Object]int
	locals map[types.Object]seedVerdict
	report bool
	// accumulated facts for the enclosing function
	seedParams  uint32
	derivedRets uint32
	changed     bool
}

// summarizeSeeds classifies every seed-position expression in fd, exports
// the function's seed facts, and (with report set) emits diagnostics.
// It returns whether the exported facts changed.
func summarizeSeeds(pass *analysis.Pass, fd *ast.FuncDecl, report bool) bool {
	st := &seedState{
		pass:   pass,
		params: map[types.Object]int{},
		locals: map[types.Object]seedVerdict{},
		report: report,
	}
	idx := 0
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					st.params[obj] = idx
				}
				idx++
			}
		}
	}
	addParams(fd.Recv)
	addParams(fd.Type.Params)

	// Local-variable provenance to a fixpoint (seed chains are short).
	for i := 0; i < 4; i++ {
		st.changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i < len(x.Rhs) {
						st.assignLocal(lhs, st.classify(x.Rhs[i]))
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						st.assignLocal(name, st.classify(x.Values[i]))
					}
				}
			}
			return true
		})
		if !st.changed {
			break
		}
	}

	// Judge seed positions and collect return derivations.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			st.visitSeedCall(x)
		case *ast.ReturnStmt:
			for ri, e := range x.Results {
				if ri > 31 {
					break
				}
				if st.classify(e).derived {
					st.derivedRets |= uint32(1) << uint(ri)
				}
			}
		}
		return true
	})

	// Export facts.
	obj := pass.ObjectOf(fd.Name)
	if obj == nil {
		return false
	}
	changed := false
	if st.derivedRets != 0 {
		old := new(DerivedSeedFact)
		had := pass.ImportObjectFact(obj, old)
		fact := &DerivedSeedFact{Results: old.Results | st.derivedRets}
		if !had || !reflect.DeepEqual(old, fact) {
			pass.ExportObjectFact(obj, fact)
			changed = true
		}
	}
	if st.seedParams != 0 {
		old := new(SeedParamFact)
		had := pass.ImportObjectFact(obj, old)
		fact := &SeedParamFact{Params: old.Params | st.seedParams}
		if !had || !reflect.DeepEqual(old, fact) {
			pass.ExportObjectFact(obj, fact)
			changed = true
		}
	}
	return changed
}

func (st *seedState) assignLocal(lhs ast.Expr, v seedVerdict) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := st.pass.ObjectOf(id)
	if obj == nil {
		return
	}
	if _, isParam := st.params[obj]; isParam {
		return // reassigned params keep their parameter meaning
	}
	merged := st.locals[obj].merge(v)
	if merged != st.locals[obj] {
		st.locals[obj] = merged
		st.changed = true
	}
}

// visitSeedCall checks prg.NewSeeded/NewRandom calls and seed-parameter
// obligations of fact-carrying callees.
func (st *seedState) visitSeedCall(call *ast.CallExpr) {
	callee := calleeOf(st.pass, call)
	if callee == nil {
		return
	}
	if isPRGFunc(callee, "NewRandom") {
		if st.report {
			st.pass.Reportf(call.Pos(),
				"prg.NewRandom is nondeterministic and cannot participate in a resumable transcript; derive a seed via the salted (Seed, token, seq) mix64 path and use prg.NewSeeded")
		}
		return
	}
	if isPRGFunc(callee, "NewSeeded", "New") && len(call.Args) == 1 {
		st.judgeSeedArg(call.Args[0], "prg."+callee.Name())
		return
	}
	fact := new(SeedParamFact)
	if !st.pass.ImportObjectFact(callee, fact) {
		return
	}
	args := callArgs(st.pass, call, callee)
	for ai, arg := range args {
		fi := factParamIndex(ai, 32)
		if fi <= 31 && fact.Params&(uint32(1)<<uint(fi)) != 0 {
			st.judgeSeedArg(arg, calleeName(callee)+" (which seeds a PRG with it)")
		}
	}
}

// judgeSeedArg applies the verdict rules to one seed-position expression.
func (st *seedState) judgeSeedArg(arg ast.Expr, sink string) {
	v := st.classify(arg)
	switch {
	case v.derived:
		// Properly salted.
	case v.params != 0 && !v.raw:
		// The caller owes us a derived seed; record the obligation.
		if st.seedParams|v.params != st.seedParams {
			st.seedParams |= v.params
			st.changed = true
		}
	default:
		if st.report {
			st.pass.Reportf(arg.Pos(),
				"raw seed reaches %s; session-transcript randomness must derive from the salted (Seed, token, seq) splitmix64 path — wrap the seed in mix64 (see engine.saltedSeed)", sink)
		}
	}
}

// classify computes the seed verdict of one expression.
func (st *seedState) classify(e ast.Expr) seedVerdict {
	switch x := e.(type) {
	case *ast.BasicLit:
		return seedVerdict{}
	case *ast.ParenExpr:
		return st.classify(x.X)
	case *ast.UnaryExpr:
		return st.classify(x.X)
	case *ast.BinaryExpr:
		return st.classify(x.X).merge(st.classify(x.Y))
	case *ast.Ident:
		obj := st.pass.ObjectOf(x)
		switch o := obj.(type) {
		case *types.Const:
			return seedVerdict{}
		case *types.Var:
			if pi, ok := st.params[o]; ok {
				if pi > 31 {
					pi = 31
				}
				return seedVerdict{params: uint32(1) << uint(pi)}
			}
			if v, ok := st.locals[o]; ok {
				return v
			}
			return seedVerdict{raw: true}
		}
		return seedVerdict{raw: true}
	case *ast.SelectorExpr:
		// Package-qualified constants are neutral; fields and globals are
		// raw — cfg.Seed is exactly the bug class.
		if obj := st.pass.ObjectOf(x.Sel); obj != nil {
			if _, isConst := obj.(*types.Const); isConst {
				return seedVerdict{}
			}
		}
		return seedVerdict{raw: true}
	case *ast.CallExpr:
		return st.classifyCall(x)
	}
	return seedVerdict{raw: true}
}

func (st *seedState) classifyCall(call *ast.CallExpr) seedVerdict {
	// Conversions are transparent.
	if tv, ok := st.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return st.classify(call.Args[0])
	}
	if isMixCall(call) {
		return seedVerdict{derived: true}
	}
	callee := calleeOf(st.pass, call)
	if callee == nil {
		return seedVerdict{raw: true}
	}
	// PRG draws are transcript-derived by construction.
	if isPRGMethod(callee, "Uint64", "Elem", "Bit") {
		return seedVerdict{derived: true}
	}
	fact := new(DerivedSeedFact)
	if st.pass.ImportObjectFact(callee, fact) && fact.Results&1 != 0 {
		return seedVerdict{derived: true}
	}
	return seedVerdict{raw: true}
}

// isMixCall recognises the splitmix64 finalizer by name — mix64 is
// unexported in engine, so this is a name-based contract: any function
// named mix64 or splitmix64 is the derivation step.
func isMixCall(call *ast.CallExpr) bool {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return name == "mix64" || name == "splitmix64" || name == "Mix64"
}

// isPRGFunc reports whether f is a package-level function of a package
// whose base name is prg with one of the given names.
func isPRGFunc(f *types.Func, names ...string) bool {
	if f == nil || f.Pkg() == nil || pkgBase(f.Pkg().Path()) != "prg" {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}
