// Package secretflowdep is the dependency half of the secretflow fixture:
// its taint summaries (source-producing results, sink-forwarding and
// result-flowing parameters, caller-visible mutations) are exported as
// facts and must be visible when the dependent package is analyzed.
package secretflowdep

import (
	"fmt"

	"prg"
)

// Mask draws n fresh mask elements: its result carries a secret created
// inside (SourceResult fact).
func Mask(g *prg.PRG, n int) []uint64 {
	out := make([]uint64, n)
	g.FillElems(out, 0xFFFF)
	return out
}

// Debug forwards its argument to a fmt sink (ParamSink fact).
func Debug(v uint64) {
	fmt.Printf("debug: %d\n", v)
}

// Passthrough returns its argument unchanged (ParamResult fact).
func Passthrough(v uint64) uint64 { return v }

// MaskInto fills dst with fresh mask elements (SourceMut fact — the
// caller's buffer is secret afterwards).
func MaskInto(g *prg.PRG, dst []uint64) {
	g.FillElems(dst, 0xFFFF)
}

// AddInto writes a+b element-wise into dst (ParamMut fact — dst inherits
// the taint of a and b at every call site).
func AddInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Reveal converts ring words to signed plaintext. Its []int64 result is a
// non-carrier type, so the taint of vals does not survive the return —
// the boundary every reveal helper relies on.
func Reveal(vals []uint64) []int64 {
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = int64(v)
	}
	return out
}
