// Testdata for the panicfree analyzer.
package panicfree

// New-style constructors validate configuration eagerly and may panic.
func NewThing(bits int) int {
	if bits <= 0 {
		panic("panicfree: bits must be positive")
	}
	return bits
}

// Must-style helpers are the conventional panic wrappers.
func MustThing(v int, err error) int {
	if err != nil {
		panic(err)
	}
	return v
}

func init() {
	if NewThing(8) != 8 {
		panic("panicfree: self-check failed")
	}
}

// NewChecked shows that literals inside a constructor inherit its exemption.
func NewChecked(vs []int) func() {
	return func() {
		if len(vs) == 0 {
			panic("panicfree: empty")
		}
	}
}

// run is protocol-runtime code: panics here tear down the 2PC session.
func run(shares []uint64) uint64 {
	if len(shares) == 0 {
		panic("no shares") // want `panic in a protocol-runtime path`
	}
	defer func() {
		if shares[0] == 0 {
			panic("zero share") // want `panic in a protocol-runtime path`
		}
	}()
	if len(shares) > 1<<30 {
		//lint:allow panicfree testdata: unreachable-by-construction guard
		panic("absurd share count")
	}
	return shares[0]
}
