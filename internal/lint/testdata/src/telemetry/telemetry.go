// Package telemetry is a miniature mimic of aq2pnn/internal/telemetry for
// analyzer testdata (matched by the package name and the Scope / Tracer /
// Span type and method names).
package telemetry

// SpanOption configures a started span.
type SpanOption func()

// Attr is one key/value span attribute.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Span is one started span.
type Span struct{}

func (s *Span) End()                                        {}
func (s *Span) SetAttr(key string, value any)               {}
func (s *Span) Child(name string, opts ...SpanOption) *Span { return &Span{} }

// Tracer starts root spans.
type Tracer struct{}

func (t *Tracer) Root(name string, opts ...SpanOption) *Span { return &Span{} }

// Scope threads the current span through one party's sequential flow.
type Scope struct{}

func (s *Scope) Enter(name string, opts ...SpanOption) *Span { return &Span{} }
func (s *Scope) Exit(sp *Span)                               {}
