// Testdata for the looppar analyzer.
package looppar

import (
	"sync"

	"parallel"
)

// good writes only to disjoint index ranges derived from the kernel arguments.
func good(p *parallel.Pool, in []uint64) []uint64 {
	out := make([]uint64, len(in))
	p.For(len(in), func(i int) {
		out[i] = in[i] * 3
	})
	p.Blocks(len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			local := in[i] + 1
			out[i] = local
		}
	})
	return out
}

func bad(p *parallel.Pool, in []uint64) uint64 {
	var sum uint64
	var total int
	acc := []uint64{}
	out := make([]uint64, len(in))
	p.For(len(in), func(i int) {
		sum += in[i]             // want `captured variable "sum"`
		acc = append(acc, in[i]) // want `captured variable "acc"`
		out[0] = in[i]           // want `workers collide on the same element`
		total++                  // want `captured variable "total"`
	})
	var mu sync.Mutex
	seen := []int{}
	p.Blocks(len(in), func(lo, hi int) {
		mu.Lock()
		//lint:allow looppar testdata: mutex-guarded append compared as a set
		seen = append(seen, lo)
		mu.Unlock()
	})
	_ = seen
	return sum + uint64(total) + uint64(len(acc)) + out[0]
}
