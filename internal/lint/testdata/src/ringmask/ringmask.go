// Testdata for the ringmask analyzer.
package ringmask

import "ring"

// good shows every accepted reduction idiom.
func good(r ring.Ring, a, b uint64) uint64 {
	x := (a + b) & r.Mask         // masked immediately
	y := r.Add(a, b)              // ring method
	z := r.Mul(a+b, b)            // chain feeding a ring method
	w := (a*b + b - a) & r.Mask   // whole chain under one mask
	mask := uint64(1)<<r.Bits - 1 // mask construction
	v := (a << 3) & mask          // shift reduced by a named mask
	n := int(a * b)               // conversion leaves the share domain
	lo := a >> 3                  // logical right shift is truncation, not growth
	return (x + y + z + w + v + mask + uint64(n) + lo) & r.Mask
}

// seeds shows the PRG-seed sinks.
func seeds(seed uint64) {
	NewSeeded(seed + 1) // seed derivation sink by callee name
	session(seed + 2)   // seed derivation sink by parameter name
}

func NewSeeded(seed uint64) {}
func session(seed uint64)   {}

func bad(r ring.Ring, a, b uint64) uint64 {
	s := a + b        // want `unmasked uint64 "\+"`
	p := a * b        // want `unmasked uint64 "\*"`
	d := a - b        // want `unmasked uint64 "-"`
	sh := a << 2      // want `unmasked uint64 "<<"`
	if a+b > r.Mask { // want `unmasked uint64 "\+"`
		s = 0
	}
	other(a + b) // want `unmasked uint64 "\+"`
	//lint:allow ringmask testdata: deliberately unreduced to prove the escape hatch
	ok := a + b
	return (s + p + d + sh + ok) & r.Mask
}

func other(x uint64) {}
