// Testdata for the spanend analyzer.
package spanend

import (
	"errors"

	"telemetry"
)

var errFail = errors.New("fail")

func work() error { return nil }
func cond() bool  { return false }

func goodDefer(sc *telemetry.Scope) error {
	sp := sc.Enter("op")
	defer sc.Exit(sp)
	if cond() {
		return errFail
	}
	return work()
}

func goodDeferEnd(tr *telemetry.Tracer) {
	sp := tr.Root("phase")
	defer sp.End()
	_ = work()
}

func goodDeferClosure(tr *telemetry.Tracer) {
	sp := tr.Root("phase")
	defer func() { sp.End() }()
	_ = work()
}

func goodEndBeforeErrorCheck(tr *telemetry.Tracer) error {
	sp := tr.Root("phase")
	err := work()
	sp.End()
	if err != nil {
		return err
	}
	return nil
}

func goodBothBranches(sc *telemetry.Scope) {
	sp := sc.Enter("op")
	if cond() {
		sc.Exit(sp)
		return
	}
	sc.Exit(sp)
}

func goodHandoff(tr *telemetry.Tracer) *telemetry.Span {
	sp := tr.Root("phase")
	return sp
}

func goodSwitch(sc *telemetry.Scope, k int) {
	sp := sc.Enter("op")
	switch k {
	case 0:
		_ = work()
	default:
		_ = work()
	}
	sc.Exit(sp)
}

func goodChild(root *telemetry.Span) {
	c := root.Child("inner")
	c.End()
}

func badReturnBeforeEnd(sc *telemetry.Scope) error {
	sp := sc.Enter("op")
	if err := work(); err != nil {
		return err // want `span sp may not be ended on this return path`
	}
	sc.Exit(sp)
	return nil
}

func badNeverEnded(tr *telemetry.Tracer) {
	sp := tr.Root("phase") // want `span sp is not ended on every path`
	_ = work()
	_ = sp
}

func badDiscarded(sc *telemetry.Scope) {
	sc.Enter("op") // want `span from sc.Enter is discarded`
}

func badBlank(tr *telemetry.Tracer) {
	_ = tr.Root("phase") // want `discarded and can never be ended`
}

func badChildLeak(root *telemetry.Span) {
	c := root.Child("inner") // want `span c is not ended on every path`
	_ = work()
	_ = c
}

func badSwitchReturn(sc *telemetry.Scope, k int) error {
	sp := sc.Enter("op")
	switch k {
	case 0:
		return errFail // want `span sp may not be ended on this return path`
	}
	sc.Exit(sp)
	return nil
}

func badOnlyOneBranch(sc *telemetry.Scope) {
	sp := sc.Enter("op") // want `span sp is not ended on every path`
	if cond() {
		sc.Exit(sp)
	}
}

func allowEscape(tr *telemetry.Tracer, keep func(*telemetry.Span)) {
	//lint:allow spanend testdata: ownership handed to the registry
	sp := tr.Root("phase")
	keep(sp)
}

func funcLitScopes(tr *telemetry.Tracer) {
	f := func() {
		sp := tr.Root("inner")
		sp.End()
	}
	f()
	sp := tr.Root("outer")
	defer sp.End()
}
