// Package share is a miniature mimic of aq2pnn/internal/share for
// analyzer testdata (matched by the package base name and the Tensor type
// name, which secretflow treats as inherently secret).
package share

// Tensor is one additive share of a secret tensor.
type Tensor struct {
	Mask uint64
	Data []uint64
}

// Open reconstructs the secret from both shares.
func Open(a, b Tensor) []uint64 {
	out := make([]uint64, len(a.Data))
	for i := range out {
		out[i] = (a.Data[i] + b.Data[i]) & a.Mask
	}
	return out
}
