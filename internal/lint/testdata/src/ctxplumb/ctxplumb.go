// Testdata for the ctxplumb analyzer.
package ctxplumb

import (
	"context"

	"transport"
)

func good(ctx context.Context) error {
	c, err := transport.DialContext(ctx, "peer:9000")
	if err != nil {
		return err
	}
	return c.Close()
}

// noCtx has no context parameter, so fabricating one is legitimate.
func noCtx() error {
	c, err := transport.DialContext(context.Background(), "peer:9000")
	if err != nil {
		return err
	}
	return c.Close()
}

func bad(ctx context.Context) error {
	bg := context.Background() // want `context.Background inside a function that already receives`
	todo := context.TODO()     // want `context.TODO inside a function that already receives`
	_, _ = bg, todo
	c, err := transport.Dial("peer:9000") // want `transport.Dial ignores the available context.Context`
	if err != nil {
		return err
	}
	//lint:allow ctxplumb testdata: detached background task must outlive the request
	detached := context.Background()
	_ = detached
	return c.Close()
}

// literal checks that function literals are scoped independently.
func literal(ctx context.Context) {
	go func() {
		// The literal itself has no ctx parameter; the analyzer is
		// per-function, so this is accepted.
		_ = context.Background()
	}()
}
