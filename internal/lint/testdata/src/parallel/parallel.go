// Package parallel is a miniature mimic of aq2pnn/internal/parallel for
// analyzer testdata (matched by the Pool type name and its Blocks/For
// methods).
package parallel

type Pool struct{ degree int }

func New(workers uint) *Pool { return &Pool{degree: int(workers)} }

func (p *Pool) Blocks(n int, fn func(lo, hi int)) { fn(0, n) }

func (p *Pool) For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
