// Package prg is a miniature mimic of aq2pnn/internal/prg for analyzer
// testdata (matched by the package base name, the PRG type name and the
// draw-method names).
package prg

// PRG is a deterministic pseudo-random generator.
type PRG struct{ s uint64 }

// NewSeeded derives a PRG from a 64-bit seed.
func NewSeeded(seed uint64) *PRG { return &PRG{s: seed} }

// NewRandom seeds a PRG from the OS entropy pool.
func NewRandom() (*PRG, error) { return &PRG{s: 4}, nil }

// Fork splits off an independent stream.
func (g *PRG) Fork() *PRG { return &PRG{s: g.s + 1} }

// Uint64 draws 64 bits.
func (g *PRG) Uint64() uint64 {
	g.s += 0x9E3779B97F4A7C15
	return g.s
}

// Elem draws one masked ring element.
func (g *PRG) Elem(mask uint64) uint64 { return g.Uint64() & mask }

// Elems draws n masked ring elements.
func (g *PRG) Elems(n int, mask uint64) []uint64 {
	out := make([]uint64, n)
	g.FillElems(out, mask)
	return out
}

// FillElems fills dst with masked ring elements.
func (g *PRG) FillElems(dst []uint64, mask uint64) {
	for i := range dst {
		dst[i] = g.Uint64() & mask
	}
}
