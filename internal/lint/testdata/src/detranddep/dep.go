// Package detranddep is the dependency half of the detrand fixture: its
// seed facts (MakeRNG's seed obligation, Derive's derived result) are
// exported as facts and must be visible when the dependent package is
// analyzed.
package detranddep

import "prg"

// MakeRNG seeds a PRG from its argument; every caller owes it a derived
// seed (SeedParamFact).
func MakeRNG(seed uint64) *prg.PRG {
	return prg.NewSeeded(seed)
}

// Derive salts and finalizes a raw seed (DerivedSeedFact).
func Derive(seed, salt uint64) uint64 {
	return mix64(seed ^ salt)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
