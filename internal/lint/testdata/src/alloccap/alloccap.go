// Testdata for the alloccap analyzer.
package alloccap

import "encoding/binary"

const maxFrame = 1 << 26

// Unbounded: the peer-declared length sizes the allocation directly.
func unbounded(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) // want `allocation sized by wire-decoded "n" without a dominating bound check`
}

// Unbounded: the decode feeds the size without ever landing in a checked
// variable.
func inline(hdr []byte) []byte {
	return make([]byte, binary.LittleEndian.Uint64(hdr)) // want `allocation sized by wire-decoded value without a dominating bound check`
}

// Unbounded through arithmetic: taint propagates through the sum.
func derived(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	total := int(n) + 8
	return make([]byte, total) // want `allocation sized by wire-decoded "total" without a dominating bound check`
}

// Bounded: a dominating comparison checks the length first.
func checked(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// Bounded: clamping through min caps the allocation at the site.
func clamped(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	return make([]byte, min(n, maxFrame))
}

// Two sizes, one bounded: only the unchecked count is reported.
func partial(hdr []byte) [][]byte {
	rows := binary.LittleEndian.Uint32(hdr)
	cols := binary.LittleEndian.Uint32(hdr[4:])
	if cols > 64 {
		return nil
	}
	out := make([][]byte, rows) // want `allocation sized by wire-decoded "rows" without a dominating bound check`
	for i := range out {
		out[i] = make([]byte, cols)
	}
	return out
}

// Suppressed: the bound lives in the caller, documented at the site.
func allowed(n uint32) []byte {
	m := binary.LittleEndian.Uint32([]byte{0, 0, 0, 0})
	return make([]byte, m) //lint:allow alloccap caller bounds m against the frame cap
}

// Untainted sizes never trip the check.
func local(n int) []byte {
	return make([]byte, n)
}
