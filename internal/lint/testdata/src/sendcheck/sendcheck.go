// Testdata for the sendcheck analyzer.
package sendcheck

import "transport"

func good(c transport.Conn) error {
	if err := c.Send(nil); err != nil {
		return err
	}
	p, err := c.Recv()
	if err != nil {
		return err
	}
	_ = p
	if err := transport.SendElems(c, nil); err != nil {
		return err
	}
	c.Close() // Close is cleanup, not protocol traffic
	return nil
}

func bad(c transport.Conn) {
	c.Send(nil)      // want `result of c.Send is unchecked`
	_ = c.Send(nil)  // want `error result of c.Send assigned to _`
	p, _ := c.Recv() // want `error result of c.Recv assigned to _`
	_ = p
	go c.Send(nil)                    // want `started with 'go' discards its error`
	transport.SendElems(c, nil)       // want `result of transport.SendElems is unchecked`
	x, _ := transport.RecvElems(c, 3) // want `error result of transport.RecvElems assigned to _`
	_ = x
	transport.SendBytes(c, nil) // want `result of transport.SendBytes is unchecked`
	//lint:allow sendcheck testdata: deliberate fire-and-forget
	c.Send(nil)
}

func deferred(c transport.Conn) {
	defer c.Send(nil) // want `deferred c.Send discards its error`
}
