// Testdata for the secretflow analyzer. The leakCross* cases flow through
// package secretflowdep and are caught only via cross-package facts.
package secretflow

import (
	"errors"
	"fmt"
	"log"

	"prg"
	"secretflowdep"
	"share"
	"telemetry"
	"transport"
)

func leakDirect(g *prg.PRG) {
	m := g.Uint64()
	fmt.Println(m) // want `secret share value flows into fmt.Println`
}

func leakFormatted(g *prg.PRG) {
	s := fmt.Sprintf("mask=%d", g.Elem(0xFF))
	log.Print(s) // want `secret share value flows into log.Print`
}

func leakTensorError(t share.Tensor) error {
	return fmt.Errorf("bad share %v", t.Data) // want `secret share value flows into fmt.Errorf`
}

func leakErrorsNew(t share.Tensor) error {
	return errors.New(fmt.Sprint(t.Data[0])) // want `secret share value flows into errors.New`
}

func leakSpanAttr(sp *telemetry.Span, t share.Tensor) {
	sp.SetAttr("first", t.Data[0]) // want `secret share value flows into Span.SetAttr`
}

func leakCrossSource(g *prg.PRG) {
	vals := secretflowdep.Mask(g, 4)
	fmt.Println(vals[0]) // want `secret share value flows into fmt.Println`
}

func leakCrossSink(g *prg.PRG) {
	secretflowdep.Debug(g.Uint64()) // want `secret share value flows into secretflowdep.Debug`
}

func leakCrossChain(g *prg.PRG) {
	v := secretflowdep.Passthrough(g.Uint64())
	fmt.Println(v) // want `secret share value flows into fmt.Println`
}

func leakCrossMut(g *prg.PRG) {
	buf := make([]uint64, 8)
	secretflowdep.MaskInto(g, buf)
	fmt.Println(buf[0]) // want `secret share value flows into fmt.Println`
}

func leakCrossParamMut(t share.Tensor) {
	sum := make([]uint64, len(t.Data))
	secretflowdep.AddInto(sum, t.Data, t.Data)
	fmt.Println(sum[0]) // want `secret share value flows into fmt.Println`
}

func okDeclassified(a, b share.Tensor) {
	opened := share.Open(a, b)
	//lint:declassify protocol output: the reconstructed logits belong to the user party
	fmt.Println(opened)
}

func okLength(t share.Tensor) {
	fmt.Println(len(t.Data)) // len launders: sizes are public protocol metadata
}

func okPublic(frames int) {
	fmt.Printf("sent %d frames\n", frames)
}

func staleDeclassify(t share.Tensor) int {
	//lint:declassify nothing secret happens below // want `launders nothing`
	return len(t.Data)
}

// The generator is public seeded state; only its draws are secret.
func okPRGValue(g *prg.PRG) {
	f := g.Fork()
	fmt.Printf("forked generator ready: %T\n", f)
}

// A non-carrier result comes back public: []int64 cannot hold ring words,
// so the reveal boundary strips the masks' taint.
func okRevealedInts(g *prg.PRG) {
	ints := secretflowdep.Reveal(secretflowdep.Mask(g, 4))
	fmt.Println(ints[0])
}

// Traffic counters are public metric metadata even inside a struct that
// also holds share material; the share field itself still reports.
type sessionState struct {
	Shares []uint64
	Online transport.Stats
}

func okTrafficMetrics(g *prg.PRG) {
	s := sessionState{Shares: secretflowdep.Mask(g, 4), Online: transport.Stats{Rounds: 3}}
	fmt.Printf("rounds=%d\n", s.Online.Rounds)
	fmt.Println(s.Shares[0]) // want `secret share value flows into fmt.Println`
}

// Closure parameters are tracked like declared ones, so the reveal-helper
// pattern keeps its declassify directive live.
func okClosureReveal(a, b share.Tensor) {
	finish := func(opened []uint64) {
		//lint:declassify protocol output: the reconstructed logits belong to the user party
		fmt.Println(opened)
	}
	finish(share.Open(a, b))
}
