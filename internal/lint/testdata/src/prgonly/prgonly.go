// Testdata for the prgonly analyzer.
package prgonly

import (
	_ "crypto/rand" // want `bare crypto/rand import`
	_ "math/rand"   // want `import of math/rand`
)
