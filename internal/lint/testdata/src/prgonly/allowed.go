package prgonly

import (
	//lint:allow prgonly testdata: the documented-exception form
	_ "math/rand/v2"
)
