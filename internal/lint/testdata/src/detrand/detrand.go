// Testdata for the detrand analyzer. badCross relies on the SeedParamFact
// exported by package detranddep and is caught only via facts; goodCross
// and goodLocal rely on its DerivedSeedFact to stay silent.
package detrand

import (
	"detranddep"
	"prg"
)

// Config mimics the engine inference config.
type Config struct{ Seed uint64 }

func bad(cfg Config) *prg.PRG {
	return prg.NewSeeded(cfg.Seed ^ 0xBA7C4) // want `raw seed reaches prg.NewSeeded`
}

func badConst() *prg.PRG {
	return prg.NewSeeded(0x7E6157) // want `raw seed reaches prg.NewSeeded`
}

func badRandom() (*prg.PRG, error) {
	return prg.NewRandom() // want `nondeterministic`
}

func badCross(cfg Config) *prg.PRG {
	return detranddep.MakeRNG(cfg.Seed) // want `raw seed reaches detranddep.MakeRNG`
}

func goodCross(cfg Config) *prg.PRG {
	return prg.NewSeeded(detranddep.Derive(cfg.Seed, 0x5EED))
}

func goodLocal(cfg Config) *prg.PRG {
	seed := detranddep.Derive(cfg.Seed, 0xA1)
	return prg.NewSeeded(seed)
}

// deferred passes the obligation to its callers (SeedParamFact within
// this package): no finding here.
func deferred(famSeed uint64) *prg.PRG {
	return prg.NewSeeded(famSeed)
}

func badCaller(cfg Config) *prg.PRG {
	return deferred(cfg.Seed) // want `raw seed reaches detrand.deferred`
}

func goodCaller(cfg Config) *prg.PRG {
	return deferred(detranddep.Derive(cfg.Seed, 7))
}
