// Package ring is a miniature mimic of aq2pnn/internal/ring for analyzer
// testdata: the analyzers match the type name Ring and its method set, so
// the testdata packages can exercise them without importing the module.
package ring

type Ring struct {
	Bits uint
	Mask uint64
}

func New(bits uint) Ring { return Ring{Bits: bits, Mask: uint64(1)<<bits - 1} }

func (r Ring) Reduce(x uint64) uint64 { return x & r.Mask }
func (r Ring) Add(a, b uint64) uint64 { return (a + b) & r.Mask }
func (r Ring) Sub(a, b uint64) uint64 { return (a - b) & r.Mask }
func (r Ring) Mul(a, b uint64) uint64 { return (a * b) & r.Mask }
