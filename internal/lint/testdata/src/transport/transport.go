// Package transport is a miniature mimic of aq2pnn/internal/transport for
// analyzer testdata (matched by package name, the Conn type name and the
// helper function names).
package transport

import "context"

type Conn interface {
	Send(p []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Stats mirrors the traffic ledger: uint64 counters that are public
// metric metadata by definition, never share words.
type Stats struct {
	BytesSent uint64
	BytesRecv uint64
	Rounds    uint64
}

func SendElems(c Conn, xs []uint64) error              { return c.Send(nil) }
func RecvElems(c Conn, n int) ([]uint64, error)        { return nil, nil }
func SendBytes(c Conn, p []byte) error                 { return c.Send(p) }
func RecvBytes(c Conn) ([]byte, error)                 { return c.Recv() }
func Exchange(c Conn, mine []uint64) ([]uint64, error) { return nil, nil }

func Dial(addr string) (Conn, error) { return DialContext(context.Background(), addr) }

func DialContext(ctx context.Context, addr string) (Conn, error) { return nil, nil }
