package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// PanicFree forbids panic in protocol-runtime code. A panic on one party
// kills that process while the peer blocks forever inside Recv — in a
// served deployment that is a connection leak per incident and an easy
// remote crash. Runtime failures must travel as errors back through the
// SecureInfer* call chain, where the engine closes the session cleanly.
//
// Config-time constructors are exempt by name (New*, Must*, init): a bad
// static configuration (ring.New with 0 bits) is a programming error that
// should fail loudly before any protocol bytes flow.
var PanicFree = &analysis.Analyzer{
	Name: "panicfree",
	Doc: "forbids panic in protocol-runtime paths; config-time " +
		"constructors (New*, Must*, init) are exempt",
	Run: runPanicFree,
}

func runPanicFree(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if obj := pass.ObjectOf(id); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return true // a local function shadowing panic
			}
		}
		if fn := enclosingFuncName(stack); isConfigTimeFunc(fn) {
			return true
		}
		pass.Reportf(call.Pos(),
			"panic in a protocol-runtime path; return an error instead (SecureInfer paths must be panic-free)")
		return true
	})
	return nil
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration. Function literals inherit their declaring function's name,
// so a helper closure inside a constructor keeps the exemption.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

func isConfigTimeFunc(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") ||
		strings.HasPrefix(name, "Must")
}
