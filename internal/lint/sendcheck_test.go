package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestSendCheck(t *testing.T) {
	linttest.Run(t, "testdata", "sendcheck", lint.SendCheck)
}
