package lint

import (
	"go/ast"
	"go/types"

	"aq2pnn/internal/lint/analysis"
)

// SendCheck flags dropped errors on transport operations. A party that
// ignores a failed Send or Recv keeps executing its half of the protocol
// while the peer does not — the two transcripts silently desynchronize and
// every subsequent opened value is garbage (or worse, leaks a share against
// a stale mask). The analyzer covers the transport.Conn methods, the
// package-level transport helpers, and raw net.Conn reads/writes.
//
// Discarding with `_ =` is also flagged: the invariant is that the error is
// *handled*, and a deliberate drop must say why via //lint:allow.
var SendCheck = &analysis.Analyzer{
	Name: "sendcheck",
	Doc: "flags dropped errors on transport send/recv and net.Conn " +
		"reads/writes, which desynchronize the two parties",
	Run: runSendCheck,
}

// sendCheckConnMethods are methods that move protocol bytes when invoked on
// a type named Conn (covers transport.Conn implementations and net.Conn).
var sendCheckConnMethods = map[string]bool{
	"Send": true, "Recv": true, "Write": true, "Read": true,
}

// sendCheckHelpers are the package-level helpers of internal/transport.
var sendCheckHelpers = map[string]bool{
	"SendElems": true, "RecvElems": true,
	"SendBytes": true, "RecvBytes": true,
	"Exchange": true, "ExchangeOpen": true,
}

func runSendCheck(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && sendCheckTarget(pass, call) {
				pass.Reportf(call.Pos(), "transport error dropped: result of %s is unchecked (a failed send/recv desynchronizes the parties)", callName(call))
			}
		case *ast.GoStmt:
			if sendCheckTarget(pass, s.Call) {
				pass.Reportf(s.Call.Pos(), "transport error dropped: %s started with 'go' discards its error", callName(s.Call))
			}
		case *ast.DeferStmt:
			if sendCheckTarget(pass, s.Call) {
				pass.Reportf(s.Call.Pos(), "transport error dropped: deferred %s discards its error", callName(s.Call))
			}
		case *ast.AssignStmt:
			reportBlankedTransportErrors(pass, s)
		}
		return true
	})
	return nil
}

// reportBlankedTransportErrors flags `_ = c.Send(..)` and
// `x, _ := transport.RecvElems(..)` — assignments that bind the error
// result of a transport call to the blank identifier.
func reportBlankedTransportErrors(pass *analysis.Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !sendCheckTarget(pass, call) {
		return
	}
	// The error is the final result; with a single-result call it is the
	// only LHS, with a multi-result call it is the last LHS.
	last := s.Lhs[len(s.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(s.Pos(), "transport error dropped: error result of %s assigned to _", callName(call))
	}
}

// sendCheckTarget reports whether call is a transport operation whose last
// result is an error.
func sendCheckTarget(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !lastResultIsError(pass, call) {
		return false
	}
	name := sel.Sel.Name
	// Method on a connection value.
	if recv := pass.TypeOf(sel.X); recv != nil && !isPackageRef(pass, sel.X) {
		if sendCheckConnMethods[name] && typeNameIs(recv, "Conn") {
			return true
		}
		return false
	}
	// Package-qualified helper: transport.SendElems(...) etc.
	if sendCheckHelpers[name] || sendCheckConnMethods[name] {
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "transport" {
			return true
		}
	}
	return false
}

// isPackageRef reports whether e is an identifier naming an imported
// package rather than a value.
func isPackageRef(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := pass.ObjectOf(id).(*types.PkgName)
	return isPkg
}

// typeNameIs reports whether t (possibly behind a pointer) is a named or
// interface type whose declared name is name.
func typeNameIs(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() == name
	}
	return false
}

func lastResultIsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	case *ast.Ident:
		return f.Name
	}
	return "call"
}
