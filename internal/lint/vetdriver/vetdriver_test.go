package vetdriver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetProtocolFactsRoundTrip drives the real vet protocol end to end:
// it builds the vettool, synthesizes a throwaway module whose leak can
// only be seen interprocedurally (the source lives in one package, the
// sink call in another), and runs `go vet -vettool` on the leaking
// package. The go command compiles the dependency, hands the driver its
// export data and runs VetxOnly fact units for it — so the diagnostic
// appearing at all proves facts survive the gob encode → .vetx file →
// decode round trip alongside real export data.
func TestVetProtocolFactsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet on a synthetic module")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	bin := filepath.Join(t.TempDir(), "aq2pnnlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/aq2pnnlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	mod := t.TempDir()
	writeFile(t, mod, "go.mod", `module lintrt

go 1.22
`)
	// The prg mimic is matched by package base name + type/method names.
	writeFile(t, mod, "prg/prg.go", `package prg

type PRG struct{ s uint64 }

func NewSeeded(seed uint64) *PRG { return &PRG{s: seed} }

func (g *PRG) Uint64() uint64 {
	g.s += 0x9E3779B97F4A7C15
	return g.s
}

func (g *PRG) FillElems(dst []uint64, mask uint64) {
	for i := range dst {
		dst[i] = g.Uint64() & mask
	}
}
`)
	// The source lives here: Mask's result carries PRG output, recorded
	// as a SecretFlowFact on lintrt/dep.Mask in dep's vetx file.
	writeFile(t, mod, "dep/dep.go", `package dep

import "lintrt/prg"

func Mask(g *prg.PRG, n int) []uint64 {
	out := make([]uint64, n)
	g.FillElems(out, 0xFFFF)
	return out
}
`)
	// The sink lives here: without the imported fact this package has no
	// idea vals is secret.
	writeFile(t, mod, "leak/leak.go", `package leak

import (
	"fmt"

	"lintrt/dep"
	"lintrt/prg"
)

func Leak(g *prg.PRG) {
	vals := dep.Mask(g, 4)
	fmt.Println(vals[0])
}
`)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./leak")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded; want the cross-package secretflow finding\noutput:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "secret share value flows into fmt.Println") {
		t.Fatalf("missing cross-package secretflow diagnostic\noutput:\n%s", text)
	}
	if !strings.Contains(text, "leak.go") {
		t.Fatalf("diagnostic not attributed to the sink package\noutput:\n%s", text)
	}
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
