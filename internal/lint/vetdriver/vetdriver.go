// Package vetdriver runs the aq2pnnlint suite under the go command's
// (unpublished but stable) vet tool protocol, the same contract
// golang.org/x/tools/go/analysis/unitchecker implements:
//
//   - `tool -flags` prints a JSON description of the tool's flags;
//   - `tool [flags] <objdir>/vet.cfg` analyzes one package unit described
//     by the JSON config the go command wrote, writes the (here: empty)
//     facts file named by VetxOutput, prints findings to stderr and exits
//     with status 2 when there are any.
//
// Re-implementing the protocol on the standard library keeps the module
// dependency-free: package loading, export data and build caching all stay
// on the go command's side, and the driver only type-checks the one unit
// it is handed, importing dependencies from the export data files listed
// in the config (PackageFile) via go/importer's gc lookup mode.
package vetdriver

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/analysis"
)

// Config mirrors cmd/go/internal/work.vetConfig — the JSON the go command
// writes to <objdir>/vet.cfg for each package unit.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// jsonFlag is the element type of the `-flags` response the go command
// parses (cmd/go/internal/vet.vetFlags).
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// Main is the entry point of the vet-protocol mode. args are the raw
// command-line arguments after the program name. It returns the process
// exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	selected := map[string]bool{}
	anySelected := false
	var cfgPath string
	for _, arg := range args {
		switch {
		case arg == "-flags" || arg == "--flags":
			return printFlags(stdout)
		case strings.HasPrefix(arg, "-V"):
			// Version fingerprint for the build cache. The go command keys
			// cached vet results (diagnostics AND facts) on this line, so it
			// must change whenever the tool's behaviour does: hash the tool
			// binary itself. A constant string here pins stale findings
			// forever across analyzer rebuilds.
			fmt.Fprintf(stdout, "aq2pnnlint version v1 build %s\n", selfHash())
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		case strings.HasPrefix(arg, "-"):
			name, val, ok := parseBoolFlag(arg)
			if !ok {
				fmt.Fprintf(stderr, "aq2pnnlint: unrecognized flag %s\n", arg)
				return 2
			}
			if val {
				anySelected = true
			}
			selected[name] = val
		default:
			fmt.Fprintf(stderr, "aq2pnnlint: unexpected argument %s (want a vet .cfg file; run via 'go vet -vettool' or with package patterns)\n", arg)
			return 2
		}
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "aq2pnnlint: no vet config supplied")
		return 2
	}
	var sel map[string]bool
	if anySelected {
		sel = map[string]bool{}
		for name, on := range selected {
			if on {
				sel[name] = true
			}
		}
	}
	return runUnit(cfgPath, sel, stderr)
}

// parseBoolFlag accepts -name, -name=true, -name=false for known analyzer
// names (the only flags the tool advertises).
func parseBoolFlag(arg string) (name string, val bool, ok bool) {
	arg = strings.TrimPrefix(arg, "-")
	arg = strings.TrimPrefix(arg, "-")
	val = true
	if i := strings.IndexByte(arg, '='); i >= 0 {
		switch arg[i+1:] {
		case "true", "1":
			val = true
		case "false", "0":
			val = false
		default:
			return "", false, false
		}
		arg = arg[:i]
	}
	for _, a := range lint.Suite() {
		if a.Name == arg {
			return arg, val, true
		}
	}
	return "", false, false
}

func printFlags(w io.Writer) int {
	var flags []jsonFlag
	for _, a := range lint.Suite() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return 2
	}
	w.Write(data)
	io.WriteString(w, "\n")
	return 0
}

func runUnit(cfgPath string, selected map[string]bool, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "aq2pnnlint: reading config: %v\n", err)
		return 2
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "aq2pnnlint: parsing config %s: %v\n", cfgPath, err)
		return 2
	}
	// Write an empty facts file first: its existence is what tells the go
	// command the run happened; real facts overwrite it on success below.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "aq2pnnlint: writing vetx output: %v\n", err)
			return 2
		}
	}
	// Merge the facts every dependency exported through its own vetx file.
	store := loadDepFacts(&cfg)
	if cfg.VetxOnly {
		// Dependency-only unit: compute and export facts, no diagnostics.
		// Standard-library units carry no module secrets — their behaviour
		// (fmt, log, os sinks; stdlib propagators) is hard-coded in the
		// analyzers — so skip the type-check and leave the vetx empty.
		if !inModule(&cfg) {
			return 0
		}
		fas := factAnalyzers(selected)
		if len(fas) == 0 {
			return 0
		}
		if _, err := analyzeUnit(&cfg, nil, fas, store); err != nil {
			// Facts are best effort on dependency units: a unit that fails
			// to type-check degrades to "no facts", mirroring
			// SucceedOnTypecheckFailure.
			return 0
		}
		return writeVetx(&cfg, store, stderr)
	}
	analyzers := lint.AnalyzersFor(cfg.ImportPath, selected)
	// Fact-producing analyzers outside this package's diagnostic scope
	// still summarize it for dependents: this unit's vetx is reused as a
	// dependency artifact when another package imports this one.
	var extra []*analysis.Analyzer
	if inModule(&cfg) {
		for _, a := range factAnalyzers(selected) {
			if !containsAnalyzer(analyzers, a) {
				extra = append(extra, a)
			}
		}
	}
	if len(analyzers) == 0 && len(extra) == 0 {
		return 0
	}
	diags, err := analyzeUnit(&cfg, analyzers, extra, store)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "aq2pnnlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if code := writeVetx(&cfg, store, stderr); code != 0 {
		return code
	}
	for _, d := range diags.list {
		fmt.Fprintf(stderr, "%s: %s: %s\n", diags.fset.Position(d.Pos), d.Rule, d.Message)
	}
	if len(diags.list) > 0 {
		return 2
	}
	return 0
}

// inModule reports whether the unit belongs to the module under analysis
// (as opposed to a standard-library or third-party dependency unit).
func inModule(cfg *Config) bool {
	mod := cfg.ModulePath
	if mod == "" {
		mod = "aq2pnn"
	}
	p := lint.NormalizeImportPath(cfg.ImportPath)
	return p == mod || strings.HasPrefix(p, mod+"/")
}

// factAnalyzers returns the suite analyzers that export facts, honouring
// an explicit command-line selection.
func factAnalyzers(selected map[string]bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range lint.Suite() {
		if len(a.FactTypes) == 0 {
			continue
		}
		if selected != nil && !selected[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out
}

func containsAnalyzer(as []*analysis.Analyzer, a *analysis.Analyzer) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// loadDepFacts merges every dependency's vetx stream into a fresh store.
// Empty files (non-module units, older tool versions) and undecodable
// streams degrade to "no facts" — the analysis stays sound, just less
// interprocedural.
func loadDepFacts(cfg *Config) *analysis.FactStore {
	store := analysis.NewFactStore()
	protos := analysis.FactPrototypes(lint.Suite())
	for _, path := range cfg.PackageVetx {
		data, err := os.ReadFile(path)
		if err != nil || len(data) == 0 {
			continue
		}
		_ = store.Decode(bytes.NewReader(data), protos)
	}
	return store
}

// writeVetx serializes the fact store over the placeholder written at the
// start of the unit.
func writeVetx(cfg *Config, store *analysis.FactStore, stderr io.Writer) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	var buf bytes.Buffer
	if err := store.Encode(&buf); err != nil {
		fmt.Fprintf(stderr, "aq2pnnlint: encoding facts: %v\n", err)
		return 1
	}
	if err := os.WriteFile(cfg.VetxOutput, buf.Bytes(), 0o666); err != nil {
		fmt.Fprintf(stderr, "aq2pnnlint: writing vetx output: %v\n", err)
		return 2
	}
	return 0
}

type unitDiags struct {
	fset *token.FileSet
	list []analysis.Diagnostic
}

// analyzeUnit parses and type-checks the unit once, runs factOnly
// analyzers in facts-only mode (summaries for dependents, diagnostics
// discarded), then runs the scoped analyzers for diagnostics. Both share
// store, so facts flow dependency → dependent and facts-only → scoped.
func analyzeUnit(cfg *Config, analyzers, factOnly []*analysis.Analyzer, store *analysis.FactStore) (unitDiags, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return unitDiags{}, err
		}
		files = append(files, f)
	}
	imp := newExportDataImporter(cfg, fset)
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, buildArch()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return unitDiags{}, err
	}
	// The full suite vocabulary, so a //lint:allow naming an out-of-scope
	// rule is recognised rather than reported as unknown.
	var known []string
	for _, a := range lint.Suite() {
		known = append(known, a.Name)
	}
	if len(factOnly) > 0 {
		if _, err := analysis.RunWithOptions(fset, files, pkg, info, factOnly, analysis.RunOptions{
			KnownRules: known, Facts: store, FactsOnly: true,
		}); err != nil {
			return unitDiags{}, err
		}
	}
	if len(analyzers) == 0 {
		return unitDiags{fset: fset}, nil
	}
	list, err := analysis.RunWithOptions(fset, files, pkg, info, analyzers, analysis.RunOptions{
		KnownRules: known, Facts: store,
	})
	if err != nil {
		return unitDiags{}, err
	}
	return unitDiags{fset: fset, list: list}, nil
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// exportDataImporter resolves imports from the export data files the go
// command listed in the vet config, translating source import paths
// through ImportMap first (this is how vendoring and test variants are
// canonicalized). A single underlying gc importer is shared by every
// import so that diamond dependencies resolve to identical
// *types.Package objects.
type exportDataImporter struct {
	cfg *Config
	gc  types.Importer
}

func newExportDataImporter(cfg *Config, fset *token.FileSet) *exportDataImporter {
	e := &exportDataImporter{cfg: cfg}
	e.gc = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", p)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportDataImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return e.gc.Import(path)
}

// selfHash fingerprints the running tool binary for the -V cache key.
// "unknown" (cache-hostile only in the sense of being constant) is the
// fallback when the executable cannot be read; correctness over speed.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}
