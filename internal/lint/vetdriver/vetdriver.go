// Package vetdriver runs the aq2pnnlint suite under the go command's
// (unpublished but stable) vet tool protocol, the same contract
// golang.org/x/tools/go/analysis/unitchecker implements:
//
//   - `tool -flags` prints a JSON description of the tool's flags;
//   - `tool [flags] <objdir>/vet.cfg` analyzes one package unit described
//     by the JSON config the go command wrote, writes the (here: empty)
//     facts file named by VetxOutput, prints findings to stderr and exits
//     with status 2 when there are any.
//
// Re-implementing the protocol on the standard library keeps the module
// dependency-free: package loading, export data and build caching all stay
// on the go command's side, and the driver only type-checks the one unit
// it is handed, importing dependencies from the export data files listed
// in the config (PackageFile) via go/importer's gc lookup mode.
package vetdriver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/analysis"
)

// Config mirrors cmd/go/internal/work.vetConfig — the JSON the go command
// writes to <objdir>/vet.cfg for each package unit.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// jsonFlag is the element type of the `-flags` response the go command
// parses (cmd/go/internal/vet.vetFlags).
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// Main is the entry point of the vet-protocol mode. args are the raw
// command-line arguments after the program name. It returns the process
// exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	selected := map[string]bool{}
	anySelected := false
	var cfgPath string
	for _, arg := range args {
		switch {
		case arg == "-flags" || arg == "--flags":
			return printFlags(stdout)
		case strings.HasPrefix(arg, "-V"):
			// Version fingerprint for the build cache.
			fmt.Fprintln(stdout, "aq2pnnlint version v1 (ring/secrecy/transport invariant suite)")
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		case strings.HasPrefix(arg, "-"):
			name, val, ok := parseBoolFlag(arg)
			if !ok {
				fmt.Fprintf(stderr, "aq2pnnlint: unrecognized flag %s\n", arg)
				return 2
			}
			if val {
				anySelected = true
			}
			selected[name] = val
		default:
			fmt.Fprintf(stderr, "aq2pnnlint: unexpected argument %s (want a vet .cfg file; run via 'go vet -vettool' or with package patterns)\n", arg)
			return 2
		}
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "aq2pnnlint: no vet config supplied")
		return 2
	}
	var sel map[string]bool
	if anySelected {
		sel = map[string]bool{}
		for name, on := range selected {
			if on {
				sel[name] = true
			}
		}
	}
	return runUnit(cfgPath, sel, stderr)
}

// parseBoolFlag accepts -name, -name=true, -name=false for known analyzer
// names (the only flags the tool advertises).
func parseBoolFlag(arg string) (name string, val bool, ok bool) {
	arg = strings.TrimPrefix(arg, "-")
	arg = strings.TrimPrefix(arg, "-")
	val = true
	if i := strings.IndexByte(arg, '='); i >= 0 {
		switch arg[i+1:] {
		case "true", "1":
			val = true
		case "false", "0":
			val = false
		default:
			return "", false, false
		}
		arg = arg[:i]
	}
	for _, a := range lint.Suite() {
		if a.Name == arg {
			return arg, val, true
		}
	}
	return "", false, false
}

func printFlags(w io.Writer) int {
	var flags []jsonFlag
	for _, a := range lint.Suite() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return 2
	}
	w.Write(data)
	io.WriteString(w, "\n")
	return 0
}

func runUnit(cfgPath string, selected map[string]bool, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "aq2pnnlint: reading config: %v\n", err)
		return 2
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "aq2pnnlint: parsing config %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command caches our (empty) facts file; writing it is also
	// what tells it the run happened at all.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "aq2pnnlint: writing vetx output: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: the suite keeps no cross-package facts, so
		// there is nothing to compute.
		return 0
	}
	analyzers := lint.AnalyzersFor(cfg.ImportPath, selected)
	if len(analyzers) == 0 {
		return 0
	}
	diags, err := analyzeUnit(&cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "aq2pnnlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags.list {
		fmt.Fprintf(stderr, "%s: %s: %s\n", diags.fset.Position(d.Pos), d.Rule, d.Message)
	}
	if len(diags.list) > 0 {
		return 2
	}
	return 0
}

type unitDiags struct {
	fset *token.FileSet
	list []analysis.Diagnostic
}

func analyzeUnit(cfg *Config, analyzers []*analysis.Analyzer) (unitDiags, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return unitDiags{}, err
		}
		files = append(files, f)
	}
	imp := newExportDataImporter(cfg, fset)
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, buildArch()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return unitDiags{}, err
	}
	list, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return unitDiags{}, err
	}
	return unitDiags{fset: fset, list: list}, nil
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// exportDataImporter resolves imports from the export data files the go
// command listed in the vet config, translating source import paths
// through ImportMap first (this is how vendoring and test variants are
// canonicalized). A single underlying gc importer is shared by every
// import so that diamond dependencies resolve to identical
// *types.Package objects.
type exportDataImporter struct {
	cfg *Config
	gc  types.Importer
}

func newExportDataImporter(cfg *Config, fset *token.FileSet) *exportDataImporter {
	e := &exportDataImporter{cfg: cfg}
	e.gc = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", p)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportDataImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return e.gc.Import(path)
}
