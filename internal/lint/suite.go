package lint

import (
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// Suite returns every analyzer, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		RingMask,
		PRGOnly,
		SendCheck,
		CtxPlumb,
		PanicFree,
		LoopPar,
		SpanEnd,
		AllocCap,
	}
}

// scopes maps an analyzer to the import paths it patrols. A nil entry
// means every package of this module. The analyzers themselves are scope-
// agnostic; this table is the single place where "secret-handling
// package" and "protocol-runtime package" are defined.
var scopes = map[string][]string{
	// Share arithmetic lives in the protocol operator packages. The ring
	// package itself is the reduction layer (every op carries the mask),
	// and tensor/fpga do plaintext-domain math, so they are out of scope.
	RingMask.Name: {
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/share",
	},
	// Everything that touches shares, masks, triples or pads. internal/prg
	// is deliberately absent: it is the one place allowed to consume
	// crypto/rand (to seed sessions).
	PRGOnly.Name: {
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/share",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/transport",
		"aq2pnn/internal/ring",
	},
	// Dropped transport errors are a bug anywhere in the module.
	SendCheck.Name: nil,
	// Context plumbing is a serving-path concern: the engine/transport
	// stack plus the long-running party binary, whose graceful shutdown
	// depends on the signal context reaching every session.
	CtxPlumb.Name: {
		"aq2pnn",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/transport",
		"aq2pnn/cmd/party",
	},
	// Protocol-runtime packages reachable from SecureInfer*.
	PanicFree.Name: {
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/transport",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/engine",
	},
	// Pool kernels appear wherever the shared pool is used.
	LoopPar.Name: nil,
	// Wire-facing decoders: everywhere a peer-declared length could size
	// an allocation before a bound check.
	AllocCap.Name: {
		"aq2pnn/internal/transport",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
	},
	// Every package that starts telemetry spans (the instrumented protocol
	// stack, the engine, the facade and the telemetry package itself).
	SpanEnd.Name: {
		"aq2pnn",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/telemetry",
	},
}

// AnalyzersFor returns the analyzers that patrol the package with the
// given canonical import path, honouring an optional explicit selection
// (analyzer name -> enabled) from the command line.
func AnalyzersFor(importPath string, selected map[string]bool) []*analysis.Analyzer {
	path := NormalizeImportPath(importPath)
	var out []*analysis.Analyzer
	for _, a := range Suite() {
		if selected != nil && !selected[a.Name] {
			continue
		}
		paths, ok := scopes[a.Name]
		if !ok {
			continue // unscoped analyzers never run implicitly
		}
		if paths == nil || containsPath(paths, path) {
			out = append(out, a)
		}
	}
	return out
}

// NormalizeImportPath maps the package-variant paths the go command
// produces back onto the source package path: the test-augmented variant
// "p [p.test]" and the external test package "p_test" both patrol as "p".
func NormalizeImportPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	importPath = strings.TrimSuffix(importPath, "_test")
	return importPath
}

func containsPath(paths []string, p string) bool {
	for _, s := range paths {
		if s == p {
			return true
		}
	}
	return false
}
