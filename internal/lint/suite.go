package lint

import (
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// Suite returns every analyzer, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		RingMask,
		PRGOnly,
		SendCheck,
		CtxPlumb,
		PanicFree,
		LoopPar,
		SpanEnd,
		AllocCap,
		SecretFlow,
		DetRand,
	}
}

// scopes maps an analyzer to the import paths it patrols. A nil entry
// means every package of this module. The analyzers themselves are scope-
// agnostic; this table is the single place where "secret-handling
// package" and "protocol-runtime package" are defined.
var scopes = map[string][]string{
	// Share arithmetic lives in the protocol operator packages. The ring
	// package itself is the reduction layer (every op carries the mask),
	// and tensor/fpga do plaintext-domain math, so they are out of scope.
	RingMask.Name: {
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/share",
		"aq2pnn/internal/preproc",
		"aq2pnn/cmd/...",
		"aq2pnn/examples/...",
	},
	// Everything that touches shares, masks, triples or pads. internal/prg
	// is deliberately absent: it is the one place allowed to consume
	// crypto/rand (to seed sessions).
	PRGOnly.Name: {
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/share",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/preproc",
		"aq2pnn/internal/transport",
		"aq2pnn/internal/ring",
		"aq2pnn/cmd/...",
		"aq2pnn/examples/...",
	},
	// Dropped transport errors are a bug anywhere in the module.
	SendCheck.Name: nil,
	// Context plumbing is a serving-path concern: the engine/transport
	// stack plus the long-running party binary, whose graceful shutdown
	// depends on the signal context reaching every session.
	CtxPlumb.Name: {
		"aq2pnn",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/transport",
		"aq2pnn/cmd/party",
	},
	// Protocol-runtime packages reachable from SecureInfer*.
	PanicFree.Name: {
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/transport",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/preproc",
	},
	// Pool kernels appear wherever the shared pool is used.
	LoopPar.Name: nil,
	// Wire-facing decoders: everywhere a peer-declared length could size
	// an allocation before a bound check.
	AllocCap.Name: {
		"aq2pnn/internal/transport",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/preproc",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/a2b",
		"aq2pnn/cmd/...",
		"aq2pnn/examples/...",
	},
	// Every package that starts telemetry spans (the instrumented protocol
	// stack, the engine, the facade and the telemetry package itself).
	SpanEnd.Name: {
		"aq2pnn",
		"aq2pnn/internal/engine",
		"aq2pnn/internal/secure",
		"aq2pnn/internal/scm",
		"aq2pnn/internal/ot",
		"aq2pnn/internal/triple",
		"aq2pnn/internal/a2b",
		"aq2pnn/internal/telemetry",
		"aq2pnn/internal/preproc",
	},
	// The leakage boundary is a whole-module contract: a share value can be
	// laundered through any helper before it reaches a sink, so every
	// package is in scope and facts stitch the flows together.
	SecretFlow.Name: nil,
	// Transcript-determinism is owned by the engine's session layer — the
	// only place seeds are minted. internal/prg is the mechanism, not a
	// policy violation, and tests mint fixture seeds freely.
	DetRand.Name: {
		"aq2pnn/internal/engine",
		"aq2pnn/internal/preproc",
	},
}

// AnalyzersFor returns the analyzers that patrol the package with the
// given canonical import path, honouring an optional explicit selection
// (analyzer name -> enabled) from the command line.
func AnalyzersFor(importPath string, selected map[string]bool) []*analysis.Analyzer {
	path := NormalizeImportPath(importPath)
	var out []*analysis.Analyzer
	for _, a := range Suite() {
		if selected != nil && !selected[a.Name] {
			continue
		}
		paths, ok := scopes[a.Name]
		if !ok {
			continue // unscoped analyzers never run implicitly
		}
		if paths == nil || containsPath(paths, path) {
			out = append(out, a)
		}
	}
	return out
}

// NormalizeImportPath maps the package-variant paths the go command
// produces back onto the source package path: the test-augmented variant
// "p [p.test]" and the external test package "p_test" both patrol as "p".
func NormalizeImportPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	importPath = strings.TrimSuffix(importPath, "_test")
	return importPath
}

// containsPath matches p against the scope entries: exact import paths,
// or whole subtrees spelled with a "/..." suffix ("aq2pnn/cmd/..." covers
// aq2pnn/cmd/party and every package below aq2pnn/cmd).
func containsPath(paths []string, p string) bool {
	for _, s := range paths {
		if s == p {
			return true
		}
		if root, ok := strings.CutSuffix(s, "/..."); ok {
			if p == root || strings.HasPrefix(p, root+"/") {
				return true
			}
		}
	}
	return false
}
