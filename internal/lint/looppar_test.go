package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestLoopPar(t *testing.T) {
	linttest.Run(t, "testdata", "looppar", lint.LoopPar)
}
