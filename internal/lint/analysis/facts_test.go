package analysis

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// pathFact is a trivial fact carrying a payload for round-trip checks.
type pathFact struct{ N int }

func (*pathFact) AFact() {}

// otherFact shares no type with pathFact; used to prove type-keyed lookup.
type otherFact struct{ S string }

func (*otherFact) AFact() {}

func checkPkg(t *testing.T, path, src string, imp types.Importer) (*types.Package, *types.Info, *token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("check %s: %v", path, err)
	}
	return pkg, info, fset, []*ast.File{f}
}

func TestObjectPath(t *testing.T) {
	pkg, info, _, files := checkPkg(t, "a", `package a
type T struct{}
func (t *T) M() {}
func (t T) V() {}
func F() {}
var X int
func F2() { x := 1; _ = x }
`, importer.Default())
	byName := map[string]types.Object{}
	for id, obj := range info.Defs {
		if obj != nil {
			byName[id.Name] = obj
		}
	}
	_ = files
	_ = pkg
	cases := []struct {
		obj  string
		want string
		ok   bool
	}{
		{"F", "F", true},
		{"X", "X", true},
		{"M", "T.M", true},
		{"V", "T.V", true},
		{"x", "", false},
	}
	for _, c := range cases {
		obj := byName[c.obj]
		if obj == nil {
			t.Fatalf("object %s not found", c.obj)
		}
		got, ok := ObjectPath(obj)
		if got != c.want || ok != c.ok {
			t.Errorf("ObjectPath(%s) = %q, %v; want %q, %v", c.obj, got, ok, c.want, c.ok)
		}
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("p/a", "F", &pathFact{N: 7})
	s.put("p/a", "T.M", &pathFact{N: 9})
	s.put("p/a", "F", &otherFact{S: "hello"})
	s.put("p/b", "", &pathFact{N: 3}) // package fact

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}

	protos := map[string]Fact{
		factTypeName(&pathFact{}):  (*pathFact)(nil),
		factTypeName(&otherFact{}): (*otherFact)(nil),
	}
	dst := NewFactStore()
	if err := dst.Decode(bytes.NewReader(buf.Bytes()), protos); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dst.Len() != s.Len() {
		t.Fatalf("decoded %d facts, want %d", dst.Len(), s.Len())
	}
	var pf pathFact
	if !dst.get("p/a", "F", &pf) || pf.N != 7 {
		t.Errorf("pathFact(p/a.F) = %+v, %v", pf, dst.get("p/a", "F", &pf))
	}
	if !dst.get("p/a", "T.M", &pf) || pf.N != 9 {
		t.Errorf("pathFact(p/a.T.M) = %+v", pf)
	}
	var of otherFact
	if !dst.get("p/a", "F", &of) || of.S != "hello" {
		t.Errorf("otherFact(p/a.F) = %+v", of)
	}
	if !dst.get("p/b", "", &pf) || pf.N != 3 {
		t.Errorf("package fact(p/b) = %+v", pf)
	}
	if dst.get("p/a", "Missing", &pf) {
		t.Errorf("unexpected fact for missing object")
	}
}

func TestFactStoreEncodeDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		s := NewFactStore()
		s.put("p/b", "G", &pathFact{N: 2})
		s.put("p/a", "F", &pathFact{N: 1})
		s.put("p/a", "F", &otherFact{S: "x"})
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return &buf
	}
	if !bytes.Equal(build().Bytes(), build().Bytes()) {
		t.Errorf("Encode output is not deterministic; the go build cache would churn")
	}
}

func TestDecodeSkipsUnknownFactTypes(t *testing.T) {
	s := NewFactStore()
	s.put("p/a", "F", &pathFact{N: 1})
	s.put("p/a", "G", &otherFact{S: "y"})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dst := NewFactStore()
	protos := map[string]Fact{factTypeName(&pathFact{}): (*pathFact)(nil)}
	if err := dst.Decode(bytes.NewReader(buf.Bytes()), protos); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dst.Len() != 1 {
		t.Fatalf("want 1 fact after skipping unknown types, got %d", dst.Len())
	}
}

// TestCrossPackageObjectFacts drives the whole chain the drivers rely on:
// a pass over package a exports a fact on a.F; a pass over package b —
// which imports a — sees it through ImportObjectFact on the *types.Func
// resolved from b's type information.
func TestCrossPackageObjectFacts(t *testing.T) {
	store := NewFactStore()

	apkg, ainfo, _, _ := checkPkg(t, "fixa", `package fixa
func F() int { return 1 }
`, importer.Default())
	var fObj types.Object
	for id, obj := range ainfo.Defs {
		if id.Name == "F" && obj != nil {
			fObj = obj
		}
	}
	passA := &Pass{Pkg: apkg, Facts: store}
	if !passA.ExportObjectFact(fObj, &pathFact{N: 42}) {
		t.Fatalf("ExportObjectFact failed for fixa.F")
	}

	// Simulate the vetx hop: serialize and re-import into a fresh store.
	var buf bytes.Buffer
	if err := store.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	wire := NewFactStore()
	protos := map[string]Fact{factTypeName(&pathFact{}): (*pathFact)(nil)}
	if err := wire.Decode(bytes.NewReader(buf.Bytes()), protos); err != nil {
		t.Fatalf("decode: %v", err)
	}

	imp := mapImporter{"fixa": apkg}
	bpkg, binfo, _, _ := checkPkg(t, "fixb", `package fixb
import "fixa"
var V = fixa.F()
`, imp)
	var fUse types.Object
	for id, obj := range binfo.Uses {
		if id.Name == "F" && obj != nil {
			fUse = obj
		}
	}
	if fUse == nil {
		t.Fatalf("use of fixa.F not found in fixb")
	}
	passB := &Pass{Pkg: bpkg, Facts: wire}
	var got pathFact
	if !passB.ImportObjectFact(fUse, &got) {
		t.Fatalf("fact exported by the fixa pass is invisible from fixb")
	}
	if got.N != 42 {
		t.Fatalf("fact payload = %d, want 42", got.N)
	}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return importer.Default().Import(path)
}
