package analysis

import "go/ast"

// WithStack walks every node of every file, handing the visitor the node
// plus its ancestor stack (stack[0] is the *ast.File, stack[len-1] is the
// immediate parent of n; n itself is not included). Returning false prunes
// the subtree. It replaces x/tools' inspector.WithStack for our analyzers.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
				return true
			}
			return false
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal on
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
