package analysis

// Facts are the cross-package half of the framework, mirroring
// golang.org/x/tools/go/analysis facts: a fact is a serializable statement
// an analyzer attaches to a package-level object (or to a package) while
// analyzing it, and re-reads when a *different* package that imports the
// first one is analyzed. Under the vet protocol the go command already
// plumbs a per-package artifact alongside export data — the .vetx file —
// so facts ride exactly where export data rides: vetdriver gob-encodes the
// store into VetxOutput and decodes every dependency's file from
// PackageVetx. In-process drivers (linttest, tests) share one FactStore
// across packages directly.
//
// Objects are named by a simplified objectpath: package-level objects by
// name ("SplitVec"), methods by "Type.Method" ("PRG.Elem"). That covers
// every object an importing package can reference; function-local objects
// have no path and cannot carry exported facts.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
)

// Fact is a serializable message attached to an object or package.
// Implementations must be pointers to gob-encodable structs; AFact is a
// marker that documents intent (as in go/analysis).
type Fact interface{ AFact() }

// ObjectPath names obj within its package: "Name" for package-level
// objects, "Type.Method" for methods (through pointer receivers). The
// second result is false for objects that have no stable cross-package
// name (function locals, receivers, closures).
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + f.Name(), true
		}
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

// factKey identifies one fact: the package, the object path within it
// ("" for package facts) and the concrete fact type.
type factKey struct {
	pkg string
	obj string
	typ string
}

// FactStore accumulates facts across the packages one driver process
// analyzes. The zero value is not usable; call NewFactStore.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[factKey]Fact{}} }

func factTypeName(f Fact) string { return reflect.TypeOf(f).Elem().Name() }

func (s *FactStore) put(pkg, obj string, f Fact) {
	s.m[factKey{pkg, obj, factTypeName(f)}] = f
}

// get copies the stored fact for (pkg, obj, type-of-dst) into dst and
// reports whether one existed.
func (s *FactStore) get(pkg, obj string, dst Fact) bool {
	f, ok := s.m[factKey{pkg, obj, factTypeName(dst)}]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// Len reports the number of stored facts (test hook).
func (s *FactStore) Len() int { return len(s.m) }

// factRecord is the wire form of one fact.
type factRecord struct {
	Pkg  string
	Obj  string
	Type string
	Data []byte
}

// Encode writes every stored fact to w as a gob stream. Imported facts are
// re-exported alongside the current package's own, so a consumer holding
// only this file still sees the transitive closure (the same choice
// x/tools' facts package makes).
func (s *FactStore) Encode(w io.Writer) error {
	recs := make([]factRecord, 0, len(s.m))
	for k, f := range s.m {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
			return fmt.Errorf("encoding fact %s.%s %s: %w", k.pkg, k.obj, k.typ, err)
		}
		recs = append(recs, factRecord{Pkg: k.pkg, Obj: k.obj, Type: k.typ, Data: buf.Bytes()})
	}
	// Deterministic output keeps the go command's content-addressed build
	// cache stable across runs.
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	return gob.NewEncoder(w).Encode(recs)
}

// Decode merges the facts previously written by Encode into the store.
// prototypes maps fact type names to zero values (one per Analyzer
// FactTypes entry); records of unknown types are skipped, so stores from
// older or differently-configured tool versions degrade instead of
// failing.
func (s *FactStore) Decode(r io.Reader, prototypes map[string]Fact) error {
	var recs []factRecord
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return fmt.Errorf("decoding fact stream: %w", err)
	}
	for _, rec := range recs {
		proto, ok := prototypes[rec.Type]
		if !ok {
			continue
		}
		f := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(Fact)
		if err := gob.NewDecoder(bytes.NewReader(rec.Data)).DecodeValue(reflect.ValueOf(f).Elem()); err != nil {
			return fmt.Errorf("decoding fact %s.%s %s: %w", rec.Pkg, rec.Obj, rec.Type, err)
		}
		s.m[factKey{rec.Pkg, rec.Obj, rec.Type}] = f
	}
	return nil
}

// FactPrototypes collects the fact types declared by analyzers, keyed by
// type name, for FactStore.Decode.
func FactPrototypes(analyzers []*Analyzer) map[string]Fact {
	out := map[string]Fact{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			out[factTypeName(f)] = f
		}
	}
	return out
}

// ExportObjectFact attaches fact to obj, visible to later passes in this
// store and — through the vetx stream — to passes over importing packages.
// Objects without a stable path (function locals) are silently skipped and
// the call reports false.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil || obj == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	p.Facts.put(pkg, path, fact)
	return true
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported for obj (by this pass or a pass over a dependency) into fact,
// reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	return p.Facts.get(obj.Pkg().Path(), path, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) bool {
	if p.Facts == nil || p.Pkg == nil {
		return false
	}
	p.Facts.put(p.Pkg.Path(), "", fact)
	return true
}

// ImportPackageFact copies pkg's package-level fact into fact.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.get(pkg.Path(), "", fact)
}
