package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lineAnalyzer reports one diagnostic per statement of every function body,
// which makes the allow-filtering behaviour directly observable.
var lineAnalyzer = &Analyzer{
	Name: "testrule",
	Doc:  "reports every statement (test helper)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					for _, s := range fd.Body.List {
						pass.Reportf(s.Pos(), "statement")
					}
					return false
				}
				return true
			})
		}
		return nil
	},
}

// declassifyAnalyzer honours //lint:declassify: it reports every statement
// of every function unless the statement's line is declassified — the
// minimal consumer for exercising laundering and staleness.
var declassifyAnalyzer = &Analyzer{
	Name:           "testdeclassify",
	Doc:            "reports every undeclassified statement (test helper)",
	UsesDeclassify: true,
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					for _, s := range fd.Body.List {
						if pass.Declassified(s.Pos()) {
							continue
						}
						pass.Reportf(s.Pos(), "leak")
					}
					return false
				}
				return true
			})
		}
		return nil
	},
}

func runOnSource(t *testing.T, src string) (*token.FileSet, []Diagnostic) {
	t.Helper()
	return runAnalyzerOnSource(t, lineAnalyzer, src)
}

func runAnalyzerOnSource(t *testing.T, a *Analyzer, src string) (*token.FileSet, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, nil, nil, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return fset, diags
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Rule+": "+d.Message)
	}
	return out
}

func TestAllowSuppressesSameLine(t *testing.T) {
	_, diags := runOnSource(t, `package p
func f() {
	_ = 1 //lint:allow testrule trailing directive on the offending line

	_ = 2
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (only the undirected line), got %v", messages(diags))
	}
}

func TestAllowSuppressesNextLine(t *testing.T) {
	_, diags := runOnSource(t, `package p
func f() {
	//lint:allow testrule directive on its own line above
	_ = 1
	_ = 2
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (only the undirected line), got %v", messages(diags))
	}
}

func TestAllowDoesNotReachTwoLinesDown(t *testing.T) {
	_, diags := runOnSource(t, `package p
func f() {
	//lint:allow testrule directive must be adjacent

	_ = 1
}
`)
	// The blank line breaks adjacency: the statement fires AND the
	// directive, now suppressing nothing, is reported as stale.
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (statement + stale directive), got %v", messages(diags))
	}
	if !hasRule(diags, "lintdirective", "suppresses nothing") {
		t.Errorf("missing stale-directive diagnostic: %v", messages(diags))
	}
}

func TestUnusedAllowSkippedWhenRuleDidNotRun(t *testing.T) {
	// An allow for a rule known to the suite but not running in this pass
	// must be left alone: nothing can be concluded about its usefulness.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", `package p
func f() {
	//lint:allow otherrule that analyzer is out of scope here
	_ = 1
}
`, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := RunWithOptions(fset, []*ast.File{f}, nil, nil,
		[]*Analyzer{lineAnalyzer}, RunOptions{KnownRules: []string{"otherrule"}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (just the statement), got %v", messages(diags))
	}
}

func TestDeclassifySuppressesConsumer(t *testing.T) {
	_, diags := runAnalyzerOnSource(t, declassifyAnalyzer, `package p
func f() {
	_ = 1 //lint:declassify this reveal is the protocol output
}
func g() {
	_ = 2
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (only the undeclassified line), got %v", messages(diags))
	}
}

func TestStaleDeclassifyReported(t *testing.T) {
	_, diags := runAnalyzerOnSource(t, declassifyAnalyzer, `package p
func f() {
	_ = 1

	//lint:declassify nothing to launder down here
}
`)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (statement + stale declassify), got %v", messages(diags))
	}
	if !hasRule(diags, "lintdirective", "launders nothing") {
		t.Errorf("missing stale-declassify diagnostic: %v", messages(diags))
	}
}

func TestDeclassifyStalenessNeedsConsumer(t *testing.T) {
	// Without a declassify-consuming analyzer in the run, a declassify
	// directive is neither honoured nor judged stale.
	_, diags := runOnSource(t, `package p
func f() {
	_ = 1 //lint:declassify judged only when a consumer runs
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (statement only, directive left alone), got %v", messages(diags))
	}
}

func TestDeclassifyRequiresReason(t *testing.T) {
	_, diags := runAnalyzerOnSource(t, declassifyAnalyzer, `package p
//lint:declassify
func f() {}
`)
	if !hasRule(diags, "lintdirective", "needs a reason") {
		t.Errorf("missing needs-a-reason diagnostic: %v", messages(diags))
	}
}

func TestAllowIsPerRule(t *testing.T) {
	_, diags := runOnSource(t, `package p
func f() {
	//lint:allow testrule suppression is keyed by rule name
	_ = 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", messages(diags))
	}
	_, diags = runOnSource(t, `package p
func f() {
	//lint:allow otherrule names a rule this run does not know
	_ = 1
}
`)
	// The statement still fires AND the directive itself is flagged.
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (statement + unknown-rule directive), got %v", messages(diags))
	}
	if !hasRule(diags, "lintdirective", "unknown rule otherrule") {
		t.Errorf("missing unknown-rule directive diagnostic: %v", messages(diags))
	}
}

func TestAllowRequiresReason(t *testing.T) {
	_, diags := runOnSource(t, `package p
func f() {
	//lint:allow testrule
	_ = 1
}
`)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (statement + missing-reason directive), got %v", messages(diags))
	}
	if !hasRule(diags, "lintdirective", "needs a reason") {
		t.Errorf("missing needs-a-reason diagnostic: %v", messages(diags))
	}
}

func TestAllowRequiresRuleName(t *testing.T) {
	_, diags := runOnSource(t, `package p
//lint:allow
func f() {}
`)
	if !hasRule(diags, "lintdirective", "missing rule name") {
		t.Errorf("missing malformed-directive diagnostic: %v", messages(diags))
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	fset, diags := runOnSource(t, `package p
func b() {
	_ = 1
}
func a() {
	_ = 2
}
`)
	for i := 1; i < len(diags); i++ {
		if fset.Position(diags[i].Pos).Line < fset.Position(diags[i-1].Pos).Line {
			t.Fatalf("diagnostics out of order: %v", messages(diags))
		}
	}
}

func hasRule(diags []Diagnostic, rule, msgSubstr string) bool {
	for _, d := range diags {
		if d.Rule == rule && strings.Contains(d.Message, msgSubstr) {
			return true
		}
	}
	return false
}
