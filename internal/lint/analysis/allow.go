package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression directive:
//
//	//lint:allow <rule> <reason...>
//
// The directive silences <rule> on the line it occupies and on the line
// immediately below it (so it can trail the offending statement or sit on
// its own line above it). The reason is mandatory; it is what turns an
// escape hatch into documentation.
const AllowPrefix = "//lint:allow"

// allowKey identifies one (file, line) that a rule may fire on.
type allowKey struct {
	file string
	line int
	rule string
}

type allowSet map[allowKey]bool

func (s allowSet) allowed(pos token.Position, rule string) bool {
	return s[allowKey{pos.Filename, pos.Line, rule}]
}

// collectAllows scans every comment of every file for allow directives.
// Malformed directives (missing rule or reason) and directives naming an
// unknown rule are returned as diagnostics instead of being honoured.
func collectAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (allowSet, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := make(allowSet)
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Rule:    "lintdirective",
						Message: "malformed //lint:allow: missing rule name",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Rule:    "lintdirective",
						Message: "//lint:allow names unknown rule " + rule,
					})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Rule:    "lintdirective",
						Message: "//lint:allow " + rule + " needs a reason",
					})
					continue
				}
				p := fset.Position(c.Pos())
				allows[allowKey{p.Filename, p.Line, rule}] = true
				allows[allowKey{p.Filename, p.Line + 1, rule}] = true
			}
		}
	}
	return allows, diags
}
