package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression directive:
//
//	//lint:allow <rule> <reason...>
//
// The directive silences <rule> on the line it occupies and on the line
// immediately below it (so it can trail the offending statement or sit on
// its own line above it). The reason is mandatory; it is what turns an
// escape hatch into documentation.
const AllowPrefix = "//lint:allow"

// DeclassifyPrefix introduces a declassification boundary:
//
//	//lint:declassify <reason...>
//
// It tells the secret-leakage analyzers that the value produced on the
// line it covers (same line or the line immediately below) deliberately
// leaves the secret domain — a Reveal of protocol output, the argmax
// class, handshake metadata. Taint is laundered at that line and any
// leakage finding on it is suppressed. Like allow, the reason is
// mandatory, and a declassify that launders nothing is itself a finding:
// stale declassification sites are exactly the ones nobody re-audits.
const DeclassifyPrefix = "//lint:declassify"

// directive is one parsed //lint:allow or //lint:declassify comment.
type directive struct {
	pos  token.Pos
	file string
	line int
	rule string // allow only; "" for declassify
	used bool
}

// fileLine keys a directive's coverage: it covers its own line and the
// next one.
type fileLine struct {
	file string
	line int
}

// directiveSet holds every well-formed directive of one package unit,
// indexed for the two queries passes make: "is rule R allowed at P?" and
// "is P a declassification boundary?". Both queries mark the directive
// used; what remains unused afterwards is reported as stale.
type directiveSet struct {
	allows     map[fileLine][]*directive
	declassify map[fileLine][]*directive
	list       []*directive
}

func (s *directiveSet) allowed(pos token.Position, rule string) bool {
	if s == nil {
		return false
	}
	hit := false
	for _, d := range s.allows[fileLine{pos.Filename, pos.Line}] {
		if d.rule == rule {
			d.used = true
			hit = true
		}
	}
	return hit
}

// declassified reports whether the position sits on a declassification
// boundary, marking the directive used. Callers must only ask when there
// is actually taint to launder, so that usage tracking stays honest.
func (s *directiveSet) declassified(pos token.Position) bool {
	if s == nil {
		return false
	}
	hit := false
	for _, d := range s.declassify[fileLine{pos.Filename, pos.Line}] {
		d.used = true
		hit = true
	}
	return hit
}

// collectDirectives scans every comment of every file for allow and
// declassify directives. Malformed directives (missing rule or reason)
// and allows naming a rule outside known are returned as diagnostics
// instead of being honoured.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (*directiveSet, []Diagnostic) {
	set := &directiveSet{
		allows:     map[fileLine][]*directive{},
		declassify: map[fileLine][]*directive{},
	}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, AllowPrefix):
					d, diag := parseAllow(fset, c, known)
					if diag != nil {
						diags = append(diags, *diag)
						continue
					}
					set.list = append(set.list, d)
					for _, k := range d.coverage() {
						set.allows[k] = append(set.allows[k], d)
					}
				case strings.HasPrefix(c.Text, DeclassifyPrefix):
					d, diag := parseDeclassify(fset, c)
					if diag != nil {
						diags = append(diags, *diag)
						continue
					}
					set.list = append(set.list, d)
					for _, k := range d.coverage() {
						set.declassify[k] = append(set.declassify[k], d)
					}
				}
			}
		}
	}
	return set, diags
}

func (d *directive) coverage() [2]fileLine {
	return [2]fileLine{{d.file, d.line}, {d.file, d.line + 1}}
}

func parseAllow(fset *token.FileSet, c *ast.Comment, known map[string]bool) (*directive, *Diagnostic) {
	fields := strings.Fields(strings.TrimPrefix(c.Text, AllowPrefix))
	if len(fields) == 0 {
		return nil, &Diagnostic{Pos: c.Pos(), Rule: "lintdirective",
			Message: "malformed //lint:allow: missing rule name"}
	}
	rule := fields[0]
	if !known[rule] {
		return nil, &Diagnostic{Pos: c.Pos(), Rule: "lintdirective",
			Message: "//lint:allow names unknown rule " + rule}
	}
	if len(fields) < 2 {
		return nil, &Diagnostic{Pos: c.Pos(), Rule: "lintdirective",
			Message: "//lint:allow " + rule + " needs a reason"}
	}
	p := fset.Position(c.Pos())
	return &directive{pos: c.Pos(), file: p.Filename, line: p.Line, rule: rule}, nil
}

func parseDeclassify(fset *token.FileSet, c *ast.Comment) (*directive, *Diagnostic) {
	fields := strings.Fields(strings.TrimPrefix(c.Text, DeclassifyPrefix))
	if len(fields) == 0 {
		return nil, &Diagnostic{Pos: c.Pos(), Rule: "lintdirective",
			Message: "//lint:declassify needs a reason: say why this value may leave the secret domain"}
	}
	p := fset.Position(c.Pos())
	return &directive{pos: c.Pos(), file: p.Filename, line: p.Line}, nil
}

// unusedDirectives reports the directives that suppressed or laundered
// nothing. ranRules is the set of analyzers that actually ran: an allow
// for a rule that did not run is skipped (nothing can be concluded), and
// declassify staleness is only judged when a declassify-consuming
// analyzer ran.
func (s *directiveSet) unusedDirectives(ranRules map[string]bool, declassifyRan bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.list {
		if d.used {
			continue
		}
		if d.rule != "" {
			if !ranRules[d.rule] {
				continue
			}
			out = append(out, Diagnostic{Pos: d.pos, Rule: "lintdirective",
				Message: "//lint:allow " + d.rule + " suppresses nothing; remove the stale directive"})
			continue
		}
		if !declassifyRan {
			continue
		}
		out = append(out, Diagnostic{Pos: d.pos, Rule: "lintdirective",
			Message: "//lint:declassify launders nothing; remove the stale directive"})
	}
	return out
}
