// Package analysis is a self-contained, dependency-free re-creation of the
// core of golang.org/x/tools/go/analysis, sized for this repository: an
// Analyzer is a named check, a Pass is one analyzer applied to one
// type-checked package, and a Diagnostic is one finding. The toolchain
// module is not vendored here, so the framework is rebuilt on the standard
// library (go/ast, go/types, go/token) — the x/tools API shape is kept so
// analyzers could be ported to a real go/analysis driver verbatim.
//
// Suppression is part of the framework: a `//lint:allow <rule> <reason>`
// comment on (or immediately above) an offending line silences that rule
// for that line. A reason is mandatory — an allow without one is itself a
// diagnostic, so every escape hatch in the tree documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the rule identifier used on the command line and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description, shown by `aq2pnnlint help`.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
	// FactTypes declares the fact types this analyzer exports and
	// imports (pointers to zero values). An analyzer with fact types is
	// run over dependency packages too (facts-only, no diagnostics) so
	// its cross-package information exists before dependents are
	// analyzed.
	FactTypes []Fact
	// UsesDeclassify marks analyzers that honour //lint:declassify
	// boundaries; staleness of declassify directives is only judged when
	// one of them ran.
	UsesDeclassify bool
}

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package fact store shared by every pass of one
	// driver run. Nil when the driver keeps no facts.
	Facts *FactStore

	dirs  *directiveSet
	diags []Diagnostic
}

// Declassified reports whether pos sits on (or immediately below) a
// //lint:declassify directive, marking that directive used. Analyzers
// must only call this when there is live taint at pos, so that unused-
// directive reporting stays accurate.
func (p *Pass) Declassified(pos token.Pos) bool {
	if p.dirs == nil {
		return false
	}
	return p.dirs.declassified(p.Fset.Position(pos))
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	if d.Rule == "" {
		d.Rule = p.Analyzer.Name
	}
	p.diags = append(p.diags, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil when unknown.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// IsConst reports whether e evaluates to a compile-time constant.
func (p *Pass) IsConst(e ast.Expr) bool {
	if p.TypesInfo == nil {
		return false
	}
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// RunOptions tunes RunWithOptions beyond the defaults Run provides.
type RunOptions struct {
	// KnownRules is the full rule vocabulary for directive validation.
	// Drivers that run a scope- or selection-filtered subset pass every
	// suite rule here so an allow naming an out-of-scope rule is not
	// misreported as unknown. Empty means "the running analyzers".
	KnownRules []string
	// Facts is the cross-package fact store. Nil allocates a fresh,
	// empty one (intra-package facts still work within the call).
	Facts *FactStore
	// FactsOnly computes and exports facts but discards diagnostics —
	// the dependency-package mode of the vet protocol (VetxOnly units).
	FactsOnly bool
}

// Run applies every analyzer to the package described by (fset, files, pkg,
// info), applies //lint:allow suppression and //lint:declassify laundering,
// and returns the surviving diagnostics sorted by position. Malformed,
// unknown or unused directives are reported as findings of the pseudo-rule
// "lintdirective".
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithOptions(fset, files, pkg, info, analyzers, RunOptions{})
}

// RunWithOptions is Run with an explicit fact store, rule vocabulary and
// facts-only switch.
func RunWithOptions(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	declassifyRan := false
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
		if a.UsesDeclassify {
			declassifyRan = true
		}
	}
	for _, r := range opts.KnownRules {
		known[r] = true
	}
	facts := opts.Facts
	if facts == nil {
		facts = NewFactStore()
	}
	dirs, dirDiags := collectDirectives(fset, files, known)
	var out []Diagnostic
	out = append(out, dirDiags...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Facts: facts, dirs: dirs}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if dirs.allowed(fset.Position(d.Pos), d.Rule) {
				continue
			}
			out = append(out, d)
		}
	}
	if opts.FactsOnly {
		return nil, nil
	}
	out = append(out, dirs.unusedDirectives(ran, declassifyRan)...)
	sortDiagnostics(fset, out)
	return out, nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort by (file, line, col); diagnostic counts are tiny.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && posLess(fset, ds[j].Pos, ds[j-1].Pos); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
