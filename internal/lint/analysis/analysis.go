// Package analysis is a self-contained, dependency-free re-creation of the
// core of golang.org/x/tools/go/analysis, sized for this repository: an
// Analyzer is a named check, a Pass is one analyzer applied to one
// type-checked package, and a Diagnostic is one finding. The toolchain
// module is not vendored here, so the framework is rebuilt on the standard
// library (go/ast, go/types, go/token) — the x/tools API shape is kept so
// analyzers could be ported to a real go/analysis driver verbatim.
//
// Suppression is part of the framework: a `//lint:allow <rule> <reason>`
// comment on (or immediately above) an offending line silences that rule
// for that line. A reason is mandatory — an allow without one is itself a
// diagnostic, so every escape hatch in the tree documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the rule identifier used on the command line and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description, shown by `aq2pnnlint help`.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	if d.Rule == "" {
		d.Rule = p.Analyzer.Name
	}
	p.diags = append(p.diags, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil when unknown.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// IsConst reports whether e evaluates to a compile-time constant.
func (p *Pass) IsConst(e ast.Expr) bool {
	if p.TypesInfo == nil {
		return false
	}
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// Run applies every analyzer to the package described by (fset, files, pkg,
// info), applies //lint:allow suppression, and returns the surviving
// diagnostics sorted by position. Malformed or unknown directives are
// reported as findings of the pseudo-rule "lintdirective".
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows, dirDiags := collectAllows(fset, files, analyzers)
	var out []Diagnostic
	out = append(out, dirDiags...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if allows.allowed(fset.Position(d.Pos), d.Rule) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(fset, out)
	return out, nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort by (file, line, col); diagnostic counts are tiny.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && posLess(fset, ds[j].Pos, ds[j-1].Pos); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
