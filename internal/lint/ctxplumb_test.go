package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestCtxPlumb(t *testing.T) {
	linttest.Run(t, "testdata", "ctxplumb", lint.CtxPlumb)
}
