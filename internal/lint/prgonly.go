package lint

import (
	"strconv"

	"aq2pnn/internal/lint/analysis"
)

// PRGOnly forbids ad-hoc randomness in secret-handling packages. Every
// random value that becomes a share, mask, triple or OT pad must come from
// the session PRG (internal/prg): math/rand is not cryptographically
// strong, and bare crypto/rand breaks the deterministic, seed-reproducible
// transcripts the batch executor and the experiment harness depend on.
// internal/prg itself (which seeds from crypto/rand) is excluded by the
// suite scope table, and deliberate exceptions carry a //lint:allow.
var PRGOnly = &analysis.Analyzer{
	Name: "prgonly",
	Doc: "forbids math/rand and bare crypto/rand in secret-handling " +
		"packages; share randomness must flow through internal/prg",
	Run: runPRGOnly,
}

func runPRGOnly(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %s in a secret-handling package; draw randomness from the session PRG (internal/prg)", path)
			case "crypto/rand":
				pass.Reportf(imp.Pos(),
					"bare crypto/rand import; share randomness must flow through internal/prg sessions (seed a prg.PRG instead)")
			}
		}
	}
	// The import set is authoritative: Go forbids using a package
	// without importing it, so no use-site scan is needed.
	return nil
}
