package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestSpanEnd(t *testing.T) {
	linttest.Run(t, "testdata", "spanend", lint.SpanEnd)
}
