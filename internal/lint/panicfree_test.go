package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestPanicFree(t *testing.T) {
	linttest.Run(t, "testdata", "panicfree", lint.PanicFree)
}
