package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestAllocCap(t *testing.T) {
	linttest.Run(t, "testdata", "alloccap", lint.AllocCap)
}
