// Package linttest is a standard-library re-creation of
// golang.org/x/tools/go/analysis/analysistest: it loads a testdata
// package, runs one analyzer over it (with //lint:allow suppression
// applied, so directives are testable too), and compares the findings
// against `// want "regexp"` comments in the sources.
//
// Layout follows analysistest's GOPATH convention: the package named p
// lives in testdata/src/p/, and testdata packages may import each other
// by that path (testdata/src/transport/ is importable as "transport"),
// which lets each analyzer be exercised against small mimics of the real
// protocol packages instead of dragging the whole module in.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"aq2pnn/internal/lint/analysis"
)

// Run loads testdata/src/<pkg> (relative to the test's working directory),
// applies the analyzer, and reports mismatches against the `// want`
// expectations via t.Errorf.
//
// For analyzers that declare FactTypes, every testdata dependency package
// is first analyzed in facts-only mode (dependency order, diagnostics
// discarded) so the target package sees the same cross-package facts the
// vet driver would deliver through .vetx files.
func Run(t *testing.T, testdata, pkg string, a *analysis.Analyzer) {
	t.Helper()
	fset, files, diags := run(t, testdata, pkg, a, true)
	checkWants(t, fset, files, diags)
}

// Diagnostics loads and analyzes exactly like Run but returns the raw
// findings instead of checking want comments. With withFacts false,
// dependencies are loaded for type information but never analyzed —
// tests compare the two modes to prove a cross-package finding exists
// only because of facts.
func Diagnostics(t *testing.T, testdata, pkg string, a *analysis.Analyzer, withFacts bool) []analysis.Diagnostic {
	t.Helper()
	_, _, diags := run(t, testdata, pkg, a, withFacts)
	return diags
}

func run(t *testing.T, testdata, pkg string, a *analysis.Analyzer, withFacts bool) (*token.FileSet, []*ast.File, []analysis.Diagnostic) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		root:     filepath.Join(testdata, "src"),
		std:      importer.ForCompiler(fset, "source", nil),
		packages: make(map[string]*types.Package),
		files:    make(map[string][]*ast.File),
	}
	tpkg, files, err := ld.load(pkg, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	info := ld.infos[pkg]
	store := analysis.NewFactStore()
	if withFacts && len(a.FactTypes) > 0 {
		// ld.order lists packages in completion order, dependencies before
		// dependents (a dependency's load finishes inside its importer
		// call), so facts exist before any importer of theirs runs.
		for _, dep := range ld.order {
			depFiles := ld.files[dep]
			if dep == pkg || len(depFiles) == 0 {
				continue
			}
			_, err := analysis.RunWithOptions(fset, depFiles, ld.packages[dep], ld.infos[dep],
				[]*analysis.Analyzer{a}, analysis.RunOptions{Facts: store, FactsOnly: true})
			if err != nil {
				t.Fatalf("running %s over dependency %s: %v", a.Name, dep, err)
			}
		}
	}
	diags, err := analysis.RunWithOptions(fset, files, tpkg, info,
		[]*analysis.Analyzer{a}, analysis.RunOptions{Facts: store})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return fset, files, diags
}

// loader type-checks testdata packages, resolving imports first against
// the testdata src tree, then against the standard library (compiled from
// source), and finally against an empty stub so a missing dependency
// degrades the type information instead of failing the load.
type loader struct {
	fset     *token.FileSet
	root     string
	std      types.Importer
	packages map[string]*types.Package
	files    map[string][]*ast.File
	infos    map[string]*types.Info
	order    []string // testdata packages in load-completion order
}

func (l *loader) load(path, dir string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.packages[path]; ok {
		return pkg, l.files[path], nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer: l,
		// Testdata deliberately contains broken invariants; tolerate any
		// incidental type errors rather than refusing to analyze.
		Error: func(error) {},
	}
	pkg, _ := tc.Check(path, l.fset, files, info)
	l.packages[path] = pkg
	l.files[path] = files
	if l.infos == nil {
		l.infos = make(map[string]*types.Info)
	}
	l.infos[path] = info
	l.order = append(l.order, path)
	return pkg, files, nil
}

// Import implements types.Importer for the loader itself.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.packages[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		pkg, _, err := l.load(path, dir)
		if err == nil && pkg != nil {
			return pkg, nil
		}
	}
	if pkg, err := l.std.Import(path); err == nil {
		l.packages[path] = pkg
		return pkg, nil
	}
	// Stub: an empty, complete package named after the last path element.
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	stub := types.NewPackage(path, name)
	stub.MarkComplete()
	l.packages[path] = stub
	return stub, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantStringRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantStringRE.FindAllString(text[i+len("// want "):], -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Rule, d.Message)
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
