package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// AllocCap flags slice allocations whose size flows from a value the peer
// declared on the wire (a binary.LittleEndian/BigEndian Uint16/32/64
// decode) without a dominating bound check. `make([]byte, n)` where n was
// read straight out of a frame lets a hostile peer size our allocation:
// the analyzer demands that every such length is either compared against
// a bound (any comparison mentioning it in an if/for condition before the
// allocation) or clamped through the min builtin at the allocation site.
// The check is an intra-function heuristic — a bound established in a
// caller needs a `//lint:allow alloccap <reason>` at the make site.
var AllocCap = &analysis.Analyzer{
	Name: "alloccap",
	Doc: "flags make([]T, n) where n flows from a wire-decoded length " +
		"with no dominating bound check",
	Run: runAllocCap,
}

func runAllocCap(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocCap(pass, fd.Body)
		}
	}
	return nil
}

// checkAllocCap walks one function body in source order, tracking which
// objects are tainted (assigned from a wire decode, directly or through
// arithmetic on tainted values) and which are bounded (mentioned in a
// comparison inside an if or for condition seen before the allocation).
func checkAllocCap(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	bounded := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil && exprTainted(pass, rhs, tainted) {
						tainted[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					if obj := pass.ObjectOf(name); obj != nil && exprTainted(pass, s.Values[i], tainted) {
						tainted[obj] = true
					}
				}
			}
		case *ast.IfStmt:
			markBounded(pass, s.Cond, bounded)
		case *ast.ForStmt:
			if s.Cond != nil {
				markBounded(pass, s.Cond, bounded)
			}
		case *ast.CallExpr:
			if !isBuiltinMake(pass, s) {
				return true
			}
			t := pass.TypeOf(s)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Slice); !ok {
				return true
			}
			for _, arg := range s.Args[1:] {
				if off, culprit := unboundedWireSize(pass, arg, tainted, bounded); off != token.NoPos {
					pass.Reportf(s.Lparen,
						"allocation sized by wire-decoded %s without a dominating bound check; compare it to a cap (or clamp with min) first",
						culprit)
					break
				}
			}
		}
		return true
	})
}

// isBuiltinMake reports whether call invokes the builtin make (not a
// shadowing local function) with at least one size argument.
func isBuiltinMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return true // degraded type info: assume the builtin
	}
	_, builtin := obj.(*types.Builtin)
	return builtin
}

// exprTainted reports whether e contains a wire decode call or a
// tainted identifier. Comparisons and min calls stop the taint — their
// results are bounds or booleans, not attacker-sized lengths.
func exprTainted(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isWireDecode(x) {
				found = true
				return false
			}
			if isMinClamp(pass, x) {
				return false
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(x); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWireDecode recognises binary.LittleEndian.UintNN / binary.BigEndian.
// UintNN calls: the canonical "length the peer declared" sources.
func isWireDecode(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return strings.Contains(x.Sel.Name, "Endian")
	case *ast.Ident:
		return strings.Contains(x.Name, "Endian")
	}
	return false
}

// isMinClamp recognises the builtin min (or any function literally named
// min): clamping through it bounds the result by the other operands.
func isMinClamp(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "min" && len(call.Args) >= 2
}

var compareOps = map[token.Token]bool{
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// markBounded records every identifier mentioned inside a comparison of
// the condition expression as bounded.
func markBounded(pass *analysis.Pass, cond ast.Expr, bounded map[types.Object]bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !compareOps[be.Op] {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil {
						bounded[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
}

// unboundedWireSize scans a make size argument for an unbounded tainted
// source: a direct decode call, or a tainted identifier that no prior
// condition compared to anything. A size clamped through min at the
// allocation site is accepted outright.
func unboundedWireSize(pass *analysis.Pass, arg ast.Expr, tainted, bounded map[types.Object]bool) (token.Pos, string) {
	pos, culprit := token.NoPos, ""
	ast.Inspect(arg, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isMinClamp(pass, x) {
				return false
			}
			if isWireDecode(x) {
				pos, culprit = x.Pos(), "value"
				return false
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(x); obj != nil && tainted[obj] && !bounded[obj] {
				pos, culprit = x.Pos(), `"`+x.Name+`"`
				return false
			}
		}
		return true
	})
	return pos, culprit
}
