package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/linttest"
)

func TestRingMask(t *testing.T) {
	linttest.Run(t, "testdata", "ringmask", lint.RingMask)
}
