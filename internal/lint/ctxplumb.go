package lint

import (
	"go/ast"
	"go/types"

	"aq2pnn/internal/lint/analysis"
)

// CtxPlumb flags engine code that has a context.Context in hand and then
// ignores it on a blocking call: fabricating a fresh context.Background()
// or context.TODO(), or dialing with the context-less transport.Dial when
// transport.DialContext exists. A serving engine that drops its context on
// the floor cannot be cancelled or deadlined, which breaks the concurrent
// server's shutdown path (PR 1's ServeTCP contract).
var CtxPlumb = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc: "flags blocking transport/pool calls that ignore an available " +
		"context.Context (context.Background/TODO or transport.Dial " +
		"inside a function with a ctx parameter)",
	Run: runCtxPlumb,
}

func runCtxPlumb(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || !isPackageRef(pass, sel.X) {
			return true
		}
		if !funcHasCtxParam(pass, stack) {
			return true
		}
		switch {
		case pkg.Name == "context" && (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO"):
			pass.Reportf(call.Pos(),
				"context.%s inside a function that already receives a context.Context; plumb the caller's ctx through",
				sel.Sel.Name)
		case (pkg.Name == "transport" || pkg.Name == "net") && sel.Sel.Name == "Dial":
			pass.Reportf(call.Pos(),
				"%s.Dial ignores the available context.Context; use the DialContext variant so the call can be cancelled",
				pkg.Name)
		}
		return true
	})
	return nil
}

// funcHasCtxParam reports whether the innermost enclosing function
// declaration or literal takes a context.Context parameter.
func funcHasCtxParam(pass *analysis.Pass, stack []ast.Node) bool {
	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return false
	}
	var ft *ast.FuncType
	switch f := fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	}
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass, field.Type) {
			return true
		}
	}
	return false
}

func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		// Fall back to the syntactic form context.Context.
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				return id.Name == "context" && sel.Sel.Name == "Context"
			}
		}
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
