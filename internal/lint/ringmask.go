// Package lint hosts the aq2pnnlint analyzers: static checks for the
// invariants the 2PC engine relies on but the Go compiler cannot see —
// shares stay reduced on their ring Z_{2^ℓ} (Definition 1 of the paper),
// all share randomness flows through the session PRG, every transport
// exchange is error-checked, engine paths honour their context, protocol
// code never panics, and parallel kernels only write their own block.
//
// Each analyzer is pure: it looks only at the package it is handed.
// Which packages an analyzer applies to is decided by the Suite scope
// table (suite.go), so the analyzers themselves stay testable on small
// self-contained testdata packages.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// RingMask flags uint64 arithmetic (+ - * <<) on share values whose result
// is not immediately reduced onto the ring — either by being the operand of
// an `& mask` expression or by flowing directly into a ring.Ring method.
// Computing mod 2^64 and reducing later is numerically fine for + - * <<,
// which is why a whole chain of those operators under one final mask is
// accepted; what the analyzer rejects is a chain that escapes (is assigned,
// returned, compared or passed on) without a reduction, because from that
// point on nothing guarantees the value is a ring element (Definition 1).
var RingMask = &analysis.Analyzer{
	Name: "ringmask",
	Doc: "flags uint64 share arithmetic that is not immediately reduced " +
		"via ring.Ring ops or '& Mask'",
	Run: runRingMask,
}

var ringMaskOps = map[token.Token]bool{
	token.ADD: true,
	token.SUB: true,
	token.MUL: true,
	token.SHL: true,
}

func runRingMask(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !ringMaskOps[be.Op] {
			return true
		}
		if !isUint64(pass.TypeOf(be)) {
			return true
		}
		// A fully constant expression is configuration, not share math; so
		// is a shift of a constant base (1<<k) and the mask-construction
		// idiom (1<<w)-1 with a variable width.
		if pass.IsConst(be) || (be.Op == token.SHL && pass.IsConst(be.X)) || isMaskConstruction(pass, be) {
			return true
		}
		if ringReduced(pass, be, stack) {
			return true
		}
		pass.Reportf(be.OpPos,
			"unmasked uint64 %q on ring values; reduce immediately with a ring.Ring op or '& Mask'",
			be.Op.String())
		// Report the outermost unreduced expression only; its operands
		// are part of the same finding.
		return false
	})
	return nil
}

// ringReduced reports whether the arithmetic expression e is reduced by its
// enclosing context: every ancestor that is itself + - * << arithmetic (or
// parentheses) is skipped, and the first non-arithmetic ancestor must be a
// masking AND or a ring.Ring method call.
func ringReduced(pass *analysis.Pass, e ast.Expr, stack []ast.Node) bool {
	child := ast.Node(e)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.BinaryExpr:
			if ringMaskOps[p.Op] {
				child = p
				continue
			}
			if p.Op == token.AND {
				// Masked if the *other* operand looks like a reduction
				// mask: a constant, or something named (or selecting a
				// field named) Mask.
				other := p.X
				if p.X == child {
					other = p.Y
				}
				return isMaskExpr(pass, other)
			}
			return false
		case *ast.UnaryExpr:
			if p.Op == token.SUB {
				child = p
				continue
			}
			return false
		case *ast.CallExpr:
			if child == p.Fun {
				return false
			}
			// Arguments of ring.Ring methods are reduced by the method.
			// Two further sinks leave the share domain entirely: an
			// explicit conversion (int(nPairs*nPairs) is cardinality, not
			// a share) and PRG seed derivation (prg.NewSeeded(seed+1) or
			// any argument bound to a parameter named "seed").
			return isRingMethodCall(pass, p) || isConversion(pass, p) ||
				isSeedCall(p) || isSeedArg(pass, p, child)
		case *ast.AssignStmt:
			// x &= r.Mask on the same statement still leaves this
			// expression's value unreduced when it escapes; only the
			// in-expression forms count as "immediate".
			return false
		default:
			return false
		}
	}
	return false
}

// isMaskConstruction recognises the idiom that *builds* a reduction mask
// from a variable width: (1 << w) - 1, i.e. a subtraction of a constant
// from a constant-base shift.
func isMaskConstruction(pass *analysis.Pass, be *ast.BinaryExpr) bool {
	if be.Op != token.SUB || !pass.IsConst(be.Y) {
		return false
	}
	x := be.X
	if p, ok := x.(*ast.ParenExpr); ok {
		x = p.X
	}
	shl, ok := x.(*ast.BinaryExpr)
	return ok && shl.Op == token.SHL && pass.IsConst(shl.X)
}

// isMaskExpr recognises reduction masks: compile-time constants, or any
// identifier / field selection whose name contains "mask".
func isMaskExpr(pass *analysis.Pass, e ast.Expr) bool {
	if pass.IsConst(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "mask")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "mask")
	case *ast.ParenExpr:
		return isMaskExpr(pass, x.X)
	}
	return false
}

// isRingMethodCall reports whether call invokes a method whose receiver is
// the ring.Ring type (any package named type called Ring): all such methods
// reduce their operands onto the ring.
func isRingMethodCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Ring"
}

// isConversion reports whether call is a type conversion like int(x):
// converting out of uint64 moves the value out of the share domain, so
// whatever it was counting, it was not a ring element.
func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// isSeedCall reports whether call derives a PRG seed (prg.NewSeeded and
// friends): seed arithmetic is uint64 but not ring arithmetic.
func isSeedCall(call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		return strings.HasPrefix(f.Sel.Name, "NewSeeded")
	case *ast.Ident:
		return strings.HasPrefix(f.Name, "NewSeeded")
	}
	return false
}

// isSeedArg reports whether arg is bound to a callee parameter whose name
// marks it as a PRG seed.
func isSeedArg(pass *analysis.Pass, call *ast.CallExpr, arg ast.Node) bool {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	idx := -1
	for i, a := range call.Args {
		if ast.Node(a) == arg {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	if idx >= sig.Params().Len() {
		if !sig.Variadic() {
			return false
		}
		idx = sig.Params().Len() - 1
	}
	name := strings.ToLower(sig.Params().At(idx).Name())
	return strings.Contains(name, "seed")
}

func isUint64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
