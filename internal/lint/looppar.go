package lint

import (
	"go/ast"
	"go/token"

	"aq2pnn/internal/lint/analysis"
)

// LoopPar guards the determinism contract of parallel.Pool: a kernel body
// passed to Pool.Blocks or Pool.For may only write state it owns through
// its block indices. A write to a variable captured from the enclosing
// scope (an accumulator, an appended slice, a map) is executed by several
// workers at once — at best a data race, at worst a result that varies with
// the Workers setting, which breaks the engine's bit-identical-at-every-
// worker-count guarantee that the two parties' transcripts rely on.
//
// Indexed writes are allowed when the index involves a variable declared
// inside the kernel body (the per-block i / lo / hi), because the Blocks
// contract makes those ranges disjoint. An indexed write whose index comes
// entirely from outside (out[0], m[key]) hits the same location from every
// worker and is flagged.
var LoopPar = &analysis.Analyzer{
	Name: "looppar",
	Doc: "flags parallel.Pool kernel bodies that write shared captured " +
		"state, which races and breaks worker-count determinism",
	Run: runLoopPar,
}

func runLoopPar(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolSubmit(pass, call) {
			return true
		}
		lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return true
		}
		checkKernelBody(pass, lit)
		return true
	})
	return nil
}

// isPoolSubmit matches p.Blocks(n, fn) / p.For(n, fn) where p is a
// *parallel.Pool (any named type called Pool).
func isPoolSubmit(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if sel.Sel.Name != "Blocks" && sel.Sel.Name != "For" {
		return false
	}
	recv := pass.TypeOf(sel.X)
	return recv != nil && typeNameIs(recv, "Pool")
}

// checkKernelBody flags writes to captured variables inside the kernel.
func checkKernelBody(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A nested literal has its own (also unsafe) story; one
			// report level is enough.
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkKernelWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkKernelWrite(pass, lit, s.X)
		}
		return true
	})
}

func checkKernelWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if declaredOutside(pass, x, lit) {
			pass.Reportf(x.Pos(),
				"parallel kernel writes captured variable %q; every worker races on it and the result depends on the Workers setting",
				x.Name)
		}
	case *ast.IndexExpr:
		base := baseIdent(x.X)
		if base == nil || !declaredOutside(pass, base, lit) {
			return
		}
		if !indexUsesLocal(pass, x.Index, lit) {
			pass.Reportf(x.Pos(),
				"parallel kernel writes %q at an index independent of the block range; workers collide on the same element",
				base.Name)
		}
	}
}

// declaredOutside reports whether id resolves to an object declared outside
// the function literal lit (i.e. a captured variable).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, lit *ast.FuncLit) bool {
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// indexUsesLocal reports whether the index expression mentions at least one
// identifier declared inside the kernel literal — the signature of a
// block-partitioned access like out[i] or dst[row*w+c].
func indexUsesLocal(pass *analysis.Pass, idx ast.Expr, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := pass.ObjectOf(id); obj != nil && obj.Pos() != token.NoPos {
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
