package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// SpanEnd flags telemetry spans that are started but not ended on every
// path. A span that is never ended keeps its communication window open: it
// is invisible in exports (the Tracer only reports finished spans), its
// traffic is silently folded into the parent's delta, and the per-layer
// partition the subsystem guarantees (children sum exactly to the root)
// breaks. The analyzer tracks each `Enter`/`Root`/`Child` result through
// the remainder of its declaring block and requires an `End`/`Exit` (plain
// or deferred) before every return and before the variable falls out of
// scope; returning the span hands ownership to the caller and also counts.
//
// The walk is flow-sensitive over if/switch/select but deliberately
// conservative around loop back-edges: a `continue` that skips an End is
// out of reach of a lexical checker and is not reported.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "flags telemetry spans (Scope.Enter / Tracer.Root / Span.Child) " +
		"not ended on all paths; an unfinished span corrupts the trace's " +
		"per-span communication attribution",
	Run: runSpanEnd,
}

// spanStarters maps the span-creating method name to the telemetry type it
// must be invoked on.
var spanStarters = map[string]string{
	"Enter": "Scope",
	"Root":  "Tracer",
	"Child": "Span",
}

func runSpanEnd(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					spanendScanList(pass, fn.Body.List)
				}
			case *ast.FuncLit:
				spanendScanList(pass, fn.Body.List)
			}
			return true
		})
	}
	return nil
}

// spanendScanList finds span starts in one statement list (recursing into
// nested lists, but not into function literals — those are scanned as
// functions of their own) and checks each start against the remainder of
// its declaring list, which is exactly the span variable's scope.
func spanendScanList(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			id, ok := spanStartAssign(pass, s)
			if !ok {
				break
			}
			if id == nil { // assigned to _
				pass.Reportf(s.Pos(), "telemetry span is discarded and can never be ended")
				break
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				break
			}
			w := &spanWalker{pass: pass, obj: obj, name: id.Name}
			f := w.list(stmts[i+1:], spanFlow{})
			if !f.terminated && !f.done {
				pass.Reportf(s.Pos(), "telemetry span %s is not ended on every path through its scope; call End/Exit or defer it", id.Name)
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && spanStartCall(pass, call) {
				pass.Reportf(call.Pos(), "telemetry span from %s is discarded and can never be ended", callName(call))
			}
		}
		forEachNestedList(s, func(l []ast.Stmt) { spanendScanList(pass, l) })
	}
}

// forEachNestedList visits the statement lists directly nested in s,
// without descending into function literals.
func forEachNestedList(s ast.Stmt, f func([]ast.Stmt)) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		f(s.List)
	case *ast.IfStmt:
		f(s.Body.List)
		if s.Else != nil {
			forEachNestedList(s.Else, f)
		}
	case *ast.ForStmt:
		f(s.Body.List)
	case *ast.RangeStmt:
		f(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			f(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			f(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			f(c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		forEachNestedList(s.Stmt, f)
	}
}

// spanStartAssign reports whether s assigns a freshly started span to a
// single variable. The returned identifier is nil when the span is
// assigned to the blank identifier.
func spanStartAssign(pass *analysis.Pass, s *ast.AssignStmt) (*ast.Ident, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !spanStartCall(pass, call) {
		return nil, false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	if id.Name == "_" {
		return nil, true
	}
	return id, true
}

// spanStartCall reports whether call creates a telemetry span.
func spanStartCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvName, ok := spanStarters[sel.Sel.Name]
	if !ok {
		return false
	}
	t := pass.TypeOf(sel.X)
	return t != nil && telemetryTypeIs(t, recvName)
}

// telemetryTypeIs reports whether t (possibly behind a pointer) is the
// telemetry package's named type with the given name. Testdata mimics are
// matched by the package name alone.
func telemetryTypeIs(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "telemetry" || strings.HasSuffix(pkg.Path(), "/telemetry")
}

// spanFlow is the walker state along one control-flow path.
type spanFlow struct {
	// done: an End/Exit has run, or one is deferred, on this path.
	done bool
	// terminated: this path has left the statement list (return, or a
	// branch out of it).
	terminated bool
}

func mergeSpanFlow(a, b spanFlow) spanFlow {
	if a.terminated && b.terminated {
		return spanFlow{terminated: true}
	}
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	return spanFlow{done: a.done && b.done}
}

// spanWalker checks that one span variable is ended before every exit of
// its scope.
type spanWalker struct {
	pass *analysis.Pass
	obj  types.Object
	name string
}

func (w *spanWalker) list(stmts []ast.Stmt, f spanFlow) spanFlow {
	for _, s := range stmts {
		if f.terminated {
			break
		}
		f = w.stmt(s, f)
	}
	return f
}

func (w *spanWalker) stmt(s ast.Stmt, f spanFlow) spanFlow {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.isEnder(call) {
			f.done = true
		}
	case *ast.DeferStmt:
		if w.containsEnder(s.Call) {
			f.done = true
		}
	case *ast.ReturnStmt:
		if !f.done && !w.handsOff(s) {
			w.pass.Reportf(s.Pos(), "telemetry span %s may not be ended on this return path; End/Exit it first or defer", w.name)
		}
		f.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto jump within the function; whether the span
		// ends afterwards is beyond a lexical walk, so the path is closed
		// without a verdict.
		f.terminated = true
	case *ast.BlockStmt:
		f = w.list(s.List, f)
	case *ast.IfStmt:
		if s.Init != nil {
			f = w.stmt(s.Init, f)
		}
		then := w.list(s.Body.List, f)
		els := f
		if s.Else != nil {
			els = w.stmt(s.Else, f)
		}
		f = mergeSpanFlow(then, els)
	case *ast.ForStmt:
		if s.Init != nil {
			f = w.stmt(s.Init, f)
		}
		// The body may run zero times: walk it for per-path reports but
		// keep the pre-loop state.
		w.list(s.Body.List, f)
	case *ast.RangeStmt:
		w.list(s.Body.List, f)
	case *ast.SwitchStmt:
		f = w.clauses(s.Body.List, f, switchHasDefault(s.Body.List))
	case *ast.TypeSwitchStmt:
		f = w.clauses(s.Body.List, f, switchHasDefault(s.Body.List))
	case *ast.SelectStmt:
		// A select always executes exactly one of its clauses.
		f = w.clauses(s.Body.List, f, true)
	case *ast.LabeledStmt:
		f = w.stmt(s.Stmt, f)
	}
	return f
}

// clauses walks every case body from the incoming state. The merged state
// advances only for exhaustive statements (select, or a switch with a
// default clause); otherwise the whole statement may be skipped and the
// incoming state is kept.
func (w *spanWalker) clauses(list []ast.Stmt, f spanFlow, exhaustive bool) spanFlow {
	merged := spanFlow{done: true, terminated: true}
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		merged = mergeSpanFlow(merged, w.list(body, f))
	}
	if !exhaustive {
		merged = mergeSpanFlow(merged, f)
	}
	return merged
}

func switchHasDefault(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isEnder reports whether call ends the tracked span: sp.End(), or any
// Exit(...) call taking sp as an argument (Scope.Exit restores the parent
// and ends the span).
func (w *spanWalker) isEnder(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "End":
		id, ok := sel.X.(*ast.Ident)
		return ok && w.pass.ObjectOf(id) == w.obj
	case "Exit":
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && w.pass.ObjectOf(id) == w.obj {
				return true
			}
		}
	}
	return false
}

// containsEnder reports whether an ender for the span appears anywhere
// under e — the deferred-call position, where `defer sc.Exit(sp)` and
// `defer func() { sp.End() }()` both guarantee the end runs.
func (w *spanWalker) containsEnder(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && w.isEnder(call) {
			found = true
		}
		return !found
	})
	return found
}

// handsOff reports whether the return statement passes the span to the
// caller, transferring the obligation to end it.
func (w *spanWalker) handsOff(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		found := false
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && w.pass.ObjectOf(id) == w.obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
