package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"reflect"
	"strings"

	"aq2pnn/internal/lint/analysis"
)

// SecretFlow is the interprocedural secret-leakage taint analyzer. The
// 2PC security argument rests on one invariant the compiler never checks:
// additive secret shares — and every masked intermediate derived from them
// — must never leave the protocol through a side channel. The sanctioned
// exits are the transport layer (shares to the peer are the protocol) and
// the explicitly declassified reveals (logits/argmax to the output party).
// Everything else — log lines, error strings, fmt output, telemetry span
// attributes or metric values, raw non-transport writes — is a leak.
//
// Taint seeds at share-carrying sources: values of share-typed types
// (share.Tensor and containers thereof), outputs of the session PRG
// (mask material), and — via cross-package facts — results of protocol
// operations that produce shares (secure/triple/scm/ot/share ops).
// Propagation is interprocedural: for every function the analyzer exports
// a SecretFlowFact summary (which params reach sinks inside, which params
// flow to which results or mutate which other params, which results carry
// internally-created secrets), serialized through the vet protocol's
// per-package .vetx files exactly where export data rides, so a share
// laundered through a helper in one package and printed in another is
// still one connected flow.
//
// A `//lint:declassify <reason>` directive on (or above) a line launders
// the taint produced there and silences findings on it; the reason is
// mandatory and a declassify that launders nothing is itself a finding.
var SecretFlow = &analysis.Analyzer{
	Name: "secretflow",
	Doc: "flags secret-share values flowing into logs, errors, fmt output, " +
		"telemetry attributes or non-transport I/O, across package " +
		"boundaries via facts; declassify deliberate reveals with " +
		"//lint:declassify <reason>",
	Run:            runSecretFlow,
	FactTypes:      []analysis.Fact{(*SecretFlowFact)(nil)},
	UsesDeclassify: true,
}

// SecretFlowFact is the exported taint summary of one function. Parameter
// indexing is receiver-first: for methods, index 0 is the receiver and the
// declared parameters start at 1. Result indexing follows the signature.
type SecretFlowFact struct {
	// ParamSink[i] is set when taint arriving at parameter i reaches a
	// leakage sink inside the function (directly or transitively).
	ParamSink []bool
	// ParamResult[i] is the bitmask of results that taint arriving at
	// parameter i flows into.
	ParamResult []uint32
	// ParamMut[i] is the bitmask of (pointer/slice/map) parameters that
	// taint arriving at parameter i is written into — the SubVec(dst, a,
	// b) shape, where dst inherits the taint of a and b at the call site.
	ParamMut []uint32
	// SourceResult is the bitmask of results that carry secrets created
	// inside the function (PRG draws, share-typed values, transitive
	// source flows).
	SourceResult uint32
	// SourceMut is the bitmask of parameters that internally-created
	// secrets are written into (the FillElems(dst) shape).
	SourceMut uint32
}

// AFact marks SecretFlowFact as a serializable analysis fact.
func (*SecretFlowFact) AFact() {}

// sourceBit is the taint label for secrets that originate inside the
// function under analysis; bits 0..maxParamBit label its parameters.
const (
	sourceBit     = uint64(1) << 63
	maxParamBit   = 62
	maxFlowPasses = 20
)

func runSecretFlow(pass *analysis.Pass) error {
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	// Intra-package fixpoint: summaries feed call sites of same-package
	// callees, so iterate until no function's fact changes. Facts only
	// grow, so this terminates.
	for iter := 0; iter < maxFlowPasses; iter++ {
		changed := false
		for _, fd := range fns {
			fact := summarizeFlow(pass, fd, false)
			if fact == nil {
				continue
			}
			obj := pass.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			old := new(SecretFlowFact)
			had := pass.ImportObjectFact(obj, old)
			if !had || !reflect.DeepEqual(old, fact) {
				pass.ExportObjectFact(obj, fact)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass with the final facts in place.
	for _, fd := range fns {
		summarizeFlow(pass, fd, true)
	}
	return nil
}

// flowState is the per-function dataflow state.
type flowState struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	params  map[types.Object]int // receiver-first parameter index
	results map[types.Object]int // named result index
	nres    int
	// nextParam hands out indices past the declared parameters to closure
	// parameters; those bits are private to the walk (never exported in
	// the fact, whose arrays cover only the declared signature).
	nextParam int
	labels    map[types.Object]uint64
	fact      *SecretFlowFact
	report    bool
	changed   bool
}

// summarizeFlow runs the intra-function taint propagation to fixpoint and
// returns the function's summary. With report set it additionally emits
// diagnostics for source-tainted values reaching sinks.
func summarizeFlow(pass *analysis.Pass, fd *ast.FuncDecl, report bool) *SecretFlowFact {
	st := &flowState{
		pass:    pass,
		fd:      fd,
		params:  map[types.Object]int{},
		results: map[types.Object]int{},
		labels:  map[types.Object]uint64{},
	}
	idx := 0
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					st.params[obj] = idx
					// Only share-carrying params get a taint bit: an int
					// count, a ring descriptor or an address string cannot
					// hold share material, and granting them bits floods
					// every error message and telemetry attribute with
					// spurious ParamSink facts.
					if carrierType(obj.Type()) {
						st.labels[obj] = paramBit(idx)
					}
				}
				idx++
			}
		}
	}
	addParams(fd.Recv)
	addParams(fd.Type.Params)
	nparams := idx
	st.nextParam = nparams
	if fd.Type.Results != nil {
		ri := 0
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				ri++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					st.results[obj] = ri
				}
				ri++
			}
		}
		st.nres = ri
	}
	st.fact = &SecretFlowFact{
		ParamSink:   make([]bool, nparams),
		ParamResult: make([]uint32, nparams),
		ParamMut:    make([]uint32, nparams),
	}
	for i := 0; i < maxFlowPasses; i++ {
		st.changed = false
		st.walk()
		if !st.changed {
			break
		}
	}
	if report {
		st.report = true
		st.walk()
	}
	return st.fact
}

func paramBit(i int) uint64 {
	if i > maxParamBit {
		i = maxParamBit
	}
	return uint64(1) << uint(i)
}

// walk makes one pass over the function body, propagating labels through
// assignments, recording sink and return flows, and (when report is set)
// emitting diagnostics.
func (st *flowState) walk() {
	analysis.WithStack([]*ast.File{wrapBody(st.fd)}, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			st.visitAssign(x)
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) {
					st.assign(name, st.exprLabels(x.Values[i]), false)
				}
			}
		case *ast.RangeStmt:
			l := st.exprLabels(x.X)
			if x.Value != nil {
				st.assign(x.Value, l, false)
			}
			if x.Key != nil {
				if t := st.pass.TypeOf(x.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						st.assign(x.Key, l, false)
					}
				}
			}
		case *ast.CallExpr:
			st.visitCall(x)
		case *ast.FuncLit:
			st.addClosureParams(x.Type.Params)
		case *ast.ReturnStmt:
			if funcLitDepth(stack) == 0 {
				st.visitReturn(x)
			}
		}
		return true
	})
}

// addClosureParams treats a function literal's parameters as extra
// untrusted inputs of the enclosing declaration: share-carrying ones get
// private taint bits so flows from a closure's arguments into sinks and
// declassify sites are tracked. The bits sit past the declared-parameter
// range and are never exported in the fact. Idempotent across fixpoint
// passes — an object already registered keeps its index.
func (st *flowState) addClosureParams(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			obj := st.pass.ObjectOf(name)
			if obj == nil {
				continue
			}
			if _, ok := st.params[obj]; ok {
				continue
			}
			st.params[obj] = st.nextParam
			if carrierType(obj.Type()) {
				st.labels[obj] = paramBit(st.nextParam)
			}
			st.nextParam++
		}
	}
}

// wrapBody produces a minimal *ast.File wrapper so WithStack can walk one
// declaration; only the decl is visited.
func wrapBody(fd *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("p"), Decls: []ast.Decl{fd}}
}

// funcLitDepth counts function literals on the ancestor stack: a return
// inside a closure belongs to the closure, not to the declared function.
func funcLitDepth(stack []ast.Node) int {
	d := 0
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			d++
		}
	}
	return d
}

func (st *flowState) visitAssign(as *ast.AssignStmt) {
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// Tuple assignment from a call (or type assert / map read).
		if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			per := st.callResultLabels(call)
			for i, lhs := range as.Lhs {
				var l uint64
				if i < len(per) {
					l = per[i]
				}
				st.assign(lhs, l, false)
			}
			return
		}
		l := st.exprLabels(as.Rhs[0])
		for _, lhs := range as.Lhs {
			st.assign(lhs, l, false)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) {
			st.assign(lhs, st.exprLabels(as.Rhs[i]), false)
		}
	}
}

func (st *flowState) visitReturn(ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 {
		// Bare return with named results.
		for obj, ri := range st.results {
			st.recordResultFlow(st.labels[obj], ri)
		}
		return
	}
	if len(ret.Results) == 1 && st.nres > 1 {
		if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
			per := st.callResultLabels(call)
			for ri := 0; ri < st.nres && ri < len(per); ri++ {
				st.recordResultFlow(per[ri], ri)
			}
			return
		}
	}
	for ri, e := range ret.Results {
		st.recordResultFlow(st.exprLabels(e), ri)
	}
}

func (st *flowState) recordResultFlow(l uint64, ri int) {
	if l == 0 || ri > 31 {
		return
	}
	bit := uint32(1) << uint(ri)
	if l&sourceBit != 0 && st.fact.SourceResult&bit == 0 {
		st.fact.SourceResult |= bit
		st.changed = true
	}
	st.forEachParamLabel(l, func(pi int) {
		if st.fact.ParamResult[pi]&bit == 0 {
			st.fact.ParamResult[pi] |= bit
			st.changed = true
		}
	})
}

func (st *flowState) forEachParamLabel(l uint64, fn func(pi int)) {
	for pi := range st.fact.ParamResult {
		if l&paramBit(pi) != 0 {
			fn(pi)
		}
	}
}

// assign writes labels l into the object at the root of lvalue lhs. deep
// marks lvalues that reach through a dereference (index, field, pointer):
// those mutations are visible to the caller when the root is a parameter,
// so they are recorded in the mutation summary.
func (st *flowState) assign(lhs ast.Expr, l uint64, deep bool) {
	if l == 0 {
		return
	}
	root, wentDeep := rootIdent(lhs)
	if root == nil {
		return
	}
	deep = deep || wentDeep
	obj := st.pass.ObjectOf(root)
	if obj == nil {
		return
	}
	if st.labels[obj]&l != l {
		st.labels[obj] |= l
		st.changed = true
	}
	if deep {
		// Closure-parameter indices (≥ len(ParamSink)) are private to the
		// walk: a mutation through one is not a caller-visible effect of
		// the declared signature, so it never lands in the fact.
		if pi, ok := st.params[obj]; ok && pi <= 31 && pi < len(st.fact.ParamSink) {
			bit := uint32(1) << uint(pi)
			if l&sourceBit != 0 && st.fact.SourceMut&bit == 0 {
				st.fact.SourceMut |= bit
				st.changed = true
			}
			st.forEachParamLabel(l, func(src int) {
				if st.fact.ParamMut[src]&bit == 0 {
					st.fact.ParamMut[src] |= bit
					st.changed = true
				}
			})
		}
	}
}

// rootIdent returns the identifier at the base of an lvalue chain and
// whether the chain passed through a dereference/field/index step.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	deep := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, deep
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, deep = x.X, true
		case *ast.IndexExpr:
			e, deep = x.X, true
		case *ast.SliceExpr:
			e, deep = x.X, true
		case *ast.StarExpr:
			e, deep = x.X, true
		default:
			return nil, deep
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

var compareTokens = map[token.Token]bool{
	token.EQL: true, token.NEQ: true, token.LSS: true,
	token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.LAND: true, token.LOR: true,
}

// exprLabels computes the taint labels of one expression.
func (st *flowState) exprLabels(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	var l uint64
	switch x := e.(type) {
	case *ast.Ident:
		if obj := st.pass.ObjectOf(x); obj != nil {
			l = st.labels[obj]
		}
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.ParenExpr:
		l = st.exprLabels(x.X)
	case *ast.UnaryExpr:
		l = st.exprLabels(x.X)
	case *ast.StarExpr:
		l = st.exprLabels(x.X)
	case *ast.BinaryExpr:
		// Comparisons yield booleans: one bit of information, which the
		// analyzer treats as below the leakage threshold (the explicit-
		// flow model; branch side channels are out of scope).
		if compareTokens[x.Op] {
			return 0
		}
		l = st.exprLabels(x.X) | st.exprLabels(x.Y)
	case *ast.IndexExpr:
		l = st.exprLabels(x.X)
	case *ast.SliceExpr:
		l = st.exprLabels(x.X)
	case *ast.SelectorExpr:
		// Field-sensitivity-lite: reading a public-metadata field
		// (dimensions, bit widths, names) out of a tainted struct yields a
		// public value. Only fields that can physically hold share material
		// inherit the container's taint.
		if fld, ok := st.pass.ObjectOf(x.Sel).(*types.Var); ok && fld.IsField() && !carrierType(fld.Type()) {
			return 0
		}
		l = st.exprLabels(x.X)
	case *ast.TypeAssertExpr:
		l = st.exprLabels(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				l |= st.exprLabels(kv.Value)
				continue
			}
			l |= st.exprLabels(elt)
		}
	case *ast.CallExpr:
		for _, rl := range st.callResultLabels(x) {
			l |= rl
		}
	}
	// A PRG value itself never carries taint: the generator is seeded
	// public state and its *draws* are the secret sources (prgSourceResult,
	// FillElems). Without this, the stateful draw methods' receiver
	// mutations would taint every struct holding a PRG field and flood the
	// analysis through its public siblings (dims, counters).
	if isPRGValue(st.pass.TypeOf(e)) {
		return 0
	}
	if isSecretType(st.pass.TypeOf(e)) {
		l |= sourceBit
	}
	return l
}

// callResultLabels computes the per-result taint labels of a call.
func (st *flowState) callResultLabels(call *ast.CallExpr) []uint64 {
	// Type conversion: the value is unchanged.
	if st.isConversion(call) && len(call.Args) == 1 {
		return []uint64{st.exprLabels(call.Args[0])}
	}
	if name, ok := st.builtinName(call); ok {
		switch name {
		case "append", "min", "max":
			var l uint64
			for _, a := range call.Args {
				l |= st.exprLabels(a)
			}
			return []uint64{l}
		default:
			// len, cap, make, new, copy, delete, clear, panic, print...
			// (print/println are handled as sinks in visitCall).
			return []uint64{0}
		}
	}
	if prgSourceResult(calleeOf(st.pass, call)) {
		return []uint64{sourceBit}
	}
	callee := calleeOf(st.pass, call)
	var out []uint64
	nres := 1
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok {
			if n := sig.Results().Len(); n > 0 {
				nres = n
			}
		}
	}
	out = make([]uint64, nres)
	if callee != nil {
		fact := new(SecretFlowFact)
		if st.pass.ImportObjectFact(callee, fact) {
			args := callArgs(st.pass, call, callee)
			for ri := 0; ri < nres && ri < 32; ri++ {
				bit := uint32(1) << uint(ri)
				if fact.SourceResult&bit != 0 {
					out[ri] |= sourceBit
				}
				for ai, arg := range args {
					fi := factParamIndex(ai, len(fact.ParamResult))
					if fi >= 0 && fact.ParamResult[fi]&bit != 0 {
						out[ri] |= st.exprLabels(arg)
					}
				}
			}
		} else if stdlibPropagator(callee) {
			var l uint64
			for _, a := range call.Args {
				l |= st.exprLabels(a)
			}
			for ri := range out {
				out[ri] |= l
			}
		}
	}
	// Results that cannot physically hold share material come back
	// public: a revealed []int64, an error, a Stats record or a PRG
	// generator (NewSeeded, Fork — only its draws are secret). Stdlib
	// propagators are exempt so a Sprintf/hex laundering chain keeps its
	// taint on the way to a textual sink.
	if callee != nil && !stdlibPropagator(callee) {
		if sig, ok := callee.Type().(*types.Signature); ok {
			for ri := 0; ri < len(out) && ri < sig.Results().Len(); ri++ {
				if !carrierType(sig.Results().At(ri).Type()) {
					out[ri] = 0
				}
			}
		}
	}
	// Declassification boundary: the line deliberately moves its value
	// out of the secret domain.
	tainted := false
	for _, l := range out {
		if l != 0 {
			tainted = true
		}
	}
	if tainted && st.pass.Declassified(call.Pos()) {
		for ri := range out {
			out[ri] = 0
		}
	}
	return out
}

// visitCall handles the statement-level effects of a call: sink checks,
// caller-visible mutations (builtin copy, PRG fills, fact-declared
// parameter mutations) and fact-declared transitive sinks.
func (st *flowState) visitCall(call *ast.CallExpr) {
	if name, ok := st.builtinName(call); ok {
		switch name {
		case "copy":
			if len(call.Args) == 2 {
				st.assign(call.Args[0], st.exprLabels(call.Args[1]), true)
			}
		case "print", "println":
			st.checkSinkArgs(call, call.Args, "builtin "+name)
		}
		return
	}
	callee := calleeOf(st.pass, call)
	if callee == nil {
		return
	}
	args := callArgs(st.pass, call, callee)
	// PRG draws that fill a caller buffer.
	if isPRGMethod(callee, "FillElems", "Read") && len(call.Args) >= 1 {
		st.assign(call.Args[0], sourceBit, true)
	}
	// Direct sinks. The transport package is the protocol's sanctioned
	// exit: its raw socket/file writes are the framing layer doing its
	// job, so the net/os write sinks don't apply there (textual sinks —
	// fmt, log, telemetry — still do).
	if sinkArgs, what := leakageSink(callee, call); sinkArgs != nil {
		exempt := pkgBase(st.pass.Pkg.Path()) == "transport" &&
			(pkgBase(callee.Pkg().Path()) == "net" || pkgBase(callee.Pkg().Path()) == "os")
		if !exempt {
			st.checkSinkArgs(call, sinkArgs, what)
		}
	}
	// Fact-declared behaviour of the callee.
	fact := new(SecretFlowFact)
	if !st.pass.ImportObjectFact(callee, fact) {
		return
	}
	for ai, arg := range args {
		fi := factParamIndex(ai, len(fact.ParamSink))
		if fi < 0 {
			continue
		}
		if fact.ParamSink[fi] {
			st.checkSinkFlow(call, arg, calleeName(callee)+" (which forwards it to a leakage sink)")
		}
		// Mutations: taint of arg ai lands in the args at ParamMut bits.
		for di := 0; di < len(args) && di < 32; di++ {
			if fact.ParamMut[fi]&(uint32(1)<<uint(di)) != 0 && !st.isPRGArg(args[di]) {
				st.assign(args[di], st.exprLabels(arg), true)
			}
		}
	}
	for di := 0; di < len(args) && di < 32; di++ {
		if fact.SourceMut&(uint32(1)<<uint(di)) != 0 && !st.isPRGArg(args[di]) {
			st.assign(args[di], sourceBit, true)
		}
	}
}

// checkSinkArgs records/report taint reaching one sink's arguments.
func (st *flowState) checkSinkArgs(call *ast.CallExpr, args []ast.Expr, what string) {
	for _, a := range args {
		st.checkSinkFlow(call, a, what)
	}
}

func (st *flowState) checkSinkFlow(call *ast.CallExpr, arg ast.Expr, what string) {
	l := st.exprLabels(arg)
	if l == 0 {
		return
	}
	if st.pass.Declassified(call.Pos()) {
		return
	}
	if l&sourceBit != 0 && st.report {
		st.pass.Reportf(arg.Pos(),
			"secret share value flows into %s; shares must not leave the protocol — route through transport, or annotate a deliberate reveal with //lint:declassify <reason>",
			what)
	}
	st.forEachParamLabel(l, func(pi int) {
		if !st.fact.ParamSink[pi] {
			// SFDEBUG=1 prints every fact-recording leaf. A ParamSink on a
			// widely-used helper cascades a finding into every transitive
			// caller, so the way to triage a flood of reports is to find
			// the leaf that minted the first fact, not the report sites.
			if os.Getenv("SFDEBUG") != "" {
				fmt.Fprintf(os.Stderr, "SFDEBUG %s: param %d -> sink %s at %s\n",
					st.fd.Name.Name, pi, what, st.pass.Fset.Position(call.Pos()))
			}
			st.fact.ParamSink[pi] = true
			st.changed = true
		}
	})
}

// ---- callee / type helpers ----

func (st *flowState) isConversion(call *ast.CallExpr) bool {
	if st.pass.TypesInfo == nil {
		return false
	}
	tv, ok := st.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

func (st *flowState) builtinName(call *ast.CallExpr) (string, bool) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := st.pass.ObjectOf(id)
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		return id.Name, true
	}
	return "", false
}

// calleeOf resolves the *types.Func a call statically invokes, or nil for
// indirect calls (function values, closures).
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}

// callArgs returns the receiver-first argument expressions of a call so
// indices line up with SecretFlowFact parameter indexing.
func callArgs(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args
}

// factParamIndex clamps a call-site argument index onto the callee's
// declared parameters (variadic tail arguments map to the last one).
func factParamIndex(ai, nparams int) int {
	if nparams == 0 {
		return -1
	}
	if ai >= nparams {
		return nparams - 1
	}
	return ai
}

func calleeName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	if f.Pkg() != nil {
		return pkgBase(f.Pkg().Path()) + "." + f.Name()
	}
	return f.Name()
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isPRGMethod reports whether f is one of the named methods on the session
// PRG type (any type named PRG in a package whose base name is prg — the
// real internal/prg and the testdata mimic alike).
func isPRGMethod(f *types.Func, names ...string) bool {
	if f == nil || f.Pkg() == nil || pkgBase(f.Pkg().Path()) != "prg" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "PRG" {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// prgSourceResult reports whether a call to f yields raw PRG output — the
// mask material every share and pad is built from.
func prgSourceResult(f *types.Func) bool {
	return isPRGMethod(f, "Uint64", "Elem", "Elems")
}

// isPRGValue reports whether t is the session PRG type (or a pointer to
// it). PRG values are taint-immune: a draw method mutating its generator
// must not count as secret landing in whatever struct holds the PRG.
func isPRGValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Name() == "PRG" && pkgBase(obj.Pkg().Path()) == "prg"
}

// isPRGArg reports whether a call argument is PRG-typed (mutation target
// exemption — see isPRGValue).
func (st *flowState) isPRGArg(e ast.Expr) bool {
	return isPRGValue(st.pass.TypeOf(e))
}

// carrierType reports whether t can physically hold secret share material:
// ring elements (uint64), raw bytes, share tensors, empty interfaces, or
// any container/struct (depth-limited) of those. Public metadata types —
// ints, uints, strings, bools, floats, errors, dimension/ring descriptors
// whose fields are all public — cannot carry shares, so taint never rides
// on them across function boundaries or out of struct fields. This is
// what keeps a `fmt.Errorf("want %d rows", m)` from poisoning every
// transitive caller of its function.
func carrierType(t types.Type) bool {
	return carrier(t, 0, map[types.Type]bool{})
}

func carrier(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth > 4 || seen[t] {
		return false
	}
	seen[t] = true
	if isPRGValue(t) {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			base := pkgBase(obj.Pkg().Path())
			if obj.Name() == "Tensor" && base == "share" {
				return true
			}
			// Known public-metadata records. These contain uint64 words
			// (byte counters, the ring's bitmask) but are the protocol's
			// published outputs by definition: traffic statistics, per-op
			// cost profiles and ring descriptors never hold share values.
			switch {
			case obj.Name() == "Stats" && base == "transport",
				obj.Name() == "OpProfile" && base == "engine",
				obj.Name() == "Ring" && base == "ring":
				return false
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Uint64 || u.Kind() == types.Uint8
	case *types.Interface:
		// interface{}/any boxes anything (fmt args); error and other
		// method-bearing interfaces carry behaviour, not share words.
		return u.NumMethods() == 0
	case *types.Pointer:
		return carrier(u.Elem(), depth+1, seen)
	case *types.Slice:
		return carrier(u.Elem(), depth+1, seen)
	case *types.Array:
		return carrier(u.Elem(), depth+1, seen)
	case *types.Map:
		return carrier(u.Elem(), depth+1, seen)
	case *types.Chan:
		return carrier(u.Elem(), depth+1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carrier(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	}
	return false
}

// stdlibPropagator marks standard-library functions that carry their
// arguments' information into their results (formatting, conversion,
// joining) — the laundering steps between a share value and a string sink.
func stdlibPropagator(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "fmt":
		return strings.HasPrefix(f.Name(), "Sprint") || strings.HasPrefix(f.Name(), "Append")
	case "strconv", "strings", "bytes", "encoding/hex", "encoding/base64":
		return true
	}
	return false
}

// isSecretType reports whether t is a share-carrying type: share.Tensor
// (any type named Tensor in a package whose base name is share), or any
// container — pointer, slice, array, map, struct field — thereof.
func isSecretType(t types.Type) bool {
	return secretType(t, 0, map[types.Type]bool{})
}

func secretType(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth > 4 || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil &&
			obj.Name() == "Tensor" && pkgBase(obj.Pkg().Path()) == "share" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return secretType(u.Elem(), depth+1, seen)
	case *types.Slice:
		return secretType(u.Elem(), depth+1, seen)
	case *types.Array:
		return secretType(u.Elem(), depth+1, seen)
	case *types.Map:
		return secretType(u.Elem(), depth+1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if secretType(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	}
	return false
}

// leakageSink returns the argument expressions of call that must never
// carry secret taint, plus a human name for the sink, or (nil, "") when
// the call is not a sink. The sanctioned share exit is the transport
// layer; everything stringly or observable is a sink.
func leakageSink(f *types.Func, call *ast.CallExpr) ([]ast.Expr, string) {
	if f == nil || f.Pkg() == nil {
		return nil, ""
	}
	base := pkgBase(f.Pkg().Path())
	name := f.Name()
	sig, _ := f.Type().(*types.Signature)
	method := sig != nil && sig.Recv() != nil
	label := base + "." + name
	if method {
		label = calleeName(f)
	}
	switch base {
	case "fmt":
		switch {
		case name == "Errorf":
			return call.Args, label
		case strings.HasPrefix(name, "Print"):
			return call.Args, label
		case strings.HasPrefix(name, "Fprint"):
			if len(call.Args) > 0 {
				return call.Args[1:], label
			}
		}
	case "errors":
		if name == "New" {
			return call.Args, label
		}
	case "log", "slog":
		// Package-level helpers and Logger methods alike.
		return call.Args, label
	case "telemetry":
		switch {
		case !method && (name == "String" || name == "Int"):
			if len(call.Args) > 1 {
				return call.Args[1:], label
			}
		case method && name == "SetAttr":
			if len(call.Args) > 1 {
				return call.Args[1:], label
			}
		case !method && (name == "Count" || name == "Observe"):
			if len(call.Args) > 1 {
				return call.Args[1:], label
			}
		}
	case "os":
		switch {
		case name == "WriteFile" && len(call.Args) > 1:
			return call.Args[1:2], label
		case method && (name == "Write" || name == "WriteString" || name == "WriteAt"):
			return call.Args, label
		}
	case "net":
		// Raw socket writes bypass the transport framing; shares leave
		// through transport.Conn only.
		if method && name == "Write" {
			return call.Args, label
		}
	}
	return nil, ""
}
