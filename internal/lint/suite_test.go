package lint_test

import (
	"testing"

	"aq2pnn/internal/lint"
)

func TestNormalizeImportPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"aq2pnn/internal/secure", "aq2pnn/internal/secure"},
		{"aq2pnn/internal/secure [aq2pnn/internal/secure.test]", "aq2pnn/internal/secure"},
		{"aq2pnn/internal/secure_test", "aq2pnn/internal/secure"},
		{"aq2pnn/internal/secure_test [aq2pnn/internal/secure.test]", "aq2pnn/internal/secure"},
		{"aq2pnn", "aq2pnn"},
	}
	for _, c := range cases {
		if got := lint.NormalizeImportPath(c.in); got != c.want {
			t.Errorf("NormalizeImportPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAnalyzersForScoping(t *testing.T) {
	names := func(path string) map[string]bool {
		out := make(map[string]bool)
		for _, a := range lint.AnalyzersFor(path, nil) {
			out[a.Name] = true
		}
		return out
	}

	secure := names("aq2pnn/internal/secure")
	for _, want := range []string{"ringmask", "prgonly", "sendcheck", "panicfree", "looppar"} {
		if !secure[want] {
			t.Errorf("internal/secure should be patrolled by %s", want)
		}
	}
	if secure["ctxplumb"] {
		t.Errorf("internal/secure should not be patrolled by ctxplumb")
	}

	// internal/prg is the one legitimate crypto/rand consumer.
	if names("aq2pnn/internal/prg")["prgonly"] {
		t.Errorf("internal/prg must be excluded from prgonly")
	}
	// internal/ring is the reduction layer; its arithmetic IS the masking.
	if names("aq2pnn/internal/ring")["ringmask"] {
		t.Errorf("internal/ring must be excluded from ringmask")
	}
	// The unscoped analyzers cover everything, including cmd packages.
	cmd := names("aq2pnn/cmd/aq2pnnlint")
	if !cmd["sendcheck"] || !cmd["looppar"] || !cmd["secretflow"] {
		t.Errorf("sendcheck/looppar/secretflow should patrol every package, got %v", cmd)
	}
	// The share-handling invariants follow shares into the binaries and
	// examples via the /... subtree entries.
	for _, path := range []string{"aq2pnn/cmd/party", "aq2pnn/examples/quickstart"} {
		got := names(path)
		for _, want := range []string{"ringmask", "prgonly", "alloccap", "secretflow"} {
			if !got[want] {
				t.Errorf("%s should be patrolled by %s", path, want)
			}
		}
	}
	// Transcript determinism is an engine-session concern only.
	if !names("aq2pnn/internal/engine")["detrand"] {
		t.Errorf("internal/engine should be patrolled by detrand")
	}
	if names("aq2pnn/internal/prg")["detrand"] || names("aq2pnn/cmd/party")["detrand"] {
		t.Errorf("detrand must stay scoped to the engine's session layer")
	}

	// Test-variant paths patrol as their source package.
	variant := names("aq2pnn/internal/secure [aq2pnn/internal/secure.test]")
	if !variant["ringmask"] {
		t.Errorf("test-augmented variant should inherit internal/secure's scope")
	}
}

func TestAnalyzersForSelection(t *testing.T) {
	got := lint.AnalyzersFor("aq2pnn/internal/secure", map[string]bool{"ringmask": true})
	if len(got) != 1 || got[0].Name != "ringmask" {
		t.Fatalf("explicit selection should filter to ringmask, got %v", got)
	}
}

func TestSuiteComplete(t *testing.T) {
	want := map[string]bool{
		"ringmask": true, "prgonly": true, "sendcheck": true,
		"ctxplumb": true, "panicfree": true, "looppar": true,
		"spanend": true, "alloccap": true,
		"secretflow": true, "detrand": true,
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for _, a := range suite {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
