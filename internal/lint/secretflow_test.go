package lint_test

import (
	"regexp"
	"testing"

	"aq2pnn/internal/lint"
	"aq2pnn/internal/lint/analysis"
	"aq2pnn/internal/lint/linttest"
)

func TestSecretFlow(t *testing.T) {
	linttest.Run(t, "testdata", "secretflow", lint.SecretFlow)
}

// TestSecretFlowCrossPackageNeedsFacts proves the leakCross* findings are
// interprocedural: they must vanish when dependency facts are withheld,
// while the purely local findings survive.
func TestSecretFlowCrossPackageNeedsFacts(t *testing.T) {
	with := linttest.Diagnostics(t, "testdata", "secretflow", lint.SecretFlow, true)
	without := linttest.Diagnostics(t, "testdata", "secretflow", lint.SecretFlow, false)

	crossSink := regexp.MustCompile(`secretflowdep\.Debug`)
	if countMatching(with, crossSink) == 0 {
		t.Errorf("with facts: no finding for the cross-package sink secretflowdep.Debug")
	}
	if n := countMatching(without, crossSink); n != 0 {
		t.Errorf("without facts: cross-package sink finding should vanish, got %d", n)
	}
	if len(without) >= len(with) {
		t.Errorf("without facts: want fewer findings than with facts, got %d >= %d",
			len(without), len(with))
	}
	local := regexp.MustCompile(`fmt\.Println`)
	if countMatching(without, local) == 0 {
		t.Errorf("without facts: local findings must survive, got none for fmt.Println")
	}
}

func countMatching(diags []analysis.Diagnostic, re *regexp.Regexp) int {
	n := 0
	for _, d := range diags {
		if re.MatchString(d.Message) {
			n++
		}
	}
	return n
}
