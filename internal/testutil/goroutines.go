// Package testutil holds shared test helpers. Concurrency-heavy tests —
// chaos sweeps, serving stacks, gateway fleets — all need the same
// goroutine-leak discipline; centralising it here keeps the check (and
// its grace window) identical everywhere instead of drifting across
// hand-rolled copies.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines fails t when the live goroutine count has not settled
// back to within two of base before a 10 s grace deadline, dumping every
// stack for diagnosis. Call it at the end of a test that spawned
// servers, sessions or fault injectors, with base captured by
// runtime.NumGoroutine() before the first spawn; the +2 slack absorbs
// runtime housekeeping goroutines that come and go on their own.
func CheckGoroutines(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d live, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}
