package a2b

import (
	"testing"
	"testing/quick"

	"aq2pnn/internal/ring"
)

func TestGroupsLayout(t *testing.T) {
	cases := []struct {
		bits uint
		want []uint
	}{
		{1, []uint{1}},
		{2, []uint{1, 1}},
		{3, []uint{1, 1, 1}},
		{8, []uint{1, 1, 2, 2, 2}},
		{9, []uint{1, 1, 2, 2, 2, 1}},
		{12, []uint{1, 1, 2, 2, 2, 2, 2}},
		{16, []uint{1, 1, 2, 2, 2, 2, 2, 2, 2}},
	}
	for _, c := range cases {
		got := Groups(c.bits)
		if len(got) != len(c.want) {
			t.Errorf("Groups(%d) = %v", c.bits, got)
			continue
		}
		var sum uint
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Groups(%d) = %v, want %v", c.bits, got, c.want)
			}
			sum += got[i]
		}
		if sum != c.bits {
			t.Errorf("Groups(%d) covers %d bits", c.bits, sum)
		}
	}
	// Paper: U = ⌊ℓ/2⌋+1 for even ℓ. INT8 → 5 groups.
	if U(8) != 5 || U(16) != 9 {
		t.Errorf("U(8)=%d U(16)=%d", U(8), U(16))
	}
}

func TestSplitPaperExample(t *testing.T) {
	// Fig. 6: INT8(−74) = 1011_0110 splits into 1 ‖ 0 ‖ 11 ‖ 01 ‖ 10.
	r := ring.New(8)
	got := Split(r, r.FromInt(-74))
	want := []uint64{1, 0, 3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Split(-74) = %v, want %v", got, want)
		}
	}
}

func TestSplitJoinRoundTripQuick(t *testing.T) {
	for _, bits := range []uint{3, 8, 9, 12, 16, 24} {
		r := ring.New(bits)
		f := func(raw uint64) bool {
			x := r.Reduce(raw)
			back, err := Join(r, Split(r, x))
			return err == nil && back == x
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("ℓ=%d: %v", bits, err)
		}
	}
}

func TestJoinRejectsBadInput(t *testing.T) {
	r := ring.New(8)
	if _, err := Join(r, []uint64{1, 1}); err == nil {
		t.Error("wrong group count accepted")
	}
	if _, err := Join(r, []uint64{2, 0, 0, 0, 0}); err == nil {
		t.Error("oversized group value accepted")
	}
}

func TestSplitLow(t *testing.T) {
	r := ring.New(8)
	// −74 = 1011_0110; low 7 bits = 011_0110 → groups [0, 11, 01, 10].
	got := SplitLow(r, r.FromInt(-74))
	want := []uint64{0, 3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("SplitLow = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitLow(-74) = %v, want %v", got, want)
		}
	}
	if len(LowGroups(8)) != 4 || LowGroups(1) != nil {
		t.Error("LowGroups widths wrong")
	}
	if SplitLow(ring.New(1), 1) != nil {
		t.Error("1-bit ring has no low bits")
	}
}

func TestSplitIsMSBFirst(t *testing.T) {
	r := ring.New(16)
	x := uint64(0x8001)
	g := Split(r, x)
	if g[0] != 1 {
		t.Error("first group must be the MSB")
	}
	if g[len(g)-1] != 1 {
		t.Error("last group must contain the LSB")
	}
	for i := 1; i < len(g)-1; i++ {
		if g[i] != 0 {
			t.Errorf("middle group %d nonzero", i)
		}
	}
}

func BenchmarkSplit16(b *testing.B) {
	r := ring.New(16)
	for i := 0; i < b.N; i++ {
		Split(r, uint64(i))
	}
}
