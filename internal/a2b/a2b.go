// Package a2b implements the Arithmetic-to-Binary share conversion machine
// (A2BM, Sec. 4.3.2): it splits an ℓ-bit ring element into U bit-groups,
// MSB first — x ← x₇ ‖ x₆ ‖ x₅x₄ ‖ x₃x₂ ‖ x₁x₀ for INT8 — so that each
// group can drive a (1, 2^su)-OT in the secure comparison machine. The two
// most significant groups are single bits ((1,2)-OT); the remaining groups
// are two bits wide ((1,4)-OT), with a trailing single-bit group when ℓ is
// odd.
package a2b

import (
	"fmt"

	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
)

// Conversion volume counters, pre-registered so the per-element hot path
// pays one branch disabled and one atomic add enabled (no name lookup).
var (
	splitCounter    = telemetry.Default().Counter("aq2pnn_a2b_splits_total")
	splitLowCounter = telemetry.Default().Counter("aq2pnn_a2b_splits_low_total")
)

// Groups returns the group bit-widths for an ℓ-bit value, MSB first.
// For even ℓ the layout is [1, 1, 2, 2, …, 2] with U = ℓ/2 + 1 groups,
// matching the paper's U = ⌊ℓ/2⌋ + 1.
func Groups(bits uint) []uint {
	if bits == 0 {
		//lint:allow panicfree config-time guard: every caller passes ring.Ring.Bits, which ring.New bounds to [1,MaxBits]
		panic("a2b: zero bit-length")
	}
	if bits == 1 {
		return []uint{1}
	}
	gs := []uint{1, 1}
	rem := bits - 2
	for rem >= 2 {
		gs = append(gs, 2)
		rem -= 2
	}
	if rem == 1 {
		gs = append(gs, 1)
	}
	return gs
}

// U returns the number of groups for an ℓ-bit value.
func U(bits uint) int { return len(Groups(bits)) }

// Split decomposes x (an element of r) into its group values, MSB first.
// Split(r, x)[0] is the sign bit.
func Split(r ring.Ring, x uint64) []uint64 {
	if telemetry.Enabled() {
		splitCounter.Inc()
	}
	gs := Groups(r.Bits)
	out := make([]uint64, len(gs))
	shift := r.Bits
	for i, w := range gs {
		shift -= w
		out[i] = (x >> shift) & ((1 << w) - 1)
	}
	return out
}

// Join is the inverse of Split.
func Join(r ring.Ring, groups []uint64) (uint64, error) {
	gs := Groups(r.Bits)
	if len(groups) != len(gs) {
		return 0, fmt.Errorf("a2b: %d groups for a %d-group layout", len(groups), len(gs))
	}
	var x uint64
	for i, w := range gs {
		if groups[i] >= 1<<w {
			return 0, fmt.Errorf("a2b: group %d value %d exceeds %d bits", i, groups[i], w)
		}
		//lint:allow ringmask bit-group reassembly: the groups are validated against their widths, so the shifts stay inside the ℓ-bit layout
		x = x<<w | groups[i]
	}
	return x, nil
}

// SplitLow decomposes the low ℓ−1 bits of x (the value with the sign bit
// stripped) into the full layout minus its sign group: [1, 2, 2, …] for
// even ℓ. These are the groups the secure comparison machine actually
// transfers; the sign bits are folded into the final XOR by quadrant
// detection.
func SplitLow(r ring.Ring, x uint64) []uint64 {
	if telemetry.Enabled() {
		splitLowCounter.Inc()
	}
	if r.Bits == 1 {
		return nil
	}
	return Split(r, x)[1:]
}

// LowGroups returns the group widths used by SplitLow.
func LowGroups(bits uint) []uint {
	if bits <= 1 {
		return nil
	}
	return Groups(bits)[1:]
}

// Arities returns the distinct OT arities (2^w per group width) of a group
// layout, in ascending order. The comparison machine batches one coalesced
// token slice per arity, so this is also the deterministic batch schedule
// both parties derive independently.
func Arities(widths []uint) []int {
	var out []int
	for _, w := range widths {
		n := 1 << w
		found := false
		for _, have := range out {
			if have == n {
				found = true
				break
			}
		}
		if !found {
			out = append(out, n)
		}
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
