package engine

import (
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

func TestReducedABReLURingCorrectAndCheaper(t *testing.T) {
	// The per-layer ring adaptation: ABReLU on a contracted 12-bit ring
	// inside a 24-bit carrier must (a) keep results correct as long as
	// activations fit the narrow ring and (b) reduce the online traffic.
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	full, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 6, ABReLUBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(24)})
	if d := maxAbsDiff(reduced.Logits, want); d > 8 {
		t.Errorf("reduced-ring logits %v vs plaintext %v", reduced.Logits, want)
	}
	// The ReLU node itself must be cheaper (comparison + mux at 12 bits
	// instead of 24, minus the zero-extension overhead).
	reluBytes := func(r *Result) uint64 {
		var b uint64
		for _, op := range r.PerOp {
			if op.Kind == "ABReLU" {
				b += op.Bytes
			}
		}
		return b
	}
	if rb, fb := reluBytes(reduced), reluBytes(full); rb >= fb {
		t.Errorf("reduced ABReLU bytes %d ≥ full %d", rb, fb)
	}
}

func TestReducedRingTooNarrowClips(t *testing.T) {
	// When activations exceed the narrow ring the contraction wraps and
	// results corrupt — the accuracy knob of Tables 7/8. 4 bits cannot
	// carry this model's activations.
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	good, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 7, ABReLUBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(bad.Logits, good.Logits) == 0 {
		t.Error("4-bit ABReLU ring did not perturb the output at all")
	}
}

func TestRevealClassOnly(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	x := input(64)
	full, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	classOnly, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 8, RevealClassOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if classOnly.Logits != nil {
		t.Error("class-only run leaked logits")
	}
	// The secure argmax ties toward the later index; recompute the
	// expectation with the same rule.
	want := 0
	for i, v := range full.Logits {
		if v >= full.Logits[want] {
			want = i
		}
	}
	if classOnly.Class != want {
		t.Errorf("secure class %d, want %d (logits %v)", classOnly.Class, want, full.Logits)
	}
	if full.Class != -1 {
		t.Error("logit-revealing run should report Class = -1")
	}
}

func TestSecureMatchesPlaintextProxyDistribution(t *testing.T) {
	// Methodological validation: the plaintext Ring executor (and thus
	// the StochasticRing accuracy proxy) must classify like the real
	// protocol. Over a batch of random inputs at an ample carrier, the
	// secure argmax and the plaintext argmax must agree nearly always
	// (the residue is the ±1 truncation noise on near-tie logits).
	m := tinyModel(nn.PoolMax)
	agree := 0
	const n = 20
	for k := 0; k < n; k++ {
		x := make([]int64, 64)
		for i := range x {
			x[i] = int64((i*7+k*29)%31) - 15
		}
		res, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: uint64(90 + k)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(24)})
		if err != nil {
			t.Fatal(err)
		}
		if nn.Argmax(res.Logits) == nn.Argmax(want) {
			agree++
		}
	}
	if agree < n-2 {
		t.Errorf("secure vs plaintext argmax agreement %d/%d", agree, n)
	}
	t.Logf("argmax agreement: %d/%d", agree, n)
}
