package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/transport"
)

// frameCapConn enforces the transport frame cap on an in-memory pipe the
// way netConn does on real TCP, so chunking tests fail exactly where the
// pre-chunking code failed in production.
type frameCapConn struct {
	transport.Conn
	frames int
}

func (c *frameCapConn) Send(p []byte) error {
	if len(p) > transport.MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame", len(p))
	}
	c.frames++
	return c.Conn.Send(p)
}

func TestSetupChunkingReassembly(t *testing.T) {
	saved := setupChunk
	setupChunk = 1 << 10
	defer func() { setupChunk = saved }()
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	in := wirePayload{
		W:    map[int][]uint64{0: make([]uint64, 9000), 3: {1, 2, 3}},
		Bias: map[int][]uint64{0: {7, 8}},
		X:    make([]uint64, 5000),
	}
	for i := range in.W[0] {
		in.W[0][i] = ^uint64(i)
	}
	fc := &frameCapConn{Conn: a}
	if err := sendShares(fc, &in, 8); err != nil {
		t.Fatal(err)
	}
	if fc.frames < 10 {
		t.Errorf("payload crossed in %d frames, expected many 1 KiB chunks", fc.frames)
	}
	out, err := recvShares(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.W[0]) != 9000 || out.W[0][77] != in.W[0][77] || len(out.X) != 5000 || out.Bias[0][1] != 8 {
		t.Error("chunked payload did not survive the round trip")
	}
}

// TestSetupPayloadBeyondMaxFrame is the regression test for the original
// bug: a setup payload whose gob encoding exceeds transport.MaxFrame
// (64 MiB). The old single-frame sendGob returned "frame exceeds
// MaxFrame" on the provider while the user hung in Recv; chunking must
// move it transparently with every frame under the cap.
func TestSetupPayloadBeyondMaxFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates several 70 MiB buffers")
	}
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	// At the full 8-byte element width, 9M elements encode to 72 MiB,
	// beyond the 64 MiB frame cap.
	big := make([]uint64, 9<<20)
	for i := range big {
		big[i] = ^uint64(0) - uint64(i)
	}
	fc := &frameCapConn{Conn: a}
	if err := sendShares(fc, &wirePayload{X: big}, 8); err != nil {
		t.Fatalf("sending >MaxFrame payload: %v", err)
	}
	if fc.frames < 3 { // header + at least two chunks
		t.Errorf("payload crossed in %d frames, expected header plus ≥2 chunks", fc.frames)
	}
	out, err := recvShares(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.X) != len(big) || out.X[0] != big[0] || out.X[len(big)-1] != big[len(big)-1] {
		t.Error("oversized payload corrupted in transit")
	}
}

func TestRecvSetupRejectsBadHeader(t *testing.T) {
	for _, tc := range []struct {
		name string
		hdr  []byte
	}{
		{"garbage frame", []byte("not a header")},
		{"zero total", func() []byte {
			p := make([]byte, setupHeaderLen)
			p[0], p[1], p[2], p[3] = 'A', 'Q', '2', 'G'
			p[4] = 1 // count 1, total 0
			return p
		}()},
		{"count exceeds total", func() []byte {
			p := make([]byte, setupHeaderLen)
			p[0], p[1], p[2], p[3] = 'A', 'Q', '2', 'G'
			p[4], p[5] = 0xFF, 0xFF // count 65535
			p[8] = 4                // total 4 bytes
			return p
		}()},
	} {
		a, b := transport.Pipe()
		if err := a.Send(tc.hdr); err != nil {
			t.Fatal(err)
		}
		if _, err := recvSetupBytes(b); err == nil {
			t.Errorf("%s: recvSetupBytes accepted a malformed header", tc.name)
		}
		a.Close()
		b.Close()
	}
}

func TestValidateWirePayload(t *testing.T) {
	m, err := nn.ByName("micro", nn.ZooConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r := ring.New(20)
	good := func() *wirePayload {
		ws0, _, err := SplitModel(prg.NewSeeded(3), m, r)
		if err != nil {
			t.Fatal(err)
		}
		return &wirePayload{W: ws0.W, Bias: ws0.Bias}
	}
	if err := validateWirePayload(m, good()); err != nil {
		t.Fatalf("well-formed payload rejected: %v", err)
	}
	linear := -1
	for i, node := range m.Nodes {
		if _, _, ok := LinearDims(node); ok {
			linear = i
			break
		}
	}
	if linear < 0 {
		t.Fatal("micro has no linear node")
	}
	cases := []struct {
		name   string
		mutate func(*wirePayload)
		node   int
		field  string
	}{
		{"truncated weights", func(wp *wirePayload) { wp.W[linear] = wp.W[linear][:len(wp.W[linear])-1] }, linear, "weights"},
		{"missing weights", func(wp *wirePayload) { delete(wp.W, linear) }, linear, "weights"},
		{"oversized bias", func(wp *wirePayload) { wp.Bias[linear] = append(wp.Bias[linear], 1) }, linear, "bias"},
		{"unknown node id", func(wp *wirePayload) { wp.W[len(m.Nodes)+7] = []uint64{1} }, len(m.Nodes) + 7, "weights"},
	}
	for _, tc := range cases {
		wp := good()
		tc.mutate(wp)
		err := validateWirePayload(m, wp)
		var pe *PayloadError
		if !errors.As(err, &pe) {
			t.Errorf("%s: got %v, want *PayloadError", tc.name, err)
			continue
		}
		if pe.Node != tc.node || pe.Field != tc.field {
			t.Errorf("%s: PayloadError{Node:%d, Field:%q}, want node %d field %q", tc.name, pe.Node, pe.Field, tc.node, tc.field)
		}
		if transport.IsTransient(err) {
			t.Errorf("%s: payload errors must be permanent, IsTransient said retryable", tc.name)
		}
	}
}

// TestRunUserRejectsMalformedPayload drives the validation through the
// real session path: a provider that sends a truncated weight share must
// produce a typed *PayloadError on the user before any share reaches the
// executor.
func TestRunUserRejectsMalformedPayload(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	r := ring.New(20)
	ws0, _, err := SplitModel(prg.NewSeeded(3), m, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws0.W {
		ws0.W[i] = ws0.W[i][:len(ws0.W[i])-1] // truncate one share
		break
	}
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	cfg := Options{CarrierBits: 20, Seed: 4}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Hand-rolled malicious provider: valid hello, bad payload.
		if err := exchangeHello(b, helloFor(roleProvider, m, r, cfg), 0); err != nil {
			return
		}
		_ = sendShares(b, &wirePayload{W: ws0.W, Bias: ws0.Bias}, r.Bytes())
	}()
	_, err = RunUser(a, m, input(64), cfg)
	wg.Wait()
	var pe *PayloadError
	if !errors.As(err, &pe) {
		t.Fatalf("RunUser returned %v, want *PayloadError", err)
	}
	if pe.Field != "weights" || !strings.Contains(err.Error(), "setup payload") {
		t.Errorf("unexpected payload error %v", err)
	}
}
