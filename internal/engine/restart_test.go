package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// restartableServer hosts ServeTCP runs that can be torn down and
// replaced wholesale — listener, registry and all — while a client keeps
// a session handle across the gap. Each Start is a cold process as far
// as the protocol can tell: a fresh Registry holds the model's weights
// but none of the parked session state.
type restartableServer struct {
	t   *testing.T
	m   *nn.Model
	cfg Options

	mu     sync.Mutex
	addr   string
	cancel context.CancelFunc
	done   chan error
}

func (rs *restartableServer) Start() {
	rs.t.Helper()
	l, err := transport.NewListener("127.0.0.1:0")
	if err != nil {
		rs.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeTCP(ctx, l, rs.m, rs.cfg, 0, nil) }()
	rs.mu.Lock()
	rs.addr, rs.cancel, rs.done = l.Addr(), cancel, done
	rs.mu.Unlock()
	rs.t.Cleanup(func() { l.Close() })
}

func (rs *restartableServer) Stop() {
	rs.t.Helper()
	rs.mu.Lock()
	cancel, done := rs.cancel, rs.done
	rs.mu.Unlock()
	cancel()
	if err := <-done; err != nil {
		rs.t.Errorf("serve returned %v on shutdown, want nil", err)
	}
}

func (rs *restartableServer) dial(ctx context.Context) (transport.Conn, error) {
	rs.mu.Lock()
	addr := rs.addr
	rs.mu.Unlock()
	return transport.DialContext(ctx, addr, 5*time.Second)
}

// TestSessionSurvivesProviderRestart kills the provider process outright
// — cold Registry, new listener, nothing parked — between inferences of
// a live session, and requires the client handle to heal through the
// attach-miss → fresh-setup fallback with logits bit-identical to an
// uninterrupted run. The token-adoption fallback is what makes the
// strong assertion possible: a fresh Registry mints the same first
// token, and the re-attach preserves it, so both runs derive identical
// transcripts end to end.
func TestSessionSurvivesProviderRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	cfg.Retries = 4
	cfg.RetryBase = 5 * time.Millisecond
	ctx := context.Background()
	const inferences = 3

	// Reference: one uninterrupted session against a fresh server.
	ref := &restartableServer{t: t, m: m, cfg: cfg}
	ref.Start()
	sRef, err := NewClient(ref.dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	refToken := sRef.Token()
	var want [inferences][]int64
	for i := 0; i < inferences; i++ {
		res, err := sRef.Infer(ctx, x)
		if err != nil {
			t.Fatalf("reference inference %d: %v", i, err)
		}
		want[i] = res.Logits
	}
	sRef.Close()
	ref.Stop()

	// Restart run: same model, fresh server; the provider dies wholesale
	// after inference 0 and a cold replacement takes over.
	tr := telemetry.New()
	ccfg := cfg
	ccfg.Trace = tr
	rs := &restartableServer{t: t, m: m, cfg: cfg}
	rs.Start()
	s, err := NewClient(rs.dial, ccfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s.Token() != refToken {
		t.Fatalf("fresh registries minted different first tokens %x vs %x — reference run invalid",
			refToken, s.Token())
	}
	res, err := s.Infer(ctx, x)
	if err != nil {
		t.Fatalf("inference 0: %v", err)
	}
	assertSameLogits(t, "inference 0", res.Logits, want[0])

	rs.Stop()
	rs.Start() // cold process: fresh Registry, new port, nothing parked

	for i := 1; i < inferences; i++ {
		res, err := s.Infer(ctx, x)
		if err != nil {
			t.Fatalf("inference %d after restart: %v", i, err)
		}
		assertSameLogits(t, "post-restart inference", res.Logits, want[i])
	}
	if s.Token() != refToken {
		t.Errorf("restart fallback re-minted the token: %x -> %x", refToken, s.Token())
	}
	// The heal is a fresh setup (the cold registry cannot re-attach):
	// exactly two shares exchanges on this client's trace.
	if n := countSpans(tr, "exchange.shares"); n != 2 {
		t.Errorf("exchange.shares spans = %d, want 2 (open + post-restart fallback)", n)
	}
	s.Close()
	rs.Stop()
}

func assertSameLogits(t *testing.T, what string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d logits, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: logits %v not bit-identical to fault-free run %v", what, got, want)
		}
	}
}
