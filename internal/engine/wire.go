package engine

import (
	"encoding/binary"
	"fmt"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/transport"
)

// Setup-phase wire helpers. The weight-share payload for a large model
// easily exceeds transport.MaxFrame (a ResNet50's shares encode to well
// over 64 MiB), and a single-frame send died with an opaque "frame exceeds
// max" on the provider while the user hung in Recv. The exchange is
// chunked: a fixed 16-byte header frame announces the chunk count and
// total payload size, followed by that many chunk frames, each opening
// with an 8-byte subheader (chunk index, chunk length). The receiver
// validates the header, charges the announced total against the session
// memory budget before buffering a byte, checks every chunk's index and
// length against the announcement (duplicates, reorderings and truncations
// are typed *PayloadError rejections, not silent concatenations),
// reassembles incrementally, and only then hands the bytes to the flat
// share codec (flatcodec.go).

// setupMagic opens every chunked-payload header frame ("AQ2G" — the
// historical tag, kept across the gob→flat codec switch so a mismatched
// header is reported as a framing error, not a version skew).
const setupMagic = 0x47325141

const setupHeaderLen = 16

// chunkHeaderLen is the per-chunk subheader: chunk index (uint32) and
// chunk payload length (uint32), little-endian.
const chunkHeaderLen = 8

// maxSetupPayload bounds the reassembled setup payload (4 GiB). A header
// announcing more than this is rejected before any allocation, so a
// corrupted or hostile header cannot OOM the receiver.
const maxSetupPayload = 4 << 30

// setupChunk is the per-frame budget for one chunk's payload (the
// subheader rides in the same frame, hence the headroom under the frame
// cap). It is a variable only so tests can shrink it to exercise
// multi-chunk reassembly without materialising multi-gigabyte payloads.
var setupChunk = transport.MaxFrame - chunkHeaderLen

// sendSetupBytes ships an already-encoded payload through the chunked
// setup exchange.
func sendSetupBytes(c transport.Conn, p []byte) error {
	count := (len(p) + setupChunk - 1) / setupChunk
	hdr := make([]byte, setupHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], setupMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(count))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(p)))
	if err := c.Send(hdr); err != nil {
		return err
	}
	idx := uint32(0)
	for off := 0; off < len(p); off += setupChunk {
		end := min(off+setupChunk, len(p))
		chunk := make([]byte, chunkHeaderLen+end-off)
		binary.LittleEndian.PutUint32(chunk[0:], idx)
		binary.LittleEndian.PutUint32(chunk[4:], uint32(end-off))
		copy(chunk[chunkHeaderLen:], p[off:end])
		if err := c.Send(chunk); err != nil {
			return err
		}
		idx++
	}
	return nil
}

// recvSetupBytes reassembles one chunked setup payload.
func recvSetupBytes(c transport.Conn) ([]byte, error) {
	hdr, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(hdr) != setupHeaderLen || binary.LittleEndian.Uint32(hdr) != setupMagic {
		return nil, wireError("setup header frame", len(hdr), setupHeaderLen)
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	total := binary.LittleEndian.Uint64(hdr[8:])
	if total == 0 || total > maxSetupPayload {
		return nil, fmt.Errorf("engine: setup header announces %d payload bytes, outside (0, %d]", total, maxSetupPayload)
	}
	if count == 0 || uint64(count) > total {
		return nil, fmt.Errorf("engine: setup header announces %d chunks for %d bytes", count, total)
	}
	// Charge the announced total against the session memory budget before
	// buffering a single payload byte: a hostile header claiming gigabytes
	// is rejected here, not discovered at OOM time.
	if err := transport.ReserveBudget(c, total); err != nil {
		return nil, fmt.Errorf("engine: setup payload: %w", err)
	}
	// The buffer grows with the chunks actually received rather than being
	// preallocated at the announced total, so a peer that announces big and
	// sends small never costs more memory than it ships.
	var buf []byte
	for i := uint32(0); i < count; i++ {
		p, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("engine: receiving setup chunk %d/%d: %w", i+1, count, err)
		}
		if len(p) < chunkHeaderLen {
			return nil, wireError(fmt.Sprintf("chunk %d frame length", i), len(p), chunkHeaderLen)
		}
		idx := binary.LittleEndian.Uint32(p[0:])
		clen := binary.LittleEndian.Uint32(p[4:])
		// Indices must arrive strictly in order: a duplicate, a reordering
		// or a skipped chunk would silently reassemble a corrupted payload.
		if idx != i {
			return nil, wireError("chunk index", int(idx), int(i))
		}
		body := p[chunkHeaderLen:]
		if int(clen) != len(body) {
			return nil, wireError(fmt.Sprintf("chunk %d length", i), len(body), int(clen))
		}
		if uint64(len(buf))+uint64(len(body)) > total {
			return nil, fmt.Errorf("engine: setup chunks overflow the announced %d bytes", total)
		}
		buf = append(buf, body...)
	}
	if uint64(len(buf)) != total {
		return nil, fmt.Errorf("engine: reassembled %d setup bytes, header announced %d", len(buf), total)
	}
	return buf, nil
}

// PayloadError reports a setup payload that disagrees with the public
// model architecture, or — when Wire is set — a setup exchange that
// violates the chunked wire framing or the flat codec's layout (bad
// header, out-of-order chunk index, truncated slab, oversize declared
// length). Node is the offending node id, or -1 for the shared input
// vector or a framing violation. Like *HandshakeError it is permanent: the
// peer is misconfigured (or malicious), and retrying cannot help.
type PayloadError struct {
	Node      int
	Field     string // "weights", "bias", "input" or the violated framing rule
	Got, Want int
	// Wire marks a framing violation of the chunked setup exchange rather
	// than a shape mismatch in a decoded payload.
	Wire bool
}

func (e *PayloadError) Error() string {
	if e.Wire {
		return fmt.Sprintf("engine: setup wire framing: %s is %d, want %d",
			e.Field, e.Got, e.Want)
	}
	if e.Node < 0 {
		return fmt.Sprintf("engine: setup payload: %s share has %d elements, want %d",
			e.Field, e.Got, e.Want)
	}
	return fmt.Sprintf("engine: setup payload: node %d %s share has %d elements, want %d",
		e.Node, e.Field, e.Got, e.Want)
}

// wireError builds the framing-violation variant of *PayloadError.
func wireError(field string, got, want int) *PayloadError {
	return &PayloadError{Node: -1, Field: field, Got: got, Want: want, Wire: true}
}

// validateWirePayload checks the provider's weight-share payload against
// the model's public shapes before any share reaches the executor. Every
// linear node must carry exactly K·N weight elements (GEMM layout) and a
// bias share iff the architecture declares one; entries for non-linear
// or out-of-range node ids are rejected. Without this check a
// short share surfaced later as an index panic deep inside the tiled
// GEMM — or worse, a silently wrong reveal.
func validateWirePayload(m *nn.Model, wp *wirePayload) error {
	for i, node := range m.Nodes {
		k, n, ok := LinearDims(node)
		if !ok {
			if len(wp.W[i]) != 0 {
				return &PayloadError{Node: i, Field: "weights", Got: len(wp.W[i]), Want: 0}
			}
			if len(wp.Bias[i]) != 0 {
				return &PayloadError{Node: i, Field: "bias", Got: len(wp.Bias[i]), Want: 0}
			}
			continue
		}
		if len(wp.W[i]) != k*n {
			return &PayloadError{Node: i, Field: "weights", Got: len(wp.W[i]), Want: k * n}
		}
		wantBias := 0
		if nodeHasBias(node) {
			wantBias = n
		}
		if len(wp.Bias[i]) != wantBias {
			return &PayloadError{Node: i, Field: "bias", Got: len(wp.Bias[i]), Want: wantBias}
		}
	}
	for id := range wp.W {
		if id < 0 || id >= len(m.Nodes) {
			return &PayloadError{Node: id, Field: "weights", Got: len(wp.W[id]), Want: 0}
		}
	}
	for id := range wp.Bias {
		if id < 0 || id >= len(m.Nodes) {
			return &PayloadError{Node: id, Field: "bias", Got: len(wp.Bias[id]), Want: 0}
		}
	}
	return nil
}

func nodeHasBias(node nn.Node) bool {
	switch op := node.Op.(type) {
	case *nn.Conv:
		return op.Bias != nil
	case *nn.FC:
		return op.Bias != nil
	}
	return false
}
