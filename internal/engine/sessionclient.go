package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/preproc"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/share"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// Client opens persistent inference sessions against a serving provider.
// It holds no connection itself — each OpenSession dials through the
// Redial, and a Session re-dials on faults — so one Client may open any
// number of concurrent sessions.
type Client struct {
	dial Redial
	cfg  Options
}

// NewClient builds a client around a dialer and the session options. The
// options must agree with the provider's (carrier, truncation, ABReLU
// width, seed): a disagreement fails every OpenSession handshake with the
// typed mismatch.
func NewClient(dial Redial, cfg Options) *Client {
	return &Client{dial: dial, cfg: cfg}
}

// Session is one persistent inference session: setup paid once at open,
// any number of Infer calls streaming over the prepared state, and
// transparent re-attachment through the resumption token when a transport
// fault cuts the connection mid-stream. A Session is not safe for
// concurrent use; open one per goroutine.
type Session struct {
	c      *Client
	m      *nn.Model
	r      ring.Ring
	conn   transport.Conn
	token  SessionToken
	st     *sessionState
	seq    uint32
	setup  transport.Stats
	closed bool
	// Preprocessing plane (BankDepth > 0): the fill substream, the kit
	// bank the background filler commits into, and the filler's exit
	// signal. All nil/zero when the plane is off.
	pconn    transport.Conn
	bank     *preproc.Bank
	fillDone chan struct{}
}

// OpenSession establishes a persistent session for the model: handshake,
// attach, weight-share exchange and the F openings, retried on transient
// failures per cfg.Retries. The returned session's Infer calls cost only
// online traffic.
func (c *Client) OpenSession(ctx context.Context, m *nn.Model) (*Session, error) {
	s := &Session{c: c, m: m, r: c.cfg.Carrier(m)}
	err := c.withRetry(ctx, func() error { return s.establish(ctx, false) })
	if err != nil {
		return nil, err
	}
	return s, nil
}

// withRetry runs op under the client's transient-retry budget, mirroring
// RunUserWithRetry's classification and backoff schedule.
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	attempts := int(c.cfg.Retries) + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			telemetry.Count("aq2pnn_session_retries_total", 1)
			t := time.NewTimer(transport.BackoffDelay(attempt-1, c.cfg.RetryBase, 0, c.cfg.Seed^retrySeedSalt))
			select {
			case <-ctx.Done():
				t.Stop()
				return errors.Join(ctx.Err(), lastErr)
			case <-t.C:
			}
		}
		err := op()
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return err
		}
		if !transport.IsTransient(err) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return fmt.Errorf("engine: session failed after %d attempts: %w", attempts, lastErr)
}

// establish dials and attaches: hello with the session flag, the
// attach/resume exchange, then — unless the provider re-attached our
// token — the full setup phase under the "user.session.open" root. On
// success s.conn is live with its stats reset, so the next inference's
// traffic is measured from zero.
func (s *Session) establish(ctx context.Context, resume bool) error {
	conn, err := s.c.dial(ctx)
	if err != nil {
		return err
	}
	cfg := s.c.cfg
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	h := helloFor(roleUser, s.m, s.r, cfg)
	h.Flags |= flagSession
	if cfg.preprocOn() {
		h.Flags |= flagPreproc
	}
	// The hello and the attach request are pipelined before waiting for
	// either answer. The provider consumes them in order regardless, and
	// a routing tier (internal/gateway) must see both frames before it
	// can pick a backend — the attach token is half the routing key, and
	// the gateway sends nothing of its own, so waiting for the provider
	// hello here would deadlock the intake.
	if err := conn.Send(h.encode()); err != nil {
		return fmt.Errorf("engine: sending session hello: %w", err)
	}
	if err := conn.Send(encodeAttach(attachReqMagic, attachFrame{flag: resume, token: s.token})); err != nil {
		return fmt.Errorf("engine: sending session attach: %w", err)
	}
	// The handshake deadline spans both answers: a peer (or proxy) that
	// accepts the frames then stalls fails fast, typed.
	if to := cfg.handshakeTimeout(); to > 0 && transport.SetRecvDeadline(conn, time.Now().Add(to)) {
		defer transport.SetRecvDeadline(conn, time.Time{})
	}
	p, err := conn.Recv()
	if err != nil {
		if errors.Is(err, transport.ErrIdleTimeout) {
			return &HandshakeError{Field: "hello read", Err: err}
		}
		return fmt.Errorf("engine: receiving session hello: %w", err)
	}
	peer, err := decodeHello(p)
	if err != nil {
		return err
	}
	if err := checkHello(h, peer); err != nil {
		return err
	}
	frame, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("engine: receiving session attach: %w", err)
	}
	resp, err := decodeAttach(attachRespMagic, frame)
	if err != nil {
		return err
	}
	s.token = resp.token
	// With the preprocessing plane negotiated, every frame past the attach
	// exchange rides the mux: the setup and steady-state protocol on the
	// main substream, the fill subprotocol on the preprocessing substream.
	// The provider installs its mux at the same point.
	raw := conn
	var pconn transport.Conn
	if cfg.preprocOn() {
		conn, pconn = transport.NewMux(conn)
	}
	if resp.flag && resume {
		// Re-attached: the provider restored our parked peer state, and
		// our own prepared state is still in hand — no setup traffic.
		telemetry.Count("aq2pnn_sessions_reattached_total", 1)
	} else {
		// Fresh setup (first open, or the token missed — expired, evicted
		// or a restarted provider — and the provider fell back to a fresh
		// session under a new token).
		nctx := NewNetworkContext(0, conn, cfg)
		var st *sessionState
		if err := tracePhase(cfg.Trace, nctx, "user.session.open", func() error {
			var wp *wirePayload
			if err := func() error {
				sp := nctx.Trace.Enter("exchange.shares")
				defer nctx.Trace.Exit(sp)
				var err error
				if wp, err = recvShares(conn, s.r.Bytes()); err != nil {
					return fmt.Errorf("engine: receiving weight shares: %w", err)
				}
				return validateWirePayload(s.m, wp)
			}(); err != nil {
				return err
			}
			var err error
			st, err = newSessionState(nctx, s.m, s.r, &WeightShares{W: wp.W, Bias: wp.Bias},
				sessionFamSeed(cfg, 0, s.token))
			return err
		}); err != nil {
			return err
		}
		s.st = st
	}
	// Setup traffic is measured on the raw dialed connection (it includes
	// the hello/attach frames and, under the mux, the stream prefixes);
	// online traffic is measured on the main substream, whose per-stream
	// accounting excludes the fill subprotocol running beside it.
	s.setup.Add(raw.Stats())
	raw.ResetStats()
	conn.ResetStats()
	s.conn = conn
	ok = true
	if pconn != nil {
		s.startFill(pconn)
	}
	return nil
}

// startFill launches the background filler over the preprocessing
// substream: a bank sized by the knobs, starting at the next seq this
// session will run, and a generator replaying the cold path's per-seq
// derivations (see preprocGen). The filler owns pconn; teardownPreproc
// joins it.
func (s *Session) startFill(pconn transport.Conn) {
	cfg := s.c.cfg
	pc := wrapPreprocConn(0, pconn)
	bank := preproc.NewBank(s.seq, cfg.BankDepth, cfg.fillWatermark())
	gen := preprocGen(pc, 0, cfg, s.r, preprocLayers(s.m), s.st.bShares, parallel.New(cfg.FillWorkers))
	done := make(chan struct{})
	s.pconn, s.bank, s.fillDone = pc, bank, done
	go func() {
		defer close(done)
		// A filler failure only degrades: it marks the bank dead, after
		// which every Take misses and the online path generates inline.
		_ = preproc.FillClient(preproc.Filler{
			Conn: pc, Trace: cfg.Trace, Root: "user.preproc.fill", Gen: gen,
		}, bank)
	}()
}

// teardownPreproc stops the fill plane and joins the filler: the bank
// stops handing out seqs, the substream closes (the close control lets
// the provider's filler exit cleanly; a filler blocked mid-exchange is
// unblocked by the peer's symmetric close or by closeMain below), and the
// filler goroutine is awaited — no leak under any exit path. closeMain
// additionally tears down the whole mux first, which force-unblocks a
// filler parked on a connection that will make no more progress (the
// fault path, where the main conn is being abandoned anyway).
func (s *Session) teardownPreproc(closeMain bool) {
	if s.fillDone == nil {
		return
	}
	s.bank.Stop()
	if closeMain && s.conn != nil {
		s.conn.Close()
	}
	s.pconn.Close()
	<-s.fillDone
	s.pconn, s.bank, s.fillDone = nil, nil, nil
}

// Infer runs one secure inference over the session. A transiently failed
// attempt re-dials and re-attaches through the resumption token (falling
// back to a fresh setup if the provider no longer holds the state) and
// replays the same seq; the derived transcript is deterministic, so the
// retried reveal is bit-identical to what the failed attempt would have
// produced. The result's Online stats are this inference's exact wire
// cost; its Setup stats are zero — session setup is reported once by
// SetupStats.
func (s *Session) Infer(ctx context.Context, x []int64) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("engine: session is closed")
	}
	if len(x) != s.m.InputShape().Numel() {
		return nil, fmt.Errorf("engine: input length %d, want %d", len(x), s.m.InputShape().Numel())
	}
	var res *Result
	err := s.c.withRetry(ctx, func() error {
		if s.conn == nil {
			if err := s.establish(ctx, s.st != nil); err != nil {
				return err
			}
		}
		r, err := s.inferAttempt(x)
		if err != nil {
			s.teardownPreproc(true)
			if s.conn != nil {
				s.conn.Close()
				s.conn = nil
			}
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.seq++
	return res, nil
}

// InferBatch streams a batch of inputs over the session, one inference
// each, stopping at the first failure.
func (s *Session) InferBatch(ctx context.Context, xs [][]int64) ([]*Result, error) {
	out := make([]*Result, 0, len(xs))
	for i, x := range xs {
		res, err := s.Infer(ctx, x)
		if err != nil {
			return out, fmt.Errorf("engine: batch input %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// inferAttempt runs inference s.seq over the live connection.
func (s *Session) inferAttempt(x []int64) (*Result, error) {
	cfg := s.c.cfg
	seq := s.seq
	conn := s.conn
	if cfg.SessionTimeout > 0 && transport.SetRecvDeadline(conn, time.Now().Add(cfg.SessionTimeout)) {
		defer transport.SetRecvDeadline(conn, time.Time{})
	}
	// The warm path consumes seq's precomputed kit; a missed Take (the
	// plane died, or was never on) degrades to inline generation with
	// byte-identical logits. The kit is taken before the infer root opens
	// so the fill wait, when any, is not attributed to the online span.
	var kit *preproc.Kit
	if s.bank != nil {
		kit = s.bank.Take(seq)
		if kit == nil {
			telemetry.Count("aq2pnn_preproc_starvation_total", 1)
		}
	}
	icfg := inferOptions(cfg, seq)
	nctx, p := s.st.bindInfer(conn, 0, cfg, seq, kit)
	var profile []OpProfile
	p.Profile = &profile
	var logits []int64
	class := -1
	err := func() error {
		sp := sessionInferRoot(cfg.Trace, conn, "user.session.infer", seq)
		defer sp.End()
		nctx.SetTrace(telemetry.NewScope(sp))
		var x0 []uint64
		if err := func() error {
			isp := nctx.Trace.Enter("input.share")
			defer nctx.Trace.Exit(isp)
			if err := conn.Send(encodeInferReq(seq, kit != nil)); err != nil {
				return fmt.Errorf("sending inference request: %w", err)
			}
			// The input split PRG derives from the per-inference seed, so a
			// replayed seq re-derives the identical shares — a requirement
			// for bit-identical resumption under faithful truncation, whose
			// ±1 LSB depends on the concrete share values.
			g := prg.NewSeeded(saltedSeed(icfg.Seed, 0x1272C0DE))
			var x1 []uint64
			x0, x1 = share.SplitVec(g, s.r, s.r.FromInts(x))
			if err := transport.SendElems(conn, s.r, x1); err != nil {
				return fmt.Errorf("sending input share: %w", err)
			}
			return nil
		}(); err != nil {
			return err
		}
		o, err := p.Infer(x0)
		if err != nil {
			return err
		}
		logits, class, err = revealResult(nctx, s.r, cfg, o)
		return err
	}()
	if err != nil {
		return nil, sessionError(seq, err)
	}
	online := conn.Stats()
	conn.ResetStats()
	return &Result{Logits: logits, Class: class, Online: online, PerOp: profile, Carrier: s.r}, nil
}

// Close ends the session: the end frame tells the provider to drop its
// state (a cleanly closed session is not resumable), then the connection
// closes. Closing an already-closed or faulted session is a no-op.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.conn == nil {
		return nil
	}
	// Stop the fill plane first: the filler drains its in-flight exchange
	// (or fails fast on the closed substream) before the end frame tells
	// the provider to drop the session.
	s.teardownPreproc(false)
	//lint:allow sendcheck best-effort end frame on close; a peer that already hung up simply misses it
	_ = s.conn.Send(encodeEnd())
	err := s.conn.Close()
	s.conn = nil
	return err
}

// WarmupPreproc blocks until the preprocessing bank holds at least n kits
// (clamped to the fill-ahead watermark) and reports whether the level was
// reached — false when the plane is off or died first. Benchmarks use it
// to move the initial fill wait off the measured online path.
func (s *Session) WarmupPreproc(n int) bool {
	if s.bank == nil {
		return false
	}
	return s.bank.WaitFill(n)
}

// DrainPreproc quiesces the fill plane without discarding what it
// produced: the filler is stopped and joined and the fill substream
// closes, but the kits already banked keep serving subsequent inferences,
// which degrade to inline generation — bit-identically — once the bank
// runs dry. Use it before a latency-critical stretch that should consume,
// not generate; benchmarks use it to measure warm online latency with no
// background fill competing for the same cores. Reports whether a live
// plane was drained. A faulted-and-resumed session restarts a fresh
// plane, discarding the drained bank's leftovers.
func (s *Session) DrainPreproc() bool {
	if s.fillDone == nil {
		return false
	}
	// teardownPreproc forgets the bank along with the filler; a drain
	// keeps it, stopped, so Take serves the banked kits until they run out.
	bank := s.bank
	s.teardownPreproc(false)
	s.bank = bank
	return true
}

// SetupStats reports the session's cumulative setup traffic: the open
// (handshake, attach, weight shares, F openings) plus any re-attach or
// re-setup exchanges after faults. Steady-state inferences add nothing
// here — their cost is each Result's Online stats.
func (s *Session) SetupStats() transport.Stats { return s.setup }

// Token returns the session's resumption token (the provider-issued
// identity its parked state is keyed by).
func (s *Session) Token() SessionToken { return s.token }
