package engine

import (
	"sync"
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/transport"
)

// TestMicroOnlineRoundsPinned pins the online round count of a cold micro
// inference under the coalesced comparison protocol. Rounds are counted by
// transport.Stats as send→recv direction changes, so this is the number of
// network latencies a WAN deployment pays per inference.
//
// The audit behind the pinned figures (16-bit carrier):
//
//   - Each linear layer (conv, FC) costs one E-matrix exchange round plus a
//     faithful truncation: one coalesced SCM round (ALL per-group token
//     transfers across the whole tensor ride a single ds-recv/cts-send
//     pair) and one B2A round.
//   - ABReLU costs one coalesced MSB round plus two Mux rounds.
//   - MaxPool runs its comparison tree with one ABReLU per stage; the 2×2
//     window is 2 stages plus the shared truncation of the preceding conv's
//     rescale — 4 rounds total here.
//   - The final logit reveal is 1 round.
//
// A cold run additionally pays OT-extension refill rounds the first time a
// pool of correlations runs dry (the conv1 figure includes 2 such refills);
// the session/bank path moves those off the online clock, which is why the
// warm BENCH figure is lower than this cold pin. If coalescing ever
// regresses to per-group exchanges, these counts jump by the group count
// (9 groups at 16 bits) and this test fails.
func TestMicroOnlineRoundsPinned(t *testing.T) {
	m, err := nn.ByName("micro", nn.ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	cfg := Options{CarrierBits: 16, Seed: 9, Group: ot.TestGroup()}
	x := make([]int64, m.InputShape().Numel())
	for i := range x {
		x[i] = int64((i*13)%23) - 11
	}
	var res *Result
	var errU, errP error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); res, errU = RunUser(a, m, x, cfg) }()
	go func() { defer wg.Done(); errP = RunProvider(b, m, cfg) }()
	wg.Wait()
	if errU != nil {
		t.Fatal(errU)
	}
	if errP != nil {
		t.Fatal(errP)
	}

	wantPerOp := map[string]uint64{
		"conv1":   5, // exchange + cmp + B2A, plus 2 cold OT-extension refills
		"relu1":   3, // MSB + 2×Mux
		"pool1":   4, // 2 tree stages of (MSB + Mux) sharing coalesced flushes
		"flatten": 0, // local relabelling, no traffic
		"fc":      3, // exchange + cmp + B2A
	}
	for _, op := range res.PerOp {
		want, ok := wantPerOp[op.Name]
		if !ok {
			t.Fatalf("unexpected op %q in per-op stats", op.Name)
		}
		if op.Rounds != want {
			t.Errorf("op %s: %d rounds, want %d (coalescing regression?)", op.Name, op.Rounds, want)
		}
	}
	// Per-op rounds plus the single logit-reveal round.
	const wantTotal = 16
	if res.Online.Rounds != wantTotal {
		t.Errorf("online total %d rounds, want %d", res.Online.Rounds, wantTotal)
	}
}
