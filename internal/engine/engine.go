// Package engine executes a quantized nn.Model under the AQ2PNN 2PC
// protocol: it secret-shares the model and input, walks the graph with the
// secure operators (AS-GEMM convolutions, 2PC-BNReQ, ABReLU, 2PC pooling)
// on a carrier ring sized by the adaptive quantization rule, and profiles
// per-operator communication — the measured quantities behind Tables 4, 5,
// 7 and 8.
package engine

import (
	"fmt"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/secure"
	"aq2pnn/internal/share"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/tensor"
	"aq2pnn/internal/transport"
	"aq2pnn/internal/triple"
)

// Margin is the paper's carrier headroom: an ℓ-bit plaintext model rides a
// 2^(ℓ+4) ring (Sec. 5.1).
const Margin = 4

// Options controls a secure inference run — local, batched or networked.
// The zero value is a working configuration (carrier from the model,
// faithful truncation, full-width ReLU, logit reveal, one worker per CPU).
type Options struct {
	// CarrierBits is the ring width ℓ_c; 0 selects InBits+Margin.
	CarrierBits uint
	// Seed drives all protocol randomness for reproducible experiments.
	Seed uint64
	// LocalTrunc selects the paper's zero-communication local truncation
	// for BNReQ/AvgPool instead of the faithful SCM-based truncation; see
	// internal/secure/trunc.go and EXPERIMENTS.md for the ablation.
	LocalTrunc bool
	// ABReLUBits, when non-zero and smaller than the carrier, contracts
	// the shares onto a narrower ring for every ReLU (the "output bits
	// sent to the ABReLU operator" of Tables 7/8) and zero-extends the
	// non-negative result back — the per-layer ring adaptation of Sec. 5.
	ABReLUBits uint
	// RevealClassOnly replaces the logit reveal with a secure argmax
	// tournament: the user learns only the predicted class index.
	RevealClassOnly bool
	// Workers caps this process's local compute parallelism (GEMM rows,
	// im2col patches, SCM token matrices, batch pipelining). 0 uses
	// GOMAXPROCS. Results are bit-identical at every setting.
	Workers uint
	// Group selects the OT-flow group for networked runs. The zero value
	// uses the production 512-bit prime; demos may pass ot.TestGroup() for
	// speed (explicitly NOT cryptographically strong). Ignored by local
	// dealer-backed runs.
	Group ot.Group
	// NoExtension disables IKNP OT extension on networked runs and
	// harvests every correlation through base OTs (slow; for tests and
	// comparisons). Ignored by local runs.
	NoExtension bool
	// Trace collects hierarchical telemetry spans (per-phase, per-layer,
	// per-protocol-op) with exact per-span communication attribution; nil
	// (the default) disables tracing at one branch per instrumented call.
	// Tracing never touches protocol bytes: outputs are bit-identical with
	// it on or off, at every Workers setting.
	Trace *telemetry.Tracer
	// Retries is how many additional attempts RunUserWithRetry makes
	// after a transiently failed session (0 = single attempt). Every
	// retry re-dials and replays the protocol from scratch; with a fixed
	// Seed the transcript is deterministic, so a retried session reveals
	// logits bit-identical to what the failed attempt would have produced.
	Retries uint
	// RetryBase is the first retry's backoff delay (default 100ms). It
	// doubles per attempt, capped at 2s, with deterministic seed-derived
	// jitter (see transport.BackoffDelay).
	RetryBase time.Duration
	// SessionTimeout bounds one session attempt end to end — on the user
	// each RunUserWithRetry attempt, on the provider each ServeTCP
	// session. 0 disables the deadline.
	SessionTimeout time.Duration
	// DrainGrace is how long ServeTCP lets in-flight sessions keep
	// running after ctx is cancelled before force-closing their
	// connections. 0 keeps the historical behaviour: cancellation tears
	// sessions down immediately.
	DrainGrace time.Duration
	// MaxConcurrentSessions caps how many sessions ServeTCP runs at
	// once. Connections beyond the cap are shed with a typed busy reject
	// (transport.ErrServerBusy — transient, so retrying clients back off
	// and re-attempt) instead of being queued; 0 admits everything.
	MaxConcurrentSessions int
	// IdleTimeout is the longest a networked peer may stall a single
	// Send/Recv (re-armed per transferred segment, so bulk transfers are
	// bounded by progress, not total size). It kills slow-loris peers on
	// the serving path; 0 disables it. Applied by ServeTCP to every
	// accepted connection.
	IdleTimeout time.Duration
	// MemBudget caps the cumulative bytes one session's peer may declare
	// for this endpoint to receive, charged before any allocation. Every
	// frame payload counts once, as does the announced total of a chunked
	// setup payload (the reassembly buffer), so budget roughly 2× the
	// expected setup volume plus protocol traffic. Exceeding it aborts
	// the session with a typed *transport.BudgetError; 0 disables it.
	MemBudget uint64
	// HandshakeTimeout bounds the hello read at session start on
	// deadline-capable transports: 0 selects DefaultHandshakeTimeout,
	// negative disables the bound entirely.
	HandshakeTimeout time.Duration
	// SessionCache caps how many detached persistent sessions a serving
	// Registry keeps resumable (prepared state parked after a client's
	// transport fault, waiting for a token re-attach). 0 selects
	// DefaultSessionCache; negative disables resumption caching.
	SessionCache int
	// BankDepth enables the asynchronous preprocessing plane on persistent
	// sessions: a dedicated fill stream is multiplexed onto the session
	// connection and background fillers pre-generate up to BankDepth
	// inference kits (one triple per linear layer each) ahead of demand, so
	// warm steady-state inferences run no triple generation online. 0 (the
	// default) disables the plane; values above preproc.MaxDepth clamp.
	// Warm and cold inferences reveal byte-identical logits.
	BankDepth int
	// FillWorkers caps the filler's local compute parallelism (its Gilboa
	// GEMMs), independently of Workers so background fill does not steal
	// the online path's CPUs. 0 uses GOMAXPROCS. Ignored when BankDepth
	// is 0.
	FillWorkers uint
	// FillWatermark is how many inferences ahead of consumption the filler
	// runs (the fill-ahead watermark). 0 or anything outside [1, BankDepth]
	// selects BankDepth. Ignored when BankDepth is 0.
	FillWatermark uint
}

// DefaultHandshakeTimeout bounds the hello read when
// Options.HandshakeTimeout is zero: generous against slow networks,
// finite against peers that connect and never speak.
const DefaultHandshakeTimeout = 30 * time.Second

// handshakeTimeout resolves the configured hello deadline.
func (c Options) handshakeTimeout() time.Duration {
	switch {
	case c.HandshakeTimeout < 0:
		return 0
	case c.HandshakeTimeout == 0:
		return DefaultHandshakeTimeout
	}
	return c.HandshakeTimeout
}

// Pool resolves the compute pool for the Workers setting.
func (c Options) Pool() *parallel.Pool { return parallel.New(c.Workers) }

// Carrier resolves the ring for a model.
func (c Options) Carrier(m *nn.Model) ring.Ring {
	bits := c.CarrierBits
	if bits == 0 {
		bits = m.InBits + Margin
	}
	return ring.New(bits)
}

// OpProfile is one node's measured cost at party i's endpoint.
type OpProfile struct {
	Name     string
	Kind     string
	Elems    int // output elements
	Bytes    uint64
	Rounds   uint64
	HostTime time.Duration
}

// Result is the outcome of a secure inference.
type Result struct {
	// Logits are the revealed outputs (nil under RevealClassOnly).
	Logits []int64
	// Class is the securely computed argmax when RevealClassOnly is set
	// (−1 otherwise; derive it from Logits in that case).
	Class int
	// Setup is party i's traffic during weight preparation (F openings).
	Setup transport.Stats
	// Online is party i's traffic during inference.
	Online transport.Stats
	// PerOp profiles each node (party i's endpoint).
	PerOp []OpProfile
	// Carrier is the ring the inference ran on.
	Carrier ring.Ring
}

// WeightShares holds one party's share of every parameterized node.
type WeightShares struct {
	W    map[int][]uint64 // node id → weight share
	Bias map[int][]uint64 // node id → bias share
}

// SplitModel secret-shares all weights and biases of a model onto the
// ring. In deployment the model provider derives party i's share from a
// common seed (zero communication); here the dealer PRG plays that role.
func SplitModel(g *prg.PRG, m *nn.Model, r ring.Ring) (p0, p1 *WeightShares, err error) {
	p0 = &WeightShares{W: map[int][]uint64{}, Bias: map[int][]uint64{}}
	p1 = &WeightShares{W: map[int][]uint64{}, Bias: map[int][]uint64{}}
	for i, node := range m.Nodes {
		var w, bias []int64
		switch op := node.Op.(type) {
		case *nn.Conv:
			if op.Skeleton() {
				return nil, nil, fmt.Errorf("engine: node %d is a skeleton Conv", i)
			}
			// GEMM layout: (PatchLen × OutC), transposed from storage.
			pl := op.Geom.PatchLen()
			w = make([]int64, len(op.W))
			for oc := 0; oc < op.Geom.OutC; oc++ {
				for k := 0; k < pl; k++ {
					w[k*op.Geom.OutC+oc] = op.W[oc*pl+k]
				}
			}
			bias = op.Bias
		case *nn.FC:
			if op.Skeleton() {
				return nil, nil, fmt.Errorf("engine: node %d is a skeleton FC", i)
			}
			w = make([]int64, len(op.W))
			for o := 0; o < op.Out; o++ {
				for k := 0; k < op.In; k++ {
					w[k*op.Out+o] = op.W[o*op.In+k]
				}
			}
			bias = op.Bias
		default:
			continue
		}
		w0, w1 := share.SplitVec(g, r, r.FromInts(w))
		p0.W[i], p1.W[i] = w0, w1
		if bias != nil {
			b0, b1 := share.SplitVec(g, r, r.FromInts(bias))
			p0.Bias[i], p1.Bias[i] = b0, b1
		}
	}
	return p0, p1, nil
}

// Party is one side's compiled executor.
type Party struct {
	Ctx     *secure.Context
	Model   *nn.Model
	Weights *WeightShares
	R       ring.Ring
	// ReLURing, when a valid ring narrower than R, hosts the ABReLU
	// evaluations (shares are contracted before and zero-extended after).
	ReLURing ring.Ring
	// Pool distributes this party's local tensor work (im2col, activation
	// transpose); nil runs serially. The context carries its own pool for
	// the secure operators.
	Pool *parallel.Pool
	// Families optionally overrides the triple family per linear node
	// (node id → family); Prepare falls back to the context's NewFamily
	// provider for nodes not present.
	Families map[int]triple.Family
	linears  map[int]*secure.Linear
	// slab recycles the im2col lowering buffers across layers and
	// inferences — their lifetime ends inside each conv call.
	slab parallel.Slab
	// Profile receives per-node cost entries when non-nil (party i only,
	// by convention).
	Profile *[]OpProfile
}

// LinearDims reports the GEMM shape (K×N) of a linear node, or ok=false
// for non-linear nodes.
func LinearDims(node nn.Node) (k, n int, ok bool) {
	switch op := node.Op.(type) {
	case *nn.Conv:
		return op.Geom.PatchLen(), op.Geom.OutC, true
	case *nn.FC:
		return op.In, op.Out, true
	}
	return 0, 0, false
}

// Prepare opens the weight masks F for every linear node (the setup
// phase; its communication is reported separately from the online phase).
// When Families supplies a node's triple family it is used directly;
// otherwise the context's NewFamily provider is consulted.
func (p *Party) Prepare() error {
	p.linears = map[int]*secure.Linear{}
	for i, node := range p.Model.Nodes {
		k, n, ok := LinearDims(node)
		if !ok {
			continue
		}
		var l *secure.Linear
		var err error
		if fam := p.Families[i]; fam != nil {
			l, err = p.Ctx.PrepareLinearWith(p.R, p.Weights.W[i], k, n, fam)
		} else {
			l, err = p.Ctx.PrepareLinear(fmt.Sprintf("n%d", i), p.R, p.Weights.W[i], k, n)
		}
		if err != nil {
			return fmt.Errorf("engine: prepare node %d: %w", i, err)
		}
		p.linears[i] = l
	}
	return nil
}

// PreparedWeights exports every prepared layer's connection-independent
// product (opened F, precombined W_p − p·F). Call after Prepare.
func (p *Party) PreparedWeights() map[int]*secure.Prepared {
	out := map[int]*secure.Prepared{}
	for i, l := range p.linears {
		out[i] = l.Export()
	}
	return out
}

// Bind installs already-prepared weights with fresh per-node triple
// families, skipping the setup-phase F openings entirely — the batch
// executor pays preparation once and binds it into each image's session.
func (p *Party) Bind(preps map[int]*secure.Prepared, fams map[int]triple.Family) {
	p.linears = map[int]*secure.Linear{}
	for i, prep := range preps {
		p.linears[i] = p.Ctx.BindLinear(prep, fams[i])
	}
}

// Infer runs the secure forward pass on this party's input share and
// returns this party's output share.
func (p *Party) Infer(x []uint64) ([]uint64, error) {
	if p.linears == nil {
		if err := p.Prepare(); err != nil {
			return nil, err
		}
	}
	shapes, err := p.Model.Shapes()
	if err != nil {
		return nil, err
	}
	r := p.R
	vals := make([][]uint64, len(p.Model.Nodes))
	get := func(idx int) []uint64 {
		if idx == -1 {
			return x
		}
		return vals[idx]
	}
	for i, node := range p.Model.Nodes {
		start := time.Now()
		before := p.Ctx.Conn.Stats()
		// One span per layer; it is exited before the error check below, so
		// failed layers are recorded too. The secure operators nest their
		// own spans under it through the context's scope.
		sp := p.Ctx.Trace.Enter("layer."+node.Name, telemetry.WithAttrs(
			telemetry.String("kind", node.Op.Kind()),
			telemetry.Int("elems", int64(shapes[i].Numel()))))
		var out []uint64
		switch op := node.Op.(type) {
		case *nn.Conv:
			out, err = p.runConv(i, op, get(node.Inputs[0]))
		case *nn.FC:
			out, err = p.runFC(i, op, get(node.Inputs[0]))
		case nn.ReLU:
			out, err = p.runReLU(get(node.Inputs[0]))
		case *nn.MaxPool:
			// The tree tournament halves the round count at identical
			// traffic (see secure.MaxPoolTree).
			out, err = p.Ctx.MaxPoolTree(r, get(node.Inputs[0]), op.Geom)
		case *nn.AvgPool:
			out, err = p.Ctx.AvgPool(r, get(node.Inputs[0]), op.Geom)
		case nn.Add:
			a := get(node.Inputs[0])
			b := get(node.Inputs[1])
			out = make([]uint64, len(a))
			r.AddVec(out, a, b)
		case nn.Flatten:
			out = append([]uint64(nil), get(node.Inputs[0])...)
		default:
			err = fmt.Errorf("engine: unknown op %T", node.Op)
		}
		p.Ctx.Trace.Exit(sp)
		if err != nil {
			return nil, fmt.Errorf("engine: node %d (%s): %w", i, node.Op.Kind(), err)
		}
		vals[i] = out
		telemetry.Count("aq2pnn_layers_total", 1)
		telemetry.Observe("aq2pnn_layer_seconds", time.Since(start).Seconds(), telemetry.DurationBuckets)
		telemetry.Observe("aq2pnn_layer_ring_bits", float64(r.Bits), telemetry.BitBuckets)
		if p.Profile != nil {
			d := p.Ctx.Conn.Stats().Sub(before)
			*p.Profile = append(*p.Profile, OpProfile{
				Name:     node.Name,
				Kind:     node.Op.Kind(),
				Elems:    shapes[i].Numel(),
				Bytes:    d.TotalBytes(),
				Rounds:   d.Rounds,
				HostTime: time.Since(start),
			})
		}
	}
	return vals[len(vals)-1], nil
}

// runReLU evaluates ABReLU. With a narrower ReLU ring configured, only
// the sign computation runs on the contracted shares ("the output bits
// sent to the ABReLU operator", Tables 7/8): contraction is local and
// exact whenever the activation fits the narrow ring (clipping beyond it
// is the sweep's accuracy knob), the A2BM/SCM token traffic scales with
// the reduced width, and the multiplexer keeps operating on the carrier
// shares, so no ring extension is needed afterwards.
func (p *Party) runReLU(in []uint64) ([]uint64, error) {
	if p.ReLURing.Bits == 0 || p.ReLURing.Bits >= p.R.Bits {
		return p.Ctx.ABReLU(p.R, in)
	}
	small := append([]uint64(nil), in...)
	share.ContractVec(p.R, p.ReLURing, small)
	msb, err := p.Ctx.MSBShares(p.ReLURing, small)
	if err != nil {
		return nil, err
	}
	if p.Ctx.Party == share.PartyI {
		for k := range msb {
			msb[k] ^= 1
		}
	}
	return p.Ctx.Mux(p.R, in, msb)
}

func (p *Party) runConv(i int, op *nn.Conv, in []uint64) ([]uint64, error) {
	g := op.Geom
	cols := p.slab.Get(g.Patches() * g.PatchLen())
	tensor.Im2ColIntParInto(p.Pool, cols, in, g)
	acc, err := p.linears[i].Mul(cols, g.Patches()) // (patches × OutC)
	p.slab.Put(cols)
	if err != nil {
		return nil, err
	}
	// Transpose to (OutC × patches) to match the NCHW activation layout.
	patches := g.Patches()
	out := make([]uint64, len(acc))
	p.Pool.Blocks(patches, func(lo, hi int) {
		for pt := lo; pt < hi; pt++ {
			for oc := 0; oc < g.OutC; oc++ {
				out[oc*patches+pt] = acc[pt*g.OutC+oc]
			}
		}
	})
	if err := p.Ctx.BNReQ(p.R, out, g.OutC, patches, p.Weights.Bias[i], op.Im, op.Ie); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Party) runFC(i int, op *nn.FC, in []uint64) ([]uint64, error) {
	out, err := p.linears[i].Mul(in, 1) // (1 × Out)
	if err != nil {
		return nil, err
	}
	if err := p.Ctx.BNReQ(p.R, out, op.Out, 1, p.Weights.Bias[i], op.Im, op.Ie); err != nil {
		return nil, err
	}
	return out, nil
}

// RunLocal performs a complete in-process secure inference: shares the
// model and input, prepares both parties, executes the protocol and
// reveals the logits (to party i, the user).
func RunLocal(m *nn.Model, x []int64, cfg Options) (*Result, error) {
	r := cfg.Carrier(m)
	if len(x) != m.InputShape().Numel() {
		return nil, fmt.Errorf("engine: input length %d, want %d", len(x), m.InputShape().Numel())
	}
	sess := secure.NewLocalSession(saltedSeed(cfg.Seed, 0x5E5510CA))
	defer sess.Close()
	sess.P0.LocalTrunc = cfg.LocalTrunc
	sess.P1.LocalTrunc = cfg.LocalTrunc
	pool := cfg.Pool()
	sess.P0.Pool = pool
	sess.P1.Pool = pool
	g := prg.NewSeeded(saltedSeed(cfg.Seed, 0xA92B11E5D00DF00D))
	ws0, ws1, err := SplitModel(g, m, r)
	if err != nil {
		return nil, err
	}
	x0, x1 := share.SplitVec(g, r, r.FromInts(x))

	var reluRing ring.Ring
	if cfg.ABReLUBits != 0 && cfg.ABReLUBits < r.Bits {
		reluRing = ring.New(cfg.ABReLUBits)
	}
	var profile []OpProfile
	party0 := &Party{Ctx: sess.P0, Model: m, Weights: ws0, R: r, ReLURing: reluRing, Pool: pool, Profile: &profile}
	party1 := &Party{Ctx: sess.P1, Model: m, Weights: ws1, R: r, ReLURing: reluRing, Pool: pool}

	// Setup phase: weight preparation (F openings). Each party's flow gets
	// its own root span (and scope), since the two run concurrently.
	sp0 := cfg.Trace.Root("p0.setup", telemetry.WithConn(sess.P0.Conn))
	sp1 := cfg.Trace.Root("p1.setup", telemetry.WithConn(sess.P1.Conn))
	sess.P0.SetTrace(telemetry.NewScope(sp0))
	sess.P1.SetTrace(telemetry.NewScope(sp1))
	err = sess.Run(
		func(*secure.Context) error { return party0.Prepare() },
		func(*secure.Context) error { return party1.Prepare() },
	)
	sp0.End()
	sp1.End()
	if err != nil {
		return nil, err
	}
	setup, _ := sess.Stats()
	sess.ResetStats()

	// Online phase: fresh per-party root spans, created after the stats
	// reset so their communication deltas equal the online Stats exactly.
	in0 := cfg.Trace.Root("p0.infer", telemetry.WithConn(sess.P0.Conn),
		telemetry.WithAttrs(telemetry.Int("carrier_bits", int64(r.Bits))))
	in1 := cfg.Trace.Root("p1.infer", telemetry.WithConn(sess.P1.Conn),
		telemetry.WithAttrs(telemetry.Int("carrier_bits", int64(r.Bits))))
	sess.P0.SetTrace(telemetry.NewScope(in0))
	sess.P1.SetTrace(telemetry.NewScope(in1))
	var logits []int64
	class := -1
	finish := func(c *secure.Context, o []uint64) error {
		sp := c.Trace.Enter("reveal")
		defer c.Trace.Exit(sp)
		if cfg.RevealClassOnly {
			idx, err := c.ArgMaxBatched(r, o)
			if err != nil {
				return err
			}
			opened, err := c.RevealTo(r, share.PartyI, []uint64{idx})
			if err != nil {
				return err
			}
			if c.Party == share.PartyI {
				class = int(r.ToInt(opened[0]))
			}
			return nil
		}
		opened, err := c.RevealTo(r, share.PartyI, o)
		if err != nil {
			return err
		}
		if c.Party == share.PartyI {
			logits = r.ToInts(opened)
		}
		return nil
	}
	err = sess.Run(
		func(c *secure.Context) error {
			o, err := party0.Infer(x0)
			if err != nil {
				return err
			}
			return finish(c, o)
		},
		func(c *secure.Context) error {
			o, err := party1.Infer(x1)
			if err != nil {
				return err
			}
			return finish(c, o)
		},
	)
	in0.End()
	in1.End()
	if err != nil {
		return nil, err
	}
	online, _ := sess.Stats()
	return &Result{Logits: logits, Class: class, Setup: setup, Online: online, PerOp: profile, Carrier: r}, nil
}
