package engine

import (
	"fmt"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/preproc"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
	"aq2pnn/internal/triple"
)

// Engine glue for the asynchronous preprocessing plane (internal/preproc):
// a persistent session opened with BankDepth > 0 multiplexes its connection
// into a main stream and a fill stream, and both parties run a background
// filler that pre-generates each upcoming seq's triple kit over the latter.
// Everything here is a deterministic function of (cfg.Seed, seq), which is
// what makes a warm (bank-served) inference reveal logits byte-identical to
// a cold (inline-generation) one.

// preprocSeedSalt decorrelates the fill stream's per-seq OT endpoint
// randomness (base-OT keys, IKNP matrices) from every online stream. The
// endpoint internals never reach the delivered triple shares — those come
// from the inferFamSeed stream shared with the cold path — so this stream
// only needs to be independent, not matched.
const preprocSeedSalt = 0x9BE4_4E12_F111_ED00

// preprocFaultWrap, when non-nil, wraps the preprocessing substream before
// the filler starts. Chaos tests install transport fault injectors here to
// kill or corrupt the fill plane without touching the main stream.
var preprocFaultWrap func(party int, c transport.Conn) transport.Conn

func wrapPreprocConn(party int, c transport.Conn) transport.Conn {
	if preprocFaultWrap != nil {
		return preprocFaultWrap(party, c)
	}
	return c
}

// preprocLayers extracts the public per-inference GEMM schedule from the
// model: one (M×K)⊗(K×N) family triple per linear node, M the static conv
// patch count (or 1 for FC). Both parties derive the identical schedule
// from the shared architecture, so the fillers agree on a kit's shape
// without negotiation.
func preprocLayers(m *nn.Model) []preproc.Layer {
	var ls []preproc.Layer
	for i, node := range m.Nodes {
		k, n, ok := LinearDims(node)
		if !ok {
			continue
		}
		rows := 1
		if op, isConv := node.Op.(*nn.Conv); isConv {
			rows = op.Geom.Patches()
		}
		ls = append(ls, preproc.Layer{Node: i, M: rows, K: k, N: n})
	}
	return ls
}

// preprocGen builds one party's kit generator for the fill loop. Each call
// replays exactly the per-seq derivation the cold path's bindInfer would
// run — a fresh OT endpoint over the fill stream (its own salted seed; the
// endpoint internals never reach the delivered shares) and the per-layer
// family streams forked from inferFamSeed in node order — then runs the
// interactive Gilboa generation for every linear layer. The produced kit
// is bit-identical to the triples an inline cold inference of the same seq
// would generate.
func preprocGen(pconn transport.Conn, party int, cfg Options, r ring.Ring,
	layers []preproc.Layer, bShares map[int][]uint64, pool *parallel.Pool) preproc.GenFunc {
	grp := cfg.Group
	if grp.P == nil {
		grp = ot.DefaultGroup()
	}
	return func(seq uint32, root *telemetry.Span) (*preproc.Kit, error) {
		icfg := inferOptions(cfg, seq)
		rng := prg.NewSeeded(saltedSeed(icfg.Seed, preprocSeedSalt+uint64(party)*7919))
		ep := ot.NewEndpoint(party, pconn, rng.Fork())
		ep.HarvestGroup = grp
		ep.UseExtension = !cfg.NoExtension
		ep.Trace = telemetry.NewScope(root)
		famRng := prg.NewSeeded(inferFamSeed(icfg, party))
		mats := make(map[int]*triple.Mat, len(layers))
		for _, l := range layers {
			fam := triple.NewGilboaFamilyFixed(ep, famRng.Fork(), party, r, l.K, l.N, bShares[l.Node])
			fam.Pool = pool
			mat, err := fam.Generate(l.M)
			if err != nil {
				return nil, fmt.Errorf("preprocessing node %d: %w", l.Node, err)
			}
			mats[l.Node] = mat
		}
		return &preproc.Kit{Seq: seq, Mats: mats}, nil
	}
}

// preprocOn reports whether the session should negotiate the preprocessing
// plane.
func (c Options) preprocOn() bool { return c.BankDepth > 0 }

// fillWatermark resolves the fill-ahead watermark knob (0 = run the full
// bank depth ahead; NewBank clamps out-of-range values).
func (c Options) fillWatermark() int {
	if c.FillWatermark == 0 {
		return c.BankDepth
	}
	return int(c.FillWatermark)
}
