package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/transport"
)

func testCfg() Options {
	return Options{CarrierBits: 20, Seed: 4, Group: ot.TestGroup()}
}

func serveOnce(t *testing.T, ctx context.Context, cfg Options, m *nn.Model, sessions int, onSession func(error)) (addr string, done chan error) {
	t.Helper()
	l, err := transport.NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	done = make(chan error, 1)
	go func() { done <- ServeTCP(ctx, l, m, cfg, sessions, onSession) }()
	return l.Addr(), done
}

// TestServeTCPGracefulDrain cancels the server while a session is in
// flight and checks the session still completes (the drain grace covers
// it) and the server returns clean.
func TestServeTCPGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked session")
	}
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.DrainGrace = 30 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var sessionErrs []error
	addr, done := serveOnce(t, ctx, cfg, m, 0, func(err error) {
		mu.Lock()
		sessionErrs = append(sessionErrs, err)
		mu.Unlock()
	})
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Cancel as soon as the session is past the handshake: the server
	// must stop accepting but let this session drain to completion.
	userDone := make(chan struct{})
	var res *Result
	var errU error
	go func() {
		defer close(userDone)
		res, errU = RunUser(conn, m, input(64), cfg)
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	<-userDone
	if errU != nil {
		t.Fatalf("drained session failed: %v", errU)
	}
	if res == nil || len(res.Logits) == 0 {
		t.Fatal("drained session returned no logits")
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v, want nil", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sessionErrs) != 1 || sessionErrs[0] != nil {
		t.Errorf("onSession observed %v, want one clean session", sessionErrs)
	}
}

// TestServeTCPAbortAfterGrace cancels with a tiny grace: the in-flight
// session must be cut off, reported as ErrSessionAborted to onSession and
// counted, while the server still shuts down clean.
func TestServeTCPAbortAfterGrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked session")
	}
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.DrainGrace = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aborted := make(chan error, 1)
	addr, done := serveOnce(t, ctx, cfg, m, 0, func(err error) { aborted <- err })
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	userDone := make(chan error, 1)
	go func() {
		_, err := RunUser(conn, m, input(64), cfg)
		userDone <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-aborted:
		if !errors.Is(err, ErrSessionAborted) {
			t.Errorf("aborted session reported %v, want ErrSessionAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session not torn down after grace expired")
	}
	if err := <-userDone; err == nil {
		t.Error("user side of an aborted session succeeded")
	}
	if err := <-done; err != nil {
		t.Errorf("shutdown with aborted sessions returned %v, want nil", err)
	}
}

// TestServeTCPSessionTimeout bounds a session that stalls mid-protocol:
// a client that handshakes and then goes silent must not pin a provider
// goroutine forever.
func TestServeTCPSessionTimeout(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.SessionTimeout = 300 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aborted := make(chan error, 1)
	addr, done := serveOnce(t, ctx, cfg, m, 1, func(err error) { aborted <- err })
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid hello, then silence.
	r := cfg.Carrier(m)
	if err := exchangeHello(conn, helloFor(roleUser, m, r, cfg), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-aborted:
		if !errors.Is(err, ErrSessionAborted) {
			t.Errorf("stalled session reported %v, want ErrSessionAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled session was not timed out")
	}
	if err := <-done; err == nil {
		t.Error("ServeTCP(sessions=1) swallowed the aborted session error")
	}
}

// TestServeTCPSessionPanicRecovered: a model that panics inside the
// session goroutine (truncated weight slice, the classic) must surface as
// an onSession error, not kill the process.
func TestServeTCPSessionPanicRecovered(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	// Truncate one Conv weight slice: SplitModel's transpose loop indexes
	// past the end and panics inside the session goroutine.
	for _, node := range m.Nodes {
		if c, ok := node.Op.(*nn.Conv); ok && c.W != nil {
			c.W = c.W[:len(c.W)-1]
			break
		}
	}
	cfg := testCfg()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sessionErr := make(chan error, 1)
	addr, done := serveOnce(t, ctx, cfg, m, 1, func(err error) { sessionErr <- err })
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Complete the hello: the serving path dispatches on the client's
	// hello before touching the weights, so the panic fires only once the
	// session is past the handshake.
	if err := exchangeHello(conn, helloFor(roleUser, m, cfg.Carrier(m), cfg), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sessionErr:
		if err == nil || !strings.Contains(err.Error(), "session panic") {
			t.Errorf("panicking session reported %v, want a recovered panic error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("panicking session never reported")
	}
	conn.Close()
	if err := <-done; err == nil || !strings.Contains(err.Error(), "session panic") {
		t.Errorf("ServeTCP returned %v, want the recovered panic", err)
	}
}

// TestRunUserWithRetryRecovers is the acceptance scenario: the first
// session attempt dies from an injected transport fault during setup, the
// retry wrapper re-dials, and the second attempt reveals logits
// bit-identical to a fault-free run with the same seed.
func TestRunUserWithRetryRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	cfg.Retries = 2
	cfg.RetryBase = 10 * time.Millisecond
	// Reference: a clean run, same seed.
	_, _, want := cleanRun(t, m, x, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := serveOnce(t, ctx, cfg, m, 0, nil)
	dials := 0
	dial := func(ctx context.Context) (transport.Conn, error) {
		conn, err := transport.DialContext(ctx, addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			// First attempt: die 6 ops into the session (mid-setup).
			return transport.NewChaosConn(conn, transport.FaultPlan{FailAfter: 6}), nil
		}
		return conn, nil
	}
	res, err := RunUserWithRetry(ctx, dial, m, x, cfg)
	if err != nil {
		t.Fatalf("retry wrapper failed: %v", err)
	}
	if dials != 2 {
		t.Errorf("dialed %d times, want 2 (one failure, one recovery)", dials)
	}
	for i := range want {
		if res.Logits[i] != want[i] {
			t.Fatalf("retried logits %v, want bit-identical %v", res.Logits, want)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("server shutdown: %v", err)
	}
}

// TestRunUserWithRetryPermanentError: a handshake mismatch must not be
// retried.
func TestRunUserWithRetryPermanentError(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	other := tinyModel(nn.PoolMax)
	cfg := testCfg()
	cfg.Retries = 5
	cfg.RetryBase = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := serveOnce(t, ctx, cfg, other, 0, nil)
	dials := 0
	dial := func(ctx context.Context) (transport.Conn, error) {
		dials++
		return transport.DialContext(ctx, addr, 5*time.Second)
	}
	_, err := RunUserWithRetry(ctx, dial, m, input(64), cfg)
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HandshakeError", err)
	}
	if dials != 1 {
		t.Errorf("permanent error retried: %d dials", dials)
	}
	cancel()
	<-done
}

// TestRunUserWithRetryExhaustsBudget: a server that is simply absent
// yields a transient error after Retries+1 attempts.
func TestRunUserWithRetryExhaustsBudget(t *testing.T) {
	cfg := testCfg()
	cfg.Retries = 2
	cfg.RetryBase = time.Millisecond
	m := tinyModel(nn.PoolAvg)
	dials := 0
	dial := func(ctx context.Context) (transport.Conn, error) {
		dials++
		return nil, transport.ErrInjected
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunUserWithRetry(ctx, dial, m, input(64), cfg)
	if err == nil || !errors.Is(err, transport.ErrInjected) {
		t.Fatalf("got %v, want the final attempt's ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %v does not report the attempt budget", err)
	}
	if dials != 3 {
		t.Errorf("made %d attempts, want 3", dials)
	}
}
