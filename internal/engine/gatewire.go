package engine

import (
	"aq2pnn/internal/transport"
)

// Gateway wire-peek helpers. A routing tier in front of a provider fleet
// (internal/gateway) terminates no protocol state: it reads just enough
// of a session's opening frames — the hello and, for persistent
// sessions, the attach request — to pick a backend, may rewrite a fresh
// attach with a gateway-minted token so the routing key survives
// failover, and splices raw frames from there on. These exported views
// keep the wire layouts in exactly one place: the gateway decodes with
// the same functions the protocol itself uses.

// RoleUser is the hello role a connecting client declares; RoleProvider
// is the serving side's. A gateway fronts providers, so it admits only
// user hellos.
const (
	RoleUser     = roleUser
	RoleProvider = roleProvider
)

// HelloInfo is the public routing metadata of a client hello. Everything
// here is public by the protocol's own design — the hello crosses the
// wire before any secret-shared material.
type HelloInfo struct {
	Version uint16
	Role    uint8
	Carrier uint16
	Model   uint64 // architecture fingerprint
	Session bool   // persistent-session flow requested
	Preproc bool   // preprocessing plane requested (frames ride the mux)
}

// PeekHello decodes a client hello frame without consuming it: the frame
// is forwarded verbatim to the chosen backend. A busy-reject frame in
// hello position surfaces as transport.ErrServerBusy, any other
// malformed frame as the typed *HandshakeError the protocol itself would
// produce.
func PeekHello(frame []byte) (HelloInfo, error) {
	h, err := decodeHello(frame)
	if err != nil {
		return HelloInfo{}, err
	}
	return HelloInfo{
		Version: h.Version,
		Role:    h.Role,
		Carrier: h.Carrier,
		Model:   h.Model,
		Session: h.Flags&flagSession != 0,
		Preproc: h.Flags&flagPreproc != 0,
	}, nil
}

// PeekAttachRequest decodes a session attach request: whether the client
// asks to resume, and under which token.
func PeekAttachRequest(frame []byte) (resume bool, token SessionToken, err error) {
	f, err := decodeAttach(attachReqMagic, frame)
	if err != nil {
		return false, SessionToken{}, err
	}
	return f.flag, f.token, nil
}

// EncodeAttachRequest builds a session attach request frame. The gateway
// uses it to rewrite a fresh open (resume=false, zero token) into a
// resume under a gateway-minted token: the provider's attach miss falls
// back to a fresh setup under that token (see provideSession), which
// pins the routing key — and therefore the consistent-hash owner — for
// the session's whole life, across re-dials and backend deaths.
func EncodeAttachRequest(resume bool, token SessionToken) []byte {
	return encodeAttach(attachReqMagic, attachFrame{flag: resume, token: token})
}

// BusyRejectFrame returns the load-shed reject sent in place of the
// provider hello. Clients classify it as transport.ErrServerBusy —
// transient — so their retry loop backs off and re-attempts; the gateway
// sends it when no eligible backend remains or its own admission cap is
// hit.
func BusyRejectFrame() []byte { return busyFrame() }

// IsEndFrame reports whether frame is the client's session end frame —
// raw, or carried on the mux main substream (1-byte stream prefix) when
// the preprocessing plane was negotiated. The gateway watches for it so
// a client-initiated close is scored as a clean session, not a backend
// failure.
func IsEndFrame(frame []byte) bool {
	if len(frame) == endLen+1 && frame[0] == transport.StreamMain {
		frame = frame[1:]
	}
	return len(frame) == endLen && [4]byte(frame[:4]) == endMagic
}

// IsBusyFrame reports whether frame is a busy-reject. The gateway
// watches the backend's first answer for it: a backend shedding under
// its own admission cap is load, not ill health, and must not trip the
// circuit breaker.
func IsBusyFrame(frame []byte) bool {
	return len(frame) == busyLen && [4]byte(frame[:4]) == busyMagic
}
