package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/transport"
)

// Versioned session handshake. Before any setup material crosses the
// wire, both parties exchange a fixed 20-byte hello describing the
// protocol version, their role, the model architecture fingerprint, the
// carrier ring width and the protocol flags. (The OT group is announced
// in-band by each OT-flow header — the receiver adopts the sender's
// group — so it is deliberately absent here.) Any
// disagreement that would previously surface as a garbled gob decode, a
// mid-protocol length mismatch or — worst — a silently wrong reveal now
// fails fast with a typed *HandshakeError naming the offending field on
// BOTH parties.

// ProtocolVersion is the wire protocol generation. Bump it whenever the
// session wire format changes incompatibly (generation 1 introduced this
// handshake and the chunked setup exchange; generation 2 added per-chunk
// subheaders to the setup exchange and the busy-reject frame; generation
// 3 added the persistent-session mode — attach/resume frames, per-seq
// inference requests — plus in-hello negotiation of the ABReLU ring width
// and the class-only reveal; generation 4 added the preprocessing plane —
// the multiplexed fill stream, the demand/ack subprotocol and the warm
// inference request).
const ProtocolVersion = 5

// helloMagic opens every hello frame. A peer speaking the pre-handshake
// protocol (or not speaking this protocol at all) sends something else as
// its first frame, which decodeHello rejects with a clear error instead
// of letting gob chew on it.
var helloMagic = [4]byte{'A', 'Q', '2', 'S'}

const helloLen = 20

// busyMagic opens the load-shedding reject frame a provider sends in
// place of its hello when the admission limit is reached. The client's
// decodeHello maps it onto transport.ErrServerBusy — transient, so the
// standard retry/backoff loop re-attempts once a slot may have freed.
var busyMagic = [4]byte{'A', 'Q', '2', 'B'}

const busyLen = 8

// busyFrame encodes the shed rejection: magic plus the server's protocol
// version (so a future generation can change the busy wire format too).
func busyFrame() []byte {
	p := make([]byte, busyLen)
	copy(p, busyMagic[:])
	binary.LittleEndian.PutUint16(p[4:], ProtocolVersion)
	return p
}

// Protocol flag bits. Flags cover every Options field that changes the
// wire transcript: parties disagreeing on one of these would desynchronise
// mid-protocol.
const (
	flagLocalTrunc  = 1 << 0
	flagNoExtension = 1 << 1
	// flagClassOnly selects the class-only reveal (secure argmax instead
	// of the logit reveal). It changes the online transcript, so both
	// parties must run the same flow; the serving path adopts the
	// client's choice (what the user learns is the user's knob).
	flagClassOnly = 1 << 2
	// flagSession requests the persistent-session flow: attach/resume
	// exchange after the hello, then a stream of per-seq inference
	// requests over the prepared state. The serving path mirrors it.
	flagSession = 1 << 3
	// flagPreproc requests the asynchronous preprocessing plane on top of
	// a persistent session: immediately after the attach exchange both
	// parties multiplex the connection into a main stream and a
	// preprocessing stream, and paired background fillers pre-generate
	// each inference's triple kits over the latter (internal/preproc).
	// The serving path adopts the client's choice, like flagSession.
	flagPreproc = 1 << 4
)

// Handshake roles.
const (
	roleUser     = 0
	roleProvider = 1
)

// sessionHello is one party's view of the session parameters.
type sessionHello struct {
	Version uint16
	Role    uint8
	Flags   uint8
	Carrier uint16
	// ABReLU is the contracted ABReLU ring width (0 = full carrier). It
	// changes the A2BM/SCM transcript, so both parties must agree.
	ABReLU uint8
	Model  uint64 // nn.Model architecture fingerprint
}

// HandshakeError reports a handshake failure: a session-parameter
// disagreement, a malformed hello frame, or a hello that never arrived
// within the handshake deadline. Field names the mismatching parameter
// (or the violated framing rule); Local and Peer carry the two numeric
// views. Mismatches and malformed frames are permanent — retrying cannot
// fix a misconfigured (or hostile) peer — and transport.IsTransient
// classifies them accordingly; a hello *timeout* carries its cause in
// Err and stays transient through it.
type HandshakeError struct {
	Field       string
	Local, Peer uint64
	// Err, when non-nil, is the underlying transport failure (e.g. the
	// idle-timeout that cut short a stalled hello read).
	Err error
}

func (e *HandshakeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("engine: handshake %s: %v", e.Field, e.Err)
	}
	return fmt.Sprintf("engine: handshake %s mismatch: local %#x, peer %#x",
		e.Field, e.Local, e.Peer)
}

func (e *HandshakeError) Unwrap() error { return e.Err }

// helloFor assembles this party's hello from the resolved session
// parameters.
func helloFor(role uint8, m *nn.Model, r ring.Ring, cfg Options) sessionHello {
	var flags uint8
	if cfg.LocalTrunc {
		flags |= flagLocalTrunc
	}
	if cfg.NoExtension {
		flags |= flagNoExtension
	}
	if cfg.RevealClassOnly {
		flags |= flagClassOnly
	}
	// An ABReLU width at or past the carrier is a no-op (runReLU keeps the
	// full ring), so it is normalised to 0 here — peers configured with
	// "no contraction" and "contraction wider than the carrier" agree.
	abrelu := uint8(0)
	if cfg.ABReLUBits != 0 && cfg.ABReLUBits < r.Bits {
		abrelu = uint8(cfg.ABReLUBits)
	}
	return sessionHello{
		Version: ProtocolVersion,
		Role:    role,
		Flags:   flags,
		Carrier: uint16(r.Bits),
		ABReLU:  abrelu,
		Model:   m.Fingerprint(),
	}
}

func (h sessionHello) encode() []byte {
	p := make([]byte, helloLen)
	copy(p, helloMagic[:])
	binary.LittleEndian.PutUint16(p[4:], h.Version)
	p[6] = h.Role
	p[7] = h.Flags
	binary.LittleEndian.PutUint16(p[8:], h.Carrier)
	p[10] = h.ABReLU
	// p[11] reserved (zero) for future extension.
	binary.LittleEndian.PutUint64(p[12:], h.Model)
	return p
}

func decodeHello(p []byte) (sessionHello, error) {
	var h sessionHello
	if len(p) >= len(busyMagic) && [4]byte(p[:4]) == busyMagic {
		return h, fmt.Errorf("engine: provider shed this session under load: %w",
			transport.ErrServerBusy)
	}
	// Strict framing: exactly helloLen bytes, opening with the magic. A
	// truncated hello and one carrying trailing garbage are equally
	// rejected — a peer that pads its hello is not speaking this protocol.
	if len(p) != helloLen {
		return h, &HandshakeError{Field: "hello frame length", Local: helloLen, Peer: uint64(len(p))}
	}
	if [4]byte(p[:4]) != helloMagic {
		return h, &HandshakeError{
			Field: "hello magic",
			Local: uint64(binary.LittleEndian.Uint32(helloMagic[:])),
			Peer:  uint64(binary.LittleEndian.Uint32(p[:4])),
		}
	}
	h.Version = binary.LittleEndian.Uint16(p[4:])
	h.Role = p[6]
	h.Flags = p[7]
	h.Carrier = binary.LittleEndian.Uint16(p[8:])
	h.ABReLU = p[10]
	h.Model = binary.LittleEndian.Uint64(p[12:])
	return h, nil
}

// checkHello verifies the peer's session parameters against ours,
// producing the same typed *HandshakeError both parties compute from
// their own (mine, peer) view.
func checkHello(mine, peer sessionHello) error {
	switch {
	case peer.Version != mine.Version:
		return &HandshakeError{Field: "protocol version", Local: uint64(mine.Version), Peer: uint64(peer.Version)}
	case peer.Role == mine.Role:
		return &HandshakeError{Field: "role", Local: uint64(mine.Role), Peer: uint64(peer.Role)}
	case peer.Model != mine.Model:
		return &HandshakeError{Field: "model fingerprint", Local: mine.Model, Peer: peer.Model}
	case peer.Carrier != mine.Carrier:
		return &HandshakeError{Field: "carrier ring width", Local: uint64(mine.Carrier), Peer: uint64(peer.Carrier)}
	case peer.ABReLU != mine.ABReLU:
		return &HandshakeError{Field: "abrelu ring width", Local: uint64(mine.ABReLU), Peer: uint64(peer.ABReLU)}
	case peer.Flags != mine.Flags:
		return &HandshakeError{Field: "protocol flags", Local: uint64(mine.Flags), Peer: uint64(peer.Flags)}
	}
	return nil
}

// exchangeHello sends this party's hello, receives the peer's, and
// verifies every session parameter. Both parties send before receiving
// (the transports buffer a frame, so the symmetric order cannot
// deadlock), and both run identical checks, so a mismatch produces the
// same typed error on each side instead of one party erroring and the
// other hanging.
//
// A positive timeout bounds the hello read on transports that support
// receive deadlines: a peer that connects and sends three bytes then
// stalls fails fast with a typed *HandshakeError instead of pinning the
// session goroutine forever. In-memory pipes ignore the timeout.
func exchangeHello(conn transport.Conn, mine sessionHello, timeout time.Duration) error {
	if err := conn.Send(mine.encode()); err != nil {
		return fmt.Errorf("engine: sending session hello: %w", err)
	}
	if timeout > 0 && transport.SetRecvDeadline(conn, time.Now().Add(timeout)) {
		defer transport.SetRecvDeadline(conn, time.Time{})
	}
	p, err := conn.Recv()
	if err != nil {
		if errors.Is(err, transport.ErrIdleTimeout) {
			return &HandshakeError{Field: "hello read", Err: err}
		}
		return fmt.Errorf("engine: receiving session hello: %w", err)
	}
	peer, err := decodeHello(p)
	if err != nil {
		return err
	}
	return checkHello(mine, peer)
}
