package engine

import (
	"errors"
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/transport"
)

// TestGatewirePeeks pins the gateway's wire views against the codecs the
// protocol itself uses — the single-source-of-truth property the gateway
// relies on.
func TestGatewirePeeks(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	h := helloFor(roleUser, m, cfg.Carrier(m), cfg)
	h.Flags |= flagSession | flagPreproc
	hi, err := PeekHello(h.encode())
	if err != nil {
		t.Fatal(err)
	}
	if hi.Model != m.Fingerprint() || hi.Role != RoleUser || !hi.Session || !hi.Preproc {
		t.Errorf("PeekHello = %+v, want model %#x role user session+preproc", hi, m.Fingerprint())
	}
	if hi.Version != ProtocolVersion || hi.Carrier != 20 {
		t.Errorf("PeekHello version/carrier = %d/%d, want %d/20", hi.Version, hi.Carrier, ProtocolVersion)
	}
	if _, err := PeekHello([]byte("AQ2Snope")); err == nil {
		t.Error("PeekHello accepted a malformed hello")
	}
	if _, err := PeekHello(BusyRejectFrame()); !errors.Is(err, transport.ErrServerBusy) {
		t.Errorf("PeekHello on busy frame = %v, want ErrServerBusy", err)
	}

	token := SessionToken{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	frame := EncodeAttachRequest(true, token)
	resume, tok, err := PeekAttachRequest(frame)
	if err != nil || !resume || tok != token {
		t.Errorf("attach round-trip = (%v, %x, %v), want (true, %x, nil)", resume, tok, err, token)
	}
	if _, _, err := PeekAttachRequest(frame[:8]); err == nil {
		t.Error("PeekAttachRequest accepted a truncated frame")
	}

	if !IsEndFrame(encodeEnd()) {
		t.Error("IsEndFrame rejected the raw end frame")
	}
	muxEnd := append([]byte{transport.StreamMain}, encodeEnd()...)
	if !IsEndFrame(muxEnd) {
		t.Error("IsEndFrame rejected the mux-prefixed end frame")
	}
	if IsEndFrame(encodeInferReq(0, false)) || IsEndFrame(nil) {
		t.Error("IsEndFrame accepted a non-end frame")
	}
	if !IsBusyFrame(BusyRejectFrame()) || IsBusyFrame(encodeEnd()) {
		t.Error("IsBusyFrame misclassified")
	}
}
