package engine

import (
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

func TestBatchInference(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	var xs [][]int64
	for b := 0; b < 3; b++ {
		x := make([]int64, 64)
		for i := range x {
			x[i] = int64((i*7+b*13)%31) - 15
		}
		xs = append(xs, x)
	}
	res, err := RunLocalBatch(m, xs, Options{CarrierBits: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logits) != 3 {
		t.Fatalf("got %d results", len(res.Logits))
	}
	// Each image must match the plaintext ring reference.
	for b, x := range xs {
		want, _ := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(24)})
		if d := maxAbsDiff(res.Logits[b], want); d > 8 {
			t.Errorf("image %d: secure %v vs plaintext %v", b, res.Logits[b], want)
		}
	}
	// Setup is paid once: batch setup ≈ single-run setup, and online
	// scales per image.
	single, err := RunLocal(m, xs[0], Options{CarrierBits: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Setup.TotalBytes() != single.Setup.TotalBytes() {
		t.Errorf("batch setup %d vs single %d", res.Setup.TotalBytes(), single.Setup.TotalBytes())
	}
	perImage := res.OnlinePerImage.TotalBytes()
	if perImage == 0 || perImage > single.Online.TotalBytes()*11/10 {
		t.Errorf("per-image online %d vs single %d", perImage, single.Online.TotalBytes())
	}
}

func TestBatchValidation(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	if _, err := RunLocalBatch(m, nil, Options{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := RunLocalBatch(m, [][]int64{{1, 2}}, Options{}); err == nil {
		t.Error("short image accepted")
	}
}
