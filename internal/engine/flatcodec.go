package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"aq2pnn/internal/transport"
)

// Flat share codec (protocol v5). Setup share payloads used to ride
// encoding/gob, which spends CPU on type reflection and stream dictionaries
// and encodes every uint64 at a value-dependent width — a generic answer to
// a problem with a fixed shape. A wirePayload is three collections of ring
// elements, and the carrier ring's byte width is agreed in the handshake,
// so the payload is now a flat, fixed-width binary image: length-prefixed
// little-endian element slabs, each element exactly the ring's wire width
// (the same width-aware packing transport.PackElems uses for online
// traffic; HEQuant makes the case that 2PC communication wins come from
// width-aware encoding, not generic serialization). The codec rides
// *behind* the existing chunked-frame machinery of wire.go — framing,
// budget charging and chunk validation are unchanged; only the innermost
// bytes changed.
//
// Layout (all integers little-endian):
//
//	u32 magic "AQ2F" | u8 version | u8 width | u16 reserved=0
//	u32 nW    then nW    × (u32 nodeID | u32 count | count·width bytes)
//	u32 nBias then nBias × (u32 nodeID | u32 count | count·width bytes)
//	u8 hasX   then, if 1:  u32 count | count·width bytes
//
// Node entries are sorted by id, so encoding is deterministic (the
// registry's cached payload must be byte-identical across sessions).
// Every declared length is validated against the remaining payload before
// any allocation, mirroring the chunk framing's hostile-peer discipline;
// violations are typed *PayloadError values.

// flatMagic opens every flat share payload ("AQ2F").
const flatMagic = 0x46325141

// flatVersion is the codec generation inside the v5 wire protocol.
const flatVersion = 1

const flatHeaderLen = 8

// encodeShares serialises a wirePayload at the given element byte width.
// Elements must already be reduced below 2^(8·width); a violation is a
// programming error on the sending side, reported rather than masked.
func encodeShares(wp *wirePayload, width int) ([]byte, error) {
	if width < 1 || width > 8 {
		return nil, fmt.Errorf("engine: flat codec width %d outside [1,8]", width)
	}
	size := flatHeaderLen + 4 + 4 + 1
	for _, xs := range wp.W {
		size += 8 + len(xs)*width
	}
	for _, xs := range wp.Bias {
		size += 8 + len(xs)*width
	}
	if wp.X != nil {
		size += 4 + len(wp.X)*width
	}
	p := make([]byte, 0, size)
	var hdr [flatHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], flatMagic)
	hdr[4] = flatVersion
	hdr[5] = byte(width)
	p = append(p, hdr[:]...)
	var err error
	if p, err = appendEntries(p, wp.W, width); err != nil {
		return nil, err
	}
	if p, err = appendEntries(p, wp.Bias, width); err != nil {
		return nil, err
	}
	if wp.X == nil {
		p = append(p, 0)
	} else {
		p = append(p, 1)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(wp.X)))
		if p, err = appendElems(p, wp.X, width); err != nil {
			return nil, err
		}
	}
	if len(p) > maxSetupPayload {
		return nil, fmt.Errorf("engine: setup payload %d bytes exceeds %d-byte cap", len(p), maxSetupPayload)
	}
	return p, nil
}

func appendEntries(p []byte, entries map[int][]uint64, width int) ([]byte, error) {
	ids := make([]int, 0, len(entries))
	for id := range entries {
		if id < 0 || uint64(id) > 0xFFFFFFFF {
			//lint:declassify node ids are public model-architecture indices, not share material
			return nil, fmt.Errorf("engine: flat codec node id %d outside uint32", id)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(ids)))
	var err error
	for _, id := range ids {
		xs := entries[id]
		p = binary.LittleEndian.AppendUint32(p, uint32(id))
		p = binary.LittleEndian.AppendUint32(p, uint32(len(xs)))
		if p, err = appendElems(p, xs, width); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func appendElems(p []byte, xs []uint64, width int) ([]byte, error) {
	for _, x := range xs {
		if width < 8 && x>>(8*width) != 0 {
			return nil, fmt.Errorf("engine: flat codec element exceeds %d-byte width", width)
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		p = append(p, b[:width]...)
	}
	return p, nil
}

// flatReader walks a flat payload with every read bounds-checked; errors
// are typed *PayloadError framing violations.
type flatReader struct {
	p   []byte
	off int
}

func (r *flatReader) remaining() int { return len(r.p) - r.off }

func (r *flatReader) u8(field string) (byte, error) {
	if r.remaining() < 1 {
		return 0, wireError(field, r.remaining(), 1)
	}
	v := r.p[r.off]
	r.off++
	return v, nil
}

func (r *flatReader) u32(field string) (uint32, error) {
	if r.remaining() < 4 {
		return 0, wireError(field, r.remaining(), 4)
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v, nil
}

// elems reads a count·width slab. The length check precedes the
// allocation, so an oversize declared count is rejected at the cost of an
// error value, not a gigabyte buffer.
func (r *flatReader) elems(field string, count uint32, width int) ([]uint64, error) {
	need := uint64(count) * uint64(width)
	if uint64(r.remaining()) < need {
		return nil, wireError(field+" slab length", r.remaining(), int(need))
	}
	xs := make([]uint64, count)
	var b [8]byte
	for i := range xs {
		copy(b[:width], r.p[r.off:r.off+width])
		xs[i] = binary.LittleEndian.Uint64(b[:])
		r.off += width
	}
	return xs, nil
}

func (r *flatReader) entries(field string, width int) (map[int][]uint64, error) {
	count, err := r.u32(field + " entry count")
	if err != nil {
		return nil, err
	}
	// Each entry costs at least its 8-byte subheader; a count the payload
	// cannot possibly hold is rejected before the map is sized.
	if uint64(count)*8 > uint64(r.remaining()) {
		return nil, wireError(field+" entry count", int(count), r.remaining()/8)
	}
	out := make(map[int][]uint64, count)
	for i := uint32(0); i < count; i++ {
		id, err := r.u32(field + " node id")
		if err != nil {
			return nil, err
		}
		n, err := r.u32(field + " element count")
		if err != nil {
			return nil, err
		}
		if _, dup := out[int(id)]; dup {
			return nil, wireError(field+" duplicate node id", int(id), -1)
		}
		xs, err := r.elems(field, n, width)
		if err != nil {
			return nil, err
		}
		out[int(id)] = xs
	}
	return out, nil
}

// decodeShares parses a flat payload, rejecting any disagreement with the
// locally expected element width.
func decodeShares(p []byte, width int) (*wirePayload, error) {
	if width < 1 || width > 8 {
		return nil, fmt.Errorf("engine: flat codec width %d outside [1,8]", width)
	}
	r := &flatReader{p: p}
	magic, err := r.u32("flat magic")
	if err != nil {
		return nil, err
	}
	if magic != flatMagic {
		return nil, wireError("flat magic", int(magic), flatMagic)
	}
	ver, err := r.u8("flat version")
	if err != nil {
		return nil, err
	}
	if ver != flatVersion {
		return nil, wireError("flat version", int(ver), flatVersion)
	}
	w, err := r.u8("flat width")
	if err != nil {
		return nil, err
	}
	if int(w) != width {
		return nil, wireError("flat width", int(w), width)
	}
	if _, err := r.u8("flat reserved"); err != nil {
		return nil, err
	}
	if _, err := r.u8("flat reserved"); err != nil {
		return nil, err
	}
	var wp wirePayload
	if wp.W, err = r.entries("weights", width); err != nil {
		return nil, err
	}
	if wp.Bias, err = r.entries("bias", width); err != nil {
		return nil, err
	}
	hasX, err := r.u8("input flag")
	if err != nil {
		return nil, err
	}
	switch hasX {
	case 0:
	case 1:
		n, err := r.u32("input element count")
		if err != nil {
			return nil, err
		}
		if wp.X, err = r.elems("input", n, width); err != nil {
			return nil, err
		}
	default:
		return nil, wireError("input flag", int(hasX), 1)
	}
	if r.remaining() != 0 {
		return nil, wireError("trailing bytes", r.remaining(), 0)
	}
	return &wp, nil
}

// sendShares encodes and ships a share payload through the chunked setup
// exchange.
func sendShares(c transport.Conn, wp *wirePayload, width int) error {
	p, err := encodeShares(wp, width)
	if err != nil {
		return err
	}
	return sendSetupBytes(c, p)
}

// recvShares receives and decodes a share payload from the chunked setup
// exchange.
func recvShares(c transport.Conn, width int) (*wirePayload, error) {
	p, err := recvSetupBytes(c)
	if err != nil {
		return nil, err
	}
	return decodeShares(p, width)
}
