package engine

import (
	"context"
	"errors"
	"sync"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// ServeTCP hosts the model-provider side for many clients: every accepted
// connection runs a complete RunProvider protocol in its own goroutine, so
// simultaneous users are served concurrently. sessions > 0 accepts exactly
// that many connections and returns once they all finish; sessions == 0
// serves until ctx is cancelled (which then returns nil). onSession, when
// non-nil, observes each finished session's error as it completes.
func ServeTCP(ctx context.Context, l *transport.Listener, m *nn.Model, cfg Options, sessions int, onSession func(error)) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	record := func(err error) {
		telemetry.Count("aq2pnn_sessions_total", 1)
		if onSession != nil {
			onSession(err)
		}
		if err != nil {
			telemetry.Count("aq2pnn_session_errors_total", 1)
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	for n := 0; sessions == 0 || n < sessions; n++ {
		conn, err := l.Accept(ctx)
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				err = nil // cancelled: a clean shutdown, not a failure
			}
			mu.Lock()
			defer mu.Unlock()
			return errors.Join(append(errs, err)...)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			record(RunProvider(conn, m, cfg))
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return errors.Join(errs...)
}
