package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// ErrSessionAborted wraps session errors caused by the server tearing the
// session down (shutdown past the drain grace, or a SessionTimeout
// expiry) rather than by the protocol itself failing.
var ErrSessionAborted = errors.New("engine: session aborted")

// ServeTCP hosts the model-provider side for many clients: every accepted
// connection runs a complete RunProvider protocol in its own goroutine, so
// simultaneous users are served concurrently. sessions > 0 accepts exactly
// that many connections and returns once they all finish; sessions == 0
// serves until ctx is cancelled (which then returns nil). onSession, when
// non-nil, observes each finished session's error as it completes.
//
// Shutdown is graceful: cancelling ctx stops accepting immediately, but
// in-flight sessions get cfg.DrainGrace to run to completion before their
// connections are force-closed. Sessions cut short by the shutdown (or by
// a cfg.SessionTimeout expiry) report an ErrSessionAborted-wrapped error
// to onSession; drained-but-aborted sessions do not turn a clean shutdown
// into a failure. A panicking session is recovered, surfaced through
// onSession as an error, and never takes down its sibling sessions or the
// accept loop.
//
// Hostile-peer defences: cfg.MaxConcurrentSessions caps in-flight
// sessions — excess connections are shed immediately with a busy-reject
// frame (the client sees transport.ErrServerBusy, which is transient, so
// its retry/backoff loop re-attempts once a slot frees) and never consume
// a `sessions` slot. cfg.IdleTimeout and cfg.MemBudget are installed as
// transport limits on every accepted connection, so a slow-loris peer or
// one declaring giant frames is cut off inside the transport before the
// protocol ever blocks or allocates. Shed sessions increment
// aq2pnn_sessions_shed_total; sessions killed by those limits increment
// aq2pnn_idle_timeouts_total / aq2pnn_frames_rejected_total.
func ServeTCP(ctx context.Context, l *transport.Listener, m *nn.Model, cfg Options, sessions int, onSession func(error)) error {
	reg := NewRegistry()
	if err := reg.Add(m); err != nil {
		return err
	}
	return ServeRegistryTCP(ctx, l, reg, cfg, sessions, onSession)
}

// ServeRegistryTCP is the multi-model serving loop: each accepted
// connection's hello names a model by fingerprint, dispatched against the
// registry (which may gain and lose models while serving). Unknown
// fingerprints fail the handshake with the typed mismatch on both sides.
// Clients that set the session flag get the persistent flow — setup once,
// then a stream of inference requests, with faulted sessions parked for
// token re-attachment; plain clients get the one-shot protocol. Shutdown,
// draining, admission control and the hostile-peer defences behave exactly
// as documented on ServeTCP.
func ServeRegistryTCP(ctx context.Context, l *transport.Listener, reg *Registry, cfg Options, sessions int, onSession func(error)) error {
	reg.setCap(cfg.SessionCache)
	if cfg.IdleTimeout > 0 || cfg.MemBudget > 0 {
		l.SetLimits(transport.Limits{IdleTimeout: cfg.IdleTimeout, MemBudget: cfg.MemBudget})
	}
	var admit chan struct{}
	if cfg.MaxConcurrentSessions > 0 {
		admit = make(chan struct{}, cfg.MaxConcurrentSessions)
	}
	// drainCtx governs in-flight sessions. It survives ctx cancellation
	// by cfg.DrainGrace so accepted sessions may finish; the watcher
	// below links the two. context.WithoutCancel is deliberate — plain
	// inheritance would kill sessions the instant ctx dies.
	drainCtx, cancelDrain := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelDrain()
	serveDone := make(chan struct{})
	defer close(serveDone)
	go func() {
		select {
		case <-serveDone:
		case <-ctx.Done():
			if cfg.DrainGrace > 0 {
				t := time.NewTimer(cfg.DrainGrace)
				defer t.Stop()
				select {
				case <-serveDone:
				case <-t.C:
				}
			}
			cancelDrain()
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	record := func(err error) {
		telemetry.Count("aq2pnn_sessions_total", 1)
		countHostile(err)
		if onSession != nil {
			onSession(err)
		}
		if err != nil {
			telemetry.Count("aq2pnn_session_errors_total", 1)
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	for n := 0; sessions == 0 || n < sessions; {
		conn, err := l.AcceptSession(ctx, drainCtx)
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				// Cancelled: a clean shutdown, not a failure. Individual
				// session errors (including any the shutdown itself
				// aborted) were already reported through onSession and
				// the telemetry counters.
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			return errors.Join(append(errs, err)...)
		}
		if admit != nil {
			select {
			case admit <- struct{}{}:
			default:
				// At capacity: shed the connection without consuming a
				// `sessions` slot or reporting a session error — the
				// busy-reject frame tells the client to back off and retry.
				wg.Add(1)
				go func() {
					defer wg.Done()
					shedSession(conn)
				}()
				continue
			}
		}
		n++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			err := runSession(drainCtx, conn, reg, cfg)
			if admit != nil {
				<-admit
			}
			record(err)
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return errors.Join(errs...)
}

// shedSession rejects a connection that arrived while every admission
// slot was busy: it sends the busy frame (best-effort — a client that
// already hung up simply misses it) and closes the connection.
func shedSession(conn transport.Conn) {
	defer conn.Close()
	telemetry.Count("aq2pnn_sessions_shed_total", 1)
	if err := conn.Send(busyFrame()); err != nil {
		return
	}
}

// countHostile attributes a finished session's failure to the defence
// that triggered it, so operators can distinguish hostile or broken peers
// from ordinary protocol failures on the metrics endpoint.
func countHostile(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, transport.ErrIdleTimeout) {
		telemetry.Count("aq2pnn_idle_timeouts_total", 1)
	}
	var fe *transport.FrameError
	var be *transport.BudgetError
	var pe *PayloadError
	if errors.As(err, &fe) || errors.As(err, &be) || (errors.As(err, &pe) && pe.Wire) {
		telemetry.Count("aq2pnn_frames_rejected_total", 1)
	}
}

// runSession executes one provider session with panic containment and the
// optional per-session deadline. ctx is the drain context: it outlives
// the accept loop's context by the configured grace. For a persistent
// session the deadline bounds the whole connection lifetime (prefer
// IdleTimeout for per-frame patience; a timed-out-but-established session
// is still parked for re-attachment).
func runSession(ctx context.Context, conn transport.Conn, reg *Registry, cfg Options) (err error) {
	defer func() {
		if r := recover(); r != nil {
			telemetry.Count("aq2pnn_session_panics_total", 1)
			err = fmt.Errorf("engine: session panic: %v", r)
		}
	}()
	if cfg.SessionTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.SessionTimeout)
		defer cancel()
		conn = transport.WithContext(ctx, conn)
	}
	err = provideConn(conn, reg, cfg)
	if err != nil && ctx.Err() != nil {
		telemetry.Count("aq2pnn_session_aborts_total", 1)
		err = fmt.Errorf("%w: %w", ErrSessionAborted, err)
	}
	return err
}
