package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/testutil"
	"aq2pnn/internal/transport"
)

// Hostile-peer integration tests: adversarial clients (garbage bytes,
// giant declared lengths, truncations, slow-loris stalls) against a
// serving provider. The contract: no panic, no goroutine leak, bounded
// allocation, typed errors on the defence counters — and honest sessions
// running alongside stay bit-identical.

// rawFrame prefixes p with the transport's 4-byte little-endian length.
func rawFrame(p []byte) []byte {
	hdr := make([]byte, 4+len(p))
	binary.LittleEndian.PutUint32(hdr, uint32(len(p)))
	copy(hdr[4:], p)
	return hdr
}

func counterValue(name string) uint64 {
	return telemetry.Default().Counter(name).Value()
}

// TestGarbagePeerSweep runs a provider with full hostile-peer defences
// while a pack of adversarial raw-TCP clients attacks it and two honest
// clients run real inferences through the crossfire.
func TestGarbagePeerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	telemetry.Enable()
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.MaxConcurrentSessions = 8
	// The idle timeout must outlast an honest party's longest think-time
	// between frames, which the race detector stretches considerably.
	cfg.IdleTimeout = time.Second
	if raceEnabled {
		cfg.IdleTimeout = 20 * time.Second
	}
	cfg.MemBudget = 64 << 20
	cfg.Retries = 6
	cfg.RetryBase = 30 * time.Millisecond
	x := input(m.InputShape().Numel())
	_, _, want := cleanRun(t, m, x, cfg)
	base := runtime.NumGoroutine()
	rejectedBefore := counterValue("aq2pnn_frames_rejected_total")
	idleBefore := counterValue("aq2pnn_idle_timeouts_total")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var sessionErrs []error
	addr, done := serveOnce(t, ctx, cfg, m, 0, func(err error) {
		mu.Lock()
		sessionErrs = append(sessionErrs, err)
		mu.Unlock()
	})

	r := cfg.Carrier(m)
	hello := helloFor(roleUser, m, r, cfg).encode()
	g := prg.NewSeeded(99)
	random := make([]byte, 512)
	g.Read(random)

	// Adversarial behaviors. Each writes its poison and (except the
	// slow-loris, which must outlive the idle timeout) closes.
	adversaries := [][]byte{
		random,                             // raw garbage, not even framed
		{0xFF, 0xFF, 0xFF, 0xFF, 'x'},      // header declaring a 4 GiB frame
		{0x40, 0x00, 0x00, 0x00, 'a', 'b'}, // 64-byte frame truncated after 2
		append(rawFrame(hello), rawFrame([]byte("not a gob header"))...), // valid hello, garbage setup
	}
	var adv sync.WaitGroup
	for _, payload := range adversaries {
		adv.Add(1)
		go func(p []byte) {
			defer adv.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if _, err := c.Write(p); err != nil {
				return
			}
			// Linger so buffered poison is fully read before the FIN —
			// the server must reject on content, not rely on the close.
			time.Sleep(500 * time.Millisecond)
		}(payload)
	}
	// Slow-loris: two bytes of a hello, then silence past the idle
	// timeout. Held open until the server has killed the session.
	loris, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	if _, err := loris.Write([]byte{'A', 'Q'}); err != nil {
		t.Fatal(err)
	}

	// Honest clients run full retrying inferences through the noise.
	dial := func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, addr, 5*time.Second)
	}
	var honest sync.WaitGroup
	honestErrs := make([]error, 2)
	honestLogits := make([][]int64, 2)
	for i := 0; i < 2; i++ {
		honest.Add(1)
		go func(i int) {
			defer honest.Done()
			res, err := RunUserWithRetry(ctx, dial, m, x, cfg)
			honestErrs[i] = err
			if res != nil {
				honestLogits[i] = res.Logits
			}
		}(i)
	}
	honest.Wait()
	adv.Wait()

	// Wait until the server has disposed of every adversarial session
	// (4 writers + 1 slow-loris) on top of the 2 honest ones. The
	// slow-loris only dies after a full idle timeout.
	deadline := time.Now().Add(cfg.IdleTimeout + 20*time.Second)
	for {
		mu.Lock()
		n := len(sessionErrs)
		mu.Unlock()
		if n >= 7 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("server returned %v after the sweep, want nil", err)
	}

	for i, err := range honestErrs {
		if err != nil {
			t.Errorf("honest client %d failed through the noise: %v", i, err)
			continue
		}
		if len(honestLogits[i]) != len(want) {
			t.Errorf("honest client %d: %d logits, want %d", i, len(honestLogits[i]), len(want))
			continue
		}
		for k := range want {
			if honestLogits[i][k] != want[k] {
				t.Errorf("honest client %d: logit %d is %d, want %d (corrupted by hostile traffic)", i, k, honestLogits[i][k], want[k])
				break
			}
		}
	}
	mu.Lock()
	for _, err := range sessionErrs {
		if err != nil && strings.Contains(err.Error(), "session panic") {
			t.Errorf("hostile input reached a panic: %v", err)
		}
	}
	mu.Unlock()
	if got := counterValue("aq2pnn_frames_rejected_total") - rejectedBefore; got < 1 {
		t.Errorf("aq2pnn_frames_rejected_total rose by %d, want >= 1", got)
	}
	if got := counterValue("aq2pnn_idle_timeouts_total") - idleBefore; got < 1 {
		t.Errorf("aq2pnn_idle_timeouts_total rose by %d, want >= 1", got)
	}
	loris.Close()
	testutil.CheckGoroutines(t, base)
}

// TestAdmissionControl checks load shedding end to end: with one
// admission slot held, a second client is shed with ErrServerBusy (a
// transient error), and a retrying client eventually lands the session
// once the slot frees.
func TestAdmissionControl(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	telemetry.Enable()
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.MaxConcurrentSessions = 1
	cfg.Retries = 10
	cfg.RetryBase = 30 * time.Millisecond
	shedBefore := counterValue("aq2pnn_sessions_shed_total")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := serveOnce(t, ctx, cfg, m, 0, nil)

	// Occupy the only slot with a connection that never speaks.
	holder, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	// A single-shot session must be shed with the typed, transient error.
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunUser(conn, m, input(m.InputShape().Numel()), cfg)
	conn.Close()
	if !errors.Is(err, transport.ErrServerBusy) {
		t.Fatalf("session against a full server returned %v, want ErrServerBusy", err)
	}
	if !transport.IsTransient(err) {
		t.Errorf("ErrServerBusy classified permanent; retry loops would give up")
	}
	if got := counterValue("aq2pnn_sessions_shed_total") - shedBefore; got < 1 {
		t.Errorf("aq2pnn_sessions_shed_total rose by %d, want >= 1", got)
	}

	// A retrying client keeps backing off while the slot is held...
	dial := func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, addr, 5*time.Second)
	}
	resCh := make(chan error, 1)
	go func() {
		_, err := RunUserWithRetry(ctx, dial, m, input(m.InputShape().Numel()), cfg)
		resCh <- err
	}()
	time.Sleep(150 * time.Millisecond)
	// ...and succeeds once the holder releases the slot.
	holder.Close()
	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("retrying client failed after the slot freed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("retrying client never completed after the slot freed")
	}
	cancel()
	<-done
}

// TestIdleTimeoutKillsStalledPeer: a client that stalls mid-setup (a
// deterministic slow-loris via FaultPlan.Stall) must not pin the
// provider: the idle timeout cuts the session within the configured
// bound, with a transient, typed error.
func TestIdleTimeoutKillsStalledPeer(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	cl, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sv := <-accepted

	provider := transport.NewNetConnLimits(sv, transport.Limits{IdleTimeout: 300 * time.Millisecond})
	defer provider.Close()
	// Op 4 is the user's Send of its input-share header: the provider is
	// left blocking in recvGob for the whole 2 s stall.
	user := transport.NewChaosConn(transport.NewNetConn(cl), transport.FaultPlan{
		FailAfter: -1, Stall: 2 * time.Second, StallAt: 4,
	})
	defer user.Close()

	provErr := make(chan error, 1)
	start := time.Now()
	go func() { provErr <- RunProvider(provider, m, cfg) }()
	userDone := make(chan struct{})
	go func() {
		defer close(userDone)
		_, _ = RunUser(user, m, input(m.InputShape().Numel()), cfg)
	}()

	select {
	case err := <-provErr:
		elapsed := time.Since(start)
		if !errors.Is(err, transport.ErrIdleTimeout) {
			t.Errorf("stalled peer produced %v, want ErrIdleTimeout in the chain", err)
		}
		if !transport.IsTransient(err) {
			t.Errorf("idle-timeout error classified permanent")
		}
		if elapsed > 1500*time.Millisecond {
			t.Errorf("provider took %v to cut the stalled peer, want well under the 2s stall", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("provider still pinned by the stalled peer after 10s")
	}
	provider.Close()
	<-userDone
}

// TestHandshakeRejectsTruncatedAndGarbage drives the strict hello
// framing: short frames, trailing garbage and wrong magic are permanent
// typed rejections; the busy frame maps onto the transient ErrServerBusy.
func TestHandshakeRejectsTruncatedAndGarbage(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	r := cfg.Carrier(m)
	mine := helloFor(roleUser, m, r, cfg)
	valid := helloFor(roleProvider, m, r, cfg).encode()
	cases := []struct {
		name      string
		frame     []byte
		wantBusy  bool
		transient bool
	}{
		{name: "3 bytes", frame: []byte("AQ2")},
		{name: "19 bytes", frame: valid[:19]},
		{name: "trailing garbage", frame: append(append([]byte{}, valid...), 0xEE)},
		{name: "wrong magic", frame: append([]byte("NOPE"), valid[4:]...)},
		{name: "empty", frame: []byte{}},
		{name: "busy frame", frame: busyFrame(), wantBusy: true, transient: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := transport.Pipe()
			defer a.Close()
			defer b.Close()
			sendErr := make(chan error, 1)
			go func() { sendErr <- b.Send(tc.frame) }()
			err := exchangeHello(a, mine, 0)
			if err == nil {
				t.Fatal("malformed hello accepted")
			}
			if <-sendErr != nil {
				t.Fatal("pipe send failed")
			}
			if tc.wantBusy {
				if !errors.Is(err, transport.ErrServerBusy) {
					t.Errorf("busy frame produced %v, want ErrServerBusy", err)
				}
			} else {
				var he *HandshakeError
				if !errors.As(err, &he) {
					t.Errorf("got %v, want a *HandshakeError", err)
				}
			}
			if transport.IsTransient(err) != tc.transient {
				t.Errorf("IsTransient(%v) = %v, want %v", err, !tc.transient, tc.transient)
			}
		})
	}
}

// TestHandshakeStallFailsFast: a peer that opens a session, delivers
// three bytes and stalls must be cut off by the handshake deadline, not
// pin the provider until the TCP keepalive gives up.
func TestHandshakeStallFailsFast(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.HandshakeTimeout = 300 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	cl, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	conn := transport.NewNetConn(<-accepted)
	defer conn.Close()
	start := time.Now()
	err = RunProvider(conn, m, cfg)
	elapsed := time.Since(start)
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("stalled handshake produced %v, want *HandshakeError", err)
	}
	if !errors.Is(err, transport.ErrIdleTimeout) {
		t.Errorf("stalled handshake error %v does not carry ErrIdleTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("handshake stall took %v to fail, want ~300ms", elapsed)
	}
}
