package engine

import (
	"encoding/binary"
	"fmt"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/preproc"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/secure"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
	"aq2pnn/internal/triple"
)

// Persistent-session mode (protocol generation 3). A one-shot session pays
// the full setup — weight-share exchange plus the F openings of every
// linear layer — for a single inference. A persistent session pays it once
// at open and then streams any number of inference requests over the
// prepared state:
//
//	hello(flagSession) → attach/resume → [weight shares + prepare]   (open)
//	(infer seq=0 → input share → online protocol)*                   (steady state)
//	end                                                              (close)
//
// Each inference runs on a fresh deterministic context derived from
// (Seed, seq): a new OT endpoint whose base OTs and IKNP setup are part of
// that inference's own transcript, exactly as in the one-shot online
// phase. Two consequences fall out: every steady-state inference costs
// byte-identical wire traffic (nothing accumulates across seqs), and a
// re-run of an interrupted seq after a transport fault replays the same
// transcript bit for bit — the resumption token lets the client re-attach
// to the provider's parked state instead of replaying setup.

// SessionToken identifies a provider-side persistent session for
// re-attachment after a transport fault. It is an opaque capability in the
// semi-honest model: uniqueness matters (two live sessions must not
// collide), secrecy does not (the peer it names is the one that holds it).
type SessionToken [16]byte

// Session frame magics, following the AQ2x family of the hello ("AQ2S"),
// busy-reject ("AQ2B") and chunked-setup ("AQ2G") frames.
var (
	attachReqMagic  = [4]byte{'A', 'Q', '2', 'R'}
	attachRespMagic = [4]byte{'A', 'Q', '2', 'A'}
	inferReqMagic   = [4]byte{'A', 'Q', '2', 'I'}
	// warmReqMagic requests an inference served from the preprocessing
	// plane: both parties consume seq's precomputed kit instead of
	// generating triples inline. The client sends it only for kits its
	// bank committed, which the fill subprotocol's ack ordering guarantees
	// the provider's store also holds.
	warmReqMagic = [4]byte{'A', 'Q', '2', 'W'}
	endMagic     = [4]byte{'A', 'Q', '2', 'E'}
)

const (
	attachLen   = 24 // magic ·4  flag ·1  pad ·3  token ·16
	inferReqLen = 8  // magic ·4  seq ·4
	endLen      = 8  // magic ·4  pad ·4
)

// attachFrame is the request/response pair opening a persistent session:
// the client asks to resume a token (or sends the zero token for a fresh
// session), the provider answers whether it resumed and which token names
// the session from here on.
type attachFrame struct {
	flag  bool // request: resume?   response: resumed?
	token SessionToken
}

func encodeAttach(magic [4]byte, f attachFrame) []byte {
	p := make([]byte, attachLen)
	copy(p, magic[:])
	if f.flag {
		p[4] = 1
	}
	copy(p[8:], f.token[:])
	return p
}

func decodeAttach(magic [4]byte, p []byte) (attachFrame, error) {
	var f attachFrame
	if len(p) != attachLen {
		return f, wireError("attach frame length", len(p), attachLen)
	}
	if [4]byte(p[:4]) != magic {
		return f, wireError("attach frame magic",
			int(binary.LittleEndian.Uint32(p[:4])), int(binary.LittleEndian.Uint32(magic[:])))
	}
	if p[4] > 1 || p[5] != 0 || p[6] != 0 || p[7] != 0 {
		return f, wireError("attach frame flag", int(p[4]), 1)
	}
	f.flag = p[4] == 1
	copy(f.token[:], p[8:])
	return f, nil
}

func encodeInferReq(seq uint32, warm bool) []byte {
	p := make([]byte, inferReqLen)
	if warm {
		copy(p, warmReqMagic[:])
	} else {
		copy(p, inferReqMagic[:])
	}
	binary.LittleEndian.PutUint32(p[4:], seq)
	return p
}

func encodeEnd() []byte {
	p := make([]byte, endLen)
	copy(p, endMagic[:])
	return p
}

// recvSessionReq reads the next steady-state frame on the provider side:
// an inference request (end=false, with its seq and whether it is warm —
// served from the preprocessing plane) or the end frame (end=true).
// Anything else is a typed wire violation.
func recvSessionReq(conn transport.Conn) (seq uint32, warm, end bool, err error) {
	p, err := conn.Recv()
	if err != nil {
		return 0, false, false, err
	}
	switch {
	case len(p) == inferReqLen && [4]byte(p[:4]) == inferReqMagic:
		return binary.LittleEndian.Uint32(p[4:]), false, false, nil
	case len(p) == inferReqLen && [4]byte(p[:4]) == warmReqMagic:
		return binary.LittleEndian.Uint32(p[4:]), true, false, nil
	case len(p) == endLen && [4]byte(p[:4]) == endMagic:
		return 0, false, true, nil
	}
	return 0, false, false, wireError("session request frame length", len(p), inferReqLen)
}

// Seed-derivation salts. Every per-session and per-inference PRG stream is
// a deterministic function of cfg.Seed so a resumed inference replays the
// interrupted transcript bit for bit; the salts decorrelate the streams
// from each other and from the one-shot flow's seeds.
const (
	inferSeedSalt = 0x5E55_10F3_BAD5_EED5
	famSeedSalt   = 0xFA41_11E5_0B5A_A3E5
)

// mix64 is the splitmix64 finalizer: a bijective avalanche so consecutive
// seqs land on decorrelated seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// saltedSeed is the single approved derivation from a raw configuration
// seed to a PRG stream seed: XOR in a purpose salt, then avalanche with
// mix64 so the streams for different purposes (and for adjacent raw
// seeds) are decorrelated. Every transcript-feeding prg.NewSeeded in this
// package must go through it — or through inferOptions/sessionFamSeed,
// which embed the same finalizer; the detrand analyzer enforces this.
func saltedSeed(seed, salt uint64) uint64 { return mix64(seed ^ salt) }

// inferOptions derives inference seq's deterministic per-inference
// configuration: same protocol knobs, decorrelated seed.
func inferOptions(cfg Options, seq uint32) Options {
	cfg.Seed = mix64(cfg.Seed ^ inferSeedSalt ^ (uint64(seq)+1)*0x9E3779B97F4A7C15)
	return cfg
}

// sessionState is one party's half of an established persistent session:
// the connection-independent product of the setup phase, sufficient to
// bind any later connection to the already-prepared weights. The provider
// parks it under the session token after a transport fault; the client
// keeps its own in the Session handle.
type sessionState struct {
	model   *nn.Model
	r       ring.Ring
	weights *WeightShares
	preps   map[int]*secure.Prepared
	bShares map[int][]uint64
}

// newSessionState runs this party's setup half over an established
// context: per-layer Gilboa families with fresh fixed weight masks B, then
// the interactive F openings (Party.Prepare). famSeed drives the B draws —
// unique per session so distinct sessions never share masks.
func newSessionState(ctx *secure.Context, m *nn.Model, r ring.Ring, weights *WeightShares, famSeed uint64) (*sessionState, error) {
	famRng := prg.NewSeeded(famSeed)
	fams := map[int]triple.Family{}
	for i, node := range m.Nodes {
		k, n, ok := LinearDims(node)
		if !ok {
			continue
		}
		fams[i] = triple.NewGilboaFamily(ctx.OT, famRng.Fork(), ctx.P(), r, k, n)
	}
	p := &Party{Ctx: ctx, Model: m, Weights: weights, R: r, Pool: ctx.Pool, Families: fams}
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	bs := map[int][]uint64{}
	for i, f := range fams {
		bs[i] = f.BShare()
	}
	return &sessionState{model: m, r: r, weights: weights, preps: p.PreparedWeights(), bShares: bs}, nil
}

// sessionFamSeed derives the B-mask stream for one session's setup from
// the token (unique per session) and the party index (the two parties'
// shares of B must be independent draws).
func sessionFamSeed(cfg Options, party int, token SessionToken) uint64 {
	return mix64(cfg.Seed ^ famSeedSalt ^ binary.LittleEndian.Uint64(token[:8]) + uint64(party)*7919)
}

// inferFamSeed derives inference seq's per-layer family stream for one
// party from the already-derived per-inference options. Both the inline
// (cold) bind and the preprocessing plane's kit generation use it, which
// is what makes a precomputed kit bit-identical to the triples the cold
// path would generate for the same seq.
func inferFamSeed(icfg Options, party int) uint64 {
	return mix64(icfg.Seed ^ famSeedSalt + uint64(party)*7919)
}

// bindInfer builds the executor for one inference: a fresh deterministic
// context over the live connection (new OT endpoint — its base OTs and
// IKNP setup belong to this inference's own transcript, as in the one-shot
// online phase) with the session's prepared weights bound through fixed-B
// families. Both parties derive everything from (cfg.Seed, seq), so
// re-running a seq after a fault replays the identical transcript.
//
// kit, when non-nil, is seq's precomputed material from the preprocessing
// plane: linear nodes it covers bind a consumed-once precomputed family
// instead of a live Gilboa one, so the online transcript carries no
// triple generation. The per-node family stream is forked either way —
// the fork positions stay identical between warm and cold binds, which
// (together with the kit itself being generated from inferFamSeed) keeps
// warm and cold logits byte-identical.
func (st *sessionState) bindInfer(conn transport.Conn, party int, cfg Options, seq uint32, kit *preproc.Kit) (*secure.Context, *Party) {
	icfg := inferOptions(cfg, seq)
	ctx := NewNetworkContext(party, conn, icfg)
	famRng := prg.NewSeeded(inferFamSeed(icfg, party))
	fams := map[int]triple.Family{}
	for i, node := range st.model.Nodes {
		k, n, ok := LinearDims(node)
		if !ok {
			continue
		}
		frng := famRng.Fork()
		if kit != nil && kit.Mats[i] != nil {
			fams[i] = triple.NewMatFamily(kit.Mats[i])
			continue
		}
		fams[i] = triple.NewGilboaFamilyFixed(ctx.OT, frng, party, st.r, k, n, st.bShares[i])
	}
	p := &Party{Ctx: ctx, Model: st.model, Weights: st.weights, R: st.r,
		ReLURing: reluRingFor(cfg, st.r), Pool: ctx.Pool}
	p.Bind(st.preps, fams)
	return ctx, p
}

// sessionInferRoot opens the per-inference telemetry root, tagged with the
// seq so the trace distinguishes steady-state inferences.
func sessionInferRoot(tr *telemetry.Tracer, conn transport.Conn, name string, seq uint32) *telemetry.Span {
	return tr.Root(name, telemetry.WithConn(conn),
		telemetry.WithAttrs(telemetry.Int("seq", int64(seq))))
}

// sessionError prefixes a session-phase failure with its seq for
// diagnosis across resume boundaries.
func sessionError(seq uint32, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("engine: session inference %d: %w", seq, err)
}
