package engine

import (
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
)

// tinyModel builds a complete building block (Fig. 8): Conv+BNReQ → ReLU →
// MaxPool → FC, small enough to run the full 2PC protocol in tests.
func tinyModel(pool nn.PoolKind) *nn.Model {
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	conv := &nn.Conv{
		Geom: g,
		W:    make([]int64, 4*9),
		Bias: []int64{5, -3, 0, 7},
		Im:   []int64{3, 3, 3, 3},
		Ie:   4,
	}
	for i := range conv.W {
		conv.W[i] = int64(i%7) - 3
	}
	pg := tensor.ConvGeom{InC: 4, InH: 8, InW: 8, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	var poolOp nn.Op
	if pool == nn.PoolMax {
		poolOp = &nn.MaxPool{Geom: pg}
	} else {
		poolOp = &nn.AvgPool{Geom: pg}
	}
	fc := &nn.FC{In: 4 * 4 * 4, Out: 5, W: make([]int64, 4*4*4*5), Bias: []int64{1, 2, 3, 4, 5}, Im: []int64{1, 1, 1, 1, 1}, Ie: 2}
	for i := range fc.W {
		fc.W[i] = int64(i%5) - 2
	}
	return &nn.Model{
		Name: "tiny", InC: 1, InH: 8, InW: 8, InBits: 8,
		Nodes: []nn.Node{
			{Op: conv, Inputs: []int{-1}, Name: "conv1"},
			{Op: nn.ReLU{}, Inputs: []int{0}, Name: "relu1"},
			{Op: poolOp, Inputs: []int{1}, Name: "pool1"},
			{Op: nn.Flatten{}, Inputs: []int{2}, Name: "flatten"},
			{Op: fc, Inputs: []int{3}, Name: "fc"},
		},
	}
}

// residualModel exercises the Add path.
func residualModel() *nn.Model {
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	mk := func(seed int64) *nn.Conv {
		c := &nn.Conv{Geom: g, W: make([]int64, 2*18), Im: []int64{1, 1}, Ie: 3}
		for i := range c.W {
			c.W[i] = (int64(i)+seed)%5 - 2
		}
		return c
	}
	return &nn.Model{
		Name: "res", InC: 2, InH: 4, InW: 4, InBits: 8,
		Nodes: []nn.Node{
			{Op: mk(0), Inputs: []int{-1}, Name: "conv1"},
			{Op: nn.ReLU{}, Inputs: []int{0}, Name: "relu1"},
			{Op: mk(3), Inputs: []int{1}, Name: "conv2"},
			{Op: nn.Add{}, Inputs: []int{2, 1}, Name: "add"},
			{Op: nn.ReLU{}, Inputs: []int{3}, Name: "relu2"},
		},
	}
}

func input(n int) []int64 {
	x := make([]int64, n)
	for i := range x {
		x[i] = int64((i*7)%31) - 15
	}
	return x
}

// maxAbsDiff compares secure logits against the ring-mode plaintext
// reference; the probabilistic ±1 truncation noise propagates, so small
// divergence is expected and bounded.
func maxAbsDiff(a, b []int64) int64 {
	var m int64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func TestSecureInferenceMatchesPlaintextRing(t *testing.T) {
	for _, pool := range []nn.PoolKind{nn.PoolMax, nn.PoolAvg} {
		m := tinyModel(pool)
		x := input(64)
		cfg := Options{CarrierBits: 24, Seed: 42}
		res, err := RunLocal(m, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(24)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Logits) != 5 {
			t.Fatalf("logits = %v", res.Logits)
		}
		if d := maxAbsDiff(res.Logits, want); d > 8 {
			t.Errorf("pool=%d: secure %v vs plaintext %v (max diff %d)", pool, res.Logits, want, d)
		}
	}
}

func TestSecureInferenceResidual(t *testing.T) {
	m := residualModel()
	x := input(32)
	res, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(24)})
	if d := maxAbsDiff(res.Logits, want); d > 4 {
		t.Errorf("residual secure %v vs plaintext %v", res.Logits, want)
	}
}

func TestDefaultCarrierIsPlusMargin(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	if got := (Options{}).Carrier(m); got.Bits != 12 {
		t.Errorf("default carrier = %d bits, want InBits+4 = 12", got.Bits)
	}
	if got := (Options{CarrierBits: 16}).Carrier(m); got.Bits != 16 {
		t.Errorf("explicit carrier = %d", got.Bits)
	}
}

func TestPerOpProfileShape(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	res, err := RunLocal(m, input(64), Options{CarrierBits: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerOp) != len(m.Nodes) {
		t.Fatalf("profiled %d ops for %d nodes", len(res.PerOp), len(m.Nodes))
	}
	byKind := map[string]uint64{}
	for _, op := range res.PerOp {
		byKind[op.Kind] += op.Bytes
	}
	if byKind["ABReLU"] == 0 {
		t.Error("ABReLU reported zero communication")
	}
	if byKind["2PC-MaxPool"] == 0 {
		t.Error("MaxPool reported zero communication")
	}
	if byKind["Flatten"] != 0 {
		t.Error("Flatten should be free")
	}
	// Conv online comm is only the E exchange.
	var convBytes uint64
	for _, op := range res.PerOp {
		if op.Name == "conv1" {
			convBytes = op.Bytes
		}
	}
	carrier := ring.New(16)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	wantE := uint64(2 * g.Patches() * g.PatchLen() * carrier.Bytes()) // sent + received
	// Under the default faithful truncation the conv node carries the E
	// exchange plus the BNReQ wrap-bit protocol.
	if convBytes < wantE {
		t.Errorf("conv1 online bytes = %d, below the E exchange %d", convBytes, wantE)
	}
	if res.Setup.TotalBytes() == 0 {
		t.Error("setup phase (F openings) reported zero bytes")
	}
	// The paper-mode ablation (local truncation) makes BNReQ free: the
	// conv node's online bytes are then exactly the E exchange.
	resLocal, err := RunLocal(m, input(64), Options{CarrierBits: 16, Seed: 1, LocalTrunc: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range resLocal.PerOp {
		if op.Name == "conv1" && op.Bytes != wantE {
			t.Errorf("local-trunc conv1 bytes = %d, want exactly %d", op.Bytes, wantE)
		}
	}
}

func TestOnlineCommScalesWithCarrier(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	r16, err := RunLocal(m, x, Options{CarrierBits: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r32, err := RunLocal(m, x, Options{CarrierBits: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r32.Online.TotalBytes()) / float64(r16.Online.TotalBytes())
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("online comm 32/16 ratio = %.2f", ratio)
	}
}

func TestAvgPoolCheaperThanMaxPool(t *testing.T) {
	// Sec. 6.5: average pooling needs no communication, max pooling does.
	x := input(64)
	rMax, err := RunLocal(tinyModel(nn.PoolMax), x, Options{CarrierBits: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rAvg, err := RunLocal(tinyModel(nn.PoolAvg), x, Options{CarrierBits: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rAvg.Online.TotalBytes() >= rMax.Online.TotalBytes() {
		t.Errorf("avg-pool comm %d ≥ max-pool comm %d", rAvg.Online.TotalBytes(), rMax.Online.TotalBytes())
	}
	// In the paper-mode ablation average pooling is AS-ALU only: zero
	// communication, as Sec. 6.5 states.
	rAvgLocal, err := RunLocal(tinyModel(nn.PoolAvg), x, Options{CarrierBits: 16, Seed: 4, LocalTrunc: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range rAvgLocal.PerOp {
		if op.Kind == "2PC-AvgPool" && op.Bytes != 0 {
			t.Errorf("local-trunc 2PC-AvgPool communicated %d bytes", op.Bytes)
		}
	}
}

func TestSplitModelRejectsSkeleton(t *testing.T) {
	m, _ := nn.ByName("resnet50-imagenet", nn.ZooConfig{Skeleton: true})
	g := ring.New(16)
	_, _, err := SplitModel(prg.NewSeeded(1), m, g)
	if err == nil {
		t.Error("skeleton model split accepted")
	}
}

func TestRunLocalValidatesInput(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	if _, err := RunLocal(m, make([]int64, 3), Options{}); err == nil {
		t.Error("bad input length accepted")
	}
}

func TestLeNet5SecureEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full LeNet5 secure inference")
	}
	m := nn.LeNet5(nn.ZooConfig{Seed: 5})
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64(i%23) - 11
	}
	res, err := RunLocal(m, x, Options{CarrierBits: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(32)})
	// The ±1 LSB noise of each faithful truncation propagates through the
	// following layers' weights, so logits carry a few percent of noise;
	// the classification must be unaffected.
	if nn.Argmax(res.Logits) != nn.Argmax(want) {
		t.Errorf("secure argmax %d vs plaintext %d (%v vs %v)", nn.Argmax(res.Logits), nn.Argmax(want), res.Logits, want)
	}
	if d := maxAbsDiff(res.Logits, want); d > 100 {
		t.Errorf("LeNet5 logits diverged by %d", d)
	}
	t.Logf("LeNet5 online comm: %.3f MiB over %d rounds", res.Online.MiB(), res.Online.Rounds)
}

func BenchmarkSecureTinyModel(b *testing.B) {
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	for i := 0; i < b.N; i++ {
		if _, err := RunLocal(m, x, Options{CarrierBits: 16, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
