package engine

import (
	"errors"
	"fmt"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/preproc"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// provideConn dispatches one accepted connection. The provider receives
// the client's hello first — it names the model, so the provider cannot
// assemble its own hello before reading it — then answers with its view
// and branches on the session flag. Two flags are adopted from the client
// rather than checked: class-only reveal (what the user learns is the
// user's knob) and session mode.
func provideConn(conn transport.Conn, reg *Registry, cfg Options) error {
	if to := cfg.handshakeTimeout(); to > 0 {
		transport.SetRecvDeadline(conn, time.Now().Add(to))
	}
	p, err := conn.Recv()
	transport.SetRecvDeadline(conn, time.Time{})
	if err != nil {
		if errors.Is(err, transport.ErrIdleTimeout) {
			return &HandshakeError{Field: "hello read", Err: err}
		}
		return fmt.Errorf("engine: receiving session hello: %w", err)
	}
	peer, err := decodeHello(p)
	if err != nil {
		return err
	}
	m := reg.Lookup(peer.Model)
	scfg := cfg
	scfg.RevealClassOnly = peer.Flags&flagClassOnly != 0
	var mine sessionHello
	if m != nil {
		mine = helloFor(roleProvider, m, scfg.Carrier(m), scfg)
		mine.Flags |= peer.Flags & (flagSession | flagPreproc)
	} else {
		// Unknown model: answer with the peer's own parameters under a
		// zero fingerprint, so the client fails with the same typed
		// "model fingerprint" mismatch instead of hanging or seeing a
		// spurious secondary mismatch.
		mine = peer
		mine.Role = roleProvider
		mine.Model = 0
	}
	if err := conn.Send(mine.encode()); err != nil {
		return fmt.Errorf("engine: sending session hello: %w", err)
	}
	if m == nil {
		return &HandshakeError{Field: "model fingerprint", Local: 0, Peer: peer.Model}
	}
	if err := checkHello(mine, peer); err != nil {
		return err
	}
	if peer.Flags&flagSession != 0 {
		return provideSession(conn, reg, m, scfg, peer.Flags&flagPreproc != 0)
	}
	return runProvider(conn, m, scfg.Carrier(m), scfg, nil)
}

// provideSession runs the provider half of a persistent session: the
// attach/resume exchange, at most one setup phase, then the steady-state
// inference loop. On a transport fault past setup the prepared state is
// parked under the session token so the client's re-attach skips setup.
// With withPreproc (the client's flagPreproc, adopted) the connection is
// multiplexed after the attach exchange and a background filler serves
// the fill subprotocol, committing each demanded seq's kit to a store the
// warm inference requests consume from.
func provideSession(conn transport.Conn, reg *Registry, m *nn.Model, cfg Options, withPreproc bool) error {
	r := cfg.Carrier(m)
	frame, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("engine: receiving session attach: %w", err)
	}
	req, err := decodeAttach(attachReqMagic, frame)
	if err != nil {
		return err
	}
	var st *sessionState
	token := req.token
	resumed := false
	if req.flag {
		if parked, ok := reg.take(req.token); ok && parked.model == m && parked.r == r {
			st, resumed = parked, true
		}
	}
	if !resumed {
		if req.flag && req.token != (SessionToken{}) {
			// The resume missed: expired, evicted, a provider restart, or —
			// behind a gateway — a failover onto a backend that never held
			// the state. Adopt the client's token instead of minting: every
			// session seed derives from (Seed, token), so the fresh setup
			// below reproduces exactly the transcript the original session
			// ran, which is what makes a failed-over inference bit-identical
			// (faithful truncation's ±1 LSB depends on the concrete share
			// values, hence on the B-mask stream, hence on the token).
			// Uniqueness is preserved — the token was minted by a Registry
			// or gateway in the first place; the client merely echoes it,
			// and take() above already claimed any parked state it named.
			telemetry.Count("aq2pnn_sessions_attach_miss_total", 1)
		} else {
			// Fresh open: mint a new token so a stale one can never alias a
			// live session.
			token = reg.nextToken()
		}
	}
	if err := conn.Send(encodeAttach(attachRespMagic, attachFrame{flag: resumed, token: token})); err != nil {
		return fmt.Errorf("engine: sending session attach: %w", err)
	}
	var pconn transport.Conn
	if withPreproc {
		// Mirror of the client's mux install point: everything past the
		// attach exchange rides the mux.
		conn, pconn = transport.NewMux(conn)
	}
	if !resumed {
		st, err = providerOpen(conn, reg, m, r, cfg, token)
		if err != nil {
			return err
		}
	}
	var store *preproc.Store
	if pconn != nil {
		pc := wrapPreprocConn(1, pconn)
		// The store cap is the structural bound (MaxPending), not the
		// provider's own bank-depth knob: pacing is the client's job (its
		// watermark), the cap only defends against a client that demands
		// without consuming.
		store = preproc.NewStore(preproc.MaxDepth)
		gen := preprocGen(pc, 1, cfg, r, preprocLayers(m), st.bShares, parallel.New(cfg.FillWorkers))
		fillDone := make(chan struct{})
		go func() {
			defer close(fillDone)
			// Filler death only degrades the plane: the client's side dies
			// symmetrically (the substream closes) and falls back to cold
			// inline generation on the main stream.
			_ = preproc.FillProvider(preproc.Filler{
				Conn: pc, Trace: cfg.Trace, Root: "provider.preproc.fill", Gen: gen,
			}, store)
		}()
		defer func() {
			// Tear the whole mux down before joining the filler: a filler
			// parked mid-read on a peer that will make no more progress
			// (fault or hostile stall) is unblocked by the inner close, so
			// the session goroutine never leaks.
			conn.Close()
			pc.Close()
			<-fillDone
		}()
	}
	// Steady state: each inference request binds a fresh deterministic
	// context to the prepared state. Nothing from the setup phase crosses
	// the wire again.
	for {
		seq, warm, end, err := recvSessionReq(conn)
		if err != nil {
			if transport.IsTransient(err) {
				reg.park(token, st)
			}
			return fmt.Errorf("engine: receiving session request: %w", err)
		}
		if end {
			return nil
		}
		var kit *preproc.Kit
		if warm {
			// The fill subprotocol's ack ordering guarantees every seq the
			// client committed is already in the store, so a warm request
			// that misses is a protocol violation, not a race.
			if store == nil {
				return sessionError(seq, fmt.Errorf("engine: warm inference request without a negotiated preprocessing plane"))
			}
			if kit = store.Take(seq); kit == nil {
				return sessionError(seq, fmt.Errorf("engine: warm inference request for unfilled seq %d", seq))
			}
		}
		if err := providerInfer(conn, st, cfg, seq, kit); err != nil {
			if transport.IsTransient(err) {
				reg.park(token, st)
			}
			return sessionError(seq, err)
		}
	}
}

// providerOpen runs the provider's setup half under the
// "provider.session.open" root: ship the client's (cached) weight share,
// then the interactive F openings.
func providerOpen(conn transport.Conn, reg *Registry, m *nn.Model, r ring.Ring, cfg Options, token SessionToken) (*sessionState, error) {
	shares, err := reg.sharesFor(m, r, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ctx := NewNetworkContext(1, conn, cfg)
	var st *sessionState
	err = tracePhase(cfg.Trace, ctx, "provider.session.open", func() error {
		if err := func() error {
			sp := ctx.Trace.Enter("exchange.shares")
			defer ctx.Trace.Exit(sp)
			return sendSetupBytes(conn, shares.payload)
		}(); err != nil {
			return fmt.Errorf("engine: sending weight shares: %w", err)
		}
		st, err = newSessionState(ctx, m, r, shares.ws1, sessionFamSeed(cfg, 1, token))
		return err
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// providerInfer serves one steady-state inference: receive the client's
// input share, run the online protocol over the bound state (consuming
// seq's precomputed kit when the request was warm), finish the reveal.
func providerInfer(conn transport.Conn, st *sessionState, cfg Options, seq uint32, kit *preproc.Kit) error {
	ctx, p := st.bindInfer(conn, 1, cfg, seq, kit)
	sp := sessionInferRoot(cfg.Trace, conn, "provider.session.infer", seq)
	defer sp.End()
	ctx.SetTrace(telemetry.NewScope(sp))
	x1, err := func() ([]uint64, error) {
		isp := ctx.Trace.Enter("input.share")
		defer ctx.Trace.Exit(isp)
		return transport.RecvElems(conn, st.r, st.model.InputShape().Numel())
	}()
	if err != nil {
		return fmt.Errorf("receiving input share: %w", err)
	}
	o, err := p.Infer(x1)
	if err != nil {
		return err
	}
	_, _, err = revealResult(ctx, st.r, cfg, o)
	return err
}
