package engine

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
)

// DefaultSessionCache is how many detached persistent sessions a Registry
// keeps resumable when Options.SessionCache is zero.
const DefaultSessionCache = 64

// sessionTTL bounds how long a detached session stays resumable: past it
// the parked state is garbage, the re-attaching client falls back to a
// fresh setup, and the provider's memory is reclaimed.
const sessionTTL = 15 * time.Minute

// Registry is the provider-side serving state behind ServeRegistryTCP: the
// models offered (hot add/remove, keyed by architecture fingerprint — the
// same fingerprint the hello announces), a weight-share cache so repeated
// sessions of one model never re-split or re-encode its shares, and the
// parked persistent sessions waiting for a token re-attach.
//
// All methods are safe for concurrent use; a Registry may be shared by
// any number of serve loops and mutated while they run.
type Registry struct {
	mu     sync.Mutex
	models map[uint64]*nn.Model
	shares map[shareKey]*modelShares
	parked map[SessionToken]*parkedSession
	order  []SessionToken // LRU over parked, oldest first
	cap    int            // parked capacity; <0 disables resumption caching
	tokens uint64
	rng    *prg.PRG
	now    func() time.Time
}

// shareKey identifies one cached weight split: the shares depend on the
// model, the split seed and the carrier ring.
type shareKey struct {
	fp   uint64
	seed uint64
	bits uint
}

// modelShares is one cached split: the provider's own share plus the
// client share already flat-encoded into the chunked-setup payload, so a
// fresh session costs one sendSetupBytes and nothing else.
type modelShares struct {
	ws1     *WeightShares
	payload []byte
}

type parkedSession struct {
	st      *sessionState
	expires time.Time
}

// NewRegistry returns an empty registry with the default session-cache
// capacity. Serve entrypoints overwrite the capacity from
// Options.SessionCache.
func NewRegistry() *Registry {
	return &Registry{
		models: map[uint64]*nn.Model{},
		shares: map[shareKey]*modelShares{},
		parked: map[SessionToken]*parkedSession{},
		cap:    DefaultSessionCache,
		//lint:allow detrand token-uniqueness rng inside one provider process; tokens are public handshake metadata, not transcript randomness
		rng: prg.NewSeeded(0x7E6157A92B11E5),
		now: time.Now,
	}
}

// Add registers (or replaces) a model, keyed by its architecture
// fingerprint. The model must carry real weights: sessions secret-share
// them at open.
func (g *Registry) Add(m *nn.Model) error {
	if m == nil {
		return fmt.Errorf("engine: registry: nil model")
	}
	for i, node := range m.Nodes {
		if sk, ok := node.Op.(interface{ Skeleton() bool }); ok && sk.Skeleton() {
			return fmt.Errorf("engine: registry: model %q node %d is a skeleton", m.Name, i)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	fp := m.Fingerprint()
	g.models[fp] = m
	// A replaced model invalidates its cached splits (the weights may have
	// changed under the same architecture fingerprint).
	for k := range g.shares {
		if k.fp == fp {
			delete(g.shares, k)
		}
	}
	return nil
}

// Remove unregisters a model and drops its cached weight splits and every
// parked session that serves it. In-flight attached sessions keep their
// own references and finish undisturbed.
func (g *Registry) Remove(m *nn.Model) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fp := m.Fingerprint()
	delete(g.models, fp)
	for k := range g.shares {
		if k.fp == fp {
			delete(g.shares, k)
		}
	}
	kept := g.order[:0]
	for _, tok := range g.order {
		if e := g.parked[tok]; e != nil && e.st.model.Fingerprint() == fp {
			delete(g.parked, tok)
			continue
		}
		kept = append(kept, tok)
	}
	g.order = kept
}

// Lookup resolves a hello's model fingerprint, or nil.
func (g *Registry) Lookup(fp uint64) *nn.Model {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.models[fp]
}

// Len reports how many models are registered.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.models)
}

// setCap resolves Options.SessionCache onto the registry (0 keeps the
// default, negative disables parking).
func (g *Registry) setCap(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n != 0 {
		g.cap = n
	}
}

// sharesFor returns the cached weight split for (model, seed, ring),
// computing and caching it on first use. The split PRG seed matches the
// one-shot RunProvider flow, so a cached split is byte-identical to what a
// one-shot session would have sent.
func (g *Registry) sharesFor(m *nn.Model, r ring.Ring, seed uint64) (*modelShares, error) {
	key := shareKey{fp: m.Fingerprint(), seed: seed, bits: r.Bits}
	g.mu.Lock()
	if s := g.shares[key]; s != nil {
		g.mu.Unlock()
		telemetry.Count("aq2pnn_weight_cache_hits_total", 1)
		return s, nil
	}
	g.mu.Unlock()
	// Split outside the lock: a large model's split must not stall
	// unrelated sessions. A duplicate computation under contention is
	// wasted work, not an error — last writer wins with an equal value.
	// Same purpose salt as runProvider's one-shot split: the session and
	// one-shot paths derive identical weight-share streams for one seed.
	gsplit := prg.NewSeeded(saltedSeed(seed, 0x0DE17272))
	ws0, ws1, err := SplitModel(gsplit, m, r)
	if err != nil {
		return nil, err
	}
	payload, err := encodeShares(&wirePayload{W: ws0.W, Bias: ws0.Bias}, r.Bytes())
	if err != nil {
		return nil, err
	}
	s := &modelShares{ws1: ws1, payload: payload}
	g.mu.Lock()
	g.shares[key] = s
	g.mu.Unlock()
	telemetry.Count("aq2pnn_weight_cache_misses_total", 1)
	return s, nil
}

// nextToken mints a unique session token: a counter (uniqueness) whipped
// through the registry PRG stream (so tokens from distinct registries or
// restarts differ and a stale client re-attach simply misses).
func (g *Registry) nextToken() SessionToken {
	g.mu.Lock()
	g.tokens++
	ctr := g.tokens
	salt := g.rng.Uint64()
	g.mu.Unlock()
	var t SessionToken
	binary.LittleEndian.PutUint64(t[:8], mix64(ctr))
	binary.LittleEndian.PutUint64(t[8:], mix64(ctr^salt))
	return t
}

// park stores a detached session's state for re-attachment, evicting the
// oldest entries past the capacity and anything expired. A disabled cache
// (negative capacity) drops the state immediately.
func (g *Registry) park(token SessionToken, st *sessionState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cap < 0 {
		return
	}
	g.pruneLocked()
	if _, ok := g.parked[token]; !ok {
		g.order = append(g.order, token)
	}
	g.parked[token] = &parkedSession{st: st, expires: g.now().Add(sessionTTL)}
	for len(g.parked) > g.cap && len(g.order) > 0 {
		oldest := g.order[0]
		g.order = g.order[1:]
		if _, ok := g.parked[oldest]; ok {
			delete(g.parked, oldest)
			telemetry.Count("aq2pnn_sessions_evicted_total", 1)
		}
	}
	telemetry.Count("aq2pnn_sessions_parked_total", 1)
}

// take claims a parked session for re-attachment, removing it from the
// cache (a token re-attaches at most one connection at a time; the state
// is re-parked on the next fault).
func (g *Registry) take(token SessionToken) (*sessionState, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pruneLocked()
	e, ok := g.parked[token]
	if !ok {
		return nil, false
	}
	delete(g.parked, token)
	for i, tok := range g.order {
		if tok == token {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	telemetry.Count("aq2pnn_sessions_resumed_total", 1)
	return e.st, true
}

// pruneLocked drops expired parked sessions. Caller holds g.mu.
func (g *Registry) pruneLocked() {
	if len(g.parked) == 0 {
		return
	}
	now := g.now()
	kept := g.order[:0]
	for _, tok := range g.order {
		if e := g.parked[tok]; e != nil && now.After(e.expires) {
			delete(g.parked, tok)
			telemetry.Count("aq2pnn_sessions_expired_total", 1)
			continue
		}
		kept = append(kept, tok)
	}
	g.order = kept
}
