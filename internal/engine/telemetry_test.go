package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// assertExactAttribution checks the telemetry contract on a finished
// trace: for the named root span, the communication deltas of its direct
// children partition the root's delta exactly, and (when session is
// non-nil) the root's delta equals the session's measured stats.
func assertExactAttribution(t *testing.T, tr *telemetry.Tracer, rootName string, session *transport.Stats) {
	t.Helper()
	spans := tr.Spans()
	var root *telemetry.SpanRecord
	for i := range spans {
		if spans[i].Parent == 0 && spans[i].Name == rootName {
			if root != nil {
				t.Fatalf("duplicate root span %q", rootName)
			}
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatalf("root span %q not found", rootName)
	}
	if session != nil && root.Comm != *session {
		t.Errorf("%s comm %+v != session stats %+v", rootName, root.Comm, *session)
	}
	var sum transport.Stats
	var children int
	for _, r := range spans {
		if r.Parent == root.ID {
			children++
			if !r.HasConn {
				t.Errorf("child %q of %s has no connection delta", r.Name, rootName)
				continue
			}
			sum.Add(r.Comm)
		}
	}
	if children == 0 {
		t.Fatalf("root %q has no children", rootName)
	}
	if sum != root.Comm {
		t.Errorf("%s: children sum %+v != root comm %+v", rootName, sum, root.Comm)
	}
}

// TestTraceAttributionExact is the subsystem's acceptance bar on the fast
// model: the per-layer (plus reveal) spans of each party partition the
// online traffic byte-for-byte, and the setup spans match the setup stats.
func TestTraceAttributionExact(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	tr := telemetry.New()
	res, err := RunLocal(m, input(64), Options{CarrierBits: 16, Seed: 11, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	assertExactAttribution(t, tr, "p0.infer", &res.Online)
	// Setup: the whole phase is one Prepare call per party, so the root's
	// delta IS the setup stats (children are the per-layer prepare spans).
	spans := tr.Spans()
	var setupComm transport.Stats
	var layerSpans, prepareSpans int
	for _, r := range spans {
		if r.Parent == 0 && r.Name == "p0.setup" {
			setupComm = r.Comm
		}
		if strings.HasPrefix(r.Name, "layer.") {
			layerSpans++
		}
		if r.Name == "secure.linear.prepare" {
			prepareSpans++
		}
	}
	if setupComm != res.Setup {
		t.Errorf("p0.setup comm %+v != setup stats %+v", setupComm, res.Setup)
	}
	// Both parties walk 5 nodes; 2 linear layers prepared per party.
	if layerSpans != 2*len(m.Nodes) || prepareSpans != 4 {
		t.Errorf("got %d layer spans (want %d) and %d prepare spans (want 4)",
			layerSpans, 2*len(m.Nodes), prepareSpans)
	}
	// Protocol ops must have nested under the layers, not floated to roots.
	for _, r := range spans {
		if r.Parent == 0 && !strings.HasPrefix(r.Name, "p0.") && !strings.HasPrefix(r.Name, "p1.") {
			t.Errorf("unexpected root span %q", r.Name)
		}
	}
}

// TestTraceAttributionLeNet5 is the paper-scale acceptance criterion: a
// LeNet5 local inference's per-layer byte totals sum exactly to the
// session's transport.Stats totals.
func TestTraceAttributionLeNet5(t *testing.T) {
	if testing.Short() {
		t.Skip("full LeNet5 secure inference")
	}
	m := nn.LeNet5(nn.ZooConfig{Seed: 5})
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64(i%23) - 11
	}
	tr := telemetry.New()
	res, err := RunLocal(m, x, Options{CarrierBits: 32, Seed: 6, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	assertExactAttribution(t, tr, "p0.infer", &res.Online)
	// Party 1's endpoint sees the mirror image of party 0's traffic (its
	// own round count — the two differ because rounds are counted at the
	// receiver — so only the byte/message mirror is asserted).
	assertExactAttribution(t, tr, "p1.infer", nil)
	for _, r := range tr.Spans() {
		if r.Parent != 0 || r.Name != "p1.infer" {
			continue
		}
		if r.Comm.BytesSent != res.Online.BytesRecv || r.Comm.BytesRecv != res.Online.BytesSent ||
			r.Comm.MsgsSent != res.Online.MsgsRecv || r.Comm.MsgsRecv != res.Online.MsgsSent {
			t.Errorf("p1.infer comm %+v is not the mirror of online stats %+v", r.Comm, res.Online)
		}
	}
}

// TestTraceBatchLanes checks the batch executor's tracing: one lane pair
// per image, with the per-image root deltas summing to the online total.
func TestTraceBatchLanes(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	xs := [][]int64{input(64), input(64), input(64)}
	tr := telemetry.New()
	res, err := RunLocalBatch(m, xs, Options{CarrierBits: 16, Seed: 3, Workers: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	var sum transport.Stats
	lanes := map[uint64]bool{}
	for _, r := range tr.Spans() {
		if r.Parent == 0 && strings.HasPrefix(r.Name, "p0.image") {
			sum.Add(r.Comm)
			lanes[r.Lane] = true
		}
	}
	if len(lanes) != len(xs) {
		t.Errorf("got %d image lanes, want %d", len(lanes), len(xs))
	}
	if sum != res.Online {
		t.Errorf("image roots sum %+v != online total %+v", sum, res.Online)
	}
	// Within each image lane the layer + reveal spans partition that
	// image's root delta (per-image session stats aren't exposed, so only
	// the partition is checked here).
	for i := range xs {
		assertExactAttribution(t, tr, fmt.Sprintf("p0.image%d", i), nil)
	}
}

// TestTelemetryDisabledBitIdentical asserts the zero-cost contract:
// enabling tracing (or leaving it off) never changes the logits, at any
// Workers setting.
func TestTelemetryDisabledBitIdentical(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	x := input(64)
	var base []int64
	for _, workers := range []uint{1, 2, 4} {
		for _, traced := range []bool{false, true} {
			cfg := Options{CarrierBits: 16, Seed: 99, Workers: workers}
			if traced {
				cfg.Trace = telemetry.New()
			}
			res, err := RunLocal(m, x, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res.Logits
				continue
			}
			if !reflect.DeepEqual(res.Logits, base) {
				t.Errorf("workers=%d traced=%v: logits %v != baseline %v", workers, traced, res.Logits, base)
			}
		}
	}
}
