package engine

import (
	"testing"

	"aq2pnn/internal/nn"
)

// The Workers knob must never change observable results: the batch
// executor derives every image's randomness serially before any lane
// runs, so logits AND measured traffic are bit-identical at every
// parallelism degree. (Faithful truncation's ±1 LSB depends on the share
// randomness — scheduling-dependent PRG consumption would break this.)

func runBatch(t *testing.T, m *nn.Model, xs [][]int64, cfg Options) *BatchResult {
	t.Helper()
	res, err := RunLocalBatch(m, xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameBatch(t *testing.T, ref, got *BatchResult, workers uint) {
	t.Helper()
	if len(got.Logits) != len(ref.Logits) {
		t.Fatalf("Workers=%d: %d images, want %d", workers, len(got.Logits), len(ref.Logits))
	}
	for i := range ref.Logits {
		for j := range ref.Logits[i] {
			if got.Logits[i][j] != ref.Logits[i][j] {
				t.Fatalf("Workers=%d image %d logit %d: %d, want %d",
					workers, i, j, got.Logits[i][j], ref.Logits[i][j])
			}
		}
	}
	if got.Setup != ref.Setup {
		t.Errorf("Workers=%d setup stats %v, want %v", workers, got.Setup, ref.Setup)
	}
	if got.Online != ref.Online {
		t.Errorf("Workers=%d online stats %v, want %v", workers, got.Online, ref.Online)
	}
	if got.OnlinePerImage != ref.OnlinePerImage {
		t.Errorf("Workers=%d per-image stats %v, want %v", workers, got.OnlinePerImage, ref.OnlinePerImage)
	}
}

func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	xs := [][]int64{input(64), input(64), input(64), input(64), input(64)}
	base := Options{CarrierBits: 24, Seed: 31, Workers: 1}
	ref := runBatch(t, m, xs, base)
	sweep := []uint{2, 4, 7}
	if raceEnabled {
		sweep = []uint{4} // race detector is ~10x slower; one parallel degree suffices
	}
	for _, w := range sweep {
		cfg := base
		cfg.Workers = w
		assertSameBatch(t, ref, runBatch(t, m, xs, cfg), w)
	}
}

func TestLeNet5BatchDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("LeNet5 batch is slow")
	}
	if raceEnabled {
		t.Skip("LeNet5 sweep exceeds the race detector's time budget; the tiny-model sweep covers the same code paths")
	}
	m, err := nn.ByName("lenet5", nn.ZooConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := m.InputShape().Numel()
	xs := make([][]int64, 2)
	for i := range xs {
		x := make([]int64, n)
		for j := range x {
			x[j] = int64((j*7+i*13)%23) - 11
		}
		xs[i] = x
	}
	base := Options{CarrierBits: 16, Seed: 3, Workers: 1}
	ref := runBatch(t, m, xs, base)
	cfg := base
	cfg.Workers = 3
	assertSameBatch(t, ref, runBatch(t, m, xs, cfg), 3)
}

func TestBatchRevealClassOnly(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	xs := [][]int64{input(64), input(64), input(64)}
	open := runBatch(t, m, xs, Options{CarrierBits: 24, Seed: 17, Workers: 2})
	hidden := runBatch(t, m, xs, Options{CarrierBits: 24, Seed: 17, Workers: 2, RevealClassOnly: true})
	if hidden.Logits != nil {
		t.Fatal("RevealClassOnly batch leaked logits")
	}
	if len(hidden.Classes) != len(xs) {
		t.Fatalf("got %d classes, want %d", len(hidden.Classes), len(xs))
	}
	for i, logits := range open.Logits {
		if want := nn.Argmax(logits); hidden.Classes[i] != want {
			t.Errorf("image %d class %d, want argmax %d", i, hidden.Classes[i], want)
		}
	}
}

func TestRunLocalDeterministicAcrossWorkers(t *testing.T) {
	m := tinyModel(nn.PoolMax)
	x := input(64)
	ref, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(m, x, Options{CarrierBits: 24, Seed: 5, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Logits {
		if got.Logits[i] != ref.Logits[i] {
			t.Fatalf("logit %d: %d, want %d", i, got.Logits[i], ref.Logits[i])
		}
	}
	if got.Online != ref.Online {
		t.Errorf("online stats %v, want %v", got.Online, ref.Online)
	}
}
