package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// Redial establishes a fresh connection for one session attempt. Each
// retry calls it again: a failed 2PC session cannot be resumed
// mid-protocol (the OT correlations and triple families are bound to the
// dead transcript), so recovery always re-establishes from scratch.
type Redial func(ctx context.Context) (transport.Conn, error)

// retrySeedSalt decorrelates the retry backoff stream from the protocol
// PRG seeds derived from the same cfg.Seed.
const retrySeedSalt = 0x9E3779B97F4A7C15

// RunUserWithRetry runs the user side of a networked session, re-dialing
// and replaying the protocol from scratch when an attempt fails
// transiently (connection refused/reset, peer crash mid-protocol, an
// injected fault, an attempt-deadline expiry). Permanent errors — a
// handshake mismatch, a malformed payload, parent-context cancellation —
// return immediately.
//
// Attempts are spaced by transport.BackoffDelay with cfg.Seed-derived
// jitter, so a given configuration retries on a reproducible schedule.
// Because the whole transcript is a deterministic function of cfg.Seed,
// a successful retry reveals logits bit-identical to what the failed
// attempt would have produced; an aborted prefix leaks nothing beyond
// what the completed run reveals anyway.
func RunUserWithRetry(ctx context.Context, dial Redial, m *nn.Model, x []int64, cfg Options) (*Result, error) {
	attempts := int(cfg.Retries) + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			telemetry.Count("aq2pnn_session_retries_total", 1)
			t := time.NewTimer(transport.BackoffDelay(attempt-1, cfg.RetryBase, 0, cfg.Seed^retrySeedSalt))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, errors.Join(ctx.Err(), lastErr)
			case <-t.C:
			}
		}
		res, err := runUserAttempt(ctx, dial, m, x, cfg)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The parent is gone: whatever the attempt reported, the
			// caller asked us to stop.
			return nil, err
		}
		// An attempt-deadline expiry is retryable even though the parent
		// context classifies deadline errors as permanent: the deadline
		// that fired was this attempt's own.
		if !transport.IsTransient(err) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("engine: session failed after %d attempts: %w", attempts, lastErr)
}

func runUserAttempt(ctx context.Context, dial Redial, m *nn.Model, x []int64, cfg Options) (*Result, error) {
	if cfg.SessionTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.SessionTimeout)
		defer cancel()
	}
	conn, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return RunUser(transport.WithContext(ctx, conn), m, x, cfg)
}
