package engine

import (
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/transport"
)

// scriptConn replays a fixed sequence of frames to the receiver and
// swallows sends — the engine-layer view of an arbitrary hostile peer.
type scriptConn struct {
	frames [][]byte
}

func (s *scriptConn) Send(p []byte) error { return nil }
func (s *scriptConn) Recv() ([]byte, error) {
	if len(s.frames) == 0 {
		return nil, io.EOF
	}
	p := s.frames[0]
	s.frames = s.frames[1:]
	return p, nil
}
func (s *scriptConn) Stats() transport.Stats { return transport.Stats{} }
func (s *scriptConn) ResetStats()            {}
func (s *scriptConn) Close() error           { return nil }

// splitFrames carves fuzz data into frames: a 4-byte little-endian length
// prefix (clamped to the remaining bytes) before each frame. This gives
// the fuzzer structural control over frame boundaries — the axis the
// chunked setup protocol validates — without ever allocating beyond the
// input it already holds.
func splitFrames(data []byte) [][]byte {
	var frames [][]byte
	for len(data) >= 4 {
		n := int(binary.LittleEndian.Uint32(data)) % (len(data) - 4 + 1)
		frames = append(frames, data[4:4+n])
		data = data[4+n:]
	}
	return frames
}

// joinFrames is the inverse of splitFrames, used to build seed corpora
// from real protocol transcripts.
func joinFrames(frames [][]byte) []byte {
	var out []byte
	for _, p := range frames {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// collectConn records every frame sendSetupBytes emits, for seed
// construction.
type collectConn struct {
	scriptConn
	sent [][]byte
}

func (c *collectConn) Send(p []byte) error {
	c.sent = append(c.sent, append([]byte(nil), p...))
	return nil
}

// FuzzRecvSetup feeds arbitrary frame sequences to the chunked setup
// receiver: whatever the header and chunk subheaders declare,
// recvSetupBytes must reject cleanly (typed error), never panic, and never
// buffer more than the announced total.
func FuzzRecvSetup(f *testing.F) {
	// Seed with a genuine transcript so the fuzzer starts from the valid
	// wire shape, plus targeted corruptions of it.
	col := &collectConn{}
	if err := sendShares(col, &wirePayload{X: []uint64{1, 2, 3, 4}}, 2); err != nil {
		f.Fatal(err)
	}
	f.Add(joinFrames(col.sent))
	if len(col.sent) >= 2 {
		trunc := [][]byte{col.sent[0]} // header without its chunks
		f.Add(joinFrames(trunc))
		swapped := [][]byte{col.sent[0], append([]byte{1, 0, 0, 0}, col.sent[1][4:]...)} // wrong chunk index
		f.Add(joinFrames(swapped))
	}
	giant := make([]byte, setupHeaderLen)
	binary.LittleEndian.PutUint32(giant, setupMagic)
	binary.LittleEndian.PutUint32(giant[4:], 1)
	binary.LittleEndian.PutUint64(giant[8:], maxSetupPayload) // announce 4 GiB
	f.Add(joinFrames([][]byte{giant}))
	f.Add([]byte("not a frame stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := &scriptConn{frames: splitFrames(data)}
		_, _ = recvSetupBytes(conn) // must not panic; errors are the expected outcome
	})
}

// FuzzHandshakeHello checks the hello decoder: arbitrary bytes never
// panic, and any hello it accepts survives an encode→decode roundtrip
// unchanged (the decoder reads exactly the fields the encoder writes).
func FuzzHandshakeHello(f *testing.F) {
	m := tinyModel(nn.PoolAvg)
	r := Options{CarrierBits: 20}.Carrier(m)
	f.Add(helloFor(roleUser, m, r, Options{CarrierBits: 20}).encode())
	f.Add(busyFrame())
	f.Add([]byte("AQ2S"))
	f.Add(make([]byte, helloLen))
	f.Add(append([]byte("AQ2S"), make([]byte, helloLen)...)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		h2, err := decodeHello(h.encode())
		if err != nil {
			t.Fatalf("re-decoding an accepted hello failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("hello roundtrip mismatch: %+v vs %+v", h, h2)
		}
	})
}

// FuzzShareCodec decodes arbitrary bytes as a flat share payload at every
// element width and runs shape validation: hostile payloads must be
// rejected with a typed error, never a panic; any accepted payload must
// survive a canonical re-encode→decode roundtrip unchanged.
func FuzzShareCodec(f *testing.F) {
	m := tinyModel(nn.PoolAvg)
	valid, err := encodeShares(&wirePayload{
		W:    map[int][]uint64{0: {1, 2}},
		Bias: map[int][]uint64{0: {3}},
		X:    []uint64{4, 5, 6},
	}, 2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                        // truncated slab
	oversize := append([]byte(nil), valid...)           // oversize declared length:
	binary.LittleEndian.PutUint32(oversize[16:], 1<<30) // first W entry claims 2^30 elements
	f.Add(oversize)
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a flat payload"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for width := 1; width <= 8; width++ {
			wp, err := decodeShares(data, width)
			if err != nil {
				if _, ok := err.(*PayloadError); !ok {
					t.Fatalf("width %d: rejection is %T (%v), want *PayloadError", width, err, err)
				}
				continue
			}
			_ = validateWirePayload(m, wp) // must not panic
			p2, err := encodeShares(wp, width)
			if err != nil {
				t.Fatalf("width %d: re-encoding an accepted payload failed: %v", width, err)
			}
			wp2, err := decodeShares(p2, width)
			if err != nil {
				t.Fatalf("width %d: re-decoding the canonical form failed: %v", width, err)
			}
			if !reflect.DeepEqual(wp, wp2) {
				t.Fatalf("width %d: roundtrip mismatch", width)
			}
		}
	})
}
