package engine

import (
	"errors"
	"sync"
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/transport"
)

func TestHelloEncodeDecodeRoundTrip(t *testing.T) {
	in := sessionHello{Version: 3, Role: roleProvider, Flags: flagLocalTrunc | flagNoExtension | flagClassOnly | flagSession, Carrier: 61, Model: 0xDEADBEEFCAFE}
	out, err := decodeHello(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
	if _, err := decodeHello([]byte("definitely not a hello frame")); err == nil {
		t.Error("garbage frame decoded as a hello")
	}
}

// exchangeBoth runs exchangeHello on both ends of a pipe and returns both
// errors.
func exchangeBoth(t *testing.T, mine, theirs sessionHello) (errA, errB error) {
	t.Helper()
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errA = exchangeHello(a, mine, 0) }()
	go func() { defer wg.Done(); errB = exchangeHello(b, theirs, 0) }()
	wg.Wait()
	return errA, errB
}

func TestHandshakeMismatchTypedOnBothParties(t *testing.T) {
	base := func(role uint8) sessionHello {
		return sessionHello{Version: ProtocolVersion, Role: role, Carrier: 40, Model: 0x1234}
	}
	cases := []struct {
		name   string
		mutate func(*sessionHello)
		field  string
	}{
		{"version", func(h *sessionHello) { h.Version++ }, "protocol version"},
		{"role collision", func(h *sessionHello) { h.Role = roleUser }, "role"},
		{"model", func(h *sessionHello) { h.Model ^= 1 }, "model fingerprint"},
		{"carrier", func(h *sessionHello) { h.Carrier = 61 }, "carrier ring width"},
		{"flags", func(h *sessionHello) { h.Flags = flagLocalTrunc }, "protocol flags"},
		// A provider that fails to mirror the session request desynchronises
		// (one side expects the attach exchange): the client must reject it.
		// The serving path (provideConn) adopts flagSession/flagClassOnly
		// from the client before checkHello, so honest providers never hit
		// this; the session tests cover that adoption end to end.
		{"session flag unmirrored", func(h *sessionHello) { h.Flags = flagSession }, "protocol flags"},
	}
	for _, tc := range cases {
		mine, theirs := base(roleUser), base(roleProvider)
		tc.mutate(&theirs)
		errA, errB := exchangeBoth(t, mine, theirs)
		for side, err := range map[string]error{"user": errA, "provider": errB} {
			var he *HandshakeError
			if !errors.As(err, &he) {
				t.Errorf("%s/%s: got %v, want *HandshakeError", tc.name, side, err)
				continue
			}
			if he.Field != tc.field {
				t.Errorf("%s/%s: field %q, want %q", tc.name, side, he.Field, tc.field)
			}
			if transport.IsTransient(err) {
				t.Errorf("%s/%s: handshake mismatch classified transient", tc.name, side)
			}
		}
	}
	if errA, errB := exchangeBoth(t, base(roleUser), base(roleProvider)); errA != nil || errB != nil {
		t.Errorf("matching hellos rejected: %v / %v", errA, errB)
	}
}

// TestSessionHandshakeFailsFastEndToEnd runs the real RunUser/RunProvider
// pair with disagreeing configurations and checks both sides fail with a
// typed error before any protocol material crosses — previously the
// carrier mismatch below desynchronised mid-protocol and surfaced as a
// garbled reveal or a hang.
func TestSessionHandshakeFailsFastEndToEnd(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cases := []struct {
		name         string
		userCfg      Options
		providerCfg  Options
		field        string
		providerView *nn.Model
	}{
		{
			name:        "carrier width",
			userCfg:     Options{CarrierBits: 20, Seed: 4},
			providerCfg: Options{CarrierBits: 18, Seed: 4},
			field:       "carrier ring width",
		},
		{
			name:        "truncation mode",
			userCfg:     Options{CarrierBits: 20, Seed: 4, LocalTrunc: true},
			providerCfg: Options{CarrierBits: 20, Seed: 4},
			field:       "protocol flags",
		},
		{
			name:         "model architecture",
			userCfg:      Options{CarrierBits: 20, Seed: 4},
			providerCfg:  Options{CarrierBits: 20, Seed: 4},
			field:        "model fingerprint",
			providerView: tinyModel(nn.PoolMax),
		},
	}
	for _, tc := range cases {
		a, b := transport.Pipe()
		pm := m
		if tc.providerView != nil {
			pm = tc.providerView
		}
		var errU, errP error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _, errU = RunUser(a, m, input(64), tc.userCfg) }()
		go func() { defer wg.Done(); errP = RunProvider(b, pm, tc.providerCfg) }()
		wg.Wait()
		a.Close()
		b.Close()
		for side, err := range map[string]error{"user": errU, "provider": errP} {
			var he *HandshakeError
			if !errors.As(err, &he) {
				t.Errorf("%s/%s: got %v, want *HandshakeError", tc.name, side, err)
				continue
			}
			if he.Field != tc.field {
				t.Errorf("%s/%s: field %q, want %q", tc.name, side, he.Field, tc.field)
			}
		}
	}
}

func TestHelloForResolvesCarrier(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	cfg := Options{CarrierBits: 20}
	h := helloFor(roleUser, m, ring.New(20), cfg)
	if h.Carrier != 20 || h.Version != ProtocolVersion || h.Model != m.Fingerprint() {
		t.Errorf("unexpected hello %+v", h)
	}
}
