package engine

import (
	"context"
	"runtime"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/testutil"
	"aq2pnn/internal/transport"
)

// runSessionLogits opens one persistent session against a fresh harness
// (fresh registry ⇒ deterministic token stream ⇒ identical per-session B
// masks across calls) and runs n inferences, returning each one's logits
// and online stats.
func runSessionLogits(t *testing.T, m *nn.Model, x []int64, cfg Options, n int) ([][]int64, []transport.Stats) {
	t.Helper()
	h := newSessionHarness(t, m, cfg)
	s, err := NewClient(h.dial, cfg).OpenSession(context.Background(), m)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	var logits [][]int64
	var online []transport.Stats
	for i := 0; i < n; i++ {
		res, err := s.Infer(context.Background(), x)
		if err != nil {
			t.Fatalf("inference %d: %v", i, err)
		}
		logits = append(logits, res.Logits)
		online = append(online, res.Online)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	h.wg.Wait()
	for i, err := range h.providerErrs() {
		if err != nil {
			t.Errorf("provider session %d: %v", i, err)
		}
	}
	return logits, online
}

// descendantOfRoot reports, for every span record, whether it descends
// from a root whose name matches rootName.
func underRoot(spans []telemetry.SpanRecord, rootName string) map[uint64]bool {
	byID := map[uint64]telemetry.SpanRecord{}
	for _, r := range spans {
		byID[r.ID] = r
	}
	under := map[uint64]bool{}
	var from func(id uint64) bool
	from = func(id uint64) bool {
		r, ok := byID[id]
		if !ok {
			return false
		}
		if r.Parent == 0 {
			return r.Name == rootName
		}
		return from(r.Parent)
	}
	for _, r := range spans {
		under[r.ID] = from(r.ID)
	}
	return under
}

// TestSessionPreprocWarmMatchesCold is the tentpole acceptance scenario:
// a warm-bank session reveals logits bit-identical to the cold (inline
// generation) session at every Workers setting, and its steady-state
// inference roots carry no triple generation — every triple.gilboa span
// lives under a preproc.fill root instead.
func TestSessionPreprocWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	const inferences = 3
	for _, workers := range []uint{1, 2, 4} {
		cfg := testCfg()
		cfg.Workers = workers
		cold, coldOnline := runSessionLogits(t, m, x, cfg, inferences)

		wcfg := cfg
		wcfg.BankDepth = 2
		wcfg.FillWorkers = 2
		tr := telemetry.New()
		wcfg.Trace = tr
		warm, warmOnline := runSessionLogits(t, m, x, wcfg, inferences)

		for i := range cold {
			if len(cold[i]) == 0 || len(warm[i]) != len(cold[i]) {
				t.Fatalf("workers=%d inference %d: warm %d logits, cold %d", workers, i, len(warm[i]), len(cold[i]))
			}
			for j := range cold[i] {
				if warm[i][j] != cold[i][j] {
					t.Fatalf("workers=%d inference %d: warm logits %v, want bit-identical to cold %v",
						workers, i, warm[i], cold[i])
				}
			}
		}
		// The warm online path consumes precomputed kits, so its per-
		// inference traffic must be strictly below the cold path's (the
		// Gilboa exchanges moved to the fill stream), and byte-identical
		// across steady-state inferences.
		for i := range warmOnline {
			if warmOnline[i].TotalBytes() >= coldOnline[i].TotalBytes() {
				t.Errorf("workers=%d inference %d: warm online %d bytes, want < cold %d",
					workers, i, warmOnline[i].TotalBytes(), coldOnline[i].TotalBytes())
			}
			if warmOnline[i] != warmOnline[0] {
				t.Errorf("workers=%d inference %d online %+v, want byte-identical to inference 0 %+v",
					workers, i, warmOnline[i], warmOnline[0])
			}
		}
		// Trace discipline: generation spans live only under fill roots.
		spans := tr.Spans()
		fills := 0
		for _, r := range spans {
			if r.Parent == 0 && r.Name == "user.preproc.fill" {
				fills++
			}
		}
		// The filler runs ahead of consumption, so it fills at least one
		// kit per inference and at most BankDepth beyond the last Take.
		if fills < inferences || fills > inferences+wcfg.BankDepth {
			t.Errorf("workers=%d: %d user.preproc.fill roots, want %d..%d",
				workers, fills, inferences, inferences+wcfg.BankDepth)
		}
		inInfer := underRoot(spans, "user.session.infer")
		inFill := underRoot(spans, "user.preproc.fill")
		for _, r := range spans {
			if r.Name != "triple.gilboa" {
				continue
			}
			if inInfer[r.ID] {
				t.Errorf("workers=%d: triple.gilboa span under a warm user.session.infer root", workers)
			}
			if !inFill[r.ID] {
				t.Errorf("workers=%d: triple.gilboa span outside the preproc.fill roots", workers)
			}
		}
	}
}

// TestSessionPreprocDrain: draining the plane mid-session stops and joins
// the filler but keeps the banked kits serving; inferences past the
// banked horizon degrade to inline generation — all bit-identical to the
// cold session, with no goroutine left behind.
func TestSessionPreprocDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	const inferences = 3
	cfg := testCfg()
	want, coldOnline := runSessionLogits(t, m, x, cfg, inferences)

	base := runtime.NumGoroutine()
	wcfg := cfg
	wcfg.BankDepth = 2
	h := newSessionHarness(t, m, wcfg)
	s, err := NewClient(h.dial, wcfg).OpenSession(context.Background(), m)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if !s.WarmupPreproc(wcfg.BankDepth) {
		t.Fatal("warm-up failed on a healthy plane")
	}
	if !s.DrainPreproc() {
		t.Fatal("DrainPreproc = false on a live plane")
	}
	if s.DrainPreproc() {
		t.Error("second DrainPreproc = true, want false (already drained)")
	}
	var online []transport.Stats
	for i := 0; i < inferences; i++ {
		res, err := s.Infer(context.Background(), x)
		if err != nil {
			t.Fatalf("inference %d: %v", i, err)
		}
		for j := range want[i] {
			if res.Logits[j] != want[i][j] {
				t.Fatalf("inference %d: drained-plane logits %v, want bit-identical %v", i, res.Logits, want[i])
			}
		}
		online = append(online, res.Online)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	h.wg.Wait()
	for i, err := range h.providerErrs() {
		if err != nil {
			t.Errorf("provider session %d: %v", i, err)
		}
	}
	// The banked inferences ride the warm wire protocol; the one past the
	// horizon falls back to the cold path's exact traffic.
	for i := 0; i < wcfg.BankDepth; i++ {
		if online[i].TotalBytes() >= coldOnline[i].TotalBytes() {
			t.Errorf("banked inference %d: online %d bytes, want < cold %d",
				i, online[i].TotalBytes(), coldOnline[i].TotalBytes())
		}
	}
	if online[inferences-1] != coldOnline[inferences-1] {
		t.Errorf("starved inference online %+v, want the cold path's %+v",
			online[inferences-1], coldOnline[inferences-1])
	}
	testutil.CheckGoroutines(t, base)
}

// TestSessionPreprocFillAttribution pins the fill root's comm accounting:
// each user.preproc.fill root carries the whole fill-stream traffic of its
// seq, covered exactly by its direct children (demand, per-layer gilboa,
// ack) — the tracecheck invariant for comm-carrying roots.
func TestSessionPreprocFillAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked session")
	}
	m := tinyModel(nn.PoolAvg)
	cfg := testCfg()
	cfg.BankDepth = 1
	tr := telemetry.New()
	cfg.Trace = tr
	_, _ = runSessionLogits(t, m, input(64), cfg, 2)
	spans := tr.Spans()
	children := map[uint64][]telemetry.SpanRecord{}
	for _, r := range spans {
		children[r.Parent] = append(children[r.Parent], r)
	}
	fills := 0
	for _, r := range spans {
		if r.Parent != 0 || r.Name != "user.preproc.fill" {
			continue
		}
		fills++
		var sum transport.Stats
		for _, c := range children[r.ID] {
			sum.BytesSent += c.Comm.BytesSent
			sum.BytesRecv += c.Comm.BytesRecv
		}
		if r.Comm.TotalBytes() == 0 {
			t.Error("fill root moved zero bytes")
		}
		if sum.BytesSent != r.Comm.BytesSent || sum.BytesRecv != r.Comm.BytesRecv {
			t.Errorf("fill root bytes (%d sent, %d recv) not covered by children (%d, %d)",
				r.Comm.BytesSent, r.Comm.BytesRecv, sum.BytesSent, sum.BytesRecv)
		}
	}
	if fills == 0 {
		t.Fatal("no user.preproc.fill roots recorded")
	}
}

// TestSessionPreprocChaos sweeps faults over the preprocessing stream on
// either side: the plane must degrade to synchronous inline generation —
// never block, never corrupt — with every inference's logits bit-identical
// to the clean cold run, the session completing cleanly, and no goroutine
// leaked. Run with -race in CI.
func TestSessionPreprocChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep over networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	const inferences = 3
	cfg := testCfg()
	want, _ := runSessionLogits(t, m, x, cfg, inferences)

	base := runtime.NumGoroutine()
	for _, side := range []struct {
		name  string
		party int
	}{{"user-filler", 0}, {"provider-filler", 1}} {
		for _, plan := range []struct {
			name string
			p    transport.FaultPlan
		}{
			{"immediate-death", transport.FaultPlan{FailAfter: 0}},
			{"mid-fill-drop", transport.FaultPlan{FailAfter: 7}},
			{"mid-fill-corrupt", transport.FaultPlan{FailAfter: 7, Corrupt: true}},
			{"late-drop", transport.FaultPlan{FailAfter: 40}},
		} {
			t.Run(side.name+"/"+plan.name, func(t *testing.T) {
				defer func() { preprocFaultWrap = nil }()
				preprocFaultWrap = func(party int, c transport.Conn) transport.Conn {
					if party == side.party {
						return transport.NewChaosConn(c, plan.p)
					}
					return c
				}
				wcfg := cfg
				wcfg.BankDepth = 2
				got, _ := runSessionLogits(t, m, x, wcfg, inferences)
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("inference %d: faulted-plane logits %v, want bit-identical %v", i, got[i], want[i])
						}
					}
				}
			})
		}
	}
	testutil.CheckGoroutines(t, base)
}

// TestSessionPreprocResumeAfterMainFault faults the MAIN stream of a warm
// session mid-inference: the client re-attaches through the resumption
// token, rebuilds the fill plane on the new connection, and the replayed
// seq reveals logits bit-identical to the unfaulted warm session.
func TestSessionPreprocResumeAfterMainFault(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	const inferences = 3
	cfg := testCfg()
	cfg.BankDepth = 2
	cfg.Retries = 2
	cfg.RetryBase = 5 * time.Millisecond
	ctx := context.Background()

	// Probe session: reference logits, plus the op counts that place the
	// fault. Setup stats count the raw (pre-mux) connection, so failAt
	// lands past the open; the concurrent fill traffic shares the raw op
	// budget, which only moves the cut earlier into inference 1's window —
	// wherever it lands, the client must recover to identical logits.
	h := newSessionHarness(t, m, cfg)
	s, err := NewClient(h.dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("probe open: %v", err)
	}
	setup := s.SetupStats()
	var want [][]int64
	inferOps := 0
	for i := 0; i < inferences; i++ {
		res, err := s.Infer(ctx, x)
		if err != nil {
			t.Fatalf("probe inference %d: %v", i, err)
		}
		want = append(want, res.Logits)
		inferOps = int(res.Online.MsgsSent + res.Online.MsgsRecv)
	}
	s.Close()
	h.wg.Wait()
	failAt := int(setup.MsgsSent+setup.MsgsRecv) + inferOps + inferOps/2

	h2 := newSessionHarness(t, m, cfg)
	h2.wrap = func(dial int, c transport.Conn) transport.Conn {
		if dial == 1 {
			return transport.NewChaosConn(c, transport.FaultPlan{FailAfter: failAt})
		}
		return nil
	}
	h2.beforeDial = func(dial int) {
		if dial == 2 {
			h2.waitProviderDone(1)
		}
	}
	s2, err := NewClient(h2.dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("open faulted session: %v", err)
	}
	for i := 0; i < inferences; i++ {
		res, err := s2.Infer(ctx, x)
		if err != nil {
			t.Fatalf("inference %d: %v", i, err)
		}
		for j := range want[i] {
			if res.Logits[j] != want[i][j] {
				t.Fatalf("inference %d: resumed warm logits %v, want bit-identical %v", i, res.Logits, want[i])
			}
		}
	}
	s2.Close()
	h2.wg.Wait()
}
