package engine

import (
	"fmt"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/secure"
	"aq2pnn/internal/share"
	"aq2pnn/internal/transport"
)

// Batched inference: the weight preparation (F openings) is paid once and
// every image reuses the prepared layers, as a deployed MLaaS endpoint
// would. The per-image online traffic is what Table 4 amortizes over its
// 1,000-iteration averages.

// BatchResult reports a batched secure inference run.
type BatchResult struct {
	// Logits holds each image's revealed outputs.
	Logits [][]int64
	// Setup is the one-time weight-preparation traffic (party i).
	Setup transport.Stats
	// OnlinePerImage is the average per-image online traffic.
	OnlinePerImage transport.Stats
	// Online is the total online traffic.
	Online  transport.Stats
	Carrier ring.Ring
}

// RunLocalBatch executes secure inference over a batch of inputs with one
// setup phase. All images ride the same carrier and configuration.
func RunLocalBatch(m *nn.Model, xs [][]int64, cfg Config) (*BatchResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("engine: empty batch")
	}
	r := cfg.Carrier(m)
	for i, x := range xs {
		if len(x) != m.InputShape().Numel() {
			return nil, fmt.Errorf("engine: image %d has %d values, want %d", i, len(x), m.InputShape().Numel())
		}
	}
	sess := secure.NewLocalSession(cfg.Seed)
	defer sess.Close()
	sess.P0.LocalTrunc = cfg.LocalTrunc
	sess.P1.LocalTrunc = cfg.LocalTrunc
	g := prg.NewSeeded(cfg.Seed ^ 0xBA7C4)
	ws0, ws1, err := SplitModel(g, m, r)
	if err != nil {
		return nil, err
	}
	party0 := &Party{Ctx: sess.P0, Model: m, Weights: ws0, R: r}
	party1 := &Party{Ctx: sess.P1, Model: m, Weights: ws1, R: r}
	if err := sess.Run(
		func(*secure.Context) error { return party0.Prepare() },
		func(*secure.Context) error { return party1.Prepare() },
	); err != nil {
		return nil, err
	}
	setup, _ := sess.Stats()
	sess.ResetStats()

	out := &BatchResult{Setup: setup, Carrier: r}
	for _, x := range xs {
		x0, x1 := share.SplitVec(g, r, r.FromInts(x))
		var logits []int64
		err := sess.Run(
			func(c *secure.Context) error {
				o, err := party0.Infer(x0)
				if err != nil {
					return err
				}
				opened, err := c.RevealTo(r, share.PartyI, o)
				if err != nil {
					return err
				}
				logits = r.ToInts(opened)
				return nil
			},
			func(c *secure.Context) error {
				o, err := party1.Infer(x1)
				if err != nil {
					return err
				}
				_, err = c.RevealTo(r, share.PartyI, o)
				return err
			},
		)
		if err != nil {
			return nil, err
		}
		out.Logits = append(out.Logits, logits)
	}
	total, _ := sess.Stats()
	out.Online = total
	n := uint64(len(xs))
	out.OnlinePerImage = transport.Stats{
		BytesSent: total.BytesSent / n,
		BytesRecv: total.BytesRecv / n,
		MsgsSent:  total.MsgsSent / n,
		MsgsRecv:  total.MsgsRecv / n,
		Rounds:    total.Rounds / n,
	}
	return out, nil
}
