package engine

import (
	"fmt"
	"sync"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/secure"
	"aq2pnn/internal/share"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
	"aq2pnn/internal/triple"
)

// Batched inference: the weight preparation (F openings) is paid once and
// every image reuses the prepared layers, as a deployed MLaaS endpoint
// would. The per-image online traffic is what Table 4 amortizes over its
// 1,000-iteration averages.
//
// Images are pipelined: cfg.Workers lanes each run a full online phase
// over their own in-memory session, so one image's OT rounds overlap
// another's GEMMs. Determinism is preserved by construction — every image
// draws its transcript randomness from a PRG fork derived serially before
// any lane starts, and pulls triples from its own fixed-B pool — so the
// logits and the measured per-image traffic are bit-identical for every
// Workers setting.

// BatchResult reports a batched secure inference run.
type BatchResult struct {
	// Logits holds each image's revealed outputs (nil per image under
	// RevealClassOnly).
	Logits [][]int64
	// Classes holds each image's securely computed argmax when
	// RevealClassOnly is set (nil otherwise).
	Classes []int
	// Setup is the one-time weight-preparation traffic (party i).
	Setup transport.Stats
	// OnlinePerImage is the average per-image online traffic.
	OnlinePerImage transport.Stats
	// Online is the total online traffic summed over images.
	Online transport.Stats
	// PerOp aggregates each node's cost over the batch (bytes, rounds and
	// host time summed across images; Elems stays per-image).
	PerOp   []OpProfile
	Carrier ring.Ring
}

// RunLocalBatch executes secure inference over a batch of inputs with one
// setup phase. All images ride the same carrier and configuration.
func RunLocalBatch(m *nn.Model, xs [][]int64, cfg Options) (*BatchResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("engine: empty batch")
	}
	r := cfg.Carrier(m)
	for i, x := range xs {
		if len(x) != m.InputShape().Numel() {
			return nil, fmt.Errorf("engine: image %d has %d values, want %d", i, len(x), m.InputShape().Numel())
		}
	}
	g := prg.NewSeeded(saltedSeed(cfg.Seed, 0xBA7C4))
	ws0, ws1, err := SplitModel(g, m, r)
	if err != nil {
		return nil, err
	}

	// One fixed weight mask per linear node, dealt up front so the F
	// openings (setup) and every image's triple pools share the same B.
	fixed := map[int]*triple.FixedB{}
	linearNodes := []int{}
	for i, node := range m.Nodes {
		k, n, ok := LinearDims(node)
		if !ok {
			continue
		}
		fb, err := triple.DealFixedB(g.Fork(), r, k, n)
		if err != nil {
			return nil, fmt.Errorf("engine: dealing node %d mask: %w", i, err)
		}
		fixed[i] = fb
		linearNodes = append(linearNodes, i)
	}

	// Setup phase: one session pays the F openings; the preparation
	// product is exported for reuse by every image session, so batch setup
	// traffic equals single-inference setup traffic exactly.
	famsFor := func(pg *prg.PRG, party int) map[int]triple.Family {
		fams := map[int]triple.Family{}
		for _, i := range linearNodes {
			fams[i] = fixed[i].Pool(pg.Fork()).View(party)
		}
		return fams
	}
	prep := secure.NewLocalSession(saltedSeed(cfg.Seed, 0x5E55BA7C))
	prep.P0.LocalTrunc = cfg.LocalTrunc
	prep.P1.LocalTrunc = cfg.LocalTrunc
	prepG := g.Fork()
	party0 := &Party{Ctx: prep.P0, Model: m, Weights: ws0, R: r, Families: famsFor(prepG, 0)}
	party1 := &Party{Ctx: prep.P1, Model: m, Weights: ws1, R: r, Families: famsFor(prepG, 1)}
	sp0 := cfg.Trace.Root("p0.setup", telemetry.WithConn(prep.P0.Conn))
	sp1 := cfg.Trace.Root("p1.setup", telemetry.WithConn(prep.P1.Conn))
	prep.P0.SetTrace(telemetry.NewScope(sp0))
	prep.P1.SetTrace(telemetry.NewScope(sp1))
	err = prep.Run(
		func(*secure.Context) error { return party0.Prepare() },
		func(*secure.Context) error { return party1.Prepare() },
	)
	sp0.End()
	sp1.End()
	if err != nil {
		prep.Close()
		return nil, err
	}
	setup, _ := prep.Stats()
	preps0 := party0.PreparedWeights()
	preps1 := party1.PreparedWeights()
	prep.Close()

	var reluRing ring.Ring
	if cfg.ABReLUBits != 0 && cfg.ABReLUBits < r.Bits {
		reluRing = ring.New(cfg.ABReLUBits)
	}
	pool := cfg.Pool()

	// Derive all per-image randomness serially BEFORE any lane runs: the
	// input shares and one PRG fork per image. Faithful truncation's ±1
	// LSB depends on the share randomness, so this is what makes logits
	// independent of lane scheduling.
	k := len(xs)
	x0 := make([][]uint64, k)
	x1 := make([][]uint64, k)
	forks := make([]*prg.PRG, k)
	for i, x := range xs {
		x0[i], x1[i] = share.SplitVec(g, r, r.FromInts(x))
		forks[i] = g.Fork()
	}

	logits := make([][]int64, k)
	classes := make([]int, k)
	stats := make([]transport.Stats, k)
	profiles := make([][]OpProfile, k)
	errs := make([]error, k)

	runImage := func(i int) error {
		ig := forks[i]
		// Per-image triple pools over the shared fixed Bs (fork order is
		// the serial node order — deterministic).
		fams0 := map[int]triple.Family{}
		fams1 := map[int]triple.Family{}
		for _, n := range linearNodes {
			fp := fixed[n].Pool(ig.Fork())
			fams0[n] = fp.View(0)
			fams1[n] = fp.View(1)
		}
		sess := secure.NewLocalSessionFrom(ig.Fork())
		defer sess.Close()
		sess.P0.LocalTrunc = cfg.LocalTrunc
		sess.P1.LocalTrunc = cfg.LocalTrunc
		sess.P0.Pool = pool
		sess.P1.Pool = pool
		var profile []OpProfile
		p0 := &Party{Ctx: sess.P0, Model: m, Weights: ws0, R: r, ReLURing: reluRing, Pool: pool, Profile: &profile}
		p1 := &Party{Ctx: sess.P1, Model: m, Weights: ws1, R: r, ReLURing: reluRing, Pool: pool}
		p0.Bind(preps0, fams0)
		p1.Bind(preps1, fams1)
		// Each image session gets its own pair of root spans (= trace
		// lanes); the tracer is goroutine-safe, the per-lane scopes are
		// confined to their party goroutine.
		img0 := cfg.Trace.Root(fmt.Sprintf("p0.image%d", i), telemetry.WithConn(sess.P0.Conn))
		img1 := cfg.Trace.Root(fmt.Sprintf("p1.image%d", i), telemetry.WithConn(sess.P1.Conn))
		defer img0.End()
		defer img1.End()
		sess.P0.SetTrace(telemetry.NewScope(img0))
		sess.P1.SetTrace(telemetry.NewScope(img1))

		finish := func(c *secure.Context, o []uint64) error {
			sp := c.Trace.Enter("reveal")
			defer c.Trace.Exit(sp)
			if cfg.RevealClassOnly {
				idx, err := c.ArgMaxBatched(r, o)
				if err != nil {
					return err
				}
				//lint:declassify protocol output: the argmax class index is the protocol's defined result, revealed to the user party only
				opened, err := c.RevealTo(r, share.PartyI, []uint64{idx})
				if err != nil {
					return err
				}
				if c.Party == share.PartyI {
					classes[i] = int(r.ToInt(opened[0]))
				}
				return nil
			}
			//lint:declassify protocol output: the logit vector is the protocol's defined result, revealed to the user party only
			opened, err := c.RevealTo(r, share.PartyI, o)
			if err != nil {
				return err
			}
			if c.Party == share.PartyI {
				logits[i] = r.ToInts(opened)
			}
			return nil
		}
		err := sess.Run(
			func(c *secure.Context) error {
				o, err := p0.Infer(x0[i])
				if err != nil {
					return err
				}
				return finish(c, o)
			},
			func(c *secure.Context) error {
				o, err := p1.Infer(x1[i])
				if err != nil {
					return err
				}
				return finish(c, o)
			},
		)
		stats[i], _ = sess.Stats()
		profiles[i] = profile
		return err
	}

	// Pipeline images over dedicated lanes. Lanes block on pipe I/O, so
	// they are goroutines of their own rather than pool tasks; the pool
	// accelerates the compute inside each lane.
	lanes := pool.Workers()
	if lanes > k {
		lanes = k
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = runImage(i)
			}
		}()
	}
	for i := 0; i < k; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: image %d: %w", i, err)
		}
	}

	out := &BatchResult{Logits: logits, Setup: setup, Carrier: r}
	if cfg.RevealClassOnly {
		out.Classes = classes
		out.Logits = nil
	}
	for i := 0; i < k; i++ {
		out.Online.Add(stats[i])
		if profiles[i] != nil {
			if out.PerOp == nil {
				out.PerOp = append([]OpProfile(nil), profiles[i]...)
			} else {
				for j := range out.PerOp {
					out.PerOp[j].Bytes += profiles[i][j].Bytes
					out.PerOp[j].Rounds += profiles[i][j].Rounds
					out.PerOp[j].HostTime += profiles[i][j].HostTime
				}
			}
		}
	}
	n := uint64(k)
	out.OnlinePerImage = transport.Stats{
		BytesSent: out.Online.BytesSent / n,
		BytesRecv: out.Online.BytesRecv / n,
		MsgsSent:  out.Online.MsgsSent / n,
		MsgsRecv:  out.Online.MsgsRecv / n,
		Rounds:    out.Online.Rounds / n,
		SendErrs:  out.Online.SendErrs / n,
		RecvErrs:  out.Online.RecvErrs / n,
	}
	return out, nil
}
