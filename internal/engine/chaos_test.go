package engine

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/testutil"
	"aq2pnn/internal/transport"
)

// Deterministic chaos harness: networked inferences with a fault injected
// at every (or a sampled set of) transport op index, asserting the
// failure contract — both parties return a classified error within the
// deadline, nothing deadlocks, no goroutine leaks, and any reveal that
// does complete is uncorrupted.
//
// The exhaustive sweep over every op index runs when AQ2PNN_CHAOS=1 (the
// CI chaos job); the default run samples indices to stay fast. The
// LeNet5 sweep needs AQ2PNN_CHAOS_LENET=1 — at ~26s per late-fault run
// it is CI-only by design.

func chaosExhaustive() bool { return os.Getenv("AQ2PNN_CHAOS") == "1" }

// sweepIndices picks the fault injection points: every index when
// exhaustive, else all early indices (where setup/handshake faults live)
// plus a stride through the long online tail.
func sweepIndices(total int) []int {
	if chaosExhaustive() {
		idx := make([]int, total)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var idx []int
	for k := 0; k < total; k++ {
		if k < 12 || k%7 == 0 || k >= total-2 {
			idx = append(idx, k)
		}
	}
	return idx
}

// cleanRun measures a fault-free session: per-party transport op counts
// and the reference logits faulted runs are compared against.
func cleanRun(t *testing.T, m *nn.Model, x []int64, cfg Options) (userOps, providerOps int, logits []int64) {
	t.Helper()
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	var res *Result
	var errU, errP error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); res, errU = RunUser(a, m, x, cfg) }()
	go func() { defer wg.Done(); errP = RunProvider(b, m, cfg) }()
	wg.Wait()
	if errU != nil || errP != nil {
		t.Fatalf("clean run failed: user %v, provider %v", errU, errP)
	}
	userOps = int(res.Setup.MsgsSent + res.Setup.MsgsRecv + res.Online.MsgsSent + res.Online.MsgsRecv)
	ps := b.Stats()
	providerOps = int(ps.MsgsSent + ps.MsgsRecv)
	return userOps, providerOps, res.Logits
}

// faultedRun executes one session with a drop fault after failAfter ops
// on the chosen party and asserts the failure contract.
func faultedRun(t *testing.T, m *nn.Model, x []int64, cfg Options, faultUser bool, failAfter int, want []int64) {
	t.Helper()
	a, b := transport.Pipe()
	plan := transport.FaultPlan{FailAfter: failAfter, Seed: uint64(failAfter)}
	uc, pc := transport.Conn(a), transport.Conn(b)
	if faultUser {
		uc = transport.NewChaosConn(a, plan)
	} else {
		pc = transport.NewChaosConn(b, plan)
	}
	var res *Result
	var errU, errP error
	var wg sync.WaitGroup
	wg.Add(2)
	// Closing the underlying pipe end when a party exits is the conn
	// hygiene RunUserWithRetry/ServeTCP provide in production; it is what
	// unblocks the healthy peer.
	go func() { defer wg.Done(); defer a.Close(); res, errU = RunUser(uc, m, x, cfg) }()
	go func() { defer wg.Done(); defer b.Close(); errP = RunProvider(pc, m, cfg) }()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock: fault at op %d (user=%v) unresolved after 2m\n%s", failAfter, faultUser, buf[:n])
	}
	faulted, healthy := errU, errP
	side := "user"
	if !faultUser {
		faulted, healthy = errP, errU
		side = "provider"
	}
	if !errors.Is(faulted, transport.ErrInjected) {
		t.Errorf("fault at %s op %d: faulted party returned %v, want ErrInjected in the chain", side, failAfter, faulted)
	}
	if !transport.IsTransient(faulted) {
		t.Errorf("fault at %s op %d: error %v not classified transient", side, failAfter, faulted)
	}
	// The healthy peer either finished before the fault mattered or must
	// fail with a classified transport error — never hang, never panic.
	if healthy != nil && !transport.IsTransient(healthy) {
		t.Errorf("fault at %s op %d: healthy peer error %v not classified transient", side, failAfter, healthy)
	}
	// A reveal that completed despite the peer's fault must be correct.
	if errU == nil && res != nil {
		if len(res.Logits) != len(want) {
			t.Fatalf("fault at %s op %d: reveal returned %d logits, want %d", side, failAfter, len(res.Logits), len(want))
		}
		for i := range want {
			if res.Logits[i] != want[i] {
				t.Errorf("fault at %s op %d: corrupted reveal %v, want %v", side, failAfter, res.Logits, want)
				break
			}
		}
	}
}

func sweepModel(t *testing.T, m *nn.Model, cfg Options, userIdx, providerIdx []int) {
	t.Helper()
	x := make([]int64, m.InputShape().Numel())
	for i := range x {
		x[i] = int64(i%13) - 6
	}
	base := runtime.NumGoroutine()
	userOps, providerOps, want := cleanRun(t, m, x, cfg)
	t.Logf("clean run: %d user ops, %d provider ops", userOps, providerOps)
	if userIdx == nil {
		userIdx = sweepIndices(userOps)
	}
	if providerIdx == nil {
		providerIdx = sweepIndices(providerOps)
	}
	for _, k := range userIdx {
		if k >= userOps {
			continue
		}
		faultedRun(t, m, x, cfg, true, k, want)
	}
	for _, k := range providerIdx {
		if k >= providerOps {
			continue
		}
		faultedRun(t, m, x, cfg, false, k, want)
	}
	testutil.CheckGoroutines(t, base)
}

func TestFaultSweepMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	m, err := nn.ByName("micro", nn.ZooConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sweepModel(t, m, Options{Seed: 4, Group: ot.TestGroup()}, nil, nil)
}

func TestFaultSweepLeNet5(t *testing.T) {
	if os.Getenv("AQ2PNN_CHAOS_LENET") != "1" {
		t.Skip("LeNet5 sweep runs in the chaos CI job (AQ2PNN_CHAOS_LENET=1)")
	}
	m, err := nn.ByName("lenet5", nn.ZooConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Options{Seed: 4, Group: ot.TestGroup()}
	// Late-fault LeNet5 runs cost nearly a full inference (~26s); sample
	// the handshake/setup boundary, the early online phase and the final
	// reveal on each side instead of sweeping all ~176 indices.
	sweepModel(t, m, cfg, []int{0, 3, 9, 40}, []int{1, 6, 30})
}

// TestFaultSweepLatency runs a few drop faults under seeded latency
// injection, checking the delay path keeps the same failure contract.
func TestFaultSweepLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	m, err := nn.ByName("micro", nn.ZooConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Options{Seed: 4, Group: ot.TestGroup()}
	x := make([]int64, m.InputShape().Numel())
	for _, k := range []int{2, 19} {
		a, b := transport.Pipe()
		uc := transport.NewChaosConn(a, transport.FaultPlan{
			FailAfter: k, MaxLatency: 2 * time.Millisecond, Seed: 77,
		})
		var errU, errP error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); defer a.Close(); _, errU = RunUser(uc, m, x, cfg) }()
		go func() { defer wg.Done(); defer b.Close(); errP = RunProvider(b, m, cfg) }()
		wg.Wait()
		if !errors.Is(errU, transport.ErrInjected) {
			t.Errorf("latency+drop at %d: user error %v", k, errU)
		}
		if errP != nil && !transport.IsTransient(errP) {
			t.Errorf("latency+drop at %d: provider error %v not transient", k, errP)
		}
	}
}
