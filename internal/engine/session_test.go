package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// sessionHarness serves provideConn over in-memory pipes: every dial
// spawns a provider goroutine against the shared registry, so a client's
// retry loop exercises the real park/re-attach path. The provider runs
// untraced (its spans would otherwise pollute client-side span counts).
type sessionHarness struct {
	t   *testing.T
	reg *Registry
	cfg Options

	mu       sync.Mutex
	wg       sync.WaitGroup
	dials    int
	provErrs []error
	// wrap, when set, may replace the client end of dial n (1-based).
	wrap func(dial int, c transport.Conn) transport.Conn
	// beforeDial, when set, runs at the start of dial n — tests use it to
	// hold a re-dial until the faulted provider goroutine has parked.
	beforeDial func(dial int)
}

func newSessionHarness(t *testing.T, m *nn.Model, cfg Options) *sessionHarness {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add(m); err != nil {
		t.Fatal(err)
	}
	cfg.Trace = nil
	return &sessionHarness{t: t, reg: reg, cfg: cfg}
}

func (h *sessionHarness) dial(ctx context.Context) (transport.Conn, error) {
	h.mu.Lock()
	h.dials++
	d := h.dials
	reg := h.reg
	h.mu.Unlock()
	if h.beforeDial != nil {
		h.beforeDial(d)
	}
	a, b := transport.Pipe()
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer b.Close()
		err := provideConn(b, reg, h.cfg)
		h.mu.Lock()
		h.provErrs = append(h.provErrs, err)
		h.mu.Unlock()
	}()
	c := a
	if h.wrap != nil {
		if w := h.wrap(d, a); w != nil {
			c = w
		}
	}
	return c, nil
}

func (h *sessionHarness) providerErrs() []error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]error(nil), h.provErrs...)
}

// waitProviderDone blocks until n provider goroutines have finished —
// the deterministic way to know a faulted session has been parked before
// letting the client's re-dial race it.
func (h *sessionHarness) waitProviderDone(n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		done := len(h.provErrs)
		h.mu.Unlock()
		if done >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	h.t.Errorf("provider goroutines: %d finished, want %d", len(h.providerErrs()), n)
}

func countSpans(tr *telemetry.Tracer, name string) int {
	n := 0
	for _, r := range tr.Spans() {
		if r.Name == name {
			n++
		}
	}
	return n
}

// TestSessionSteadyState is the tentpole acceptance scenario: one session,
// ten inferences. Setup (weight shares + F openings) crosses the wire
// exactly once; every steady-state inference costs byte-identical online
// traffic, attributed exactly by its telemetry root span.
func TestSessionSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked session")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	h := newSessionHarness(t, m, cfg)
	tr := telemetry.New()
	cfg.Trace = tr
	want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	s, err := NewClient(h.dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if s.SetupStats().TotalBytes() == 0 {
		t.Error("session open reported zero setup traffic")
	}
	const inferences = 10
	var online []transport.Stats
	for i := 0; i < inferences; i++ {
		res, err := s.Infer(ctx, x)
		if err != nil {
			t.Fatalf("inference %d: %v", i, err)
		}
		if d := maxAbsDiff(res.Logits, want); d > 6 {
			t.Errorf("inference %d: max |logit diff| = %d, want ≤ 6", i, d)
		}
		if res.Setup.TotalBytes() != 0 {
			t.Errorf("inference %d reported setup traffic %v; session inferences are online-only", i, res.Setup)
		}
		if res.Online.TotalBytes() == 0 {
			t.Errorf("inference %d reported zero online traffic", i)
		}
		online = append(online, res.Online)
	}
	// Steady state: nothing accumulates across seqs, so every inference's
	// wire cost is byte-identical (same bytes, messages and rounds).
	for i := 1; i < len(online); i++ {
		if online[i] != online[0] {
			t.Errorf("inference %d online %+v, want byte-identical to inference 0 %+v", i, online[i], online[0])
		}
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	h.wg.Wait()
	for i, err := range h.providerErrs() {
		if err != nil {
			t.Errorf("provider session %d: %v", i, err)
		}
	}
	// Telemetry attribution: one open root with the single shares
	// exchange, one root per inference, and each inference root's comm
	// delta is exactly that inference's online traffic.
	if n := countSpans(tr, "user.session.open"); n != 1 {
		t.Errorf("user.session.open spans = %d, want 1", n)
	}
	if n := countSpans(tr, "exchange.shares"); n != 1 {
		t.Errorf("exchange.shares spans = %d, want 1 (weight shares must cross the wire once)", n)
	}
	if n := countSpans(tr, "user.session.infer"); n != inferences {
		t.Errorf("user.session.infer spans = %d, want %d", n, inferences)
	}
	for _, r := range tr.Spans() {
		if r.Name != "user.session.infer" {
			continue
		}
		if !r.HasConn || r.Comm != online[0] {
			t.Errorf("infer span comm %+v, want exact online attribution %+v", r.Comm, online[0])
		}
	}
	// The registry cached the one weight split.
	h.reg.mu.Lock()
	splits := len(h.reg.shares)
	h.reg.mu.Unlock()
	if splits != 1 {
		t.Errorf("registry cached %d weight splits, want 1", splits)
	}
}

// TestSessionWeightShareCacheReused: a second session of the same model
// must hit the provider's cached split instead of re-splitting.
func TestSessionWeightShareCacheReused(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	h := newSessionHarness(t, m, cfg)
	want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := NewClient(h.dial, cfg)
	for sess := 0; sess < 2; sess++ {
		s, err := c.OpenSession(ctx, m)
		if err != nil {
			t.Fatalf("session %d open: %v", sess, err)
		}
		res, err := s.Infer(ctx, x)
		if err != nil {
			t.Fatalf("session %d infer: %v", sess, err)
		}
		if d := maxAbsDiff(res.Logits, want); d > 6 {
			t.Errorf("session %d: max |logit diff| = %d, want ≤ 6", sess, d)
		}
		if err := s.Close(); err != nil {
			t.Errorf("session %d close: %v", sess, err)
		}
	}
	h.wg.Wait()
	h.reg.mu.Lock()
	splits := len(h.reg.shares)
	h.reg.mu.Unlock()
	if splits != 1 {
		t.Errorf("registry cached %d weight splits across 2 sessions, want 1", splits)
	}
	for i, err := range h.providerErrs() {
		if err != nil {
			t.Errorf("provider session %d: %v", i, err)
		}
	}
}

// TestSessionResumeAfterFault is the satellite-d acceptance scenario: a
// transport fault mid-inference re-dials, re-attaches through the
// resumption token — no setup replay, verified both by span counts and by
// the re-attach wire cost — and replays the interrupted seq to logits
// bit-identical with an unfaulted session.
func TestSessionResumeAfterFault(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	cfg.Retries = 2
	cfg.RetryBase = 5 * time.Millisecond
	ctx := context.Background()
	const inferences = 3

	// Clean reference session. A fresh registry's token stream is
	// deterministic, so the faulted runs below mint the same session token
	// and thus the same per-session B masks — transcripts must match bit
	// for bit.
	hA := newSessionHarness(t, m, cfg)
	sA, err := NewClient(hA.dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("clean open: %v", err)
	}
	setup := sA.SetupStats()
	setupOps := int(setup.MsgsSent + setup.MsgsRecv)
	var want [][]int64
	inferOps := 0
	for i := 0; i < inferences; i++ {
		res, err := sA.Infer(ctx, x)
		if err != nil {
			t.Fatalf("clean inference %d: %v", i, err)
		}
		want = append(want, res.Logits)
		inferOps = int(res.Online.MsgsSent + res.Online.MsgsRecv)
	}
	sA.Close()
	hA.wg.Wait()

	// Die mid-way through the second inference (seq=1): past setup, past a
	// completed inference, in the middle of the next one's transcript.
	failAt := setupOps + inferOps + inferOps/2
	for _, tc := range []struct {
		name string
		plan transport.FaultPlan
	}{
		{"drop", transport.FaultPlan{FailAfter: failAt}},
		{"corrupt", transport.FaultPlan{FailAfter: failAt, Corrupt: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hB := newSessionHarness(t, m, cfg)
			ccfg := cfg
			tr := telemetry.New()
			ccfg.Trace = tr
			hB.wrap = func(dial int, c transport.Conn) transport.Conn {
				if dial == 1 {
					return transport.NewChaosConn(c, tc.plan)
				}
				return nil
			}
			// Hold the recovery dial until the faulted provider goroutine
			// has observed the hang-up and parked the session state.
			hB.beforeDial = func(dial int) {
				if dial == 2 {
					hB.waitProviderDone(1)
				}
			}
			s, err := NewClient(hB.dial, ccfg).OpenSession(ctx, m)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			token := s.Token()
			openSetup := s.SetupStats().TotalBytes()
			manualRetry := false
			for i := 0; i < inferences; i++ {
				res, err := s.Infer(ctx, x)
				if err != nil && tc.plan.Corrupt && !manualRetry {
					// A corrupted frame may be rejected by the strict wire
					// validation as hostile input — a permanent, typed error
					// rather than a transparent transient retry. The session
					// handle stays usable: the next call re-attaches through
					// the token and replays the same seq.
					manualRetry = true
					res, err = s.Infer(ctx, x)
				}
				if err != nil {
					t.Fatalf("inference %d: %v", i, err)
				}
				for j := range want[i] {
					if res.Logits[j] != want[i][j] {
						t.Fatalf("inference %d logits %v, want bit-identical resumption %v", i, res.Logits, want[i])
					}
				}
			}
			if hB.dials != 2 {
				t.Errorf("dialed %d times, want 2 (one fault, one resume)", hB.dials)
			}
			if s.Token() != token {
				t.Errorf("token changed across resume: %x → %x", token, s.Token())
			}
			// No setup replay: the weight shares crossed once, and the
			// re-attach added only hello + attach frames to the setup
			// ledger (tens of bytes, not a weight payload).
			if n := countSpans(tr, "exchange.shares"); n != 1 {
				t.Errorf("exchange.shares spans = %d, want 1 (resume must not replay setup)", n)
			}
			if delta := s.SetupStats().TotalBytes() - openSetup; delta == 0 || delta > 256 {
				t.Errorf("re-attach setup delta = %d bytes, want small and nonzero (hello+attach only)", delta)
			}
			s.Close()
			hB.wg.Wait()
			errs := hB.providerErrs()
			failed := 0
			for _, err := range errs {
				if err == nil {
					continue
				}
				failed++
				if !transport.IsTransient(err) {
					t.Errorf("faulted provider session error %v not classified transient", err)
				}
			}
			if failed != 1 || len(errs) != 2 {
				t.Errorf("provider sessions %v, want one transient failure and one clean", errs)
			}
			hB.reg.mu.Lock()
			parked := len(hB.reg.parked)
			hB.reg.mu.Unlock()
			if parked != 0 {
				t.Errorf("%d sessions still parked after clean close, want 0", parked)
			}
		})
	}
}

// TestSessionAttachMissFallsBack: a resume token the provider no longer
// holds (here: a registry swap, the provider-restart stand-in) must fall
// back to a fresh setup under the same client handle — the session heals
// instead of erroring, at the cost of one setup replay.
func TestSessionAttachMissFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	cfg.Retries = 2
	cfg.RetryBase = 5 * time.Millisecond
	ctx := context.Background()
	want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}

	h := newSessionHarness(t, m, cfg)
	ccfg := cfg
	tr := telemetry.New()
	ccfg.Trace = tr
	// Measure one clean session to place the fault mid-second-inference.
	s0, err := NewClient(h.dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	setup := s0.SetupStats()
	res0, err := s0.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	s0.Close()
	failAt := int(setup.MsgsSent+setup.MsgsRecv) + 3*int(res0.Online.MsgsSent+res0.Online.MsgsRecv)/2

	h.wrap = func(dial int, c transport.Conn) transport.Conn {
		if dial == 2 { // the session under test; dial 1 was the probe
			return transport.NewChaosConn(c, transport.FaultPlan{FailAfter: failAt})
		}
		return nil
	}
	s, err := NewClient(h.dial, ccfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tokenBefore := s.Token()
	if _, err := s.Infer(ctx, x); err != nil {
		t.Fatalf("inference 0: %v", err)
	}
	// Simulate a provider restart: a fresh registry holds the model but
	// none of the parked state, so the re-attach token must miss.
	h.mu.Lock()
	h.reg = NewRegistry()
	if err := h.reg.Add(m); err != nil {
		t.Fatal(err)
	}
	h.mu.Unlock()
	res, err := s.Infer(ctx, x) // faults mid-way, resumes against the new registry
	if err != nil {
		t.Fatalf("inference 1 after registry swap: %v", err)
	}
	if d := maxAbsDiff(res.Logits, want); d > 6 {
		t.Errorf("post-fallback max |logit diff| = %d, want ≤ 6", d)
	}
	// The fallback adopts the client's token instead of minting a new one:
	// the session keeps its identity — and its transcript seeds — across
	// the miss, which is what makes failover onto a cold provider
	// bit-identical (see TestSessionSurvivesProviderRestart).
	if s.Token() != tokenBefore {
		t.Errorf("attach miss re-minted the token: %x -> %x", tokenBefore, s.Token())
	}
	if h.dials != 3 {
		t.Errorf("dialed %d times, want 3 (probe, fault, fallback)", h.dials)
	}
	// The fallback replays setup: two shares exchanges on this client's
	// trace (open + fallback re-open).
	if n := countSpans(tr, "exchange.shares"); n != 2 {
		t.Errorf("exchange.shares spans = %d, want 2 (fresh setup after token miss)", n)
	}
	s.Close()
	h.wg.Wait()
}

// TestSessionOverServeTCP runs the persistent flow through the real
// serving stack: listener, admission, drain machinery and the session
// dispatch inside ServeTCP.
func TestSessionOverServeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked session")
	}
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	cfg := testCfg()
	want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := serveOnce(t, ctx, cfg, m, 1, nil)
	dial := func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, addr, 5*time.Second)
	}
	s, err := NewClient(dial, cfg).OpenSession(ctx, m)
	if err != nil {
		t.Fatalf("OpenSession over TCP: %v", err)
	}
	var online []transport.Stats
	for i := 0; i < 3; i++ {
		res, err := s.Infer(ctx, x)
		if err != nil {
			t.Fatalf("inference %d: %v", i, err)
		}
		if d := maxAbsDiff(res.Logits, want); d > 6 {
			t.Errorf("inference %d: max |logit diff| = %d, want ≤ 6", i, d)
		}
		online = append(online, res.Online)
	}
	for i := 1; i < len(online); i++ {
		if online[i] != online[0] {
			t.Errorf("inference %d online %+v, want byte-identical to inference 0 %+v", i, online[i], online[0])
		}
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("ServeTCP returned %v, want nil", err)
	}
}

// TestServeRegistryTCPMultiModel serves two models from one registry,
// mixes a persistent session with a one-shot client, then hot-removes a
// model and checks the typed handshake failure while the surviving
// session keeps streaming.
func TestServeRegistryTCPMultiModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full networked sessions")
	}
	mA := tinyModel(nn.PoolAvg)
	mB := tinyModel(nn.PoolMax)
	if mA.Fingerprint() == mB.Fingerprint() {
		t.Fatal("test models share a fingerprint")
	}
	x := input(64)
	cfg := testCfg()
	wantA, err := mA.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := mB.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add(mA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(mB); err != nil {
		t.Fatal(err)
	}
	l, err := transport.NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ServeRegistryTCP(ctx, l, reg, cfg, 0, nil) }()
	dial := func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, l.Addr(), 5*time.Second)
	}
	c := NewClient(dial, cfg)

	sA, err := c.OpenSession(ctx, mA)
	if err != nil {
		t.Fatalf("open session for model A: %v", err)
	}
	resA, err := sA.Infer(ctx, x)
	if err != nil {
		t.Fatalf("model A inference: %v", err)
	}
	if d := maxAbsDiff(resA.Logits, wantA); d > 6 {
		t.Errorf("model A: max |logit diff| = %d, want ≤ 6", d)
	}
	// One-shot client against the same serving loop, other model.
	resB, err := RunUserWithRetry(ctx, dial, mB, x, cfg)
	if err != nil {
		t.Fatalf("one-shot inference for model B: %v", err)
	}
	if d := maxAbsDiff(resB.Logits, wantB); d > 6 {
		t.Errorf("model B: max |logit diff| = %d, want ≤ 6", d)
	}
	// Hot-remove model B: new clients get the typed mismatch...
	reg.Remove(mB)
	if _, err := c.OpenSession(ctx, mB); err == nil {
		t.Error("OpenSession for a removed model succeeded")
	} else {
		var he *HandshakeError
		if !errors.As(err, &he) || he.Field != "model fingerprint" {
			t.Errorf("removed model returned %v, want the model fingerprint HandshakeError", err)
		}
	}
	// ...while the established session on model A keeps streaming.
	if _, err := sA.Infer(ctx, x); err != nil {
		t.Errorf("model A inference after removing model B: %v", err)
	}
	if err := sA.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("ServeRegistryTCP returned %v, want nil on cancel", err)
	}
}

// TestRegistryParkedLifecycle covers the parked-session cache in
// isolation: LRU eviction past the capacity, single-claim take, TTL
// expiry through an injected clock, Remove dropping a model's parked
// state, and the disabled (negative-capacity) mode.
func TestRegistryParkedLifecycle(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	st := &sessionState{model: m, r: ring.New(20)}
	now := time.Unix(1000, 0)
	reg := NewRegistry()
	reg.now = func() time.Time { return now }
	if err := reg.Add(m); err != nil {
		t.Fatal(err)
	}
	reg.setCap(2)

	t1, t2, t3 := reg.nextToken(), reg.nextToken(), reg.nextToken()
	if t1 == t2 || t2 == t3 || t1 == t3 {
		t.Fatalf("tokens collide: %x %x %x", t1, t2, t3)
	}
	reg.park(t1, st)
	reg.park(t2, st)
	reg.park(t3, st) // capacity 2: t1 (oldest) must go
	if _, ok := reg.take(t1); ok {
		t.Error("evicted session t1 still resumable")
	}
	if _, ok := reg.take(t2); !ok {
		t.Error("parked session t2 not resumable")
	}
	if _, ok := reg.take(t2); ok {
		t.Error("taken session t2 claimed twice")
	}

	// TTL: t3 is still parked; advance past the deadline.
	now = now.Add(sessionTTL + time.Second)
	if _, ok := reg.take(t3); ok {
		t.Error("expired session t3 still resumable")
	}

	// Remove drops a model's parked sessions.
	t4 := reg.nextToken()
	reg.park(t4, st)
	reg.Remove(m)
	if _, ok := reg.take(t4); ok {
		t.Error("removed model's parked session still resumable")
	}

	// Negative capacity disables parking entirely.
	reg.setCap(-1)
	t5 := reg.nextToken()
	reg.park(t5, st)
	if _, ok := reg.take(t5); ok {
		t.Error("disabled cache still parked a session")
	}
}

// TestRegistryAddReplaceInvalidatesSplit: re-adding a model under the
// same fingerprint (fresh weights, same architecture) must drop the
// cached split.
func TestRegistryAddReplaceInvalidatesSplit(t *testing.T) {
	m := tinyModel(nn.PoolAvg)
	reg := NewRegistry()
	if err := reg.Add(m); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.sharesFor(m, ring.New(20), 4); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	cached := len(reg.shares)
	reg.mu.Unlock()
	if cached != 1 {
		t.Fatalf("cached %d splits, want 1", cached)
	}
	if err := reg.Add(m); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	cached = len(reg.shares)
	reg.mu.Unlock()
	if cached != 0 {
		t.Errorf("replacing a model left %d cached splits, want 0", cached)
	}
}
