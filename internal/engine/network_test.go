package engine

import (
	"net"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/transport"
)

func TestNetworkInferenceNoDealer(t *testing.T) {
	// Full dealer-free protocol: base-OT harvested correlations and
	// Gilboa triples over a (piped) wire, cross-checked against the
	// plaintext reference. Uses the fast test group.
	m := tinyModel(nn.PoolAvg)
	x := input(64)
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	cfg := Options{CarrierBits: 20, Seed: 4, Group: ot.TestGroup()}
	var res *Result
	var errU, errP error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); res, errU = RunUser(a, m, x, cfg) }()
	go func() { defer wg.Done(); errP = RunProvider(b, m, cfg) }()
	wg.Wait()
	if errU != nil || errP != nil {
		t.Fatal(errU, errP)
	}
	want, err := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Logits, want); d > 6 {
		t.Errorf("network logits %v vs plaintext %v", res.Logits, want)
	}
	if res.Setup.TotalBytes() == 0 || res.Online.TotalBytes() == 0 {
		t.Error("missing traffic measurements")
	}
	t.Logf("network inference: setup %.3f MiB, online %.3f MiB", res.Setup.MiB(), res.Online.MiB())
}

func TestNetworkInferenceOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP round trip")
	}
	m := tinyModel(nn.PoolMax)
	x := input(64)
	done := make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		l, err := listenAny()
		if err != nil {
			done <- err
			return
		}
		addrCh <- l.addr
		conn, err := l.accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- RunProvider(conn, m, Options{CarrierBits: 18, Seed: 5, Group: ot.TestGroup()})
	}()
	addr := <-addrCh
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := RunUser(conn, m, x, Options{CarrierBits: 18, Seed: 5, Group: ot.TestGroup()})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	want, _ := m.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(18)})
	if d := maxAbsDiff(res.Logits, want); d > 6 {
		t.Errorf("TCP logits %v vs plaintext %v", res.Logits, want)
	}
}

// listener helper keeping net plumbing out of the test body.
type tcpListener struct {
	addr   string
	accept func() (transport.Conn, error)
}

func listenAny() (*tcpListener, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &tcpListener{
		addr: l.Addr().String(),
		accept: func() (transport.Conn, error) {
			defer l.Close()
			c, err := l.Accept()
			if err != nil {
				return nil, err
			}
			return transport.NewNetConn(c), nil
		},
	}, nil
}
