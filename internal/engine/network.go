package engine

import (
	"fmt"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/secure"
	"aq2pnn/internal/share"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
	"aq2pnn/internal/triple"
)

// tracePhase runs f under a fresh root span scoped to the context's
// connection (one lane per protocol phase; the span's comm delta is that
// phase's traffic). With tracing disabled it adds two nil-checks.
func tracePhase(tr *telemetry.Tracer, ctx *secure.Context, name string, f func() error) error {
	sp := tr.Root(name, telemetry.WithConn(ctx.Conn))
	defer sp.End()
	ctx.SetTrace(telemetry.NewScope(sp))
	return f()
}

// Two-process deployment: the same protocol as RunLocal, but over a real
// transport with no trusted dealer — OT correlations are harvested through
// base OTs on the wire and Beaver triple families are generated with the
// Gilboa protocol. This is the cmd/party / examples/tcp_inference path,
// emulating the paper's two-board setup.

// NewNetworkContext builds a party context over a live connection with
// harvest-backed OT and Gilboa triple families.
func NewNetworkContext(party int, conn transport.Conn, cfg Options) *secure.Context {
	rng := prg.NewSeeded(saltedSeed(cfg.Seed, uint64(party)*7919))
	grp := cfg.Group
	if grp.P == nil {
		grp = ot.DefaultGroup()
	}
	ep := ot.NewEndpoint(party, conn, rng.Fork())
	ep.HarvestGroup = grp
	ep.UseExtension = !cfg.NoExtension
	gilboaRng := rng.Fork()
	return &secure.Context{
		Party:      share.Party(party),
		Conn:       conn,
		OT:         ep,
		Rng:        rng.Fork(),
		Triples:    &triple.OTSource{EP: ep, Rng: gilboaRng.Fork(), Party: party},
		LocalTrunc: cfg.LocalTrunc,
		Pool:       cfg.Pool(),
		NewFamily: func(id string, r ring.Ring, k, n int) (triple.Family, error) {
			return triple.NewGilboaFamily(ep, gilboaRng.Fork(), party, r, k, n), nil
		},
	}
}

// wirePayload carries one party's secret-shared material during setup.
type wirePayload struct {
	W    map[int][]uint64
	Bias map[int][]uint64
	X    []uint64
}

// reluRingFor resolves the contracted ABReLU ring: the zero Ring when the
// configured width is 0 or not narrower than the carrier (both mean "full
// width", matching the hello normalisation in helloFor).
func reluRingFor(cfg Options, r ring.Ring) ring.Ring {
	if cfg.ABReLUBits != 0 && cfg.ABReLUBits < r.Bits {
		return ring.New(cfg.ABReLUBits)
	}
	return ring.Ring{}
}

// revealResult finishes the online phase: under RevealClassOnly a secure
// argmax tournament reveals only the predicted class to the user,
// otherwise the logit shares are revealed. Both parties run it; only
// party i's returns are meaningful (logits nil / class -1 elsewhere).
func revealResult(ctx *secure.Context, r ring.Ring, cfg Options, o []uint64) (logits []int64, class int, err error) {
	class = -1
	sp := ctx.Trace.Enter("reveal")
	defer ctx.Trace.Exit(sp)
	if cfg.RevealClassOnly {
		idx, err := ctx.ArgMaxBatched(r, o)
		if err != nil {
			return nil, -1, err
		}
		//lint:declassify protocol output: the argmax class index is the protocol's defined result, revealed to the user party only
		opened, err := ctx.RevealTo(r, share.PartyI, []uint64{idx})
		if err != nil {
			return nil, -1, err
		}
		if ctx.Party == share.PartyI {
			class = int(r.ToInt(opened[0]))
		}
		return nil, class, nil
	}
	//lint:declassify protocol output: the logit vector is the protocol's defined result, revealed to the user party only
	opened, err := ctx.RevealTo(r, share.PartyI, o)
	if err != nil {
		return nil, -1, err
	}
	if ctx.Party == share.PartyI {
		logits = r.ToInts(opened)
	}
	return logits, class, nil
}

// RunUser executes the user side (party i): it secret-shares its input,
// receives its weight shares from the provider, runs the protocol and
// returns the revealed logits with the measured traffic.
func RunUser(conn transport.Conn, m *nn.Model, x []int64, cfg Options) (*Result, error) {
	r := cfg.Carrier(m)
	if len(x) != m.InputShape().Numel() {
		return nil, fmt.Errorf("engine: input length %d, want %d", len(x), m.InputShape().Numel())
	}
	ctx := NewNetworkContext(0, conn, cfg)
	var profile []OpProfile
	p := &Party{Ctx: ctx, Model: m, R: r, ReLURing: reluRingFor(cfg, r), Pool: ctx.Pool, Profile: &profile}
	var x0 []uint64
	if err := tracePhase(cfg.Trace, ctx, "user.setup", func() error {
		if err := func() error {
			sp := ctx.Trace.Enter("handshake")
			defer ctx.Trace.Exit(sp)
			return exchangeHello(conn, helloFor(roleUser, m, r, cfg), cfg.handshakeTimeout())
		}(); err != nil {
			return err
		}
		if err := func() error {
			sp := ctx.Trace.Enter("exchange.shares")
			defer ctx.Trace.Exit(sp)
			// Receive this party's weight shares from the model provider.
			wp, err := recvShares(conn, r.Bytes())
			if err != nil {
				return fmt.Errorf("engine: receiving weight shares: %w", err)
			}
			if err := validateWirePayload(m, wp); err != nil {
				return err
			}
			// Share the input: keep x0, send x1.
			g := prg.NewSeeded(saltedSeed(cfg.Seed, 0x1272C0DE))
			var x1 []uint64
			x0, x1 = share.SplitVec(g, r, r.FromInts(x))
			if err := sendShares(conn, &wirePayload{X: x1}, r.Bytes()); err != nil {
				return fmt.Errorf("engine: sending input share: %w", err)
			}
			p.Weights = &WeightShares{W: wp.W, Bias: wp.Bias}
			return nil
		}(); err != nil {
			return err
		}
		return p.Prepare()
	}); err != nil {
		return nil, err
	}
	setup := conn.Stats()
	conn.ResetStats()
	var logits []int64
	class := -1
	if err := tracePhase(cfg.Trace, ctx, "user.infer", func() error {
		o, err := p.Infer(x0)
		if err != nil {
			return err
		}
		logits, class, err = revealResult(ctx, r, cfg, o)
		return err
	}); err != nil {
		return nil, err
	}
	return &Result{
		Logits:  logits,
		Class:   class,
		Setup:   setup,
		Online:  conn.Stats(),
		PerOp:   profile,
		Carrier: r,
	}, nil
}

// RunProvider executes the model-provider side (party j): it secret-shares
// its weights, sends the user's shares, receives its input share and runs
// the protocol. The model must carry real weights (not a skeleton); the
// architecture and quantization metadata are assumed public and identical
// on both sides.
func RunProvider(conn transport.Conn, m *nn.Model, cfg Options) error {
	r := cfg.Carrier(m)
	return runProvider(conn, m, r, cfg, func() error {
		return exchangeHello(conn, helloFor(roleProvider, m, r, cfg), cfg.handshakeTimeout())
	})
}

// runProvider is the post-dispatch provider flow. hello performs the
// handshake under the setup root — RunProvider's symmetric exchange, or a
// no-op on the serving path, which consumes the client's hello itself to
// pick the model before this function is chosen.
func runProvider(conn transport.Conn, m *nn.Model, r ring.Ring, cfg Options, hello func() error) error {
	ctx := NewNetworkContext(1, conn, cfg)
	g := prg.NewSeeded(saltedSeed(cfg.Seed, 0x0DE17272))
	ws0, ws1, err := SplitModel(g, m, r)
	if err != nil {
		return err
	}
	p := &Party{Ctx: ctx, Model: m, Weights: ws1, R: r, ReLURing: reluRingFor(cfg, r), Pool: ctx.Pool}
	var in *wirePayload
	if err := tracePhase(cfg.Trace, ctx, "provider.setup", func() error {
		if hello != nil {
			if err := func() error {
				sp := ctx.Trace.Enter("handshake")
				defer ctx.Trace.Exit(sp)
				return hello()
			}(); err != nil {
				return err
			}
		}
		if err := func() error {
			sp := ctx.Trace.Enter("exchange.shares")
			defer ctx.Trace.Exit(sp)
			if err := sendShares(conn, &wirePayload{W: ws0.W, Bias: ws0.Bias}, r.Bytes()); err != nil {
				return fmt.Errorf("engine: sending weight shares: %w", err)
			}
			if in, err = recvShares(conn, r.Bytes()); err != nil {
				return fmt.Errorf("engine: receiving input share: %w", err)
			}
			if len(in.X) != m.InputShape().Numel() {
				return &PayloadError{Node: -1, Field: "input", Got: len(in.X), Want: m.InputShape().Numel()}
			}
			return nil
		}(); err != nil {
			return err
		}
		return p.Prepare()
	}); err != nil {
		return err
	}
	return tracePhase(cfg.Trace, ctx, "provider.infer", func() error {
		o, err := p.Infer(in.X)
		if err != nil {
			return err
		}
		_, _, err = revealResult(ctx, r, cfg, o)
		return err
	})
}
