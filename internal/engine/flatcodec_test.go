package engine

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

// gobPayload mirrors wirePayload with exported fields, standing in for the
// retired gob wire format as a reference oracle: gob's reflection-driven
// encoding has no notion of the flat layout, so agreement between the two
// decoders on randomized tensors means the flat codec loses no information.
type gobPayload struct {
	W    map[int][]uint64
	Bias map[int][]uint64
	X    []uint64
}

func gobRoundtrip(t *testing.T, wp *wirePayload) *wirePayload {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobPayload{W: wp.W, Bias: wp.Bias, X: wp.X}); err != nil {
		t.Fatal(err)
	}
	var out gobPayload
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &wirePayload{W: out.W, Bias: out.Bias, X: out.X}
}

// randPayload draws a wirePayload with random node counts, tensor lengths
// and elements reduced to the given ring.
func randPayload(g *prg.PRG, r ring.Ring) *wirePayload {
	wp := &wirePayload{W: map[int][]uint64{}, Bias: map[int][]uint64{}}
	nodes := int(g.Uint64()%5) + 1
	for i := 0; i < nodes; i++ {
		id := int(g.Uint64() % 64)
		wp.W[id] = g.Elems(int(g.Uint64()%200)+1, r)
		if g.Uint64()%2 == 0 {
			wp.Bias[id] = g.Elems(int(g.Uint64()%16)+1, r)
		}
	}
	if g.Uint64()%4 != 0 {
		wp.X = g.Elems(int(g.Uint64()%300), r)
	}
	return wp
}

// TestFlatCodecRoundtripVsGob is the property test behind protocol v5:
// across random bit-widths and payload shapes, decode(encode(wp)) must be
// deep-equal to the original — with the retired gob pipeline run alongside
// as the information-preservation oracle.
func TestFlatCodecRoundtripVsGob(t *testing.T) {
	g := prg.NewSeeded(1234)
	for trial := 0; trial < 200; trial++ {
		bits := uint(g.Uint64()%47) + 16 // 16..62, the ring's full range
		r := ring.New(bits)
		wp := randPayload(g, r)
		p, err := encodeShares(wp, r.Bytes())
		if err != nil {
			t.Fatalf("trial %d (bits %d): encode: %v", trial, bits, err)
		}
		got, err := decodeShares(p, r.Bytes())
		if err != nil {
			t.Fatalf("trial %d (bits %d): decode: %v", trial, bits, err)
		}
		viaGob := gobRoundtrip(t, wp)
		if !reflect.DeepEqual(got, viaGob) {
			t.Fatalf("trial %d (bits %d): flat roundtrip diverged from gob oracle\nflat: %+v\ngob:  %+v",
				trial, bits, got, viaGob)
		}
		if !reflect.DeepEqual(got, wp) {
			t.Fatalf("trial %d (bits %d): flat roundtrip not deep-equal to original", trial, bits)
		}

		// Determinism: the registry caches encoded payloads and requires
		// byte-identical re-encodes (map iteration order must not leak in).
		p2, err := encodeShares(wp, r.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, p2) {
			t.Fatalf("trial %d: encoding is not deterministic", trial)
		}
	}
}

// TestFlatCodecEmptyAndNilShapes pins the edge shapes the engine actually
// ships: a payload with no X (provider direction), an empty-but-present X,
// and empty maps.
func TestFlatCodecEmptyAndNilShapes(t *testing.T) {
	for _, wp := range []*wirePayload{
		{W: map[int][]uint64{}, Bias: map[int][]uint64{}},
		{W: map[int][]uint64{3: {}}, Bias: map[int][]uint64{}, X: []uint64{}},
		{X: []uint64{7}},
	} {
		p, err := encodeShares(wp, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeShares(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if (wp.X == nil) != (got.X == nil) {
			t.Fatalf("X nil-ness not preserved: sent %v got %v", wp.X, got.X)
		}
		if len(got.W) != len(wp.W) || len(got.Bias) != len(wp.Bias) || len(got.X) != len(wp.X) {
			t.Fatalf("shape mismatch: %+v vs %+v", got, wp)
		}
	}
}
