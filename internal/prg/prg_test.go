package prg

import (
	"math"
	"testing"

	"aq2pnn/internal/ring"
)

func TestDeterminism(t *testing.T) {
	a, b := NewSeeded(42), NewSeeded(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSeeded(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewSeeded(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look correlated")
	}
}

func TestReadAcrossRefill(t *testing.T) {
	g := NewSeeded(7)
	big := make([]byte, 3*8192+17)
	n, err := g.Read(big)
	if n != len(big) || err != nil {
		t.Fatalf("Read = %d, %v", n, err)
	}
	// The same stream read in two chunks must agree.
	h := NewSeeded(7)
	p1 := make([]byte, 5000)
	p2 := make([]byte, len(big)-5000)
	h.Read(p1)
	h.Read(p2)
	for i := range p1 {
		if p1[i] != big[i] {
			t.Fatal("chunked read mismatch (head)")
		}
	}
	for i := range p2 {
		if p2[i] != big[5000+i] {
			t.Fatal("chunked read mismatch (tail)")
		}
	}
}

func TestElemInRange(t *testing.T) {
	g := NewSeeded(1)
	r := ring.New(12)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		e := g.Elem(r)
		if e > r.Mask {
			t.Fatalf("element %d outside ring", e)
		}
		seen[e] = true
	}
	if len(seen) < 3500 {
		t.Errorf("only %d distinct 12-bit values in 10k draws", len(seen))
	}
}

func TestIntnUnbiasedish(t *testing.T) {
	g := NewSeeded(2)
	counts := make([]int, 7)
	n := 70000
	for i := 0; i < n; i++ {
		counts[g.Intn(7)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7): value %d drawn %d times of %d", v, c, n)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewSeeded(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	g := NewSeeded(3)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %f", variance)
	}
}

func TestPerm(t *testing.T) {
	g := NewSeeded(4)
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewSeeded(5)
	c1 := g.Fork()
	c2 := g.Fork()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Error("forked children emit identical streams")
	}
}

func TestInt64n(t *testing.T) {
	g := NewSeeded(6)
	for i := 0; i < 1000; i++ {
		v := g.Int64n(10)
		if v < -10 || v > 10 {
			t.Fatalf("Int64n(10) = %d", v)
		}
	}
	if g.Int64n(0) != 0 {
		t.Error("Int64n(0) should be 0")
	}
}

func BenchmarkUint64(b *testing.B) {
	g := NewSeeded(1)
	for i := 0; i < b.N; i++ {
		_ = g.Uint64()
	}
}

func BenchmarkFillElems(b *testing.B) {
	g := NewSeeded(1)
	r := ring.New(16)
	dst := make([]uint64, 4096)
	b.SetBytes(int64(len(dst) * 8))
	for i := 0; i < b.N; i++ {
		g.FillElems(dst, r)
	}
}
