// Package prg provides the pseudorandom generator used everywhere secret
// randomness is needed: share masks, Beaver triples, OT pads and the
// synthetic datasets. It is an AES-128-CTR keystream, which is both fast
// and — when seeded from crypto/rand — cryptographically strong. Seeded
// construction gives deterministic, reproducible experiments.
package prg

import (
	"crypto/aes"
	"crypto/cipher"
	crand "crypto/rand"
	"encoding/binary"
	"math"

	"aq2pnn/internal/ring"
)

// SeedSize is the byte length of a PRG seed (AES-128 key + IV).
const SeedSize = 32

// PRG is a deterministic pseudorandom generator. It is not safe for
// concurrent use; give each goroutine its own instance (Fork).
type PRG struct {
	stream cipher.Stream
	seed   [SeedSize]byte
	buf    [8192]byte
	pos    int
}

// New returns a PRG expanding the given seed.
func New(seed [SeedSize]byte) *PRG {
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes; 16 is always valid.
		panic("prg: " + err.Error())
	}
	g := &PRG{stream: cipher.NewCTR(block, seed[16:]), seed: seed}
	g.pos = len(g.buf)
	return g
}

// NewSeeded is a convenience constructor deriving the 32-byte seed from a
// small integer, for tests and reproducible experiments.
func NewSeeded(seed uint64) *PRG {
	var s [SeedSize]byte
	binary.LittleEndian.PutUint64(s[:8], seed)
	s[8] = 0xA9 // domain separation from the all-zero seed
	return New(s)
}

// NewRandom returns a PRG seeded from the operating system CSPRNG.
func NewRandom() (*PRG, error) {
	var s [SeedSize]byte
	if _, err := crand.Read(s[:]); err != nil {
		return nil, err
	}
	return New(s), nil
}

// Fork derives an independent child generator. The child's seed is a fresh
// block of this generator's keystream, so forks from distinct states are
// computationally independent.
func (g *PRG) Fork() *PRG {
	var s [SeedSize]byte
	g.Read(s[:])
	return New(s)
}

func (g *PRG) refill() {
	for i := range g.buf {
		g.buf[i] = 0
	}
	g.stream.XORKeyStream(g.buf[:], g.buf[:])
	g.pos = 0
}

// Read fills p with pseudorandom bytes. It never fails.
func (g *PRG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if g.pos == len(g.buf) {
			g.refill()
		}
		c := copy(p, g.buf[g.pos:])
		g.pos += c
		p = p[c:]
	}
	return n, nil
}

// Uint64 returns a uniform 64-bit value.
func (g *PRG) Uint64() uint64 {
	if g.pos+8 > len(g.buf) {
		g.refill()
	}
	v := binary.LittleEndian.Uint64(g.buf[g.pos:])
	g.pos += 8
	return v
}

// Elem returns a uniform element of the ring r.
func (g *PRG) Elem(r ring.Ring) uint64 { return g.Uint64() & r.Mask }

// FillElems fills dst with uniform elements of r.
func (g *PRG) FillElems(dst []uint64, r ring.Ring) {
	for i := range dst {
		dst[i] = g.Uint64() & r.Mask
	}
}

// Elems returns n fresh uniform ring elements.
func (g *PRG) Elems(n int, r ring.Ring) []uint64 {
	dst := make([]uint64, n)
	g.FillElems(dst, r)
	return dst
}

// Bit returns a uniform bit.
func (g *PRG) Bit() uint64 { return g.Uint64() & 1 }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *PRG) Intn(n int) int {
	if n <= 0 {
		panic("prg: Intn with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	limit := (^uint64(0) / bound) * bound
	for {
		v := g.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Int64n returns a uniform integer in [-n, n]. It panics if n < 0.
func (g *PRG) Int64n(n int64) int64 {
	if n < 0 {
		panic("prg: Int64n with negative bound")
	}
	return int64(g.Intn(int(2*n+1))) - n
}

// Float64 returns a uniform float in [0, 1).
func (g *PRG) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller), used by the
// training substrate for weight initialisation and the dataset generators.
func (g *PRG) NormFloat64() float64 {
	for {
		u := g.Float64()
		if u == 0 {
			continue
		}
		v := g.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a uniform permutation of [0, n).
func (g *PRG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
