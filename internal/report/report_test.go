package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "22222")
	tbl.AddNote("footnote %d", 7)
	out := tbl.String()
	if !strings.Contains(out, "=== Demo ===") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: footnote 7") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, separator, 2 rows, note, title.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: the separator row is as wide as the longest cell.
	if !strings.Contains(lines[2], strings.Repeat("-", len("a-much-longer-name"))) {
		t.Errorf("separator not sized to widest cell:\n%s", out)
	}
	// Every data row starts at the same column for field 2.
	h := strings.Index(lines[1], "value")
	if h <= 0 {
		t.Fatal("header missing value column")
	}
	if lines[3][len("short"):len("short")+1] != " " {
		t.Error("short cell not padded")
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.AddRow("x")
	if strings.Contains(tbl.String(), "===") {
		t.Error("title rendered for untitled table")
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error("F wrong")
	}
	if Pct(0.123456) != "12.35" {
		t.Error("Pct wrong")
	}
	if X(2.5) != "2.50×" {
		t.Error("X wrong")
	}
	if I(41.7) != "42" {
		t.Error("I wrong")
	}
}

func TestUnicodeWidths(t *testing.T) {
	tbl := &Table{Header: []string{"α", "β"}}
	tbl.AddRow("×××", "1")
	out := tbl.String()
	if !strings.Contains(out, "×××") {
		t.Error("unicode cells mangled")
	}
}
