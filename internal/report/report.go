// Package report renders the experiment tables and figure series in the
// same row/column layout the paper prints, as aligned plain text.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with optional footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len([]rune(c)); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }

// X formats a speedup/reduction factor.
func X(v float64) string { return fmt.Sprintf("%.2f×", v) }

// I formats an integer-valued float.
func I(v float64) string { return fmt.Sprintf("%.0f", v) }
