package share

import (
	"testing"
	"testing/quick"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

func TestSplitOpenRoundTrip(t *testing.T) {
	r := ring.New(16)
	g := prg.NewSeeded(1)
	for i := 0; i < 1000; i++ {
		x := g.Elem(r)
		xi, xj := Split(g, r, x)
		if Open(r, xi, xj) != x {
			t.Fatalf("open(split(%d)) failed", x)
		}
	}
}

func TestSplitUniformity(t *testing.T) {
	// The first share of a fixed secret must look uniform: bucket counts
	// over 20k draws should be balanced.
	r := ring.New(8)
	g := prg.NewSeeded(2)
	counts := make([]int, 4)
	for i := 0; i < 20000; i++ {
		xi, _ := Split(g, r, 42)
		counts[xi>>6]++
	}
	for b, c := range counts {
		if c < 4500 || c > 5500 {
			t.Errorf("share quartile %d has %d of 20000", b, c)
		}
	}
}

func TestVecRoundTripQuick(t *testing.T) {
	r := ring.New(20)
	g := prg.NewSeeded(3)
	f := func(raw []uint64) bool {
		x := make([]uint64, len(raw))
		for i := range raw {
			x[i] = r.Reduce(raw[i])
		}
		xi, xj := SplitVec(g, r, x)
		got := OpenVec(r, xi, xj)
		for i := range x {
			if got[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCAddition(t *testing.T) {
	// [[x+y]] ← (x_i+y_i, x_j+y_j): shares add locally.
	r := ring.New(12)
	g := prg.NewSeeded(4)
	for i := 0; i < 200; i++ {
		x, y := g.Elem(r), g.Elem(r)
		xi, xj := Split(g, r, x)
		yi, yj := Split(g, r, y)
		if Open(r, r.Add(xi, yi), r.Add(xj, yj)) != r.Add(x, y) {
			t.Fatal("C-C addition broken")
		}
	}
}

func TestPCAdditionOneSideOnly(t *testing.T) {
	r := ring.New(12)
	g := prg.NewSeeded(5)
	x := r.FromInt(-100)
	xi, xj := Split(g, r, x)
	a := r.FromInt(37)
	yi := AddConst(r, PartyI, xi, a)
	yj := AddConst(r, PartyJ, xj, a)
	if r.ToInt(Open(r, yi, yj)) != -63 {
		t.Errorf("P-C addition = %d, want -63", r.ToInt(Open(r, yi, yj)))
	}
	if yj != xj {
		t.Error("party j must not apply the public constant")
	}
}

func TestPCMultiplication(t *testing.T) {
	r := ring.New(16)
	g := prg.NewSeeded(6)
	x := r.FromInt(-123)
	xi, xj := Split(g, r, x)
	yi := MulConst(r, xi, -4)
	yj := MulConst(r, xj, -4)
	if got := r.ToInt(Open(r, yi, yj)); got != 492 {
		t.Errorf("P-C mul = %d, want 492", got)
	}
}

func TestTruncationWithinOneLSB(t *testing.T) {
	// With a value well inside the ring, local truncation errs by at most
	// 1 LSB relative to the plaintext arithmetic shift.
	// Share truncation is probabilistic: it wraps with probability ≈ |v|/Q.
	// With |v| ≤ 2^12 on a 2^20 ring that is ≤ 0.4% per element; successful
	// trials must land within ±1 of the arithmetic shift.
	r := ring.New(20)
	g := prg.NewSeeded(7)
	const d = 6
	const trials = 5000
	wraps := 0
	for trial := 0; trial < trials; trial++ {
		v := g.Int64n(1 << 12) // |v| ≤ 2^12 ≪ 2^19
		x := r.FromInt(v)
		xi, xj := Split(g, r, x)
		ti := TruncateShare(r, PartyI, xi, d)
		tj := TruncateShare(r, PartyJ, xj, d)
		got := r.ToInt(Open(r, ti, tj))
		want := v >> d
		diff := got - want
		if diff < -1 || diff > 1 {
			wraps++
		}
	}
	if rate := float64(wraps) / trials; rate > 0.01 {
		t.Errorf("wrap rate %.4f exceeds the ≈0.002 theoretical bound", rate)
	}
	t.Logf("wraps: %d/%d", wraps, trials)
}

func TestTruncationFailureNearRingEdge(t *testing.T) {
	// When |v| approaches Q/2 the share-wrap probability approaches 1/2
	// and truncation produces huge errors. This is the overflow failure
	// mode the ℓ+4 margin guards against; assert that it actually occurs.
	r := ring.New(12)
	g := prg.NewSeeded(8)
	const d = 4
	failures := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		v := int64(1900) // close to Q/2 = 2048
		xi, xj := Split(g, r, r.FromInt(v))
		ti := TruncateShare(r, PartyI, xi, d)
		tj := TruncateShare(r, PartyJ, xj, d)
		got := r.ToInt(Open(r, ti, tj))
		if got < v>>d-1 || got > v>>d+1 {
			failures++
		}
	}
	if failures == 0 {
		t.Error("expected share-wrap truncation failures near the ring edge, saw none")
	}
	if failures > trials {
		t.Error("impossible")
	}
	t.Logf("near-edge truncation failure rate: %d/%d", failures, trials)
}

func TestTruncationFailureRateMatchesTheory(t *testing.T) {
	// P[wrap] ≈ |v|/Q for positive v: check within a factor.
	r := ring.New(16)
	g := prg.NewSeeded(9)
	v := int64(8192) // Q/8 → expect ≈ 12.5% failures
	failures := 0
	const trials = 8000
	for trial := 0; trial < trials; trial++ {
		xi, xj := Split(g, r, r.FromInt(v))
		ti := TruncateShare(r, PartyI, xi, 3)
		tj := TruncateShare(r, PartyJ, xj, 3)
		got := r.ToInt(Open(r, ti, tj))
		if got < v>>3-1 || got > v>>3+1 {
			failures++
		}
	}
	rate := float64(failures) / trials
	if rate < 0.08 || rate > 0.18 {
		t.Errorf("failure rate %.3f, expected ≈ 0.125", rate)
	}
}

func TestTruncateShareVecMatchesScalar(t *testing.T) {
	r := ring.New(18)
	g := prg.NewSeeded(10)
	xs := g.Elems(64, r)
	ys := append([]uint64(nil), xs...)
	TruncateShareVec(r, PartyJ, ys, 5)
	for i := range xs {
		if ys[i] != TruncateShare(r, PartyJ, xs[i], 5) {
			t.Fatal("vector truncation diverges from scalar")
		}
	}
	zs := append([]uint64(nil), xs...)
	TruncateShareVec(r, PartyI, zs, 0)
	for i := range xs {
		if zs[i] != r.Reduce(xs[i]) {
			t.Fatal("d=0 should only reduce")
		}
	}
}

func TestContractVecPreservesSmallValues(t *testing.T) {
	q2, q1 := ring.New(16), ring.New(12)
	g := prg.NewSeeded(11)
	for trial := 0; trial < 500; trial++ {
		v := g.Int64n(2000) // fits in 12 bits
		xi, xj := Split(g, q2, q2.FromInt(v))
		si := []uint64{xi}
		sj := []uint64{xj}
		ContractVec(q2, q1, si)
		ContractVec(q2, q1, sj)
		if q1.ToInt(Open(q1, si[0], sj[0])) != v {
			t.Fatalf("contract lost value %d", v)
		}
	}
}

func TestPartyOther(t *testing.T) {
	if PartyI.Other() != PartyJ || PartyJ.Other() != PartyI {
		t.Error("Other wrong")
	}
}

func TestTensorClone(t *testing.T) {
	r := ring.New(8)
	a := NewTensor(r, 4)
	a.Data[2] = 9
	b := a.Clone()
	b.Data[2] = 1
	if a.Data[2] != 9 {
		t.Error("Tensor.Clone aliases")
	}
}

func BenchmarkSplitVec(b *testing.B) {
	r := ring.New(16)
	g := prg.NewSeeded(1)
	x := g.Elems(4096, r)
	b.SetBytes(int64(len(x) * 8))
	for i := 0; i < b.N; i++ {
		SplitVec(g, r, x)
	}
}
