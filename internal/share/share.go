// Package share implements 2PC additive secret-sharing over Z_Q
// (Definition 3 of the paper): a value x is split as [[x]] ← (r, x−r) with
// r uniform, and recovered as rec([[x]]) = (x_i + x_j) mod Q.
//
// It also provides the local (non-interactive) AS-ALU operations of
// Sec. 4.1.3 — C-C addition, P-C addition/multiplication/division — and the
// probabilistic local share truncation used by 2PC-BNReQ. The truncation is
// the SecureML trick: it is exact up to ±1 LSB as long as the hidden value
// is far from ±Q/2, and fails catastrophically (off by Q/2^d) when a share
// wrap occurs. This failure mode is precisely why AQ2PNN's adaptive
// quantization keeps a 4-bit carrier margin, and is what produces the
// 12-bit accuracy cliff in Tables 7/8.
package share

import (
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

// Party identifies one of the two computation parties. By Definition 3 the
// parties are indexed from {0, 1}.
type Party int

const (
	// PartyI is party i (index 0), conventionally the user holding the
	// input feature map.
	PartyI Party = 0
	// PartyJ is party j (index 1), conventionally the model provider.
	PartyJ Party = 1
)

// Other returns the opposite party.
func (p Party) Other() Party { return 1 - p }

// Split produces the two additive shares of a single value:
// [[x]] ← (r, x − r).
func Split(g *prg.PRG, r ring.Ring, x uint64) (xi, xj uint64) {
	xi = g.Elem(r)
	xj = r.Sub(x, xi)
	return xi, xj
}

// Open recovers x ← (x_i + x_j) mod Q.
func Open(r ring.Ring, xi, xj uint64) uint64 { return r.Add(xi, xj) }

// SplitVec secret-shares a vector element-wise.
func SplitVec(g *prg.PRG, r ring.Ring, x []uint64) (xi, xj []uint64) {
	xi = make([]uint64, len(x))
	xj = make([]uint64, len(x))
	g.FillElems(xi, r)
	r.SubVec(xj, x, xi)
	return xi, xj
}

// OpenVec recovers a shared vector.
func OpenVec(r ring.Ring, xi, xj []uint64) []uint64 {
	out := make([]uint64, len(xi))
	r.AddVec(out, xi, xj)
	return out
}

// AddConst performs P-C addition [[a+x]] ← (a+x_i, x_j): exactly one party
// (by convention party i) adds the public constant. Each party calls this
// with its own share; only party i applies the constant.
func AddConst(r ring.Ring, p Party, xs uint64, a uint64) uint64 {
	if p == PartyI {
		return r.Add(xs, a)
	}
	return xs
}

// AddConstVec is the vector form of AddConst.
func AddConstVec(r ring.Ring, p Party, xs []uint64, a []uint64) {
	if p != PartyI {
		return
	}
	r.AddVec(xs, xs, a)
}

// MulConst performs P-C multiplication [[a·x]] ← (a·x_i, a·x_j); both
// parties scale their share by the public constant.
func MulConst(r ring.Ring, xs uint64, a int64) uint64 { return r.MulConst(xs, a) }

// MulConstVec scales a share vector by a public constant in place.
func MulConstVec(r ring.Ring, xs []uint64, a int64) { r.ScaleVec(xs, xs, a) }

// TruncateShare performs the local probabilistic truncation of one share by
// d bits (the P-C division / requantization logic of the AS-ALU): party i
// computes x_i >> d; party j computes −((−x_j) >> d). If no share wrap
// occurred the reconstructed value is (x >> d) ± 1.
func TruncateShare(r ring.Ring, p Party, xs uint64, d uint) uint64 {
	if d == 0 {
		return r.Reduce(xs)
	}
	if p == PartyI {
		return r.ShiftRightLogical(xs, d)
	}
	return r.Neg(r.ShiftRightLogical(r.Neg(xs), d))
}

// TruncateShareVec truncates a share vector in place.
func TruncateShareVec(r ring.Ring, p Party, xs []uint64, d uint) {
	if d == 0 {
		r.ReduceVec(xs)
		return
	}
	if p == PartyI {
		for i := range xs {
			xs[i] = r.ShiftRightLogical(xs[i], d)
		}
		return
	}
	for i := range xs {
		xs[i] = r.Neg(r.ShiftRightLogical(r.Neg(xs[i]), d))
	}
}

// ContractVec maps a share vector into a narrower ring in place (only the
// representation changes; slices keep their backing array). Contraction of
// shares is exact: the reconstructed value is reduced modulo the small
// ring, which preserves the signed value whenever it fits.
func ContractVec(from, to ring.Ring, xs []uint64) {
	for i := range xs {
		xs[i] = from.Contract(xs[i], to)
	}
}

// Tensor is a shared tensor held by one party: a flat share vector plus the
// ring it lives on. Shape bookkeeping stays in the layers that use it.
type Tensor struct {
	R    ring.Ring
	Data []uint64
}

// NewTensor allocates a zero share tensor.
func NewTensor(r ring.Ring, n int) *Tensor {
	return &Tensor{R: r, Data: make([]uint64, n)}
}

// Clone deep-copies the share tensor.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.R, len(t.Data))
	copy(c.Data, t.Data)
	return c
}
