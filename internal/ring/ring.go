// Package ring implements modular arithmetic on the unsigned integer ring
// Z_Q with Q = 2^ℓ (Definition 1 of the AQ2PNN paper). All secret shares,
// masks and Beaver triples in the system live on such a ring; the modular
// reduction is a single bit-mask, mirroring the "bit-length overflow in a
// hardware accelerator can easily replace this modular operator" remark.
//
// Signed values are carried in two's complement inside the ring: the value
// v ∈ [-Q/2, Q/2) is encoded as v mod Q. Ring size extension is sign
// extension and ring contraction is truncation of the high bits, exactly as
// in Fig. 8 of the paper.
package ring

import (
	"fmt"
)

// MaxBits is the largest supported ring bit-length. We stop at 62 so that
// a+b and the intermediate signed interpretations always fit in uint64 /
// int64 without overflow ambiguity.
const MaxBits = 62

// Ring describes Z_Q with Q = 2^Bits. The zero value is invalid; use New.
type Ring struct {
	// Bits is ℓ, the bit-length of the ring.
	Bits uint
	// Mask is Q-1, the reduction mask.
	Mask uint64
}

// New returns the ring Z_{2^bits}. It panics if bits is outside [1, MaxBits];
// ring sizes are static configuration, so a bad size is a programming error.
func New(bits uint) Ring {
	if bits < 1 || bits > MaxBits {
		panic(fmt.Sprintf("ring: bit-length %d outside [1,%d]", bits, MaxBits))
	}
	return Ring{Bits: bits, Mask: (uint64(1) << bits) - 1}
}

// Q returns the ring modulus 2^Bits.
func (r Ring) Q() uint64 { return r.Mask + 1 }

// Half returns Q/2, the boundary between non-negative and negative
// two's-complement values.
func (r Ring) Half() uint64 { return uint64(1) << (r.Bits - 1) }

// Reduce maps an arbitrary uint64 onto the ring.
func (r Ring) Reduce(x uint64) uint64 { return x & r.Mask }

// Add returns (a + b) mod Q.
func (r Ring) Add(a, b uint64) uint64 { return (a + b) & r.Mask }

// Sub returns (a - b) mod Q.
func (r Ring) Sub(a, b uint64) uint64 { return (a - b) & r.Mask }

// Neg returns (-a) mod Q.
func (r Ring) Neg(a uint64) uint64 { return (-a) & r.Mask }

// Mul returns (a * b) mod Q. The product is computed modulo 2^64 first,
// which is exact because Q divides 2^64.
func (r Ring) Mul(a, b uint64) uint64 { return (a * b) & r.Mask }

// MulConst is Mul with a signed plaintext constant (P-C multiplication in
// the AS-ALU).
func (r Ring) MulConst(a uint64, c int64) uint64 { return (a * uint64(c)) & r.Mask }

// FromInt encodes a signed value into the ring using two's complement.
// Values outside [-Q/2, Q/2) wrap around, exactly as the hardware would.
func (r Ring) FromInt(v int64) uint64 { return uint64(v) & r.Mask }

// ToInt decodes a ring element as a signed two's-complement value in
// [-Q/2, Q/2).
func (r Ring) ToInt(x uint64) int64 {
	x &= r.Mask
	if x >= r.Half() {
		return int64(x) - int64(r.Q())
	}
	return int64(x)
}

// MSB returns the most significant bit of x within the ring, i.e. the sign
// bit of the two's-complement interpretation.
func (r Ring) MSB(x uint64) uint64 { return (x >> (r.Bits - 1)) & 1 }

// Low strips the MSB, returning the low ℓ-1 bits of x. It is the b' / a'
// quantity in the DReLU decomposition MSB(x) = MSB(a) ⊕ MSB(b) ⊕ [b' < a'].
func (r Ring) Low(x uint64) uint64 { return x & (r.Mask >> 1) }

// Bit returns bit i of x (0 = LSB).
func (r Ring) Bit(x uint64, i uint) uint64 { return (x >> i) & 1 }

// SignExtend re-encodes a ring element into the (wider) ring to,
// preserving the signed two's-complement value. This is the "Ring Size
// Extension" primitive of Sec. 5.1 (e.g. 1111_0110_1101 in Q=2^12 becomes
// 1111_1111_0110_1101 in Q=2^16). It panics if to is narrower than r;
// use Contract for that direction.
func (r Ring) SignExtend(x uint64, to Ring) uint64 {
	if to.Bits < r.Bits {
		panic("ring: SignExtend to a narrower ring; use Contract")
	}
	return to.FromInt(r.ToInt(x))
}

// Contract maps a ring element into the (narrower) ring to by dropping the
// high bits. Values that fit in the narrow ring are preserved; larger
// values wrap (the hardware "clipping" of the AS-ALU is this modular wrap).
func (r Ring) Contract(x uint64, to Ring) uint64 {
	if to.Bits > r.Bits {
		panic("ring: Contract to a wider ring; use SignExtend")
	}
	return x & to.Mask
}

// ShiftRightSigned performs an arithmetic right shift of the signed value by
// s bits, rounding toward negative infinity, and re-encodes on the ring.
// It is the plaintext reference for the BNReQ truncation.
func (r Ring) ShiftRightSigned(x uint64, s uint) uint64 {
	if s == 0 {
		return x & r.Mask
	}
	return r.FromInt(r.ToInt(x) >> s)
}

// ShiftRightLogical shifts the raw ring representation right by s bits.
// Each party applies this (or its negated variant) to its own share during
// 2PC truncation.
func (r Ring) ShiftRightLogical(x uint64, s uint) uint64 {
	return (x & r.Mask) >> s
}

// Fits reports whether the signed value v is representable on the ring
// without wrapping.
func (r Ring) Fits(v int64) bool {
	h := int64(r.Half())
	return v >= -h && v < h
}

// String implements fmt.Stringer.
func (r Ring) String() string { return fmt.Sprintf("Z_2^%d", r.Bits) }

// AddVec computes dst = (a + b) mod Q element-wise. All slices must have the
// same length; dst may alias a or b.
func (r Ring) AddVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = (a[i] + b[i]) & r.Mask
	}
}

// SubVec computes dst = (a - b) mod Q element-wise.
func (r Ring) SubVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = (a[i] - b[i]) & r.Mask
	}
}

// NegVec computes dst = (-a) mod Q element-wise.
func (r Ring) NegVec(dst, a []uint64) {
	for i := range dst {
		dst[i] = (-a[i]) & r.Mask
	}
}

// MulVec computes dst = (a * b) mod Q element-wise.
func (r Ring) MulVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = (a[i] * b[i]) & r.Mask
	}
}

// ScaleVec computes dst = (c * a) mod Q element-wise for a signed plaintext
// constant c (P-C multiplication).
func (r Ring) ScaleVec(dst, a []uint64, c int64) {
	uc := uint64(c)
	for i := range dst {
		dst[i] = (a[i] * uc) & r.Mask
	}
}

// ReduceVec reduces every element of a onto the ring in place.
func (r Ring) ReduceVec(a []uint64) {
	for i := range a {
		a[i] &= r.Mask
	}
}

// FromInts encodes a signed slice onto the ring.
func (r Ring) FromInts(v []int64) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = r.FromInt(x)
	}
	return out
}

// ToInts decodes a ring slice into signed values.
func (r Ring) ToInts(x []uint64) []int64 {
	out := make([]int64, len(x))
	for i, v := range x {
		out[i] = r.ToInt(v)
	}
	return out
}

// Bytes returns the number of bytes needed to transmit one ring element,
// ⌈ℓ/8⌉. Communication accounting throughout the system uses this width, so
// shrinking the ring directly shrinks the measured traffic, as in the paper.
func (r Ring) Bytes() int { return int(r.Bits+7) / 8 }
