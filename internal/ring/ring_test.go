package ring

import (
	// The documented prgonly exception: this package is below internal/prg
	// in the dependency order (prg imports ring), so its property tests
	// cannot use the session PRG. The source is explicitly seeded, which
	// keeps the quick-check corpus reproducible, and nothing here is
	// secret — the tests exercise public modular arithmetic.
	//lint:allow prgonly explicitly seeded statistical-test randomness in the one package beneath internal/prg
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBounds(t *testing.T) {
	for _, bits := range []uint{1, 8, 16, 32, 62} {
		r := New(bits)
		if r.Q() != uint64(1)<<bits {
			t.Errorf("New(%d).Q() = %d", bits, r.Q())
		}
		if r.Mask != r.Q()-1 {
			t.Errorf("New(%d).Mask = %x", bits, r.Mask)
		}
	}
	for _, bits := range []uint{0, 63, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bits)
				}
			}()
			New(bits)
		}()
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := New(8)
	for v := int64(-128); v < 128; v++ {
		if got := r.ToInt(r.FromInt(v)); got != v {
			t.Fatalf("8-bit round trip of %d = %d", v, got)
		}
	}
	// Out-of-range values wrap, matching hardware overflow.
	if got := r.ToInt(r.FromInt(128)); got != -128 {
		t.Errorf("FromInt(128) decodes to %d, want -128", got)
	}
	if got := r.ToInt(r.FromInt(-129)); got != 127 {
		t.Errorf("FromInt(-129) decodes to %d, want 127", got)
	}
}

func TestArithmeticMatchesInt(t *testing.T) {
	r := New(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := int64(rng.Intn(1<<16)) - 1<<15
		b := int64(rng.Intn(1<<16)) - 1<<15
		ea, eb := r.FromInt(a), r.FromInt(b)
		if got, want := r.ToInt(r.Add(ea, eb)), r.ToInt(r.FromInt(a+b)); got != want {
			t.Fatalf("Add(%d,%d) = %d, want %d", a, b, got, want)
		}
		if got, want := r.ToInt(r.Sub(ea, eb)), r.ToInt(r.FromInt(a-b)); got != want {
			t.Fatalf("Sub(%d,%d) = %d, want %d", a, b, got, want)
		}
		if got, want := r.ToInt(r.Mul(ea, eb)), r.ToInt(r.FromInt(a*b)); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
		if got, want := r.ToInt(r.Neg(ea)), r.ToInt(r.FromInt(-a)); got != want {
			t.Fatalf("Neg(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestMSBAndLow(t *testing.T) {
	r := New(8)
	if r.MSB(r.FromInt(-1)) != 1 || r.MSB(r.FromInt(1)) != 0 || r.MSB(r.FromInt(0)) != 0 {
		t.Error("MSB sign detection wrong")
	}
	// -74 = 1011_0110: low 7 bits = 011_0110 = 0x36.
	if got := r.Low(r.FromInt(-74)); got != 0x36 {
		t.Errorf("Low(-74) = %#x, want 0x36", got)
	}
}

func TestSignExtendPaperExample(t *testing.T) {
	// Fig. 8: 12-bit 1111_0110_1101 extends to 16-bit 1111_1111_0110_1101.
	q1, q2 := New(12), New(16)
	x := uint64(0xF6D)
	if got := q1.SignExtend(x, q2); got != 0xFF6D {
		t.Errorf("SignExtend(0xF6D, 12→16) = %#x, want 0xFF6D", got)
	}
	// Round trip through Contract.
	if got := q2.Contract(0xFF6D, q1); got != x {
		t.Errorf("Contract back = %#x, want %#x", got, x)
	}
}

func TestSignExtendContractQuick(t *testing.T) {
	q1, q2 := New(12), New(20)
	f := func(raw uint64) bool {
		x := q1.Reduce(raw)
		y := q2.Contract(q1.SignExtend(x, q2), q1)
		return y == x && q2.ToInt(q1.SignExtend(x, q2)) == q1.ToInt(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContractPreservesValueMod(t *testing.T) {
	// Contracting shares is exact for the reconstructed value modulo the
	// small ring: (x0+x1 mod Q2) mod Q1 == (x0 mod Q1 + x1 mod Q1) mod Q1.
	q1, q2 := New(10), New(16)
	f := func(a, b uint64) bool {
		x0, x1 := q2.Reduce(a), q2.Reduce(b)
		whole := q2.Contract(q2.Add(x0, x1), q1)
		parts := q1.Add(q2.Contract(x0, q1), q2.Contract(x1, q1))
		return whole == parts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRightSigned(t *testing.T) {
	r := New(16)
	cases := []struct {
		v    int64
		s    uint
		want int64
	}{
		{100, 2, 25}, {-100, 2, -25}, {7, 1, 3}, {-7, 1, -4}, {0, 5, 0}, {-1, 4, -1},
	}
	for _, c := range cases {
		if got := r.ToInt(r.ShiftRightSigned(r.FromInt(c.v), c.s)); got != c.want {
			t.Errorf("ShiftRightSigned(%d, %d) = %d, want %d", c.v, c.s, got, c.want)
		}
	}
}

func TestVecOps(t *testing.T) {
	r := New(12)
	a := r.FromInts([]int64{1, -2, 2000, -2048})
	b := r.FromInts([]int64{5, 7, 100, 1})
	dst := make([]uint64, 4)
	r.AddVec(dst, a, b)
	want := []int64{6, 5, r.ToInt(r.FromInt(2100)), -2047}
	for i := range dst {
		if r.ToInt(dst[i]) != want[i] {
			t.Errorf("AddVec[%d] = %d, want %d", i, r.ToInt(dst[i]), want[i])
		}
	}
	r.SubVec(dst, a, b)
	if r.ToInt(dst[0]) != -4 || r.ToInt(dst[1]) != -9 {
		t.Error("SubVec wrong")
	}
	r.NegVec(dst, a)
	if r.ToInt(dst[1]) != 2 {
		t.Error("NegVec wrong")
	}
	r.MulVec(dst, a, b)
	if r.ToInt(dst[0]) != 5 || r.ToInt(dst[1]) != -14 {
		t.Error("MulVec wrong")
	}
	r.ScaleVec(dst, a, -3)
	if r.ToInt(dst[0]) != -3 || r.ToInt(dst[1]) != 6 {
		t.Error("ScaleVec wrong")
	}
}

func TestFitsAndBytes(t *testing.T) {
	r := New(12)
	if !r.Fits(2047) || r.Fits(2048) || !r.Fits(-2048) || r.Fits(-2049) {
		t.Error("Fits boundaries wrong")
	}
	if New(8).Bytes() != 1 || New(12).Bytes() != 2 || New(16).Bytes() != 2 || New(17).Bytes() != 3 || New(32).Bytes() != 4 {
		t.Error("Bytes wrong")
	}
}

func TestFromToIntsRoundTrip(t *testing.T) {
	r := New(14)
	v := []int64{0, 1, -1, 8191, -8192}
	got := r.ToInts(r.FromInts(v))
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("round trip [%d] = %d, want %d", i, got[i], v[i])
		}
	}
}

func TestAdditionAssociativityQuick(t *testing.T) {
	r := New(24)
	f := func(a, b, c uint64) bool {
		a, b, c = r.Reduce(a), r.Reduce(b), r.Reduce(c)
		return r.Add(r.Add(a, b), c) == r.Add(a, r.Add(b, c)) &&
			r.Mul(a, r.Add(b, c)) == r.Add(r.Mul(a, b), r.Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddVec(b *testing.B) {
	r := New(16)
	n := 4096
	x := make([]uint64, n)
	y := make([]uint64, n)
	dst := make([]uint64, n)
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		r.AddVec(dst, x, y)
	}
}

func BenchmarkMulVec(b *testing.B) {
	r := New(16)
	n := 4096
	x := make([]uint64, n)
	y := make([]uint64, n)
	dst := make([]uint64, n)
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		r.MulVec(dst, x, y)
	}
}
