package tensor

import (
	"fmt"

	"aq2pnn/internal/parallel"
)

// Parallel kernel variants. Each one partitions its output into disjoint
// contiguous ranges over the shared worker pool and reproduces the serial
// kernel bit-for-bit at any worker count: per-row accumulation order never
// changes, only which goroutine owns a row. A nil pool runs the serial
// kernel directly.

// parRowThreshold is the smallest per-kernel output row count worth forking
// for; below it the goroutine handoff costs more than the arithmetic.
const parRowThreshold = 8

// MatMulModPar computes C = A(m×k) × B(k×n) mod (mask+1), row-blocked over
// the pool. Identical output to MatMulMod for every pool degree.
func MatMulModPar(p *parallel.Pool, a, b []uint64, m, k, n int, mask uint64) []uint64 {
	c := make([]uint64, m*n)
	MatMulModParInto(p, c, a, b, m, k, n, mask)
	return c
}

// MatMulModParInto is MatMulModPar writing into a caller-owned
// destination of length m·n (cleared first) — the form the online GEMMs
// run on so steady-state inference allocates nothing per layer. dst may
// not alias a or b.
func MatMulModParInto(p *parallel.Pool, dst, a, b []uint64, m, k, n int, mask uint64) {
	if p.Serial() || m < parRowThreshold {
		MatMulModInto(dst, a, b, m, k, n, mask)
		return
	}
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulModPar dims %dx%d × %dx%d with lens %d,%d,%d", m, k, k, n, len(a), len(b), len(dst)))
	}
	p.Blocks(m, func(lo, hi int) {
		rows := dst[lo*n : hi*n]
		clear(rows)
		for i := lo; i < hi; i++ {
			ar := a[i*k : (i+1)*k]
			cr := dst[i*n : (i+1)*n]
			for q := 0; q < k; q++ {
				av := ar[q]
				br := b[q*n : (q+1)*n]
				for j := 0; j < n; j++ {
					cr[j] = (cr[j] + av*br[j]) & mask
				}
			}
		}
	})
}

// MatMulFloatPar is the row-blocked float64 GEMM, used by the training and
// calibration substrate. Per-row accumulation order matches MatMulFloat, so
// results are bit-identical at any degree.
func MatMulFloatPar(p *parallel.Pool, a, b []float64, m, k, n int) []float64 {
	if p.Serial() || m < parRowThreshold {
		return MatMulFloat(a, b, m, k, n)
	}
	if len(a) != m*k || len(b) != k*n {
		panic(fmt.Sprintf("tensor: MatMulFloatPar dims %dx%d × %dx%d with lens %d,%d", m, k, k, n, len(a), len(b)))
	}
	c := make([]float64, m*n)
	p.Blocks(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a[i*k : (i+1)*k]
			cr := c[i*n : (i+1)*n]
			for q := 0; q < k; q++ {
				av := ar[q]
				if av == 0 {
					continue
				}
				br := b[q*n : (q+1)*n]
				for j := 0; j < n; j++ {
					cr[j] += av * br[j]
				}
			}
		}
	})
	return c
}

// Im2ColIntPar lowers an NCHW image into the (Patches, PatchLen) GEMM
// matrix with the patch rows distributed over the pool. Each patch writes
// its own out[pi*pl : (pi+1)*pl] slice, so the result equals Im2ColInt.
func Im2ColIntPar(p *parallel.Pool, img []uint64, g ConvGeom) []uint64 {
	out := make([]uint64, g.Patches()*g.PatchLen())
	Im2ColIntParInto(p, out, img, g)
	return out
}

// Im2ColIntParInto is Im2ColIntPar writing into a caller-owned
// destination of length Patches·PatchLen (cleared first). dst may not
// alias img.
func Im2ColIntParInto(p *parallel.Pool, dst, img []uint64, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	patches := oh * ow
	if p.Serial() || patches < parRowThreshold {
		Im2ColIntInto(dst, img, g)
		return
	}
	pl := g.PatchLen()
	if len(dst) != patches*pl {
		panic(fmt.Sprintf("tensor: Im2ColIntPar dst length %d for %d patches of %d", len(dst), patches, pl))
	}
	p.Blocks(patches, func(lo, hi int) {
		rows := dst[lo*pl : hi*pl]
		clear(rows)
		for pi := lo; pi < hi; pi++ {
			oy, ox := pi/ow, pi%ow
			idx := pi * pl
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.StrideH + ky - g.PadH
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.StrideW + kx - g.PadW
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							dst[idx] = img[(c*g.InH+iy)*g.InW+ix]
						}
						idx++
					}
				}
			}
		}
	})
}
