package tensor

import (
	"testing"

	"aq2pnn/internal/parallel"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

func randMat(g *prg.PRG, n int, r ring.Ring) []uint64 {
	return g.Elems(n, r)
}

func TestMatMulModParMatchesSerial(t *testing.T) {
	g := prg.NewSeeded(41)
	r := ring.New(24)
	for _, dims := range [][3]int{{1, 1, 1}, {7, 5, 3}, {16, 9, 11}, {33, 17, 8}, {64, 32, 10}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(g, m*k, r)
		b := randMat(g, k*n, r)
		want := MatMulMod(a, b, m, k, n, r.Mask)
		for _, workers := range []uint{1, 2, 4, 7} {
			got := MatMulModPar(parallel.New(workers), a, b, m, k, n, r.Mask)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dims %v workers %d: elem %d = %d, want %d", dims, workers, i, got[i], want[i])
				}
			}
		}
		// A nil pool must take the serial path.
		got := MatMulModPar(nil, a, b, m, k, n, r.Mask)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nil pool diverged at %d", i)
			}
		}
	}
}

func TestMatMulFloatParMatchesSerial(t *testing.T) {
	g := prg.NewSeeded(43)
	m, k, n := 29, 13, 7
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = g.NormFloat64()
	}
	for i := range b {
		b[i] = g.NormFloat64()
	}
	want := MatMulFloat(a, b, m, k, n)
	got := MatMulFloatPar(parallel.New(4), a, b, m, k, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d = %v, want %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

func TestIm2ColIntParMatchesSerial(t *testing.T) {
	g := prg.NewSeeded(47)
	r := ring.New(16)
	geoms := []ConvGeom{
		{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 3, InH: 14, InW: 14, OutC: 8, KH: 5, KW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2},
		{InC: 2, InH: 5, InW: 7, OutC: 2, KH: 2, KW: 3, StrideH: 1, StrideW: 2},
	}
	for _, geom := range geoms {
		img := randMat(g, geom.InC*geom.InH*geom.InW, r)
		want := Im2ColInt(img, geom)
		for _, workers := range []uint{1, 3, 8} {
			got := Im2ColIntPar(parallel.New(workers), img, geom)
			if len(got) != len(want) {
				t.Fatalf("%+v: len %d vs %d", geom, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%+v workers %d: elem %d = %d, want %d", geom, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// The acceptance benchmark: serial vs Workers:4 on a 512×512×512 modular
// GEMM. On a multi-core host the parallel variant must be ≥2× faster; run
// with `make bench` (see BENCH.md for recorded numbers).
func benchmarkMatMulMod(b *testing.B, workers uint) {
	g := prg.NewSeeded(7)
	r := ring.New(32)
	const d = 512
	a := randMat(g, d*d, r)
	bb := randMat(g, d*d, r)
	p := parallel.New(workers)
	b.SetBytes(int64(d * d * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulModPar(p, a, bb, d, d, d, r.Mask)
	}
}

func BenchmarkMatMulMod512_Workers1(b *testing.B) { benchmarkMatMulMod(b, 1) }
func BenchmarkMatMulMod512_Workers2(b *testing.B) { benchmarkMatMulMod(b, 2) }
func BenchmarkMatMulMod512_Workers4(b *testing.B) { benchmarkMatMulMod(b, 4) }

// BenchmarkMatMulMod512 is the allocation gate the CI bench step pins at
// 0 allocs/op: the serial 512³ modular GEMM through the Into hot path
// with a caller-owned destination (`make bench-online`).
func BenchmarkMatMulMod512(b *testing.B) {
	g := prg.NewSeeded(7)
	r := ring.New(32)
	const d = 512
	a := randMat(g, d*d, r)
	bb := randMat(g, d*d, r)
	dst := make([]uint64, d*d)
	b.SetBytes(int64(d * d * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulModInto(dst, a, bb, d, d, d, r.Mask)
	}
}
