// Package tensor provides the small dense-tensor substrate shared by the
// plaintext DNN library, the quantizer, the training code and the secure
// operators. Integer tensors carry ring elements (uint64); float tensors
// carry float64 for training and calibration.
//
// Layout is row-major NCHW for images and (rows, cols) for matrices.
package tensor

import "fmt"

// Shape is the dimension list of a tensor, outermost first.
type Shape []int

// Numel returns the number of elements, or 0 for an empty shape.
func (s Shape) Numel() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", s))
		}
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Int is a dense tensor of ring elements.
type Int struct {
	Shape Shape
	Data  []uint64
}

// NewInt allocates a zeroed integer tensor.
func NewInt(shape ...int) *Int {
	s := Shape(shape)
	return &Int{Shape: s.Clone(), Data: make([]uint64, s.Numel())}
}

// IntFrom wraps existing data; len(data) must equal the shape's element
// count.
func IntFrom(data []uint64, shape ...int) *Int {
	s := Shape(shape)
	if len(data) != s.Numel() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Int{Shape: s.Clone(), Data: data}
}

// Clone deep-copies the tensor.
func (t *Int) Clone() *Int {
	c := NewInt(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Float is a dense tensor of float64 values.
type Float struct {
	Shape Shape
	Data  []float64
}

// NewFloat allocates a zeroed float tensor.
func NewFloat(shape ...int) *Float {
	s := Shape(shape)
	return &Float{Shape: s.Clone(), Data: make([]float64, s.Numel())}
}

// FloatFrom wraps existing data.
func FloatFrom(data []float64, shape ...int) *Float {
	s := Shape(shape)
	if len(data) != s.Numel() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Float{Shape: s.Clone(), Data: data}
}

// Clone deep-copies the tensor.
func (t *Float) Clone() *Float {
	c := NewFloat(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// ConvGeom describes a 2D convolution/pooling geometry. All operators in
// the system (plaintext, quantized and 2PC) share it, so the shapes that
// drive the cost model are the shapes that drive the actual computation.
type ConvGeom struct {
	InC, InH, InW    int // input channels and spatial size
	OutC             int // output channels (ignored for pooling)
	KH, KW           int // kernel size
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate checks the geometry for consistency.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: non-positive input dims %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: non-positive kernel %+v", g)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: non-positive stride %+v", g)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: negative padding %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: empty output %+v", g)
	}
	return nil
}

// PatchLen is the length of one im2col column: InC*KH*KW.
func (g ConvGeom) PatchLen() int { return g.InC * g.KH * g.KW }

// Patches is the number of output positions: OutH*OutW.
func (g ConvGeom) Patches() int { return g.OutH() * g.OutW() }

// MACs returns the multiply-accumulate count of the convolution, the
// quantity the AS-GEMM cycle model is driven by.
func (g ConvGeom) MACs() int64 {
	return int64(g.OutC) * int64(g.Patches()) * int64(g.PatchLen())
}

// Im2ColInt lowers an NCHW (C,H,W) integer image into a (Patches, PatchLen)
// matrix so convolution becomes GEMM, mirroring how the accelerator's LOAD
// module streams patches into the AS-INP buffer. Padding positions are 0.
func Im2ColInt(img []uint64, g ConvGeom) []uint64 {
	out := make([]uint64, g.Patches()*g.PatchLen())
	Im2ColIntInto(out, img, g)
	return out
}

// Im2ColIntInto is Im2ColInt writing into a caller-owned destination of
// length Patches·PatchLen. dst is cleared first (padding positions stay
// 0); it may not alias img.
func Im2ColIntInto(dst, img []uint64, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	pl := g.PatchLen()
	if len(dst) != oh*ow*pl {
		panic(fmt.Sprintf("tensor: Im2ColInt dst length %d for %d patches of %d", len(dst), oh*ow, pl))
	}
	clear(dst)
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.StrideH + ky - g.PadH
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.StrideW + kx - g.PadW
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							dst[idx] = img[(c*g.InH+iy)*g.InW+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Im2ColFloat is the float64 analogue of Im2ColInt, used by training.
func Im2ColFloat(img []float64, g ConvGeom) []float64 {
	oh, ow := g.OutH(), g.OutW()
	pl := g.PatchLen()
	out := make([]float64, oh*ow*pl)
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.StrideH + ky - g.PadH
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.StrideW + kx - g.PadW
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							out[idx] = img[(c*g.InH+iy)*g.InW+ix]
						}
						idx++
					}
				}
			}
		}
	}
	return out
}

// Col2ImFloat scatters an im2col gradient matrix back onto the image,
// accumulating overlapping patches. It is the adjoint of Im2ColFloat.
func Col2ImFloat(cols []float64, g ConvGeom) []float64 {
	oh, ow := g.OutH(), g.OutW()
	img := make([]float64, g.InC*g.InH*g.InW)
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.StrideH + ky - g.PadH
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.StrideW + kx - g.PadW
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							img[(c*g.InH+iy)*g.InW+ix] += cols[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return img
}

// MatMulFloat computes C = A(m×k) × B(k×n) in float64.
func MatMulFloat(a, b []float64, m, k, n int) []float64 {
	if len(a) != m*k || len(b) != k*n {
		panic(fmt.Sprintf("tensor: MatMulFloat dims %dx%d × %dx%d with lens %d,%d", m, k, k, n, len(a), len(b)))
	}
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		cr := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				cr[j] += av * br[j]
			}
		}
	}
	return c
}

// TransposeFloat returns Bᵀ for a (m×n) matrix.
func TransposeFloat(a []float64, m, n int) []float64 {
	out := make([]float64, len(a))
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out[j*m+i] = a[i*n+j]
		}
	}
	return out
}

// MatMulMod computes C = A(m×k) × B(k×n) with all products and sums reduced
// by the mask (i.e. modulo Q = mask+1). This is the plaintext-domain GEMM
// reference against which AS-GEMM is verified.
func MatMulMod(a, b []uint64, m, k, n int, mask uint64) []uint64 {
	c := make([]uint64, m*n)
	MatMulModInto(c, a, b, m, k, n, mask)
	return c
}

// MatMulModInto is MatMulMod writing into a caller-owned destination of
// length m·n — the allocation-free form the online hot paths run on. dst
// is cleared first; it may not alias a or b.
func MatMulModInto(dst, a, b []uint64, m, k, n int, mask uint64) {
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulMod dims %dx%d × %dx%d with lens %d,%d,%d", m, k, k, n, len(a), len(b), len(dst)))
	}
	clear(dst)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		cr := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			br := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				cr[j] = (cr[j] + av*br[j]) & mask
			}
		}
	}
}

// PoolWindows iterates the pooling windows of g, invoking fn with the output
// index and the flat input indices of the (possibly truncated at borders)
// window. Pooling layers (max, average) in both domains share this
// iteration so window semantics can never diverge between plaintext and
// 2PC execution.
func PoolWindows(g ConvGeom, fn func(outIdx int, inIdx []int)) {
	oh, ow := g.OutH(), g.OutW()
	idxBuf := make([]int, 0, g.KH*g.KW)
	for c := 0; c < g.InC; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				idxBuf = idxBuf[:0]
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.StrideH + ky - g.PadH
					if iy < 0 || iy >= g.InH {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.StrideW + kx - g.PadW
						if ix < 0 || ix >= g.InW {
							continue
						}
						idxBuf = append(idxBuf, (c*g.InH+iy)*g.InW+ix)
					}
				}
				fn((c*oh+oy)*ow+ox, idxBuf)
			}
		}
	}
}
