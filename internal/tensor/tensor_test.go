package tensor

import (
	"math"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

func ringOf(bits uint) ring.Ring { return ring.New(bits) }

func TestShapeNumelEqual(t *testing.T) {
	if (Shape{2, 3, 4}).Numel() != 24 {
		t.Error("Numel wrong")
	}
	if (Shape{}).Numel() != 0 {
		t.Error("empty shape Numel should be 0")
	}
	if !(Shape{1, 2}).Equal(Shape{1, 2}) || (Shape{1, 2}).Equal(Shape{2, 1}) || (Shape{1}).Equal(Shape{1, 1}) {
		t.Error("Equal wrong")
	}
}

func TestNewIntFromPanics(t *testing.T) {
	tt := NewInt(2, 3)
	if len(tt.Data) != 6 {
		t.Error("NewInt size")
	}
	defer func() {
		if recover() == nil {
			t.Error("IntFrom with bad length did not panic")
		}
	}()
	IntFrom([]uint64{1, 2, 3}, 2, 2)
}

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Errorf("same-pad 3x3 output %dx%d", g.OutH(), g.OutW())
	}
	if g.PatchLen() != 27 || g.Patches() != 1024 {
		t.Error("patch geometry wrong")
	}
	if g.MACs() != int64(16)*1024*27 {
		t.Error("MACs wrong")
	}
	g2 := ConvGeom{InC: 3, InH: 224, InW: 224, OutC: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	if g2.OutH() != 112 || g2.OutW() != 112 {
		t.Errorf("resnet stem output %dx%d", g2.OutH(), g2.OutW())
	}
	bad := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	if bad.Validate() == nil {
		t.Error("kernel larger than padded input should be invalid")
	}
}

// Direct convolution reference for validating the im2col path.
func convDirect(img []uint64, w []uint64, g ConvGeom, mask uint64) []uint64 {
	oh, ow := g.OutH(), g.OutW()
	out := make([]uint64, g.OutC*oh*ow)
	for oc := 0; oc < g.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc uint64
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.StrideH + ky - g.PadH
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.StrideW + kx - g.PadW
							if ix < 0 || ix >= g.InW {
								continue
							}
							wv := w[((oc*g.InC+c)*g.KH+ky)*g.KW+kx]
							acc = (acc + img[(c*g.InH+iy)*g.InW+ix]*wv) & mask
						}
					}
				}
				out[(oc*oh+oy)*ow+ox] = acc
			}
		}
	}
	return out
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 7, InW: 6, OutC: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 1}
	mask := uint64(1)<<16 - 1
	rng := prg.NewSeeded(11)
	img := rng.Elems(g.InC*g.InH*g.InW, ringOf(16))
	w := rng.Elems(g.OutC*g.PatchLen(), ringOf(16))
	cols := Im2ColInt(img, g) // (patches, patchLen)
	// out[p][oc] = cols(p,:) · w(oc,:) → compute as cols × wᵀ.
	wt := make([]uint64, len(w))
	pl := g.PatchLen()
	for oc := 0; oc < g.OutC; oc++ {
		for i := 0; i < pl; i++ {
			wt[i*g.OutC+oc] = w[oc*pl+i]
		}
	}
	got := MatMulMod(cols, wt, g.Patches(), pl, g.OutC, mask)
	want := convDirect(img, w, g, mask)
	oh, ow := g.OutH(), g.OutW()
	for oc := 0; oc < g.OutC; oc++ {
		for p := 0; p < g.Patches(); p++ {
			if got[p*g.OutC+oc] != want[oc*oh*ow+p] {
				t.Fatalf("conv mismatch at oc=%d p=%d: %d vs %d", oc, p, got[p*g.OutC+oc], want[oc*oh*ow+p])
			}
		}
	}
}

func TestMatMulFloatKnown(t *testing.T) {
	a := []float64{1, 2, 3, 4} // 2x2
	b := []float64{5, 6, 7, 8} // 2x2
	c := MatMulFloat(a, b, 2, 2, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("MatMulFloat = %v", c)
		}
	}
}

func TestTransposeFloat(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	at := TransposeFloat(a, 2, 3)
	want := []float64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("Transpose = %v", at)
		}
	}
}

func TestCol2ImIsAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y: the defining
	// property the backward pass relies on.
	g := ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	rng := prg.NewSeeded(5)
	x := make([]float64, g.InC*g.InH*g.InW)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, g.Patches()*g.PatchLen())
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	cols := Im2ColFloat(x, g)
	var lhs float64
	for i := range cols {
		lhs += cols[i] * y[i]
	}
	img := Col2ImFloat(y, g)
	var rhs float64
	for i := range img {
		rhs += img[i] * x[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("adjoint property violated: %f vs %f", lhs, rhs)
	}
}

func TestPoolWindows(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	count := 0
	PoolWindows(g, func(out int, in []int) {
		if len(in) != 4 {
			t.Errorf("window %d has %d elements", out, len(in))
		}
		count++
	})
	if count != 4 {
		t.Errorf("expected 4 windows, got %d", count)
	}
	// Border truncation with odd size and stride 2.
	g2 := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	sizes := map[int]int{}
	PoolWindows(g2, func(out int, in []int) { sizes[out] = len(in) })
	if sizes[0] != 1 { // top-left window only overlaps one real pixel
		t.Errorf("padded corner window size = %d, want 1", sizes[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFloat(2, 2)
	a.Data[0] = 7
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 7 {
		t.Error("Clone aliases data")
	}
	c := NewInt(3)
	c.Data[1] = 5
	d := c.Clone()
	d.Data[1] = 6
	if c.Data[1] != 5 {
		t.Error("Int Clone aliases data")
	}
}

func BenchmarkMatMulMod64(b *testing.B) {
	rng := prg.NewSeeded(1)
	m, k, n := 64, 64, 64
	x := rng.Elems(m*k, ringOf(16))
	y := rng.Elems(k*n, ringOf(16))
	b.SetBytes(int64(m * k * n))
	for i := 0; i < b.N; i++ {
		MatMulMod(x, y, m, k, n, 0xFFFF)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 16, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := prg.NewSeeded(1)
	img := rng.Elems(g.InC*g.InH*g.InW, ringOf(16))
	for i := 0; i < b.N; i++ {
		Im2ColInt(img, g)
	}
}
