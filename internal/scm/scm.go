// Package scm implements the Secure Comparison Machine (Sec. 4.3.3): the
// possible-value comparison matrix of Fig. 5/6, its transfer over the
// OT-flow, and the two-step ABReLU sign evaluation of Sec. 4.4 — quadrant
// detection on the most significant bits plus an OT-based group-wise
// comparison of the remaining bits.
//
// The correctness identity, derived from the quadrant analysis of Fig. 7:
// with a = (−x_i) mod Q held by party i and b = x_j held by party j,
//
//	MSB(x) = MSB(a) ⊕ MSB(b) ⊕ [ low(b) < low(a) ]
//
// where low(·) strips the sign bit. The MSBs are local (the "quadrant
// detection" step); [low(b) < low(a)] is evaluated lexicographically over
// the A2BM groups, each group resolved by one (1, 2^su)-OT whose tokens
// are the {LT, EQ, GT} entries of the comparison matrix (Eq. 6). Party i
// masks the outcome by randomly swapping the LT/GT labels, so the parties
// end with XOR (boolean) shares of MSB(x) and neither learns the sign.
package scm

import (
	"fmt"

	"aq2pnn/internal/a2b"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
)

// Comparison tokens of Eq. 6. From the receiver's perspective a token
// reports how its own group value compares to the sender's.
const (
	TokenLT byte = 1 // receiver's group < sender's group
	TokenEQ byte = 2 // equal: move to the next group
	TokenGT byte = 3 // receiver's group > sender's group
)

// SenderTokens builds one element's comparison matrix rows: for each low
// group u (widths from a2b.LowGroups) and each possible receiver value pm,
// the token the receiver should learn. flip=1 swaps the LT/GT labels (the
// OUT-MSK masking). In the final group EQ is resolved to "not less",
// encoded through the same flip so the receiver always terminates with a
// definite label.
func SenderTokens(gaLow []uint64, widths []uint, flip uint64) [][]byte {
	rows := make([][]byte, len(widths))
	lt, gt := TokenLT, TokenGT
	if flip == 1 {
		lt, gt = gt, lt
	}
	for u, w := range widths {
		n := 1 << w
		row := make([]byte, n)
		last := u == len(widths)-1
		for pm := 0; pm < n; pm++ {
			switch {
			case uint64(pm) < gaLow[u]:
				row[pm] = lt
			case uint64(pm) > gaLow[u]:
				row[pm] = gt
			case last:
				// low(b) == low(a): "less" is false, so the receiver's raw
				// bit must equal the flip.
				row[pm] = gt
			default:
				row[pm] = TokenEQ
			}
		}
		rows[u] = row
	}
	return rows
}

// ScanTokens is the receiver's lexicographic combination: the first
// non-EQ token decides. It returns 1 when that token is LT. The sender's
// matrix construction guarantees the last group never yields EQ.
func ScanTokens(tokens []byte) (uint64, error) {
	for i, tk := range tokens {
		switch tk {
		case TokenLT:
			return 1, nil
		case TokenGT:
			return 0, nil
		case TokenEQ:
			continue
		default:
			// Report the position only: the token stream is derived from
			// masked comparison digits and stays out of error text.
			return 0, fmt.Errorf("scm: invalid token at index %d", i)
		}
	}
	return 0, fmt.Errorf("scm: comparison did not terminate (all tokens EQ)")
}

// tokenBits is the packed width of one comparison token: the {LT, EQ, GT}
// alphabet fits in 2 bits, and the coalesced OT transfer packs candidates
// at exactly this width on the wire.
const tokenBits = 2

// batchPlan groups the (element, group) OT instances by arity so a whole
// tensor's comparison runs as one coalesced token transfer: one slice per
// arity, all slices riding a single send/recv pair.
type batchPlan struct {
	widths []uint
	// pairs[n] lists, in deterministic order, the (v, u) pairs using
	// (1,n)-OT.
	arities []int // distinct arities in ascending order
	pairs   map[int][][2]int
}

func planBatches(bits uint, count int) batchPlan {
	return planOver(a2b.LowGroups(bits), count)
}

// planOver builds the batch plan for an explicit group layout. The arity
// schedule (ascending) comes from a2b.Arities, so both parties derive the
// identical coalesced-transfer shape with no negotiation; u-order within
// an arity follows the layout.
func planOver(widths []uint, count int) batchPlan {
	p := batchPlan{widths: widths, arities: a2b.Arities(widths), pairs: map[int][][2]int{}}
	for u, w := range widths {
		n := 1 << w
		for v := 0; v < count; v++ {
			p.pairs[n] = append(p.pairs[n], [2]int{v, u})
		}
	}
	return p
}

// sendBatches lays each arity's token rows out in plan order for one
// coalesced transfer. rows are aliased, not copied.
func (p batchPlan) sendBatches(tokens [][][]byte, pool *parallel.Pool) []ot.SendTokenBatch {
	batches := make([]ot.SendTokenBatch, len(p.arities))
	for bi, n := range p.arities {
		pairs := p.pairs[n]
		rows := make([][]byte, len(pairs))
		pool.For(len(pairs), func(k int) {
			vu := pairs[k]
			rows[k] = tokens[vu[0]][vu[1]]
		})
		batches[bi] = ot.SendTokenBatch{N: n, Rows: rows}
	}
	return batches
}

// recvBatches lays each arity's choices out in plan order.
func (p batchPlan) recvBatches(groups [][]uint64) []ot.RecvTokenBatch {
	batches := make([]ot.RecvTokenBatch, len(p.arities))
	for bi, n := range p.arities {
		pairs := p.pairs[n]
		choices := make([]int, len(pairs))
		for k, vu := range pairs {
			choices[k] = int(groups[vu[0]][vu[1]])
		}
		batches[bi] = ot.RecvTokenBatch{N: n, Choices: choices}
	}
	return batches
}

// scatter writes the received tokens back into per-element group order.
func (p batchPlan) scatter(got [][]byte, received [][]byte) {
	for bi, n := range p.arities {
		for k, vu := range p.pairs[n] {
			received[vu[0]][vu[1]] = got[bi][k]
		}
	}
}

// MSBSender runs party i's side of the secure sign computation for a batch
// of shared values; xi are party i's arithmetic shares. It returns party
// i's boolean shares m of MSB(x) (the OUT-MSK values).
func MSBSender(ep *ot.Endpoint, rng *prg.PRG, r ring.Ring, xi []uint64) ([]uint64, error) {
	return MSBSenderPar(ep, rng, r, xi, nil)
}

// MSBSenderPar is MSBSender with the comparison-matrix construction
// distributed over the pool. The OUT-MSK bits are drawn serially first, so
// the protocol transcript is identical at any worker count.
func MSBSenderPar(ep *ot.Endpoint, rng *prg.PRG, r ring.Ring, xi []uint64, pool *parallel.Pool) ([]uint64, error) {
	if r.Bits < 2 {
		return nil, fmt.Errorf("scm: ring must have at least 2 bits, got %d", r.Bits)
	}
	sp := ep.Trace.Enter("scm.msb", telemetry.WithAttrs(
		telemetry.Int("elems", int64(len(xi))), telemetry.Int("bits", int64(r.Bits))))
	defer ep.Trace.Exit(sp)
	count := len(xi)
	m := make([]uint64, count)
	for v := range m {
		m[v] = rng.Bit()
	}
	tokens := make([][][]byte, count) // per element, per group, the token row
	widths := a2b.LowGroups(r.Bits)
	pool.For(count, func(v int) {
		a := r.Neg(xi[v])
		flip := m[v] ^ r.MSB(a)
		tokens[v] = SenderTokens(a2b.SplitLow(r, a), widths, flip)
	})
	plan := planBatches(r.Bits, count)
	if err := ep.SendTokens(tokenBits, plan.sendBatches(tokens, pool)); err != nil {
		return nil, fmt.Errorf("scm: token transfer: %w", err)
	}
	return m, nil
}

// MSBReceiver runs party j's side; xj are party j's arithmetic shares. It
// returns party j's boolean shares MSB(x) ⊕ m.
func MSBReceiver(ep *ot.Endpoint, r ring.Ring, xj []uint64) ([]uint64, error) {
	return MSBReceiverPar(ep, r, xj, nil)
}

// MSBReceiverPar is MSBReceiver with the A2BM splits and token scans
// distributed over the pool.
func MSBReceiverPar(ep *ot.Endpoint, r ring.Ring, xj []uint64, pool *parallel.Pool) ([]uint64, error) {
	if r.Bits < 2 {
		return nil, fmt.Errorf("scm: ring must have at least 2 bits, got %d", r.Bits)
	}
	sp := ep.Trace.Enter("scm.msb", telemetry.WithAttrs(
		telemetry.Int("elems", int64(len(xj))), telemetry.Int("bits", int64(r.Bits))))
	defer ep.Trace.Exit(sp)
	count := len(xj)
	widths := a2b.LowGroups(r.Bits)
	groups := make([][]uint64, count)
	pool.For(count, func(v int) {
		groups[v] = a2b.SplitLow(r, xj[v])
	})
	plan := planBatches(r.Bits, count)
	received := make([][]byte, count)
	for v := range received {
		received[v] = make([]byte, len(widths))
	}
	got, err := ep.RecvTokens(tokenBits, plan.recvBatches(groups))
	if err != nil {
		return nil, fmt.Errorf("scm: token transfer: %w", err)
	}
	plan.scatter(got, received)
	out := make([]uint64, count)
	errs := make([]error, count)
	pool.For(count, func(v int) {
		raw, err := ScanTokens(received[v])
		if err != nil {
			errs[v] = err
			return
		}
		out[v] = raw ^ r.MSB(xj[v])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
