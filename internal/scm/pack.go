package scm

import (
	"fmt"

	"aq2pnn/internal/a2b"
)

// Fig. 6 packaging: the OT-flow packs one ℓ-bit value's encrypted
// comparison tokens into a ⌈ℓ/2⌉ × 4 matrix. The two most significant
// groups each have only two candidates ((1,2)-OT), so their rows are
// combined into a single 4-wide row; every 2-bit group contributes one
// 4-wide row of its own — for INT8 that yields the 4×4 UINT8 matrix the
// paper illustrates.

// PackedRow is one row of the packaged comparison matrix.
type PackedRow [4]byte

// PackTokens packages the per-group token rows of one ℓ-bit value
// (as produced by SenderTokens/PredTokens over the full a2b.Groups
// layout) into the Fig. 6 matrix.
func PackTokens(rows [][]byte, bits uint) ([]PackedRow, error) {
	widths := a2b.Groups(bits)
	if len(rows) != len(widths) {
		return nil, fmt.Errorf("scm: %d token rows for %d groups", len(rows), len(widths))
	}
	for u, w := range widths {
		if len(rows[u]) != 1<<w {
			return nil, fmt.Errorf("scm: group %d has %d tokens, want %d", u, len(rows[u]), 1<<w)
		}
	}
	var out []PackedRow
	u := 0
	// Combine leading 1-bit groups pairwise into shared rows.
	for u+1 < len(widths) && widths[u] == 1 && widths[u+1] == 1 {
		out = append(out, PackedRow{rows[u][0], rows[u][1], rows[u+1][0], rows[u+1][1]})
		u += 2
	}
	if u < len(widths) && widths[u] == 1 {
		// A lone 1-bit group (odd ℓ): its row is half-filled.
		out = append(out, PackedRow{rows[u][0], rows[u][1], 0, 0})
		u++
	}
	for ; u < len(widths); u++ {
		if widths[u] == 1 {
			out = append(out, PackedRow{rows[u][0], rows[u][1], 0, 0})
			continue
		}
		out = append(out, PackedRow{rows[u][0], rows[u][1], rows[u][2], rows[u][3]})
	}
	return out, nil
}

// UnpackTokens is the inverse of PackTokens.
func UnpackTokens(packed []PackedRow, bits uint) ([][]byte, error) {
	widths := a2b.Groups(bits)
	rows := make([][]byte, len(widths))
	ri := 0
	u := 0
	take := func() (PackedRow, error) {
		if ri >= len(packed) {
			return PackedRow{}, fmt.Errorf("scm: packed matrix has only %d rows", len(packed))
		}
		r := packed[ri]
		ri++
		return r, nil
	}
	for u+1 < len(widths) && widths[u] == 1 && widths[u+1] == 1 {
		r, err := take()
		if err != nil {
			return nil, err
		}
		rows[u] = []byte{r[0], r[1]}
		rows[u+1] = []byte{r[2], r[3]}
		u += 2
	}
	for ; u < len(widths); u++ {
		r, err := take()
		if err != nil {
			return nil, err
		}
		if widths[u] == 1 {
			rows[u] = []byte{r[0], r[1]}
		} else {
			rows[u] = []byte{r[0], r[1], r[2], r[3]}
		}
	}
	if ri != len(packed) {
		return nil, fmt.Errorf("scm: packed matrix has %d extra rows", len(packed)-ri)
	}
	return rows, nil
}

// PackedRows returns the Fig. 6 matrix height for an ℓ-bit value:
// ⌈ℓ/2⌉ for even ℓ ≥ 4 (e.g. 4 rows for INT8).
func PackedRows(bits uint) int {
	widths := a2b.Groups(bits)
	rows := 0
	u := 0
	for u+1 < len(widths) && widths[u] == 1 && widths[u+1] == 1 {
		rows++
		u += 2
	}
	rows += len(widths) - u
	return rows
}
