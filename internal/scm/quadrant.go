package scm

import "aq2pnn/internal/ring"

// This file reproduces the quadrant analysis of Fig. 7: evaluating the
// sign of x ← (x_i + x_j) mod Q from the coordinates (−x_i, x_j).

// Quadrant identifies where (−x_i, x_j) falls using the sign bits, in the
// paper's orientation: the horizontal axis is −x_i, the vertical is x_j.
type Quadrant int

// Quadrant values follow the standard orientation used by Fig. 7(a).
const (
	Q1 Quadrant = 1 // −x_i ≥ 0, x_j ≥ 0
	Q2 Quadrant = 2 // −x_i < 0, x_j ≥ 0
	Q3 Quadrant = 3 // −x_i < 0, x_j < 0
	Q4 Quadrant = 4 // −x_i ≥ 0, x_j < 0
)

// QuadrantOf returns the quadrant of the share pair.
func QuadrantOf(r ring.Ring, xi, xj uint64) Quadrant {
	sa := r.MSB(r.Neg(xi)) // sign of −x_i
	sb := r.MSB(xj)
	switch {
	case sa == 0 && sb == 0:
		return Q1
	case sa == 1 && sb == 0:
		return Q2
	case sa == 1 && sb == 1:
		return Q3
	default:
		return Q4
	}
}

// DirectSign reports whether the sign of x is decidable from the quadrant
// and the second most significant bits alone (the paper's "Red ①" early
// exit: sub-quadrants 2-2, 2-4, 4-2 and 4-4 decide immediately, and so do
// the 1st/3rd quadrants when the comparison of second bits already
// differs). When ok is false the full OT comparison ("Red ②") is needed.
//
// The decidable cases follow from MSB(x) = s_a ⊕ s_b ⊕ [low(b) < low(a)]:
// whenever the top bit of low(a) and low(b) differ, [low(b) < low(a)] is
// already determined.
func DirectSign(r ring.Ring, xi, xj uint64) (negative bool, ok bool) {
	a := r.Neg(xi)
	b := xj
	sa, sb := r.MSB(a), r.MSB(b)
	// Second most significant bits (tops of low(a), low(b)).
	ta := r.Bit(a, r.Bits-2)
	tb := r.Bit(b, r.Bits-2)
	if ta == tb {
		return false, false
	}
	lt := tb < ta // low(b) < low(a) decided by the top low bit
	msb := sa ^ sb
	if lt {
		msb ^= 1
	}
	return msb == 1, true
}

// SignOf is the plaintext reference: the sign of rec([[x]]).
func SignOf(r ring.Ring, xi, xj uint64) bool {
	return r.MSB(r.Add(xi, xj)) == 1
}

// QuadrantCensus exhaustively evaluates an ℓ-bit ring (intended for small
// ℓ) and reports, per quadrant, how many share pairs hide a negative x and
// how many were directly decidable — the data behind Fig. 7's picture.
type QuadrantCensus struct {
	Total    [5]int
	Negative [5]int
	Direct   [5]int
}

// Census enumerates all Q² share pairs of the ring.
func Census(r ring.Ring) QuadrantCensus {
	var c QuadrantCensus
	for xi := uint64(0); xi <= r.Mask; xi++ {
		for xj := uint64(0); xj <= r.Mask; xj++ {
			q := QuadrantOf(r, xi, xj)
			c.Total[q]++
			if SignOf(r, xi, xj) {
				c.Negative[q]++
			}
			if _, ok := DirectSign(r, xi, xj); ok {
				c.Direct[q]++
			}
		}
	}
	return c
}
