package scm

import (
	"testing"
)

// FuzzSCMMessage exercises the receiver-side SCM decoders on arbitrary
// peer bytes: unpacking a packed comparison matrix and scanning a token
// row must reject malformed input with an error, never a panic, for
// every ring width the protocol supports.
func FuzzSCMMessage(f *testing.F) {
	f.Add([]byte{8, TokenEQ, TokenLT, TokenGT, 0})
	f.Add([]byte{20, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		bits := uint(2 + int(data[0])%62)
		data = data[1:]
		var packed []PackedRow
		for len(data) >= 4 {
			packed = append(packed, PackedRow{data[0], data[1], data[2], data[3]})
			data = data[4:]
		}
		rows, err := UnpackTokens(packed, bits)
		if err == nil {
			for _, row := range rows {
				_, _ = ScanTokens(row)
			}
		}
		_, _ = ScanTokens(data) // leftover bytes as a raw token row
	})
}
