package scm

import (
	"fmt"

	"aq2pnn/internal/a2b"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/parallel"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/telemetry"
)

// Generic unsigned two-party comparison over the full ℓ-bit A2BM layout.
// Party i (sender) holds a, party j (receiver) holds b; the parties end
// with boolean shares of a strict predicate on (b, a). This is the same
// token machinery as the sign protocol, re-used by the share ring-extension
// (computing the unsigned wrap bit) and by tests.

// Rel selects the predicate, phrased from the receiver's perspective.
type Rel int

const (
	// BLtA computes [b < a].
	BLtA Rel = iota
	// BGtA computes [b > a].
	BGtA
)

// PredTokens builds the token rows for a strict predicate: the receiver's
// lexicographic scan yields the LT label exactly when the predicate holds
// (before unmasking). Equality in the final group resolves to "false".
func PredTokens(ga []uint64, widths []uint, flip uint64, rel Rel) [][]byte {
	trueLab, falseLab := TokenLT, TokenGT
	if flip == 1 {
		trueLab, falseLab = falseLab, trueLab
	}
	rows := make([][]byte, len(widths))
	for u, w := range widths {
		n := 1 << w
		row := make([]byte, n)
		last := u == len(widths)-1
		for pm := 0; pm < n; pm++ {
			var tok byte
			switch {
			case uint64(pm) == ga[u]:
				if last {
					tok = falseLab // strict predicate is false on equality
				} else {
					tok = TokenEQ
				}
			case (uint64(pm) < ga[u]) == (rel == BLtA):
				tok = trueLab
			default:
				tok = falseLab
			}
			row[pm] = tok
		}
		rows[u] = row
	}
	return rows
}

// CmpSender runs party i's side of the batched unsigned comparison for its
// values a, returning its boolean shares (the masks).
func CmpSender(ep *ot.Endpoint, rng *prg.PRG, r ring.Ring, a []uint64, rel Rel) ([]uint64, error) {
	return CmpSenderPar(ep, rng, r, a, rel, nil)
}

// CmpSenderPar is CmpSender with the token-matrix construction distributed
// over the pool; the masks are drawn serially so the transcript is
// identical at any worker count.
func CmpSenderPar(ep *ot.Endpoint, rng *prg.PRG, r ring.Ring, a []uint64, rel Rel, pool *parallel.Pool) ([]uint64, error) {
	sp := ep.Trace.Enter("scm.cmp", telemetry.WithAttrs(
		telemetry.Int("elems", int64(len(a))), telemetry.Int("bits", int64(r.Bits))))
	defer ep.Trace.Exit(sp)
	widths := a2b.Groups(r.Bits)
	count := len(a)
	m := make([]uint64, count)
	for v := range m {
		m[v] = rng.Bit()
	}
	tokens := make([][][]byte, count)
	pool.For(count, func(v int) {
		tokens[v] = PredTokens(a2b.Split(r, a[v]), widths, m[v], rel)
	})
	plan := planFullBatches(r.Bits, count)
	if err := ep.SendTokens(tokenBits, plan.sendBatches(tokens, pool)); err != nil {
		return nil, fmt.Errorf("scm: compare token transfer: %w", err)
	}
	return m, nil
}

// CmpReceiver runs party j's side for its values b, returning its boolean
// shares (predicate ⊕ mask).
func CmpReceiver(ep *ot.Endpoint, r ring.Ring, b []uint64, rel Rel) ([]uint64, error) {
	return CmpReceiverPar(ep, r, b, rel, nil)
}

// CmpReceiverPar is CmpReceiver with the A2BM splits and token scans
// distributed over the pool.
func CmpReceiverPar(ep *ot.Endpoint, r ring.Ring, b []uint64, rel Rel, pool *parallel.Pool) ([]uint64, error) {
	sp := ep.Trace.Enter("scm.cmp", telemetry.WithAttrs(
		telemetry.Int("elems", int64(len(b))), telemetry.Int("bits", int64(r.Bits))))
	defer ep.Trace.Exit(sp)
	widths := a2b.Groups(r.Bits)
	count := len(b)
	groups := make([][]uint64, count)
	pool.For(count, func(v int) {
		groups[v] = a2b.Split(r, b[v])
	})
	plan := planFullBatches(r.Bits, count)
	received := make([][]byte, count)
	for v := range received {
		received[v] = make([]byte, len(widths))
	}
	got, err := ep.RecvTokens(tokenBits, plan.recvBatches(groups))
	if err != nil {
		return nil, fmt.Errorf("scm: compare token transfer: %w", err)
	}
	plan.scatter(got, received)
	out := make([]uint64, count)
	errs := make([]error, count)
	pool.For(count, func(v int) {
		raw, err := ScanTokens(received[v])
		if err != nil {
			errs[v] = err
			return
		}
		out[v] = raw
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// planFullBatches is planBatches over the full ℓ-bit layout.
func planFullBatches(bits uint, count int) batchPlan {
	return planOver(a2b.Groups(bits), count)
}
