package scm

import (
	"testing"
	"testing/quick"

	"aq2pnn/internal/a2b"
	"aq2pnn/internal/ring"
)

func TestPackINT8IsFourByFour(t *testing.T) {
	// Fig. 6: one INT8 value packs into a 4×4 matrix.
	r := ring.New(8)
	rows := PredTokens(a2b.Split(r, r.FromInt(-74)), a2b.Groups(8), 0, BLtA)
	packed, err := PackTokens(rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 4 {
		t.Fatalf("packed %d rows, want 4", len(packed))
	}
	if PackedRows(8) != 4 {
		t.Errorf("PackedRows(8) = %d", PackedRows(8))
	}
	// ℓ=16: ⌈16/2⌉ = 8 rows (one combined sign row + 7 group rows).
	if PackedRows(16) != 8 {
		t.Errorf("PackedRows(16) = %d", PackedRows(16))
	}
	// The first row holds both 1-bit groups side by side.
	if packed[0][0] != rows[0][0] || packed[0][2] != rows[1][0] {
		t.Error("sign rows not combined")
	}
}

func TestPackUnpackRoundTripQuick(t *testing.T) {
	for _, bits := range []uint{4, 8, 9, 12, 16} {
		r := ring.New(bits)
		widths := a2b.Groups(bits)
		f := func(raw uint64, flip bool) bool {
			fl := uint64(0)
			if flip {
				fl = 1
			}
			rows := PredTokens(a2b.Split(r, r.Reduce(raw)), widths, fl, BGtA)
			packed, err := PackTokens(rows, bits)
			if err != nil {
				return false
			}
			back, err := UnpackTokens(packed, bits)
			if err != nil || len(back) != len(rows) {
				return false
			}
			for u := range rows {
				if len(back[u]) != len(rows[u]) {
					return false
				}
				for j := range rows[u] {
					if back[u][j] != rows[u][j] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("ℓ=%d: %v", bits, err)
		}
	}
}

func TestPackValidation(t *testing.T) {
	if _, err := PackTokens([][]byte{{1, 2}}, 8); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := PackTokens([][]byte{{1}, {1, 2}, {1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}}, 8); err == nil {
		t.Error("wrong row arity accepted")
	}
	if _, err := UnpackTokens([]PackedRow{{1, 2, 3, 4}}, 8); err == nil {
		t.Error("truncated matrix accepted")
	}
	r := ring.New(8)
	rows := PredTokens(a2b.Split(r, 5), a2b.Groups(8), 0, BLtA)
	packed, _ := PackTokens(rows, 8)
	if _, err := UnpackTokens(append(packed, PackedRow{}), 8); err == nil {
		t.Error("oversized matrix accepted")
	}
}
