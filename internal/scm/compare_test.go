package scm

import (
	"sync"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

func runCmp(t *testing.T, r ring.Ring, a, b []uint64, rel Rel, seed uint64) []uint64 {
	t.Helper()
	e0, e1, closeFn := newEndpoints(seed)
	defer closeFn()
	var m0, m1 []uint64
	var err0, err1 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); m0, err0 = CmpSender(e0, prg.NewSeeded(seed+3), r, a, rel) }()
	go func() { defer wg.Done(); m1, err1 = CmpReceiver(e1, r, b, rel) }()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	out := make([]uint64, len(a))
	for k := range out {
		out[k] = m0[k] ^ m1[k]
	}
	return out
}

func TestCmpExhaustiveSmall(t *testing.T) {
	r := ring.New(5)
	var a, b []uint64
	for x := uint64(0); x <= r.Mask; x++ {
		for y := uint64(0); y <= r.Mask; y++ {
			a = append(a, x)
			b = append(b, y)
		}
	}
	lt := runCmp(t, r, a, b, BLtA, 700)
	gt := runCmp(t, r, a, b, BGtA, 800)
	for k := range a {
		wantLt := uint64(0)
		if b[k] < a[k] {
			wantLt = 1
		}
		wantGt := uint64(0)
		if b[k] > a[k] {
			wantGt = 1
		}
		if lt[k] != wantLt {
			t.Fatalf("[b<a] for (a=%d,b=%d) = %d", a[k], b[k], lt[k])
		}
		if gt[k] != wantGt {
			t.Fatalf("[b>a] for (a=%d,b=%d) = %d", a[k], b[k], gt[k])
		}
	}
}

func TestCmpEqualityIsStrict(t *testing.T) {
	r := ring.New(16)
	a := []uint64{0, 1234, r.Mask}
	got := runCmp(t, r, a, a, BLtA, 900)
	for k, v := range got {
		if v != 0 {
			t.Errorf("[x<x] = %d for element %d", v, k)
		}
	}
	got = runCmp(t, r, a, a, BGtA, 1000)
	for k, v := range got {
		if v != 0 {
			t.Errorf("[x>x] = %d for element %d", v, k)
		}
	}
}

func TestCmpRandomWide(t *testing.T) {
	r := ring.New(24)
	g := prg.NewSeeded(42)
	n := 200
	a := g.Elems(n, r)
	b := g.Elems(n, r)
	got := runCmp(t, r, a, b, BGtA, 1100)
	for k := range a {
		want := uint64(0)
		if b[k] > a[k] {
			want = 1
		}
		if got[k] != want {
			t.Fatalf("element %d: [b>a]=%d want %d (a=%d b=%d)", k, got[k], want, a[k], b[k])
		}
	}
}

func TestPredTokensFinalGroupNeverEQ(t *testing.T) {
	r := ring.New(8)
	widths := []uint{1, 1, 2, 2, 2}
	rows := PredTokens([]uint64{1, 0, 3, 2, 1}, widths, 0, BLtA)
	last := rows[len(rows)-1]
	for pm, tok := range last {
		if tok == TokenEQ {
			t.Errorf("final group emits EQ at pm=%d", pm)
		}
	}
	_ = r
}
