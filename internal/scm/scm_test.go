package scm

import (
	"sync"
	"testing"

	"aq2pnn/internal/a2b"
	"aq2pnn/internal/ot"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/transport"
)

// newEndpoints wires two dealer-backed OT endpoints over a pipe.
func newEndpoints(seed uint64) (*ot.Endpoint, *ot.Endpoint, func()) {
	dealer := ot.NewDealer(prg.NewSeeded(seed))
	a, b := transport.Pipe()
	e0 := ot.NewEndpoint(0, a, prg.NewSeeded(seed+1))
	e0.Dealer = dealer
	e1 := ot.NewEndpoint(1, b, prg.NewSeeded(seed+2))
	e1.Dealer = dealer
	return e0, e1, func() { a.Close(); b.Close() }
}

// runMSB executes the full secure sign protocol for the given shares and
// returns the XOR-combined result bits.
func runMSB(t *testing.T, r ring.Ring, xi, xj []uint64, seed uint64) []uint64 {
	t.Helper()
	e0, e1, closeFn := newEndpoints(seed)
	defer closeFn()
	var m0, m1 []uint64
	var err0, err1 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); m0, err0 = MSBSender(e0, prg.NewSeeded(seed+3), r, xi) }()
	go func() { defer wg.Done(); m1, err1 = MSBReceiver(e1, r, xj) }()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	out := make([]uint64, len(xi))
	for k := range out {
		out[k] = m0[k] ^ m1[k]
	}
	return out
}

func TestSenderTokensMatrixShape(t *testing.T) {
	// INT8: low groups are [1, 2, 2, 2] → one (1,2)-OT and three (1,4)-OTs,
	// matching Fig. 5 minus the sign group handled by quadrant detection.
	r := ring.New(8)
	widths := a2b.LowGroups(r.Bits)
	ga := a2b.SplitLow(r, r.FromInt(-74))
	rows := SenderTokens(ga, widths, 0)
	if len(rows) != 4 || len(rows[0]) != 2 || len(rows[1]) != 4 {
		t.Fatalf("matrix shape: %d rows, first %d, second %d", len(rows), len(rows[0]), len(rows[1]))
	}
	// −74 low bits: 011_0110 → groups [0, 11, 01, 10]. Group 0 value is 0:
	// receiver 0 → EQ, receiver 1 → GT.
	if rows[0][0] != TokenEQ || rows[0][1] != TokenGT {
		t.Errorf("group0 tokens = %v", rows[0])
	}
	// Group 1 value is 3: receivers 0..2 → LT, 3 → EQ.
	if rows[1][0] != TokenLT || rows[1][3] != TokenEQ {
		t.Errorf("group1 tokens = %v", rows[1])
	}
	// Final group (value 2): equality resolved to GT when flip=0.
	if rows[3][2] != TokenGT {
		t.Errorf("final group equality token = %d, want GT", rows[3][2])
	}
	// Flip swaps labels.
	flipped := SenderTokens(ga, widths, 1)
	if flipped[1][0] != TokenGT || flipped[0][1] != TokenLT {
		t.Error("flip did not swap LT/GT")
	}
	if flipped[3][2] != TokenLT {
		t.Error("flipped final-group equality token should be LT")
	}
}

func TestScanTokens(t *testing.T) {
	if v, _ := ScanTokens([]byte{TokenEQ, TokenLT, TokenGT}); v != 1 {
		t.Error("first non-EQ LT should yield 1")
	}
	if v, _ := ScanTokens([]byte{TokenEQ, TokenGT, TokenLT}); v != 0 {
		t.Error("first non-EQ GT should yield 0")
	}
	if _, err := ScanTokens([]byte{TokenEQ, TokenEQ}); err == nil {
		t.Error("all-EQ must be rejected")
	}
	if _, err := ScanTokens([]byte{0}); err == nil {
		t.Error("invalid token must be rejected")
	}
}

func TestMSBExhaustiveSmallRing(t *testing.T) {
	// Every share pair of a 6-bit ring: the protocol must compute the sign
	// of (x_i + x_j) mod Q exactly.
	r := ring.New(6)
	var xi, xj, want []uint64
	for a := uint64(0); a <= r.Mask; a++ {
		for b := uint64(0); b <= r.Mask; b++ {
			xi = append(xi, a)
			xj = append(xj, b)
			want = append(want, r.MSB(r.Add(a, b)))
		}
	}
	got := runMSB(t, r, xi, xj, 100)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("pair (%d,%d): MSB=%d want %d", xi[k], xj[k], got[k], want[k])
		}
	}
}

func TestMSBPaperExamples(t *testing.T) {
	// Sec. 4.4 walks (x_i, x_j) = (125, 7) → x = 132 ≡ −124 < 0, and
	// (x_i, x_j) = (−2, −2) → x = −4 < 0, both in INT8.
	r := ring.New(8)
	xi := []uint64{r.FromInt(125), r.FromInt(-2)}
	xj := []uint64{r.FromInt(7), r.FromInt(-2)}
	got := runMSB(t, r, xi, xj, 200)
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("paper examples: got %v, both must be negative", got)
	}
	if r.ToInt(r.Add(xi[0], xj[0])) != -124 {
		t.Error("reconstruction of first example should be -124")
	}
}

func TestMSBRandomLargeRing(t *testing.T) {
	r := ring.New(16)
	g := prg.NewSeeded(7)
	n := 300
	xi := make([]uint64, n)
	xj := make([]uint64, n)
	want := make([]uint64, n)
	for k := 0; k < n; k++ {
		xi[k] = g.Elem(r)
		xj[k] = g.Elem(r)
		want[k] = r.MSB(r.Add(xi[k], xj[k]))
	}
	got := runMSB(t, r, xi, xj, 300)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("element %d: got %d want %d", k, got[k], want[k])
		}
	}
}

func TestMSBMaskBitsLookRandom(t *testing.T) {
	// The sender's boolean shares are its own uniform masks; over many
	// elements both values should occur.
	r := ring.New(12)
	g := prg.NewSeeded(8)
	n := 400
	xi := g.Elems(n, r)
	xj := g.Elems(n, r)
	e0, e1, closeFn := newEndpoints(500)
	defer closeFn()
	var m0 []uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); m0, _ = MSBSender(e0, prg.NewSeeded(501), r, xi) }()
	go func() { defer wg.Done(); MSBReceiver(e1, r, xj) }()
	wg.Wait()
	ones := 0
	for _, b := range m0 {
		ones += int(b)
	}
	if ones < n/4 || ones > 3*n/4 {
		t.Errorf("mask bits look biased: %d ones of %d", ones, n)
	}
}

func TestMSBRingTooSmall(t *testing.T) {
	e0, _, closeFn := newEndpoints(600)
	defer closeFn()
	if _, err := MSBSender(e0, prg.NewSeeded(601), ring.New(1), []uint64{0}); err == nil {
		t.Error("1-bit ring must be rejected")
	}
	if _, err := MSBReceiver(e0, ring.New(1), []uint64{0}); err == nil {
		t.Error("1-bit ring must be rejected (receiver)")
	}
}

func TestMSBCommScalesWithBitWidth(t *testing.T) {
	// The whole point of adaptive quantization: comparison traffic is
	// proportional to the bit-width. 32-bit must cost ≈2× the bytes of
	// 16-bit.
	measure := func(bits uint) uint64 {
		r := ring.New(bits)
		g := prg.NewSeeded(9)
		n := 128
		xi := g.Elems(n, r)
		xj := g.Elems(n, r)
		dealer := ot.NewDealer(prg.NewSeeded(10))
		a, b := transport.Pipe()
		defer a.Close()
		defer b.Close()
		e0 := ot.NewEndpoint(0, a, prg.NewSeeded(11))
		e0.Dealer = dealer
		e1 := ot.NewEndpoint(1, b, prg.NewSeeded(12))
		e1.Dealer = dealer
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); MSBSender(e0, prg.NewSeeded(13), r, xi) }()
		go func() { defer wg.Done(); MSBReceiver(e1, r, xj) }()
		wg.Wait()
		// Every byte sent on one endpoint of a pipe is received on the
		// other, so one endpoint's TotalBytes is the whole conversation.
		return a.Stats().TotalBytes()
	}
	c16 := measure(16)
	c32 := measure(32)
	ratio := float64(c32) / float64(c16)
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("comm ratio 32/16 = %.2f (c16=%d c32=%d), want ≈2", ratio, c16, c32)
	}
}

func TestQuadrantOf(t *testing.T) {
	r := ring.New(8)
	// (x_i, x_j) = (−2, −2): −x_i = 2 ≥ 0, x_j < 0 → Q4 in standard
	// orientation (the paper's example labels it 2-2 in its own numbering).
	if q := QuadrantOf(r, r.FromInt(-2), r.FromInt(-2)); q != Q4 {
		t.Errorf("(-2,-2) quadrant = %v", q)
	}
	if q := QuadrantOf(r, r.FromInt(125), r.FromInt(7)); q != Q2 {
		// −125 < 0, 7 ≥ 0.
		t.Errorf("(125,7) quadrant = %v", q)
	}
	if q := QuadrantOf(r, r.FromInt(-5), r.FromInt(3)); q != Q1 {
		t.Errorf("(-5,3) quadrant = %v", q)
	}
	if q := QuadrantOf(r, r.FromInt(100), r.FromInt(-3)); q != Q3 {
		t.Errorf("(100,-3) quadrant = %v", q)
	}
}

func TestDirectSignAgreesWithTruth(t *testing.T) {
	// Whenever the early exit claims a sign, it must be correct.
	r := ring.New(8)
	direct := 0
	for xi := uint64(0); xi <= r.Mask; xi++ {
		for xj := uint64(0); xj <= r.Mask; xj++ {
			neg, ok := DirectSign(r, xi, xj)
			if !ok {
				continue
			}
			direct++
			if neg != SignOf(r, xi, xj) {
				t.Fatalf("DirectSign(%d,%d) = %v, truth %v", xi, xj, neg, SignOf(r, xi, xj))
			}
		}
	}
	// Exactly half of all pairs have differing second bits.
	total := int(r.Q() * r.Q())
	if direct != total/2 {
		t.Errorf("direct-decidable pairs = %d of %d, want half", direct, total)
	}
}

func TestCensusFig7(t *testing.T) {
	// Fig. 7(a): the 1st and 3rd quadrants split between signs; the
	// census must cover every pair exactly once.
	r := ring.New(6)
	c := Census(r)
	total := 0
	for q := Q1; q <= Q4; q++ {
		total += c.Total[q]
		if c.Total[q] != int(r.Q()*r.Q())/4 {
			t.Errorf("quadrant %d has %d pairs", q, c.Total[q])
		}
	}
	if total != int(r.Q()*r.Q()) {
		t.Errorf("census covered %d pairs", total)
	}
	// In Q1 (−x_i ≥ 0, x_j ≥ 0) x = x_j − (−x_i) never wraps: negative
	// exactly when x_j < −x_i, i.e. just under half the pairs.
	if c.Negative[Q1] == 0 || c.Negative[Q1] >= c.Total[Q1] {
		t.Error("Q1 must contain both signs")
	}
}

func BenchmarkMSB16(b *testing.B) {
	r := ring.New(16)
	g := prg.NewSeeded(1)
	n := 256
	xi := g.Elems(n, r)
	xj := g.Elems(n, r)
	dealer := ot.NewDealer(prg.NewSeeded(2))
	a, c := transport.Pipe()
	defer a.Close()
	defer c.Close()
	e0 := ot.NewEndpoint(0, a, prg.NewSeeded(3))
	e0.Dealer = dealer
	e1 := ot.NewEndpoint(1, c, prg.NewSeeded(4))
	e1.Dealer = dealer
	rng := prg.NewSeeded(5)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); MSBSender(e0, rng, r, xi) }()
		go func() { defer wg.Done(); MSBReceiver(e1, r, xj) }()
		wg.Wait()
	}
}
