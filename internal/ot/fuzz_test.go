package ot

import (
	"testing"
)

// FuzzOTFlowHeader throws arbitrary bytes at the OT-flow header decoder:
// it must never panic, never accept a zero modulus, and every header it
// accepts must respect the declared-dimension caps (the fields that size
// allocations).
func FuzzOTFlowHeader(f *testing.F) {
	f.Add(encodeSeedHeader())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // giant eb/nl
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeFlowHeader(data)
		if err != nil {
			return
		}
		if h.group.P.Sign() == 0 {
			t.Fatal("decoder accepted a zero modulus")
		}
		if len(h.labels) > maxFlowLabels {
			t.Fatalf("decoder accepted %d labels past the %d cap", len(h.labels), maxFlowLabels)
		}
		if h.group.ElemBytes() > maxFlowElemBytes {
			t.Fatalf("decoder accepted %d-byte elements past the %d cap", h.group.ElemBytes(), maxFlowElemBytes)
		}
	})
}

// encodeSeedHeader builds one genuine flow header as the fuzzing seed.
func encodeSeedHeader() []byte {
	g := TestGroup()
	h := flowHeader{group: g, rHat: g.G, labels: nil}
	return h.encode()
}
