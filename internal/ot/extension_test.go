package ot

import (
	"bytes"
	"sync"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/transport"
)

// newExtPair runs the reversed base phase and returns paired extender
// states over a pipe.
func newExtPair(t *testing.T, seed uint64) (*ExtSender, *ExtReceiver, func()) {
	t.Helper()
	a, b := transport.Pipe()
	var s *ExtSender
	var r *ExtReceiver
	var es, er error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s, es = NewExtSender(a, TestGroup(), prg.NewSeeded(seed), ExtKappa) }()
	go func() { defer wg.Done(); r, er = NewExtReceiver(b, TestGroup(), prg.NewSeeded(seed+1), ExtKappa) }()
	wg.Wait()
	if es != nil || er != nil {
		t.Fatal(es, er)
	}
	return s, r, func() { a.Close(); b.Close() }
}

func extendPair(t *testing.T, s *ExtSender, r *ExtReceiver, m int) ([]SenderInst, []RecvInst) {
	t.Helper()
	var si []SenderInst
	var ri []RecvInst
	var es, er error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); si, es = s.Extend(m) }()
	go func() { defer wg.Done(); ri, er = r.Extend(m) }()
	wg.Wait()
	if es != nil || er != nil {
		t.Fatal(es, er)
	}
	return si, ri
}

func TestExtensionCorrelationsConsistent(t *testing.T) {
	s, r, closeFn := newExtPair(t, 1)
	defer closeFn()
	si, ri := extendPair(t, s, r, 500)
	choiceCounts := [2]int{}
	for j := range si {
		c := ri[j].Choice
		choiceCounts[c]++
		if !bytes.Equal(si[j].Seeds[c][:], ri[j].Seed[:]) {
			t.Fatalf("instance %d: receiver seed does not match sender seed[%d]", j, c)
		}
		// The unchosen pad must differ (Δ is never zero w.h.p.).
		if bytes.Equal(si[j].Seeds[1-c][:], ri[j].Seed[:]) {
			t.Fatalf("instance %d: receiver can see both pads", j)
		}
	}
	if choiceCounts[0] < 150 || choiceCounts[1] < 150 {
		t.Errorf("extension choices biased: %v", choiceCounts)
	}
}

func TestExtensionFreshAcrossCalls(t *testing.T) {
	s, r, closeFn := newExtPair(t, 2)
	defer closeFn()
	a1, _ := extendPair(t, s, r, 64)
	a2, _ := extendPair(t, s, r, 64)
	if bytes.Equal(a1[0].Seeds[0][:], a2[0].Seeds[0][:]) {
		t.Error("successive Extend calls reuse keystream")
	}
}

func TestCombineROTs(t *testing.T) {
	s, r, closeFn := newExtPair(t, 3)
	defer closeFn()
	si, ri := extendPair(t, s, r, 8)
	// Combine pairs into 1-of-4 correlations.
	for k := 0; k < 4; k++ {
		cs := CombineSenderROTs(si[2*k : 2*k+2])
		cr := CombineRecvROTs(ri[2*k : 2*k+2])
		if len(cs.Seeds) != 4 {
			t.Fatalf("combined arity %d", len(cs.Seeds))
		}
		if cr.Choice < 0 || cr.Choice > 3 {
			t.Fatalf("combined choice %d", cr.Choice)
		}
		if !bytes.Equal(cs.Seeds[cr.Choice][:], cr.Seed[:]) {
			t.Fatal("combined correlation inconsistent")
		}
		for c := 0; c < 4; c++ {
			if c != cr.Choice && bytes.Equal(cs.Seeds[c][:], cr.Seed[:]) {
				t.Fatal("combined receiver sees an unchosen pad")
			}
		}
	}
}

func TestExtensionBackedEndpoints(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	e0 := NewEndpoint(0, a, prg.NewSeeded(4))
	e0.HarvestGroup = TestGroup()
	e0.UseExtension = true
	e1 := NewEndpoint(1, b, prg.NewSeeded(5))
	e1.HarvestGroup = TestGroup()
	e1.UseExtension = true

	count := 300
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	g := prg.NewSeeded(6)
	for k := range msgs {
		msgs[k] = [][]byte{{byte(k)}, {byte(k + 1)}, {byte(k + 2)}, {byte(k + 3)}}
		choices[k] = g.Intn(4)
	}
	var got [][]byte
	var errS, errR error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errS = e0.Send1ofN(4, msgs) }()
	go func() { defer wg.Done(); got, errR = e1.Recv1ofN(4, choices, 1) }()
	wg.Wait()
	if errS != nil || errR != nil {
		t.Fatal(errS, errR)
	}
	for k := range got {
		if got[k][0] != byte(k+choices[k]) {
			t.Fatalf("instance %d wrong message", k)
		}
	}
	// Reverse direction initializes its own extender lazily.
	msgs2 := make([][][]byte, 8)
	choices2 := make([]int, 8)
	for k := range msgs2 {
		msgs2[k] = [][]byte{{byte(10 + k)}, {byte(20 + k)}}
		choices2[k] = k % 2
	}
	wg.Add(2)
	go func() { defer wg.Done(); errS = e1.Send1ofN(2, msgs2) }()
	go func() { defer wg.Done(); got, errR = e0.Recv1ofN(2, choices2, 1) }()
	wg.Wait()
	if errS != nil || errR != nil {
		t.Fatal(errS, errR)
	}
	for k := range got {
		want := byte(10 + k)
		if choices2[k] == 1 {
			want = byte(20 + k)
		}
		if got[k][0] != want {
			t.Fatalf("reverse instance %d wrong", k)
		}
	}
}

func TestExtensionValidation(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := NewExtSender(a, TestGroup(), prg.NewSeeded(7), 13); err == nil {
		t.Error("non-multiple-of-8 kappa accepted")
	}
	if _, err := log2Arity(3); err == nil {
		t.Error("arity 3 accepted")
	}
	if v, _ := log2Arity(8); v != 3 {
		t.Errorf("log2Arity(8) = %d", v)
	}
	s, r, closeFn := newExtPair(t, 8)
	defer closeFn()
	if _, err := s.Extend(0); err == nil {
		t.Error("zero extension accepted")
	}
	if _, err := r.Extend(-1); err == nil {
		t.Error("negative extension accepted")
	}
}

func BenchmarkExtension1of2(b *testing.B) {
	a, c := transport.Pipe()
	defer a.Close()
	defer c.Close()
	var s *ExtSender
	var r *ExtReceiver
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s, _ = NewExtSender(a, TestGroup(), prg.NewSeeded(9), ExtKappa) }()
	go func() { defer wg.Done(); r, _ = NewExtReceiver(c, TestGroup(), prg.NewSeeded(10), ExtKappa) }()
	wg.Wait()
	const m = 4096
	b.SetBytes(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); s.Extend(m) }()
		go func() { defer wg.Done(); r.Extend(m) }()
		wg.Wait()
	}
}
