package ot

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/transport"
)

// The OT-flow of Sec. 4.3.1, reconstructed from Fig. 4 and Eqs. 2–5.
// Party i (the SENDER, holding the possible-value matrix M_i) and party j
// (the RECEIVER, holding its group values M_j as choices) run:
//
//	init: both know (P, g) and a label list e2l: choice ↦ random exponent.
//	 ①  i: r_i ← rand,  ŕ = g^{r_i} mod P            → send ŕ (and labels)
//	 ②  j: per instance, with choice c: r_j ← rand,
//	       R = (ŕ^{e2l(c)} mod P) ⊕ (g^{r_j} mod P)   → send R        (Eq. 2)
//	 ③  i: per candidate l:
//	       KEY_l = H( (R ⊕ ŕ^{e2l(l)})^{r_i} mod P )
//	       Enc(m_l) = m_l ⊕ expand(KEY_l)             → send all Enc  (Eq. 3/4)
//	 ④  j: KEY = H( ŕ^{r_j} mod P ), decrypt Enc(m_c)                 (Eq. 5)
//
// When l = c the XOR in step ③ strips ŕ^{e2l(c)} and leaves exactly
// g^{r_j}, so (g^{r_j})^{r_i} = (g^{r_i})^{r_j} = ŕ^{r_j} and the keys
// agree; for l ≠ c the sender's key is an unrelated group element. Unlike
// the paper (which reuses r_j across the v dimension), we draw fresh r_j
// per instance so identical choices do not produce identical pads.

// padFromKey expands a key (a serialised group element) into an l-byte XOR
// pad via SHA-256 → AES-CTR.
func padFromKey(key []byte, l int) []byte {
	var seed [prg.SeedSize]byte
	sum := sha256.Sum256(key)
	copy(seed[:], sum[:])
	p := make([]byte, l)
	prg.New(seed).Read(p)
	return p
}

func xorInto(dst, pad []byte) {
	for i := range dst {
		dst[i] ^= pad[i]
	}
}

// flowHeader carries the sender's setup: group parameters, labels and ŕ.
type flowHeader struct {
	group  Group
	labels []*big.Int
	rHat   *big.Int
}

func (h flowHeader) encode() []byte {
	eb := h.group.ElemBytes()
	buf := make([]byte, 0, 12+eb*(3+len(h.labels)))
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(eb))
	buf = append(buf, n[:]...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(h.labels)))
	buf = append(buf, n[:]...)
	buf = append(buf, h.group.Encode(h.group.P)...)
	buf = append(buf, h.group.Encode(h.group.G)...)
	buf = append(buf, h.group.Encode(h.rHat)...)
	for _, l := range h.labels {
		buf = append(buf, h.group.Encode(l)...)
	}
	return buf
}

// Hostile-peer caps on the flow header's declared dimensions, checked
// BEFORE the eb·(3+nl) product so a giant pair of 32-bit fields can
// neither overflow the int arithmetic nor size an allocation. 8 KiB per
// element covers a 65536-bit modulus (far beyond any sane group); 65536
// labels covers a 1-of-2^16 OT, well past the protocol's largest fan-out.
const (
	maxFlowElemBytes = 1 << 13
	maxFlowLabels    = 1 << 16
)

func decodeFlowHeader(p []byte) (flowHeader, error) {
	var h flowHeader
	if len(p) < 8 {
		return h, fmt.Errorf("ot: truncated flow header")
	}
	eb := int(binary.LittleEndian.Uint32(p[:4]))
	nl := int(binary.LittleEndian.Uint32(p[4:8]))
	p = p[8:]
	if eb <= 0 || eb > maxFlowElemBytes || nl < 0 || nl > maxFlowLabels {
		return h, fmt.Errorf("ot: flow header declares eb=%d nl=%d, caps %d/%d", eb, nl, maxFlowElemBytes, maxFlowLabels)
	}
	if len(p) != eb*(3+nl) {
		return h, fmt.Errorf("ot: malformed flow header (eb=%d nl=%d len=%d)", eb, nl, len(p))
	}
	take := func() *big.Int {
		v := new(big.Int).SetBytes(p[:eb])
		p = p[eb:]
		return v
	}
	h.group = Group{P: take(), G: take()}
	h.rHat = take()
	h.labels = make([]*big.Int, nl)
	for i := range h.labels {
		h.labels[i] = take()
	}
	if h.group.P.Sign() == 0 {
		return h, fmt.Errorf("ot: zero modulus in flow header")
	}
	// The declared element width must be the group's canonical one, or the
	// sender's later Encode calls and our slicing disagree on boundaries.
	if h.group.ElemBytes() != eb {
		return h, fmt.Errorf("ot: flow header element width %d does not match modulus width %d", eb, h.group.ElemBytes())
	}
	return h, nil
}

// FlowSend runs the sender side (party i) of a batch of 1-of-N OTs over
// the paper's OT-flow. msgs[k][l] is the l-th candidate message of
// instance k; all messages must share one length. It costs 2 messages from
// the sender and 1 from the receiver.
func FlowSend(c transport.Conn, grp Group, rng *prg.PRG, n int, msgs [][][]byte) error {
	if n < 2 {
		return fmt.Errorf("ot: 1-of-%d transfer is not an OT", n)
	}
	msgLen := -1
	for k := range msgs {
		if len(msgs[k]) != n {
			return fmt.Errorf("ot: instance %d has %d candidates, want %d", k, len(msgs[k]), n)
		}
		for _, m := range msgs[k] {
			if msgLen == -1 {
				msgLen = len(m)
			} else if len(m) != msgLen {
				return fmt.Errorf("ot: candidate messages have mixed lengths")
			}
		}
	}
	if msgLen <= 0 {
		return fmt.Errorf("ot: empty batch or empty messages")
	}
	ri := grp.RandScalar(rng)
	rHat := grp.ExpG(ri)
	labels := make([]*big.Int, n)
	for i := range labels {
		labels[i] = grp.RandScalar(rng)
	}
	hdr := flowHeader{group: grp, labels: labels, rHat: rHat}
	if err := c.Send(hdr.encode()); err != nil {
		return err
	}
	// ② receive all R values.
	eb := grp.ElemBytes()
	rsRaw, err := c.Recv()
	if err != nil {
		return err
	}
	if len(rsRaw) != eb*len(msgs) {
		return fmt.Errorf("ot: expected %d R-bytes, got %d", eb*len(msgs), len(rsRaw))
	}
	// Precompute ŕ^{e2l(l)} once per candidate (shared across instances).
	rHatPow := make([]*big.Int, n)
	for l := 0; l < n; l++ {
		rHatPow[l] = grp.Exp(rHat, labels[l])
	}
	// ③ encrypt every candidate of every instance.
	out := make([]byte, 0, len(msgs)*n*msgLen)
	tmp := make([]byte, eb)
	for k := range msgs {
		rBytes := rsRaw[k*eb : (k+1)*eb]
		for l := 0; l < n; l++ {
			copy(tmp, rBytes)
			xorInto(tmp, grp.Encode(rHatPow[l]))
			base := new(big.Int).SetBytes(tmp)
			base.Mod(base, grp.P)
			key := grp.Encode(grp.Exp(base, ri))
			ct := append([]byte(nil), msgs[k][l]...)
			xorInto(ct, padFromKey(key, msgLen))
			out = append(out, ct...)
		}
	}
	return c.Send(out)
}

// FlowRecv runs the receiver side (party j): choices[k] selects the message
// obtained for instance k. msgLen must match the sender's message length.
func FlowRecv(c transport.Conn, rng *prg.PRG, n int, choices []int, msgLen int) ([][]byte, error) {
	hdrRaw, err := c.Recv()
	if err != nil {
		return nil, err
	}
	hdr, err := decodeFlowHeader(hdrRaw)
	if err != nil {
		return nil, err
	}
	if len(hdr.labels) != n {
		return nil, fmt.Errorf("ot: sender announced %d labels, want %d", len(hdr.labels), n)
	}
	grp := hdr.group
	eb := grp.ElemBytes()
	rjs := make([]*big.Int, len(choices))
	rs := make([]byte, 0, eb*len(choices))
	for k, ch := range choices {
		// Report the position only: the choice value is the receiver's
		// secret selection and must not surface in error text.
		if ch < 0 || ch >= n {
			return nil, fmt.Errorf("ot: choice at index %d outside [0,%d)", k, n)
		}
		rj := grp.RandScalar(rng)
		rjs[k] = rj
		r := grp.Encode(grp.Exp(hdr.rHat, hdr.labels[ch])) // ŕ^{e2l(c)}
		xorInto(r, grp.Encode(grp.ExpG(rj)))               // ⊕ g^{r_j}   (Eq. 2)
		rs = append(rs, r...)
	}
	if err := c.Send(rs); err != nil {
		return nil, err
	}
	cts, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(cts) != len(choices)*n*msgLen {
		return nil, fmt.Errorf("ot: expected %d ciphertext bytes, got %d", len(choices)*n*msgLen, len(cts))
	}
	out := make([][]byte, len(choices))
	for k, ch := range choices {
		key := grp.Encode(grp.Exp(hdr.rHat, rjs[k])) // ŕ^{r_j}  (Eq. 5)
		m := append([]byte(nil), cts[(k*n+ch)*msgLen:(k*n+ch+1)*msgLen]...)
		xorInto(m, padFromKey(key, msgLen))
		out[k] = m
	}
	return out, nil
}
