package ot

import (
	"fmt"
	"sort"

	"aq2pnn/internal/telemetry"
)

// Coalesced token transfer: the round-bound online phase for comparison
// protocols. A tensor-wide SCM/A2BM comparison spans several OT arities
// (one per distinct group width), and running one derandomized batch per
// arity costs one round trip each. SendTokens/RecvTokens instead move the
// whole step in a single send/recv pair: the receiver packs every batch's
// derandomization shift into one bit stream, the sender answers with every
// batch's masked candidate tokens in another. Tokens are packed at their
// true width (2 bits for the {LT, EQ, GT} comparison alphabet) instead of
// one byte each, so coalescing also shrinks the token traffic 4×.
//
// Stock refills stay in lockstep because both endpoints derive the same
// refill schedule from their (symmetric) stock levels, in ascending-arity
// order; with IKNP extension the whole multi-arity refill shares a single
// Extend call, so even the refill costs one message per step.

// SendTokenBatch is the sender's view of one arity-homogeneous slice of a
// coalesced transfer: Rows[k] holds the N candidate token values of
// instance k, each value < 1<<bits.
type SendTokenBatch struct {
	N    int
	Rows [][]byte
}

// RecvTokenBatch is the receiver's counterpart: Choices[k] selects
// instance k's candidate.
type RecvTokenBatch struct {
	N       int
	Choices []int
}

// putBits writes the low w bits of v at bit position pos (LSB-first within
// each byte). w ≤ 8, so a value spans at most two bytes.
func putBits(dst []byte, pos uint64, v uint64, w uint) {
	v &= 1<<w - 1
	i, off := pos>>3, pos&7
	dst[i] |= byte(v << off)
	if off+uint64(w) > 8 {
		dst[i+1] |= byte(v >> (8 - off))
	}
}

// getBits reads w bits at bit position pos.
func getBits(src []byte, pos uint64, w uint) uint64 {
	i, off := pos>>3, pos&7
	v := uint64(src[i]) >> off
	if off+uint64(w) > 8 {
		v |= uint64(src[i+1]) << (8 - off)
	}
	return v & (1<<w - 1)
}

// bitLen is the byte length of a bit stream.
func bitLen(bits uint64) int { return int((bits + 7) / 8) }

// tokenPlan is the shared arithmetic of one coalesced transfer: per-batch
// arity widths and the two stream lengths. Both parties compute it
// identically, so stream lengths never need negotiating.
type tokenPlan struct {
	widths []uint // per batch, log2 of its arity
	dsBits uint64 // total derandomization-shift bits
	ctBits uint64 // total masked-candidate bits
	use    map[int]int
}

func planTokens(bits uint, counts func(i int) (n, insts int), batches int) (tokenPlan, error) {
	p := tokenPlan{widths: make([]uint, batches), use: map[int]int{}}
	if bits == 0 || bits > 8 {
		return p, fmt.Errorf("ot: token width %d bits outside [1,8]", bits)
	}
	for i := 0; i < batches; i++ {
		n, insts := counts(i)
		t, err := log2Arity(n)
		if err != nil {
			return p, err
		}
		p.widths[i] = uint(t)
		p.dsBits += uint64(insts) * uint64(t)
		p.ctBits += uint64(insts) * uint64(n) * uint64(bits)
		p.use[n] += insts
	}
	return p, nil
}

// needs derives the refill demand from current stock levels.
func (p tokenPlan) needs(stock func(n int) int) map[int]int {
	needs := map[int]int{}
	for n, u := range p.use {
		if s := stock(n); u > s {
			needs[n] = u - s
		}
	}
	return needs
}

// SendTokens runs the sender side of one coalesced token transfer. Every
// batch rides the same ds-recv / cts-send pair, so the call costs one
// round regardless of how many arities the comparison layout spans.
func (e *Endpoint) SendTokens(bits uint, batches []SendTokenBatch) error {
	total := 0
	for _, b := range batches {
		total += len(b.Rows)
	}
	if total == 0 {
		return nil
	}
	sp := e.Trace.Enter("ot.send.tokens", telemetry.WithAttrs(
		telemetry.Int("batches", int64(len(batches))), telemetry.Int("insts", int64(total))))
	defer e.Trace.Exit(sp)
	telemetry.Count("aq2pnn_ot_send_insts_total", uint64(total))
	plan, err := planTokens(bits, func(i int) (int, int) { return batches[i].N, len(batches[i].Rows) }, len(batches))
	if err != nil {
		return err
	}
	if err := e.refillSendMulti(plan.needs(func(n int) int { return len(e.sendStock[n]) })); err != nil {
		return err
	}
	ds, err := e.Conn.Recv()
	if err != nil {
		return err
	}
	if len(ds) != bitLen(plan.dsBits) {
		return fmt.Errorf("ot: expected %d shift bytes, got %d", bitLen(plan.dsBits), len(ds))
	}
	mask := byte(1<<bits - 1)
	out := make([]byte, bitLen(plan.ctBits))
	var dsPos, ctPos uint64
	taken := map[int]int{}
	var pad [1]byte
	for bi, b := range batches {
		n, w := b.N, plan.widths[bi]
		pre := e.sendStock[n][taken[n] : taken[n]+len(b.Rows)]
		taken[n] += len(b.Rows)
		for k, row := range b.Rows {
			if len(row) != n {
				return fmt.Errorf("ot: batch %d instance %d has %d candidates, want %d", bi, k, len(row), n)
			}
			d := int(getBits(ds, dsPos, w))
			dsPos += uint64(w)
			if d >= n {
				return fmt.Errorf("ot: shift %d out of range for N=%d", d, n)
			}
			inst := pre[k]
			if len(inst.Seeds) != n {
				return fmt.Errorf("ot: precomputed instance has arity %d, want %d", len(inst.Seeds), n)
			}
			for l := 0; l < n; l++ {
				if row[l] > mask {
					return fmt.Errorf("ot: token value exceeds %d bits", bits)
				}
				PadInto(pad[:], inst.Seeds[(l+d)%n])
				putBits(out, ctPos, uint64(row[l]^(pad[0]&mask)), bits)
				ctPos += uint64(bits)
			}
		}
	}
	if err := e.Conn.Send(out); err != nil {
		return err
	}
	for n, u := range plan.use {
		e.sendStock[n] = e.sendStock[n][u:]
	}
	return nil
}

// RecvTokens runs the receiver side; the result holds one token byte per
// instance, in batch order.
func (e *Endpoint) RecvTokens(bits uint, batches []RecvTokenBatch) ([][]byte, error) {
	total := 0
	for _, b := range batches {
		total += len(b.Choices)
	}
	if total == 0 {
		return make([][]byte, len(batches)), nil
	}
	sp := e.Trace.Enter("ot.recv.tokens", telemetry.WithAttrs(
		telemetry.Int("batches", int64(len(batches))), telemetry.Int("insts", int64(total))))
	defer e.Trace.Exit(sp)
	telemetry.Count("aq2pnn_ot_recv_insts_total", uint64(total))
	plan, err := planTokens(bits, func(i int) (int, int) { return batches[i].N, len(batches[i].Choices) }, len(batches))
	if err != nil {
		return nil, err
	}
	if err := e.refillRecvMulti(plan.needs(func(n int) int { return len(e.recvStock[n]) })); err != nil {
		return nil, err
	}
	ds := make([]byte, bitLen(plan.dsBits))
	var dsPos uint64
	taken := map[int]int{}
	for bi, b := range batches {
		n, w := b.N, plan.widths[bi]
		pre := e.recvStock[n][taken[n] : taken[n]+len(b.Choices)]
		taken[n] += len(b.Choices)
		for k, ch := range b.Choices {
			if ch < 0 || ch >= n {
				return nil, fmt.Errorf("ot: choice %d outside [0,%d)", ch, n)
			}
			putBits(ds, dsPos, uint64(((pre[k].Choice-ch)%n+n)%n), w)
			dsPos += uint64(w)
		}
	}
	if err := e.Conn.Send(ds); err != nil {
		return nil, err
	}
	cts, err := e.Conn.Recv()
	if err != nil {
		return nil, err
	}
	if len(cts) != bitLen(plan.ctBits) {
		return nil, fmt.Errorf("ot: expected %d ciphertext bytes, got %d", bitLen(plan.ctBits), len(cts))
	}
	mask := byte(1<<bits - 1)
	out := make([][]byte, len(batches))
	var ctPos uint64
	taken = map[int]int{}
	var pad [1]byte
	for bi, b := range batches {
		n := b.N
		pre := e.recvStock[n][taken[n] : taken[n]+len(b.Choices)]
		taken[n] += len(b.Choices)
		toks := make([]byte, len(b.Choices))
		for k, ch := range b.Choices {
			v := byte(getBits(cts, ctPos+uint64(ch)*uint64(bits), bits))
			ctPos += uint64(n) * uint64(bits)
			PadInto(pad[:], pre[k].Seed)
			toks[k] = v ^ (pad[0] & mask)
		}
		out[bi] = toks
	}
	for n, u := range plan.use {
		e.recvStock[n] = e.recvStock[n][u:]
	}
	return out, nil
}

// refillSendMulti tops up several arities' sender stock in one pass, in
// ascending-arity order. With IKNP extension every arity shares a single
// Extend call; dealer and harvest backends fall back to per-arity refills.
func (e *Endpoint) refillSendMulti(needs map[int]int) error {
	arities := sortedArities(needs)
	if len(arities) == 0 {
		return nil
	}
	if e.Dealer != nil || !e.UseExtension {
		for _, n := range arities {
			if err := e.refillSend(n, needs[n]); err != nil {
				return err
			}
		}
		return nil
	}
	if e.extS == nil {
		var err error
		e.extS, err = NewExtSender(e.Conn, e.HarvestGroup, e.Rng, ExtKappa)
		if err != nil {
			return err
		}
	}
	chunks, ts, total, err := refillSchedule(arities, needs)
	if err != nil {
		return err
	}
	raw, err := e.extS.Extend(total)
	if err != nil {
		return err
	}
	off := 0
	for i, n := range arities {
		t := ts[i]
		for k := 0; k < chunks[i]; k++ {
			e.sendStock[n] = append(e.sendStock[n], CombineSenderROTs(raw[off:off+t]))
			off += t
		}
	}
	return nil
}

// refillRecvMulti is the receiver counterpart of refillSendMulti.
func (e *Endpoint) refillRecvMulti(needs map[int]int) error {
	arities := sortedArities(needs)
	if len(arities) == 0 {
		return nil
	}
	if e.Dealer != nil || !e.UseExtension {
		for _, n := range arities {
			if err := e.refillRecv(n, needs[n]); err != nil {
				return err
			}
		}
		return nil
	}
	if e.extR == nil {
		var err error
		e.extR, err = NewExtReceiver(e.Conn, e.HarvestGroup, e.Rng, ExtKappa)
		if err != nil {
			return err
		}
	}
	chunks, ts, total, err := refillSchedule(arities, needs)
	if err != nil {
		return err
	}
	raw, err := e.extR.Extend(total)
	if err != nil {
		return err
	}
	off := 0
	for i, n := range arities {
		t := ts[i]
		for k := 0; k < chunks[i]; k++ {
			e.recvStock[n] = append(e.recvStock[n], CombineRecvROTs(raw[off:off+t]))
			off += t
		}
	}
	return nil
}

func sortedArities(needs map[int]int) []int {
	arities := make([]int, 0, len(needs))
	for n := range needs {
		arities = append(arities, n)
	}
	sort.Ints(arities)
	return arities
}

// refillSchedule applies the minChunk floor per arity and totals the raw
// 1-of-2 correlations one Extend call must mint. Both endpoints compute it
// from symmetric stock levels, so the schedules agree without negotiation.
func refillSchedule(arities []int, needs map[int]int) (chunks, ts []int, total int, err error) {
	chunks = make([]int, len(arities))
	ts = make([]int, len(arities))
	for i, n := range arities {
		t, err := log2Arity(n)
		if err != nil {
			return nil, nil, 0, err
		}
		chunk := needs[n]
		if chunk < minChunk {
			chunk = minChunk
		}
		chunks[i], ts[i] = chunk, t
		total += chunk * t
	}
	return chunks, ts, total, nil
}
