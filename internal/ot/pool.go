package ot

import (
	"fmt"
	"sync"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/telemetry"
	"aq2pnn/internal/transport"
)

// minChunk is the smallest refill batch. Both endpoints use the same
// policy, so harvest-backed refills stay in lockstep across the two
// processes without extra coordination traffic.
const minChunk = 1024

// Dealer is the in-process trusted offline phase: it deals matching
// sender/receiver views of random OT correlations to the two endpoints of
// a session. It is safe for concurrent use by both party goroutines.
type Dealer struct {
	mu  sync.Mutex
	g   *prg.PRG
	snd map[string][]SenderInst
	rcv map[string][]RecvInst
}

// NewDealer returns a dealer drawing correlations from g.
func NewDealer(g *prg.PRG) *Dealer {
	return &Dealer{g: g, snd: map[string][]SenderInst{}, rcv: map[string][]RecvInst{}}
}

func dirKey(senderParty, n int) string { return fmt.Sprintf("%d/%d", senderParty, n) }

func (d *Dealer) ensure(key string, n, count int) {
	for len(d.snd[key]) < count || len(d.rcv[key]) < count {
		s, r := Deal(d.g, n, minChunk)
		d.snd[key] = append(d.snd[key], s...)
		d.rcv[key] = append(d.rcv[key], r...)
	}
}

// TakeSender removes `count` sender views for the given direction/arity.
func (d *Dealer) TakeSender(senderParty, n, count int) []SenderInst {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dirKey(senderParty, n)
	d.ensure(key, n, count)
	out := d.snd[key][:count]
	d.snd[key] = d.snd[key][count:]
	return out
}

// TakeRecv removes `count` receiver views for the given direction/arity.
func (d *Dealer) TakeRecv(senderParty, n, count int) []RecvInst {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dirKey(senderParty, n)
	d.ensure(key, n, count)
	out := d.rcv[key][:count]
	d.rcv[key] = d.rcv[key][count:]
	return out
}

// Endpoint is one party's OT interface: it owns the precomputed stock and
// runs the cheap online phases over the session connection. Refill is
// either dealer-backed (in-process) or harvest-backed (real base OTs over
// the wire).
type Endpoint struct {
	Party int // this party's index (0 or 1)
	Conn  transport.Conn
	Rng   *prg.PRG

	// Refill backends, in precedence order: Dealer (in-process trusted
	// offline phase), IKNP extension over HarvestGroup (UseExtension), or
	// per-instance base-OT harvesting over HarvestGroup.
	Dealer       *Dealer
	HarvestGroup Group
	// UseExtension turns on IKNP OT extension: κ base OTs once, then
	// PRG+hash-only refills. Both endpoints must agree.
	UseExtension bool

	// Trace receives a span per online OT batch (nil disables tracing at
	// one branch per call). Like the rest of the endpoint it belongs to
	// one party's sequential protocol flow.
	Trace *telemetry.Scope

	extS *ExtSender
	extR *ExtReceiver

	sendStock map[int][]SenderInst
	recvStock map[int][]RecvInst
}

// NewEndpoint returns an endpoint with empty stock.
func NewEndpoint(party int, conn transport.Conn, rng *prg.PRG) *Endpoint {
	return &Endpoint{
		Party:     party,
		Conn:      conn,
		Rng:       rng,
		sendStock: map[int][]SenderInst{},
		recvStock: map[int][]RecvInst{},
	}
}

func (e *Endpoint) refillSend(n, need int) error {
	chunk := need
	if chunk < minChunk {
		chunk = minChunk
	}
	if e.Dealer != nil {
		e.sendStock[n] = append(e.sendStock[n], e.Dealer.TakeSender(e.Party, n, chunk)...)
		return nil
	}
	if e.UseExtension {
		t, err := log2Arity(n)
		if err != nil {
			return err
		}
		if e.extS == nil {
			e.extS, err = NewExtSender(e.Conn, e.HarvestGroup, e.Rng, ExtKappa)
			if err != nil {
				return err
			}
		}
		raw, err := e.extS.Extend(chunk * t)
		if err != nil {
			return err
		}
		for k := 0; k < chunk; k++ {
			e.sendStock[n] = append(e.sendStock[n], CombineSenderROTs(raw[k*t:(k+1)*t]))
		}
		return nil
	}
	got, err := HarvestSend(e.Conn, e.HarvestGroup, e.Rng, n, chunk)
	if err != nil {
		return err
	}
	e.sendStock[n] = append(e.sendStock[n], got...)
	return nil
}

func (e *Endpoint) refillRecv(n, need int) error {
	chunk := need
	if chunk < minChunk {
		chunk = minChunk
	}
	if e.Dealer != nil {
		// The sender of these correlations is the other party.
		e.recvStock[n] = append(e.recvStock[n], e.Dealer.TakeRecv(1-e.Party, n, chunk)...)
		return nil
	}
	if e.UseExtension {
		t, err := log2Arity(n)
		if err != nil {
			return err
		}
		if e.extR == nil {
			e.extR, err = NewExtReceiver(e.Conn, e.HarvestGroup, e.Rng, ExtKappa)
			if err != nil {
				return err
			}
		}
		raw, err := e.extR.Extend(chunk * t)
		if err != nil {
			return err
		}
		for k := 0; k < chunk; k++ {
			e.recvStock[n] = append(e.recvStock[n], CombineRecvROTs(raw[k*t:(k+1)*t]))
		}
		return nil
	}
	got, err := HarvestRecv(e.Conn, e.Rng, n, chunk)
	if err != nil {
		return err
	}
	e.recvStock[n] = append(e.recvStock[n], got...)
	return nil
}

// log2Arity returns t for n = 2^t, rejecting non-power-of-two arities.
func log2Arity(n int) (int, error) {
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("ot: extension supports power-of-two arities, got %d", n)
	}
	t := 0
	for v := n; v > 1; v >>= 1 {
		t++
	}
	return t, nil
}

// Send1ofN acts as OT sender for a batch: msgs[k] holds the n candidate
// messages of instance k. It consumes len(msgs) precomputed instances.
func (e *Endpoint) Send1ofN(n int, msgs [][][]byte) error {
	if len(msgs) == 0 {
		return nil
	}
	sp := e.Trace.Enter("ot.send", telemetry.WithAttrs(
		telemetry.Int("arity", int64(n)), telemetry.Int("insts", int64(len(msgs)))))
	defer e.Trace.Exit(sp)
	telemetry.Count("aq2pnn_ot_send_insts_total", uint64(len(msgs)))
	if len(e.sendStock[n]) < len(msgs) {
		if err := e.refillSend(n, len(msgs)-len(e.sendStock[n])); err != nil {
			return err
		}
	}
	pre := e.sendStock[n][:len(msgs)]
	if err := SendPre(e.Conn, pre, n, msgs); err != nil {
		return err
	}
	e.sendStock[n] = e.sendStock[n][len(msgs):]
	return nil
}

// Recv1ofN acts as OT receiver for a batch of choices.
func (e *Endpoint) Recv1ofN(n int, choices []int, msgLen int) ([][]byte, error) {
	if len(choices) == 0 {
		return nil, nil
	}
	sp := e.Trace.Enter("ot.recv", telemetry.WithAttrs(
		telemetry.Int("arity", int64(n)), telemetry.Int("insts", int64(len(choices)))))
	defer e.Trace.Exit(sp)
	telemetry.Count("aq2pnn_ot_recv_insts_total", uint64(len(choices)))
	if len(e.recvStock[n]) < len(choices) {
		if err := e.refillRecv(n, len(choices)-len(e.recvStock[n])); err != nil {
			return nil, err
		}
	}
	pre := e.recvStock[n][:len(choices)]
	out, err := RecvPre(e.Conn, pre, n, choices, msgLen)
	if err != nil {
		return nil, err
	}
	e.recvStock[n] = e.recvStock[n][len(choices):]
	return out, nil
}

// Stock reports the available precomputed instances for an arity, for
// tests and capacity planning.
func (e *Endpoint) Stock(n int) (send, recv int) {
	return len(e.sendStock[n]), len(e.recvStock[n])
}
