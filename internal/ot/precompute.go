package ot

import (
	"crypto/aes"
	"fmt"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/transport"
)

// Beaver OT precomputation (the paper's reference [5]): expensive
// group-based OTs are executed ahead of time on *random* inputs, and the
// online phase derandomizes them with two cheap messages. The AS-CST
// buffer of the accelerator plays the same role for triples; this file
// plays it for OT correlations.

// SeedLen is the byte length of a random-OT pad seed.
const SeedLen = 16

// SenderInst is the sender's view of one precomputed random 1-of-N OT:
// N pad seeds.
type SenderInst struct {
	Seeds [][SeedLen]byte
}

// RecvInst is the receiver's view: a random choice c′ and the seed of pad
// c′ only.
type RecvInst struct {
	Choice int
	Seed   [SeedLen]byte
}

// Pad expands a seed into an l-byte XOR pad.
func Pad(seed [SeedLen]byte, l int) []byte {
	p := make([]byte, l)
	PadInto(p, seed)
	return p
}

// PadInto fills dst with the XOR pad of seed, writing the same bytes Pad
// would. The pad stream is AES-128-CTR keyed by the seed with the 0x5C
// domain-separation IV, so for pads of at most one block (every online OT
// message: tokens are bits, share messages are ≤ 8 bytes) a single block
// encryption replaces the general PRG construction — no keystream buffer,
// no allocation beyond the cipher schedule.
func PadInto(dst []byte, seed [SeedLen]byte) {
	if len(dst) <= aes.BlockSize {
		// Fast path, bit-identical to the PRG construction below: the PRG's
		// key is the seed, its IV is {0x5C, 0…}, and a CTR keystream's first
		// block is AES_key(IV).
		block, err := aes.NewCipher(seed[:])
		if err != nil {
			//lint:allow panicfree unreachable-by-construction: aes.NewCipher fails only on key lengths other than 16/24/32, and the seed is a fixed 16-byte array
			panic("ot: " + err.Error())
		}
		var iv, ks [aes.BlockSize]byte
		iv[0] = 0x5C
		block.Encrypt(ks[:], iv[:])
		copy(dst, ks[:len(dst)])
		return
	}
	var s [prg.SeedSize]byte
	copy(s[:SeedLen], seed[:])
	s[SeedLen] = 0x5C // domain separation from other PRG uses
	prg.New(s).Read(dst)
}

// Deal produces `count` correlated random 1-of-N OT instances from a
// single dealer PRG: the trusted-dealer offline phase used by the
// in-process experiments (the paper likewise treats offline material as
// pre-deployed constants).
func Deal(g *prg.PRG, n, count int) ([]SenderInst, []RecvInst) {
	snd := make([]SenderInst, count)
	rcv := make([]RecvInst, count)
	for k := 0; k < count; k++ {
		seeds := make([][SeedLen]byte, n)
		for l := range seeds {
			g.Read(seeds[l][:])
		}
		c := g.Intn(n)
		snd[k] = SenderInst{Seeds: seeds}
		rcv[k] = RecvInst{Choice: c, Seed: seeds[c]}
	}
	return snd, rcv
}

// HarvestSend generates `count` random 1-of-N OT instances by actually
// running the OT-flow as sender: the receiver learns one random seed per
// instance and nothing else, giving both parties the same correlation a
// dealer would, without a trusted third party.
func HarvestSend(c transport.Conn, grp Group, rng *prg.PRG, n, count int) ([]SenderInst, error) {
	snd := make([]SenderInst, count)
	msgs := make([][][]byte, count)
	for k := 0; k < count; k++ {
		seeds := make([][SeedLen]byte, n)
		cand := make([][]byte, n)
		for l := range seeds {
			rng.Read(seeds[l][:])
			cand[l] = seeds[l][:]
		}
		snd[k] = SenderInst{Seeds: seeds}
		msgs[k] = cand
	}
	if err := FlowSend(c, grp, rng, n, msgs); err != nil {
		return nil, err
	}
	return snd, nil
}

// HarvestRecv is the receiver side of HarvestSend, drawing uniform choices.
func HarvestRecv(c transport.Conn, rng *prg.PRG, n, count int) ([]RecvInst, error) {
	choices := make([]int, count)
	for k := range choices {
		choices[k] = rng.Intn(n)
	}
	got, err := FlowRecv(c, rng, n, choices, SeedLen)
	if err != nil {
		return nil, err
	}
	rcv := make([]RecvInst, count)
	for k := range rcv {
		rcv[k].Choice = choices[k]
		copy(rcv[k].Seed[:], got[k])
	}
	return rcv, nil
}

// SendPre runs the online sender phase of a batch of derandomized 1-of-N
// OTs. pre must contain one precomputed instance per message set. The
// receiver first reveals d = (c′ − c) mod N; the sender answers with
// e_l = m_l ⊕ pad_{(l+d) mod N}. Online cost: 1 byte from the receiver and
// N·msgLen bytes from the sender per instance, in one message each.
func SendPre(c transport.Conn, pre []SenderInst, n int, msgs [][][]byte) error {
	if len(pre) < len(msgs) {
		return fmt.Errorf("ot: %d precomputed instances for %d transfers", len(pre), len(msgs))
	}
	if n > 256 {
		return fmt.Errorf("ot: online derandomization supports N ≤ 256, got %d", n)
	}
	msgLen := -1
	for k := range msgs {
		if len(msgs[k]) != n {
			return fmt.Errorf("ot: instance %d has %d candidates, want %d", k, len(msgs[k]), n)
		}
		for _, m := range msgs[k] {
			if msgLen == -1 {
				msgLen = len(m)
			} else if len(m) != msgLen {
				return fmt.Errorf("ot: candidate messages have mixed lengths")
			}
		}
	}
	if msgLen <= 0 {
		return fmt.Errorf("ot: empty batch or empty messages")
	}
	ds, err := c.Recv()
	if err != nil {
		return err
	}
	if len(ds) != len(msgs) {
		return fmt.Errorf("ot: expected %d shift bytes, got %d", len(msgs), len(ds))
	}
	out := make([]byte, 0, len(msgs)*n*msgLen)
	pad := make([]byte, msgLen)
	for k := range msgs {
		d := int(ds[k])
		if d >= n {
			return fmt.Errorf("ot: shift %d out of range for N=%d", d, n)
		}
		inst := pre[k]
		if len(inst.Seeds) != n {
			return fmt.Errorf("ot: precomputed instance %d has arity %d, want %d", k, len(inst.Seeds), n)
		}
		for l := 0; l < n; l++ {
			PadInto(pad, inst.Seeds[(l+d)%n])
			xorInto(pad, msgs[k][l])
			out = append(out, pad...)
		}
	}
	return c.Send(out)
}

// RecvPre runs the online receiver phase: choices[k] selects instance k's
// message of length msgLen.
func RecvPre(c transport.Conn, pre []RecvInst, n int, choices []int, msgLen int) ([][]byte, error) {
	if len(pre) < len(choices) {
		return nil, fmt.Errorf("ot: %d precomputed instances for %d transfers", len(pre), len(choices))
	}
	ds := make([]byte, len(choices))
	for k, ch := range choices {
		if ch < 0 || ch >= n {
			return nil, fmt.Errorf("ot: choice %d outside [0,%d)", ch, n)
		}
		ds[k] = byte(((pre[k].Choice-ch)%n + n) % n)
	}
	if err := c.Send(ds); err != nil {
		return nil, err
	}
	cts, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(cts) != len(choices)*n*msgLen {
		return nil, fmt.Errorf("ot: expected %d ciphertext bytes, got %d", len(choices)*n*msgLen, len(cts))
	}
	out := make([][]byte, len(choices))
	flat := make([]byte, len(choices)*msgLen)
	for k, ch := range choices {
		m := flat[k*msgLen : (k+1)*msgLen]
		PadInto(m, pre[k].Seed)
		xorInto(m, cts[(k*n+ch)*msgLen:(k*n+ch+1)*msgLen])
		out[k] = m
	}
	return out, nil
}
