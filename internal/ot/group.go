// Package ot implements the oblivious-transfer machinery of the
// Sec-COMM. module: the Diffie-Hellman-style "OT-flow" of Sec. 4.3.1
// (Fig. 4, Eqs. 2–5, after Chou–Orlandi) and Beaver OT precomputation
// (the paper's reference [5]) that moves the expensive group operations
// into an offline phase, leaving a cheap two-message online phase whose
// traffic scales with the adaptive bit-width.
package ot

import (
	//lint:allow prgonly crypto/rand generates the public group prime, a protocol parameter both parties learn — never share randomness
	crand "crypto/rand"
	"math/big"

	"aq2pnn/internal/prg"
)

// Group is the multiplicative group used by the OT-flow. The paper uses
// "the multiplicative group of integers modulo Q" with lookup tables in
// hardware; here P is a public modulus and G a generator. Protocol
// correctness holds for any modulus (it only needs commutativity of
// exponentiation); security requires P to be a large prime with G
// generating a large subgroup.
type Group struct {
	P *big.Int
	G *big.Int
}

// ElemBytes is the byte width of a serialised group element.
func (g Group) ElemBytes() int { return (g.P.BitLen() + 7) / 8 }

// Exp computes base^e mod P.
func (g Group) Exp(base, e *big.Int) *big.Int { return new(big.Int).Exp(base, e, g.P) }

// ExpG computes G^e mod P.
func (g Group) ExpG(e *big.Int) *big.Int { return g.Exp(g.G, e) }

// RandScalar samples a uniform exponent in [2, P-2] from the PRG.
func (g Group) RandScalar(r *prg.PRG) *big.Int {
	max := new(big.Int).Sub(g.P, big.NewInt(3))
	buf := make([]byte, g.ElemBytes()+8)
	r.Read(buf)
	v := new(big.Int).SetBytes(buf)
	v.Mod(v, max)
	return v.Add(v, big.NewInt(2))
}

// Encode serialises a group element at the fixed group width.
func (g Group) Encode(x *big.Int) []byte {
	out := make([]byte, g.ElemBytes())
	x.FillBytes(out)
	return out
}

// TestGroup returns a small, fast group over the Mersenne prime 2^61 − 1
// with generator 3. It keeps protocol tests quick; it is NOT intended to
// provide cryptographic strength.
func TestGroup() Group {
	return Group{P: big.NewInt((1 << 61) - 1), G: big.NewInt(3)}
}

var defaultGroup *Group

// DefaultGroup returns the production group: a 512-bit prime generated once
// per process from the system CSPRNG, with generator 5. Generating rather
// than hardcoding keeps the repository free of magic constants while the
// offline build still works (crypto/rand.Prime is in the standard library).
func DefaultGroup() Group {
	if defaultGroup == nil {
		p, err := crand.Prime(crand.Reader, 512)
		if err != nil {
			//lint:allow panicfree config-time: the group is built once per process before any protocol bytes flow, and crand.Prime fails only when the OS CSPRNG is broken
			panic("ot: cannot generate group prime: " + err.Error())
		}
		defaultGroup = &Group{P: p, G: big.NewInt(5)}
	}
	return *defaultGroup
}
