package ot

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/transport"
)

func runPair(t *testing.T, sender func(transport.Conn) error, receiver func(transport.Conn) error) {
	t.Helper()
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var errS, errR error
	wg.Add(2)
	go func() { defer wg.Done(); errS = sender(a) }()
	go func() { defer wg.Done(); errR = receiver(b) }()
	wg.Wait()
	if errS != nil {
		t.Fatalf("sender: %v", errS)
	}
	if errR != nil {
		t.Fatalf("receiver: %v", errR)
	}
}

func TestFlow1of2(t *testing.T) {
	msgs := [][][]byte{
		{[]byte("zero-msg"), []byte("one-msgg")},
		{[]byte("aaaaaaaa"), []byte("bbbbbbbb")},
	}
	choices := []int{1, 0}
	var got [][]byte
	runPair(t,
		func(c transport.Conn) error { return FlowSend(c, TestGroup(), prg.NewSeeded(1), 2, msgs) },
		func(c transport.Conn) error {
			var err error
			got, err = FlowRecv(c, prg.NewSeeded(2), 2, choices, 8)
			return err
		})
	if !bytes.Equal(got[0], msgs[0][1]) || !bytes.Equal(got[1], msgs[1][0]) {
		t.Fatalf("wrong messages: %q %q", got[0], got[1])
	}
}

func TestFlow1of4AllChoices(t *testing.T) {
	n := 4
	count := 16
	g := prg.NewSeeded(3)
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	for k := range msgs {
		msgs[k] = make([][]byte, n)
		for l := range msgs[k] {
			m := make([]byte, 3)
			g.Read(m)
			msgs[k][l] = m
		}
		choices[k] = k % n
	}
	var got [][]byte
	runPair(t,
		func(c transport.Conn) error { return FlowSend(c, TestGroup(), prg.NewSeeded(4), n, msgs) },
		func(c transport.Conn) error {
			var err error
			got, err = FlowRecv(c, prg.NewSeeded(5), n, choices, 3)
			return err
		})
	for k := range msgs {
		if !bytes.Equal(got[k], msgs[k][choices[k]]) {
			t.Fatalf("instance %d: got %x want %x", k, got[k], msgs[k][choices[k]])
		}
	}
}

func TestFlowUnchosenMessagesUnrecoverable(t *testing.T) {
	// The receiver must not obtain the unchosen message: decrypting the
	// wrong slot with its key yields garbage. We simulate by checking the
	// two ciphertext slots differ from each other under the honest key.
	msgs := [][][]byte{{make([]byte, 16), make([]byte, 16)}} // both all-zero
	var got [][]byte
	runPair(t,
		func(c transport.Conn) error { return FlowSend(c, TestGroup(), prg.NewSeeded(6), 2, msgs) },
		func(c transport.Conn) error {
			var err error
			got, err = FlowRecv(c, prg.NewSeeded(7), 2, []int{0}, 16)
			return err
		})
	if !bytes.Equal(got[0], msgs[0][0]) {
		t.Fatal("chosen message wrong")
	}
	// Run again capturing raw traffic to confirm the other slot's pad is
	// independent: with identical plaintexts the ciphertext slots differ.
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- FlowSend(a, TestGroup(), prg.NewSeeded(8), 2, msgs) }()
	hdr, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	h, err := decodeFlowHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	// Honest receiver behaviour for choice 0.
	rng := prg.NewSeeded(9)
	rj := h.group.RandScalar(rng)
	r := h.group.Encode(h.group.Exp(h.rHat, h.labels[0]))
	xorInto(r, h.group.Encode(h.group.ExpG(rj)))
	if err := b.Send(r); err != nil {
		t.Fatal(err)
	}
	cts, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cts[:16], cts[16:32]) {
		t.Error("ciphertexts of identical plaintexts are equal: pads are not independent")
	}
}

func TestFlowErrors(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	if err := FlowSend(a, TestGroup(), prg.NewSeeded(1), 1, [][][]byte{{{1}}}); err == nil {
		t.Error("N=1 should fail")
	}
	if err := FlowSend(a, TestGroup(), prg.NewSeeded(1), 2, [][][]byte{{{1}, {2, 3}}}); err == nil {
		t.Error("mixed lengths should fail")
	}
	go FlowSend(a, TestGroup(), prg.NewSeeded(1), 2, [][][]byte{{{1}, {2}}})
	if _, err := FlowRecv(b, prg.NewSeeded(2), 2, []int{5}, 1); err == nil {
		t.Error("out-of-range choice should fail")
	}
}

func TestDealPadConsistency(t *testing.T) {
	g := prg.NewSeeded(10)
	snd, rcv := Deal(g, 4, 50)
	for k := range snd {
		c := rcv[k].Choice
		if !bytes.Equal(Pad(snd[k].Seeds[c], 32), Pad(rcv[k].Seed, 32)) {
			t.Fatalf("instance %d: pads disagree", k)
		}
	}
	// Choices should be roughly uniform.
	counts := make([]int, 4)
	_, rcv2 := Deal(g, 4, 4000)
	for _, r := range rcv2 {
		counts[r.Choice]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("choice %d count %d of 4000", i, c)
		}
	}
}

func TestPrecomputedOnline(t *testing.T) {
	g := prg.NewSeeded(11)
	n, count := 4, 32
	snd, rcv := Deal(g, n, count)
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	for k := range msgs {
		msgs[k] = make([][]byte, n)
		for l := range msgs[k] {
			m := make([]byte, 5)
			g.Read(m)
			msgs[k][l] = m
		}
		choices[k] = g.Intn(n)
	}
	var got [][]byte
	runPair(t,
		func(c transport.Conn) error { return SendPre(c, snd, n, msgs) },
		func(c transport.Conn) error {
			var err error
			got, err = RecvPre(c, rcv, n, choices, 5)
			return err
		})
	for k := range msgs {
		if !bytes.Equal(got[k], msgs[k][choices[k]]) {
			t.Fatalf("instance %d wrong message", k)
		}
	}
}

func TestPrecomputedOnlineCommCost(t *testing.T) {
	// Online traffic must be 1 byte (shift) + N·msgLen per instance —
	// that is the whole point of precomputation.
	g := prg.NewSeeded(12)
	n, count, msgLen := 2, 100, 2
	snd, rcv := Deal(g, n, count)
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	for k := range msgs {
		msgs[k] = [][]byte{{1, 2}, {3, 4}}
		choices[k] = k % 2
	}
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); SendPre(a, snd, n, msgs) }()
	go func() { defer wg.Done(); RecvPre(b, rcv, n, choices, msgLen) }()
	wg.Wait()
	if got := a.Stats().BytesSent; got != uint64(count*n*msgLen) {
		t.Errorf("sender online bytes = %d, want %d", got, count*n*msgLen)
	}
	if got := b.Stats().BytesSent; got != uint64(count) {
		t.Errorf("receiver online bytes = %d, want %d", got, count)
	}
}

func TestHarvestThenOnline(t *testing.T) {
	// Full stack: real base OTs harvest random correlations, online phase
	// consumes them.
	n, count := 4, 8
	var snd []SenderInst
	var rcv []RecvInst
	runPair(t,
		func(c transport.Conn) error {
			var err error
			snd, err = HarvestSend(c, TestGroup(), prg.NewSeeded(13), n, count)
			return err
		},
		func(c transport.Conn) error {
			var err error
			rcv, err = HarvestRecv(c, prg.NewSeeded(14), n, count)
			return err
		})
	for k := range snd {
		if !bytes.Equal(snd[k].Seeds[rcv[k].Choice][:], rcv[k].Seed[:]) {
			t.Fatalf("harvested instance %d inconsistent", k)
		}
	}
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	for k := range msgs {
		msgs[k] = [][]byte{{10}, {20}, {30}, {40}}
		choices[k] = (k * 3) % n
	}
	var got [][]byte
	runPair(t,
		func(c transport.Conn) error { return SendPre(c, snd, n, msgs) },
		func(c transport.Conn) error {
			var err error
			got, err = RecvPre(c, rcv, n, choices, 1)
			return err
		})
	for k := range got {
		if got[k][0] != byte(10*(choices[k]+1)) {
			t.Fatalf("instance %d: got %d", k, got[k][0])
		}
	}
}

func TestEndpointsWithDealer(t *testing.T) {
	dealer := NewDealer(prg.NewSeeded(15))
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	e0 := NewEndpoint(0, a, prg.NewSeeded(16))
	e0.Dealer = dealer
	e1 := NewEndpoint(1, b, prg.NewSeeded(17))
	e1.Dealer = dealer

	count := 2000 // force a stock refill past minChunk
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	g := prg.NewSeeded(18)
	for k := range msgs {
		msgs[k] = [][]byte{{byte(k)}, {byte(k + 1)}}
		choices[k] = g.Intn(2)
	}
	var got [][]byte
	var wg sync.WaitGroup
	var errS, errR error
	wg.Add(2)
	go func() { defer wg.Done(); errS = e0.Send1ofN(2, msgs) }()
	go func() { defer wg.Done(); got, errR = e1.Recv1ofN(2, choices, 1) }()
	wg.Wait()
	if errS != nil || errR != nil {
		t.Fatal(errS, errR)
	}
	for k := range got {
		if got[k][0] != byte(k+choices[k]) {
			t.Fatalf("instance %d wrong", k)
		}
	}
	// Reverse direction must use independent correlations.
	wg.Add(2)
	go func() { defer wg.Done(); errS = e1.Send1ofN(2, msgs[:4]) }()
	go func() { defer wg.Done(); got, errR = e0.Recv1ofN(2, choices[:4], 1) }()
	wg.Wait()
	if errS != nil || errR != nil {
		t.Fatal(errS, errR)
	}
	for k := range got {
		if got[k][0] != byte(k+choices[k]) {
			t.Fatalf("reverse instance %d wrong", k)
		}
	}
}

func TestEndpointTransportFailure(t *testing.T) {
	dealer := NewDealer(prg.NewSeeded(19))
	a, b := transport.Pipe()
	b.Close() // receiver side dead
	e0 := NewEndpoint(0, transport.NewFaultyConn(a, 0, false), prg.NewSeeded(20))
	e0.Dealer = dealer
	err := e0.Send1ofN(2, [][][]byte{{{1}, {2}}})
	if !errors.Is(err, transport.ErrInjected) {
		t.Errorf("expected injected transport error, got %v", err)
	}
}

func TestGroupScalarRange(t *testing.T) {
	grp := TestGroup()
	g := prg.NewSeeded(21)
	for i := 0; i < 100; i++ {
		s := grp.RandScalar(g)
		if s.Sign() <= 0 || s.Cmp(grp.P) >= 0 {
			t.Fatal("scalar out of range")
		}
	}
	if grp.ElemBytes() != 8 {
		t.Errorf("TestGroup ElemBytes = %d", grp.ElemBytes())
	}
}

func TestDefaultGroupIsPrime(t *testing.T) {
	if testing.Short() {
		t.Skip("prime generation")
	}
	grp := DefaultGroup()
	if !grp.P.ProbablyPrime(20) {
		t.Error("DefaultGroup modulus is not prime")
	}
	if grp2 := DefaultGroup(); grp2.P.Cmp(grp.P) != 0 {
		t.Error("DefaultGroup not cached")
	}
}

func BenchmarkFlow1of4(b *testing.B) {
	msgs := make([][][]byte, 16)
	choices := make([]int, 16)
	for k := range msgs {
		msgs[k] = [][]byte{{1}, {2}, {3}, {4}}
		choices[k] = k % 4
	}
	for i := 0; i < b.N; i++ {
		a, c := transport.Pipe()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); FlowSend(a, TestGroup(), prg.NewSeeded(1), 4, msgs) }()
		go func() { defer wg.Done(); FlowRecv(c, prg.NewSeeded(2), 4, choices, 1) }()
		wg.Wait()
		a.Close()
		c.Close()
	}
}

func BenchmarkPrecomputedOnline1of4(b *testing.B) {
	g := prg.NewSeeded(1)
	count := 1024
	msgs := make([][][]byte, count)
	choices := make([]int, count)
	for k := range msgs {
		msgs[k] = [][]byte{{1}, {2}, {3}, {4}}
		choices[k] = k % 4
	}
	b.SetBytes(int64(count))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		snd, rcv := Deal(g, 4, count)
		a, c := transport.Pipe()
		b.StartTimer()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); SendPre(a, snd, 4, msgs) }()
		go func() { defer wg.Done(); RecvPre(c, rcv, 4, choices, 1) }()
		wg.Wait()
		b.StopTimer()
		a.Close()
		c.Close()
		b.StartTimer()
	}
}
