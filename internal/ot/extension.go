package ot

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/transport"
)

// IKNP-style OT extension: after κ base OTs (run once, in reversed roles,
// through the Fig. 4 OT-flow), the parties can mint an unbounded stream of
// random 1-of-2 OT correlations with nothing but PRG expansion, XOR and
// hashing — three orders of magnitude cheaper than public-key base OTs.
// This is what makes the dealer-free two-process deployment scale beyond
// demo models; 1-of-2^t correlations are built by combining t extended
// instances.
//
// Protocol sketch (sender S of the resulting OTs, receiver R):
//
//	setup:  R samples κ seed PAIRS and plays base-OT sender; S samples a
//	        secret Δ ∈ {0,1}^κ and receives seed k_{Δᵢ,i} per column.
//	extend: R picks random choice bits r (one per new OT) and sends, per
//	        column i, uᵢ = G(k₀ᵢ) ⊕ G(k₁ᵢ) ⊕ r. S computes
//	        qᵢ = G(k_{Δᵢ,i}) ⊕ Δᵢ·uᵢ, so row j satisfies q_j = t_j ⊕ r_j·Δ.
//	output: S's two pads for OT j are H(j, q_j) and H(j, q_j ⊕ Δ); R holds
//	        H(j, t_j) — the pad selected by its random bit r_j.

// ExtKappa is the security parameter: the number of base-OT columns.
const ExtKappa = 128

// ExtSender is the extension state of the party that will act as the
// random-OT sender. It plays the base-OT *receiver* during setup.
type ExtSender struct {
	conn  transport.Conn
	delta []byte // κ bits, packed
	seeds [][SeedLen]byte
	// counter salts the per-row hash across Extend calls.
	counter uint64
}

// ExtReceiver is the counterpart state (base-OT sender during setup).
type ExtReceiver struct {
	conn    transport.Conn
	rng     *prg.PRG
	pairs   [][2][SeedLen]byte
	counter uint64
}

// NewExtSender runs the reversed base OTs as their receiver, with secret
// choice bits Δ.
func NewExtSender(conn transport.Conn, grp Group, rng *prg.PRG, kappa int) (*ExtSender, error) {
	if kappa <= 0 || kappa%8 != 0 {
		return nil, fmt.Errorf("ot: extension kappa %d must be a positive multiple of 8", kappa)
	}
	delta := make([]byte, kappa/8)
	rng.Read(delta)
	choices := make([]int, kappa)
	for i := range choices {
		choices[i] = int(bitOf(delta, i))
	}
	got, err := FlowRecv(conn, rng, 2, choices, SeedLen)
	if err != nil {
		return nil, fmt.Errorf("ot: extension base phase: %w", err)
	}
	seeds := make([][SeedLen]byte, kappa)
	for i := range seeds {
		copy(seeds[i][:], got[i])
	}
	return &ExtSender{conn: conn, delta: delta, seeds: seeds}, nil
}

// NewExtReceiver runs the reversed base OTs as their sender.
func NewExtReceiver(conn transport.Conn, grp Group, rng *prg.PRG, kappa int) (*ExtReceiver, error) {
	if kappa <= 0 || kappa%8 != 0 {
		return nil, fmt.Errorf("ot: extension kappa %d must be a positive multiple of 8", kappa)
	}
	pairs := make([][2][SeedLen]byte, kappa)
	msgs := make([][][]byte, kappa)
	for i := range pairs {
		rng.Read(pairs[i][0][:])
		rng.Read(pairs[i][1][:])
		msgs[i] = [][]byte{pairs[i][0][:], pairs[i][1][:]}
	}
	if err := FlowSend(conn, grp, rng, 2, msgs); err != nil {
		return nil, fmt.Errorf("ot: extension base phase: %w", err)
	}
	return &ExtReceiver{conn: conn, rng: rng, pairs: pairs}, nil
}

// expandColumn stretches a column seed to rows bytes of keystream; the
// salt keeps successive Extend calls on fresh keystream.
func expandColumn(seed [SeedLen]byte, salt uint64, nBytes int) []byte {
	var s [prg.SeedSize]byte
	copy(s[:SeedLen], seed[:])
	binary.LittleEndian.PutUint64(s[SeedLen:SeedLen+8], salt)
	s[prg.SeedSize-1] = 0xE7
	out := make([]byte, nBytes)
	prg.New(s).Read(out)
	return out
}

// rowHash derives one 16-byte random-OT pad seed from a κ-bit row.
func rowHash(counter uint64, j int, row []byte) [SeedLen]byte {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], counter)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(j))
	h.Write(hdr[:])
	h.Write(row)
	var out [SeedLen]byte
	copy(out[:], h.Sum(nil)[:SeedLen])
	return out
}

func bitOf(b []byte, i int) byte { return (b[i/8] >> (i % 8)) & 1 }

// Extend mints m random 1-of-2 OT correlations on the sender side.
func (s *ExtSender) Extend(m int) ([]SenderInst, error) {
	if m <= 0 {
		return nil, fmt.Errorf("ot: extension of %d instances", m)
	}
	kappa := len(s.seeds)
	nBytes := (m + 7) / 8
	us, err := s.conn.Recv()
	if err != nil {
		return nil, err
	}
	if len(us) != kappa*nBytes {
		return nil, fmt.Errorf("ot: extension expected %d u-bytes, got %d", kappa*nBytes, len(us))
	}
	// q columns: qᵢ = G(k_{Δᵢ}) ⊕ Δᵢ·uᵢ.
	cols := make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		col := expandColumn(s.seeds[i], s.counter, nBytes)
		if bitOf(s.delta, i) == 1 {
			u := us[i*nBytes : (i+1)*nBytes]
			for b := range col {
				col[b] ^= u[b]
			}
		}
		cols[i] = col
	}
	out := make([]SenderInst, m)
	row := make([]byte, kappa/8)
	rowD := make([]byte, kappa/8)
	for j := 0; j < m; j++ {
		for i := range row {
			row[i] = 0
		}
		for i := 0; i < kappa; i++ {
			if bitOf(cols[i], j) == 1 {
				row[i/8] |= 1 << (i % 8)
			}
		}
		for i := range row {
			rowD[i] = row[i] ^ s.delta[i]
		}
		out[j] = SenderInst{Seeds: [][SeedLen]byte{
			rowHash(s.counter, j, row),
			rowHash(s.counter, j, rowD),
		}}
	}
	s.counter++
	return out, nil
}

// Extend mints m random 1-of-2 OT correlations on the receiver side.
func (r *ExtReceiver) Extend(m int) ([]RecvInst, error) {
	if m <= 0 {
		return nil, fmt.Errorf("ot: extension of %d instances", m)
	}
	kappa := len(r.pairs)
	nBytes := (m + 7) / 8
	choice := make([]byte, nBytes)
	r.rng.Read(choice)
	// t columns and the u transmission.
	tCols := make([][]byte, kappa)
	us := make([]byte, 0, kappa*nBytes)
	for i := 0; i < kappa; i++ {
		t0 := expandColumn(r.pairs[i][0], r.counter, nBytes)
		t1 := expandColumn(r.pairs[i][1], r.counter, nBytes)
		u := make([]byte, nBytes)
		for b := range u {
			u[b] = t0[b] ^ t1[b] ^ choice[b]
		}
		tCols[i] = t0
		us = append(us, u...)
	}
	if err := r.conn.Send(us); err != nil {
		return nil, err
	}
	out := make([]RecvInst, m)
	row := make([]byte, kappa/8)
	for j := 0; j < m; j++ {
		for i := range row {
			row[i] = 0
		}
		for i := 0; i < kappa; i++ {
			if bitOf(tCols[i], j) == 1 {
				row[i/8] |= 1 << (i % 8)
			}
		}
		out[j] = RecvInst{Choice: int(bitOf(choice, j)), Seed: rowHash(r.counter, j, row)}
	}
	r.counter++
	return out, nil
}

// CombineSenderROTs fuses t random 1-of-2 correlations into one 1-of-2^t
// correlation: candidate pads are hashes of the chosen component seeds.
func CombineSenderROTs(insts []SenderInst) SenderInst {
	t := len(insts)
	n := 1 << t
	seeds := make([][SeedLen]byte, n)
	for c := 0; c < n; c++ {
		h := sha256.New()
		for b := 0; b < t; b++ {
			s := insts[b].Seeds[(c>>b)&1]
			h.Write(s[:])
		}
		copy(seeds[c][:], h.Sum(nil)[:SeedLen])
	}
	return SenderInst{Seeds: seeds}
}

// CombineRecvROTs is the receiver counterpart of CombineSenderROTs.
func CombineRecvROTs(insts []RecvInst) RecvInst {
	t := len(insts)
	c := 0
	h := sha256.New()
	for b := 0; b < t; b++ {
		c |= insts[b].Choice << b
		h.Write(insts[b].Seed[:])
	}
	var seed [SeedLen]byte
	copy(seed[:], h.Sum(nil)[:SeedLen])
	return RecvInst{Choice: c, Seed: seed}
}
