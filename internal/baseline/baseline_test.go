package baseline

import (
	"testing"

	"aq2pnn/internal/fpga"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

func TestPublishedRowsEfficiency(t *testing.T) {
	for _, r := range PublishedTable4() {
		if r.EffFPSpW <= 0 {
			t.Errorf("%s/%s efficiency not computed", r.System, r.Model)
		}
	}
	// Spot-check against the paper: Falcon LeNet5 efficiency 0.065354.
	got := PublishedTable4()[0].EffFPSpW
	if got < 0.0653 || got > 0.0654 {
		t.Errorf("Falcon LeNet5 efficiency = %f, want 0.065354", got)
	}
	// CryptGPU ResNet50 efficiency 0.000175.
	for _, r := range PublishedTable4() {
		if r.System == "CryptGPU" && r.Model == "ResNet50 (ImageNet)" {
			if r.EffFPSpW < 0.000174 || r.EffFPSpW > 0.000176 {
				t.Errorf("CryptGPU ResNet50 efficiency = %f", r.EffFPSpW)
			}
		}
	}
}

func TestAQ2PNNPublishedEfficiencyGap(t *testing.T) {
	// The headline claim: 26.3× efficiency over CryptGPU on ResNet50.
	var aq, gpu float64
	for _, r := range PublishedAQ2PNNTable4() {
		if r.Model == "ResNet50 (ImageNet)" {
			aq = r.EffFPSpW
		}
	}
	for _, r := range PublishedTable4() {
		if r.System == "CryptGPU" && r.Model == "ResNet50 (ImageNet)" {
			gpu = r.EffFPSpW
		}
	}
	ratio := aq / gpu
	if ratio < 24 || ratio > 29 {
		t.Errorf("published efficiency ratio = %.1f×, paper says 26.3×", ratio)
	}
}

func TestFixedRingCostsMoreThanAdaptive(t *testing.T) {
	m, err := nn.ByName("resnet18-imagenet", nn.ZooConfig{Skeleton: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpga.ZCU104()
	fixed64, err := FixedRing(cfg, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := cfg.EstimateModel(m, ring.New(16), false)
	if err != nil {
		t.Fatal(err)
	}
	red, err := CommReduction(adaptive.CommMiB(), fixed64.CommMiB())
	if err != nil {
		t.Fatal(err)
	}
	// 64-bit shares cost ≈4× the bytes of 16-bit shares.
	if red < 3.0 || red > 5.0 {
		t.Errorf("fixed-64 vs adaptive-16 comm reduction = %.2f×, want ≈4×", red)
	}
	if fixed64.ThroughputFPS >= adaptive.ThroughputFPS {
		t.Error("fixed ring should be slower")
	}
}

func TestGCReLUCommDwarfsABReLU(t *testing.T) {
	m, _ := nn.ByName("resnet18-imagenet", nn.ZooConfig{Skeleton: true})
	gc, err := GCReLUComm(m)
	if err != nil {
		t.Fatal(err)
	}
	relus, _ := m.ReLUCount()
	ab := fpga.BytesFor(uint64(relus), fpga.ABReLUBits(ring.New(16)))
	if gc < 100*ab {
		t.Errorf("GC ReLU %d bytes vs ABReLU %d bytes; expected ≥100× gap", gc, ab)
	}
}

func TestCommReductionValidation(t *testing.T) {
	if _, err := CommReduction(0, 100); err == nil {
		t.Error("zero denominator accepted")
	}
	if r, _ := CommReduction(50, 100); r != 2 {
		t.Errorf("reduction = %f", r)
	}
}

func TestFixedRingClampsWidth(t *testing.T) {
	m := &nn.Model{Name: "t", InC: 1, InH: 4, InW: 4, InBits: 8,
		Nodes: []nn.Node{{Op: nn.Flatten{}, Inputs: []int{-1}}}}
	est, err := FixedRing(fpga.ZCU104(), m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if est.Carrier.Bits != 62 {
		t.Errorf("carrier = %d, want clamp to 62", est.Carrier.Bits)
	}
	if est.Carrier.Bytes() != 8 {
		t.Error("62-bit carrier must have the 8-byte wire width of 64-bit shares")
	}
}
