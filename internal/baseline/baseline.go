// Package baseline provides the comparison systems of the paper's
// evaluation: the published platform rows of Table 4 (Falcon, CrypTFlow,
// CryptGPU — power and configuration exactly as the original papers
// report them), a runnable "previous works" configuration (the Fig. 9(b)
// flow: one fixed wide ring for the whole network, executed by the same
// engine so its communication is measured rather than assumed), and the
// garbled-circuit ReLU cost model used when discussing GC-based systems
// (Sec. 2.2: a ReLU costs 67.9K wires).
package baseline

import (
	"fmt"

	"aq2pnn/internal/fpga"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

// Platform describes a comparison system's deployment.
type Platform struct {
	Name string
	// PowerWatts is per node as reported by the original papers.
	PowerWatts float64
	// Nodes is the number of computation parties/machines.
	Nodes int
	// RingBits is the fixed share width the system computes on.
	RingBits uint
}

// The paper's comparison systems (Sec. 6.1).
var (
	// Falcon is the 3PC framework; power measured per its paper setup.
	Falcon = Platform{Name: "Falcon", PowerWatts: 133, Nodes: 3, RingBits: 32}
	// CrypTFlow runs the ABY2-based 2PC-DNN configuration.
	CrypTFlow = Platform{Name: "Cryptflow", PowerWatts: 178, Nodes: 2, RingBits: 64}
	// CryptGPU uses CUDALongTensor 64-bit shares on V100 GPUs.
	CryptGPU = Platform{Name: "CryptGPU", PowerWatts: 306, Nodes: 2, RingBits: 64}
)

// Row is one measurement: throughput, communication, power, efficiency —
// the four metrics of Table 4.
type Row struct {
	Model    string
	System   string
	TputFPS  float64
	CommMiB  float64
	PowerW   float64 // per node
	Nodes    int
	EffFPSpW float64
}

// Efficiency computes fps per total watt.
func (r *Row) Efficiency() float64 {
	if r.PowerW <= 0 || r.TputFPS <= 0 {
		return 0
	}
	return r.TputFPS / (r.PowerW * float64(r.Nodes))
}

// PublishedTable4 reproduces the comparison rows of Table 4 exactly as
// printed in the paper, for side-by-side presentation with our measured
// AQ2PNN rows.
func PublishedTable4() []Row {
	// EffFPSpW carries the paper's printed values (which embed its own
	// rounding); Efficiency() recomputes within ≈1% of them.
	return []Row{
		{Model: "LeNet5 (MNIST)", System: "Falcon", TputFPS: 26.316, CommMiB: 2.29, PowerW: 133, Nodes: 3, EffFPSpW: 0.065354},
		{Model: "AlexNet (MNIST/CIFAR10)", System: "Falcon", TputFPS: 9.091, CommMiB: 4.02, PowerW: 139, Nodes: 3, EffFPSpW: 0.021801},
		{Model: "VGG16 (CIFAR10)", System: "Falcon", TputFPS: 0.694, CommMiB: 40.45, PowerW: 185, Nodes: 3, EffFPSpW: 0.001250},
		{Model: "VGG16 (CIFAR10)", System: "CryptGPU", TputFPS: 0.467, CommMiB: 56.20, PowerW: 289, Nodes: 2, EffFPSpW: 0.000807},
		{Model: "ResNet50 (ImageNet)", System: "Cryptflow", TputFPS: 0.039, CommMiB: 6900, PowerW: 178, Nodes: 2, EffFPSpW: 0.000110},
		{Model: "ResNet50 (ImageNet)", System: "CryptGPU", TputFPS: 0.107, CommMiB: 3080, PowerW: 306, Nodes: 2, EffFPSpW: 0.000175},
		{Model: "VGG16 (ImageNet)", System: "CryptGPU", TputFPS: 0.106, CommMiB: 2750, PowerW: 315, Nodes: 2, EffFPSpW: 0.000168},
	}
}

// PublishedAQ2PNNTable4 is the paper's own AQ2PNN (16-bit) rows, kept for
// shape comparison against our reproduction.
func PublishedAQ2PNNTable4() []Row {
	return []Row{
		{Model: "LeNet5 (MNIST)", System: "AQ2PNN", TputFPS: 16.68, CommMiB: 0.95, PowerW: 7.2, Nodes: 2, EffFPSpW: 1.158333},
		{Model: "AlexNet (MNIST/CIFAR10)", System: "AQ2PNN", TputFPS: 6.081, CommMiB: 1.2, PowerW: 7.4, Nodes: 2, EffFPSpW: 0.410878},
		{Model: "VGG16 (CIFAR10)", System: "AQ2PNN", TputFPS: 0.352, CommMiB: 28.87, PowerW: 7.7, Nodes: 2, EffFPSpW: 0.022857},
		{Model: "ResNet50 (ImageNet)", System: "AQ2PNN", TputFPS: 0.071, CommMiB: 1120, PowerW: 7.7, Nodes: 2, EffFPSpW: 0.004610},
		{Model: "VGG16 (ImageNet)", System: "AQ2PNN", TputFPS: 0.038, CommMiB: 1410, PowerW: 7.7, Nodes: 2, EffFPSpW: 0.002468},
	}
}

// FixedRing estimates the "previous works" configuration of Fig. 9(b): the
// same accelerator and protocols but a single fixed wide ring (32- or
// 64-bit) and no adaptive requantization shaping. RingBits above
// ring.MaxBits are clamped to 62, which has the same 8-byte wire width as
// 64-bit shares.
func FixedRing(cfg fpga.Config, m *nn.Model, bits uint) (fpga.Estimate, error) {
	if bits > ring.MaxBits {
		bits = ring.MaxBits
	}
	return cfg.EstimateModel(m, ring.New(bits), false)
}

// GC ReLU cost (Sec. 2.2): "ReLU requires 67.9K wires". With half-gates
// garbling at 2 ciphertexts × 16 bytes per AND gate and roughly one gate
// per wire, one garbled ReLU moves about 2.2 MiB — the overhead that
// motivates ABReLU.

// GCWiresPerReLU is the paper's quoted circuit size.
const GCWiresPerReLU = 67_900

// GCBytesPerReLU models the garbled-table traffic of one ReLU.
const GCBytesPerReLU = GCWiresPerReLU * 32

// GCReLUComm returns the modelled garbled-circuit traffic for all ReLU
// activations of a model — the quantity ABReLU replaces.
func GCReLUComm(m *nn.Model) (uint64, error) {
	n, err := m.ReLUCount()
	if err != nil {
		return 0, err
	}
	return uint64(n) * GCBytesPerReLU, nil
}

// CommReduction reports ours vs theirs as the paper phrases it
// ("reduced communication by 2.41×").
func CommReduction(ours, theirs float64) (float64, error) {
	if ours <= 0 {
		return 0, fmt.Errorf("baseline: non-positive communication %f", ours)
	}
	return theirs / ours, nil
}
