package dataset

import (
	"math"
	"testing"
)

func TestGenerateShapesAndRange(t *testing.T) {
	d, err := MNISTLike(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 || d.C != 1 || d.H != 28 || d.W != 28 || d.Classes != 10 {
		t.Fatalf("dataset meta %+v", d)
	}
	for i, x := range d.X {
		if len(x) != 28*28 {
			t.Fatalf("sample %d has %d pixels", i, len(x))
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g outside [0,1]", v)
			}
		}
		if d.Y[i] < 0 || d.Y[i] >= 10 {
			t.Fatalf("label %d", d.Y[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := CIFARLike(50, 7)
	b, _ := CIFARLike(50, 7)
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels diverge")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("pixels diverge")
			}
		}
	}
	c, _ := CIFARLike(50, 8)
	same := true
	for j := range a.X[0] {
		if a.X[0][j] != c.X[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produce identical data")
	}
}

func TestClassBalanceRough(t *testing.T) {
	d, _ := MNISTLike(2000, 2)
	counts := make([]int, 10)
	for _, y := range d.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n < 120 || n > 280 {
			t.Errorf("class %d has %d of 2000", c, n)
		}
	}
}

func TestSeparabilityNearestCentroid(t *testing.T) {
	// A nearest-centroid classifier must beat chance by a wide margin —
	// the classes carry real structure.
	d, _ := MNISTLike(600, 3)
	tr, te := d.Split(400)
	dim := d.C * d.H * d.W
	centroids := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	for i := range centroids {
		centroids[i] = make([]float64, dim)
	}
	for i := range tr.X {
		c := tr.Y[i]
		counts[c]++
		for j, v := range tr.X[i] {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := range te.X {
		best, bestD := 0, math.Inf(1)
		for c := range centroids {
			var dd float64
			for j, v := range te.X[i] {
				diff := v - centroids[c][j]
				dd += diff * diff
			}
			if dd < bestD {
				best, bestD = c, dd
			}
		}
		if best == te.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(te.Len())
	if acc < 0.5 {
		t.Errorf("nearest-centroid accuracy %.2f; classes not separable enough", acc)
	}
	if acc == 1.0 {
		t.Error("task is trivially separable; quantization damage would be invisible")
	}
	t.Logf("nearest-centroid accuracy: %.3f", acc)
}

func TestSplitBounds(t *testing.T) {
	d, _ := MNISTLike(10, 4)
	tr, te := d.Split(100)
	if tr.Len() != 10 || te.Len() != 0 {
		t.Error("oversized split not clamped")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestImageNetLikeClasses(t *testing.T) {
	d, _ := ImageNetLike(40, 5)
	if d.Classes != 20 || d.C != 3 {
		t.Errorf("imagenet-like meta %+v", d)
	}
}
