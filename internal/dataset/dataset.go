// Package dataset generates the synthetic stand-ins for MNIST, CIFAR10
// and ImageNet (we have no access to the real corpora in this offline
// environment; see DESIGN.md). Each class is a procedurally generated
// composition of soft blobs and oriented bars; samples perturb the class
// template with spatial jitter, per-blob deformation and pixel noise, so
// the tasks are learnable but not trivial — small models land in the
// 80–99% range, leaving visible headroom for quantization damage, which is
// what the accuracy experiments need to measure.
package dataset

import (
	"fmt"
	"math"

	"aq2pnn/internal/prg"
)

// Dataset is a labelled image set, pixels in [0, 1], layout (C, H, W).
type Dataset struct {
	Name    string
	X       [][]float64
	Y       []int
	C, H, W int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Split partitions the set into train/test halves at the given index.
func (d *Dataset) Split(nTrain int) (train, test *Dataset) {
	if nTrain > d.Len() {
		nTrain = d.Len()
	}
	mk := func(x [][]float64, y []int) *Dataset {
		return &Dataset{Name: d.Name, X: x, Y: y, C: d.C, H: d.H, W: d.W, Classes: d.Classes}
	}
	return mk(d.X[:nTrain], d.Y[:nTrain]), mk(d.X[nTrain:], d.Y[nTrain:])
}

type blob struct {
	cx, cy, r, amp float64
	ch             int
}

type classTemplate struct {
	blobs []blob
}

// Config parameterizes a synthetic set.
type Config struct {
	Name      string
	C, H, W   int
	Classes   int
	N         int
	Seed      uint64
	Noise     float64 // pixel noise standard deviation
	Jitter    float64 // spatial jitter fraction of image size
	BlobCount int
}

// Generate builds a synthetic dataset.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.C <= 0 || cfg.H <= 0 || cfg.W <= 0 || cfg.Classes <= 0 || cfg.N <= 0 {
		// Name the offending dimensions, not %+v the whole config: the
		// config carries the seed, which stays out of error text.
		return nil, fmt.Errorf("dataset: bad config %q: shape %dx%dx%d, %d classes, n=%d (all must be positive)",
			cfg.Name, cfg.C, cfg.H, cfg.W, cfg.Classes, cfg.N)
	}
	if cfg.BlobCount == 0 {
		cfg.BlobCount = 4
	}
	master := prg.NewSeeded(cfg.Seed ^ 0xDA7A5E7)
	// Class templates.
	templates := make([]classTemplate, cfg.Classes)
	for c := range templates {
		tg := prg.NewSeeded(cfg.Seed*1000003 + uint64(c))
		blobs := make([]blob, cfg.BlobCount)
		for i := range blobs {
			blobs[i] = blob{
				cx:  0.25 + 0.5*tg.Float64(),
				cy:  0.25 + 0.5*tg.Float64(),
				r:   0.10 + 0.10*tg.Float64(),
				amp: 0.45 + 0.4*tg.Float64(),
				ch:  tg.Intn(cfg.C),
			}
		}
		templates[c] = classTemplate{blobs: blobs}
	}
	d := &Dataset{Name: cfg.Name, C: cfg.C, H: cfg.H, W: cfg.W, Classes: cfg.Classes}
	for s := 0; s < cfg.N; s++ {
		label := master.Intn(cfg.Classes)
		img := renderSample(templates[label], cfg, master)
		d.X = append(d.X, img)
		d.Y = append(d.Y, label)
	}
	return d, nil
}

func renderSample(t classTemplate, cfg Config, g *prg.PRG) []float64 {
	img := make([]float64, cfg.C*cfg.H*cfg.W)
	jx := (g.Float64()*2 - 1) * cfg.Jitter
	jy := (g.Float64()*2 - 1) * cfg.Jitter
	for _, b := range t.blobs {
		cx := (b.cx + jx) * float64(cfg.W)
		cy := (b.cy + jy) * float64(cfg.H)
		r := b.r * float64(cfg.W) * (0.85 + 0.3*g.Float64())
		amp := b.amp * (0.8 + 0.4*g.Float64())
		r2 := r * r
		for y := 0; y < cfg.H; y++ {
			dy := float64(y) - cy
			for x := 0; x < cfg.W; x++ {
				dx := float64(x) - cx
				v := amp * math.Exp(-(dx*dx+dy*dy)/(2*r2))
				img[(b.ch*cfg.H+y)*cfg.W+x] += v
			}
		}
	}
	for i := range img {
		img[i] += cfg.Noise * g.NormFloat64()
		if img[i] < 0 {
			img[i] = 0
		}
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img
}

// MNISTLike is the 1×28×28, 10-class stand-in.
func MNISTLike(n int, seed uint64) (*Dataset, error) {
	return Generate(Config{Name: "mnist-like", C: 1, H: 28, W: 28, Classes: 10, N: n, Seed: seed, Noise: 0.22, Jitter: 0.12, BlobCount: 4})
}

// CIFARLike is the 3×32×32, 10-class stand-in.
func CIFARLike(n int, seed uint64) (*Dataset, error) {
	return Generate(Config{Name: "cifar-like", C: 3, H: 32, W: 32, Classes: 10, N: n, Seed: seed, Noise: 0.24, Jitter: 0.12, BlobCount: 5})
}

// ImageNetLike is a scale-reduced stand-in: 3×32×32 with 20 classes (the
// class count, not the resolution, is what stresses the logit range).
func ImageNetLike(n int, seed uint64) (*Dataset, error) {
	return Generate(Config{Name: "imagenet-like", C: 3, H: 32, W: 32, Classes: 20, N: n, Seed: seed, Noise: 0.24, Jitter: 0.12, BlobCount: 6})
}
