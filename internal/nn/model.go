// Package nn provides the quantized DNN representation shared by the
// plaintext reference executor, the quantizer, the secure 2PC engine and
// the accelerator cost model. A model is a small DAG (residual connections
// need more than a chain) of integer operators matching the paper's
// building block: Conv2D/FC fused with BNReQ, ReLU, max/average pooling
// and residual addition (Fig. 8, Fig. 9).
package nn

import (
	"fmt"

	"aq2pnn/internal/tensor"
)

// Op is a quantized operator. The concrete types below are the full set
// the executors understand.
type Op interface {
	// Kind returns the operator's short name (2PC-Conv2D, ABReLU, ...).
	Kind() string
	// OutShape derives the output shape from the input shapes.
	OutShape(in []tensor.Shape) (tensor.Shape, error)
}

// Conv is a 2D convolution fused with BNReQ: y = ((W*x + Bias) · Im) >> Ie.
// Weights are quantized integers laid out (OutC, InC·KH·KW).
type Conv struct {
	Geom tensor.ConvGeom
	W    []int64
	Bias []int64 // per output channel (may be nil)
	Im   []int64 // per-channel dyadic scale numerator
	Ie   uint    // dyadic scale shift
}

// Kind implements Op.
func (*Conv) Kind() string { return "2PC-Conv2D" }

// OutShape implements Op.
func (c *Conv) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := c.checkShapes(in); err != nil {
		return nil, err
	}
	return tensor.Shape{c.Geom.OutC, c.Geom.OutH(), c.Geom.OutW()}, nil
}

func (c *Conv) checkShapes(in []tensor.Shape) error {
	if len(in) != 1 {
		return fmt.Errorf("nn: Conv takes 1 input, got %d", len(in))
	}
	want := tensor.Shape{c.Geom.InC, c.Geom.InH, c.Geom.InW}
	if !in[0].Equal(want) {
		return fmt.Errorf("nn: Conv input %v, want %v", in[0], want)
	}
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	if c.W == nil && c.Im == nil {
		// Skeleton node: shapes only, for cost modelling. Executors reject
		// it with a clear error.
		return nil
	}
	if len(c.W) != c.Geom.OutC*c.Geom.PatchLen() {
		return fmt.Errorf("nn: Conv weights %d, want %d", len(c.W), c.Geom.OutC*c.Geom.PatchLen())
	}
	if len(c.Im) != c.Geom.OutC {
		return fmt.Errorf("nn: Conv Im %d, want %d", len(c.Im), c.Geom.OutC)
	}
	if c.Bias != nil && len(c.Bias) != c.Geom.OutC {
		return fmt.Errorf("nn: Conv bias %d, want %d", len(c.Bias), c.Geom.OutC)
	}
	return nil
}

// Skeleton reports whether the node carries no weights (cost-model only).
func (c *Conv) Skeleton() bool { return c.W == nil && c.Im == nil }

// FC is a fully connected layer fused with BNReQ.
type FC struct {
	In, Out int
	W       []int64 // (Out, In)
	Bias    []int64
	Im      []int64 // per output neuron (usually uniform)
	Ie      uint
}

// Kind implements Op.
func (*FC) Kind() string { return "2PC-FC" }

// OutShape implements Op.
func (f *FC) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("nn: FC takes 1 input, got %d", len(in))
	}
	if in[0].Numel() != f.In {
		return nil, fmt.Errorf("nn: FC input %v (%d values), want %d", in[0], in[0].Numel(), f.In)
	}
	if f.W == nil && f.Im == nil {
		return tensor.Shape{f.Out}, nil // skeleton node
	}
	if len(f.W) != f.In*f.Out || len(f.Im) != f.Out {
		return nil, fmt.Errorf("nn: FC parameter sizes wrong")
	}
	return tensor.Shape{f.Out}, nil
}

// Skeleton reports whether the node carries no weights (cost-model only).
func (f *FC) Skeleton() bool { return f.W == nil && f.Im == nil }

// ReLU is the activation evaluated by ABReLU in the ciphertext domain.
type ReLU struct{}

// Kind implements Op.
func (ReLU) Kind() string { return "ABReLU" }

// OutShape implements Op.
func (ReLU) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("nn: ReLU takes 1 input")
	}
	return in[0].Clone(), nil
}

// MaxPool is a channel-wise max pooling layer.
type MaxPool struct{ Geom tensor.ConvGeom }

// Kind implements Op.
func (*MaxPool) Kind() string { return "2PC-MaxPool" }

// OutShape implements Op.
func (p *MaxPool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	return poolShape(p.Geom, in)
}

// AvgPool is a channel-wise average pooling layer.
type AvgPool struct{ Geom tensor.ConvGeom }

// Kind implements Op.
func (*AvgPool) Kind() string { return "2PC-AvgPool" }

// OutShape implements Op.
func (p *AvgPool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	return poolShape(p.Geom, in)
}

func poolShape(g tensor.ConvGeom, in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("nn: pooling takes 1 input")
	}
	want := tensor.Shape{g.InC, g.InH, g.InW}
	if !in[0].Equal(want) {
		return nil, fmt.Errorf("nn: pool input %v, want %v", in[0], want)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return tensor.Shape{g.InC, g.OutH(), g.OutW()}, nil
}

// Add is the residual element-wise addition (C-C addition in the AS-ALU).
type Add struct{}

// Kind implements Op.
func (Add) Kind() string { return "2PC-Add" }

// OutShape implements Op.
func (Add) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: Add takes 2 inputs, got %d", len(in))
	}
	if !in[0].Equal(in[1]) {
		return nil, fmt.Errorf("nn: Add shapes %v vs %v", in[0], in[1])
	}
	return in[0].Clone(), nil
}

// Flatten reshapes to a vector.
type Flatten struct{}

// Kind implements Op.
func (Flatten) Kind() string { return "Flatten" }

// OutShape implements Op.
func (Flatten) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("nn: Flatten takes 1 input")
	}
	return tensor.Shape{in[0].Numel()}, nil
}

// Node is one vertex of the model DAG. Inputs index earlier nodes; the
// value -1 denotes the model input.
type Node struct {
	Op     Op
	Inputs []int
	// Name is an optional per-node label (e.g. "conv2_3") used by
	// profiling output.
	Name string
}

// Model is a quantized network: a topologically ordered DAG whose last
// node is the output.
type Model struct {
	Name          string
	InC, InH, InW int
	// InBits is the bit-width of the quantized model's values (ℓ in the
	// paper); the carrier ring is chosen from it (ℓ+margin).
	InBits uint
	Nodes  []Node
}

// InputShape returns the model input shape.
func (m *Model) InputShape() tensor.Shape { return tensor.Shape{m.InC, m.InH, m.InW} }

// Shapes computes every node's output shape, validating the graph.
func (m *Model) Shapes() ([]tensor.Shape, error) {
	out := make([]tensor.Shape, len(m.Nodes))
	for i, n := range m.Nodes {
		ins := make([]tensor.Shape, len(n.Inputs))
		for k, idx := range n.Inputs {
			switch {
			case idx == -1:
				ins[k] = m.InputShape()
			case idx >= 0 && idx < i:
				ins[k] = out[idx]
			default:
				return nil, fmt.Errorf("nn: node %d references node %d (not topological)", i, idx)
			}
		}
		s, err := n.Op.OutShape(ins)
		if err != nil {
			return nil, fmt.Errorf("nn: node %d (%s): %w", i, n.Op.Kind(), err)
		}
		out[i] = s
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nn: empty model")
	}
	return out, nil
}

// OutShape returns the model output shape.
func (m *Model) OutShape() (tensor.Shape, error) {
	s, err := m.Shapes()
	if err != nil {
		return nil, err
	}
	return s[len(s)-1], nil
}

// Params counts the learnable parameters.
func (m *Model) Params() int64 {
	var n int64
	for _, node := range m.Nodes {
		switch op := node.Op.(type) {
		case *Conv:
			n += int64(op.Geom.OutC*op.Geom.PatchLen() + op.Geom.OutC)
		case *FC:
			n += int64(f64len(op))
		}
	}
	return n
}

func f64len(op *FC) int { return op.In*op.Out + op.Out }

// MACs counts multiply-accumulates over all linear layers, the quantity
// the AS-GEMM cycle model consumes.
func (m *Model) MACs() int64 {
	var n int64
	for _, node := range m.Nodes {
		switch op := node.Op.(type) {
		case *Conv:
			n += op.Geom.MACs()
		case *FC:
			n += int64(op.In) * int64(op.Out)
		}
	}
	return n
}

// ReLUCount counts activation elements flowing through ReLU layers, which
// drives the ABReLU communication model.
func (m *Model) ReLUCount() (int64, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return 0, err
	}
	var n int64
	for i, node := range m.Nodes {
		if _, ok := node.Op.(ReLU); ok {
			n += int64(shapes[i].Numel())
		}
	}
	return n, nil
}
