package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Model serialization: a quantized model (graph + weights + BNReQ scales)
// round-trips through encoding/gob, so a provider can quantize once and
// ship the artifact to its deployment. The format embeds a version tag to
// keep older artifacts detectable.

// serialVersion guards the on-disk format.
const serialVersion = 1

func init() {
	// The Op interface needs its concrete types registered for gob.
	gob.Register(&Conv{})
	gob.Register(&FC{})
	gob.Register(ReLU{})
	gob.Register(&MaxPool{})
	gob.Register(&AvgPool{})
	gob.Register(Add{})
	gob.Register(Flatten{})
}

type serialModel struct {
	Version int
	Model   *Model
	// InScale carries the quantizer's input scale when saving a Quantized
	// artifact (0 when absent).
	InScale float64
}

// Write serializes the model (with an optional input scale) to w.
func Write(w io.Writer, m *Model, inScale float64) error {
	if _, err := m.Shapes(); err != nil {
		return fmt.Errorf("nn: refusing to serialize an invalid model: %w", err)
	}
	return gob.NewEncoder(w).Encode(serialModel{Version: serialVersion, Model: m, InScale: inScale})
}

// Read deserializes a model written by Write.
func Read(r io.Reader) (*Model, float64, error) {
	var s serialModel
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, 0, fmt.Errorf("nn: decoding model: %w", err)
	}
	if s.Version != serialVersion {
		return nil, 0, fmt.Errorf("nn: model format version %d, want %d", s.Version, serialVersion)
	}
	if s.Model == nil {
		return nil, 0, fmt.Errorf("nn: artifact carries no model")
	}
	if _, err := s.Model.Shapes(); err != nil {
		return nil, 0, fmt.Errorf("nn: artifact is not a valid model: %w", err)
	}
	return s.Model, s.InScale, nil
}

// Save writes the model to a file.
func Save(path string, m *Model, inScale float64) error {
	var buf bytes.Buffer
	if err := Write(&buf, m, inScale); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Load reads a model from a file.
func Load(path string) (*Model, float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return Read(f)
}
