package nn

import (
	"encoding/binary"
	"hash/fnv"

	"aq2pnn/internal/tensor"
)

// Fingerprint digests everything two parties must agree on before running
// the 2PC protocol over a model: the graph topology, every operator's
// geometry, and the public quantization metadata (the per-channel dyadic
// BNReQ scales Im and shifts Ie, which both parties apply locally). It
// deliberately excludes weight and bias *values* — those are the model
// provider's secret, shared over the wire — and cosmetic names, so the
// same architecture built in two processes fingerprints identically while
// any mismatch that would garble the protocol (different layer order,
// kernel geometry, quantization scales, bias presence) changes the digest.
//
// The session handshake exchanges this value to fail fast with a typed
// error instead of a mid-protocol length mismatch or a silently wrong
// reveal.
func (m *Model) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	wi := func(vs ...int64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	wgeom := func(g tensor.ConvGeom) {
		wi(int64(g.InC), int64(g.InH), int64(g.InW), int64(g.OutC),
			int64(g.KH), int64(g.KW), int64(g.StrideH), int64(g.StrideW),
			int64(g.PadH), int64(g.PadW))
	}
	wi(int64(m.InC), int64(m.InH), int64(m.InW), int64(m.InBits), int64(len(m.Nodes)))
	for _, node := range m.Nodes {
		k := node.Op.Kind()
		wi(int64(len(k)))
		h.Write([]byte(k))
		wi(int64(len(node.Inputs)))
		for _, in := range node.Inputs {
			wi(int64(in))
		}
		switch op := node.Op.(type) {
		case *Conv:
			wgeom(op.Geom)
			wi(int64(op.Ie), int64(len(op.Im)))
			wi(op.Im...)
			wi(boolInt(op.Bias != nil), boolInt(op.Skeleton()))
		case *FC:
			wi(int64(op.In), int64(op.Out), int64(op.Ie), int64(len(op.Im)))
			wi(op.Im...)
			wi(boolInt(op.Bias != nil), boolInt(op.Skeleton()))
		case *MaxPool:
			wgeom(op.Geom)
		case *AvgPool:
			wgeom(op.Geom)
		}
	}
	return h.Sum64()
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
