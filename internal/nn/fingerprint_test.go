package nn

import "testing"

func TestFingerprintStableAcrossBuilds(t *testing.T) {
	a, err := ByName("lenet5", ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("lenet5", ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical builds fingerprint differently")
	}
}

func TestFingerprintIgnoresWeightValuesAndNames(t *testing.T) {
	m, err := ByName("micro", ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Fingerprint()
	for _, node := range m.Nodes {
		if c, ok := node.Op.(*Conv); ok && c.W != nil {
			c.W[0] += 17
		}
	}
	m.Name = "renamed"
	m.Nodes[0].Name = "other"
	if m.Fingerprint() != fp {
		t.Error("fingerprint depends on weight values or cosmetic names")
	}
}

func TestFingerprintSeparatesArchitectures(t *testing.T) {
	micro, err := ByName("micro", ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lenet, err := ByName("lenet5", ZooConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if micro.Fingerprint() == lenet.Fingerprint() {
		t.Error("micro and lenet5 share a fingerprint")
	}
	// Quantization metadata is protocol-relevant: changing a BNReQ scale
	// must change the digest (both parties apply Im/Ie locally).
	fp := micro.Fingerprint()
	for _, node := range micro.Nodes {
		if c, ok := node.Op.(*Conv); ok && c.Im != nil {
			c.Im[0]++
			break
		}
	}
	if micro.Fingerprint() == fp {
		t.Error("fingerprint ignores BNReQ quantization metadata")
	}
}
