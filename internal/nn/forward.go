package nn

import (
	"fmt"
	"math"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/share"
	"aq2pnn/internal/tensor"
)

// The plaintext integer executor. Two arithmetic modes are provided:
//
//   - Exact: int64 arithmetic without wrapping — the "ideal" quantized
//     model of Fig. 9(a), used to score pure quantization accuracy.
//   - Ring:  all intermediate values wrap on a Z_{2^ℓ} carrier — the
//     arithmetic the 2PC engine actually performs (Fig. 9(c)), so the
//     plaintext and ciphertext domains can be compared value-for-value
//     and ring-overflow effects measured in isolation.

// ExecMode selects the arithmetic of the plaintext executor.
type ExecMode int

const (
	// Exact uses full int64 arithmetic.
	Exact ExecMode = iota
	// Ring wraps every intermediate on the carrier ring.
	Ring
	// StochasticRing wraps on the carrier AND emulates the 2PC share
	// truncation exactly: every BNReQ shift is computed by actually
	// splitting the value into random shares and truncating them locally,
	// reproducing the ±1 LSB noise and the probabilistic ±Q/2^d wrap
	// failures of the protocol. This is the fast, distribution-faithful
	// stand-in for full secure execution used by the accuracy sweeps.
	StochasticRing
)

// ForwardOptions configures the executor.
type ForwardOptions struct {
	Mode ExecMode
	// Carrier is the ring for Mode == Ring and StochasticRing.
	Carrier ring.Ring
	// Rng supplies the share randomness for StochasticRing.
	Rng *prg.PRG
	// LocalTrunc makes StochasticRing emulate the paper's local share
	// truncation (probabilistic wrap failures) instead of the default
	// faithful truncation; it mirrors engine.Options.LocalTrunc.
	LocalTrunc bool
}

// Forward evaluates the model on a quantized input (length InC·InH·InW)
// and returns the output activations of the final node.
func (m *Model) Forward(x []int64, opt ForwardOptions) ([]int64, error) {
	outs, err := m.ForwardAll(x, opt)
	if err != nil {
		return nil, err
	}
	return outs[len(outs)-1], nil
}

// ForwardAll evaluates the model and returns every node's activations
// (used by the calibration pass and by tests).
func (m *Model) ForwardAll(x []int64, opt ForwardOptions) ([][]int64, error) {
	if len(x) != m.InputShape().Numel() {
		return nil, fmt.Errorf("nn: input length %d, want %d", len(x), m.InputShape().Numel())
	}
	shapes, err := m.Shapes()
	if err != nil {
		return nil, err
	}
	wrap := func(v int64) int64 { return v }
	trunc := func(v int64, d uint) int64 { return v >> d }
	switch opt.Mode {
	case Ring:
		r := opt.Carrier
		if r.Bits == 0 {
			return nil, fmt.Errorf("nn: Ring mode without a carrier ring")
		}
		wrap = func(v int64) int64 { return r.ToInt(r.FromInt(v)) }
		trunc = func(v int64, d uint) int64 { return r.ToInt(r.ShiftRightSigned(r.FromInt(v), d)) }
	case StochasticRing:
		r := opt.Carrier
		if r.Bits == 0 {
			return nil, fmt.Errorf("nn: StochasticRing mode without a carrier ring")
		}
		g := opt.Rng
		if g == nil {
			return nil, fmt.Errorf("nn: StochasticRing mode without an Rng")
		}
		wrap = func(v int64) int64 { return r.ToInt(r.FromInt(v)) }
		if opt.LocalTrunc {
			trunc = func(v int64, d uint) int64 {
				// Emulate the paper's local 2PC share truncation
				// bit-exactly, including its probabilistic wrap failures.
				x0, x1 := share.Split(g, r, r.FromInt(v))
				t0 := share.TruncateShare(r, share.PartyI, x0, d)
				t1 := share.TruncateShare(r, share.PartyJ, x1, d)
				return r.ToInt(share.Open(r, t0, t1))
			}
		} else {
			trunc = func(v int64, d uint) int64 {
				// Emulate the faithful truncation bit-exactly: exact to ±1
				// while |v| < Q/4, garbage beyond — the same contract the
				// secure operator has.
				if d == 0 {
					return r.ToInt(r.FromInt(v))
				}
				x0 := g.Elem(r)
				x1 := r.Sub(r.FromInt(v), x0)
				quarter := r.Q() / 4
				xp0 := r.Add(x0, quarter)
				var k uint64
				if xp0+x1 >= r.Q() { // both reduced, so the sum is < 2Q
					k = 1
				}
				y := r.Add(xp0>>d, x1>>d)
				y = r.Sub(y, r.MulConst(k, int64(r.Q()>>d)))
				y = r.Sub(y, quarter>>d)
				return r.ToInt(y)
			}
		}
	}
	vals := make([][]int64, len(m.Nodes))
	get := func(idx int) []int64 {
		if idx == -1 {
			return x
		}
		return vals[idx]
	}
	for i, node := range m.Nodes {
		switch op := node.Op.(type) {
		case *Conv:
			if op.Skeleton() {
				return nil, fmt.Errorf("nn: node %d is a skeleton Conv (cost-model only)", i)
			}
			in := get(node.Inputs[0])
			vals[i] = forwardConv(op, in, wrap, trunc)
		case *FC:
			if op.Skeleton() {
				return nil, fmt.Errorf("nn: node %d is a skeleton FC (cost-model only)", i)
			}
			in := get(node.Inputs[0])
			vals[i] = forwardFC(op, in, wrap, trunc)
		case ReLU:
			in := get(node.Inputs[0])
			out := make([]int64, len(in))
			for k, v := range in {
				if v > 0 {
					out[k] = v
				}
			}
			vals[i] = out
		case *MaxPool:
			in := get(node.Inputs[0])
			out := make([]int64, shapes[i].Numel())
			tensor.PoolWindows(op.Geom, func(oi int, win []int) {
				best := in[win[0]]
				for _, ii := range win[1:] {
					if in[ii] > best {
						best = in[ii]
					}
				}
				out[oi] = best
			})
			vals[i] = out
		case *AvgPool:
			in := get(node.Inputs[0])
			out := make([]int64, shapes[i].Numel())
			tensor.PoolWindows(op.Geom, func(oi int, win []int) {
				var sum int64
				for _, ii := range win {
					sum = wrap(sum + in[ii])
				}
				n := len(win)
				if opt.Mode == Exact {
					out[oi] = floorDiv(sum, int64(n))
					return
				}
				// Mirror the secure operator: pure truncation for
				// power-of-two windows, dyadic reciprocal otherwise.
				if n&(n-1) == 0 {
					d := uint(0)
					for 1<<(d+1) <= n {
						d++
					}
					out[oi] = wrap(trunc(sum, d))
					return
				}
				t0 := uint(0)
				for 1<<(t0+1) <= n {
					t0++
				}
				t0++
				const t1 = 5
				recip := int64(math.Round(float64(uint64(1)<<(t0+t1)) / float64(n)))
				out[oi] = wrap(trunc(wrap(trunc(sum, t0)*recip), t1))
			})
			vals[i] = out
		case Add:
			a := get(node.Inputs[0])
			b := get(node.Inputs[1])
			out := make([]int64, len(a))
			for k := range a {
				out[k] = wrap(a[k] + b[k])
			}
			vals[i] = out
		case Flatten:
			in := get(node.Inputs[0])
			vals[i] = append([]int64(nil), in...)
		default:
			return nil, fmt.Errorf("nn: unknown op %T", node.Op)
		}
	}
	return vals, nil
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func forwardConv(op *Conv, in []int64, wrap func(int64) int64, trunc func(int64, uint) int64) []int64 {
	g := op.Geom
	oh, ow := g.OutH(), g.OutW()
	pl := g.PatchLen()
	cols := im2colInt64(in, g)
	out := make([]int64, g.OutC*oh*ow)
	patches := oh * ow
	for oc := 0; oc < g.OutC; oc++ {
		w := op.W[oc*pl : (oc+1)*pl]
		var bias int64
		if op.Bias != nil {
			bias = op.Bias[oc]
		}
		im := op.Im[oc]
		for p := 0; p < patches; p++ {
			col := cols[p*pl : (p+1)*pl]
			var acc int64
			for k := 0; k < pl; k++ {
				acc = wrap(acc + col[k]*w[k])
			}
			acc = wrap(wrap(acc+bias) * im)
			out[oc*patches+p] = wrap(trunc(acc, op.Ie))
		}
	}
	return out
}

func forwardFC(op *FC, in []int64, wrap func(int64) int64, trunc func(int64, uint) int64) []int64 {
	out := make([]int64, op.Out)
	for o := 0; o < op.Out; o++ {
		w := op.W[o*op.In : (o+1)*op.In]
		var acc int64
		for k := 0; k < op.In; k++ {
			acc = wrap(acc + in[k]*w[k])
		}
		if op.Bias != nil {
			acc = wrap(acc + op.Bias[o])
		}
		acc = wrap(acc * op.Im[o])
		out[o] = wrap(trunc(acc, op.Ie))
	}
	return out
}

func im2colInt64(img []int64, g tensor.ConvGeom) []int64 {
	oh, ow := g.OutH(), g.OutW()
	pl := g.PatchLen()
	out := make([]int64, oh*ow*pl)
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.StrideH + ky - g.PadH
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.StrideW + kx - g.PadW
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							out[idx] = img[(c*g.InH+iy)*g.InW+ix]
						}
						idx++
					}
				}
			}
		}
	}
	return out
}

// Argmax returns the index of the largest logit, breaking ties toward the
// lower index.
func Argmax(logits []int64) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}
