package nn

import (
	"fmt"
	"strings"
)

// Summary renders a per-layer table of the model: operator kinds, output
// shapes, parameter counts and MAC counts — the quick sanity view a model
// provider checks before quantizing and deploying.
func (m *Model) Summary() (string, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (input %d×%d×%d, %d-bit)\n", m.Name, m.InC, m.InH, m.InW, m.InBits)
	fmt.Fprintf(&b, "%-4s %-14s %-18s %-14s %12s %14s\n", "#", "name", "op", "output", "params", "MACs")
	var totalP, totalM int64
	for i, node := range m.Nodes {
		var params, macs int64
		switch op := node.Op.(type) {
		case *Conv:
			params = int64(op.Geom.OutC*op.Geom.PatchLen() + op.Geom.OutC)
			macs = op.Geom.MACs()
		case *FC:
			params = int64(op.In*op.Out + op.Out)
			macs = int64(op.In) * int64(op.Out)
		}
		totalP += params
		totalM += macs
		fmt.Fprintf(&b, "%-4d %-14s %-18s %-14s %12s %14s\n",
			i, clip(node.Name, 14), node.Op.Kind(), shapes[i].String(), count(params), count(macs))
	}
	fmt.Fprintf(&b, "total: %s params, %s MACs, %d ReLU elements\n",
		count(totalP), count(totalM), mustReLUCount(m))
	return b.String(), nil
}

func mustReLUCount(m *Model) int64 {
	n, err := m.ReLUCount()
	if err != nil {
		return -1
	}
	return n
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// count renders a number with K/M/G suffixes.
func count(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fK", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
