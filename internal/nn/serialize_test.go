package nn

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	m := LeNet5(ZooConfig{Seed: 5})
	var buf bytes.Buffer
	if err := Write(&buf, m, 0.125); err != nil {
		t.Fatal(err)
	}
	got, scale, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 0.125 {
		t.Errorf("scale = %g", scale)
	}
	if got.Name != m.Name || len(got.Nodes) != len(m.Nodes) || got.InBits != m.InBits {
		t.Fatal("model metadata lost")
	}
	// The deserialized model must behave identically.
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64(i % 19)
	}
	a, err := m.Forward(x, ForwardOptions{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Forward(x, ForwardOptions{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSerializeResidualGraph(t *testing.T) {
	m := ResNet18CIFAR(ZooConfig{Seed: 6})
	var buf bytes.Buffer
	if err := Write(&buf, m, 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Residual Add inputs survive.
	adds := 0
	for _, n := range got.Nodes {
		if _, ok := n.Op.(Add); ok {
			adds++
			if len(n.Inputs) != 2 {
				t.Fatal("residual inputs lost")
			}
		}
	}
	if adds == 0 {
		t.Fatal("no Add nodes after round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.aq2")
	m := Micro(ZooConfig{Seed: 7})
	if err := Save(path, m, 0.5); err != nil {
		t.Fatal(err)
	}
	got, scale, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Micro" || scale != 0.5 {
		t.Errorf("loaded %q scale %g", got.Name, scale)
	}
	if _, _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	// An invalid (skeleton) model must be refused at write time.
	sk := ResNet18ImageNet(ZooConfig{Skeleton: true})
	var buf bytes.Buffer
	if err := Write(&buf, sk, 0); err != nil {
		t.Skip("skeletons are shape-valid; nothing to refuse") // shapes pass for skeletons
	}
}

func TestWriteRejectsInvalidModel(t *testing.T) {
	bad := &Model{Name: "bad", InC: 1, InH: 1, InW: 1, InBits: 8}
	var buf bytes.Buffer
	if err := Write(&buf, bad, 0); err == nil {
		t.Error("empty model serialized")
	}
}
