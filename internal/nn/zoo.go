package nn

import (
	"fmt"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/tensor"
)

// The model zoo: shape-accurate graphs of every architecture the paper
// evaluates (LeNet5, AlexNet, VGG16, ResNet18, ResNet50, in their MNIST /
// CIFAR10 / ImageNet configurations). Weights are synthesized — the
// communication, cycle and throughput numbers the cost experiments
// reproduce depend only on layer shapes — while the accuracy experiments
// quantize actually-trained (reduced) models via the quant package.

// PoolKind selects the pooling operator, the knob of the Sec. 6.5
// max-vs-average trade-off study.
type PoolKind int

const (
	// PoolMax uses 2PC-MaxPool.
	PoolMax PoolKind = iota
	// PoolAvg uses 2PC-AvgPool.
	PoolAvg
)

// ZooConfig parameterizes a zoo build.
type ZooConfig struct {
	// Bits is the quantized value width ℓ (default 8).
	Bits uint
	// Pool selects max or average pooling.
	Pool PoolKind
	// Seed drives the synthetic weights.
	Seed uint64
	// Skeleton omits weight tensors entirely: the graph carries shapes
	// only, which is all the cost models need. Mandatory practice for the
	// ImageNet-scale models (VGG16-ImageNet alone would otherwise allocate
	// >1 GiB of synthetic weights).
	Skeleton bool
}

func (c ZooConfig) withDefaults() ZooConfig {
	if c.Bits == 0 {
		c.Bits = 8
	}
	return c
}

// builder accumulates a model graph.
type builder struct {
	m        *Model
	g        *prg.PRG
	last     int // id of the most recent node (-1 = input)
	cur      tensor.Shape
	skeleton bool
}

func newBuilder(name string, c, h, w int, cfg ZooConfig) *builder {
	cfg = cfg.withDefaults()
	return &builder{
		m:        &Model{Name: name, InC: c, InH: h, InW: w, InBits: cfg.Bits},
		g:        prg.NewSeeded(cfg.Seed ^ 0x9E3779B97F4A7C15),
		last:     -1,
		cur:      tensor.Shape{c, h, w},
		skeleton: cfg.Skeleton,
	}
}

func (b *builder) push(op Op, name string, inputs ...int) int {
	if inputs == nil {
		inputs = []int{b.last}
	}
	b.m.Nodes = append(b.m.Nodes, Node{Op: op, Inputs: inputs, Name: name})
	id := len(b.m.Nodes) - 1
	b.last = id
	ins := make([]tensor.Shape, len(inputs))
	for k, idx := range inputs {
		if idx == -1 {
			ins[k] = b.m.InputShape()
		} else {
			// Shapes were validated on push, so recompute cheaply.
			ins[k] = b.shapeOf(idx)
		}
	}
	s, err := op.OutShape(ins)
	if err != nil {
		panic(fmt.Sprintf("nn: zoo build error at %s: %v", name, err))
	}
	b.cur = s
	return id
}

func (b *builder) shapeOf(idx int) tensor.Shape {
	shapes, err := b.m.Shapes()
	if err != nil {
		panic(err)
	}
	return shapes[idx]
}

// randWeights draws small signed weights; scale stays modest so that the
// synthetic models produce numerically tame activations. Skeleton builds
// carry no weights at all.
func (b *builder) randWeights(n int) []int64 {
	if b.skeleton {
		return nil
	}
	w := make([]int64, n)
	for i := range w {
		w[i] = b.g.Int64n(7)
	}
	return w
}

func (b *builder) im(n int) []int64 {
	if b.skeleton {
		return nil
	}
	return ones(n)
}

// ieFor picks the requantization shift so a layer's output magnitude
// roughly matches its input magnitude. Random symmetric weights make the
// accumulator a √fan-in random walk, so the shift targets
// log2(√fan-in · E|w|) and keeps the synthetic activations in a lively
// 8-bit range instead of collapsing them to ±1.
func ieFor(fanIn int) uint {
	ie := uint(0)
	for (1 << (2 * (ie + 1))) < fanIn*4 { // 2^ie ≈ √(4·fanIn) ≈ √fanIn·E|w|
		ie++
	}
	return ie
}

func ones(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// conv appends a Conv(+BNReQ) node.
func (b *builder) conv(name string, outC, k, stride, pad int) int {
	g := tensor.ConvGeom{
		InC: b.cur[0], InH: b.cur[1], InW: b.cur[2],
		OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	op := &Conv{
		Geom: g,
		W:    b.randWeights(outC * g.PatchLen()),
		Bias: b.randWeights(outC),
		Im:   b.im(outC),
		Ie:   ieFor(g.PatchLen()),
	}
	return b.push(op, name)
}

func (b *builder) relu(name string) int { return b.push(ReLU{}, name) }

func (b *builder) pool(name string, kind PoolKind, k, stride, pad int) int {
	g := tensor.ConvGeom{
		InC: b.cur[0], InH: b.cur[1], InW: b.cur[2],
		KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	if kind == PoolMax {
		return b.push(&MaxPool{Geom: g}, name)
	}
	return b.push(&AvgPool{Geom: g}, name)
}

func (b *builder) globalAvg(name string) int {
	g := tensor.ConvGeom{
		InC: b.cur[0], InH: b.cur[1], InW: b.cur[2],
		KH: b.cur[1], KW: b.cur[2], StrideH: b.cur[1], StrideW: b.cur[2],
	}
	return b.push(&AvgPool{Geom: g}, name)
}

func (b *builder) flatten(name string) int { return b.push(Flatten{}, name) }

func (b *builder) fc(name string, out int) int {
	in := b.cur.Numel()
	op := &FC{
		In: in, Out: out,
		W:    b.randWeights(in * out),
		Bias: b.randWeights(out),
		Im:   b.im(out),
		Ie:   ieFor(in),
	}
	return b.push(op, name)
}

// Micro builds a single Fig. 8 building block (conv+BNReQ, ABReLU, pool,
// FC) at demo scale: small enough that even the dealer-free networked
// deployment (base OTs + Gilboa triples on the wire) completes in
// seconds.
func Micro(cfg ZooConfig) *Model {
	b := newBuilder("Micro", 1, 8, 8, cfg)
	b.conv("conv1", 4, 3, 1, 1)
	b.relu("relu1")
	b.pool("pool1", cfg.Pool, 2, 2, 0)
	b.flatten("flatten")
	b.fc("fc", 5)
	return b.m
}

// LeNet5 builds the classic 28×28 MNIST network.
func LeNet5(cfg ZooConfig) *Model {
	b := newBuilder("LeNet5", 1, 28, 28, cfg)
	b.conv("conv1", 6, 5, 1, 2)
	b.relu("relu1")
	b.pool("pool1", cfg.Pool, 2, 2, 0)
	b.conv("conv2", 16, 5, 1, 0)
	b.relu("relu2")
	b.pool("pool2", cfg.Pool, 2, 2, 0)
	b.flatten("flatten")
	b.fc("fc1", 120)
	b.relu("relu3")
	b.fc("fc2", 84)
	b.relu("relu4")
	b.fc("fc3", 10)
	return b.m
}

// AlexNet builds the small 32×32 CIFAR/MNIST variant used by the
// MiniONN/Falcon line of work (aggressive 11×11/stride-4 stem, 1×1 deep
// feature maps) — the configuration whose communication footprint matches
// the Falcon rows of Table 4.
func AlexNet(cfg ZooConfig, inC int) *Model {
	b := newBuilder("AlexNet", inC, 32, 32, cfg)
	b.conv("conv1", 96, 11, 4, 9)
	b.relu("relu1")
	b.pool("pool1", cfg.Pool, 3, 2, 0)
	b.conv("conv2", 256, 5, 1, 1)
	b.relu("relu2")
	b.pool("pool2", cfg.Pool, 3, 2, 1)
	b.conv("conv3", 384, 3, 1, 1)
	b.relu("relu3")
	b.conv("conv4", 384, 3, 1, 1)
	b.relu("relu4")
	b.conv("conv5", 256, 3, 1, 1)
	b.relu("relu5")
	b.flatten("flatten")
	b.fc("fc1", 256)
	b.relu("relu6")
	b.fc("fc2", 10)
	return b.m
}

// vggSpec lists output channels per conv, with 0 denoting a pool.
var vggSpec = []int{64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0}

// VGG16CIFAR builds the 32×32 VGG16 with the single-linear-layer
// classifier the paper trains for CIFAR10.
func VGG16CIFAR(cfg ZooConfig) *Model {
	b := newBuilder("VGG16-CIFAR", 3, 32, 32, cfg)
	buildVGGTrunk(b, cfg)
	b.flatten("flatten")
	b.fc("fc", 10)
	return b.m
}

// VGG16ImageNet builds the full 224×224 VGG16.
func VGG16ImageNet(cfg ZooConfig) *Model {
	b := newBuilder("VGG16-ImageNet", 3, 224, 224, cfg)
	buildVGGTrunk(b, cfg)
	b.flatten("flatten")
	b.fc("fc1", 4096)
	b.relu("relu_fc1")
	b.fc("fc2", 4096)
	b.relu("relu_fc2")
	b.fc("fc3", 1000)
	return b.m
}

func buildVGGTrunk(b *builder, cfg ZooConfig) {
	ci, pi := 1, 1
	for _, ch := range vggSpec {
		if ch == 0 {
			b.pool(fmt.Sprintf("pool%d", pi), cfg.Pool, 2, 2, 0)
			pi++
			continue
		}
		b.conv(fmt.Sprintf("conv%d", ci), ch, 3, 1, 1)
		b.relu(fmt.Sprintf("relu%d", ci))
		ci++
	}
}

// basicBlock appends a ResNet basic block (two 3×3 convs + identity or
// 1×1-conv shortcut).
func basicBlock(b *builder, name string, outC, stride int) {
	in := b.last
	inShape := b.cur
	b.conv(name+".conv1", outC, 3, stride, 1)
	b.relu(name + ".relu1")
	b.conv(name+".conv2", outC, 3, 1, 1)
	main := b.last
	short := in
	if stride != 1 || inShape[0] != outC {
		b.last = in
		b.cur = inShape
		b.conv(name+".down", outC, 1, stride, 0)
		short = b.last
	}
	b.push(Add{}, name+".add", main, short)
	b.relu(name + ".relu2")
}

// bottleneckBlock appends a ResNet bottleneck block (1×1 → 3×3 → 1×1 with
// 4× expansion).
func bottleneckBlock(b *builder, name string, midC, stride int) {
	outC := midC * 4
	in := b.last
	inShape := b.cur
	b.conv(name+".conv1", midC, 1, 1, 0)
	b.relu(name + ".relu1")
	b.conv(name+".conv2", midC, 3, stride, 1)
	b.relu(name + ".relu2")
	b.conv(name+".conv3", outC, 1, 1, 0)
	main := b.last
	short := in
	if stride != 1 || inShape[0] != outC {
		b.last = in
		b.cur = inShape
		b.conv(name+".down", outC, 1, stride, 0)
		short = b.last
	}
	b.push(Add{}, name+".add", main, short)
	b.relu(name + ".relu3")
}

// ResNet18ImageNet builds the full 224×224 ResNet18.
func ResNet18ImageNet(cfg ZooConfig) *Model {
	b := newBuilder("ResNet18-ImageNet", 3, 224, 224, cfg)
	b.conv("conv1", 64, 7, 2, 3)
	b.relu("relu1")
	b.pool("pool1", cfg.Pool, 3, 2, 1)
	chans := []int{64, 128, 256, 512}
	for stage, ch := range chans {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			basicBlock(b, fmt.Sprintf("layer%d.%d", stage+1, blk), ch, stride)
		}
	}
	b.globalAvg("gap")
	b.flatten("flatten")
	b.fc("fc", 1000)
	return b.m
}

// ResNet18CIFAR builds the 32×32 CIFAR variant (3×3 stem, no max pool).
func ResNet18CIFAR(cfg ZooConfig) *Model {
	b := newBuilder("ResNet18-CIFAR", 3, 32, 32, cfg)
	b.conv("conv1", 64, 3, 1, 1)
	b.relu("relu1")
	chans := []int{64, 128, 256, 512}
	for stage, ch := range chans {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			basicBlock(b, fmt.Sprintf("layer%d.%d", stage+1, blk), ch, stride)
		}
	}
	b.globalAvg("gap")
	b.flatten("flatten")
	b.fc("fc", 10)
	return b.m
}

// ResNet50ImageNet builds the full 224×224 ResNet50 (bottleneck blocks
// [3,4,6,3] — 16 building blocks, as the paper's Sec. 6.3 notes).
func ResNet50ImageNet(cfg ZooConfig) *Model {
	b := newBuilder("ResNet50-ImageNet", 3, 224, 224, cfg)
	b.conv("conv1", 64, 7, 2, 3)
	b.relu("relu1")
	b.pool("pool1", cfg.Pool, 3, 2, 1)
	mids := []int{64, 128, 256, 512}
	counts := []int{3, 4, 6, 3}
	blockNo := 0
	for stage, mid := range mids {
		for blk := 0; blk < counts[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			blockNo++
			bottleneckBlock(b, fmt.Sprintf("block%d", blockNo), mid, stride)
		}
	}
	b.globalAvg("gap")
	b.flatten("flatten")
	b.fc("fc", 1000)
	return b.m
}

// ByName returns a zoo model by its canonical experiment name.
func ByName(name string, cfg ZooConfig) (*Model, error) {
	switch name {
	case "micro":
		return Micro(cfg), nil
	case "lenet5":
		return LeNet5(cfg), nil
	case "alexnet":
		return AlexNet(cfg, 3), nil
	case "alexnet-mnist":
		return AlexNet(cfg, 1), nil
	case "vgg16-cifar":
		return VGG16CIFAR(cfg), nil
	case "vgg16-imagenet":
		return VGG16ImageNet(cfg), nil
	case "resnet18-cifar":
		return ResNet18CIFAR(cfg), nil
	case "resnet18-imagenet":
		return ResNet18ImageNet(cfg), nil
	case "resnet50-imagenet":
		return ResNet50ImageNet(cfg), nil
	default:
		return nil, fmt.Errorf("nn: unknown zoo model %q", name)
	}
}
