package nn

import (
	"strings"
	"testing"

	"aq2pnn/internal/ring"
)

func TestZooShapes(t *testing.T) {
	cases := []struct {
		name    string
		cfg     ZooConfig
		wantOut int
		nodes   int // sanity lower bound on graph size
	}{
		{"lenet5", ZooConfig{}, 10, 10},
		{"alexnet", ZooConfig{}, 10, 15},
		{"vgg16-cifar", ZooConfig{}, 10, 30},
		{"vgg16-imagenet", ZooConfig{Skeleton: true}, 1000, 35},
		{"resnet18-cifar", ZooConfig{}, 10, 40},
		{"resnet18-imagenet", ZooConfig{Skeleton: true}, 1000, 45},
		{"resnet50-imagenet", ZooConfig{Skeleton: true}, 1000, 100},
	}
	for _, c := range cases {
		m, err := ByName(c.name, c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out, err := m.OutShape()
		if err != nil {
			t.Fatalf("%s shapes: %v", c.name, err)
		}
		if out.Numel() != c.wantOut {
			t.Errorf("%s output %v, want %d classes", c.name, out, c.wantOut)
		}
		if len(m.Nodes) < c.nodes {
			t.Errorf("%s has %d nodes, expected ≥ %d", c.name, len(m.Nodes), c.nodes)
		}
	}
	if _, err := ByName("nope", ZooConfig{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestZooKnownParamCounts(t *testing.T) {
	// Published parameter counts (approximate, architecture-defined):
	// ResNet18 ≈ 11.7M, ResNet50 ≈ 25.5M, VGG16 ≈ 138M.
	check := func(name string, wantM float64) {
		m, err := ByName(name, ZooConfig{Skeleton: true})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.Params()) / 1e6
		if got < wantM*0.95 || got > wantM*1.05 {
			t.Errorf("%s params = %.1fM, want ≈ %.1fM", name, got, wantM)
		}
	}
	check("resnet18-imagenet", 11.7)
	check("resnet50-imagenet", 25.6)
	check("vgg16-imagenet", 138.4)
}

func TestZooKnownMACs(t *testing.T) {
	// ResNet18 ≈ 1.8 GMACs, ResNet50 ≈ 4.1 GMACs, VGG16 ≈ 15.5 GMACs
	// (224×224, counting conv+fc as in common profilers).
	check := func(name string, wantG float64) {
		m, _ := ByName(name, ZooConfig{Skeleton: true})
		got := float64(m.MACs()) / 1e9
		if got < wantG*0.90 || got > wantG*1.12 {
			t.Errorf("%s MACs = %.2fG, want ≈ %.2fG", name, got, wantG)
		}
	}
	check("resnet18-imagenet", 1.82)
	check("resnet50-imagenet", 4.1)
	check("vgg16-imagenet", 15.5)
}

func TestForwardSmokeAndDeterminism(t *testing.T) {
	m := LeNet5(ZooConfig{Seed: 7})
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64(i % 17)
	}
	a, err := m.Forward(x, ForwardOptions{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 {
		t.Fatalf("logits = %d", len(a))
	}
	b, _ := m.Forward(x, ForwardOptions{Mode: Exact})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward is nondeterministic")
		}
	}
}

func TestForwardRingModeMatchesExactOnWideRing(t *testing.T) {
	// With a wide carrier the wrapped executor must agree with int64.
	m := LeNet5(ZooConfig{Seed: 8})
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64((i * 13) % 23)
	}
	exact, err := m.Forward(x, ForwardOptions{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := m.Forward(x, ForwardOptions{Mode: Ring, Carrier: ring.New(48)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if exact[i] != wrapped[i] {
			t.Fatalf("logit %d: exact %d vs ring %d", i, exact[i], wrapped[i])
		}
	}
}

func TestForwardRingModeOverflowsOnNarrowRing(t *testing.T) {
	// On a too-narrow carrier the wrapped executor must diverge — the
	// mechanism of the paper's 12-bit accuracy collapse.
	m := LeNet5(ZooConfig{Seed: 8})
	x := make([]int64, 28*28)
	for i := range x {
		x[i] = int64((i * 13) % 23)
	}
	exact, err := m.ForwardAll(x, ForwardOptions{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := m.ForwardAll(x, ForwardOptions{Mode: Ring, Carrier: ring.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	// The first convolution accumulates far past ±128, so a large share of
	// its outputs must wrap differently.
	diff := 0
	for k := range exact[0] {
		if exact[0][k] != wrapped[0][k] {
			diff++
		}
	}
	if diff < len(exact[0])/10 {
		t.Errorf("8-bit carrier perturbed only %d/%d conv1 outputs; overflow modelling broken?", diff, len(exact[0]))
	}
}

func TestResNetResidualPath(t *testing.T) {
	m := ResNet18CIFAR(ZooConfig{Seed: 9})
	// Find an Add node and check it has two distinct inputs.
	found := false
	for _, n := range m.Nodes {
		if _, ok := n.Op.(Add); ok {
			found = true
			if len(n.Inputs) != 2 || n.Inputs[0] == n.Inputs[1] {
				t.Errorf("Add node inputs %v", n.Inputs)
			}
		}
	}
	if !found {
		t.Fatal("ResNet has no residual Add nodes")
	}
	// And it must execute.
	x := make([]int64, 3*32*32)
	for i := range x {
		x[i] = int64(i % 11)
	}
	if _, err := m.Forward(x, ForwardOptions{Mode: Exact}); err != nil {
		t.Fatal(err)
	}
}

func TestSkeletonRejectedByExecutor(t *testing.T) {
	m := ResNet18ImageNet(ZooConfig{Skeleton: true})
	x := make([]int64, 3*224*224)
	if _, err := m.Forward(x, ForwardOptions{Mode: Exact}); err == nil {
		t.Error("skeleton model executed")
	}
}

func TestForwardValidation(t *testing.T) {
	m := LeNet5(ZooConfig{})
	if _, err := m.Forward(make([]int64, 5), ForwardOptions{}); err == nil {
		t.Error("bad input length accepted")
	}
	if _, err := m.Forward(make([]int64, 28*28), ForwardOptions{Mode: Ring}); err == nil {
		t.Error("ring mode without carrier accepted")
	}
}

func TestReLUCountVGG(t *testing.T) {
	m := VGG16CIFAR(ZooConfig{})
	n, err := m.ReLUCount()
	if err != nil {
		t.Fatal(err)
	}
	// VGG16-CIFAR conv activations: 2·64·32² + 2·128·16² + 3·256·8² +
	// 3·512·4² + 3·512·2²  (ReLU follows each conv, after pooling where
	// applicable) — just sanity-bound it.
	if n < 200000 || n > 400000 {
		t.Errorf("VGG16-CIFAR ReLU elements = %d", n)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]int64{3, 9, 9, 1}) != 1 {
		t.Error("Argmax tie-break wrong")
	}
	if Argmax([]int64{-5}) != 0 {
		t.Error("Argmax single wrong")
	}
}

func TestPoolSwapChangesOps(t *testing.T) {
	mMax := LeNet5(ZooConfig{Pool: PoolMax})
	mAvg := LeNet5(ZooConfig{Pool: PoolAvg})
	countKind := func(m *Model, kind string) int {
		n := 0
		for _, nd := range m.Nodes {
			if nd.Op.Kind() == kind {
				n++
			}
		}
		return n
	}
	if countKind(mMax, "2PC-MaxPool") != 2 || countKind(mMax, "2PC-AvgPool") != 0 {
		t.Error("max-pool build wrong")
	}
	if countKind(mAvg, "2PC-AvgPool") != 2 || countKind(mAvg, "2PC-MaxPool") != 0 {
		t.Error("avg-pool build wrong")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := [][3]int64{{7, 2, 3}, {-7, 2, -4}, {8, 4, 2}, {-8, 4, -2}, {0, 5, 0}}
	for _, c := range cases {
		if got := floorDiv(c[0], c[1]); got != c[2] {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func BenchmarkForwardLeNet5(b *testing.B) {
	m := LeNet5(ZooConfig{})
	x := make([]int64, 28*28)
	for i := 0; i < b.N; i++ {
		m.Forward(x, ForwardOptions{Mode: Exact})
	}
}

func BenchmarkBuildResNet50Skeleton(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResNet50ImageNet(ZooConfig{Skeleton: true})
	}
}

func TestSummary(t *testing.T) {
	m := LeNet5(ZooConfig{Seed: 1})
	s, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LeNet5", "2PC-Conv2D", "ABReLU", "2PC-FC", "total:"} {
		if !contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Skeleton models summarize too (shape-derived counts).
	sk, _ := ByName("resnet50-imagenet", ZooConfig{Skeleton: true})
	s2, err := sk.Summary()
	if err != nil || !contains(s2, "25.") {
		t.Errorf("skeleton summary: %v / missing ~25.x M params", err)
	}
	if count(500) != "500" || count(2500) != "2.5K" || count(3_000_000) != "3.00M" || count(4_200_000_000) != "4.20G" {
		t.Error("count formatting wrong")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
