package transport

import (
	"errors"
	"sync"
	"testing"
)

func muxPair() (aMain, aPre, bMain, bPre Conn) {
	a, b := Pipe()
	aMain, aPre = NewMux(a)
	bMain, bPre = NewMux(b)
	return
}

func TestMuxRoutesStreams(t *testing.T) {
	aMain, aPre, bMain, bPre := muxPair()
	defer aMain.Close()
	defer bMain.Close()
	// Interleave sends across both streams, then receive out of arrival
	// order: the baton reader must park the other stream's frames.
	mustSend(t, aMain, []byte("main-0"))
	mustSend(t, aPre, []byte("pre-0"))
	mustSend(t, aMain, []byte("main-1"))
	if got := mustRecv(t, bPre); string(got) != "pre-0" {
		t.Fatalf("preproc stream got %q", got)
	}
	if got := mustRecv(t, bMain); string(got) != "main-0" {
		t.Fatalf("main stream got %q", got)
	}
	if got := mustRecv(t, bMain); string(got) != "main-1" {
		t.Fatalf("main stream got %q", got)
	}
}

func TestMuxConcurrentStreams(t *testing.T) {
	aMain, aPre, bMain, bPre := muxPair()
	defer aMain.Close()
	defer bMain.Close()
	const n = 200
	var wg sync.WaitGroup
	echo := func(c Conn) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			p, err := c.Recv()
			if err != nil {
				t.Errorf("echo recv: %v", err)
				return
			}
			if err := c.Send(p); err != nil {
				t.Errorf("echo send: %v", err)
				return
			}
		}
	}
	drive := func(c Conn, tag byte) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			msg := []byte{tag, byte(i)}
			if err := c.Send(msg); err != nil {
				t.Errorf("drive send: %v", err)
				return
			}
			p, err := c.Recv()
			if err != nil {
				t.Errorf("drive recv: %v", err)
				return
			}
			if p[0] != tag || p[1] != byte(i) {
				t.Errorf("stream %d echo %v, want %v", tag, p, msg)
				return
			}
		}
	}
	wg.Add(4)
	go echo(bMain)
	go echo(bPre)
	go drive(aMain, 0)
	go drive(aPre, 1)
	wg.Wait()
}

// TestMuxStatsPerStream: each substream accounts exactly its own payload
// bytes, prefix excluded — the property that keeps the online stream's
// Stats byte-identical whether or not a fill runs beside it.
func TestMuxStatsPerStream(t *testing.T) {
	aMain, aPre, bMain, bPre := muxPair()
	defer aMain.Close()
	defer bMain.Close()
	mustSend(t, aMain, make([]byte, 10))
	mustSend(t, aPre, make([]byte, 100))
	if got := mustRecv(t, bMain); len(got) != 10 {
		t.Fatalf("main recv %d bytes", len(got))
	}
	if got := mustRecv(t, bPre); len(got) != 100 {
		t.Fatalf("preproc recv %d bytes", len(got))
	}
	for _, tc := range []struct {
		name       string
		c          Conn
		sent, recv uint64
	}{
		{"a.main", aMain, 10, 0}, {"a.pre", aPre, 100, 0},
		{"b.main", bMain, 0, 10}, {"b.pre", bPre, 0, 100},
	} {
		s := tc.c.Stats()
		if s.BytesSent != tc.sent || s.BytesRecv != tc.recv {
			t.Errorf("%s stats sent %d recv %d, want %d/%d", tc.name, s.BytesSent, s.BytesRecv, tc.sent, tc.recv)
		}
	}
}

// TestMuxPreprocCloseKeepsMain: closing the preprocessing substream
// unblocks the peer's preproc reader with ErrClosed while the main stream
// keeps flowing both ways.
func TestMuxPreprocCloseKeepsMain(t *testing.T) {
	aMain, aPre, bMain, bPre := muxPair()
	defer aMain.Close()
	defer bMain.Close()
	done := make(chan error, 1)
	go func() {
		_, err := bPre.Recv()
		done <- err
	}()
	if err := aPre.Close(); err != nil {
		t.Fatalf("preproc close: %v", err)
	}
	// The peer's parked preproc reader needs a frame flow to observe the
	// close control; the main traffic below provides it.
	mustSend(t, aMain, []byte("still-alive"))
	if got := mustRecv(t, bMain); string(got) != "still-alive" {
		t.Fatalf("main after preproc close got %q", got)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("peer preproc recv returned %v, want ErrClosed", err)
	}
	// Local half-close: both ends of the preproc stream now refuse I/O...
	if err := aPre.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed preproc stream returned %v, want ErrClosed", err)
	}
	if err := bPre.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on remotely closed preproc stream returned %v, want ErrClosed", err)
	}
	// ...and a second Close stays a clean no-op.
	if err := aPre.Close(); err != nil {
		t.Errorf("second preproc close: %v", err)
	}
	// Main stream still fine in the other direction too.
	mustSend(t, bMain, []byte("back"))
	if got := mustRecv(t, aMain); string(got) != "back" {
		t.Fatalf("main reverse got %q", got)
	}
}

// TestMuxMainCloseTearsDown: closing the main substream poisons the whole
// mux, both locally and (via the inner close) for the peer.
func TestMuxMainCloseTearsDown(t *testing.T) {
	aMain, aPre, bMain, bPre := muxPair()
	if err := aMain.Close(); err != nil {
		t.Fatalf("main close: %v", err)
	}
	if _, err := aPre.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("local preproc recv after main close returned %v, want ErrClosed", err)
	}
	if _, err := bMain.Recv(); err == nil {
		t.Error("peer main recv survived the teardown")
	}
	if _, err := bPre.Recv(); err == nil {
		t.Error("peer preproc recv survived the teardown")
	}
	bMain.Close()
}

// TestMuxWireViolations: malformed prefixes are permanent MuxErrors, and
// they poison every substream, not just the receiving one.
func TestMuxWireViolations(t *testing.T) {
	for _, tc := range []struct {
		name  string
		frame []byte
	}{
		{"empty frame", []byte{}},
		{"reserved bits", []byte{0x80, 1, 2}},
		{"unknown stream", []byte{0x0F, 1, 2}},
		{"close with payload", []byte{muxClose | StreamPreproc, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := Pipe()
			defer a.Close()
			bMain, bPre := NewMux(b)
			mustSend(t, a, tc.frame)
			_, err := bMain.Recv()
			var me *MuxError
			if !errors.As(err, &me) {
				t.Fatalf("recv returned %v, want a MuxError", err)
			}
			if IsTransient(err) {
				t.Error("mux violation classified transient; a misframing peer is permanent")
			}
			if _, err := bPre.Recv(); !errors.As(err, &me) {
				t.Errorf("other substream recv returned %v, want the poisoning MuxError", err)
			}
			bMain.Close()
		})
	}
}

// TestMuxQueueOverflow: a peer flooding one stream while the receiver
// waits on the other is a flow violation, not a memory obligation.
func TestMuxQueueOverflow(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	bMain, bPre := NewMux(b)
	defer bMain.Close()
	done := make(chan error, 1)
	go func() {
		_, err := bMain.Recv() // holds the baton, routing preproc floods
		done <- err
	}()
	for i := 0; i <= muxQueueCap; i++ {
		frame := []byte{StreamPreproc, byte(i)}
		if err := a.Send(frame); err != nil {
			t.Fatalf("flood send %d: %v", i, err)
		}
	}
	err := <-done
	var me *MuxError
	if !errors.As(err, &me) {
		t.Fatalf("flooded mux returned %v, want a queue-overflow MuxError", err)
	}
	// Parked frames stay drainable on the poisoned mux; everything past
	// them — and every send — reports the poisoning error.
	for i := 0; i < muxQueueCap; i++ {
		if _, err := bPre.Recv(); err != nil {
			t.Fatalf("draining parked frame %d: %v", i, err)
		}
	}
	if _, err := bPre.Recv(); !errors.As(err, &me) {
		t.Errorf("preproc recv past the parked frames returned %v, want the MuxError", err)
	}
	if err := bPre.Send([]byte("x")); !errors.As(err, &me) {
		t.Errorf("send on the poisoned mux returned %v, want the MuxError", err)
	}
}

// TestMuxFrameTooLarge: the substream enforces the inner frame limit
// minus its one prefix byte, before touching the wire.
func TestMuxFrameTooLarge(t *testing.T) {
	aMain, _, bMain, _ := muxPair()
	defer aMain.Close()
	defer bMain.Close()
	err := aMain.Send(make([]byte, MaxFrame))
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized send returned %v, want FrameError", err)
	}
	if aMain.Stats().BytesSent != 0 {
		t.Error("rejected frame counted bytes")
	}
}

// TestMuxUnwrap: deadline/budget helpers must reach the transport below.
func TestMuxUnwrap(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	aMain, aPre := NewMux(a)
	defer aMain.Close()
	type unwrapper interface{ Unwrap() Conn }
	for _, c := range []Conn{aMain, aPre} {
		u, ok := c.(unwrapper)
		if !ok {
			t.Fatal("mux substream does not expose Unwrap")
		}
		if u.Unwrap() != a {
			t.Fatal("Unwrap does not reach the inner conn")
		}
	}
}
