package transport

import (
	"sync"
	"time"
)

// ProcessFaults extends the FaultPlan chaos model from a single
// connection to a whole process: every connection belonging to one
// backend process is wrapped by the same injector, which counts their
// operations against ONE shared budget and, when it trips, takes them
// all down together — the transport-level signature of a process crash,
// as opposed to FaultyConn's per-connection faults. The fleet chaos
// harness uses it to kill, stall or corrupt an entire provider backend
// at a deterministic operation index while the gateway and its clients
// keep running.
//
// Plan fields honoured: FailAfter is the total operation budget across
// every wrapped connection (negative = never trip); Stall turns the
// death into a freeze — once tripped, every operation (the tripping one
// and all later ones, on every connection) blocks for up to Stall, or
// until Kill, before the connections are severed, so peers observe
// silence first and resets after, like a wedged process finally being
// killed; Corrupt flips a byte of the last permitted Recv's payload, so
// the process emits one damaged frame on its way down. The remaining
// FaultPlan fields (latency, partial writes) stay per-connection
// concerns — wrap individual conns with NewChaosConn for those.
type ProcessFaults struct {
	mu        sync.Mutex
	remaining int
	corrupt   bool
	stall     time.Duration
	tripped   bool
	ops       uint64
	conns     []Conn
	onDeath   func()
	killed    chan struct{}
	severed   chan struct{}
	killOnce  sync.Once
	sevOnce   sync.Once
}

// NewProcessFaults builds a process-level fault injector from plan.
// onDeath, when non-nil, runs once after the process's connections are
// severed — the harness's hook to close the backend's listener so new
// dials fail fast, like connecting to a crashed process.
func NewProcessFaults(plan FaultPlan, onDeath func()) *ProcessFaults {
	return &ProcessFaults{
		remaining: plan.FailAfter,
		corrupt:   plan.Corrupt,
		stall:     plan.Stall,
		onDeath:   onDeath,
		killed:    make(chan struct{}),
		severed:   make(chan struct{}),
	}
}

// Wrap registers c as one of the process's connections and returns the
// fault-injecting view of it. A connection wrapped after the process
// already died is severed immediately (a crashed process accepts
// nothing).
func (p *ProcessFaults) Wrap(c Conn) Conn {
	p.mu.Lock()
	dead := p.tripped
	if !dead {
		p.conns = append(p.conns, c)
	}
	p.mu.Unlock()
	if dead {
		c.Close()
	}
	return &procConn{p: p, inner: c}
}

// Kill forces immediate death: the operation budget is voided, any
// stall in progress is cut short, and every wrapped connection is
// severed. Harnesses call it at teardown so a long Stall never outlives
// the test.
func (p *ProcessFaults) Kill() {
	p.mu.Lock()
	p.tripped = true
	p.mu.Unlock()
	p.killOnce.Do(func() { close(p.killed) })
	p.sever()
}

// Ops reports the operations performed so far across every wrapped
// connection — the clean run's count is the sweep space for fault
// indices.
func (p *ProcessFaults) Ops() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ops
}

// Dead reports whether the process has tripped (or been killed).
func (p *ProcessFaults) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tripped
}

// take burns one operation from the shared budget. Denied operations
// block through the stall window (a frozen process answers nothing, not
// even with a reset) and return only once the process is severed.
func (p *ProcessFaults) take() (ok, last bool) {
	p.mu.Lock()
	if !p.tripped {
		switch {
		case p.remaining < 0:
			p.ops++
			p.mu.Unlock()
			return true, false
		case p.remaining > 0:
			p.ops++
			p.remaining--
			last = p.remaining == 0
			p.mu.Unlock()
			return true, last
		default:
			p.tripped = true
			p.mu.Unlock()
			go p.die()
			<-p.severed
			return false, false
		}
	}
	p.mu.Unlock()
	<-p.severed
	return false, false
}

// die runs the death sequence once the budget trips: hold through the
// stall window (cut short by Kill), then sever.
func (p *ProcessFaults) die() {
	if p.stall > 0 {
		t := time.NewTimer(p.stall)
		select {
		case <-t.C:
		case <-p.killed:
			t.Stop()
		}
	}
	p.sever()
}

func (p *ProcessFaults) sever() {
	p.sevOnce.Do(func() {
		p.mu.Lock()
		conns := make([]Conn, len(p.conns))
		copy(conns, p.conns)
		cb := p.onDeath
		p.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		close(p.severed)
		if cb != nil {
			cb()
		}
	})
}

// procConn is one connection's view of the shared process fault state.
// Injected failures are accounted like FaultyConn's: SendErrs/RecvErrs
// increment, byte counters do not (nothing crossed the transport).
type procConn struct {
	p     *ProcessFaults
	inner Conn
	mu    sync.Mutex
	inj   Stats
}

// Send implements Conn.
func (c *procConn) Send(p []byte) error {
	ok, _ := c.p.take()
	if !ok {
		c.mu.Lock()
		c.inj.SendErrs++
		c.mu.Unlock()
		return ErrInjected
	}
	return c.inner.Send(p)
}

// Recv implements Conn.
func (c *procConn) Recv() ([]byte, error) {
	ok, last := c.p.take()
	if !ok {
		c.mu.Lock()
		c.inj.RecvErrs++
		c.mu.Unlock()
		return nil, ErrInjected
	}
	p, err := c.inner.Recv()
	if err == nil && last && c.p.corrupt && len(p) > 0 {
		p[len(p)/2] ^= 0xFF
	}
	return p, err
}

// Stats implements Conn: the inner counters plus the injected failures.
func (c *procConn) Stats() Stats {
	s := c.inner.Stats()
	c.mu.Lock()
	s.Add(c.inj)
	c.mu.Unlock()
	return s
}

// ResetStats implements Conn.
func (c *procConn) ResetStats() {
	c.mu.Lock()
	c.inj = Stats{}
	c.mu.Unlock()
	c.inner.ResetStats()
}

// Close implements Conn.
func (c *procConn) Close() error { return c.inner.Close() }

// Unwrap exposes the wrapped Conn so budget and deadline requests reach
// the real transport through the fault injector.
func (c *procConn) Unwrap() Conn { return c.inner }
