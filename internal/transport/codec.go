package transport

import (
	"fmt"

	"aq2pnn/internal/ring"
)

// PackElems serialises ring elements at the ring's wire width ⌈ℓ/8⌉,
// little-endian. This width is what makes the measured communication
// proportional to the adaptive bit-width.
func PackElems(r ring.Ring, xs []uint64) []byte {
	w := r.Bytes()
	out := make([]byte, len(xs)*w)
	for i, x := range xs {
		x &= r.Mask
		for b := 0; b < w; b++ {
			out[i*w+b] = byte(x >> (8 * b))
		}
	}
	return out
}

// UnpackElems is the inverse of PackElems. It fails when the payload length
// is not a multiple of the element width.
func UnpackElems(r ring.Ring, p []byte) ([]uint64, error) {
	w := r.Bytes()
	if len(p)%w != 0 {
		return nil, fmt.Errorf("transport: payload of %d bytes is not a multiple of element width %d", len(p), w)
	}
	xs := make([]uint64, len(p)/w)
	for i := range xs {
		var x uint64
		for b := 0; b < w; b++ {
			x |= uint64(p[i*w+b]) << (8 * b)
		}
		xs[i] = x & r.Mask
	}
	return xs, nil
}

// SendElems transmits a ring-element vector in one frame.
func SendElems(c Conn, r ring.Ring, xs []uint64) error {
	return c.Send(PackElems(r, xs))
}

// RecvElems receives a ring-element vector, checking the expected length.
func RecvElems(c Conn, r ring.Ring, n int) ([]uint64, error) {
	p, err := c.Recv()
	if err != nil {
		return nil, err
	}
	xs, err := UnpackElems(r, p)
	if err != nil {
		return nil, err
	}
	if len(xs) != n {
		return nil, fmt.Errorf("transport: expected %d elements, received %d", n, len(xs))
	}
	return xs, nil
}

// Exchange performs the symmetric send+receive that opens masked values
// (e.g. the E matrices of AS-GEMM): each party transmits its share and
// receives the peer's. Party 0 sends first; with the buffered pipe and TCP
// framing both orders are deadlock-free, but a fixed order keeps round
// accounting deterministic.
func Exchange(c Conn, r ring.Ring, party int, mine []uint64) ([]uint64, error) {
	if party == 0 {
		if err := SendElems(c, r, mine); err != nil {
			return nil, err
		}
		return RecvElems(c, r, len(mine))
	}
	theirs, err := RecvElems(c, r, len(mine))
	if err != nil {
		return nil, err
	}
	if err := SendElems(c, r, mine); err != nil {
		return nil, err
	}
	return theirs, nil
}

// ExchangeOpen exchanges shares of a masked vector and returns the opened
// (reconstructed) values: rec([[x]]) = x_mine + x_theirs mod Q.
func ExchangeOpen(c Conn, r ring.Ring, party int, mine []uint64) ([]uint64, error) {
	theirs, err := Exchange(c, r, party, mine)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(mine))
	r.AddVec(out, mine, theirs)
	return out, nil
}

// SendBytes / RecvBytes are thin aliases used by the OT layer for pad and
// token traffic, so that all accounting funnels through the same Conn.

// SendBytes transmits raw bytes as one frame.
func SendBytes(c Conn, p []byte) error { return c.Send(p) }

// RecvBytes receives one frame of raw bytes.
func RecvBytes(c Conn) ([]byte, error) { return c.Recv() }
