package transport

import (
	"fmt"
	"sync"

	"aq2pnn/internal/ring"
)

// PackElems serialises ring elements at the ring's wire width ⌈ℓ/8⌉,
// little-endian. This width is what makes the measured communication
// proportional to the adaptive bit-width.
func PackElems(r ring.Ring, xs []uint64) []byte {
	out := make([]byte, len(xs)*r.Bytes())
	PackElemsInto(out, r, xs)
	return out
}

// PackElemsInto packs xs into dst, which must be exactly len(xs)·⌈ℓ/8⌉
// bytes — the allocation-free form behind the pooled send path.
func PackElemsInto(dst []byte, r ring.Ring, xs []uint64) {
	w := r.Bytes()
	if len(dst) != len(xs)*w {
		//lint:allow panicfree local programming error, not peer input: dst is sized by the caller from the same xs/ring it passes in
		panic(fmt.Sprintf("transport: PackElemsInto dst length %d for %d elements of width %d", len(dst), len(xs), w))
	}
	for i, x := range xs {
		x &= r.Mask
		for b := 0; b < w; b++ {
			dst[i*w+b] = byte(x >> (8 * b))
		}
	}
}

// sendBufs recycles the packed frames of SendElems. The Conn contract
// guarantees the payload is copied (pipe) or fully written (net) before
// Send returns, so the buffer is free for reuse the moment Send does.
var sendBufs = sync.Pool{New: func() any { return new([]byte) }}

func getSendBuf(n int) *[]byte {
	bp := sendBufs.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// UnpackElems is the inverse of PackElems. It fails when the payload length
// is not a multiple of the element width.
func UnpackElems(r ring.Ring, p []byte) ([]uint64, error) {
	w := r.Bytes()
	if len(p)%w != 0 {
		return nil, fmt.Errorf("transport: payload of %d bytes is not a multiple of element width %d", len(p), w)
	}
	xs := make([]uint64, len(p)/w)
	for i := range xs {
		var x uint64
		for b := 0; b < w; b++ {
			x |= uint64(p[i*w+b]) << (8 * b)
		}
		xs[i] = x & r.Mask
	}
	return xs, nil
}

// SendElems transmits a ring-element vector in one frame, packing it
// through the buffer pool so steady-state sends allocate nothing.
func SendElems(c Conn, r ring.Ring, xs []uint64) error {
	bp := getSendBuf(len(xs) * r.Bytes())
	PackElemsInto(*bp, r, xs)
	err := c.Send(*bp)
	sendBufs.Put(bp)
	return err
}

// RecvElems receives a ring-element vector, checking the expected length.
func RecvElems(c Conn, r ring.Ring, n int) ([]uint64, error) {
	p, err := c.Recv()
	if err != nil {
		return nil, err
	}
	xs, err := UnpackElems(r, p)
	if err != nil {
		return nil, err
	}
	if len(xs) != n {
		return nil, fmt.Errorf("transport: expected %d elements, received %d", n, len(xs))
	}
	return xs, nil
}

// Exchange performs the symmetric send+receive that opens masked values
// (e.g. the E matrices of AS-GEMM): each party transmits its share and
// receives the peer's. Party 0 sends first; with the buffered pipe and TCP
// framing both orders are deadlock-free, but a fixed order keeps round
// accounting deterministic.
func Exchange(c Conn, r ring.Ring, party int, mine []uint64) ([]uint64, error) {
	if party == 0 {
		if err := SendElems(c, r, mine); err != nil {
			return nil, err
		}
		return RecvElems(c, r, len(mine))
	}
	theirs, err := RecvElems(c, r, len(mine))
	if err != nil {
		return nil, err
	}
	if err := SendElems(c, r, mine); err != nil {
		return nil, err
	}
	return theirs, nil
}

// ExchangeOpen exchanges shares of a masked vector and returns the opened
// (reconstructed) values: rec([[x]]) = x_mine + x_theirs mod Q.
func ExchangeOpen(c Conn, r ring.Ring, party int, mine []uint64) ([]uint64, error) {
	theirs, err := Exchange(c, r, party, mine)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(mine))
	r.AddVec(out, mine, theirs)
	return out, nil
}

// SendBytes / RecvBytes are thin aliases used by the OT layer for pad and
// token traffic, so that all accounting funnels through the same Conn.

// SendBytes transmits raw bytes as one frame.
func SendBytes(c Conn, p []byte) error { return c.Send(p) }

// RecvBytes receives one frame of raw bytes.
func RecvBytes(c Conn) ([]byte, error) { return c.Recv() }
