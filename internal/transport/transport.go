// Package transport provides the two-party communication substrate: framed
// message channels with per-direction byte, message and round accounting.
// Every protocol byte in the system flows through a Conn, so the
// communication numbers in the experiment tables are measured, not
// estimated. Ring elements are serialised at ⌈ℓ/8⌉ bytes, which is how
// adaptive quantization turns smaller rings into less traffic.
//
// Two implementations are provided: an in-memory duplex pipe (both parties
// in one process, used by tests, benchmarks and the experiment harness) and
// a TCP transport (cmd/party) that emulates the paper's two-board Ethernet
// setup.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// MaxFrame is the largest accepted frame payload (64 MiB), a sanity bound
// against corrupted length prefixes.
const MaxFrame = 64 << 20

// Stats accumulates traffic counters for one endpoint. A "round" is counted
// at every send→receive direction change: it approximates the number of
// protocol round-trips, the quantity that pays the network latency.
type Stats struct {
	BytesSent uint64
	BytesRecv uint64
	MsgsSent  uint64
	MsgsRecv  uint64
	Rounds    uint64
	// SendErrs and RecvErrs count failed operations (transport errors and
	// injected faults). Failed operations move no accounted payload bytes,
	// so fault injection never skews byte attribution, but the failures
	// stay visible to telemetry spans and the fault-injection tests.
	SendErrs uint64
	RecvErrs uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.MsgsSent += other.MsgsSent
	s.MsgsRecv += other.MsgsRecv
	s.Rounds += other.Rounds
	s.SendErrs += other.SendErrs
	s.RecvErrs += other.RecvErrs
}

// Sub returns the counter delta s − prev, the per-span attribution math of
// internal/telemetry: snapshot before, snapshot after, subtract. Counters
// are monotone for snapshots of a live connection, but a concurrent
// ResetStats can produce prev > s; the subtraction saturates at zero so a
// torn pair never yields a wrapped (≈2^64) delta.
func (s Stats) Sub(prev Stats) Stats {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Stats{
		BytesSent: sat(s.BytesSent, prev.BytesSent),
		BytesRecv: sat(s.BytesRecv, prev.BytesRecv),
		MsgsSent:  sat(s.MsgsSent, prev.MsgsSent),
		MsgsRecv:  sat(s.MsgsRecv, prev.MsgsRecv),
		Rounds:    sat(s.Rounds, prev.Rounds),
		SendErrs:  sat(s.SendErrs, prev.SendErrs),
		RecvErrs:  sat(s.RecvErrs, prev.RecvErrs),
	}
}

// TotalBytes is the traffic volume visible at this endpoint.
func (s Stats) TotalBytes() uint64 { return s.BytesSent + s.BytesRecv }

// MiB converts the total byte count to mebibytes, the unit of the paper's
// communication tables.
func (s Stats) MiB() float64 { return float64(s.TotalBytes()) / (1 << 20) }

func (s Stats) String() string {
	out := fmt.Sprintf("sent=%dB recv=%dB msgs=%d/%d rounds=%d",
		s.BytesSent, s.BytesRecv, s.MsgsSent, s.MsgsRecv, s.Rounds)
	if s.SendErrs != 0 || s.RecvErrs != 0 {
		out += fmt.Sprintf(" errs=%d/%d", s.SendErrs, s.RecvErrs)
	}
	return out
}

// Conn is one endpoint of a two-party channel.
type Conn interface {
	// Send transmits one frame. The payload is copied before Send returns.
	Send(payload []byte) error
	// Recv blocks for the next frame.
	Recv() ([]byte, error)
	// Stats returns a snapshot of the endpoint's counters.
	Stats() Stats
	// ResetStats zeroes the counters (used between experiment phases).
	ResetStats()
	Close() error
}

// statsTracker implements the shared counter logic. Every mutation and
// every snapshot happens under one mutex, so a snapshot taken while the
// peer goroutine is mid-Send observes either the whole operation or none
// of it — the per-span delta math of internal/telemetry (snapshot, run,
// snapshot, Sub) never sees a half-counted message or a round counted
// ahead of its receive.
type statsTracker struct {
	mu       sync.Mutex
	stats    Stats
	lastSend bool
}

func (t *statsTracker) noteSend(n int) {
	t.mu.Lock()
	t.stats.BytesSent += uint64(n)
	t.stats.MsgsSent++
	t.lastSend = true
	t.mu.Unlock()
}

func (t *statsTracker) noteRecv(n int) {
	t.mu.Lock()
	t.stats.BytesRecv += uint64(n)
	t.stats.MsgsRecv++
	if t.lastSend {
		t.stats.Rounds++
		t.lastSend = false
	}
	t.mu.Unlock()
}

func (t *statsTracker) noteSendErr() {
	t.mu.Lock()
	t.stats.SendErrs++
	t.mu.Unlock()
}

func (t *statsTracker) noteRecvErr() {
	t.mu.Lock()
	t.stats.RecvErrs++
	t.mu.Unlock()
}

func (t *statsTracker) snapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *statsTracker) reset() {
	t.mu.Lock()
	t.stats = Stats{}
	t.lastSend = false
	t.mu.Unlock()
}

// pipeConn is one end of an in-memory duplex channel.
type pipeConn struct {
	statsTracker
	out  chan<- []byte
	in   <-chan []byte
	done chan struct{}
	once sync.Once
	peer *pipeConn
}

// Pipe returns the two connected endpoints of an in-memory channel. The
// internal buffering (1024 frames per direction) lets simple
// send-then-receive exchanges proceed without extra goroutines.
func Pipe() (Conn, Conn) {
	a2b := make(chan []byte, 1024)
	b2a := make(chan []byte, 1024)
	a := &pipeConn{out: a2b, in: b2a, done: make(chan struct{})}
	b := &pipeConn{out: b2a, in: a2b, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *pipeConn) Send(payload []byte) error {
	// Check for closure first: the select below would otherwise choose
	// randomly between a ready buffer slot and a closed done channel.
	select {
	case <-c.done:
		c.noteSendErr()
		return ErrClosed
	case <-c.peer.done:
		c.noteSendErr()
		return ErrClosed
	default:
	}
	cp := append([]byte(nil), payload...)
	select {
	case <-c.done:
		c.noteSendErr()
		return ErrClosed
	case <-c.peer.done:
		c.noteSendErr()
		return ErrClosed
	case c.out <- cp:
		c.noteSend(len(cp))
		return nil
	}
}

func (c *pipeConn) Recv() ([]byte, error) {
	select {
	case <-c.done:
		c.noteRecvErr()
		return nil, ErrClosed
	case p, ok := <-c.in:
		if !ok {
			c.noteRecvErr()
			return nil, ErrClosed
		}
		c.noteRecv(len(p))
		return p, nil
	case <-c.peer.done:
		// Drain anything the peer sent before closing.
		select {
		case p := <-c.in:
			c.noteRecv(len(p))
			return p, nil
		default:
			c.noteRecvErr()
			return nil, ErrClosed
		}
	}
}

func (c *pipeConn) Stats() Stats { return c.snapshot() }
func (c *pipeConn) ResetStats()  { c.reset() }

func (c *pipeConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// netConn frames messages over a stream connection with a 4-byte
// little-endian length prefix.
type netConn struct {
	statsTracker
	c  net.Conn
	wm sync.Mutex
	rm sync.Mutex

	lim Limits

	// bm guards the memory-budget ledger (used ≤ lim.MemBudget always).
	bm   sync.Mutex
	used uint64

	// dm guards the explicit receive deadline set by SetRecvDeadline.
	dm       sync.Mutex
	explicit time.Time
	// rArmed/wArmed track whether a deadline is currently set on the
	// socket, so unlimited connections never touch SetReadDeadline and a
	// cleared deadline is propagated exactly once. Guarded by rm/wm.
	rArmed bool
	wArmed bool
}

// NewNetConn wraps a stream connection (typically TCP) as a framed Conn
// with no resource limits.
func NewNetConn(c net.Conn) Conn { return &netConn{c: c} }

// NewNetConnLimits wraps a stream connection as a framed Conn enforcing
// the given resource limits (see Limits).
func NewNetConnLimits(c net.Conn, lim Limits) Conn { return &netConn{c: c, lim: lim} }

// Dial connects to a listening party at addr, retrying until the timeout
// elapses so that the two party processes may start in either order.
func Dial(addr string, timeout time.Duration) (Conn, error) {
	return DialContext(context.Background(), addr, timeout)
}

// Listen accepts a single peer connection on addr, closing the listener
// afterwards. Servers hosting concurrent sessions use NewListener.
func Listen(addr string) (Conn, error) {
	l, err := NewListener(addr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	return l.Accept(context.Background())
}

// ioChunk is the segment size for moving frame payloads: the idle
// deadline is re-armed and the receive buffer grown per segment, so
// neither allocation nor patience ever runs ahead of the bytes the peer
// has actually delivered.
const ioChunk = 1 << 20

func (c *netConn) Send(payload []byte) error {
	if len(payload) > MaxFrame {
		c.noteSendErr()
		return &FrameError{Op: "send", Declared: uint64(len(payload)), Limit: MaxFrame}
	}
	c.wm.Lock()
	defer c.wm.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if err := c.writeAll(hdr[:]); err != nil {
		c.noteSendErr()
		return err
	}
	if err := c.writeAll(payload); err != nil {
		c.noteSendErr()
		return err
	}
	c.noteSend(len(payload))
	return nil
}

// writeAll writes p in ioChunk segments, re-arming the idle write
// deadline before each: a peer that stops draining its socket (so our
// writes block on a full TCP window) is cut off after IdleTimeout.
func (c *netConn) writeAll(p []byte) error {
	for off := 0; off < len(p); off += ioChunk {
		end := min(off+ioChunk, len(p))
		if c.lim.IdleTimeout > 0 {
			c.wArmed = true
			if err := c.c.SetWriteDeadline(time.Now().Add(c.lim.IdleTimeout)); err != nil {
				return err
			}
		} else if c.wArmed {
			c.wArmed = false
			if err := c.c.SetWriteDeadline(time.Time{}); err != nil {
				return err
			}
		}
		if _, err := c.c.Write(p[off:end]); err != nil {
			return wrapIdle("send", err)
		}
	}
	return nil
}

func (c *netConn) Recv() ([]byte, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	var hdr [4]byte
	if err := c.readFull(hdr[:]); err != nil {
		c.noteRecvErr()
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		c.noteRecvErr()
		return nil, &FrameError{Op: "recv", Declared: uint64(n), Limit: MaxFrame}
	}
	// Charge the declared length against the session budget BEFORE any
	// allocation: a hostile header costs the peer its session, not us our
	// memory.
	if err := c.reserve(uint64(n)); err != nil {
		c.noteRecvErr()
		return nil, err
	}
	p, err := c.readBody(int(n))
	if err != nil {
		c.noteRecvErr()
		return nil, err
	}
	c.noteRecv(len(p))
	return p, nil
}

// readBody reads an n-byte payload. Small frames are read in one shot;
// large ones incrementally, with the buffer grown geometrically and the
// idle deadline re-armed per segment — allocation tracks the bytes the
// peer has actually delivered, never just the length it declared.
// Callers have already checked n against MaxFrame and the budget.
func (c *netConn) readBody(n int) ([]byte, error) {
	if n <= ioChunk {
		p := make([]byte, n)
		if err := c.readFull(p); err != nil {
			return nil, err
		}
		return p, nil
	}
	p := make([]byte, ioChunk)
	read := 0
	for read < n {
		if read == len(p) {
			grown := make([]byte, min(2*len(p), n))
			copy(grown, p)
			p = grown
		}
		k := min(n-read, len(p)-read)
		if err := c.readFull(p[read : read+k]); err != nil {
			return nil, err
		}
		read += k
	}
	return p, nil
}

// readFull reads exactly len(p) bytes under the currently applicable
// receive deadline (the sooner of the idle timeout and any explicit
// SetRecvDeadline), mapping deadline expiry onto ErrIdleTimeout.
func (c *netConn) readFull(p []byte) error {
	if err := c.armReadDeadline(); err != nil {
		return err
	}
	if _, err := io.ReadFull(c.c, p); err != nil {
		return wrapIdle("recv", err)
	}
	return nil
}

func (c *netConn) armReadDeadline() error {
	c.dm.Lock()
	explicit := c.explicit
	c.dm.Unlock()
	var dl time.Time
	if c.lim.IdleTimeout > 0 {
		dl = time.Now().Add(c.lim.IdleTimeout)
	}
	if !explicit.IsZero() && (dl.IsZero() || explicit.Before(dl)) {
		dl = explicit
	}
	if dl.IsZero() && !c.rArmed {
		return nil
	}
	c.rArmed = !dl.IsZero()
	return c.c.SetReadDeadline(dl)
}

func (c *netConn) setRecvDeadline(t time.Time) {
	c.dm.Lock()
	c.explicit = t
	c.dm.Unlock()
}

func (c *netConn) reserve(n uint64) error {
	if c.lim.MemBudget == 0 {
		return nil
	}
	c.bm.Lock()
	defer c.bm.Unlock()
	if n > c.lim.MemBudget-c.used {
		return &BudgetError{Declared: n, Used: c.used, Budget: c.lim.MemBudget}
	}
	c.used += n
	return nil
}

// wrapIdle maps a network timeout onto ErrIdleTimeout while keeping the
// original error in the chain (it is a net.Error, which is what keeps
// the result classified transient by IsTransient).
func wrapIdle(op string, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %s stalled past the deadline: %w", ErrIdleTimeout, op, err)
	}
	return err
}

func (c *netConn) Stats() Stats { return c.snapshot() }
func (c *netConn) ResetStats()  { c.reset() }
func (c *netConn) Close() error { return c.c.Close() }
