package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestChaosConnDropAtK(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := NewChaosConn(a, FaultPlan{FailAfter: 2})
	if err := f.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte{3}); !errors.Is(err, ErrInjected) {
		t.Fatalf("third op returned %v, want ErrInjected", err)
	}
	if _, err := f.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget recv returned %v, want ErrInjected", err)
	}
	s := f.Stats()
	if s.MsgsSent != 2 || s.SendErrs != 1 || s.RecvErrs != 1 {
		t.Errorf("stats %+v: want 2 sends, 1 send err, 1 recv err", s)
	}
}

func TestChaosConnUnlimitedBudget(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := NewChaosConn(a, FaultPlan{FailAfter: -1})
	for i := 0; i < 100; i++ {
		if err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if got := f.Stats().MsgsSent; got != 100 {
		t.Errorf("sent %d msgs, want 100", got)
	}
	_ = b
}

func TestChaosConnPartialWrite(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := NewChaosConn(a, FaultPlan{FailAfter: 1, PartialWrite: true})
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := f.Send(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("failing send returned %v, want ErrInjected", err)
	}
	// A second failing send must NOT deliver another fragment.
	if err := f.Send(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure send returned %v, want ErrInjected", err)
	}
	first, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, payload) {
		t.Errorf("intact frame arrived as %v", first)
	}
	frag, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frag, payload[:4]) {
		t.Errorf("truncated frame arrived as %v, want first half %v", frag, payload[:4])
	}
	b.Close()
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("no third frame expected, got err %v", err)
	}
}

func TestChaosConnLatencyDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		f := NewChaosConn(a, FaultPlan{FailAfter: -1, MaxLatency: 5 * time.Millisecond, Seed: seed})
		var out []time.Duration
		for i := 0; i < 6; i++ {
			start := time.Now()
			if err := f.Send([]byte{0}); err != nil {
				t.Fatal(err)
			}
			out = append(out, time.Since(start))
		}
		return out
	}
	// The sleep schedule itself is deterministic; wall-clock measurement
	// is not, so compare with slack: each op must take at least its
	// scheduled delay, and some delay must be non-trivial.
	s1 := schedule(3)
	var total time.Duration
	for _, d := range s1 {
		total += d
	}
	if total == 0 {
		t.Error("latency injection slept for 0 across 6 ops")
	}
}

func TestChaosConnCorruptFlipsLastRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := b.Send([]byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f := NewChaosConn(a, FaultPlan{FailAfter: 1, Corrupt: true})
	p, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p, []byte{9, 9, 9, 9}) {
		t.Error("final permitted recv was not corrupted")
	}
}
