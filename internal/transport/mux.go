package transport

import (
	"fmt"
	"sync"
)

// Mux multiplexes two logical streams over one Conn so a session can run
// its online protocol and its preprocessing fill subprotocol concurrently
// on a single TCP connection. Each frame carries a 1-byte prefix: the low
// nibble is the stream id, bit 0x10 marks a stream-close control frame,
// and every other bit must be zero. Per-stream byte/round accounting
// counts only the payload (prefix excluded), so the online stream's Stats
// stay byte-identical whether or not a fill is running beside it.
//
// There is no background demux goroutine. Receiving is "baton-passing":
// whichever substream needs a frame and finds its queue empty becomes the
// sole reader of the inner Conn, routing frames to queues until its own
// arrives; other substreams park on a condition variable. A process with
// no receiver pending reads nothing — the mux adds no goroutines to leak
// and no reads the session did not ask for.
const (
	// StreamMain carries the session's ordinary protocol traffic.
	StreamMain = 0
	// StreamPreproc carries the preprocessing fill subprotocol.
	StreamPreproc = 1

	muxStreams = 2

	muxIDMask  = 0x0F
	muxClose   = 0x10
	muxBadBits = ^byte(muxIDMask | muxClose)

	// muxQueueCap bounds the frames parked for a substream whose consumer
	// is not currently receiving. A peer that floods one stream while we
	// wait on the other is a flow violation, not a memory obligation.
	muxQueueCap = 1024
)

// MuxError reports a protocol violation on the multiplexed channel:
// malformed prefixes, unknown stream ids, or a queue overflow. Permanent
// by classification — a peer that frames wrongly will frame wrongly again.
type MuxError struct {
	Reason string
}

func (e *MuxError) Error() string { return "transport: mux: " + e.Reason }

// Mux owns the inner Conn once created; callers interact only with the
// substreams. Closing the main substream closes the whole mux (and the
// inner Conn); closing the preprocessing substream sends a best-effort
// close control so the peer's reader unblocks, keeping the main stream
// usable.
type Mux struct {
	inner Conn

	sendMu sync.Mutex // serialises prefix+payload writes to inner

	mu      sync.Mutex
	cond    *sync.Cond
	reading bool  // a substream currently holds the read baton
	err     error // first fatal error; poisons all future receives
	streams [muxStreams]*muxStream
}

// NewMux wraps inner and returns its two substreams.
func NewMux(inner Conn) (main, preproc Conn) {
	m := &Mux{inner: inner}
	m.cond = sync.NewCond(&m.mu)
	for id := range m.streams {
		m.streams[id] = &muxStream{mux: m, id: byte(id)}
	}
	return m.streams[StreamMain], m.streams[StreamPreproc]
}

type muxStream struct {
	statsTracker
	mux *Mux
	id  byte

	// queue, localClosed and remoteClosed are guarded by mux.mu.
	queue        [][]byte
	localClosed  bool
	remoteClosed bool
}

func (s *muxStream) Send(payload []byte) error {
	if len(payload) > MaxFrame-1 {
		s.noteSendErr()
		return &FrameError{Op: "send", Declared: uint64(len(payload)), Limit: MaxFrame - 1}
	}
	m := s.mux
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		s.noteSendErr()
		return err
	}
	if s.localClosed || s.remoteClosed {
		m.mu.Unlock()
		s.noteSendErr()
		return ErrClosed
	}
	m.mu.Unlock()

	framed := make([]byte, 1+len(payload))
	framed[0] = s.id
	copy(framed[1:], payload)
	m.sendMu.Lock()
	err := m.inner.Send(framed)
	m.sendMu.Unlock()
	if err != nil {
		s.noteSendErr()
		m.poison(err)
		return err
	}
	s.noteSend(len(payload))
	return nil
}

func (s *muxStream) Recv() ([]byte, error) {
	m := s.mux
	m.mu.Lock()
	for {
		if len(s.queue) > 0 {
			p := s.queue[0]
			s.queue = s.queue[1:]
			m.mu.Unlock()
			s.noteRecv(len(p))
			return p, nil
		}
		if m.err != nil {
			err := m.err
			m.mu.Unlock()
			s.noteRecvErr()
			return nil, err
		}
		if s.localClosed || s.remoteClosed {
			m.mu.Unlock()
			s.noteRecvErr()
			return nil, ErrClosed
		}
		if !m.reading {
			break
		}
		m.cond.Wait()
	}
	// Take the read baton: read inner frames (outside the lock) and route
	// them until one lands on our queue or the mux dies.
	m.reading = true
	for {
		m.mu.Unlock()
		p, err := m.inner.Recv()
		m.mu.Lock()
		if err != nil {
			m.reading = false
			if m.err == nil {
				m.err = err
			}
			err = m.err
			m.cond.Broadcast()
			m.mu.Unlock()
			s.noteRecvErr()
			return nil, err
		}
		if err := m.routeLocked(p); err != nil {
			m.reading = false
			m.err = err
			m.cond.Broadcast()
			m.mu.Unlock()
			s.noteRecvErr()
			return nil, err
		}
		m.cond.Broadcast()
		if len(s.queue) > 0 {
			out := s.queue[0]
			s.queue = s.queue[1:]
			m.reading = false
			m.cond.Broadcast()
			m.mu.Unlock()
			s.noteRecv(len(out))
			return out, nil
		}
		if s.localClosed || s.remoteClosed {
			m.reading = false
			m.cond.Broadcast()
			m.mu.Unlock()
			s.noteRecvErr()
			return nil, ErrClosed
		}
	}
}

// routeLocked validates one inner frame and delivers it. Called with
// mux.mu held.
func (m *Mux) routeLocked(p []byte) error {
	if len(p) == 0 {
		return &MuxError{Reason: "empty frame (missing stream prefix)"}
	}
	prefix := p[0]
	if prefix&muxBadBits != 0 {
		return &MuxError{Reason: fmt.Sprintf("reserved prefix bits set (0x%02x)", prefix)}
	}
	id := prefix & muxIDMask
	if int(id) >= muxStreams {
		return &MuxError{Reason: fmt.Sprintf("unknown stream id %d", id)}
	}
	dst := m.streams[id]
	if prefix&muxClose != 0 {
		if len(p) != 1 {
			return &MuxError{Reason: "close control frame carries payload"}
		}
		dst.remoteClosed = true
		return nil
	}
	if dst.remoteClosed {
		return &MuxError{Reason: fmt.Sprintf("frame on remotely closed stream %d", id)}
	}
	if len(dst.queue) >= muxQueueCap {
		return &MuxError{Reason: fmt.Sprintf("stream %d queue overflow (%d frames parked)", id, muxQueueCap)}
	}
	dst.queue = append(dst.queue, p[1:])
	return nil
}

// poison records a fatal error and wakes every parked receiver.
func (m *Mux) poison(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (s *muxStream) Stats() Stats { return s.snapshot() }
func (s *muxStream) ResetStats()  { s.reset() }

// Unwrap exposes the inner Conn so decorator-traversing helpers
// (SetRecvDeadline, ReserveBudget) reach the transport below the mux.
func (s *muxStream) Unwrap() Conn { return s.mux.inner }

// Close on the main substream tears down the whole mux, including the
// inner Conn. Close on the preprocessing substream is cooperative: it
// sends a best-effort close control (so the peer's filler unblocks) and
// marks the stream locally closed, leaving the main stream running.
func (s *muxStream) Close() error {
	m := s.mux
	if s.id == StreamMain {
		m.poison(ErrClosed)
		return m.inner.Close()
	}
	m.mu.Lock()
	if s.localClosed {
		m.mu.Unlock()
		return nil
	}
	s.localClosed = true
	dead := m.err != nil
	m.cond.Broadcast()
	m.mu.Unlock()
	if dead {
		// The mux is already poisoned: the peer learns of the teardown
		// from the inner conn's own failure.
		return nil
	}
	// Send the close control even when the peer already half-closed its
	// end: a remote close can come from the peer's session teardown while
	// the peer's stream reader still blocks mid-exchange holding the read
	// baton — this control frame is what unblocks it. (Skipping it here is
	// a teardown deadlock: each side waits for the other's frame.)
	m.sendMu.Lock()
	err := m.inner.Send([]byte{muxClose | s.id})
	m.sendMu.Unlock()
	if err != nil {
		// Best effort: the peer learns of the closure from the inner
		// conn's own teardown instead.
		return nil
	}
	return nil
}
