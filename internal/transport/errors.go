package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"time"
)

// Error classification for networked sessions. A 2PC session is a pure
// function of its inputs — shares are per-session, so a failed session can
// always be re-run from scratch. What decides whether a retry is worth
// attempting is the *kind* of failure: a peer that vanished mid-protocol
// (reset, timeout, injected fault) may well be back for the next attempt,
// while a protocol disagreement (handshake mismatch, malformed payload)
// will fail identically every time.

// IsTransient reports whether err looks like a transient transport failure
// worth retrying with a fresh session: connection loss, peer resets,
// timeouts, injected test faults and truncated streams. Context
// cancellation and deadline expiry are NOT transient — they mean the
// caller gave up, not that the network hiccupped. Unknown errors
// (handshake mismatches, malformed payloads, decode failures) classify as
// permanent, so a retry loop never spins on a deterministic failure.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrInjected) || errors.Is(err, ErrClosed) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// A shed session retries once a server slot may have freed; an idle
	// timeout may be a stalled network rather than a hostile peer.
	if errors.Is(err, ErrServerBusy) || errors.Is(err, ErrIdleTimeout) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ETIMEDOUT) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// mix64 is the splitmix64 finalizer: a tiny, stateless, high-quality
// integer hash. It is NOT cryptographic — it only decorrelates retry
// schedules — but it is fully deterministic, which keeps every backoff
// sequence reproducible in tests (no math/rand, per the prgonly
// invariant).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Backoff is a deterministic exponential-backoff policy: delays grow
// base·2^attempt, hard-capped by Max (every returned delay respects the
// ceiling, however large the attempt index), with jitter derived from a
// seed so two clients with different seeds desynchronise instead of
// retrying in lockstep while the same seed always reproduces the same
// schedule.
//
// The default equal jitter draws from [d/2, d] — delays keep growing
// monotonically in expectation, which suits a single client pacing its
// own retries. FullJitter draws from [1ns, d] instead (AWS-style full
// jitter): a fleet of clients released by the same event — a provider
// restart, a circuit breaker reopening — spreads across the whole window
// rather than bunching in its upper half, at the cost of occasional very
// short delays.
type Backoff struct {
	// Base is the attempt-0 delay; 0 defaults to 100 ms.
	Base time.Duration
	// Max is the ceiling every delay is capped at; 0 defaults to 2 s.
	Max time.Duration
	// FullJitter widens the jitter window from [d/2, d] to [1ns, d].
	FullJitter bool
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int, seed uint64) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if base > max {
		base = max
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		// d ≤ max/2 here, so the doubling can neither overflow nor
		// overshoot the ceiling by more than one final clamp.
		if d > max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	j := mix64(seed ^ uint64(attempt)*0x51_7CC1B727220A95)
	if b.FullJitter {
		if d <= 1 {
			return d
		}
		return 1 + time.Duration(j%uint64(d))
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(j%uint64(half+1))
}

// BackoffDelay returns the delay to wait before retry number attempt
// (0-based) under the default equal-jitter policy: exponential growth
// base·2^attempt capped at max, jitter in [d/2, d] derived from seed and
// the attempt index. base 0 defaults to 100 ms, max 0 to 2 s. It is
// shorthand for Backoff{Base: base, Max: max}.Delay(attempt, seed).
func BackoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	return Backoff{Base: base, Max: max}.Delay(attempt, seed)
}
