package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"time"
)

// Error classification for networked sessions. A 2PC session is a pure
// function of its inputs — shares are per-session, so a failed session can
// always be re-run from scratch. What decides whether a retry is worth
// attempting is the *kind* of failure: a peer that vanished mid-protocol
// (reset, timeout, injected fault) may well be back for the next attempt,
// while a protocol disagreement (handshake mismatch, malformed payload)
// will fail identically every time.

// IsTransient reports whether err looks like a transient transport failure
// worth retrying with a fresh session: connection loss, peer resets,
// timeouts, injected test faults and truncated streams. Context
// cancellation and deadline expiry are NOT transient — they mean the
// caller gave up, not that the network hiccupped. Unknown errors
// (handshake mismatches, malformed payloads, decode failures) classify as
// permanent, so a retry loop never spins on a deterministic failure.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrInjected) || errors.Is(err, ErrClosed) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// A shed session retries once a server slot may have freed; an idle
	// timeout may be a stalled network rather than a hostile peer.
	if errors.Is(err, ErrServerBusy) || errors.Is(err, ErrIdleTimeout) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ETIMEDOUT) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// mix64 is the splitmix64 finalizer: a tiny, stateless, high-quality
// integer hash. It is NOT cryptographic — it only decorrelates retry
// schedules — but it is fully deterministic, which keeps every backoff
// sequence reproducible in tests (no math/rand, per the prgonly
// invariant).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// BackoffDelay returns the delay to wait before retry number attempt
// (0-based): exponential growth base·2^attempt capped at max, with
// deterministic jitter in [d/2, d] derived from seed and the attempt
// index. Two clients with different seeds desynchronise instead of
// retrying in lockstep; the same seed always reproduces the same
// schedule. base 0 defaults to 100 ms, max 0 to 2 s.
func BackoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if base > max {
		base = max
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	j := time.Duration(mix64(seed^uint64(attempt)*0x51_7CC1B727220A95) % uint64(half+1))
	return half + j
}
