package transport

import (
	"math"
	"testing"
	"time"
)

// TestBackoffDelayTable pins the policy's envelope: for each (policy,
// attempt) the delay must land inside the documented jitter window of the
// capped exponential.
func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		lo, hi  time.Duration // inclusive bounds on the returned delay
	}{
		{"defaults attempt 0", Backoff{}, 0, 50 * time.Millisecond, 100 * time.Millisecond},
		{"defaults attempt 3", Backoff{}, 3, 400 * time.Millisecond, 800 * time.Millisecond},
		{"defaults hits ceiling", Backoff{}, 10, time.Second, 2 * time.Second},
		{"explicit base grows", Backoff{Base: 10 * time.Millisecond, Max: time.Second}, 2,
			20 * time.Millisecond, 40 * time.Millisecond},
		{"explicit ceiling caps", Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}, 6,
			40 * time.Millisecond, 80 * time.Millisecond},
		{"ceiling survives huge attempt", Backoff{Base: time.Millisecond, Max: time.Second}, 62,
			500 * time.Millisecond, time.Second},
		{"base above ceiling clamps", Backoff{Base: 5 * time.Second, Max: time.Second}, 0,
			500 * time.Millisecond, time.Second},
		{"base between half-max and max", Backoff{Base: 1500 * time.Millisecond, Max: 2 * time.Second}, 1,
			time.Second, 2 * time.Second},
		{"huge ceiling no overflow", Backoff{Base: time.Nanosecond, Max: math.MaxInt64}, 200,
			math.MaxInt64 / 2, math.MaxInt64},
		{"full jitter attempt 0", Backoff{FullJitter: true}, 0, 1, 100 * time.Millisecond},
		{"full jitter at ceiling", Backoff{Max: 50 * time.Millisecond, FullJitter: true}, 20,
			1, 50 * time.Millisecond},
		{"full jitter one-ns base", Backoff{Base: time.Nanosecond, Max: time.Nanosecond, FullJitter: true}, 0,
			time.Nanosecond, time.Nanosecond},
	}
	for _, c := range cases {
		for seed := uint64(0); seed < 32; seed++ {
			d := c.b.Delay(c.attempt, seed)
			if d < c.lo || d > c.hi {
				t.Errorf("%s: seed %d delay %v outside [%v, %v]", c.name, seed, d, c.lo, c.hi)
			}
			if d2 := c.b.Delay(c.attempt, seed); d2 != d {
				t.Errorf("%s: seed %d nondeterministic: %v vs %v", c.name, seed, d, d2)
			}
		}
	}
}

// TestBackoffFullJitterSpreads checks the full-jitter window is actually
// wider than equal jitter's: across seeds, some delays must land below
// half the capped exponential (which equal jitter can never produce).
func TestBackoffFullJitterSpreads(t *testing.T) {
	eq := Backoff{Base: 64 * time.Millisecond, Max: time.Second}
	fj := Backoff{Base: 64 * time.Millisecond, Max: time.Second, FullJitter: true}
	belowHalf := 0
	for seed := uint64(0); seed < 64; seed++ {
		if d := eq.Delay(2, seed); d < 128*time.Millisecond {
			t.Fatalf("equal jitter produced %v below half the 256ms step", d)
		}
		if fj.Delay(2, seed) < 128*time.Millisecond {
			belowHalf++
		}
	}
	if belowHalf == 0 {
		t.Error("full jitter never landed below half the step across 64 seeds")
	}
}

// TestBackoffDelayWrapperEquivalence pins BackoffDelay as exactly the
// equal-jitter policy, so the existing call sites keep their schedules.
func TestBackoffDelayWrapperEquivalence(t *testing.T) {
	for attempt := 0; attempt < 10; attempt++ {
		for _, seed := range []uint64{0, 7, 0xDEAD} {
			want := Backoff{Base: 25 * time.Millisecond, Max: time.Second}.Delay(attempt, seed)
			if got := BackoffDelay(attempt, 25*time.Millisecond, time.Second, seed); got != want {
				t.Fatalf("attempt %d seed %d: BackoffDelay %v != Backoff.Delay %v", attempt, seed, got, want)
			}
		}
	}
}
