package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected", ErrInjected, true},
		{"injected wrapped", fmt.Errorf("engine: node 3: %w", ErrInjected), true},
		{"closed", ErrClosed, true},
		{"net closed", net.ErrClosed, true},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"conn refused", syscall.ECONNREFUSED, true},
		{"conn reset", fmt.Errorf("dial: %w", syscall.ECONNRESET), true},
		{"op error", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"ctx canceled", context.Canceled, false},
		{"ctx deadline", context.DeadlineExceeded, false},
		{"ctx canceled wrapped", fmt.Errorf("dial: %w", context.Canceled), false},
		{"unknown", errors.New("engine: handshake carrier mismatch"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base, max := 50*time.Millisecond, time.Second
	var prevCap time.Duration
	for attempt := 0; attempt < 12; attempt++ {
		d1 := BackoffDelay(attempt, base, max, 7)
		d2 := BackoffDelay(attempt, base, max, 7)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		capAt := base << uint(attempt)
		if capAt > max || capAt <= 0 {
			capAt = max
		}
		if d1 < capAt/2 || d1 > capAt {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d1, capAt/2, capAt)
		}
		if capAt >= prevCap {
			prevCap = capAt
		} else {
			t.Errorf("attempt %d: backoff cap shrank", attempt)
		}
	}
	// Different seeds should usually produce different jitter.
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if BackoffDelay(attempt, base, max, 1) == BackoffDelay(attempt, base, max, 2) {
			same++
		}
	}
	if same == 8 {
		t.Error("jitter identical across seeds for every attempt")
	}
	if d := BackoffDelay(0, 0, 0, 0); d <= 0 || d > 2*time.Second {
		t.Errorf("zero-value defaults gave %v", d)
	}
}

// TestDialContextBackoffRespectsTimeout dials a dead address and checks
// the retry loop gives up within the window instead of overshooting it by
// a full (now exponential) backoff step.
func TestDialContextBackoffRespectsTimeout(t *testing.T) {
	// Reserve a port with no listener behind it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	start := time.Now()
	_, err = Dial(addr, 400*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !IsTransient(err) {
		t.Errorf("dead-address dial error %v not classified transient", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("dial gave up after %v, window was 400ms", elapsed)
	}
}
