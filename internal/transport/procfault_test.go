package transport

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestProcessFaultsSharedBudget checks the budget is shared across every
// wrapped connection and that tripping severs them all at once.
func TestProcessFaultsSharedBudget(t *testing.T) {
	var died atomic.Bool
	p := NewProcessFaults(FaultPlan{FailAfter: 3}, func() { died.Store(true) })
	a1, b1 := Pipe()
	a2, b2 := Pipe()
	defer b1.Close()
	defer b2.Close()
	w1, w2 := p.Wrap(a1), p.Wrap(a2)

	// The pipes buffer, so send-then-receive proceeds synchronously.
	if err := w1.Send([]byte("x")); err != nil { // op 1, conn 1
		t.Fatalf("op 1: %v", err)
	}
	if err := w2.Send([]byte("y")); err != nil { // op 2, conn 2
		t.Fatalf("op 2: %v", err)
	}
	if err := w1.Send([]byte("z")); err != nil { // op 3: budget exhausted
		t.Fatalf("op 3: %v", err)
	}
	for _, peer := range []Conn{b1, b2, b1} {
		if _, err := peer.Recv(); err != nil {
			t.Fatalf("peer recv: %v", err)
		}
	}
	if p.Dead() {
		t.Fatal("process dead before the budget tripped")
	}
	// Op 4 on either connection trips the whole process.
	if err := w2.Send([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 4: got %v, want ErrInjected", err)
	}
	if !p.Dead() || !died.Load() {
		t.Fatal("trip did not mark the process dead / fire onDeath")
	}
	if p.Ops() != 3 {
		t.Fatalf("Ops() = %d, want 3", p.Ops())
	}
	// Both connections are severed, not just the tripping one.
	if err := w1.Send([]byte("after")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-death send on sibling conn: got %v, want ErrInjected", err)
	}
	if _, err := b1.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer of severed conn: got %v, want ErrClosed", err)
	}
}

// TestProcessFaultsStallBlocksUntilKill checks a stalling death freezes
// denied operations (silence, not resets) until Kill cuts the stall.
func TestProcessFaultsStallBlocksUntilKill(t *testing.T) {
	p := NewProcessFaults(FaultPlan{FailAfter: 0, Stall: time.Hour}, nil)
	a, b := Pipe()
	defer b.Close()
	w := p.Wrap(a)
	done := make(chan error, 1)
	go func() {
		done <- w.Send([]byte("frozen"))
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled op returned early with %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	p.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("killed op: got %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Kill did not release the stalled op")
	}
}

// TestProcessFaultsCorruptLastRecv checks the dying process's final
// permitted Recv carries a flipped byte.
func TestProcessFaultsCorruptLastRecv(t *testing.T) {
	p := NewProcessFaults(FaultPlan{FailAfter: 1, Corrupt: true}, nil)
	a, b := Pipe()
	defer b.Close()
	w := p.Wrap(a)
	if err := b.Send([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := w.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("final permitted recv was not corrupted")
	}
	if _, err := w.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-corruption op: got %v, want ErrInjected", err)
	}
}

// TestProcessFaultsWrapAfterDeath checks a connection accepted after the
// process died is severed immediately.
func TestProcessFaultsWrapAfterDeath(t *testing.T) {
	p := NewProcessFaults(FaultPlan{FailAfter: -1}, nil)
	p.Kill()
	a, b := Pipe()
	defer b.Close()
	w := p.Wrap(a)
	if err := w.Send([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("send on post-death conn: got %v, want ErrInjected", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer of post-death conn: got %v, want ErrClosed", err)
	}
}
