package transport

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// byteStream is a net.Conn whose read side replays a fixed byte string —
// exactly what a hostile peer's socket looks like to the framing layer.
// Writes are swallowed and deadlines are no-ops.
type byteStream struct {
	r *bytes.Reader
}

func (s *byteStream) Read(p []byte) (int, error)       { return s.r.Read(p) }
func (s *byteStream) Write(p []byte) (int, error)      { return len(p), nil }
func (s *byteStream) Close() error                     { return nil }
func (s *byteStream) LocalAddr() net.Addr              { return nil }
func (s *byteStream) RemoteAddr() net.Addr             { return nil }
func (s *byteStream) SetDeadline(time.Time) error      { return nil }
func (s *byteStream) SetReadDeadline(time.Time) error  { return nil }
func (s *byteStream) SetWriteDeadline(time.Time) error { return nil }

// FuzzRecvFrame throws arbitrary byte streams at the framed receiver.
// Whatever the peer declares, Recv must never return a frame above
// MaxFrame, never hand out more total bytes than the session budget
// allows, and never panic.
func FuzzRecvFrame(f *testing.F) {
	frame := func(p []byte) []byte {
		hdr := []byte{byte(len(p)), byte(len(p) >> 8), byte(len(p) >> 16), byte(len(p) >> 24)}
		return append(hdr, p...)
	}
	f.Add(frame([]byte("abcd")), uint64(0))
	f.Add(frame([]byte("hello")), uint64(4))                              // frame above budget
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'}, uint64(1<<20))             // giant declared length
	f.Add([]byte{8, 0, 0, 0, 'a', 'b'}, uint64(0))                        // truncated body
	f.Add(append(frame([]byte("one")), frame([]byte("twotwo"))...), uint64(9)) // budget across frames
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, budget uint64) {
		conn := NewNetConnLimits(&byteStream{r: bytes.NewReader(data)}, Limits{MemBudget: budget})
		var used uint64
		for {
			p, err := conn.Recv()
			if err != nil {
				return
			}
			if len(p) > MaxFrame {
				t.Fatalf("Recv returned a %d-byte frame above MaxFrame %d", len(p), MaxFrame)
			}
			used += uint64(len(p))
			if budget > 0 && used > budget {
				t.Fatalf("Recv handed out %d bytes past the %d-byte budget", used, budget)
			}
		}
	})
}
