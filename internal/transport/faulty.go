package transport

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the error produced by a FaultyConn once its budget is
// exhausted. Tests use it to verify that protocol layers surface transport
// failures instead of deadlocking or corrupting shares.
var ErrInjected = errors.New("transport: injected fault")

// FaultPlan describes a deterministic failure scenario for a FaultyConn.
// Every field is reproducible: the same plan over the same transcript
// injects exactly the same faults, which is what lets the chaos harness
// sweep a failure across every operation index of a protocol run.
type FaultPlan struct {
	// FailAfter is the number of operations (Sends and Recvs together)
	// performed normally before every further operation returns
	// ErrInjected. Negative means never fail (latency-only chaos).
	FailAfter int
	// Corrupt flips a byte of the final permitted Recv's payload (when
	// non-empty) to exercise integrity handling.
	Corrupt bool
	// PartialWrite simulates a connection dying mid-frame: if the first
	// failing operation is a Send, half of its payload is delivered to the
	// peer before the failure is reported. The peer therefore observes a
	// truncated frame — the decode layers must reject it cleanly.
	PartialWrite bool
	// MaxLatency, when non-zero, injects a deterministic per-operation
	// delay in [0, MaxLatency), derived from Seed and the operation index.
	MaxLatency time.Duration
	// Seed drives the latency schedule.
	Seed uint64
	// Stall, when non-zero, delays operation index StallAt by Stall
	// before it executes — a deterministic slow-loris: the peer's
	// matching Send/Recv blocks for the whole stall, which is what the
	// idle-timeout defences must cut short.
	Stall   time.Duration
	StallAt int
}

// FaultyConn wraps a Conn and injects the faults of a FaultPlan: seeded
// latency on every operation, then a hard failure (optionally with a
// corrupted or truncated final frame) once the operation budget is
// exhausted. FailAfter counts Sends and Recvs together.
//
// Injected failures are accounted the same way the wrapped transports
// account their own failures: they increment Stats.SendErrs/RecvErrs and
// leave every byte/message/round counter untouched (no payload crossed
// the transport). The returned Stats merge the inner connection's
// counters with the injected-failure counts, so telemetry span deltas
// over a FaultyConn attribute exactly the bytes that really moved.
type FaultyConn struct {
	Inner       Conn
	mu          sync.Mutex
	remaining   int
	corrupt     bool
	partial     bool
	partialDone bool
	maxLatency  time.Duration
	seed        uint64
	stall       time.Duration
	stallAt     int
	op          uint64
	injected    Stats // only SendErrs/RecvErrs are ever non-zero
}

// NewFaultyConn returns a connection that performs ops operations normally
// and then returns ErrInjected forever. If corrupt is true, the final
// permitted Recv additionally flips a byte of the payload (when non-empty)
// to exercise integrity handling.
func NewFaultyConn(inner Conn, ops int, corrupt bool) *FaultyConn {
	return NewChaosConn(inner, FaultPlan{FailAfter: ops, Corrupt: corrupt})
}

// NewChaosConn returns a connection injecting the faults of plan.
func NewChaosConn(inner Conn, plan FaultPlan) *FaultyConn {
	return &FaultyConn{
		Inner:      inner,
		remaining:  plan.FailAfter,
		corrupt:    plan.Corrupt,
		partial:    plan.PartialWrite,
		maxLatency: plan.MaxLatency,
		seed:       plan.Seed,
		stall:      plan.Stall,
		stallAt:    plan.StallAt,
	}
}

// take burns one operation from the budget. It also injects the plan's
// latency (outside the lock) and reports whether this operation may
// proceed, whether it is the last permitted one, and whether it is the
// first denied one (the partial-write trigger).
func (f *FaultyConn) take() (ok, last, first bool) {
	f.mu.Lock()
	op := f.op
	f.op++
	var wait time.Duration
	if f.maxLatency > 0 {
		wait = time.Duration(mix64(f.seed^mix64(op)) % uint64(f.maxLatency))
	}
	if f.stall > 0 && op == uint64(f.stallAt) {
		wait += f.stall
	}
	switch {
	case f.remaining < 0: // unlimited budget: latency-only chaos
		ok = true
	case f.remaining > 0:
		f.remaining--
		ok, last = true, f.remaining == 0
	default: // budget exhausted: deny, flagging the first denial once
		first = !f.partialDone
		f.partialDone = true
	}
	f.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
	return ok, last, first
}

// Send implements Conn.
func (f *FaultyConn) Send(p []byte) error {
	ok, _, first := f.take()
	if !ok {
		f.mu.Lock()
		f.injected.SendErrs++
		f.mu.Unlock()
		if first && f.partial && len(p) > 1 {
			// Deliver a truncated frame before dying, like a TCP
			// connection reset mid-write. The inner Send's own error (if
			// any) rides along; the injected classification dominates.
			if err := f.Inner.Send(p[:len(p)/2]); err != nil {
				return errors.Join(ErrInjected, err)
			}
		}
		return ErrInjected
	}
	return f.Inner.Send(p)
}

// Recv implements Conn.
func (f *FaultyConn) Recv() ([]byte, error) {
	ok, last, _ := f.take()
	if !ok {
		f.mu.Lock()
		f.injected.RecvErrs++
		f.mu.Unlock()
		return nil, ErrInjected
	}
	p, err := f.Inner.Recv()
	if err == nil && last && f.corrupt && len(p) > 0 {
		p[len(p)/2] ^= 0xFF
	}
	return p, err
}

// Stats implements Conn: the inner counters plus the injected failures.
func (f *FaultyConn) Stats() Stats {
	s := f.Inner.Stats()
	f.mu.Lock()
	s.Add(f.injected)
	f.mu.Unlock()
	return s
}

// ResetStats implements Conn.
func (f *FaultyConn) ResetStats() {
	f.mu.Lock()
	f.injected = Stats{}
	f.mu.Unlock()
	f.Inner.ResetStats()
}

// Close implements Conn.
func (f *FaultyConn) Close() error { return f.Inner.Close() }

// Unwrap exposes the wrapped Conn so budget and deadline requests reach
// the real transport through the fault injector.
func (f *FaultyConn) Unwrap() Conn { return f.Inner }
