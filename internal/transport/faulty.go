package transport

import (
	"errors"
	"sync"
)

// ErrInjected is the error produced by a FaultyConn once its budget is
// exhausted. Tests use it to verify that protocol layers surface transport
// failures instead of deadlocking or corrupting shares.
var ErrInjected = errors.New("transport: injected fault")

// FaultyConn wraps a Conn and starts failing after a configured number of
// operations. FailAfter counts Sends and Recvs together.
//
// Injected failures are accounted the same way the wrapped transports
// account their own failures: they increment Stats.SendErrs/RecvErrs and
// leave every byte/message/round counter untouched (no payload crossed
// the transport). The returned Stats merge the inner connection's
// counters with the injected-failure counts, so telemetry span deltas
// over a FaultyConn attribute exactly the bytes that really moved.
type FaultyConn struct {
	Inner     Conn
	mu        sync.Mutex
	remaining int
	corrupt   bool
	injected  Stats // only SendErrs/RecvErrs are ever non-zero
}

// NewFaultyConn returns a connection that performs ops operations normally
// and then returns ErrInjected forever. If corrupt is true, the final
// permitted Recv additionally flips a byte of the payload (when non-empty)
// to exercise integrity handling.
func NewFaultyConn(inner Conn, ops int, corrupt bool) *FaultyConn {
	return &FaultyConn{Inner: inner, remaining: ops, corrupt: corrupt}
}

func (f *FaultyConn) take() (ok, last bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.remaining <= 0 {
		return false, false
	}
	f.remaining--
	return true, f.remaining == 0
}

// Send implements Conn.
func (f *FaultyConn) Send(p []byte) error {
	ok, _ := f.take()
	if !ok {
		f.mu.Lock()
		f.injected.SendErrs++
		f.mu.Unlock()
		return ErrInjected
	}
	return f.Inner.Send(p)
}

// Recv implements Conn.
func (f *FaultyConn) Recv() ([]byte, error) {
	ok, last := f.take()
	if !ok {
		f.mu.Lock()
		f.injected.RecvErrs++
		f.mu.Unlock()
		return nil, ErrInjected
	}
	p, err := f.Inner.Recv()
	if err == nil && last && f.corrupt && len(p) > 0 {
		p[len(p)/2] ^= 0xFF
	}
	return p, err
}

// Stats implements Conn: the inner counters plus the injected failures.
func (f *FaultyConn) Stats() Stats {
	s := f.Inner.Stats()
	f.mu.Lock()
	s.Add(f.injected)
	f.mu.Unlock()
	return s
}

// ResetStats implements Conn.
func (f *FaultyConn) ResetStats() {
	f.mu.Lock()
	f.injected = Stats{}
	f.mu.Unlock()
	f.Inner.ResetStats()
}

// Close implements Conn.
func (f *FaultyConn) Close() error { return f.Inner.Close() }
