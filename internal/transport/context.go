package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Context-aware TCP entrypoints. Cancelling the context aborts an
// in-flight dial or accept and unblocks any Send/Recv on the returned
// connection by closing it — the mechanism by which the engine's public
// TCP API honours deadlines and shutdown.

// DialContext connects to a listening party at addr, retrying until the
// timeout elapses or ctx is cancelled (whichever is sooner), so the two
// party processes may start in either order. Failed attempts back off
// exponentially (25 ms base, 1 s cap) with deterministic jitter derived
// from the address, so a fleet of clients recovering from a provider
// restart spreads its reconnects instead of stampeding. The returned Conn
// is bound to ctx: cancellation closes it.
func DialContext(ctx context.Context, addr string, timeout time.Duration) (Conn, error) {
	deadline := time.Now().Add(timeout)
	seed := mix64(uint64(len(addr)))
	for _, b := range []byte(addr) {
		seed = mix64(seed ^ uint64(b))
	}
	var d net.Dialer
	for attempt := 0; ; attempt++ {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return bindContext(ctx, NewNetConn(c)), nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		wait := BackoffDelay(attempt, 25*time.Millisecond, time.Second, seed)
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
		case <-t.C:
		}
	}
}

// Listener accepts framed party connections; unlike the one-shot Listen it
// stays open, so a server can host many concurrent sessions.
type Listener struct {
	l    net.Listener
	mu   sync.Mutex
	lim  Limits
	wrap func(Conn) Conn
}

// SetConnWrap installs a decorator applied to every subsequently
// accepted connection, inside the context binding — cancellation still
// severs the real transport through the decorator's Unwrap chain. The
// fleet chaos harness uses it to route all of a backend's connections
// through one process-level fault injector; nil removes the decorator.
func (l *Listener) SetConnWrap(w func(Conn) Conn) {
	l.mu.Lock()
	l.wrap = w
	l.mu.Unlock()
}

// SetLimits applies per-connection resource limits (idle timeout, memory
// budget) to every subsequently accepted connection. Connections already
// accepted keep the limits they were born with.
func (l *Listener) SetLimits(lim Limits) {
	l.mu.Lock()
	l.lim = lim
	l.mu.Unlock()
}

func (l *Listener) limits() (Limits, func(Conn) Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lim, l.wrap
}

// NewListener starts listening on addr.
func NewListener(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful with ":0" ephemeral ports).
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting; a blocked Accept returns an error.
func (l *Listener) Close() error { return l.l.Close() }

// Accept blocks for the next peer connection. Cancelling ctx closes the
// listener and returns ctx's error. The returned Conn is bound to ctx.
func (l *Listener) Accept(ctx context.Context) (Conn, error) {
	return l.AcceptSession(ctx, ctx)
}

// AcceptSession accepts under acceptCtx while binding the returned Conn
// to connCtx. Splitting the two is what makes graceful shutdown possible:
// a server cancels acceptCtx the moment shutdown begins (no new sessions)
// but keeps connCtx alive through a drain grace period, so in-flight
// sessions finish instead of dying mid-protocol.
func (l *Listener) AcceptSession(acceptCtx, connCtx context.Context) (Conn, error) {
	stop := make(chan struct{})
	defer close(stop)
	if acceptCtx.Done() != nil {
		go func() {
			select {
			case <-acceptCtx.Done():
				l.l.Close()
			case <-stop:
			}
		}()
	}
	c, err := l.l.Accept()
	if err != nil {
		if acceptCtx.Err() != nil {
			return nil, acceptCtx.Err()
		}
		return nil, err
	}
	lim, wrap := l.limits()
	conn := Conn(NewNetConnLimits(c, lim))
	if wrap != nil {
		conn = wrap(conn)
	}
	return bindContext(connCtx, conn), nil
}

// WithContext couples an existing Conn's lifetime to ctx: cancellation
// closes the connection, failing any blocked Send/Recv. Servers use it to
// impose per-session deadlines on already-accepted connections.
func WithContext(ctx context.Context, c Conn) Conn { return bindContext(ctx, c) }

// ctxConn couples a Conn's lifetime to a context: a watchdog closes the
// underlying connection on cancellation, failing any blocked Send/Recv.
type ctxConn struct {
	Conn
	stop chan struct{}
	once sync.Once
}

func bindContext(ctx context.Context, c Conn) Conn {
	if ctx.Done() == nil {
		return c
	}
	cc := &ctxConn{Conn: c, stop: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-cc.stop:
		}
	}()
	return cc
}

func (c *ctxConn) Close() error {
	c.once.Do(func() { close(c.stop) })
	return c.Conn.Close()
}

// Unwrap exposes the decorated Conn so budget and deadline requests
// (ReserveBudget, SetRecvDeadline) reach the transport under the
// context binding.
func (c *ctxConn) Unwrap() Conn { return c.Conn }
