package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Context-aware TCP entrypoints. Cancelling the context aborts an
// in-flight dial or accept and unblocks any Send/Recv on the returned
// connection by closing it — the mechanism by which the engine's public
// TCP API honours deadlines and shutdown.

// DialContext connects to a listening party at addr, retrying until the
// timeout elapses or ctx is cancelled (whichever is sooner), so the two
// party processes may start in either order. The returned Conn is bound
// to ctx: cancellation closes it.
func DialContext(ctx context.Context, addr string, timeout time.Duration) (Conn, error) {
	deadline := time.Now().Add(timeout)
	var d net.Dialer
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return bindContext(ctx, NewNetConn(c)), nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Listener accepts framed party connections; unlike the one-shot Listen it
// stays open, so a server can host many concurrent sessions.
type Listener struct {
	l net.Listener
}

// NewListener starts listening on addr.
func NewListener(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful with ":0" ephemeral ports).
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting; a blocked Accept returns an error.
func (l *Listener) Close() error { return l.l.Close() }

// Accept blocks for the next peer connection. Cancelling ctx closes the
// listener and returns ctx's error. The returned Conn is bound to ctx.
func (l *Listener) Accept(ctx context.Context) (Conn, error) {
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				l.l.Close()
			case <-stop:
			}
		}()
	}
	c, err := l.l.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return bindContext(ctx, NewNetConn(c)), nil
}

// ctxConn couples a Conn's lifetime to a context: a watchdog closes the
// underlying connection on cancellation, failing any blocked Send/Recv.
type ctxConn struct {
	Conn
	stop chan struct{}
	once sync.Once
}

func bindContext(ctx context.Context, c Conn) Conn {
	if ctx.Done() == nil {
		return c
	}
	cc := &ctxConn{Conn: c, stop: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-cc.stop:
		}
	}()
	return cc
}

func (c *ctxConn) Close() error {
	c.once.Do(func() { close(c.stop) })
	return c.Conn.Close()
}
