package transport

import (
	"errors"
	"sync"
	"testing"
)

func TestStatsSub(t *testing.T) {
	prev := Stats{BytesSent: 100, BytesRecv: 40, MsgsSent: 3, MsgsRecv: 2, Rounds: 1}
	cur := Stats{BytesSent: 250, BytesRecv: 90, MsgsSent: 7, MsgsRecv: 5, Rounds: 3, SendErrs: 1}
	d := cur.Sub(prev)
	want := Stats{BytesSent: 150, BytesRecv: 50, MsgsSent: 4, MsgsRecv: 3, Rounds: 2, SendErrs: 1}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
	// A reset between the two snapshots makes prev > cur; the delta must
	// saturate rather than wrap to ~2^64.
	if g := prev.Sub(cur); g.BytesSent != 0 || g.Rounds != 0 {
		t.Errorf("saturating Sub = %+v, want zeros", g)
	}
	// Sub is the inverse of Add on monotone counters.
	sum := prev
	sum.Add(want)
	if sum != cur {
		t.Errorf("prev + (cur−prev) = %+v, want %+v", sum, cur)
	}
}

// TestStatsConcurrentSnapshots hammers one endpoint with concurrent sends,
// receives and snapshots (run under -race): every snapshot must be
// internally consistent — whole operations only, rounds never ahead of
// receives — and consecutive snapshots must be monotone so span deltas
// (Sub of two snapshots) are always meaningful.
func TestStatsConcurrentSnapshots(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const msgs = 300
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // a sends to b
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			mustSend(t, a, payload)
		}
	}()
	go func() { // b echoes back, so a's recv path and round logic run too
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			mustSend(t, b, mustRecv(t, b))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			mustRecv(t, a)
		}
	}()

	stop := make(chan struct{})
	snapErr := make(chan error, 1)
	go func() {
		var prev Stats
		for {
			s := a.Stats()
			switch {
			case s.BytesSent%uint64(len(payload)) != 0 || s.BytesRecv%uint64(len(payload)) != 0:
				snapErr <- errors.New("snapshot caught a partial message")
				return
			case s.Rounds > s.MsgsRecv:
				snapErr <- errors.New("rounds counted ahead of receives")
				return
			case s.Sub(prev) != s.Sub(prev): // exercise Sub under race
				snapErr <- errors.New("unreachable")
				return
			case s.BytesSent < prev.BytesSent || s.BytesRecv < prev.BytesRecv || s.Rounds < prev.Rounds:
				snapErr <- errors.New("snapshot went backwards")
				return
			}
			prev = s
			select {
			case <-stop:
				snapErr <- nil
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err := <-snapErr; err != nil {
		t.Fatal(err)
	}
	final := a.Stats()
	if final.MsgsSent != msgs || final.MsgsRecv != msgs {
		t.Errorf("final stats %+v, want %d msgs each way", final, msgs)
	}
}

// TestFaultyConnStats is the regression test for injected-fault
// accounting: failures must surface in SendErrs/RecvErrs without touching
// the byte/message/round counters the telemetry spans attribute.
func TestFaultyConnStats(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := NewFaultyConn(a, 3, false)
	mustSend(t, f, []byte{1, 2, 3})
	mustSend(t, b, []byte{9})
	mustRecv(t, f)
	mustSend(t, f, []byte{4})
	clean := f.Stats()

	if err := f.Send([]byte{5}); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget exhausted send = %v", err)
	}
	if _, err := f.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget exhausted recv = %v", err)
	}
	got := f.Stats()
	if got.SendErrs != clean.SendErrs+1 || got.RecvErrs != clean.RecvErrs+1 {
		t.Errorf("injected errs not counted: %+v (before: %+v)", got, clean)
	}
	// Byte attribution is unchanged by the injected failures.
	got.SendErrs, got.RecvErrs = clean.SendErrs, clean.RecvErrs
	if got != clean {
		t.Errorf("injected faults skewed byte attribution: %+v vs %+v", got, clean)
	}
	// The delta across the faulty window shows only the failures.
	d := f.Stats().Sub(clean)
	if d.TotalBytes() != 0 || d.SendErrs != 1 || d.RecvErrs != 1 {
		t.Errorf("faulty-window delta = %+v", d)
	}
	// ResetStats clears the injected counters along with the inner ones.
	f.ResetStats()
	if s := f.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
}
