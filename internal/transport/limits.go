package transport

import (
	"errors"
	"fmt"
	"time"
)

// Hostile-peer resource governance. The protocol above this package is
// proven in the semi-honest model, but a listening provider accepts raw
// TCP bytes from parties it cannot assume are honest: a peer may announce
// absurd frame lengths, trickle one byte per minute, or open a session
// and never speak. Limits turn each of those attacks into a typed,
// bounded failure instead of an OOM or a wedged goroutine. See
// docs/robustness.md, "Threat model".

// Limits bounds what one peer may cost this endpoint. The zero value
// imposes no limits (the historical behaviour).
type Limits struct {
	// IdleTimeout is the longest the peer may go without delivering (or
	// accepting) bytes during a single Send/Recv. Large frames are moved
	// in segments with the deadline re-armed per segment, so the timeout
	// bounds peer *stall* time, not total transfer time: a slow-loris
	// peer dies after IdleTimeout while a slow-but-steady bulk transfer
	// proceeds. 0 disables the deadline.
	IdleTimeout time.Duration
	// MemBudget caps the cumulative bytes this endpoint will agree to
	// receive over the connection's lifetime, charged per peer-declared
	// length *before* any allocation. 0 disables the budget.
	MemBudget uint64
}

// ErrIdleTimeout marks a Send/Recv that died because the peer stopped
// making progress for longer than Limits.IdleTimeout (or an explicit
// receive deadline). It classifies as transient: the stall may be a
// network fault rather than an attack, and a retry against a healthy
// peer can succeed.
var ErrIdleTimeout = errors.New("transport: peer idle timeout")

// ErrServerBusy is the typed load-shedding rejection a server sends when
// its admission limit is reached. It classifies as transient, so a
// client's retry/backoff loop treats a shed session exactly like a
// momentary network failure and tries again once a slot may have freed.
var ErrServerBusy = errors.New("transport: server busy, session shed")

// FrameError reports a frame whose declared length violates a hard bound
// — the wire is malformed or the peer is hostile, so it is permanent.
type FrameError struct {
	Op       string // "send" or "recv"
	Declared uint64 // the announced payload length
	Limit    uint64 // the bound it violated
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("transport: %s frame declares %d bytes, limit %d", e.Op, e.Declared, e.Limit)
}

// BudgetError reports a receive that would push the connection past its
// Limits.MemBudget. Permanent: replaying the same session declares the
// same bytes.
type BudgetError struct {
	Declared uint64 // bytes the rejected operation asked for
	Used     uint64 // budget already consumed
	Budget   uint64 // the session's total allowance
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("transport: session memory budget exhausted: %d bytes requested with %d/%d used",
		e.Declared, e.Used, e.Budget)
}

// Unwrapper is implemented by Conn decorators (context binding, fault
// injection) so budget and deadline requests can reach the transport
// that actually owns the socket.
type Unwrapper interface {
	Unwrap() Conn
}

// unwrapNet walks the decorator chain down to the framed network
// transport, or nil when the chain bottoms out elsewhere (an in-memory
// pipe, a test double).
func unwrapNet(c Conn) *netConn {
	for c != nil {
		if nc, ok := c.(*netConn); ok {
			return nc
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// ReserveBudget charges n bytes against the connection's memory budget
// before the caller allocates them, returning a *BudgetError when the
// budget would be exceeded. Connections without a budget (no Limits, an
// in-memory pipe) accept every reservation. Protocol layers that
// reassemble multi-frame payloads call this with the peer-declared total
// so a hostile header is rejected before a single byte is buffered.
func ReserveBudget(c Conn, n uint64) error {
	if nc := unwrapNet(c); nc != nil {
		return nc.reserve(n)
	}
	return nil
}

// SetRecvDeadline arms (or, with the zero time, clears) an explicit
// deadline for subsequent Recv calls on the connection, reporting
// whether the underlying transport supports one. The engine uses it to
// bound the handshake hello read independently of the steady-state
// IdleTimeout; whichever deadline is sooner wins.
func SetRecvDeadline(c Conn, t time.Time) bool {
	if nc := unwrapNet(c); nc != nil {
		nc.setRecvDeadline(t)
		return true
	}
	return false
}
