package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
)

// mustSend / mustRecv fail the test on a transport error, keeping the
// sendcheck invariant (no dropped transport errors) in the tests too.
func mustSend(t testing.TB, c Conn, p []byte) {
	t.Helper()
	if err := c.Send(p); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func mustRecv(t testing.TB, c Conn) []byte {
	t.Helper()
	p, err := c.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return p
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello 2pc")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestPipeCopiesPayload(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte{1, 2, 3}
	mustSend(t, a, msg)
	msg[0] = 99 // mutate after send
	got := mustRecv(t, b)
	if got[0] != 1 {
		t.Error("Send did not copy the payload")
	}
}

func TestPipeStatsAndRounds(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	mustSend(t, a, make([]byte, 10))
	mustSend(t, a, make([]byte, 20))
	mustRecv(t, b)
	mustRecv(t, b)
	mustSend(t, b, make([]byte, 5))
	mustRecv(t, a)
	sa, sb := a.Stats(), b.Stats()
	if sa.BytesSent != 30 || sa.MsgsSent != 2 || sa.BytesRecv != 5 {
		t.Errorf("a stats %+v", sa)
	}
	if sa.Rounds != 1 { // a: send,send,recv → one direction change
		t.Errorf("a rounds = %d", sa.Rounds)
	}
	if sb.Rounds != 0 { // b only receives then sends
		t.Errorf("b rounds = %d", sb.Rounds)
	}
	if sa.MiB() <= 0 {
		t.Error("MiB should be positive")
	}
	a.ResetStats()
	if a.Stats().TotalBytes() != 0 {
		t.Error("ResetStats did not zero")
	}
}

func TestPipeCloseUnblocks(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after peer close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on peer close")
	}
	if err := a.Send([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed conn = %v", err)
	}
}

func TestPackUnpackWidths(t *testing.T) {
	g := prg.NewSeeded(1)
	for _, bits := range []uint{8, 12, 16, 24, 32, 48} {
		r := ring.New(bits)
		xs := g.Elems(100, r)
		p := PackElems(r, xs)
		if len(p) != 100*r.Bytes() {
			t.Errorf("ℓ=%d: packed %d bytes, want %d", bits, len(p), 100*r.Bytes())
		}
		got, err := UnpackElems(r, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("ℓ=%d: element %d mismatch", bits, i)
			}
		}
	}
}

func TestUnpackRejectsBadLength(t *testing.T) {
	r := ring.New(16)
	if _, err := UnpackElems(r, make([]byte, 5)); err == nil {
		t.Error("expected length error")
	}
}

func TestPackQuick(t *testing.T) {
	r := ring.New(14)
	f := func(raw []uint64) bool {
		xs := make([]uint64, len(raw))
		for i := range raw {
			xs[i] = r.Reduce(raw[i])
		}
		got, err := UnpackElems(r, PackElems(r, xs))
		if err != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExchangeOpen(t *testing.T) {
	r := ring.New(16)
	g := prg.NewSeeded(2)
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	x := g.Elems(32, r)
	y := g.Elems(32, r)
	var got0, got1 []uint64
	var err0, err1 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); got0, err0 = ExchangeOpen(a, r, 0, x) }()
	go func() { defer wg.Done(); got1, err1 = ExchangeOpen(b, r, 1, y) }()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	for i := range x {
		want := r.Add(x[i], y[i])
		if got0[i] != want || got1[i] != want {
			t.Fatalf("exchange open mismatch at %d", i)
		}
	}
}

func TestRecvElemsLengthCheck(t *testing.T) {
	r := ring.New(8)
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	SendElems(a, r, []uint64{1, 2, 3})
	if _, err := RecvElems(b, r, 5); err == nil {
		t.Error("expected element-count error")
	}
}

func TestTCPConn(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	var server Conn
	done := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err == nil {
			server = NewNetConn(c)
		}
		close(done)
	}()
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	l.Close()
	defer client.Close()
	defer server.Close()

	r := ring.New(24)
	g := prg.NewSeeded(3)
	xs := g.Elems(500, r)
	if err := SendElems(client, r, xs); err != nil {
		t.Fatal(err)
	}
	got, err := RecvElems(server, r, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatal("TCP round trip mismatch")
		}
	}
	// Empty frame.
	if err := server.Send(nil); err != nil {
		t.Fatal(err)
	}
	p, err := client.Recv()
	if err != nil || len(p) != 0 {
		t.Fatalf("empty frame: %v %v", p, err)
	}
	if client.Stats().BytesSent != uint64(500*r.Bytes()) {
		t.Errorf("client bytes sent = %d", client.Stats().BytesSent)
	}
}

func TestNetworkModel(t *testing.T) {
	m := GigabitLAN()
	// 1 MiB at 1 Gbps ≈ 8.39 ms, plus 2 rounds × 200 µs.
	d := m.Time(1<<20, 2)
	if d < 8*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("1 MiB + 2 rounds = %v", d)
	}
	if (NetworkModel{}).Time(1<<20, 5) != 0 {
		t.Error("zero model should cost nothing")
	}
	s := Stats{BytesSent: 1 << 20, Rounds: 2}
	if m.TimeForStats(s) != d {
		t.Error("TimeForStats mismatch")
	}
}

func TestFaultyConn(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := NewFaultyConn(a, 2, false)
	if err := f.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte{3}); !errors.Is(err, ErrInjected) {
		t.Errorf("third op = %v, want injected fault", err)
	}
	if _, err := f.Recv(); !errors.Is(err, ErrInjected) {
		t.Errorf("recv after budget = %v", err)
	}
}

func TestFaultyConnCorruption(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := NewFaultyConn(b, 1, true)
	mustSend(t, a, []byte{0, 0, 0})
	p, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 0xFF {
		t.Error("corruption not applied on final op")
	}
}

func BenchmarkPipeSendRecv(b *testing.B) {
	x, y := Pipe()
	defer x.Close()
	defer y.Close()
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		mustSend(b, x, payload)
		mustRecv(b, y)
	}
}

func BenchmarkPackElems16(b *testing.B) {
	r := ring.New(16)
	g := prg.NewSeeded(1)
	xs := g.Elems(4096, r)
	b.SetBytes(int64(len(xs) * r.Bytes()))
	for i := 0; i < b.N; i++ {
		PackElems(r, xs)
	}
}
