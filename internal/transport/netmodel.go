package transport

import "time"

// NetworkModel converts measured traffic into wall-clock time for the
// experiment tables, modelling the paper's deployment: two ZCU104 boards on
// a 1000 Mbps Ethernet LAN. Transfer time is bytes/bandwidth; every
// protocol round additionally pays one round-trip latency.
type NetworkModel struct {
	// BandwidthBitsPerSec is the link rate (default 1 Gbps).
	BandwidthBitsPerSec float64
	// RoundTrip is the per-round latency (LAN default 200 µs).
	RoundTrip time.Duration
}

// GigabitLAN is the paper's evaluation network.
func GigabitLAN() NetworkModel {
	return NetworkModel{BandwidthBitsPerSec: 1e9, RoundTrip: 200 * time.Microsecond}
}

// Time returns the modelled wire time for the given traffic.
func (m NetworkModel) Time(bytes uint64, rounds uint64) time.Duration {
	if m.BandwidthBitsPerSec <= 0 {
		return 0
	}
	transfer := time.Duration(float64(bytes*8) / m.BandwidthBitsPerSec * float64(time.Second))
	return transfer + time.Duration(rounds)*m.RoundTrip
}

// TimeForStats applies the model to an endpoint's counters. Only sent bytes
// are charged (the peer's send covers the other direction of the duplex
// link).
func (m NetworkModel) TimeForStats(s Stats) time.Duration {
	return m.Time(s.BytesSent, s.Rounds)
}
