package quant

import (
	"testing"

	"aq2pnn/internal/dataset"
	"aq2pnn/internal/engine"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/train"
)

// trainedStandin trains a small LeNet5 on the MNIST stand-in once and
// shares it across tests.
var cachedStandin *train.Standin
var cachedData *dataset.Dataset

func trainedStandin(t *testing.T) (*train.Standin, *dataset.Dataset) {
	t.Helper()
	if cachedStandin != nil {
		return cachedStandin, cachedData
	}
	ds, err := dataset.MNISTLike(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := prg.NewSeeded(12)
	s := train.NewLeNet5(rng, train.Max, 10)
	tr, _ := ds.Split(300)
	if err := s.Net.Fit(tr.X, tr.Y, rng, train.Config{Epochs: 5, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	cachedStandin, cachedData = s, ds
	return s, ds
}

func TestQuantizePreservesAccuracy(t *testing.T) {
	s, ds := trainedStandin(t)
	tr, te := ds.Split(300)
	floatAcc := s.Net.Accuracy(te.X, te.Y)
	if floatAcc < 0.5 {
		t.Fatalf("float stand-in only reached %.2f accuracy; training broken", floatAcc)
	}
	q, err := Quantize(s, Options{Calib: tr.X[:60], CarrierBits: 20})
	if err != nil {
		t.Fatal(err)
	}
	qAcc, err := EvalAccuracy(q, te.X, te.Y, nn.Exact, ring.Ring{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qAcc < floatAcc-0.10 {
		t.Errorf("8-bit quantized accuracy %.3f vs float %.3f", qAcc, floatAcc)
	}
	t.Logf("float %.3f, quantized-exact %.3f", floatAcc, qAcc)
}

func TestCarrierSweepShowsCliff(t *testing.T) {
	// The headline adaptive-quantization curve: accuracy holds on wide
	// carriers and collapses on narrow ones (Tables 7/8, Figs. 10/11
	// mechanism).
	s, ds := trainedStandin(t)
	tr, te := ds.Split(300)
	acc := map[uint]float64{}
	for _, bits := range []uint{24, 16, 10} {
		q, err := Quantize(s, Options{Calib: tr.X[:60], CarrierBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		a, err := EvalAccuracy(q, te.X, te.Y, nn.StochasticRing, ring.New(bits), 99)
		if err != nil {
			t.Fatal(err)
		}
		acc[bits] = a
	}
	t.Logf("accuracy by carrier: 24b=%.3f 16b=%.3f 10b=%.3f", acc[24], acc[16], acc[10])
	if acc[24] < 0.5 {
		t.Errorf("24-bit carrier accuracy %.3f too low", acc[24])
	}
	if acc[16] < acc[24]-0.15 {
		t.Errorf("16-bit carrier lost too much: %.3f vs %.3f", acc[16], acc[24])
	}
	if acc[10] > acc[24]-0.2 {
		t.Errorf("10-bit carrier did not collapse: %.3f vs %.3f", acc[10], acc[24])
	}
}

func TestReportFields(t *testing.T) {
	s, ds := trainedStandin(t)
	tr, _ := ds.Split(300)
	q, err := Quantize(s, Options{Calib: tr.X[:40], CarrierBits: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Report.Layers) != 5 { // 2 conv + 3 fc
		t.Fatalf("report has %d layers", len(q.Report.Layers))
	}
	for _, l := range q.Report.Layers {
		if l.Im < 1 || l.M <= 0 || l.MaxAccQ <= 0 {
			t.Errorf("layer %s report broken: %+v", l.Name, l)
		}
		if l.ScaleErr > 0.25 {
			t.Errorf("layer %s scale error %.3f", l.Name, l.ScaleErr)
		}
	}
	if q.Report.OverflowRisk() != 0 {
		t.Errorf("20-bit carrier should have headroom everywhere, risk=%d", q.Report.OverflowRisk())
	}
	for _, l := range q.Report.Layers {
		if l.InBits < 6 {
			t.Errorf("20-bit carrier starved layer %s to %d-bit activations", l.Name, l.InBits)
		}
	}
	// A starved carrier must force the adaptive plan below useful widths.
	q2, _ := Quantize(s, Options{Calib: tr.X[:40], CarrierBits: 10})
	starved := false
	for _, l := range q2.Report.Layers {
		if l.InBits <= 4 || l.WBits <= 4 {
			starved = true
		}
	}
	if !starved {
		t.Error("10-bit carrier did not force the bit-width plan down")
	}
	p := TruncWrapProbability(q2.Report.Layers[0], ring.New(10))
	if p <= 0 || p > 1 {
		t.Errorf("wrap probability %g", p)
	}
}

func TestQuantizedModelRunsUnder2PC(t *testing.T) {
	// The quantized stand-in must execute under the real protocol and
	// agree with the plaintext ring reference.
	if testing.Short() {
		t.Skip("full 2PC inference")
	}
	s, ds := trainedStandin(t)
	tr, te := ds.Split(300)
	q, err := Quantize(s, Options{Calib: tr.X[:40], CarrierBits: 20})
	if err != nil {
		t.Fatal(err)
	}
	x := q.QuantizeInput(te.X[0])
	res, err := engine.RunLocal(q.Model, x, engine.Options{CarrierBits: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Model.Forward(x, nn.ForwardOptions{Mode: nn.Ring, Carrier: ring.New(20)})
	if err != nil {
		t.Fatal(err)
	}
	if nn.Argmax(res.Logits) != nn.Argmax(want) {
		t.Errorf("secure argmax %d vs plaintext %d", nn.Argmax(res.Logits), nn.Argmax(want))
	}
}

func TestQuantizeValidation(t *testing.T) {
	s, _ := trainedStandin(t)
	if _, err := Quantize(s, Options{}); err == nil {
		t.Error("missing calibration set accepted")
	}
	if _, err := Quantize(s, Options{Calib: [][]float64{make([]float64, 28*28)}}); err == nil {
		t.Error("all-zero calibration accepted")
	}
}

func TestChooseDyadic(t *testing.T) {
	// Plenty of room: the dyadic approximation should be tight.
	im, ie := chooseDyadic(0.03, 1000, 1<<20, 1024)
	got := float64(im) / float64(int64(1)<<ie)
	if got < 0.029 || got > 0.031 {
		t.Errorf("dyadic(0.03) = %d/2^%d = %g", im, ie, got)
	}
	// Tight carrier: Im must shrink to respect the safety bound.
	im2, _ := chooseDyadic(0.03, 1000, 4000, 1024)
	if float64(im2)*1000 > 4000 {
		t.Errorf("safety bound violated: Im=%d", im2)
	}
	// Degenerate ratio still yields a usable scale.
	im3, _ := chooseDyadic(0, 10, 100, 1024)
	if im3 < 1 {
		t.Error("zero ratio produced Im<1")
	}
}

func TestQuantizeInputRoundTrip(t *testing.T) {
	q := &Quantized{InScale: 0.5}
	got := q.QuantizeInput([]float64{1.0, -0.25, 0})
	if got[0] != 2 || got[1] != -1 || got[2] != 0 {
		t.Errorf("QuantizeInput = %v", got)
	}
}

func TestOverflowStats(t *testing.T) {
	s, ds := trainedStandin(t)
	tr, te := ds.Split(300)
	q, err := Quantize(s, Options{Calib: tr.X[:40], CarrierBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Ample carrier: near-zero divergence.
	flips, pert, err := OverflowStats(q, te.X[:30], ring.New(24))
	if err != nil {
		t.Fatal(err)
	}
	if flips > 0.05 || pert > 0.02 {
		t.Errorf("24-bit carrier: flips %.3f perturbed %.4f", flips, pert)
	}
	// Deploying the 24-bit plan on a 10-bit ring (a broken configuration —
	// exactly what OverflowStats exists to expose) must show divergence:
	// the adaptive plan's intermediates need far more than 10 bits.
	flips10, pert10, err := OverflowStats(q, te.X[:30], ring.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if flips10 == 0 && pert10 == 0 {
		t.Error("mismatched 10-bit deployment shows no overflow at all")
	}
	if _, _, err := OverflowStats(q, nil, ring.New(24)); err == nil {
		t.Error("empty set accepted")
	}
}
