// Package quant implements AQ2PNN's adaptive quantization (Sec. 5): it
// converts a trained float network into a quantized nn.Model whose fused
// BNReQ operators carry dyadic scales (I_m, I_e) in the HAWQ-v3 style, and
// it adapts those scales to the target carrier ring — characterizing the
// calibration-time activation distribution and trading requantization
// precision against ring-overflow probability, exactly the
// "statistical analysis on the bit-width to avoid overflow" the paper
// describes.
package quant

import (
	"fmt"
	"math"
	"sort"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/prg"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
	"aq2pnn/internal/train"
)

// Options configures quantization.
type Options struct {
	// WeightBits is the weight width (default 8).
	WeightBits uint
	// ActBits is the activation width (default 8).
	ActBits uint
	// CarrierBits is the carrier ring the model will ride (ℓ in the
	// sweeps). The quantizer shapes I_m/I_e so intermediate magnitudes fit
	// it with headroom; when the carrier is too small no safe choice
	// exists and the model degrades — the measured 12-bit cliff.
	CarrierBits uint
	// Calib is the calibration set (float images).
	Calib [][]float64
	// ImMax caps the dyadic numerator (default 1024).
	ImMax int64
}

func (o Options) withDefaults() Options {
	if o.WeightBits == 0 {
		o.WeightBits = 8
	}
	if o.ActBits == 0 {
		o.ActBits = 8
	}
	if o.CarrierBits == 0 {
		o.CarrierBits = o.ActBits + 8
	}
	if o.ImMax == 0 {
		o.ImMax = 1024
	}
	return o
}

// LayerReport records one linear layer's quantization decisions.
type LayerReport struct {
	Name    string
	M       float64 // exact requant ratio Si·Sw/So
	Im      int64
	Ie      uint
	MaxAccQ float64 // calibrated max |accumulator| in quantized units
	// InBits / WBits are the adaptively chosen input-activation and weight
	// widths for this layer.
	InBits, WBits uint
	// HeadroomBits is log2(Q/2 / (MaxAccQ·Im)): negative values predict
	// overflow on the chosen carrier.
	HeadroomBits float64
	// ScaleErr is the relative dyadic approximation error.
	ScaleErr float64
}

// Report summarizes a quantization run.
type Report struct {
	InScale float64
	Layers  []LayerReport
}

// OverflowRisk counts layers whose calibrated magnitudes exceed the
// carrier's safe region.
func (r *Report) OverflowRisk() int {
	n := 0
	for _, l := range r.Layers {
		if l.HeadroomBits < 0 {
			n++
		}
	}
	return n
}

// Quantized couples the emitted model with its input scale and report.
type Quantized struct {
	Model   *nn.Model
	InScale float64
	Report  Report
}

// QuantizeInput converts a float image to the model's integer domain.
func (q *Quantized) QuantizeInput(x []float64) []int64 {
	out := make([]int64, len(x))
	for i, v := range x {
		out[i] = int64(math.Round(v / q.InScale))
	}
	return out
}

// Quantize converts a trained stand-in into a quantized model.
func Quantize(s *train.Standin, opts Options) (*Quantized, error) {
	opts = opts.withDefaults()
	if len(opts.Calib) == 0 {
		return nil, fmt.Errorf("quant: empty calibration set")
	}

	// Calibration: per-layer |activation| statistics. The paper's adaptive
	// quantization "characterizes the distribution of run-time activation";
	// we record both the absolute maximum (reported) and a reservoir-
	// sampled 99.9th percentile. Scales and ring-safety budgets use the
	// percentile: a vanishing fraction of elements may clip or wrap, which
	// is precisely the "reducing overflow probability" trade the paper
	// makes (as opposed to eliminating it with wasteful headroom).
	layerMax := make([]float64, len(s.Net.Layers))
	reservoirs := make([][]float64, len(s.Net.Layers))
	const reservoirCap = 8192
	inMax := 0.0
	stride := 1
	for _, x := range opts.Calib {
		for _, v := range x {
			if a := math.Abs(v); a > inMax {
				inMax = a
			}
		}
		cur := x
		for li, l := range s.Net.Layers {
			cur = l.Forward(cur, false)
			for k, v := range cur {
				a := math.Abs(v)
				if a > layerMax[li] {
					layerMax[li] = a
				}
				if k%stride == 0 && len(reservoirs[li]) < reservoirCap*4 {
					reservoirs[li] = append(reservoirs[li], a)
				}
			}
		}
	}
	if inMax == 0 {
		return nil, fmt.Errorf("quant: calibration inputs are all zero")
	}
	// layerP99 is the calibrated high percentile per layer (falls back to
	// the max for tiny reservoirs).
	layerP99 := make([]float64, len(s.Net.Layers))
	for li := range reservoirs {
		layerP99[li] = percentile(reservoirs[li], 0.999)
		if layerP99[li] == 0 {
			layerP99[li] = layerMax[li]
		}
	}

	// Adaptive bit-width planning (the core of Sec. 5): for each linear
	// layer, measure the scale-free accumulation gain
	// g = max|acc| / (max|in| · max|w|) and choose the input-activation and
	// weight widths so the quantized accumulator, times a requant
	// multiplier of useful precision (I_m ≈ 2^4), stays within the
	// carrier's safe quarter: 2^(aIn−1)·2^(w−1)·g·2^3 ≤ 2^(ℓc−2).
	// Wide carriers admit the requested widths; narrow carriers force the
	// widths down (and ultimately under the useful minimum — the cliff).
	type linPlan struct {
		layerIdx int
		gain     float64
		aIn, w   uint
	}
	var plans []linPlan
	{
		prevMax := inMax
		for li, l := range s.Net.Layers {
			var wAbs float64
			switch layer := l.(type) {
			case *train.ConvLayer:
				wAbs = maxAbs(layer.W)
			case *train.FCLayer:
				wAbs = maxAbs(layer.W)
			default:
				continue
			}
			if wAbs == 0 {
				wAbs = 1
			}
			inM := prevMax
			if inM == 0 {
				inM = 1
			}
			gain := layerP99[li] / (inM * wAbs)
			if gain < 1 {
				gain = 1
			}
			budget := float64(opts.CarrierBits) - 5 - math.Log2(gain) // aIn-1 + w-1 ≤ budget
			aIn, w := splitBits(budget, opts.ActBits, opts.WeightBits)
			plans = append(plans, linPlan{layerIdx: li, gain: gain, aIn: aIn, w: w})
			prevMax = layerP99[li]
		}
	}
	planFor := func(li int) (linPlan, bool) {
		for _, p := range plans {
			if p.layerIdx == li {
				return p, true
			}
		}
		return linPlan{}, false
	}

	firstBits := opts.ActBits
	if len(plans) > 0 {
		firstBits = plans[0].aIn
	}
	inScale := inMax / (math.Pow(2, float64(firstBits)-1) - 1)

	model := &nn.Model{
		Name: s.Name, InC: s.InC, InH: s.InH, InW: s.InW, InBits: firstBits,
	}
	rep := Report{InScale: inScale}
	curScale := inScale
	curShape := tensor.Shape{s.InC, s.InH, s.InW}
	last := -1
	carrierSafe := math.Pow(2, float64(opts.CarrierBits)-2)

	push := func(op nn.Op, name string) {
		model.Nodes = append(model.Nodes, nn.Node{Op: op, Inputs: []int{last}, Name: name})
		last = len(model.Nodes) - 1
	}

	// quantLinear derives one layer's quantized parameters: the output
	// scale comes from the calibrated high percentile (soVal) while the
	// ring-safety constraint uses the absolute calibrated maximum
	// (safeMax), so calibration-time values cannot breach the faithful-
	// truncation contract.
	quantLinear := func(name string, w, b []float64, soVal, safeMax float64, inBits, wBits, outBits uint) (wq, bq []int64, im int64, ie uint) {
		wAbs := maxAbs(w)
		if wAbs == 0 {
			wAbs = 1
		}
		wLimit := math.Pow(2, float64(wBits)-1) - 1
		sw := wAbs / wLimit
		outMaxQ := math.Pow(2, float64(outBits)-1) - 1
		if soVal == 0 {
			soVal = safeMax
		}
		so := layerScale(soVal, outMaxQ)
		m := curScale * sw / so
		maxAccQ := safeMax / (curScale * sw)
		if maxAccQ < 1 {
			maxAccQ = 1
		}
		im, ie = chooseDyadic(m, maxAccQ, carrierSafe, opts.ImMax)
		wq = make([]int64, len(w))
		for i, v := range w {
			wq[i] = clampRound(v/sw, wLimit)
		}
		if b != nil {
			bq = make([]int64, len(b))
			for i, v := range b {
				bq[i] = int64(math.Round(v / (curScale * sw)))
			}
		}
		scaled := float64(im) / math.Pow(2, float64(ie))
		scaleErr := 0.0
		if m > 0 {
			scaleErr = math.Abs(scaled-m) / m
		}
		rep.Layers = append(rep.Layers, LayerReport{
			Name: name, M: m, Im: im, Ie: ie, MaxAccQ: maxAccQ,
			InBits: inBits, WBits: wBits,
			HeadroomBits: math.Log2(carrierSafe*2/(maxAccQ*float64(im))) - 1,
			ScaleErr:     scaleErr,
		})
		curScale = so
		return wq, bq, im, ie
	}

	// outBitsFor returns the activation width of the tensor leaving linear
	// layer k: the next linear layer's planned input width (or the
	// requested width for the logits).
	outBitsFor := func(planIdx int) uint {
		if planIdx+1 < len(plans) {
			return plans[planIdx+1].aIn
		}
		return opts.ActBits
	}

	flattened := false
	planIdx := -1
	for li, l := range s.Net.Layers {
		switch layer := l.(type) {
		case *train.ConvLayer:
			planIdx++
			pl, _ := planFor(li)
			g := layer.Geom
			name := fmt.Sprintf("conv%d", li)
			wq, bq, im, ie := quantLinear(name, layer.W, layer.B, layerP99[li], layerMax[li], pl.aIn, pl.w, outBitsFor(planIdx))
			ims := make([]int64, g.OutC)
			for i := range ims {
				ims[i] = im
			}
			push(&nn.Conv{Geom: g, W: wq, Bias: bq, Im: ims, Ie: ie}, name)
			curShape = tensor.Shape{g.OutC, g.OutH(), g.OutW()}
		case *train.FCLayer:
			if !flattened && len(curShape) > 1 {
				push(nn.Flatten{}, fmt.Sprintf("flatten%d", li))
				curShape = tensor.Shape{curShape.Numel()}
				flattened = true
			}
			planIdx++
			pl, _ := planFor(li)
			name := fmt.Sprintf("fc%d", li)
			wq, bq, im, ie := quantLinear(name, layer.W, layer.B, layerP99[li], layerMax[li], pl.aIn, pl.w, outBitsFor(planIdx))
			ims := make([]int64, layer.Out)
			for i := range ims {
				ims[i] = im
			}
			push(&nn.FC{In: layer.In, Out: layer.Out, W: wq, Bias: bq, Im: ims, Ie: ie}, name)
			curShape = tensor.Shape{layer.Out}
		case *train.ReLULayer:
			push(nn.ReLU{}, fmt.Sprintf("relu%d", li))
		case *train.MaxPoolLayer:
			push(&nn.MaxPool{Geom: layer.Geom}, fmt.Sprintf("maxpool%d", li))
			curShape = tensor.Shape{layer.Geom.InC, layer.Geom.OutH(), layer.Geom.OutW()}
		case *train.AvgPoolLayer:
			push(&nn.AvgPool{Geom: layer.Geom}, fmt.Sprintf("avgpool%d", li))
			curShape = tensor.Shape{layer.Geom.InC, layer.Geom.OutH(), layer.Geom.OutW()}
		default:
			return nil, fmt.Errorf("quant: unsupported layer %T", l)
		}
	}
	if _, err := model.Shapes(); err != nil {
		return nil, fmt.Errorf("quant: emitted model invalid: %w", err)
	}
	return &Quantized{Model: model, InScale: inScale, Report: rep}, nil
}

func layerScale(maxAbsVal, actMax float64) float64 {
	if maxAbsVal == 0 {
		return 1 / actMax
	}
	return maxAbsVal / actMax
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// splitBits divides a (aIn−1)+(w−1) bit budget between activations and
// weights, favouring activations slightly, clamped to the requested widths
// and a floor of 2 bits each.
func splitBits(budget float64, reqAct, reqW uint) (aIn, w uint) {
	if budget < 2 {
		budget = 2
	}
	b := int(budget)
	a := (b + 1) / 2
	ww := b - a
	aIn = uint(a) + 1
	w = uint(ww) + 1
	if aIn > reqAct {
		spare := aIn - reqAct
		aIn = reqAct
		w += spare
	}
	if w > reqW {
		spare := w - reqW
		w = reqW
		if aIn+spare <= reqAct {
			aIn += spare
		} else {
			aIn = reqAct
		}
	}
	if aIn < 2 {
		aIn = 2
	}
	if w < 2 {
		w = 2
	}
	return aIn, w
}

func clampRound(v, limit float64) int64 {
	r := math.Round(v)
	if r > limit {
		r = limit
	}
	if r < -limit {
		r = -limit
	}
	return int64(r)
}

// chooseDyadic picks (Im, Ie) ≈ m·2^Ie / 2^Ie under two constraints: the
// dyadic numerator stays below imMax, and the calibrated pre-truncation
// magnitude maxAccQ·Im stays inside the carrier's safe region. When no Ie
// satisfies the safety constraint the smallest representable choice is
// returned and overflow is accepted (and reported).
func chooseDyadic(m, maxAccQ, carrierSafe float64, imMax int64) (int64, uint) {
	if m <= 0 {
		return 1, 0
	}
	for ie := uint(24); ; ie-- {
		im := int64(math.Round(m * math.Pow(2, float64(ie))))
		if im >= 1 && im <= imMax && maxAccQ*float64(im) <= carrierSafe {
			return im, ie
		}
		if ie == 0 {
			break
		}
	}
	// No safe choice: best-precision representable fallback.
	for ie := uint(24); ; ie-- {
		im := int64(math.Round(m * math.Pow(2, float64(ie))))
		if im >= 1 && im <= imMax {
			return im, ie
		}
		if ie == 0 {
			return 1, 0
		}
	}
}

// EvalAccuracy scores a quantized model on float images under the chosen
// execution mode. For StochasticRing the provided seed drives the share
// randomness.
func EvalAccuracy(q *Quantized, xs [][]float64, ys []int, mode nn.ExecMode, carrier ring.Ring, seed uint64) (float64, error) {
	opt := nn.ForwardOptions{Mode: mode, Carrier: carrier}
	if mode == nn.StochasticRing {
		opt.Rng = prg.NewSeeded(seed)
	}
	correct := 0
	for i := range xs {
		logits, err := q.Model.Forward(q.QuantizeInput(xs[i]), opt)
		if err != nil {
			return 0, err
		}
		if nn.Argmax(logits) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}

// TruncWrapProbability estimates, from the calibration report, the
// per-element probability that the 2PC share truncation wraps at a given
// layer: ≈ |acc·Im| / Q.
func TruncWrapProbability(l LayerReport, carrier ring.Ring) float64 {
	p := l.MaxAccQ * float64(l.Im) / float64(carrier.Q())
	if p > 1 {
		return 1
	}
	return p
}

// percentile returns the q-quantile of the (unsorted) sample set.
func percentile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	cp := append([]float64(nil), sample...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

// OverflowStats empirically measures, on a calibration set, how often the
// quantized model's ring-wrapped execution diverges from ideal int64
// arithmetic — the observable consequence of carrier overflow. It returns
// the fraction of inputs whose argmax changes and the mean fraction of
// perturbed logits.
func OverflowStats(q *Quantized, xs [][]float64, carrier ring.Ring) (argmaxFlips, logitPerturbed float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("quant: empty evaluation set")
	}
	flips := 0
	var perturbed, total float64
	for _, x := range xs {
		in := q.QuantizeInput(x)
		ideal, err := q.Model.Forward(in, nn.ForwardOptions{Mode: nn.Exact})
		if err != nil {
			return 0, 0, err
		}
		wrapped, err := q.Model.Forward(in, nn.ForwardOptions{Mode: nn.Ring, Carrier: carrier})
		if err != nil {
			return 0, 0, err
		}
		if nn.Argmax(ideal) != nn.Argmax(wrapped) {
			flips++
		}
		for i := range ideal {
			total++
			if ideal[i] != wrapped[i] {
				perturbed++
			}
		}
	}
	return float64(flips) / float64(len(xs)), perturbed / total, nil
}
