package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aq2pnn/internal/transport"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds the fixed span tree behind the golden file: a
// deterministic clock, deterministic span IDs and fixed payload sizes
// make the exported JSON byte-stable.
func goldenTrace(t *testing.T) *Tracer {
	t.Helper()
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	tr := NewWithClock(stepClock())
	root := tr.Root("infer", WithConn(a), WithAttrs(String("model", "lenet5"), Int("bits", 14)))
	conv := root.Child("layer.conv1")
	mustSendN(t, a, 96)
	mustSendN(t, b, 32)
	mustRecvN(t, a)
	conv.End()
	relu := root.Child("layer.relu1", WithAttrs(Int("ring_bits", 14)))
	mustSendN(t, a, 48)
	relu.End()
	root.End()
	local := tr.Root("precompute") // no conn: args carry attrs only
	local.End()
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTrace(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON deviates from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceShape validates the structural schema every consumer
// (chrome://tracing, the CI trace check) relies on, independent of the
// exact golden bytes.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTrace(t)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			for _, key := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[key]; !ok {
					t.Errorf("complete event missing %q: %v", key, ev)
				}
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected event phase %v", ev["ph"])
		}
	}
	if complete != 4 || meta != 2 {
		t.Errorf("got %d complete / %d metadata events, want 4 / 2", complete, meta)
	}
}

func TestChromeTraceNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}
