package telemetry

import (
	"fmt"

	"aq2pnn/internal/report"
)

// LayerTable renders the direct children of each root span — the
// per-layer spans of an inference — as an aligned text table in the
// style of the paper's cost breakdowns, reusing internal/report. Spans
// with connections also report their communication delta; the footnote
// totals those deltas so the table can be checked against the session's
// transport.Stats by eye. A nil tracer yields an empty table.
func LayerTable(t *Tracer) *report.Table {
	tb := &report.Table{
		Title:  "per-layer telemetry",
		Header: []string{"lane", "span", "ms", "sent B", "recv B", "rounds"},
	}
	spans := t.Spans()
	roots := map[uint64]bool{}
	for _, r := range spans {
		if r.Parent == 0 {
			roots[r.ID] = true
		}
	}
	var total, rootTotal uint64
	for _, r := range spans {
		if r.Parent == 0 && r.HasConn {
			rootTotal += r.Comm.TotalBytes()
		}
		if !roots[r.Parent] {
			continue
		}
		sent, recv, rounds := "-", "-", "-"
		if r.HasConn {
			sent = fmt.Sprintf("%d", r.Comm.BytesSent)
			recv = fmt.Sprintf("%d", r.Comm.BytesRecv)
			rounds = fmt.Sprintf("%d", r.Comm.Rounds)
			total += r.Comm.TotalBytes()
		}
		tb.AddRow(fmt.Sprintf("%d", r.Lane), r.Name,
			report.F(float64(r.Dur().Nanoseconds())/1e6, 3), sent, recv, rounds)
	}
	tb.AddNote("layer-span traffic totals %d B (root spans: %d B)", total, rootTotal)
	return tb
}
