package telemetry

import (
	"strings"
	"testing"
)

func TestLayerTable(t *testing.T) {
	out := LayerTable(goldenTrace(t)).String()
	for _, want := range []string{
		"per-layer telemetry",
		"layer.conv1",
		"layer.relu1",
		"96", // conv1 bytes sent
		"48", // relu1 bytes sent
		"layer-span traffic totals 176 B (root spans: 176 B)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Roots themselves are not rows — only their direct children.
	for _, row := range []string{"\ninfer", "precompute"} {
		if strings.Contains(out, row) {
			t.Errorf("table should not list root span %q:\n%s", strings.TrimSpace(row), out)
		}
	}
}

func TestLayerTableNil(t *testing.T) {
	if out := LayerTable(nil).String(); !strings.Contains(out, "per-layer telemetry") {
		t.Errorf("nil-tracer table: %q", out)
	}
}
