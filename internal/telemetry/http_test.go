package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("triples_consumed_total").Add(42)
	r.Histogram("layer_seconds", DurationBuckets).Observe(0.02)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status=%d err=%v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"triples_consumed_total 42",
		`layer_seconds_bucket{le="0.03"} 1`,
		"layer_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// The profiling index must be reachable on the same handler.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: status=%d", resp.StatusCode)
	}
}

func TestStartMetricsServerLoopbackDefault(t *testing.T) {
	bound, stop, err := StartMetricsServer(":0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if !strings.HasPrefix(bound, "127.0.0.1:") {
		t.Errorf("host-less addr bound to %q, want loopback", bound)
	}
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStartMetricsServerBadAddr(t *testing.T) {
	if _, _, err := StartMetricsServer("no-port", NewRegistry()); err == nil {
		t.Fatal("expected an error for a port-less address")
	}
}
