package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("Trace Event
// Format", the JSON consumed by chrome://tracing and Perfetto). Complete
// events use ph="X" with microsecond ts/dur; metadata events (ph="M") name
// the lane rows. encoding/json marshals the Args map with sorted keys, so
// the emitted bytes are deterministic under a deterministic clock.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the tracer's finished spans as Chrome
// trace-event JSON (one complete event per span, one lane per root span).
// Open the output at chrome://tracing or https://ui.perfetto.dev. A nil
// tracer writes an empty trace, which both viewers accept.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+4)
	laneNamed := map[uint64]bool{}
	for _, r := range spans {
		if r.Parent == 0 && !laneNamed[r.Lane] {
			laneNamed[r.Lane] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: r.Lane,
				Args: map[string]any{"name": fmt.Sprintf("%s (lane %d)", r.Name, r.Lane)},
			})
		}
		dur := float64(r.Dur().Nanoseconds()) / 1e3
		ev := chromeEvent{
			Name: r.Name, Ph: "X",
			Ts: float64(r.Start.Nanoseconds()) / 1e3, Dur: &dur,
			Pid: 1, Tid: r.Lane,
		}
		{
			// span.id / span.parent let offline consumers (cmd/tracecheck)
			// rebuild the exact span tree instead of guessing containment
			// from timestamps; trace viewers show them as plain args.
			ev.Args = map[string]any{"span.id": r.ID}
			if r.Parent != 0 {
				ev.Args["span.parent"] = r.Parent
			}
			for _, a := range r.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if r.HasConn {
				ev.Args["comm.bytes_sent"] = r.Comm.BytesSent
				ev.Args["comm.bytes_recv"] = r.Comm.BytesRecv
				ev.Args["comm.msgs_sent"] = r.Comm.MsgsSent
				ev.Args["comm.msgs_recv"] = r.Comm.MsgsRecv
				ev.Args["comm.rounds"] = r.Comm.Rounds
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: events, Unit: "ms"})
}
