package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"aq2pnn/internal/transport"
)

// stepClock returns a deterministic clock advancing 1 ms per reading.
func stepClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func mustSendN(t *testing.T, c transport.Conn, n int) {
	t.Helper()
	if err := c.Send(make([]byte, n)); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func mustRecvN(t *testing.T, c transport.Conn) {
	t.Helper()
	if _, err := c.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
}

func TestSpanCommDelta(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	tr := NewWithClock(stepClock())

	root := tr.Root("infer", WithConn(a), WithAttrs(String("model", "lenet5")))
	conv := root.Child("conv1") // inherits the connection
	mustSendN(t, a, 100)
	mustSendN(t, b, 40)
	mustRecvN(t, a)
	conv.SetAttr("bits", int64(14))
	conv.End()
	relu := root.Child("relu1")
	mustSendN(t, a, 7)
	relu.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, r := range spans {
		byName[r.Name] = r
	}
	cv := byName["conv1"]
	if !cv.HasConn || cv.Comm.BytesSent != 100 || cv.Comm.BytesRecv != 40 || cv.Comm.Rounds != 1 {
		t.Errorf("conv1 comm = %+v", cv.Comm)
	}
	if rl := byName["relu1"]; rl.Comm.BytesSent != 7 || rl.Comm.BytesRecv != 0 {
		t.Errorf("relu1 comm = %+v", rl.Comm)
	}
	rt := byName["infer"]
	if rt.Comm != a.Stats() {
		t.Errorf("root comm %+v != session stats %+v", rt.Comm, a.Stats())
	}
	// The per-phase deltas partition the root's traffic exactly.
	var sum transport.Stats
	sum.Add(cv.Comm)
	sum.Add(byName["relu1"].Comm)
	if sum != rt.Comm {
		t.Errorf("child deltas %+v do not sum to root %+v", sum, rt.Comm)
	}
	// Hierarchy and lanes.
	if rt.Parent != 0 || cv.Parent != rt.ID || cv.Lane != rt.Lane {
		t.Errorf("hierarchy wrong: root=%+v conv=%+v", rt, cv)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewWithClock(stepClock())
	sp := tr.Root("once")
	sp.End()
	sp.End()
	if n := len(tr.Spans()); n != 1 {
		t.Errorf("double End recorded %d spans", n)
	}
}

// TestNilInstruments exercises the whole disabled chain: every method on
// nil tracer/span/scope must be a safe no-op, which is the contract that
// makes telemetry-off inference bit-identical and branch-cheap.
func TestNilInstruments(t *testing.T) {
	var tr *Tracer
	sp := tr.Root("x", WithConn(nil), WithAttrs(Int("k", 1)))
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.SetAttr("a", 1)
	sp.End()
	if c := sp.Child("y"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer returned spans")
	}
	sc := NewScope(nil)
	if sc != nil {
		t.Fatal("nil root produced a scope")
	}
	inner := sc.Enter("z")
	if inner != nil || sc.Current() != nil {
		t.Fatal("nil scope produced spans")
	}
	sc.Exit(inner)

	var cnt *Counter
	cnt.Inc()
	cnt.Add(5)
	if cnt.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	var h *Histogram
	h.Observe(1)
	var reg *Registry
	if reg.Counter("c") != nil || reg.Histogram("h", nil) != nil || reg.Counters() != nil {
		t.Fatal("nil registry handed out instruments")
	}
	if err := reg.WriteText(nil); err != nil {
		t.Fatal(err)
	}
}

func TestScopeNesting(t *testing.T) {
	tr := NewWithClock(stepClock())
	root := tr.Root("root")
	sc := NewScope(root)
	outer := sc.Enter("outer")
	inner := sc.Enter("inner")
	if sc.Current() != inner {
		t.Fatal("Enter did not make the child current")
	}
	sc.Exit(inner)
	if sc.Current() != outer {
		t.Fatal("Exit did not restore the parent")
	}
	sc.Exit(outer)
	if sc.Current() != root {
		t.Fatal("scope did not unwind to the root")
	}
	root.End()
	for _, r := range tr.Spans() {
		switch r.Name {
		case "inner":
			if parent := findSpan(t, tr, "outer"); r.Parent != parent.ID {
				t.Errorf("inner.Parent = %d, want outer", r.Parent)
			}
		case "outer":
			if r.Parent != findSpan(t, tr, "root").ID {
				t.Errorf("outer.Parent = %d, want root", r.Parent)
			}
		}
	}
}

func findSpan(t *testing.T, tr *Tracer, name string) SpanRecord {
	t.Helper()
	for _, r := range tr.Spans() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("span %q not found", name)
	return SpanRecord{}
}

// TestTracerConcurrent drives one tracer from many lanes at once, the
// shape of the batch executor; run under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const lanes, depth = 8, 20
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := tr.Root("lane")
			for j := 0; j < depth; j++ {
				sp := root.Child("op")
				sp.SetAttr("j", int64(j))
				sp.End()
			}
			root.End()
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != lanes*(depth+1) {
		t.Fatalf("got %d spans, want %d", len(spans), lanes*(depth+1))
	}
	perLane := map[uint64]int{}
	for _, r := range spans {
		perLane[r.Lane]++
	}
	if len(perLane) != lanes {
		t.Fatalf("got %d lanes, want %d", len(perLane), lanes)
	}
	for lane, n := range perLane {
		if n != depth+1 {
			t.Errorf("lane %d has %d spans, want %d", lane, n, depth+1)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("ot_executions").Add(3)
	r.Counter("ot_executions").Inc()
	if got := r.Counter("ot_executions").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	h := r.Histogram("ring_bits", BitBuckets)
	h.Observe(14)
	h.Observe(14)
	h.Observe(37)
	bounds, cum, sum, n := h.Snapshot()
	if n != 3 || sum != 65 {
		t.Errorf("hist n=%d sum=%g", n, sum)
	}
	// 14 ≤ 16 (index 3), 37 ≤ 40 (index 8); cumulative counts.
	if bounds[3] != 16 || cum[3] != 2 || cum[8] != 3 || cum[len(cum)-1] != 3 {
		t.Errorf("hist buckets: bounds=%v cum=%v", bounds, cum)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ot_executions counter\not_executions 4\n",
		"# TYPE ring_bits histogram\n",
		`ring_bits_bucket{le="16"} 2`,
		`ring_bits_bucket{le="+Inf"} 3`,
		"ring_bits_sum 65\n",
		"ring_bits_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestGlobalGate(t *testing.T) {
	defer Disable()
	Disable()
	Count("gate_test_total", 5)
	Observe("gate_test_seconds", 1, DurationBuckets)
	if Default().Counters()["gate_test_total"] != 0 {
		t.Fatal("disabled Count still counted")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not take")
	}
	Count("gate_test_total", 5)
	if Default().Counters()["gate_test_total"] != 5 {
		t.Fatal("enabled Count did not count")
	}
}
