// Package telemetry is the engine's zero-dependency observability layer:
// hierarchical spans with per-span communication deltas, a process-wide
// registry of counters and histograms, and pluggable exporters (Chrome
// trace-event JSON, aligned-text tables via internal/report, and a
// /metrics + /debug/pprof HTTP endpoint).
//
// The paper's whole evaluation is a per-layer cost breakdown — bytes and
// rounds of GEMM vs ABReLU (A2BM/SCM/OT) under adaptive ring sizes — and
// this package is what lets the runtime attribute the endpoint-global
// transport.Stats counters to a layer or protocol phase: every span
// snapshots its connection's counters at start and end, so the span's
// Comm delta is exactly the traffic that endpoint moved while the span
// was open.
//
// Cost discipline: a nil *Tracer, nil *Span or nil *Scope is a valid
// disabled instrument — every method is nil-safe and costs exactly one
// branch, and tracing never touches protocol bytes, so inference outputs
// are bit-identical with telemetry on or off. Tracers are goroutine-safe
// (the batch executor runs one span tree per image lane concurrently);
// a Scope is deliberately not — it threads the current span through ONE
// party's sequential protocol flow.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"aq2pnn/internal/transport"
)

// Attr is one key/value annotation on a span. Values are limited to
// strings and integers so every exporter can render them deterministically.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// SpanRecord is the immutable snapshot of a finished span.
type SpanRecord struct {
	// ID is unique within the tracer; Parent is 0 for root spans.
	ID, Parent uint64
	// Lane groups a root span and all its descendants (the Chrome trace
	// "thread" row); concurrent batch images land on distinct lanes.
	Lane uint64
	Name string
	// Start and End are offsets from the tracer's epoch.
	Start, End time.Duration
	Attrs      []Attr
	// Comm is the delta of the span's connection counters between Start
	// and End; HasConn distinguishes a zero delta from "no connection".
	Comm    transport.Stats
	HasConn bool
}

// Dur is the span's wall-clock duration.
func (r SpanRecord) Dur() time.Duration { return r.End - r.Start }

// Tracer collects spans. The zero value is not usable; construct with New.
// A nil *Tracer is a disabled tracer: Root returns a nil span and the
// whole instrument chain degrades to single-branch no-ops.
type Tracer struct {
	mu       sync.Mutex
	now      func() time.Time
	epoch    time.Time
	nextID   uint64
	finished []SpanRecord
}

// New returns a tracer using the wall clock.
func New() *Tracer { return NewWithClock(time.Now) }

// NewWithClock returns a tracer drawing timestamps from now — tests and
// golden-file exporters inject a deterministic clock here.
func NewWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, epoch: now()}
}

// Span is one timed region of the protocol. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	parent *Span
	id     uint64
	lane   uint64
	name   string
	start  time.Duration
	attrs  []Attr
	conn   transport.Conn
	pre    transport.Stats
	ended  bool
}

// SpanOption configures a span at start.
type SpanOption func(*Span)

// WithConn scopes the span to a connection: the span's Comm field becomes
// the delta of the connection's Stats between start and end. Children
// inherit the parent's connection unless overridden.
func WithConn(c transport.Conn) SpanOption {
	return func(s *Span) { s.conn = c }
}

// WithAttrs attaches annotations at start.
func WithAttrs(attrs ...Attr) SpanOption {
	return func(s *Span) { s.attrs = append(s.attrs, attrs...) }
}

// Root starts a top-level span on its own lane. A nil tracer returns nil.
func (t *Tracer) Root(name string, opts ...SpanOption) *Span {
	if t == nil {
		return nil
	}
	return t.start(nil, name, opts)
}

// Child starts a sub-span. A nil span returns nil, so a disabled tracer
// propagates through instrumented call chains at one branch per call.
func (s *Span) Child(name string, opts ...SpanOption) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s, name, opts)
}

func (t *Tracer) start(parent *Span, name string, opts []SpanOption) *Span {
	s := &Span{tr: t, parent: parent, name: name}
	if parent != nil {
		s.conn = parent.conn
	}
	for _, o := range opts {
		o(s)
	}
	if s.conn != nil {
		s.pre = s.conn.Stats()
	}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	if parent != nil {
		s.lane = parent.lane
	} else {
		s.lane = s.id
	}
	s.start = t.now().Sub(t.epoch)
	t.mu.Unlock()
	return s
}

// SetAttr annotates a live span. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// End finishes the span, snapshotting the connection delta. Nil-safe and
// idempotent (a second End is ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	var comm transport.Stats
	if s.conn != nil {
		comm = s.conn.Stats().Sub(s.pre)
	}
	t := s.tr
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	var parentID uint64
	if s.parent != nil {
		parentID = s.parent.id
	}
	t.finished = append(t.finished, SpanRecord{
		ID: s.id, Parent: parentID, Lane: s.lane, Name: s.name,
		Start: s.start, End: t.now().Sub(t.epoch),
		Attrs: s.attrs, Comm: comm, HasConn: s.conn != nil,
	})
	t.mu.Unlock()
}

// Spans returns the finished spans sorted by start time (ID breaks ties,
// so the order is deterministic under a deterministic clock).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.finished...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Scope threads the current span through one party's sequential protocol
// flow, so nested operators (secure → scm → ot) attach their spans under
// the caller's without plumbing a span through every signature. It is NOT
// goroutine-safe: each party flow (and each batch image lane) owns its
// own Scope. A nil *Scope is a disabled scope; Enter returns nil spans.
type Scope struct {
	cur *Span
}

// NewScope roots a scope at span. A nil span yields a nil (disabled)
// scope, which keeps the one-branch cost contract downstream.
func NewScope(root *Span) *Scope {
	if root == nil {
		return nil
	}
	return &Scope{cur: root}
}

// Current returns the scope's innermost live span (nil when disabled).
func (s *Scope) Current() *Span {
	if s == nil {
		return nil
	}
	return s.cur
}

// Enter starts a child of the current span and makes it current.
func (s *Scope) Enter(name string, opts ...SpanOption) *Span {
	if s == nil {
		return nil
	}
	sp := s.cur.Child(name, opts...)
	if sp != nil {
		s.cur = sp
	}
	return sp
}

// Exit ends sp and restores its parent as current. Nil-safe, so the
// idiomatic pairing is:
//
//	sp := scope.Enter("gemm.mul")
//	defer scope.Exit(sp)
func (s *Scope) Exit(sp *Span) {
	if s == nil || sp == nil {
		return
	}
	if s.cur == sp {
		s.cur = sp.parent
	}
	sp.End()
}
