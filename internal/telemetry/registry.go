package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// disabled counter (all methods are single-branch no-ops).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (bank fill levels, queue
// depths). A nil *Gauge is a valid disabled gauge.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: bounds are upper bucket edges
// in ascending order, with an implicit +Inf bucket. A nil *Histogram is a
// valid disabled histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Snapshot returns cumulative bucket counts (Prometheus convention: the
// bucket for bound b counts samples ≤ b), the sample sum and count.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, sum float64, n uint64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative, h.sum, h.n
}

// Standard bucket layouts.
var (
	// DurationBuckets covers protocol phases from 100 µs to ~1 min.
	DurationBuckets = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 60}
	// BitBuckets covers the adaptive ring widths (Sec. 5).
	BitBuckets = []float64{4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 64}
)

// Registry is a namespace of counters and histograms. The process-wide
// Default registry backs the /metrics endpoint; tests construct private
// registries. A nil *Registry hands out nil instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use. Metric
// names use [a-z0-9_] so the Prometheus exposition needs no escaping.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds arguments are ignored).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Gauges returns a snapshot of every gauge value, for tests and the table
// exporters.
func (r *Registry) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Counters returns a snapshot of every counter value, for tests and the
// table exporters.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition format
// (sorted by name, so the output is deterministic).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cNames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cNames = append(cNames, name)
	}
	gNames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gNames = append(gNames, name)
	}
	hNames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hNames = append(hNames, name)
	}
	counters := make(map[string]*Counter, len(cNames))
	for _, n := range cNames {
		counters[n] = r.counters[n]
	}
	gauges := make(map[string]*Gauge, len(gNames))
	for _, n := range gNames {
		gauges[n] = r.gauges[n]
	}
	hists := make(map[string]*Histogram, len(hNames))
	for _, n := range hNames {
		hists[n] = r.hists[n]
	}
	r.mu.Unlock()

	sort.Strings(cNames)
	sort.Strings(gNames)
	sort.Strings(hNames)
	for _, name := range cNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range gNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range hNames {
		bounds, cum, sum, n := hists[name].Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			name, cum[len(cum)-1], name, sum, name, n); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// The process-wide default registry and the global collection gate. The
// gate keeps the disabled cost of package-level Count/Observe at one
// (atomic-load) branch in the protocol hot paths; enabling it is what the
// -metrics / -trace surfaces do.
var (
	defaultRegistry = NewRegistry()
	enabledFlag     atomic.Bool
)

// Default returns the process-wide registry (always non-nil; collection
// into it via Count/Observe is gated by Enable).
func Default() *Registry { return defaultRegistry }

// Enable turns on collection into the default registry.
func Enable() { enabledFlag.Store(true) }

// Disable turns collection off again (instruments already handed out keep
// counting; only the package-level helpers are gated).
func Disable() { enabledFlag.Store(false) }

// Enabled reports whether collection is on.
func Enabled() bool { return enabledFlag.Load() }

// Count adds n to the named default-registry counter when collection is
// enabled; disabled cost is one branch.
func Count(name string, n uint64) {
	if !enabledFlag.Load() {
		return
	}
	defaultRegistry.Counter(name).Add(n)
}

// SetGauge sets the named default-registry gauge when collection is
// enabled; disabled cost is one branch.
func SetGauge(name string, v int64) {
	if !enabledFlag.Load() {
		return
	}
	defaultRegistry.Gauge(name).Set(v)
}

// Observe records a sample into the named default-registry histogram when
// collection is enabled; disabled cost is one branch.
func Observe(name string, v float64, bounds []float64) {
	if !enabledFlag.Load() {
		return
	}
	defaultRegistry.Histogram(name, bounds).Observe(v)
}
