package telemetry

import (
	"strings"
	"testing"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("bank_fill")
	if g.Value() != 0 {
		t.Errorf("fresh gauge = %d, want 0", g.Value())
	}
	g.Set(5)
	g.Set(2) // gauges go down too
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
	if r.Gauge("bank_fill") != g {
		t.Error("second lookup returned a different gauge")
	}
	g.Set(-1)
	if got := r.Gauges()["bank_fill"]; got != -1 {
		t.Errorf("snapshot = %d, want -1", got)
	}

	// Nil-safety across the disabled chain.
	var nilG *Gauge
	nilG.Set(9)
	if nilG.Value() != 0 {
		t.Error("nil gauge carries a value")
	}
	var nilR *Registry
	if nilR.Gauge("x") != nil || nilR.Gauges() != nil {
		t.Error("nil registry handed out instruments")
	}

	// Prometheus exposition renders the gauge type.
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE bank_fill gauge\nbank_fill -1\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition %q missing %q", sb.String(), want)
	}
}

func TestSetGaugeGated(t *testing.T) {
	defer Disable()
	Disable()
	SetGauge("gate_gauge_test", 7)
	if v, ok := Default().Gauges()["gate_gauge_test"]; ok && v != 0 {
		t.Errorf("disabled SetGauge wrote %d", v)
	}
	Enable()
	SetGauge("gate_gauge_test", 7)
	if v := Default().Gauges()["gate_gauge_test"]; v != 7 {
		t.Errorf("enabled SetGauge recorded %d, want 7", v)
	}
}
