package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an HTTP handler exposing the registry:
//
//	/metrics       Prometheus text exposition of every counter/histogram
//	/debug/pprof/  the standard Go profiling endpoints
//
// The pprof routes are registered on this private mux, not the package
// DefaultServeMux, so importing telemetry never adds handlers to servers
// the caller owns.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartMetricsServer serves Handler(r) on addr in the background and
// returns the bound address plus a stop function.
//
// Security: the metrics and profiling endpoints reveal traffic shape and
// internals of the running party, so an addr without an explicit host
// (":9090") binds loopback only. Exposing the endpoint beyond the local
// machine must be an explicit choice ("0.0.0.0:9090").
func StartMetricsServer(addr string, r *Registry) (bound string, stop func() error, err error) {
	host, port, splitErr := net.SplitHostPort(addr)
	if splitErr != nil {
		return "", nil, fmt.Errorf("telemetry: bad metrics address %q: %w", addr, splitErr)
	}
	if host == "" {
		addr = net.JoinHostPort("127.0.0.1", port)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), srv.Close, nil
}
