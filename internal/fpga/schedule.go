package fpga

import (
	"fmt"

	"aq2pnn/internal/ring"
)

// On-chip buffer model and schedule analysis. Fig. 1 names the
// accelerator's buffers (AS-INP, AS-WGT, the mask and constant buffers,
// AS-OUP, BS-INP/BS-OUP, OUT-MSK); their capacities bound how much of a
// layer can be resident, forcing the compiler to tile large GEMMs, and the
// engine assignment of each instruction determines how much LOAD traffic,
// computation and NIC exchange can overlap.

// Buffers holds the byte capacity of each on-chip buffer.
type Buffers struct {
	ASInp   int // secret input shares (and E masks, same footprint)
	ASWgt   int // weight shares + pre-deployed F
	ASCst   int // Beaver triple constants (Z)
	ASOup   int // computing output shares
	BSInOut int // binary-share buffers of the Sec-COMM. module
	OutMsk  int // comparison result masks
}

// Total returns the summed capacity.
func (b Buffers) Total() int {
	return b.ASInp + b.ASWgt + b.ASCst + b.ASOup + b.BSInOut + b.OutMsk
}

// Buffers derives capacities from the configuration's BRAM budget: a
// BRAM36 holds 4 KiB; the split mirrors the Fig. 1 buffer roles (inputs
// and weights dominate, with smaller share-conversion and mask stores).
func (c Config) Buffers() Buffers {
	totalBytes := int(c.Resources().BRAM) * 4096
	return Buffers{
		ASInp:   totalBytes * 30 / 100,
		ASWgt:   totalBytes * 30 / 100,
		ASCst:   totalBytes * 10 / 100,
		ASOup:   totalBytes * 15 / 100,
		BSInOut: totalBytes * 10 / 100,
		OutMsk:  totalBytes * 5 / 100,
	}
}

// Engine identifies which hardware engine executes an instruction; the
// pipelined schedule bounds total latency by the busiest engine.
type Engine int

// Engine assignments.
const (
	EngLoad Engine = iota // LOAD/STORE ↔ DRAM
	EngComp               // Sec-COMP: AS-GEMM + AS-ALU
	EngComm               // Sec-COMM: A2BM + SCM
	EngNIC                // network interface
	engCount
)

var engineNames = [engCount]string{"LOAD/STORE", "Sec-COMP", "Sec-COMM", "NIC"}

// String implements fmt.Stringer.
func (e Engine) String() string { return engineNames[e] }

// EngineOf maps an opcode to its engine.
func EngineOf(op OpCode) Engine {
	switch op {
	case OpLoad, OpStore:
		return EngLoad
	case OpGemm, OpAlu:
		return EngComp
	case OpA2B, OpSCM:
		return EngComm
	case OpExch:
		return EngNIC
	default:
		return EngComp
	}
}

// Schedule summarizes a program's engine occupancy.
type Schedule struct {
	// PerEngine holds the summed cycles per engine (NIC counts the
	// exchange-issue cycles only; wire time is the network model's job).
	PerEngine [engCount]int64
	// Sequential is the no-overlap total (what Simulate reports).
	Sequential int64
	// Pipelined is the lower bound with perfect double buffering: the
	// busiest engine.
	Pipelined int64
}

// Analyze computes the schedule of a compiled program.
func (c Config) Analyze(p *Program) Schedule {
	var s Schedule
	for _, in := range p.Instrs {
		cy := c.Cycles(in)
		s.PerEngine[EngineOf(in.Op)] += cy
		s.Sequential += cy
	}
	for _, cy := range s.PerEngine {
		if cy > s.Pipelined {
			s.Pipelined = cy
		}
	}
	return s
}

// CheckProgram validates that every instruction's working set fits the
// configuration's buffers. Compile tiles GEMMs to guarantee this; the
// check guards against configurations whose buffers cannot hold even a
// single tile.
func (c Config) CheckProgram(p *Program, r ring.Ring) error {
	b := c.Buffers()
	eb := r.Bytes()
	for idx, in := range p.Instrs {
		switch in.Op {
		case OpGemm:
			if in.M*in.K*eb > b.ASInp {
				return fmt.Errorf("fpga: instr %d GEMM input tile %d B exceeds AS-INP %d B", idx, in.M*in.K*eb, b.ASInp)
			}
			if in.K*in.N*eb > b.ASWgt {
				return fmt.Errorf("fpga: instr %d GEMM weight tile %d B exceeds AS-WGT %d B", idx, in.K*in.N*eb, b.ASWgt)
			}
			if in.M*in.N*eb > b.ASOup {
				return fmt.Errorf("fpga: instr %d GEMM output tile %d B exceeds AS-OUP %d B", idx, in.M*in.N*eb, b.ASOup)
			}
		case OpA2B, OpSCM:
			// Sec-COMM streams elements through the binary-share buffers
			// in chunks; only a zero-capacity buffer is fatal.
			if b.BSInOut <= 0 {
				return fmt.Errorf("fpga: instr %d needs binary-share buffers", idx)
			}
		}
	}
	return nil
}

// gemmTile is one (rows × cols) block of a tiled multiplication.
type gemmTile struct {
	m, n int
}

// tileGEMM splits an (M×K)·(K×N) multiplication into tiles whose input,
// weight and output working sets fit the buffers. K is never split (the
// AS-GEMM array accumulates along it); M and N are.
func tileGEMM(b Buffers, m, k, n, eb int) ([]gemmTile, error) {
	maxM := b.ASInp / (k * eb)
	if maxM < 1 {
		return nil, fmt.Errorf("fpga: AS-INP cannot hold one GEMM row of K=%d", k)
	}
	maxN := b.ASWgt / (k * eb)
	if maxN < 1 {
		return nil, fmt.Errorf("fpga: AS-WGT cannot hold one GEMM column of K=%d", k)
	}
	// Clamp to the actual problem before balancing against the output
	// buffer, or small layers would be shredded into needlessly tiny tiles.
	maxM = min(maxM, m)
	maxN = min(maxN, n)
	if cap := b.ASOup / eb; maxM*maxN > cap && cap > 0 {
		// Shrink the M tile until the output block fits too.
		for maxM > 1 && maxM*maxN > cap {
			maxM--
		}
	}
	var tiles []gemmTile
	for m0 := 0; m0 < m; m0 += maxM {
		tm := min(maxM, m-m0)
		for n0 := 0; n0 < n; n0 += maxN {
			tiles = append(tiles, gemmTile{m: tm, n: min(maxN, n-n0)})
		}
	}
	return tiles, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
