package fpga

import (
	"fmt"
	"strings"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

// The INST Q instruction stream (Sec. 4.1.1): the compiler lowers a model
// into the accelerator's operation sequence — the same role TVM-generated
// queues play for VTA. The simulator executes the stream against the cycle
// model; examples/accelerator_trace prints it for inspection.

// OpCode enumerates the accelerator instructions.
type OpCode int

// Instruction opcodes.
const (
	OpLoad  OpCode = iota // LOAD module: DRAM → buffer
	OpGemm                // Sec-COMP: AS-GEMM tile
	OpAlu                 // Sec-COMP: AS-ALU pass (add/shift/scale/clip)
	OpA2B                 // Sec-COMM: arithmetic-to-binary conversion
	OpSCM                 // Sec-COMM: secure comparison machine pass
	OpExch                // NIC: share exchange with the peer
	OpStore               // STORE module: buffer → DRAM
)

var opNames = map[OpCode]string{
	OpLoad: "LOAD", OpGemm: "GEMM", OpAlu: "ALU", OpA2B: "A2B",
	OpSCM: "SCM", OpExch: "EXCH", OpStore: "STORE",
}

// String implements fmt.Stringer.
func (o OpCode) String() string { return opNames[o] }

// Instr is one INST Q entry.
type Instr struct {
	Op OpCode
	// M, K, N describe a GEMM tile; Elems counts ALU/A2B/SCM elements;
	// Bytes sizes LOAD/STORE/EXCH transfers.
	M, K, N int
	Elems   int
	Bytes   int
	// Node is the model node this instruction implements.
	Node int
}

// Program is a compiled instruction stream.
type Program struct {
	Model  string
	Instrs []Instr
}

// Compile lowers a model into the accelerator instruction stream for the
// given configuration, tiling every GEMM so its working set fits the
// on-chip buffers (Fig. 1) — one LOAD+GEMM pair per tile, double-buffered
// by the schedule analysis.
func Compile(cfg Config, m *nn.Model, r ring.Ring, localTrunc bool) (*Program, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return nil, err
	}
	bufs := cfg.Buffers()
	p := &Program{Model: m.Name}
	rb := r.Bytes()
	emit := func(i Instr, node int) {
		i.Node = node
		p.Instrs = append(p.Instrs, i)
	}
	truncInstrs := func(elems, node int) {
		if localTrunc {
			emit(Instr{Op: OpAlu, Elems: elems}, node)
			return
		}
		// Faithful truncation: A2BM + SCM comparison + exchange + ALU fix.
		emit(Instr{Op: OpA2B, Elems: elems}, node)
		emit(Instr{Op: OpSCM, Elems: elems}, node)
		emit(Instr{Op: OpExch, Bytes: int(BytesFor(uint64(elems), FaithfulTruncBits(r)))}, node)
		emit(Instr{Op: OpAlu, Elems: elems}, node)
	}
	// emitGEMM tiles an (M×K)·(K×N) multiplication across the buffers:
	// LOAD + GEMM per tile, with the E exchange issued once for the layer.
	emitGEMM := func(node, m_, k, n, outElems int) error {
		in := m_ * k * rb
		emit(Instr{Op: OpExch, Bytes: 2 * in}, node) // open E
		tiles, err := tileGEMM(bufs, m_, k, n, rb)
		if err != nil {
			return fmt.Errorf("fpga: node %d: %w", node, err)
		}
		for _, tl := range tiles {
			emit(Instr{Op: OpLoad, Bytes: tl.m * k * rb}, node)
			emit(Instr{Op: OpGemm, M: tl.m, K: k, N: tl.n}, node)
		}
		emit(Instr{Op: OpAlu, Elems: outElems}, node) // bias + scale
		return nil
	}
	for i, node := range m.Nodes {
		outElems := shapes[i].Numel()
		switch op := node.Op.(type) {
		case *nn.Conv:
			g := op.Geom
			if err := emitGEMM(i, g.Patches(), g.PatchLen(), g.OutC, outElems); err != nil {
				return nil, err
			}
			truncInstrs(outElems, i)
			emit(Instr{Op: OpStore, Bytes: outElems * rb}, i)
		case *nn.FC:
			if err := emitGEMM(i, 1, op.In, op.Out, op.Out); err != nil {
				return nil, err
			}
			truncInstrs(op.Out, i)
			emit(Instr{Op: OpStore, Bytes: op.Out * rb}, i)
		case nn.ReLU:
			emit(Instr{Op: OpA2B, Elems: outElems}, i)
			emit(Instr{Op: OpSCM, Elems: outElems}, i)
			emit(Instr{Op: OpExch, Bytes: int(BytesFor(uint64(outElems), ABReLUBits(r)))}, i)
			emit(Instr{Op: OpAlu, Elems: outElems}, i) // mux combine
		case *nn.MaxPool:
			comparisons := op.Geom.InC*op.Geom.InH*op.Geom.InW - outElems
			emit(Instr{Op: OpA2B, Elems: comparisons}, i)
			emit(Instr{Op: OpSCM, Elems: comparisons}, i)
			emit(Instr{Op: OpExch, Bytes: int(BytesFor(uint64(comparisons), ABReLUBits(r)))}, i)
			emit(Instr{Op: OpAlu, Elems: comparisons}, i)
		case *nn.AvgPool:
			emit(Instr{Op: OpAlu, Elems: op.Geom.InC * op.Geom.InH * op.Geom.InW}, i)
			stages := 1
			if w := op.Geom.KH * op.Geom.KW; w&(w-1) != 0 {
				stages = 2
			}
			for s := 0; s < stages; s++ {
				truncInstrs(outElems, i)
			}
		case nn.Add:
			emit(Instr{Op: OpAlu, Elems: outElems}, i)
		case nn.Flatten:
			// Pure buffer reinterpretation: no instruction.
		default:
			return nil, fmt.Errorf("fpga: cannot compile op %T", node.Op)
		}
	}
	return p, nil
}

// Cycles prices one instruction on the configuration.
func (c Config) Cycles(i Instr) int64 {
	const fill = 24
	switch i.Op {
	case OpGemm:
		return int64(i.M)*int64(i.K)*int64(i.N)/int64(c.BlockIn*c.BlockOut) + fill
	case OpAlu:
		return int64(i.Elems)/int64(c.ALULanes) + fill
	case OpA2B, OpSCM:
		return int64(i.Elems)/int64(c.SCMLanes) + fill
	case OpLoad, OpStore:
		return int64(i.Bytes)/int64(c.LoadBytesPerCycle) + fill
	case OpExch:
		return fill // wire time is priced by the network model
	default:
		return fill
	}
}

// Simulate executes the program against the cycle model, returning total
// compute cycles and exchanged bytes.
func (c Config) Simulate(p *Program) (cycles int64, exchBytes uint64) {
	for _, i := range p.Instrs {
		cycles += c.Cycles(i)
		if i.Op == OpExch {
			exchBytes += uint64(i.Bytes)
		}
	}
	return cycles, exchBytes
}

// Dump renders the program for humans (used by examples/accelerator_trace).
func (p *Program) Dump(limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INST Q for %s: %d instructions\n", p.Model, len(p.Instrs))
	for k, i := range p.Instrs {
		if limit > 0 && k >= limit {
			fmt.Fprintf(&b, "  ... %d more\n", len(p.Instrs)-k)
			break
		}
		switch i.Op {
		case OpGemm:
			fmt.Fprintf(&b, "  %3d %-5s node=%d M=%d K=%d N=%d\n", k, i.Op, i.Node, i.M, i.K, i.N)
		case OpAlu, OpA2B, OpSCM:
			fmt.Fprintf(&b, "  %3d %-5s node=%d elems=%d\n", k, i.Op, i.Node, i.Elems)
		default:
			fmt.Fprintf(&b, "  %3d %-5s node=%d bytes=%d\n", k, i.Op, i.Node, i.Bytes)
		}
	}
	return b.String()
}
