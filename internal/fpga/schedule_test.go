package fpga

import (
	"testing"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

func TestBuffersFromBRAM(t *testing.T) {
	b := ZCU104().Buffers()
	if b.Total() <= 0 {
		t.Fatal("no buffer capacity")
	}
	// 310 BRAM36 × 4 KiB ≈ 1.27 MB; the split must not exceed it.
	total := int(ZCU104().Resources().BRAM) * 4096
	if b.Total() > total {
		t.Errorf("buffer split %d exceeds BRAM budget %d", b.Total(), total)
	}
	if b.ASInp == 0 || b.ASWgt == 0 || b.ASOup == 0 || b.BSInOut == 0 {
		t.Error("a Fig. 1 buffer has zero capacity")
	}
}

func TestTileGEMMCoversAndFits(t *testing.T) {
	b := Buffers{ASInp: 1000, ASWgt: 800, ASOup: 600, ASCst: 100, BSInOut: 100, OutMsk: 50}
	m, k, n, eb := 137, 25, 43, 2
	tiles, err := tileGEMM(b, m, k, n, eb)
	if err != nil {
		t.Fatal(err)
	}
	// Tiles cover exactly M×N, each within the buffers.
	var covered int
	for _, tl := range tiles {
		covered += tl.m * tl.n
		if tl.m*k*eb > b.ASInp {
			t.Fatalf("tile input %d exceeds AS-INP", tl.m*k*eb)
		}
		if k*tl.n*eb > b.ASWgt {
			t.Fatalf("tile weight %d exceeds AS-WGT", k*tl.n*eb)
		}
		if tl.m*tl.n*eb > b.ASOup {
			t.Fatalf("tile output %d exceeds AS-OUP", tl.m*tl.n*eb)
		}
	}
	if covered != m*n {
		t.Errorf("tiles cover %d of %d output elements", covered, m*n)
	}
}

func TestTileGEMMRejectsImpossible(t *testing.T) {
	b := Buffers{ASInp: 10, ASWgt: 10, ASOup: 10}
	if _, err := tileGEMM(b, 4, 100, 4, 2); err == nil {
		t.Error("K row larger than AS-INP accepted")
	}
}

func TestCompiledProgramsFitBuffers(t *testing.T) {
	// Every zoo model's compiled program must pass the buffer check —
	// including the ImageNet-scale graphs whose layers far exceed on-chip
	// capacity and therefore must be tiled.
	cfg := ZCU104()
	for _, name := range []string{"lenet5", "alexnet", "vgg16-cifar", "resnet50-imagenet"} {
		m, err := nn.ByName(name, nn.ZooConfig{Skeleton: true})
		if err != nil {
			t.Fatal(err)
		}
		r := ring.New(16)
		prog, err := Compile(cfg, m, r, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.CheckProgram(prog, r); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTilingPreservesCommAndMACs(t *testing.T) {
	// Splitting GEMMs must not change the total exchanged bytes nor the
	// total multiply count.
	cfg := ZCU104()
	m, _ := nn.ByName("vgg16-cifar", nn.ZooConfig{Skeleton: true})
	r := ring.New(16)
	prog, err := Compile(cfg, m, r, false)
	if err != nil {
		t.Fatal(err)
	}
	var macs int64
	for _, in := range prog.Instrs {
		if in.Op == OpGemm {
			macs += int64(in.M) * int64(in.K) * int64(in.N)
		}
	}
	if macs != m.MACs() {
		t.Errorf("tiled MACs %d vs model %d", macs, m.MACs())
	}
	_, exch := cfg.Simulate(prog)
	comm, _ := ModelComm(m, r, false)
	if exch != comm.Bytes {
		t.Errorf("tiled exchange %d vs analytic %d", exch, comm.Bytes)
	}
}

func TestScheduleAnalysis(t *testing.T) {
	cfg := ZCU104()
	m := tinyModel()
	r := ring.New(16)
	prog, err := Compile(cfg, m, r, false)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Analyze(prog)
	var sum int64
	for _, cy := range s.PerEngine {
		sum += cy
	}
	if sum != s.Sequential {
		t.Errorf("engine sums %d vs sequential %d", sum, s.Sequential)
	}
	if s.Pipelined > s.Sequential || s.Pipelined <= 0 {
		t.Errorf("pipelined %d vs sequential %d", s.Pipelined, s.Sequential)
	}
	seq, _ := cfg.Simulate(prog)
	if seq != s.Sequential {
		t.Errorf("Simulate %d vs Analyze sequential %d", seq, s.Sequential)
	}
	if EngineOf(OpGemm) != EngComp || EngineOf(OpExch) != EngNIC || EngineOf(OpLoad) != EngLoad || EngineOf(OpSCM) != EngComm {
		t.Error("engine assignment wrong")
	}
}

func TestCheckProgramDetectsOversizedTile(t *testing.T) {
	cfg := ZCU104()
	p := &Program{Model: "bad", Instrs: []Instr{{Op: OpGemm, M: 1 << 20, K: 512, N: 512}}}
	if err := cfg.CheckProgram(p, ring.New(16)); err == nil {
		t.Error("oversized GEMM tile accepted")
	}
}
