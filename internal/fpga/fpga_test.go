package fpga

import (
	"testing"

	"aq2pnn/internal/engine"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
)

func TestZCU104ResourcesMatchTable3(t *testing.T) {
	r := ZCU104().Resources()
	if r.DSP != 1536 {
		t.Errorf("DSP = %d, want 1536 (Table 3)", r.DSP)
	}
	within := func(got, want, tol float64) bool {
		return got >= want*(1-tol) && got <= want*(1+tol)
	}
	if !within(float64(r.LUT), 120_000, 0.15) {
		t.Errorf("LUT = %d, want ≈120k", r.LUT)
	}
	if !within(float64(r.FF), 207_000, 0.15) {
		t.Errorf("FF = %d, want ≈207k", r.FF)
	}
	if !within(r.BRAM, 310, 0.15) {
		t.Errorf("BRAM = %.1f, want ≈310", r.BRAM)
	}
	vta := VTAResources()
	if vta.DSP != 268 || vta.LUT != 24_200 {
		t.Error("VTA reference row wrong")
	}
}

func TestPowerMatchesPaper(t *testing.T) {
	p := ZCU104().Power()
	// The paper measures 7.2–7.7 W per board.
	if p < 7.0 || p < 7.2-0.3 || p > 7.9 {
		t.Errorf("modelled board power %.2f W, want ≈7.2–7.7", p)
	}
}

func TestResourcesScaleWithArray(t *testing.T) {
	small := ZCU104()
	small.BlockIn, small.BlockOut = 8, 8
	if small.Resources().DSP >= ZCU104().Resources().DSP {
		t.Error("shrinking the AS-GEMM array must shrink DSP usage")
	}
}

// tinyModel mirrors the engine test model so analytic comm can be compared
// with live measurements.
func tinyModel() *nn.Model {
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	conv := &nn.Conv{Geom: g, W: make([]int64, 4*9), Bias: make([]int64, 4), Im: []int64{1, 1, 1, 1}, Ie: 4}
	pg := tensor.ConvGeom{InC: 4, InH: 8, InW: 8, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	fc := &nn.FC{In: 4 * 4 * 4, Out: 5, W: make([]int64, 4*4*4*5), Im: []int64{1, 1, 1, 1, 1}, Ie: 2}
	return &nn.Model{
		Name: "tiny", InC: 1, InH: 8, InW: 8, InBits: 8,
		Nodes: []nn.Node{
			{Op: conv, Inputs: []int{-1}, Name: "conv1"},
			{Op: nn.ReLU{}, Inputs: []int{0}, Name: "relu1"},
			{Op: &nn.MaxPool{Geom: pg}, Inputs: []int{1}, Name: "pool1"},
			{Op: nn.Flatten{}, Inputs: []int{2}, Name: "flatten"},
			{Op: fc, Inputs: []int{3}, Name: "fc"},
		},
	}
}

func TestAnalyticCommMatchesMeasured(t *testing.T) {
	// The analytic model must agree with bytes measured on the live
	// protocol to within a few percent (the residual is OT pool refill
	// granularity and per-batch headers).
	m := tinyModel()
	for _, local := range []bool{false, true} {
		x := make([]int64, 64)
		for i := range x {
			x[i] = int64(i%17) - 8
		}
		res, err := engine.RunLocal(m, x, engine.Options{CarrierBits: 16, Seed: 9, LocalTrunc: local})
		if err != nil {
			t.Fatal(err)
		}
		measured := res.Online.TotalBytes()
		analytic, err := ModelComm(m, ring.New(16), local)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(analytic.Bytes) / float64(measured)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("localTrunc=%v: analytic %d vs measured %d (ratio %.3f)", local, analytic.Bytes, measured, ratio)
		}
		t.Logf("localTrunc=%v: analytic %d, measured %d", local, analytic.Bytes, measured)
	}
}

func TestPerOpCommMatchesEngineProfile(t *testing.T) {
	m := tinyModel()
	x := make([]int64, 64)
	res, err := engine.RunLocal(m, x, engine.Options{CarrierBits: 16, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	est, err := ZCU104().EstimateModel(m, ring.New(16), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.PerOp) != len(res.PerOp) {
		t.Fatalf("per-op lengths differ: %d vs %d", len(est.PerOp), len(res.PerOp))
	}
	for i := range est.PerOp {
		a, b := est.PerOp[i].Bytes, res.PerOp[i].Bytes
		if a == 0 && b == 0 {
			continue
		}
		ratio := float64(a) / float64(b)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("node %d (%s): analytic %d vs measured %d", i, res.PerOp[i].Kind, a, b)
		}
	}
}

func TestEstimateCommScalesWithCarrier(t *testing.T) {
	m := tinyModel()
	e16, err := ZCU104().EstimateModel(m, ring.New(16), false)
	if err != nil {
		t.Fatal(err)
	}
	e32, err := ZCU104().EstimateModel(m, ring.New(32), false)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(e32.Comm.Bytes) / float64(e16.Comm.Bytes)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("comm ratio 32/16 = %.2f", ratio)
	}
	if e32.ThroughputFPS >= e16.ThroughputFPS {
		t.Error("wider carrier should reduce throughput")
	}
}

func TestEstimateResNet50Magnitudes(t *testing.T) {
	// Table 4 sanity: ResNet50-ImageNet at 16-bit should land within the
	// paper's order of magnitude — comm of several hundred MiB to ~2 GiB
	// and throughput in the 0.02–0.3 fps band, with efficiency far above
	// the GPU baselines.
	m, err := nn.ByName("resnet50-imagenet", nn.ZooConfig{Skeleton: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := ZCU104().EstimateModel(m, ring.New(16), false)
	if err != nil {
		t.Fatal(err)
	}
	if est.CommMiB() < 300 || est.CommMiB() > 2500 {
		t.Errorf("ResNet50 comm = %.0f MiB, expected hundreds to ~2000", est.CommMiB())
	}
	if est.ThroughputFPS < 0.02 || est.ThroughputFPS > 0.5 {
		t.Errorf("ResNet50 throughput = %.3f fps", est.ThroughputFPS)
	}
	if est.EfficiencyFPSPerW < 0.001 {
		t.Errorf("efficiency = %.5f fps/W", est.EfficiencyFPSPerW)
	}
	t.Logf("ResNet50@16b: %.0f MiB, %.3f fps, %.4f fps/W, compute %v, comm %v",
		est.CommMiB(), est.ThroughputFPS, est.EfficiencyFPSPerW, est.ComputeTime, est.CommTime)
}

func TestCompileAndSimulateConsistency(t *testing.T) {
	m := tinyModel()
	r := ring.New(16)
	prog, err := Compile(ZCU104(), m, r, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Instrs) == 0 {
		t.Fatal("empty program")
	}
	cycles, exch := ZCU104().Simulate(prog)
	if cycles <= 0 {
		t.Error("no cycles")
	}
	// The instruction stream's exchange bytes equal the analytic comm.
	comm, _ := ModelComm(m, r, false)
	if exch != comm.Bytes {
		t.Errorf("program exchanges %d bytes, analytic model says %d", exch, comm.Bytes)
	}
	// Every instruction maps to a real node.
	for _, in := range prog.Instrs {
		if in.Node < 0 || in.Node >= len(m.Nodes) {
			t.Fatalf("instruction references node %d", in.Node)
		}
	}
	if prog.Dump(5) == "" {
		t.Error("empty dump")
	}
}

func TestCompileRejectsUnknownOp(t *testing.T) {
	m := &nn.Model{Name: "bad", InC: 1, InH: 1, InW: 1, InBits: 8,
		Nodes: []nn.Node{{Op: badOp{}, Inputs: []int{-1}}}}
	if _, err := Compile(ZCU104(), m, ring.New(16), false); err == nil {
		t.Error("unknown op compiled")
	}
}

type badOp struct{}

func (badOp) Kind() string { return "bad" }
func (badOp) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	return tensor.Shape{1}, nil
}

func TestLocalTruncCheaper(t *testing.T) {
	m := tinyModel()
	r := ring.New(16)
	faithful, _ := ModelComm(m, r, false)
	local, _ := ModelComm(m, r, true)
	if local.Bytes >= faithful.Bytes {
		t.Error("local truncation should communicate less")
	}
}

func BenchmarkEstimateResNet50(b *testing.B) {
	m, _ := nn.ByName("resnet50-imagenet", nn.ZooConfig{Skeleton: true})
	cfg := ZCU104()
	r := ring.New(16)
	for i := 0; i < b.N; i++ {
		cfg.EstimateModel(m, r, false)
	}
}
