// Package fpga models the AQ2PNN accelerator of Fig. 1: the INST Q
// instruction stream, the AS-GEMM array's cycle behaviour, the Sec-COMM
// module's A2BM/SCM units, the on-chip buffers, the ZCU104 resource
// footprint (Table 3) and the board power — everything needed to turn the
// measured protocol byte counts and the model's MAC counts into the
// latency / throughput / energy numbers of Tables 4, 5, 7 and 8.
package fpga

import (
	"aq2pnn/internal/a2b"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

// The analytic per-element communication model. Constants are not free
// parameters: they are derived from the wire format of the protocols in
// internal/ot, internal/scm and internal/secure, and a test cross-checks
// the model against bytes measured on live protocol runs.

// tokenBits is the packed width of one comparison token on the wire
// (the {LT, EQ, GT} alphabet fits two bits), matching internal/scm.
const tokenBits = 2

// The coalesced token transfer packs sub-byte quantities across a whole
// tensor, so per-element costs are fractional bytes. The model therefore
// works in BITS per element and converts to bytes once per protocol step
// over the full element count.

// cmpBits is the per-element traffic (both directions, in bits) of one
// full-width SCM comparison: the receiver packs log2(2^w)=w shift bits
// per group into the coalesced ds frame, the sender answers with
// 2^w·tokenBits candidate-token bits per group.
func cmpBits(bits uint) uint64 {
	var total uint64
	for _, w := range a2b.Groups(bits) {
		total += uint64(w) + (1<<w)*tokenBits
	}
	return total
}

// msbBits is the per-element traffic of the sign protocol (groups of the
// low ℓ−1 bits only; the sign bits ride the quadrant-detection XOR).
func msbBits(bits uint) uint64 {
	var total uint64
	for _, w := range a2b.LowGroups(bits) {
		total += uint64(w) + (1<<w)*tokenBits
	}
	return total
}

// muxBits is the per-element traffic of the OT multiplexer: two 1-of-2
// OTs, each one choice byte plus two ring-element messages (the mux rides
// the byte-aligned Send1ofN path, not the coalesced token frames).
func muxBits(r ring.Ring) uint64 {
	return 8 * 2 * (1 + 2*uint64(r.Bytes()))
}

// b2aBits is one 1-of-2 OT with ring-element messages.
func b2aBits(r ring.Ring) uint64 {
	return 8 * (1 + 2*uint64(r.Bytes()))
}

// ABReLUBits is the per-element online traffic of ABReLU, in bits.
func ABReLUBits(r ring.Ring) uint64 {
	return msbBits(r.Bits) + muxBits(r)
}

// FaithfulTruncBits is the per-element traffic of one faithful
// requantization truncation (wrap-bit comparison + B2A), in bits.
func FaithfulTruncBits(r ring.Ring) uint64 {
	return cmpBits(r.Bits) + b2aBits(r)
}

// BytesFor converts a per-element bit cost over an element count into the
// wire bytes of the packed frames.
func BytesFor(elems, bits uint64) uint64 {
	return (elems*bits + 7) / 8
}

// CommProfile aggregates a model's per-operator online traffic (both
// directions summed, matching the engine's measured PerOp.Bytes) and its
// protocol round count.
type CommProfile struct {
	Bytes  uint64
	Rounds uint64
	ByKind map[string]uint64
}

// rounds per batched protocol step (direction changes at one endpoint).
// The coalesced token transfer rides every OT arity of a comparison step
// on ONE ds/cts exchange, so MSB extraction and the wrap-bit comparison
// each cost a single round regardless of how many group widths they span.
const (
	roundsPerExchange = 1
	roundsPerMSB      = 1
	roundsPerMux      = 2
	roundsPerCmp      = 1
	roundsPerB2A      = 1
)

// ModelComm computes the analytic online communication of a model on a
// carrier ring. localTrunc selects the paper's zero-communication
// requantization.
func ModelComm(m *nn.Model, r ring.Ring, localTrunc bool) (CommProfile, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return CommProfile{}, err
	}
	p := CommProfile{ByKind: map[string]uint64{}}
	rb := uint64(r.Bytes())
	truncBits := FaithfulTruncBits(r)
	truncR := uint64(roundsPerCmp + roundsPerB2A)
	if localTrunc {
		truncBits, truncR = 0, 0
	}
	add := func(kind string, bytes, rounds uint64) {
		p.Bytes += bytes
		p.Rounds += rounds
		p.ByKind[kind] += bytes
	}
	for i, node := range m.Nodes {
		elems := uint64(shapes[i].Numel())
		switch op := node.Op.(type) {
		case *nn.Conv:
			// E exchange (both directions) + BNReQ truncation.
			e := uint64(op.Geom.Patches()*op.Geom.PatchLen()) * rb * 2
			add(op.Kind(), e+BytesFor(elems, truncBits), roundsPerExchange+truncR)
		case *nn.FC:
			e := uint64(op.In) * rb * 2
			add(op.Kind(), e+BytesFor(elems, truncBits), roundsPerExchange+truncR)
		case nn.ReLU:
			add(op.Kind(), BytesFor(elems, ABReLUBits(r)), roundsPerMSB+roundsPerMux)
		case *nn.MaxPool:
			// Tournament: Σ(window−1) ABReLU evaluations over the diffs.
			comparisons := uint64(op.Geom.InC*op.Geom.InH*op.Geom.InW) - elems
			roundsN := uint64(op.Geom.KH*op.Geom.KW-1) * (roundsPerMSB + roundsPerMux)
			add(op.Kind(), BytesFor(comparisons, ABReLUBits(r)), roundsN)
		case *nn.AvgPool:
			// One truncation per output (two for non-power-of-two windows).
			stages := uint64(1)
			if w := op.Geom.KH * op.Geom.KW; w&(w-1) != 0 {
				stages = 2
			}
			add(op.Kind(), BytesFor(elems, truncBits)*stages, truncR*stages)
		case nn.Add, nn.Flatten:
			add(node.Op.Kind(), 0, 0)
		}
	}
	return p, nil
}
