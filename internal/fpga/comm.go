// Package fpga models the AQ2PNN accelerator of Fig. 1: the INST Q
// instruction stream, the AS-GEMM array's cycle behaviour, the Sec-COMM
// module's A2BM/SCM units, the on-chip buffers, the ZCU104 resource
// footprint (Table 3) and the board power — everything needed to turn the
// measured protocol byte counts and the model's MAC counts into the
// latency / throughput / energy numbers of Tables 4, 5, 7 and 8.
package fpga

import (
	"aq2pnn/internal/a2b"
	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
)

// The analytic per-element communication model. Constants are not free
// parameters: they are derived from the wire format of the protocols in
// internal/ot, internal/scm and internal/secure, and a test cross-checks
// the model against bytes measured on live protocol runs.

// cmpBytes is the per-element traffic (both directions) of one full-width
// SCM comparison: the receiver sends one shift byte per group, the sender
// answers with 2^w token bytes per group.
func cmpBytes(bits uint) uint64 {
	var total uint64
	for _, w := range a2b.Groups(bits) {
		total += 1 + (1 << w)
	}
	return total
}

// msbBytes is the per-element traffic of the sign protocol (groups of the
// low ℓ−1 bits only; the sign bits ride the quadrant-detection XOR).
func msbBytes(bits uint) uint64 {
	var total uint64
	for _, w := range a2b.LowGroups(bits) {
		total += 1 + (1 << w)
	}
	return total
}

// muxBytes is the per-element traffic of the OT multiplexer: two 1-of-2
// OTs, each one choice byte plus two ring-element messages.
func muxBytes(r ring.Ring) uint64 {
	return 2 * (1 + 2*uint64(r.Bytes()))
}

// b2aBytes is one 1-of-2 OT with ring-element messages.
func b2aBytes(r ring.Ring) uint64 {
	return 1 + 2*uint64(r.Bytes())
}

// ABReLUBytes is the per-element online traffic of ABReLU.
func ABReLUBytes(r ring.Ring) uint64 {
	return msbBytes(r.Bits) + muxBytes(r)
}

// FaithfulTruncBytes is the per-element traffic of one faithful
// requantization truncation (wrap-bit comparison + B2A).
func FaithfulTruncBytes(r ring.Ring) uint64 {
	return cmpBytes(r.Bits) + b2aBytes(r)
}

// CommProfile aggregates a model's per-operator online traffic (both
// directions summed, matching the engine's measured PerOp.Bytes) and its
// protocol round count.
type CommProfile struct {
	Bytes  uint64
	Rounds uint64
	ByKind map[string]uint64
}

// rounds per batched protocol step (direction changes at one endpoint).
const (
	roundsPerExchange = 1
	roundsPerMSB      = 2 // one online phase per OT arity (1-of-2, 1-of-4)
	roundsPerMux      = 2
	roundsPerCmp      = 2
	roundsPerB2A      = 1
)

// ModelComm computes the analytic online communication of a model on a
// carrier ring. localTrunc selects the paper's zero-communication
// requantization.
func ModelComm(m *nn.Model, r ring.Ring, localTrunc bool) (CommProfile, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return CommProfile{}, err
	}
	p := CommProfile{ByKind: map[string]uint64{}}
	rb := uint64(r.Bytes())
	truncB := FaithfulTruncBytes(r)
	truncR := uint64(roundsPerCmp + roundsPerB2A)
	if localTrunc {
		truncB, truncR = 0, 0
	}
	add := func(kind string, bytes, rounds uint64) {
		p.Bytes += bytes
		p.Rounds += rounds
		p.ByKind[kind] += bytes
	}
	for i, node := range m.Nodes {
		elems := uint64(shapes[i].Numel())
		switch op := node.Op.(type) {
		case *nn.Conv:
			// E exchange (both directions) + BNReQ truncation.
			e := uint64(op.Geom.Patches()*op.Geom.PatchLen()) * rb * 2
			add(op.Kind(), e+elems*truncB, roundsPerExchange+truncR)
		case *nn.FC:
			e := uint64(op.In) * rb * 2
			add(op.Kind(), e+elems*truncB, roundsPerExchange+truncR)
		case nn.ReLU:
			add(op.Kind(), elems*ABReLUBytes(r), roundsPerMSB+roundsPerMux)
		case *nn.MaxPool:
			// Tournament: Σ(window−1) ABReLU evaluations over the diffs.
			comparisons := uint64(op.Geom.InC*op.Geom.InH*op.Geom.InW) - elems
			roundsN := uint64(op.Geom.KH*op.Geom.KW-1) * (roundsPerMSB + roundsPerMux)
			add(op.Kind(), comparisons*ABReLUBytes(r), roundsN)
		case *nn.AvgPool:
			// One truncation per output (two for non-power-of-two windows).
			stages := uint64(1)
			if w := op.Geom.KH * op.Geom.KW; w&(w-1) != 0 {
				stages = 2
			}
			add(op.Kind(), elems*truncB*stages, truncR*stages)
		case nn.Add, nn.Flatten:
			add(node.Op.Kind(), 0, 0)
		}
	}
	return p, nil
}
