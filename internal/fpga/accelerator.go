package fpga

import (
	"fmt"
	"time"

	"aq2pnn/internal/nn"
	"aq2pnn/internal/ring"
	"aq2pnn/internal/tensor"
	"aq2pnn/internal/transport"
)

// Config describes one AQ2PNN accelerator instance (one party's board).
type Config struct {
	// ClockHz is the fabric clock (ZCU104: 200 MHz).
	ClockHz float64
	// BlockIn/BlockOut size the AS-GEMM array (Fig. 2a): BlockIn×BlockOut
	// C-C multiplication units at initiation interval 1.
	BlockIn, BlockOut int
	// ALULanes is the AS-ALU vector width (elements per cycle).
	ALULanes int
	// SCMLanes is the number of parallel A2BM/SCM element pipelines.
	SCMLanes int
	// LoadBytesPerCycle models the DRAM/buffer streaming bandwidth.
	LoadBytesPerCycle int
	// Network joins the two boards (the paper: 1000 Mbps LAN). The round
	// trip models the measured software round latency of the ARM-side
	// protocol stack rather than the raw wire RTT.
	Network transport.NetworkModel
	// HostBytesPerSec models the ARM-side protocol processing (OT pad
	// expansion, packing) that accompanies every transferred byte.
	HostBytesPerSec float64
	// StaticWatts and DynamicWattsPerDSP build the board power model.
	StaticWatts        float64
	DynamicWattsPerDSP float64
}

// ZCU104 is the paper's evaluation platform configuration. The derived
// resource numbers reproduce Table 3 and the power model lands on the
// measured 7.2–7.7 W.
func ZCU104() Config {
	return Config{
		ClockHz:            200e6,
		BlockIn:            16,
		BlockOut:           16,
		ALULanes:           16,
		SCMLanes:           8,
		LoadBytesPerCycle:  16,
		Network:            transport.NetworkModel{BandwidthBitsPerSec: 1e9, RoundTrip: time.Millisecond},
		HostBytesPerSec:    150e6,
		StaticWatts:        3.1,
		DynamicWattsPerDSP: 0.003,
	}
}

// Power returns the modelled per-board power draw under load.
func (c Config) Power() float64 {
	return c.StaticWatts + c.DynamicWattsPerDSP*float64(c.Resources().DSP)
}

// Resources models the FPGA footprint (Table 3). The dominant terms scale
// with the AS-GEMM array: each C-C multiplication unit (Fig. 2b) costs
// three multipliers (E⊗F, IN⊗F, E⊗W) at two DSP48 slices each, plus
// control LUT/FF; buffers land in BRAM.
type Resources struct {
	LUT, FF, DSP int
	BRAM         float64
}

// Resources derives the footprint from the configuration.
func (c Config) Resources() Resources {
	mus := c.BlockIn * c.BlockOut
	return Resources{
		DSP: mus * 6,
		// Per-MU datapath/control plus the Sec-COMM. module (A2BM + SCM
		// pipelines) plus LOAD/STORE/INST Q overhead.
		LUT: mus*320 + c.SCMLanes*3500 + 10_000,
		FF:  mus*560 + c.SCMLanes*7000 + 8_000,
		// Input/weight/mask/output/constant buffers (Fig. 1) plus the
		// binary-share buffers of the Sec-COMM. module.
		BRAM: float64(mus)/16*14 + float64(c.SCMLanes)*6 + 38,
	}
}

// VTAResources is the plaintext-DNN reference accelerator row of Table 3.
func VTAResources() Resources {
	return Resources{LUT: 24_200, FF: 26_800, DSP: 268, BRAM: 136.5}
}

// OpCost is one operator's modelled execution cost on the accelerator.
type OpCost struct {
	Name   string
	Kind   string
	Cycles int64
	Bytes  uint64
	Rounds uint64
}

// Estimate is the end-to-end cost of one secure inference on a two-board
// deployment.
type Estimate struct {
	Model       string
	Carrier     ring.Ring
	Cycles      int64
	ComputeTime time.Duration
	Comm        CommProfile
	CommTime    time.Duration
	Total       time.Duration
	// ThroughputFPS is 1/Total for batch size 1.
	ThroughputFPS float64
	// PowerWatts is per board; the paper reports "W × 2".
	PowerWatts float64
	// EfficiencyFPSPerW uses the two-board total power, matching Table 4.
	EfficiencyFPSPerW float64
	PerOp             []OpCost
}

// CommMiB returns the modelled communication volume in MiB.
func (e Estimate) CommMiB() float64 { return float64(e.Comm.Bytes) / (1 << 20) }

// cyclesFor models one node's compute cycles.
func (c Config) cyclesFor(node nn.Node, outElems int, r ring.Ring) int64 {
	const pipelineFill = 24
	switch op := node.Op.(type) {
	case *nn.Conv:
		macs := op.Geom.MACs()
		gemm := macs/int64(c.BlockIn*c.BlockOut) + pipelineFill
		// The C-C MU evaluates three products per MAC position in parallel
		// (it is sized for that), so GEMM cycles equal plaintext GEMM
		// cycles. BNReQ adds one ALU pass.
		alu := int64(outElems)/int64(c.ALULanes) + pipelineFill
		load := int64(op.Geom.Patches()*op.Geom.PatchLen())*int64(r.Bytes())/int64(c.LoadBytesPerCycle) + pipelineFill
		return gemm + alu + load
	case *nn.FC:
		macs := int64(op.In) * int64(op.Out)
		return macs/int64(c.BlockIn*c.BlockOut) + int64(op.Out)/int64(c.ALULanes) + 2*pipelineFill
	case nn.ReLU:
		// A2BM grouping + SCM token handling + mux, one element per SCM
		// lane per ~U cycles.
		u := int64(r.Bits/2 + 2)
		return int64(outElems)*u/int64(c.SCMLanes) + pipelineFill
	case *nn.MaxPool:
		comparisons := int64(op.Geom.InC*op.Geom.InH*op.Geom.InW - outElems)
		u := int64(r.Bits/2 + 2)
		return comparisons*u/int64(c.SCMLanes) + pipelineFill
	case *nn.AvgPool:
		in := int64(op.Geom.InC * op.Geom.InH * op.Geom.InW)
		return in/int64(c.ALULanes) + pipelineFill
	case nn.Add:
		return int64(outElems)/int64(c.ALULanes) + pipelineFill
	default:
		return pipelineFill
	}
}

// EstimateModel prices a full secure inference: accelerator cycles for the
// compute and the network model for the measured-or-modelled traffic.
func (c Config) EstimateModel(m *nn.Model, r ring.Ring, localTrunc bool) (Estimate, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return Estimate{}, err
	}
	comm, err := ModelComm(m, r, localTrunc)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{Model: m.Name, Carrier: r, Comm: comm}
	for i, node := range m.Nodes {
		cy := c.cyclesFor(node, shapes[i].Numel(), r)
		est.Cycles += cy
		est.PerOp = append(est.PerOp, OpCost{Name: node.Name, Kind: node.Op.Kind(), Cycles: cy})
	}
	// Distribute the traffic back onto the ops for Table 5-style profiles.
	opComm, err := perOpComm(m, shapes, r, localTrunc)
	if err != nil {
		return Estimate{}, err
	}
	for i := range est.PerOp {
		est.PerOp[i].Bytes = opComm[i].Bytes
		est.PerOp[i].Rounds = opComm[i].Rounds
	}
	est.ComputeTime = time.Duration(float64(est.Cycles) / c.ClockHz * float64(time.Second))
	// Each direction of the duplex link carries half the summed traffic;
	// host-side protocol processing is paid on top of the wire time.
	est.CommTime = c.Network.Time(comm.Bytes/2, comm.Rounds) + c.hostTime(comm.Bytes/2)
	est.Total = est.ComputeTime + est.CommTime
	if est.Total > 0 {
		est.ThroughputFPS = float64(time.Second) / float64(est.Total)
	}
	est.PowerWatts = c.Power()
	if est.ThroughputFPS > 0 {
		est.EfficiencyFPSPerW = est.ThroughputFPS / (2 * est.PowerWatts)
	}
	return est, nil
}

// OpTime converts one op's cost into wall time on this configuration.
func (c Config) OpTime(op OpCost) time.Duration {
	compute := time.Duration(float64(op.Cycles) / c.ClockHz * float64(time.Second))
	return compute + c.Network.Time(op.Bytes/2, op.Rounds) + c.hostTime(op.Bytes/2)
}

// hostTime prices the ARM-side protocol processing for a traffic volume.
func (c Config) hostTime(bytes uint64) time.Duration {
	if c.HostBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.HostBytesPerSec * float64(time.Second))
}

// perOpComm applies the ModelComm formulas node by node by pricing each
// operator as a one-node model with its real input shape.
func perOpComm(m *nn.Model, shapes []tensor.Shape, r ring.Ring, localTrunc bool) ([]OpCost, error) {
	out := make([]OpCost, len(m.Nodes))
	for i, node := range m.Nodes {
		if _, ok := node.Op.(nn.Add); ok {
			continue // free, and it takes two inputs
		}
		var in tensor.Shape
		if idx := node.Inputs[0]; idx == -1 {
			in = tensor.Shape{m.InC, m.InH, m.InW}
		} else {
			in = shapes[idx]
		}
		one := nn.Model{
			Name: "op", InBits: m.InBits,
			InC: 1, InH: 1, InW: in.Numel(),
			Nodes: []nn.Node{{Op: node.Op, Inputs: []int{-1}}},
		}
		if len(in) == 3 {
			one.InC, one.InH, one.InW = in[0], in[1], in[2]
		}
		p, err := ModelComm(&one, r, localTrunc)
		if err != nil {
			return nil, fmt.Errorf("fpga: pricing node %d: %w", i, err)
		}
		out[i] = OpCost{Bytes: p.Bytes, Rounds: p.Rounds}
	}
	return out, nil
}
