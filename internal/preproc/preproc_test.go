package preproc

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func kit(seq uint32) *Kit { return &Kit{Seq: seq} }

func TestBankClamps(t *testing.T) {
	if d := NewBank(0, 0, 0).Depth(); d != 1 {
		t.Errorf("depth 0 clamped to %d, want 1", d)
	}
	if d := NewBank(0, MaxDepth+100, 0).Depth(); d != MaxDepth {
		t.Errorf("depth %d clamped to %d, want MaxDepth %d", MaxDepth+100, d, MaxDepth)
	}
	// An out-of-range watermark falls back to the full depth: the filler
	// may immediately claim depth seqs ahead.
	b := NewBank(0, 3, 9)
	for i := uint32(0); i < 3; i++ {
		seq, ok := b.NextSeq()
		if !ok || seq != i {
			t.Fatalf("NextSeq = (%d, %v), want (%d, true)", seq, ok, i)
		}
	}
}

// TestBankPacing: NextSeq blocks at the watermark and unblocks exactly
// when the online path advances past the oldest outstanding seq.
func TestBankPacing(t *testing.T) {
	b := NewBank(0, 4, 2)
	for i := uint32(0); i < 2; i++ {
		seq, ok := b.NextSeq()
		if !ok || seq != i {
			t.Fatalf("NextSeq = (%d, %v), want (%d, true)", seq, ok, i)
		}
		b.Commit(kit(seq))
	}
	claimed := make(chan uint32, 1)
	go func() {
		seq, ok := b.NextSeq()
		if ok {
			claimed <- seq
		}
	}()
	select {
	case seq := <-claimed:
		t.Fatalf("NextSeq claimed %d past the watermark", seq)
	case <-time.After(20 * time.Millisecond):
	}
	if k := b.Take(0); k == nil || k.Seq != 0 {
		t.Fatalf("Take(0) = %v", k)
	}
	select {
	case seq := <-claimed:
		if seq != 2 {
			t.Fatalf("unblocked NextSeq claimed %d, want 2", seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("NextSeq still blocked after Take advanced the base")
	}
}

// TestBankTakeBlocksUntilCommit: a Take ahead of the filler waits for the
// commit instead of missing.
func TestBankTakeBlocksUntilCommit(t *testing.T) {
	b := NewBank(5, 2, 2)
	got := make(chan *Kit, 1)
	go func() { got <- b.Take(5) }()
	select {
	case k := <-got:
		t.Fatalf("Take returned %v before any commit", k)
	case <-time.After(20 * time.Millisecond):
	}
	if seq, ok := b.NextSeq(); !ok || seq != 5 {
		t.Fatalf("NextSeq = (%d, %v), want (5, true)", seq, ok)
	}
	b.Commit(kit(5))
	select {
	case k := <-got:
		if k == nil || k.Seq != 5 {
			t.Fatalf("Take(5) = %v", k)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Take still blocked after the commit")
	}
	if b.Fill() != 0 {
		t.Errorf("bank holds %d kits after the take, want 0", b.Fill())
	}
}

// TestBankDeadAndStop: both exits wake blocked parties, Take degrades to
// nil, and late commits are dropped.
func TestBankDeadAndStop(t *testing.T) {
	for _, tc := range []struct {
		name string
		kill func(b *Bank)
	}{
		{"dead", func(b *Bank) { b.MarkDead() }},
		{"stopped", func(b *Bank) { b.Stop() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBank(0, 2, 2)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				if k := b.Take(7); k != nil {
					t.Errorf("Take on a %s bank returned %v, want nil", tc.name, k)
				}
			}()
			go func() {
				defer wg.Done()
				b.NextSeq()
				b.NextSeq()
				if _, ok := b.NextSeq(); ok {
					t.Errorf("NextSeq on a %s bank still claims", tc.name)
				}
			}()
			time.Sleep(10 * time.Millisecond)
			tc.kill(b)
			wg.Wait()
			b.Commit(kit(0))
			if b.Fill() != 0 {
				t.Errorf("commit after %s stored a kit", tc.name)
			}
		})
	}
}

func TestBankWaitFill(t *testing.T) {
	b := NewBank(0, 4, 2)
	done := make(chan bool, 1)
	go func() { done <- b.WaitFill(10) }() // clamped to the watermark (2)
	select {
	case <-done:
		t.Fatal("WaitFill returned on an empty bank")
	case <-time.After(20 * time.Millisecond):
	}
	b.NextSeq()
	b.Commit(kit(0))
	b.NextSeq()
	b.Commit(kit(1))
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitFill = false on a healthy bank")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitFill still blocked at the clamped watermark level")
	}
	// Death path: WaitFill on an empty bank reports false once the plane
	// dies instead of blocking forever.
	dead := NewBank(0, 2, 2)
	res := make(chan bool, 1)
	go func() { res <- dead.WaitFill(1) }()
	time.Sleep(10 * time.Millisecond)
	dead.MarkDead()
	select {
	case ok := <-res:
		if ok {
			t.Error("WaitFill = true on a dead empty bank")
		}
	case <-time.After(2 * time.Second):
		t.Error("WaitFill still blocked on a dead bank")
	}
}

func TestStoreLifecycle(t *testing.T) {
	s := NewStore(2)
	if err := s.Put(kit(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(kit(0)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate Put returned %v, want a duplicate error", err)
	}
	if err := s.Put(kit(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(kit(2)); err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("Put past the cap returned %v, want a full error", err)
	}
	// Taking seq 1 prunes the stale seq 0 too.
	if k := s.Take(1); k == nil || k.Seq != 1 {
		t.Fatalf("Take(1) = %v", k)
	}
	if s.Len() != 0 {
		t.Errorf("store holds %d kits after the pruning take, want 0", s.Len())
	}
	if k := s.Take(9); k != nil {
		t.Errorf("Take of an unfilled seq = %v, want nil", k)
	}
	if got := NewStore(0).cap; got != 1 {
		t.Errorf("cap 0 clamped to %d, want 1", got)
	}
	if got := NewStore(MaxDepth + 5).cap; got != MaxDepth {
		t.Errorf("cap clamped to %d, want MaxDepth %d", got, MaxDepth)
	}
}

// TestFrameCodec pins the strict wire framing of the fill subprotocol:
// exact length, exact magic, round-tripped seq.
func TestFrameCodec(t *testing.T) {
	p := encodeFrame(demandMagic, 0xDEAD)
	if len(p) != frameLen {
		t.Fatalf("frame length %d, want %d", len(p), frameLen)
	}
	seq, err := decodeFrame(demandMagic, "demand", p)
	if err != nil || seq != 0xDEAD {
		t.Fatalf("decode = (%d, %v)", seq, err)
	}
	if _, err := decodeFrame(ackMagic, "ack", p); err == nil {
		t.Error("demand frame decoded under the ack magic")
	}
	if _, err := decodeFrame(demandMagic, "demand", p[:frameLen-1]); err == nil {
		t.Error("short frame decoded")
	}
	if _, err := decodeFrame(demandMagic, "demand", append(p, 0)); err == nil {
		t.Error("oversized frame decoded")
	}
	if _, err := decodeFrame(demandMagic, "demand", nil); err == nil {
		t.Error("nil frame decoded")
	}
}
